// Benchmarks regenerating the paper's evaluation. Each benchmark corresponds
// to one figure or table (see DESIGN.md's experiment index); the interesting
// numbers are the reported custom metrics — simulated cycles (the quantity
// Figs. 6 and 7 plot) and message counts (footnote 3) — not the wall-clock
// ns/op of the simulator itself.
//
//	go test -bench=. -benchmem
package main

import (
	"fmt"
	"testing"

	"procdecomp/internal/bench"
	"procdecomp/internal/machine"
	"procdecomp/internal/wavefront"
)

// benchN is the paper's grid size.
const benchN = 128

// figureProcs is the processor sweep of Figs. 6 and 7.
var figureProcs = []int{2, 4, 8, 16, 32}

func runPoint(b *testing.B, v bench.Variant, procs int, n, blk int64) {
	b.Helper()
	var pt *bench.Point
	for i := 0; i < b.N; i++ {
		var err error
		pt, err = bench.RunGS(v, procs, n, blk)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(pt.Makespan), "simcycles")
	b.ReportMetric(float64(pt.Messages), "messages")
}

// BenchmarkFig6 regenerates Figure 6 ("Effect of Compile-time and Run-time
// Resolution"): run-time resolution, compile-time resolution, Optimized I,
// Optimized III, and the handwritten program across the processor sweep.
func BenchmarkFig6(b *testing.B) {
	for _, v := range []bench.Variant{bench.RunTime, bench.CompileTime, bench.OptimizedI, bench.OptimizedIII, bench.Handwritten} {
		for _, procs := range figureProcs {
			b.Run(fmt.Sprintf("%s/S=%d", shortName(v), procs), func(b *testing.B) {
				runPoint(b, v, procs, benchN, bench.DefaultBlk)
			})
		}
	}
}

// BenchmarkFig7 regenerates Figure 7 ("Effect of Message-Passing
// Optimizations"): the optimization staircase against the handwritten code.
func BenchmarkFig7(b *testing.B) {
	for _, v := range []bench.Variant{bench.OptimizedI, bench.OptimizedII, bench.OptimizedIII, bench.Handwritten} {
		for _, procs := range figureProcs {
			b.Run(fmt.Sprintf("%s/S=%d", shortName(v), procs), func(b *testing.B) {
				runPoint(b, v, procs, benchN, bench.DefaultBlk)
			})
		}
	}
}

// BenchmarkFootnote3 regenerates the message-count comparison: 31,752
// messages for run-time resolution versus 2,142 for the handwritten program
// on the 128x128 grid.
func BenchmarkFootnote3(b *testing.B) {
	for _, v := range []bench.Variant{bench.RunTime, bench.Handwritten} {
		b.Run(shortName(v), func(b *testing.B) {
			runPoint(b, v, 8, benchN, bench.DefaultBlk)
		})
	}
}

// BenchmarkBlockSize regenerates the §4 block-size trade-off for Optimized
// III: "the block size is a compromise between decreasing the number of
// messages and exploiting parallelism", and the best block size depends on
// the matrix size.
func BenchmarkBlockSize(b *testing.B) {
	for _, n := range []int64{64, 128, 256} {
		for _, blk := range []int64{1, 4, 8, 16, 32} {
			b.Run(fmt.Sprintf("N=%d/blk=%d", n, blk), func(b *testing.B) {
				runPoint(b, bench.OptimizedIII, 8, n, blk)
			})
		}
	}
}

// BenchmarkHandwrittenScaling measures the Fig. 3 program alone across the
// machine sizes, the baseline curve both figures share.
func BenchmarkHandwrittenScaling(b *testing.B) {
	input := bench.Input(benchN)
	for _, procs := range figureProcs {
		b.Run(fmt.Sprintf("S=%d", procs), func(b *testing.B) {
			var res *wavefront.Result
			for i := 0; i < b.N; i++ {
				var err error
				res, err = wavefront.Run(machine.DefaultConfig(procs), benchN, bench.DefaultBlk, input)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.Stats.Makespan), "simcycles")
			b.ReportMetric(float64(res.Stats.Messages), "messages")
		})
	}
}

// BenchmarkSimulatorThroughput measures the substrate itself: how fast the
// deterministic virtual-time machine moves messages (a sanity check that the
// experiments above measure the model, not simulator overhead).
func BenchmarkSimulatorThroughput(b *testing.B) {
	const procs = 8
	const msgs = 1000
	for i := 0; i < b.N; i++ {
		m := machine.New(machine.DefaultConfig(procs))
		err := m.Run(func(p *machine.Proc) {
			next := (p.ID() + 1) % procs
			prev := (p.ID() + procs - 1) % procs
			for k := 0; k < msgs; k++ {
				p.Send(next, 1, float64(k))
				p.Recv(prev, 1)
			}
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(procs*msgs), "msgs/op")
}

// BenchmarkGather measures result reassembly, the harness's own overhead.
func BenchmarkGather(b *testing.B) {
	in := bench.Input(benchN)
	for i := 0; i < b.N; i++ {
		res, err := wavefront.Run(machine.DefaultConfig(8), benchN, bench.DefaultBlk, in)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := res.New.Read(2, 2); err != nil {
			b.Fatal(err)
		}
	}
}

func shortName(v bench.Variant) string {
	switch v {
	case bench.RunTime:
		return "RTR"
	case bench.CompileTime:
		return "CTR"
	case bench.OptimizedI:
		return "OptI"
	case bench.OptimizedII:
		return "OptII"
	case bench.OptimizedIII:
		return "OptIII"
	case bench.Handwritten:
		return "Hand"
	}
	return "?"
}

// BenchmarkMultiplex measures the §5.4 latency-hiding experiment: virtual
// processes co-scheduled on 4 physical nodes (Optimized III, 64x64 grid).
func BenchmarkMultiplex(b *testing.B) {
	const n, blk = 64, 8
	cases := []struct {
		name   string
		vprocs int
		factor int
	}{
		{"direct-4", 4, 0},
		{"cyclic-8on4", 8, 2},
		{"cyclic-16on4", 16, 4},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			cfg := machine.DefaultConfig(tc.vprocs)
			if tc.factor > 0 {
				cfg.Placement = make([]int, tc.vprocs)
				for i := range cfg.Placement {
					cfg.Placement[i] = i % 4
				}
			}
			var mk uint64
			for i := 0; i < b.N; i++ {
				pt, err := bench.RunGSWith(cfg, bench.OptimizedIII, n, blk)
				if err != nil {
					b.Fatal(err)
				}
				mk = pt.Makespan
			}
			b.ReportMetric(float64(mk), "simcycles")
		})
	}
}
