module procdecomp

go 1.22
