package main

import (
	"errors"
	"io"
	"strings"
	"testing"
)

// errReader yields some bytes and then fails with a non-EOF error, like a
// pipe whose writer died.
type errReader struct {
	data string
	err  error
	done bool
}

func (r *errReader) Read(p []byte) (int, error) {
	if r.done {
		return 0, r.err
	}
	r.done = true
	return copy(p, r.data), nil
}

func TestReadAllReturnsReadError(t *testing.T) {
	broken := errors.New("pipe burst")
	_, err := readAll(&errReader{data: "proc f", err: broken})
	if !errors.Is(err, broken) {
		t.Fatalf("err = %v, want wrapped %v (a non-EOF stdin failure must not be swallowed)", err, broken)
	}
}

func TestReadAllHappyPath(t *testing.T) {
	// Longer than one Read call's worth for a small reader.
	src := strings.Repeat("const N = 8;\n", 100)
	got, err := readAll(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if got != src {
		t.Fatalf("got %d bytes, want %d", len(got), len(src))
	}
}

func TestReadAllKeepsBytesBeforeEOF(t *testing.T) {
	got, err := readAll(io.LimitReader(strings.NewReader("abc"), 2))
	if err != nil {
		t.Fatal(err)
	}
	if got != "ab" {
		t.Fatalf("got %q, want %q", got, "ab")
	}
}
