package main

import (
	"errors"
	"io"
	"strings"
	"testing"

	"procdecomp/internal/exec"
	"procdecomp/internal/istruct"
)

// Output listing must be sorted by name — map iteration order must never
// leak into what the user sees (golden check for the determinism audit).
func TestPrintOutputsSorted(t *testing.T) {
	mk := func(name string) *istruct.Matrix {
		m, err := istruct.NewMatrix(name, 2, 2)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Write(1, 1, 3.5); err != nil {
			t.Fatal(err)
		}
		return m
	}
	out := &exec.SPMDOutcome{
		Arrays:  map[string]*istruct.Matrix{"Zeta": mk("Zeta"), "Alpha": mk("Alpha"), "Mid": mk("Mid")},
		Scalars: map[string]exec.Value{"z": 1, "a": 2.5, "m": -3},
	}
	want := `  array Alpha: 2x2, 1 defined elements
  array Mid: 2x2, 1 defined elements
  array Zeta: 2x2, 1 defined elements
  scalar a = 2.5
  scalar m = -3
  scalar z = 1
`
	for i := 0; i < 20; i++ {
		var b strings.Builder
		printOutputs(&b, out)
		if b.String() != want {
			t.Fatalf("iteration %d:\ngot:\n%s\nwant:\n%s", i, b.String(), want)
		}
	}
}

// errReader yields some bytes and then fails with a non-EOF error, like a
// pipe whose writer died.
type errReader struct {
	data string
	err  error
	done bool
}

func (r *errReader) Read(p []byte) (int, error) {
	if r.done {
		return 0, r.err
	}
	r.done = true
	return copy(p, r.data), nil
}

func TestReadAllReturnsReadError(t *testing.T) {
	broken := errors.New("pipe burst")
	_, err := readAll(&errReader{data: "proc f", err: broken})
	if !errors.Is(err, broken) {
		t.Fatalf("err = %v, want wrapped %v (a non-EOF stdin failure must not be swallowed)", err, broken)
	}
}

func TestReadAllHappyPath(t *testing.T) {
	// Longer than one Read call's worth for a small reader.
	src := strings.Repeat("const N = 8;\n", 100)
	got, err := readAll(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if got != src {
		t.Fatalf("got %d bytes, want %d", len(got), len(src))
	}
}

func TestReadAllKeepsBytesBeforeEOF(t *testing.T) {
	got, err := readAll(io.LimitReader(strings.NewReader("abc"), 2))
	if err != nil {
		t.Fatal(err)
	}
	if got != "ab" {
		t.Fatalf("got %q, want %q", got, "ab")
	}
}
