// Command pdrun compiles an Idn program and executes it on the simulated
// message-passing machine, reporting results and performance statistics.
// Array parameters are filled with a deterministic test pattern; with
// -check, the distributed result is compared against the sequential
// reference interpreter.
//
// Usage:
//
//	pdrun -file prog.idn -entry gs_iteration -procs 8 -mode opt3 -blk 8 -check
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"

	"procdecomp/internal/analysis"
	"procdecomp/internal/autotune"
	"procdecomp/internal/core"
	"procdecomp/internal/exec"
	"procdecomp/internal/faults"
	"procdecomp/internal/istruct"
	"procdecomp/internal/lang"
	"procdecomp/internal/machine"
	"procdecomp/internal/sem"
	"procdecomp/internal/spmd"
	"procdecomp/internal/trace"
	"procdecomp/internal/xform"
)

func main() {
	var (
		file      = flag.String("file", "", "Idn source file (default: stdin)")
		entry     = flag.String("entry", "", "entry procedure")
		procs     = flag.Int("procs", 4, "number of processors")
		mode      = flag.String("mode", "opt3", "rtr | ctr | opt1 | opt2 | opt3")
		blk       = flag.Int64("blk", 8, "block size for opt3")
		check     = flag.Bool("check", true, "compare against the sequential interpreter")
		traceOut  = flag.String("trace", "", "write a Chrome trace-event JSON of the run (open in chrome://tracing or Perfetto)")
		faultRate = flag.Float64("faults", 0, "inject a chaos fault schedule: drop messages at this rate, with duplicates, ack loss, and jitter (0 = reliable network)")
		faultSeed = flag.Uint64("fault-seed", 1, "seed for the fault schedule (same seed, same faults)")
		defines   defineFlag
		remaps    remapFlag
	)
	flag.Var(&defines, "D", "override a constant, e.g. -D N=64 (repeatable)")
	flag.Var(&remaps, "dist", "retarget a dist declaration, e.g. -dist Column=block2d(2x4) (repeatable; pdmap searches these)")
	flag.Parse()

	src, err := readSource(*file)
	if err != nil {
		fatal(err)
	}
	prog, err := lang.Parse(src)
	if err != nil {
		fatal(err)
	}
	for _, rm := range remaps.maps {
		m := rm.mapping
		if m.Span == 0 {
			m.Span = int64(*procs) // bare family name: span the whole machine
		}
		if err := m.Validate(int64(*procs)); err != nil {
			fatal(err)
		}
		if err := autotune.Retarget(prog, rm.name, m); err != nil {
			fatal(err)
		}
	}
	info, errs := sem.Check(prog, sem.Config{Procs: int64(*procs), Defines: defines.vals})
	if len(errs) > 0 {
		for _, e := range errs {
			fmt.Fprintln(os.Stderr, "error:", e)
		}
		os.Exit(1)
	}
	name := *entry
	if name == "" {
		fatal(fmt.Errorf("-entry is required"))
	}
	p, ok := info.Procs[name]
	if !ok {
		fatal(fmt.Errorf("no procedure %s", name))
	}

	// Build deterministic inputs for array parameters.
	inputs := map[string]*istruct.Matrix{}
	var seqArgs []exec.ArgVal
	for _, prm := range p.Params {
		if prm.Type.Base != lang.TMatrix {
			fatal(fmt.Errorf("entry parameters must be matrices; use consts for scalars"))
		}
		mk := func() *istruct.Matrix {
			m, err := istruct.NewMatrix(prm.Name, prm.Type.Dims[0], prm.Type.Dims[1])
			if err != nil {
				fatal(err)
			}
			for i := int64(1); i <= prm.Type.Dims[0]; i++ {
				for j := int64(1); j <= prm.Type.Dims[1]; j++ {
					m.Write(i, j, float64((i*31+j*17)%29)+0.5)
				}
			}
			return m
		}
		inputs[prm.Name] = mk()
		seqArgs = append(seqArgs, exec.ArgVal{Matrix: mk()})
	}

	comp := core.New(info)
	var progs []*spmd.Program
	if *mode == "rtr" {
		generic, err := comp.CompileRTR(name)
		if err != nil {
			fatal(err)
		}
		progs = []*spmd.Program{generic}
	} else {
		passes, ok := xform.StandardPipeline(*mode, *blk)
		if !ok {
			fatal(fmt.Errorf("unknown mode %q", *mode))
		}
		progs, err = comp.CompileCTR(name, true)
		if err != nil {
			fatal(err)
		}
		if _, err := xform.Apply(progs, passes); err != nil {
			fatal(err)
		}
	}

	cfg := machine.DefaultConfig(*procs)
	if *faultRate > 0 {
		cfg.Faults = faults.Chaos(*faultSeed, *faultRate)
	}
	var tr *trace.Log
	if *traceOut != "" {
		tr = trace.New()
		cfg.Tracer = tr
	}
	// Ctrl-C cancels the simulated run through the machine's cancellation
	// points: the run returns a typed *machine.CanceledError naming where
	// each blocked process stood, and pdrun exits 130 like an interrupted
	// shell command would.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	out, err := exec.RunSPMDCtx(ctx, progs, cfg, inputs)
	stop()
	if err != nil {
		if errors.Is(err, machine.ErrCanceled) {
			var ce *machine.CanceledError
			if errors.As(err, &ce) && ce.Proc >= 0 {
				fmt.Fprintf(os.Stderr, "pdrun: interrupted at process %d, cycle %d\n", ce.Proc, ce.Clock)
			} else {
				fmt.Fprintln(os.Stderr, "pdrun: interrupted")
			}
			os.Exit(130)
		}
		fatal(err)
	}

	fmt.Printf("executed %s on %d simulated processors (%s)\n", name, *procs, *mode)
	fmt.Printf("  makespan: %d cycles\n", out.Stats.Makespan)
	fmt.Printf("  messages: %d (%d values, %d bytes)\n", out.Stats.Messages, out.Stats.Values, out.Stats.Bytes)
	if *faultRate > 0 {
		fmt.Printf("  faults: chaos rate %g, seed %d: %d retries, %d duplicates suppressed, %d lost\n",
			*faultRate, *faultSeed, out.Stats.Retries, out.Stats.Duplicates, out.Stats.Lost)
	}
	if tr != nil {
		if err := writeTrace(*traceOut, cfg, tr); err != nil {
			fatal(err)
		}
		links := 0
		for _, row := range tr.MessageMatrix() {
			for _, c := range row {
				if c > 0 {
					links++
				}
			}
		}
		fmt.Printf("  trace: %d events, %d messages over %d links -> %s (Perfetto timeline; analyze with pdtrace)\n",
			tr.Len(), tr.Messages(), links, *traceOut)
	}
	printOutputs(os.Stdout, out)

	if *check {
		seq, err := exec.RunSequential(info, name, seqArgs)
		if err != nil {
			fatal(fmt.Errorf("sequential reference failed: %w", err))
		}
		if seq.HasRet && seq.Ret.Matrix != nil {
			want := seq.Ret.Matrix
			// Identify the returned array by name: prefer the output whose
			// name matches the matrix the sequential interpreter returned,
			// falling back to the last array output (the return value is
			// emitted last). Matching by shape alone could silently compare
			// against a different, same-shaped output array.
			retName, lastArray := "", ""
			for _, o := range progs[0].Outputs {
				if !o.IsArray {
					continue
				}
				lastArray = o.Name
				if o.Name == want.Name() {
					retName = o.Name
				}
			}
			if retName == "" {
				retName = lastArray
			}
			if retName == "" {
				fatal(fmt.Errorf("the entry returns an array but the compiled program has no array output"))
			}
			got := out.Arrays[retName]
			if got == nil {
				fatal(fmt.Errorf("output array %s missing from the distributed result", retName))
			}
			if got.Rows() != want.Rows() || got.Cols() != want.Cols() {
				fatal(fmt.Errorf("output array %s is %dx%d, sequential result is %dx%d",
					retName, got.Rows(), got.Cols(), want.Rows(), want.Cols()))
			}
			for i := int64(1); i <= want.Rows(); i++ {
				for j := int64(1); j <= want.Cols(); j++ {
					if want.Defined(i, j) != got.Defined(i, j) {
						fatal(fmt.Errorf("check failed: definedness differs at (%d,%d)", i, j))
					}
					if !want.Defined(i, j) {
						continue
					}
					vw, _ := want.Read(i, j)
					vg, _ := got.Read(i, j)
					if d := vw - vg; d > 1e-9 || d < -1e-9 {
						fatal(fmt.Errorf("check failed at (%d,%d): %g vs %g", i, j, vg, vw))
					}
				}
			}
			fmt.Println("  check: distributed result matches the sequential interpreter")
		}
	}
}

func readSource(file string) (string, error) {
	if file == "" {
		return readAll(os.Stdin)
	}
	data, err := os.ReadFile(file)
	if err != nil {
		return "", err
	}
	return string(data), nil
}

// readAll drains r, keeping any bytes read before a mid-stream failure is
// reported. Unlike a bare read loop, a non-EOF error is returned, not
// swallowed.
func readAll(r io.Reader) (string, error) {
	var b strings.Builder
	buf := make([]byte, 64*1024)
	for {
		n, err := r.Read(buf)
		b.Write(buf[:n])
		if err == io.EOF {
			return b.String(), nil
		}
		if err != nil {
			return "", fmt.Errorf("reading source: %w", err)
		}
	}
}

// printOutputs reports the run's output arrays and scalars in sorted name
// order, so identical runs print identically (map iteration order is random).
func printOutputs(w io.Writer, out *exec.SPMDOutcome) {
	names := make([]string, 0, len(out.Arrays))
	for name := range out.Arrays {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		m := out.Arrays[name]
		defined := 0
		for i := int64(1); i <= m.Rows(); i++ {
			for j := int64(1); j <= m.Cols(); j++ {
				if m.Defined(i, j) {
					defined++
				}
			}
		}
		fmt.Fprintf(w, "  array %s: %dx%d, %d defined elements\n", name, m.Rows(), m.Cols(), defined)
	}
	names = names[:0]
	for name := range out.Scalars {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(w, "  scalar %s = %g\n", name, out.Scalars[name])
	}
}

// writeTrace writes the run as a Chrome trace-event file with the analyzer's
// dump embedded (pdtrace reads it back; Perfetto ignores the extra key).
func writeTrace(path string, cfg machine.Config, tr *trace.Log) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := analysis.NewDump(cfg, tr).WriteTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pdrun:", err)
	os.Exit(1)
}

// remapFlag parses repeated -dist Name=mapping flags.
type remapFlag struct {
	maps []remap
}

type remap struct {
	name    string
	mapping autotune.Mapping
}

func (r *remapFlag) String() string {
	parts := make([]string, len(r.maps))
	for i, rm := range r.maps {
		parts[i] = rm.name + "=" + rm.mapping.String()
	}
	return strings.Join(parts, ",")
}

func (r *remapFlag) Set(s string) error {
	name, spec, ok := strings.Cut(s, "=")
	if !ok {
		return fmt.Errorf("expected NAME=MAPPING, got %q", s)
	}
	m, err := autotune.ParseMapping(spec)
	if err != nil {
		return err
	}
	r.maps = append(r.maps, remap{name: strings.TrimSpace(name), mapping: m})
	return nil
}

// defineFlag parses repeated -D NAME=VALUE flags.
type defineFlag struct {
	vals map[string]int64
}

func (d *defineFlag) String() string { return fmt.Sprint(d.vals) }

func (d *defineFlag) Set(s string) error {
	name, val, ok := strings.Cut(s, "=")
	if !ok {
		return fmt.Errorf("expected NAME=VALUE, got %q", s)
	}
	v, err := strconv.ParseInt(val, 10, 64)
	if err != nil {
		return fmt.Errorf("bad value in %q: %v", s, err)
	}
	if d.vals == nil {
		d.vals = map[string]int64{}
	}
	d.vals[name] = v
	return nil
}
