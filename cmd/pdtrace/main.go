// Command pdtrace analyzes a trace file recorded by pdrun -trace or
// pdbench -trace: it extracts the critical path, attributes every cycle of
// the makespan to a cause, ranks hotspot links and tags, and replays the run
// under altered cost parameters (what-if modeling).
//
// Usage:
//
//	pdtrace [flags] trace.json      # or read the trace from stdin
//
// The analyzer verifies its own arithmetic — the critical path's length must
// equal the makespan, the attribution must tile the path, and the identity
// replay must reproduce the measured makespan — and exits nonzero if any
// invariant fails, so it doubles as a trace self-check in CI.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"procdecomp/internal/analysis"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit the report as JSON instead of text")
	htmlOut := flag.String("html", "", "also write a self-contained HTML report to this file")
	pathOut := flag.Bool("path", false, "include the full critical path in the report")
	top := flag.Int("top", 10, "rows to keep in the hotspot rankings (0 = all)")
	set := flag.String("set", "", "extra what-if scenario, e.g. \"SendStartup=0,Latency=25\"")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: pdtrace [flags] [trace.json]\n\nanalyze a trace recorded with pdrun -trace or pdbench -trace\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	var in io.Reader = os.Stdin
	if flag.NArg() > 1 {
		fmt.Fprintln(os.Stderr, "pdtrace: at most one trace file")
		os.Exit(2)
	}
	if flag.NArg() == 1 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}

	d, err := analysis.ReadDump(in)
	if err != nil {
		fatal(err)
	}

	opt := analysis.Options{TopLinks: *top, TopTags: *top, IncludePath: *pathOut}
	if *set != "" {
		sc, err := parseScenario(*set)
		if err != nil {
			fatal(err)
		}
		opt.Scenarios = append(analysis.DefaultScenarios(), sc)
	}

	r, err := analysis.Analyze(d, opt)
	if err != nil {
		fatal(err)
	}

	if *htmlOut != "" {
		f, err := os.Create(*htmlOut)
		if err != nil {
			fatal(err)
		}
		if err := r.WriteHTML(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(r); err != nil {
			fatal(err)
		}
	} else {
		fmt.Print(r.Format())
	}
}

// parseScenario turns "SendStartup=0,Latency=25" into a what-if scenario.
func parseScenario(spec string) (analysis.Scenario, error) {
	sc := analysis.Scenario{Name: "custom: " + spec}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return sc, fmt.Errorf("pdtrace: -set %q: want Name=value pairs", part)
		}
		n, err := strconv.ParseUint(strings.TrimSpace(val), 10, 64)
		if err != nil {
			return sc, fmt.Errorf("pdtrace: -set %s: %v", part, err)
		}
		switch strings.TrimSpace(key) {
		case "SendStartup":
			sc.SendStartup = analysis.CostPtr(n)
		case "RecvStartup":
			sc.RecvStartup = analysis.CostPtr(n)
		case "PerValue":
			sc.PerValue = analysis.CostPtr(n)
		case "Latency":
			sc.Latency = analysis.CostPtr(n)
		default:
			return sc, fmt.Errorf("pdtrace: -set: unknown cost %q (want SendStartup, RecvStartup, PerValue, or Latency)", key)
		}
	}
	return sc, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pdtrace:", err)
	os.Exit(1)
}
