package main

import (
	"bytes"
	"encoding/json"
	"testing"

	"procdecomp/internal/analysis"
	"procdecomp/internal/bench"
	"procdecomp/internal/faults"
	"procdecomp/internal/machine"
)

// The analyzer's output must be deterministic down to the byte: two
// identical runs, dumped, analyzed, and marshaled, produce identical JSON.
// This is the audit for every map-backed aggregate in the pipeline — a
// single unsorted map range anywhere in dump, hotspots, or report ordering
// shows up here as a flaky diff.
func TestReportJSONByteIdentical(t *testing.T) {
	render := func() []byte {
		t.Helper()
		cfg := machine.DefaultConfig(4)
		cfg.Faults = nil
		_, d, err := bench.DumpGS(cfg, bench.OptimizedIII, 24, 4)
		if err != nil {
			t.Fatal(err)
		}
		// Round-trip through the serialized form, exactly as the CLI does.
		var buf bytes.Buffer
		if err := d.WriteTrace(&buf); err != nil {
			t.Fatal(err)
		}
		got, err := analysis.ReadDump(&buf)
		if err != nil {
			t.Fatal(err)
		}
		r, err := analysis.Analyze(got, analysis.Options{IncludePath: true})
		if err != nil {
			t.Fatal(err)
		}
		out, err := json.MarshalIndent(r, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := render(), render()
	if !bytes.Equal(a, b) {
		t.Fatal("identical runs produced different JSON reports")
	}
	// The trace files themselves must also match byte for byte — including
	// a seeded chaos run, whose wire stream is appended by concurrent sender
	// goroutines in scheduler order and must be canonicalized by the dump.
	dump := func(chaos bool) []byte {
		t.Helper()
		cfg := machine.DefaultConfig(4)
		if chaos {
			cfg.Faults = faults.Chaos(5, 0.05)
		}
		_, d, err := bench.DumpGS(cfg, bench.OptimizedIII, 24, 4)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := d.WriteTrace(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	for _, chaos := range []bool{false, true} {
		if !bytes.Equal(dump(chaos), dump(chaos)) {
			t.Fatalf("identical runs (chaos=%v) produced different trace files", chaos)
		}
	}
}

func TestParseScenario(t *testing.T) {
	sc, err := parseScenario("SendStartup=0, Latency=25")
	if err != nil {
		t.Fatal(err)
	}
	if sc.SendStartup == nil || *sc.SendStartup != 0 {
		t.Errorf("SendStartup = %v", sc.SendStartup)
	}
	if sc.Latency == nil || *sc.Latency != 25 {
		t.Errorf("Latency = %v", sc.Latency)
	}
	if sc.RecvStartup != nil || sc.PerValue != nil {
		t.Error("unset costs must stay nil")
	}
	for _, bad := range []string{"SendStartup", "Nope=1", "SendStartup=-3", "SendStartup=x"} {
		if _, err := parseScenario(bad); err == nil {
			t.Errorf("parseScenario(%q) accepted", bad)
		}
	}
}
