package main

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
)

// The CLI's report must be deterministic down to the byte, in both text and
// JSON form — the property CI relies on when it diffs artifacts.
func TestSearchOutputByteIdentical(t *testing.T) {
	render := func(args ...string) []byte {
		t.Helper()
		var buf bytes.Buffer
		if err := run(context.Background(), args, &buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	args := []string{"-gs", "-procs", "4", "-D", "N=12", "-topk", "3"}
	a, b := render(args...), render(args...)
	if !bytes.Equal(a, b) {
		t.Fatal("identical searches produced different text reports")
	}
	if !strings.Contains(string(a), "winner:") {
		t.Fatalf("report names no winner:\n%s", a)
	}

	j1, j2 := render(append(args, "-json")...), render(append(args, "-json")...)
	if !bytes.Equal(j1, j2) {
		t.Fatal("identical searches produced different JSON reports")
	}
	var rep struct {
		Winner string
		Hand   string
		Regret uint64
	}
	if err := json.Unmarshal(j1, &rep); err != nil {
		t.Fatalf("JSON report does not parse: %v", err)
	}
	if rep.Winner == "" || rep.Hand == "" {
		t.Fatalf("JSON report missing winner or reference: %+v", rep)
	}
}

// Flag validation: contradictory sources and unknown dists fail cleanly.
func TestBadInvocations(t *testing.T) {
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-gs", "-file", "x.idn"}, &buf); err == nil {
		t.Error("-gs with -file accepted")
	}
	if err := run(context.Background(), []string{"-gs", "-dist", "NoSuch", "-D", "N=8"}, &buf); err == nil {
		t.Error("unknown -dist accepted")
	}
	if err := run(context.Background(), []string{"-gs", "-kinds", "bogus", "-D", "N=8"}, &buf); err == nil {
		t.Error("unknown -kinds entry accepted")
	}
}
