// Command pdmap searches for a program's domain decomposition instead of
// taking the annotation on faith: it enumerates mapping families, spans, and
// transformation pipelines, ranks them with a tiered cost model (static walk,
// communication-DAG replay), confirms the best predictions on the simulated
// machine, and reports predicted vs. measured makespan per candidate, the
// winner's makespan attribution, and the regret of the hand-chosen mapping.
//
// Usage:
//
//	pdmap -file prog.idn -entry gs_iteration -procs 8
//	pdmap -gs -procs 4 -D N=16 -json
//
// The report is deterministic: identical searches emit identical bytes. A
// modeled candidate whose measured makespan differs from its prediction is an
// error (exit 1), never a report — so a pdmap run doubles as a cost-model
// self-check in CI.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"

	"procdecomp/internal/autotune"
	"procdecomp/internal/bench"
	"procdecomp/internal/dist"
	"procdecomp/internal/lang"
	"procdecomp/internal/machine"
)

func main() {
	// Ctrl-C cancels the search through its context: pdmap prints the
	// partial report accumulated so far and exits 130.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	err := run(ctx, os.Args[1:], os.Stdout)
	stop()
	if err != nil {
		fmt.Fprintln(os.Stderr, "pdmap:", err)
		if errors.Is(err, context.Canceled) {
			os.Exit(130)
		}
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("pdmap", flag.ContinueOnError)
	var (
		file     = fs.String("file", "", "Idn source file (default: stdin)")
		gs       = fs.Bool("gs", false, "search the built-in Gauss-Seidel program (paper Fig. 1) instead of -file")
		entry    = fs.String("entry", "", "entry procedure (default with -gs: gs_iteration)")
		distName = fs.String("dist", "", "dist declaration to retarget (default: the program's only one)")
		procs    = fs.Int("procs", 4, "number of processors")
		kinds    = fs.String("kinds", "", "comma-separated mapping families to try (default: all families)")
		spans    = fs.String("spans", "", "comma-separated spans for 1-D families (default: procs and procs/2)")
		modes    = fs.String("modes", "", "comma-separated pipelines: rtr,ctr,opt1,opt2,opt3 (default: all)")
		blks     = fs.String("blks", "", "comma-separated opt3 strip sizes (default: 4,8)")
		keep     = fs.Int("keep", 0, "candidates surviving the static prune (default 12)")
		topk     = fs.Int("topk", 0, "predicted candidates confirmed by real runs (default 6)")
		workers  = fs.Int("workers", 0, "measurement worker pool size (default 4)")
		baseMode = fs.String("baseline", "ctr", "compilation mode of the anchoring baseline run")
		baseBlk  = fs.Int64("baseline-blk", 0, "strip size of the baseline when its mode is opt3")
		warm     = fs.String("warm", "", "warm-start from a previous run: a pdmap JSON report whose winner seeds the branch-and-bound prune")
		jsonOut  = fs.Bool("json", false, "emit the report as JSON instead of text")
		htmlOut  = fs.String("html", "", "also write a self-contained HTML report to this file")
		defines  defineFlag
	)
	fs.Var(&defines, "D", "override a constant, e.g. -D N=64 (repeatable)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var src, name string
	switch {
	case *gs && *file != "":
		return fmt.Errorf("-gs and -file are mutually exclusive")
	case *gs:
		src, name = bench.GSSource, "gauss-seidel"
		if *entry == "" {
			*entry = "gs_iteration"
		}
	case *file != "":
		data, err := os.ReadFile(*file)
		if err != nil {
			return err
		}
		src, name = string(data), *file
	default:
		data, err := io.ReadAll(os.Stdin)
		if err != nil {
			return err
		}
		src, name = string(data), "stdin"
	}
	if *entry == "" {
		return fmt.Errorf("-entry is required")
	}

	dn, err := pickDist(src, *distName)
	if err != nil {
		return err
	}

	space, err := parseSpace(*kinds, *spans, *modes, *blks)
	if err != nil {
		return err
	}

	var seed []autotune.Mapping
	if *warm != "" {
		m, err := warmSeed(*warm)
		if err != nil {
			return err
		}
		seed = []autotune.Mapping{m}
	}

	w := &autotune.Workload{Name: name, Source: src, Entry: *entry, Dist: dn, Defines: defines.vals}
	rep, err := autotune.SearchCtx(ctx, w, machine.DefaultConfig(*procs), autotune.Options{
		Space: space, Keep: *keep, TopK: *topk, Workers: *workers,
		BaselineMode: *baseMode, BaselineBlk: *baseBlk, Seed: seed,
	})
	if err != nil {
		// An interrupted search still returns what it learned: print the
		// partial report before exiting nonzero.
		if rep != nil && errors.Is(err, context.Canceled) {
			if *jsonOut {
				rep.WriteJSON(stdout)
			} else {
				io.WriteString(stdout, rep.Format())
			}
		}
		return err
	}

	if *htmlOut != "" {
		f, err := os.Create(*htmlOut)
		if err != nil {
			return err
		}
		if err := rep.WriteHTML(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if *jsonOut {
		return rep.WriteJSON(stdout)
	}
	_, err = io.WriteString(stdout, rep.Format())
	return err
}

// warmSeed extracts the winning mapping from a previous run's JSON report —
// the candidate key's leading segment, e.g. "all" from "all/ctr" or
// "cyclic_cols(4)" from "cyclic_cols(4)/opt3/blk8".
func warmSeed(path string) (autotune.Mapping, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return autotune.Mapping{}, err
	}
	var rep struct{ Winner string }
	if err := json.Unmarshal(data, &rep); err != nil {
		return autotune.Mapping{}, fmt.Errorf("-warm %s: %v", path, err)
	}
	if rep.Winner == "" {
		return autotune.Mapping{}, fmt.Errorf("-warm %s: report has no winner", path)
	}
	key, _, _ := strings.Cut(rep.Winner, "/")
	m, err := autotune.ParseMapping(key)
	if err != nil {
		return autotune.Mapping{}, fmt.Errorf("-warm %s: %v", path, err)
	}
	return m, nil
}

// pickDist resolves the dist declaration the search varies: the named one, or
// the program's only one.
func pickDist(src, name string) (string, error) {
	prog, err := lang.Parse(src)
	if err != nil {
		return "", err
	}
	var found []string
	for _, d := range prog.Decls {
		if dd, ok := d.(*lang.DistDecl); ok {
			found = append(found, dd.Name)
			if dd.Name == name {
				return name, nil
			}
		}
	}
	if name != "" {
		return "", fmt.Errorf("no dist declaration %s (program has: %s)", name, strings.Join(found, ", "))
	}
	switch len(found) {
	case 0:
		return "", fmt.Errorf("the program has no dist declaration to retarget")
	case 1:
		return found[0], nil
	default:
		return "", fmt.Errorf("the program has %d dist declarations (%s); pick one with -dist",
			len(found), strings.Join(found, ", "))
	}
}

// parseSpace builds the candidate space from the comma-separated flags,
// leaving zero fields for the library defaults.
func parseSpace(kinds, spans, modes, blks string) (autotune.Space, error) {
	var sp autotune.Space
	for _, k := range splitList(kinds) {
		kind, err := dist.Parse(k)
		if err != nil {
			return sp, err
		}
		sp.Kinds = append(sp.Kinds, kind)
	}
	var err error
	if sp.Spans, err = parseInts(spans, "-spans"); err != nil {
		return sp, err
	}
	sp.Modes = splitList(modes)
	if sp.Blks, err = parseInts(blks, "-blks"); err != nil {
		return sp, err
	}
	return sp, nil
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func parseInts(s, flagName string) ([]int64, error) {
	var out []int64
	for _, part := range splitList(s) {
		v, err := strconv.ParseInt(part, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", flagName, err)
		}
		out = append(out, v)
	}
	return out, nil
}

// defineFlag parses repeated -D NAME=VALUE flags.
type defineFlag struct {
	vals map[string]int64
}

func (d *defineFlag) String() string { return fmt.Sprint(d.vals) }

func (d *defineFlag) Set(s string) error {
	name, val, ok := strings.Cut(s, "=")
	if !ok {
		return fmt.Errorf("expected NAME=VALUE, got %q", s)
	}
	v, err := strconv.ParseInt(val, 10, 64)
	if err != nil {
		return fmt.Errorf("bad value in %q: %v", s, err)
	}
	if d.vals == nil {
		d.vals = map[string]int64{}
	}
	d.vals[name] = v
	return nil
}
