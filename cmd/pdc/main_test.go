package main

import (
	"testing"

	"procdecomp/internal/lang"
	"procdecomp/internal/sem"
)

func TestDefineFlag(t *testing.T) {
	var d defineFlag
	if err := d.Set("N=64"); err != nil {
		t.Fatal(err)
	}
	if err := d.Set("S=4"); err != nil {
		t.Fatal(err)
	}
	if d.vals["N"] != 64 || d.vals["S"] != 4 {
		t.Errorf("vals = %v", d.vals)
	}
	if err := d.Set("noequals"); err == nil {
		t.Error("missing '=' should fail")
	}
	if err := d.Set("N=abc"); err == nil {
		t.Error("non-integer value should fail")
	}
	if d.String() == "" {
		t.Error("String should describe the flags")
	}
}

func TestPickEntry(t *testing.T) {
	src := `
proc helper(x: int): int { return x; }
proc top() { let y = helper(3); }
`
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	info, errs := sem.Check(prog, sem.Config{Procs: 2})
	if len(errs) > 0 {
		t.Fatal(errs)
	}
	if got := pickEntry(info, ""); got != "top" {
		t.Errorf("pickEntry = %q, want top (the uncalled procedure)", got)
	}
	if got := pickEntry(info, "helper"); got != "helper" {
		t.Errorf("explicit entry not honoured: %q", got)
	}
}

func TestPickEntryPrefersMain(t *testing.T) {
	src := `
proc main() { }
proc other() { }
`
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	info, errs := sem.Check(prog, sem.Config{Procs: 2})
	if len(errs) > 0 {
		t.Fatal(errs)
	}
	if got := pickEntry(info, ""); got != "main" {
		t.Errorf("pickEntry = %q, want main", got)
	}
}
