// Command pdc is the process-decomposition compiler driver: it parses an
// Idn program, checks it against a machine configuration, performs run-time
// or compile-time resolution (optionally followed by the §4 message
// optimizations), and prints the resulting SPMD program(s).
//
// Usage:
//
//	pdc -file prog.idn -entry gs_iteration -procs 4 -mode ctr [-spec 1]
//	pdc -file prog.idn -mode opt3 -blk 8 -D N=64
//
// Modes: rtr (run-time resolution, one generic program), ctr (compile-time
// resolution, per-processor programs), opt1/opt2/opt3 (ctr plus vectorize /
// +jam / +strip-mine).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"procdecomp/internal/core"
	"procdecomp/internal/lang"
	"procdecomp/internal/sem"
	"procdecomp/internal/spmd"
	"procdecomp/internal/xform"
)

func main() {
	var (
		file    = flag.String("file", "", "Idn source file (default: stdin)")
		entry   = flag.String("entry", "", "entry procedure (default: sole procedure or 'main')")
		procs   = flag.Int("procs", 4, "number of processors")
		mode    = flag.String("mode", "ctr", "rtr | ctr | opt1 | opt2 | opt3")
		spec    = flag.Int("spec", -1, "print only this processor's program (ctr modes)")
		blk     = flag.Int64("blk", 8, "block size for opt3")
		emit    = flag.String("emit", "pseudo", "pseudo (the paper's pseudo-code) | c (iPSC/2 C, Appendix A style)")
		defines defineFlag
	)
	flag.Var(&defines, "D", "override a constant, e.g. -D N=64 (repeatable)")
	flag.Parse()

	src, err := readSource(*file)
	if err != nil {
		fatal(err)
	}
	prog, err := lang.Parse(src)
	if err != nil {
		fatal(err)
	}
	info, errs := sem.Check(prog, sem.Config{Procs: int64(*procs), Defines: defines.vals})
	if len(errs) > 0 {
		for _, e := range errs {
			fmt.Fprintln(os.Stderr, "error:", e)
		}
		os.Exit(1)
	}
	name := pickEntry(info, *entry)
	comp := core.New(info)

	format := spmd.Format
	switch *emit {
	case "pseudo":
	case "c":
		format = spmd.FormatC
	default:
		fatal(fmt.Errorf("unknown -emit %q", *emit))
	}

	if *mode == "rtr" {
		generic, err := comp.CompileRTR(name)
		if err != nil {
			fatal(err)
		}
		fmt.Print(format(generic))
		return
	}

	progs, err := comp.CompileCTR(name, true)
	if err != nil {
		fatal(err)
	}
	switch *mode {
	case "ctr":
	case "opt1":
		xform.Vectorize(progs)
	case "opt2":
		xform.Vectorize(progs)
		xform.Jam(progs)
	case "opt3":
		xform.Vectorize(progs)
		xform.Jam(progs)
		xform.StripMine(progs, *blk)
	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}
	for _, p := range progs {
		if *spec >= 0 && p.Proc != *spec {
			continue
		}
		fmt.Print(format(p))
		fmt.Println()
	}
}

func readSource(file string) (string, error) {
	if file == "" {
		var b strings.Builder
		buf := make([]byte, 64*1024)
		for {
			n, err := os.Stdin.Read(buf)
			b.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return b.String(), nil
	}
	data, err := os.ReadFile(file)
	if err != nil {
		return "", err
	}
	return string(data), nil
}

func pickEntry(info *sem.Info, entry string) string {
	if entry != "" {
		return entry
	}
	if _, ok := info.Procs["main"]; ok {
		return "main"
	}
	if len(info.Procs) == 1 {
		for name := range info.Procs {
			return name
		}
	}
	// Prefer a procedure nothing else calls.
	called := map[string]bool{}
	for _, p := range info.Procs {
		var names []string
		collectCalled(p, &names)
		for _, n := range names {
			called[n] = true
		}
	}
	for name := range info.Procs {
		if !called[name] {
			return name
		}
	}
	fatal(fmt.Errorf("cannot determine entry procedure; use -entry"))
	return ""
}

func collectCalled(p *sem.Proc, out *[]string) {
	var walk func(b *lang.Block)
	var walkExpr func(e lang.Expr)
	walkExpr = func(e lang.Expr) {
		switch e := e.(type) {
		case *lang.CallExpr:
			*out = append(*out, e.Name)
			for _, a := range e.Args {
				walkExpr(a)
			}
		case *lang.BinExpr:
			walkExpr(e.L)
			walkExpr(e.R)
		case *lang.UnExpr:
			walkExpr(e.X)
		case *lang.IndexExpr:
			for _, ix := range e.Indices {
				walkExpr(ix)
			}
		}
	}
	walk = func(b *lang.Block) {
		if b == nil {
			return
		}
		for _, st := range b.Stmts {
			switch st := st.(type) {
			case *lang.CallStmt:
				*out = append(*out, st.Name)
				for _, a := range st.Args {
					walkExpr(a)
				}
			case *lang.LetStmt:
				walkExpr(st.Init)
			case *lang.AssignStmt:
				walkExpr(st.Value)
			case *lang.StoreStmt:
				walkExpr(st.Value)
			case *lang.ForStmt:
				walk(st.Body)
			case *lang.IfStmt:
				walk(st.Then)
				walk(st.Else)
			case *lang.ReturnStmt:
				if st.Value != nil {
					walkExpr(st.Value)
				}
			}
		}
	}
	walk(p.Decl.Body)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pdc:", err)
	os.Exit(1)
}

// defineFlag parses repeated -D NAME=VALUE flags.
type defineFlag struct {
	vals map[string]int64
}

func (d *defineFlag) String() string { return fmt.Sprint(d.vals) }

func (d *defineFlag) Set(s string) error {
	name, val, ok := strings.Cut(s, "=")
	if !ok {
		return fmt.Errorf("expected NAME=VALUE, got %q", s)
	}
	v, err := strconv.ParseInt(val, 10, 64)
	if err != nil {
		return fmt.Errorf("bad value in %q: %v", s, err)
	}
	if d.vals == nil {
		d.vals = map[string]int64{}
	}
	d.vals[name] = v
	return nil
}
