// Command pdbench regenerates the paper's evaluation: Fig. 6 (effect of
// compile-time and run-time resolution), Fig. 7 (effect of message-passing
// optimizations), the footnote-3 message counts, the §4 block-size sweep,
// and the §4 loop-interchange ablation.
//
// Usage:
//
//	pdbench                 # everything at paper scale (N=128)
//	pdbench -fig 6 -n 64    # one figure at another grid size
//	pdbench -procs 2,4,8
//
// Every measured run is validated against the sequential reference
// interpreter before its numbers are reported.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"procdecomp/internal/bench"
	"procdecomp/internal/enginebench"
	"procdecomp/internal/machine"
)

func main() {
	var (
		fig       = flag.String("fig", "all", "6 | 7 | messages | blocksize | interchange | sharedmem | utilization | attribution | balance | multiplex | faults | engine | none | all (engine runs only when named)")
		n         = flag.Int64("n", 128, "grid size N (the paper uses 128)")
		blk       = flag.Int64("blk", bench.DefaultBlk, "block size for Optimized III / handwritten")
		procsCS   = flag.String("procs", "", "comma-separated processor counts (default: the paper's sweep)")
		jsonOut   = flag.String("json", "", "write the Fig. 6 sweep with critical-path attribution as JSON to this file")
		traceOut  = flag.String("trace", "", "write a Chrome trace-event JSON of one Optimized III Fig. 6 run (open in Perfetto, analyze with pdtrace)")
		faultRate = flag.Float64("faults", 0.10, "top drop rate of the fault sweep (-fig faults)")
		faultSeed = flag.Uint64("fault-seed", 1, "seed for the fault sweep's chaos schedules")

		engineJSON = flag.String("engine-json", "", "write the engine differential benchmark as JSON to this file (implies -fig engine)")
		minSpeedup = flag.Float64("engine-min-speedup", 5, "fail unless the event loop beats the goroutine baseline by this factor on the gated shape")
	)
	flag.Parse()

	procs := bench.DefaultProcs
	if *procsCS != "" {
		var err error
		procs, err = parseProcs(*procsCS)
		if err != nil {
			fatal(err)
		}
	}

	run := func(name string, f func() (*bench.Series, error)) {
		s, err := f()
		if err != nil {
			fatal(fmt.Errorf("%s: %w", name, err))
		}
		fmt.Println(s.Format())
	}

	want := func(name string) bool { return *fig == "all" || *fig == name }

	if want("6") {
		run("figure 6", func() (*bench.Series, error) { return bench.Figure6(*n, procs, *blk) })
	}
	if want("7") {
		run("figure 7", func() (*bench.Series, error) { return bench.Figure7(*n, procs, *blk) })
	}
	if want("messages") {
		p := 8
		for _, q := range procs {
			if q > 1 {
				p = q
				break
			}
		}
		run("message counts", func() (*bench.Series, error) { return bench.MessageTable(*n, p, *blk) })
	}
	if want("blocksize") {
		ns := []int64{*n / 2, *n, *n * 2}
		blks := []int64{1, 2, 4, 8, 16, 32, 63}
		run("block-size sweep", func() (*bench.Series, error) { return bench.BlockSizeSweep(ns, blks, 8) })
	}
	if want("interchange") {
		run("interchange", func() (*bench.Series, error) { return bench.InterchangeAblation(*n, 8, *blk) })
	}
	if want("sharedmem") {
		run("shared memory", func() (*bench.Series, error) { return bench.SharedMemoryAblation(*n, 8, *blk) })
	}
	if want("utilization") {
		run("utilization", func() (*bench.Series, error) { return bench.UtilizationTable(*n, 8, *blk) })
	}
	if want("attribution") {
		run("attribution", func() (*bench.Series, error) { return bench.AttributionTable(*n, 8, *blk) })
	}
	if want("balance") {
		run("load balance", func() (*bench.Series, error) { return bench.LoadBalanceTable(8) })
	}
	if want("multiplex") {
		// The conservative co-scheduler is slower to simulate; half the grid
		// keeps the full sweep quick.
		run("multiplexing", func() (*bench.Series, error) { return bench.MultiplexTable(4, *n/2, *blk) })
	}
	if want("faults") {
		rates := []float64{0, *faultRate / 5, *faultRate / 2, *faultRate}
		run("fault sweep", func() (*bench.Series, error) {
			return bench.FaultSweep(*n/2, *blk, 8, *faultSeed, rates)
		})
	}

	if *fig == "engine" || *engineJSON != "" {
		rep, err := enginebench.RunEngineBench(*minSpeedup)
		if err != nil {
			fatal(fmt.Errorf("engine benchmark: %w", err))
		}
		fmt.Println(rep.Format())
		if *engineJSON != "" {
			f, err := os.Create(*engineJSON)
			if err != nil {
				fatal(err)
			}
			enc := json.NewEncoder(f)
			enc.SetIndent("", "  ")
			if err := enc.Encode(rep); err != nil {
				f.Close()
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Printf("json: engine differential benchmark -> %s\n", *engineJSON)
		}
		if !rep.Pass {
			fatal(fmt.Errorf("engine gate: event loop is %.1fx faster than the goroutine baseline on the gated shape, need >= %.1fx",
				rep.GateSpeedup, *minSpeedup))
		}
	}

	if *jsonOut != "" {
		recs, err := bench.Figure6JSON(*n, procs, *blk)
		if err != nil {
			fatal(fmt.Errorf("json: %w", err))
		}
		f, err := os.Create(*jsonOut)
		if err != nil {
			fatal(err)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(recs); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("json: %d records (Fig. 6 sweep with makespan attribution) -> %s\n", len(recs), *jsonOut)
	}

	if *traceOut != "" {
		p := 8
		for _, q := range procs {
			if q > 1 {
				p = q
				break
			}
		}
		st, d, err := bench.DumpGS(machine.DefaultConfig(p), bench.OptimizedIII, *n, *blk)
		if err != nil {
			fatal(fmt.Errorf("trace: %w", err))
		}
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		if err := d.WriteTrace(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("trace: Optimized III, S=%d, N=%d, blksize %d: makespan %d, %d messages -> %s\n",
			p, *n, *blk, st.Makespan, d.Messages(), *traceOut)
	}
}

func parseProcs(s string) ([]int, error) {
	var out []int
	seen := map[int]bool{}
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad processor count %q", part)
		}
		if v <= 0 {
			return nil, fmt.Errorf("processor count %d must be positive", v)
		}
		if seen[v] {
			return nil, fmt.Errorf("duplicate processor count %d", v)
		}
		seen[v] = true
		out = append(out, v)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pdbench:", err)
	os.Exit(1)
}
