package main

import (
	"reflect"
	"strings"
	"testing"
)

func TestParseProcs(t *testing.T) {
	tests := []struct {
		in      string
		want    []int
		wantErr string
	}{
		{in: "1,2,4,8", want: []int{1, 2, 4, 8}},
		{in: " 2 , 16 ", want: []int{2, 16}},
		{in: "4", want: []int{4}},
		{in: "2,x", wantErr: `bad processor count "x"`},
		{in: "", wantErr: `bad processor count ""`},
		{in: "0", wantErr: "must be positive"},
		{in: "4,-2", wantErr: "must be positive"},
		{in: "2,4,2", wantErr: "duplicate processor count 2"},
	}
	for _, tt := range tests {
		got, err := parseProcs(tt.in)
		if tt.wantErr != "" {
			if err == nil || !strings.Contains(err.Error(), tt.wantErr) {
				t.Errorf("parseProcs(%q) err = %v, want containing %q", tt.in, err, tt.wantErr)
			}
			continue
		}
		if err != nil {
			t.Errorf("parseProcs(%q) failed: %v", tt.in, err)
			continue
		}
		if !reflect.DeepEqual(got, tt.want) {
			t.Errorf("parseProcs(%q) = %v, want %v", tt.in, got, tt.want)
		}
	}
}
