// Command pdserve runs the toolchain as a long-lived HTTP service: POST
// /compile, /run, /search, /trace with the same semantics as the pdc, pdrun,
// pdmap and pdtrace commands, plus the robustness a shared service needs —
// a bounded admission queue with adaptive load shedding, per-request
// deadlines, panic-isolated workers with retries, graceful drain on SIGTERM,
// and a crash-safe persistent result cache.
//
// Beyond the synchronous endpoints, POST /jobs accepts durable async jobs
// (journaled before the 202, re-run after a crash), GET /jobs/<id> serves a
// job's result, GET /jobs/<id>/events streams its NDJSON progress, and
// /healthz and /readyz report liveness and readiness.
//
// Observability: GET /metrics serves the full counter/gauge/histogram
// catalog in Prometheus text exposition; every request carries a request ID
// (adopted from X-Request-Id or minted, always echoed back) that tags its
// structured log lines (GET /logz?req=<id>), its job events, and its trace;
// ?trace=1 on a synchronous request — or on POST /jobs, read back via GET
// /jobs/<id>/trace — returns a Chrome trace stitching the service's
// wall-clock spans with the machine's virtual-time spans.
//
// With -adapt the server watches completed /run traffic per scenario, and
// when the workload shifts (new problem size dominating the profile) it runs
// a bounded autotune search in the background and hot-swaps the winning
// mapping for subsequent requests — every decision journaled so a restart
// resumes the preference. GET /adapt reports the controller's state, GET
// /adapt/journal streams its decisions, and adapted responses carry an
// X-Adapt-Mapping header naming the active mapping.
//
// Usage:
//
//	pdserve -addr :8420 -cache /var/cache/pdserve
//	pdserve -addr :8420 -cache /var/cache/pdserve -adapt -cache-max-bytes 1073741824
//	pdserve -smoke -json    # self-check: serve, hammer, report, exit
//	pdserve -debug-addr 127.0.0.1:8421   # net/http/pprof, on its own listener
//
// Every response is a deterministic function of the request body; identical
// requests are answered with identical bytes, before or after a restart.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"procdecomp/internal/adapt"
	"procdecomp/internal/serve"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:8420", "listen address")
		queue      = flag.Int("queue", 64, "admission queue depth (beyond it, requests are shed with 429)")
		workers    = flag.Int("workers", 4, "evaluation worker pool size")
		deadline   = flag.Duration("deadline", 30*time.Second, "default per-request deadline")
		maxDL      = flag.Duration("max-deadline", 2*time.Minute, "largest deadline a request may ask for")
		drain      = flag.Duration("drain", 10*time.Second, "graceful shutdown drain budget")
		cacheDir   = flag.String("cache", "", "persistent result cache + job journal directory (empty = neither)")
		cacheMax   = flag.Int64("cache-max-bytes", 0, "disk cache size cap in bytes; least-recently-used entries evict past it (0 = unbounded)")
		compactEv  = flag.Int("journal-compact-every", 4096, "fold the job and adapt journals after this many appended records (negative = only on open)")
		adaptOn    = flag.Bool("adapt", false, "watch /run traffic per scenario and re-decompose in the background when the workload shifts (needs -cache for durable decisions)")
		adaptObs   = flag.Int("adapt-min-obs", 16, "observations a scenario needs before a shift may trigger")
		adaptDwell = flag.Int("adapt-dwell", 8, "consecutive shifted observations required before a search triggers")
		adaptCool  = flag.Int("adapt-cooldown", 64, "observations a scenario stays quiet after a trigger")
		adaptGain  = flag.Float64("adapt-min-gain", 0.05, "relative measured improvement required before a mapping is swapped in")
		retries    = flag.Int("retries", 2, "retries for a panicking evaluation before the request fails")
		fairAt     = flag.Float64("fair-share-at", 0.5, "queue occupancy at which per-tenant fair-share caps engage (>=1 disables)")
		degradeAt  = flag.Float64("degrade-at", 0.75, "smoothed occupancy past which /search degrades to a bounded budget (>=1 disables)")
		degKeep    = flag.Int("degrade-keep", 4, "degraded /search candidate budget")
		panicEvery = flag.Int("chaos-panic-every", 0, "chaos: every Nth evaluation panics once (0 = off)")
		smoke      = flag.Bool("smoke", false, "self-check: start a server, drive concurrent load through injected panics, report, exit")
		smokeN     = flag.Int("smoke-requests", 60, "smoke request count")
		smokeC     = flag.Int("smoke-concurrency", 8, "smoke client concurrency")
		jsonOut    = flag.String("json", "", "with -smoke: also write the report to this file")
		metricsOut = flag.String("metrics-json", "", "with -smoke: write the scraped (and reconciled) counter samples to this file")
		debugAddr  = flag.String("debug-addr", "", "also serve net/http/pprof on this address (kept off the public listener)")
		logJSON    = flag.Bool("log-json", false, "emit structured logs as JSON on stderr (default: human-readable text)")
		logLevel   = flag.String("log-level", "info", "minimum log level: debug, info, warn, error")
	)
	flag.Parse()

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		fatal(fmt.Errorf("bad -log-level %q: %w", *logLevel, err))
	}
	hopts := &slog.HandlerOptions{Level: level}
	var handler slog.Handler = slog.NewTextHandler(os.Stderr, hopts)
	if *logJSON {
		handler = slog.NewJSONHandler(os.Stderr, hopts)
	}

	cfg := serve.Config{
		QueueDepth: *queue, Workers: *workers,
		DefaultDeadline: *deadline, MaxDeadline: *maxDL, DrainTimeout: *drain,
		Retries: *retries, CacheDir: *cacheDir, PanicEvery: *panicEvery,
		CacheMaxBytes: *cacheMax, JournalCompactEvery: *compactEv,
		FairShareAt: *fairAt, DegradeAt: *degradeAt, DegradeKeep: *degKeep,
		LogHandler: handler,
		Adapt: adapt.Config{
			Enabled: *adaptOn, MinObs: *adaptObs, Dwell: *adaptDwell,
			Cooldown: *adaptCool, MinGain: *adaptGain,
		},
	}

	// The profiler is opt-in and always on its own listener: exposing pprof
	// on the public address would hand every client heap and goroutine dumps.
	if *debugAddr != "" {
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("pdserve: debug listener (pprof) on %s\n", dln.Addr())
		go http.Serve(dln, dmux)
	}

	if *smoke {
		rep, err := serve.Smoke(serve.SmokeConfig{Requests: *smokeN, Concurrency: *smokeC, Server: cfg})
		if rep != nil {
			rep.WriteJSON(os.Stdout)
			if *jsonOut != "" {
				writeJSONFile(*jsonOut, rep.WriteJSON)
			}
			if *metricsOut != "" {
				// Just the reconciled counter samples — a stable artifact CI
				// can diff between runs without the timing fields.
				writeJSONFile(*metricsOut, func(w io.Writer) error {
					enc := json.NewEncoder(w)
					enc.SetIndent("", "  ")
					return enc.Encode(rep.Metrics)
				})
			}
		}
		if err != nil {
			fatal(err)
		}
		return
	}

	s, err := serve.New(cfg)
	if err != nil {
		fatal(err)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	hs := &http.Server{Handler: s.Handler()}
	fmt.Printf("pdserve: listening on %s (queue %d, workers %d, cache %q)\n",
		ln.Addr(), *queue, *workers, *cacheDir)

	// SIGTERM/SIGINT: stop accepting, drain in-flight work up to the drain
	// budget, cancel stragglers, then exit.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	select {
	case err := <-serveErr:
		fatal(err)
	case <-ctx.Done():
	}
	fmt.Println("pdserve: draining")
	shutCtx, cancel := context.WithTimeout(context.Background(), *drain+5*time.Second)
	defer cancel()
	// Drain the server first: every job reaches a terminal state and every
	// open event stream receives its terminal NDJSON event while the
	// listener is still up. Only then close the listener — the other order
	// would cut live streams off mid-job.
	if err := s.Shutdown(shutCtx); err != nil {
		fmt.Fprintln(os.Stderr, "pdserve:", err)
	}
	hs.Shutdown(shutCtx)
	st := s.Stats()
	fmt.Printf("pdserve: done: %d completed, %d failed, %d shed, %d panics isolated\n",
		st.Completed, st.Failed, st.Shed, st.Panics)
}

func writeJSONFile(path string, write func(io.Writer) error) {
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	if err := write(f); err != nil {
		f.Close()
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pdserve:", err)
	os.Exit(1)
}
