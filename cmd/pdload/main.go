// Command pdload is the overload harness for pdserve: it boots an
// in-process server, waits for /readyz, and drives thousands of concurrent
// mixed requests — synchronous endpoints, durable async jobs, NDJSON event
// streams, deadline-doomed requests, mid-flight disconnects, and injected
// panics — then reports latency percentiles and the robustness gates:
// zero hung operations, every acknowledged job terminal, and byte-identical
// bodies for equal request identities.
//
// Usage:
//
//	pdload                         # 5000 requests, 2000 clients, 2 seeded runs
//	pdload -requests 2000 -concurrency 500 -repeat 1
//	pdload -json BENCH_load.json   # also write the first run's report
//	pdload -metrics                # also gate on /metrics reconciling with ground truth
//	pdload -mix tame -concurrency 1 -metrics-compare
//	                               # racy ops remapped; counter values must
//	                               # reproduce exactly across the seeded runs
//	pdload -mix phase -json BENCH_adapt.json
//	                               # seeded workload-shift experiment: the
//	                               # adaptation loop must switch exactly once,
//	                               # beat the no-adapt control, and journal
//	                               # byte-identical decisions across runs
//
// With -repeat > 1 every run uses the same seed against a fresh server and
// the digests of later runs must match the first — the cross-run half of
// the determinism gate. The exit status is non-zero when any gate fails.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"procdecomp/internal/load"
	"procdecomp/internal/serve"
)

func main() {
	var (
		requests    = flag.Int("requests", 5000, "total operations per run")
		concurrency = flag.Int("concurrency", 2000, "concurrent client goroutines")
		seed        = flag.Uint64("seed", 1, "seed for the request mix, tenants, timeouts and disconnects")
		repeat      = flag.Int("repeat", 2, "seeded runs; later runs must reproduce the first run's bytes")
		queue       = flag.Int("queue", 64, "server admission queue depth")
		workers     = flag.Int("workers", 4, "server worker pool size")
		panicEvery  = flag.Int("chaos-panic-every", 13, "server chaos: every Nth evaluation panics once (0 = off)")
		degradeAt   = flag.Float64("degrade-at", 0.5, "server occupancy past which /search degrades")
		timeout     = flag.Duration("client-timeout", 60*time.Second, "per-operation hang bound")
		jsonOut     = flag.String("json", "", "write the first run's report to this file")
		mixFlag     = flag.String("mix", "chaos", "operation mix: chaos (disconnects + doomed deadlines), tame (reproducible outcome counters), or phase (workload-shift adaptation experiment)")
		metricsGate = flag.Bool("metrics", false, "fail the gate when the post-drain /metrics scrape does not reconcile with the server's ground truth")
		metricsCmp  = flag.Bool("metrics-compare", false, "with -repeat > 1: require later runs to scrape the same counter values as run 1 (needs -mix tame)")
	)
	flag.Parse()

	if *mixFlag == "phase" {
		runPhase(*seed, *jsonOut)
		return
	}
	if *metricsCmp && *mixFlag != "tame" {
		fatal(fmt.Errorf("-metrics-compare needs -mix tame: the chaos mix races disconnects and deadlines against the server, so its counters are not reproducible"))
	}

	cfg := load.Config{
		Requests: *requests, Concurrency: *concurrency, Seed: *seed,
		Mix:           *mixFlag,
		ClientTimeout: *timeout,
		Server: serve.Config{
			QueueDepth: *queue, Workers: *workers,
			PanicEvery: *panicEvery, DegradeAt: *degradeAt,
			AdmitSeed: *seed,
		},
	}

	var first *load.Report
	failed := false
	for run := 1; run <= *repeat; run++ {
		rep, err := load.Run(cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("pdload: run %d/%d: %d ops in %dms  p50 %.1fms p99 %.1fms p999 %.1fms  hung %d  jobs %d/%d terminal  degraded %d  shed %d  doomed %d\n",
			run, *repeat, rep.Requests, rep.ElapsedMS,
			rep.Latency.P50, rep.Latency.P99, rep.Latency.P999,
			rep.Hung, rep.JobsTerminal, rep.JobsSubmitted,
			rep.Stats.Degraded, rep.Stats.Shed, rep.Stats.Doomed)
		if err := rep.Gate(*metricsGate); err != nil {
			fmt.Fprintln(os.Stderr, "pdload:", err)
			failed = true
		}
		if rep.MetricsCheck != "" && !*metricsGate {
			fmt.Fprintln(os.Stderr, "pdload: warning: metrics reconciliation:", rep.MetricsCheck)
		}
		if first == nil {
			first = rep
			if *jsonOut != "" {
				f, err := os.Create(*jsonOut)
				if err != nil {
					fatal(err)
				}
				if err := rep.WriteJSON(f); err != nil {
					f.Close()
					fatal(err)
				}
				if err := f.Close(); err != nil {
					fatal(err)
				}
			}
			continue
		}
		if bad := load.CompareDigests(first.Digests, rep.Digests); len(bad) > 0 {
			fmt.Fprintf(os.Stderr, "pdload: run %d bytes differ from run 1 for %d identities: %v\n", run, len(bad), bad)
			failed = true
		} else {
			fmt.Printf("pdload: run %d reproduced run 1 byte-for-byte on %d shared identities\n", run, shared(first.Digests, rep.Digests))
		}
		if *metricsCmp {
			if bad := load.CompareMetrics(first.Metrics, rep.Metrics); len(bad) > 0 {
				fmt.Fprintf(os.Stderr, "pdload: run %d scraped different counters from run 1 for %d samples: %v\n", run, len(bad), bad)
				failed = true
			} else {
				fmt.Printf("pdload: run %d scraped identical counter values to run 1 (%d samples compared)\n", run, len(first.Metrics))
			}
		}
	}
	if failed {
		os.Exit(1)
	}
}

// runPhase drives the phase-shift experiment: four in-process servers (two
// seeded adaptive runs, a no-adapt control, an unshifted control) prove that
// the adaptation loop triggers exactly once on a workload shift, beats the
// control's steady state, journals byte-identical decisions under a fixed
// seed, and stays silent when the workload never shifts.
func runPhase(seed uint64, jsonOut string) {
	rep, err := load.RunPhase(load.PhaseConfig{Seed: seed})
	if err != nil {
		fatal(err)
	}
	for _, run := range []*load.PhaseRun{&rep.Adaptive, &rep.Repeat, &rep.Control, &rep.Unshifted} {
		fmt.Printf("pdload: phase %-9s  %3d ops  triggers %d  switches %d  steady makespan %-6d mapping %q\n",
			run.Label, run.Requests, run.Triggers, run.Switches, run.SteadyMakespan, run.Mapping)
	}
	if rep.Control.SteadyMakespan > 0 {
		gain := 1 - float64(rep.Adaptive.SteadyMakespan)/float64(rep.Control.SteadyMakespan)
		fmt.Printf("pdload: phase steady-state gain over no-adapt control: %.1f%% (gate ≥ %.1f%%)\n",
			gain*100, rep.GainFrac*100)
	}
	if jsonOut != "" {
		f, err := os.Create(jsonOut)
		if err != nil {
			fatal(err)
		}
		if err := rep.WriteJSON(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
	if err := rep.Gate(); err != nil {
		fatal(err)
	}
	fmt.Println("pdload: phase gates passed: one switch per shifted run, byte-identical decisions across seeds, silent unshifted control")
}

func shared(a, b map[string]string) int {
	n := 0
	for k := range a {
		if _, ok := b[k]; ok {
			n++
		}
	}
	return n
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pdload:", err)
	os.Exit(1)
}
