package istruct

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestIVar(t *testing.T) {
	x := NewIVar("a")
	if x.Defined() {
		t.Error("fresh IVar should be undefined")
	}
	if _, err := x.Read(); err == nil {
		t.Error("read before write should fail")
	}
	if err := x.Write(5); err != nil {
		t.Fatal(err)
	}
	v, err := x.Read()
	if err != nil || v != 5 {
		t.Fatalf("read = %v, %v", v, err)
	}
	if err := x.Write(6); err == nil {
		t.Error("second write should fail")
	}
	var ie *Error
	if err := x.Write(6); !errors.As(err, &ie) || ie.Op != "write" {
		t.Errorf("error type: %v", err)
	}
}

func TestMatrixWriteOnce(t *testing.T) {
	m, err := NewMatrix("New", 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows() != 3 || m.Cols() != 4 || m.Name() != "New" {
		t.Error("dimension accessors wrong")
	}
	if err := m.Write(2, 3, 7); err != nil {
		t.Fatal(err)
	}
	v, err := m.Read(2, 3)
	if err != nil || v != 7 {
		t.Fatalf("read = %v, %v", v, err)
	}
	// "If A[i1,i2] has already been written into, a run-time error occurs."
	if err := m.Write(2, 3, 8); err == nil {
		t.Error("redefinition should fail")
	}
	// "If A[i1,i2] is undefined, a run-time error occurs."
	if _, err := m.Read(1, 1); err == nil {
		t.Error("read of undefined element should fail")
	}
	if !m.Defined(2, 3) || m.Defined(1, 1) || m.Defined(9, 9) {
		t.Error("Defined misreports")
	}
}

func TestMatrixBounds(t *testing.T) {
	m, _ := NewMatrix("A", 2, 2)
	for _, idx := range [][2]int64{{0, 1}, {1, 0}, {3, 1}, {1, 3}, {-1, -1}} {
		if err := m.Write(idx[0], idx[1], 1); err == nil {
			t.Errorf("write%v should be out of bounds", idx)
		}
		if _, err := m.Read(idx[0], idx[1]); err == nil {
			t.Errorf("read%v should be out of bounds", idx)
		}
	}
}

func TestMatrixBadDims(t *testing.T) {
	if _, err := NewMatrix("A", 0, 3); err == nil {
		t.Error("zero rows should fail")
	}
	if _, err := NewMatrix("A", 3, -1); err == nil {
		t.Error("negative cols should fail")
	}
}

func TestErrorMessages(t *testing.T) {
	m, _ := NewMatrix("New", 2, 2)
	_, err := m.Read(1, 2)
	if !strings.Contains(err.Error(), "New[1 2]") || !strings.Contains(err.Error(), "undefined") {
		t.Errorf("unhelpful error: %v", err)
	}
	m.Write(1, 2, 0)
	err = m.Write(1, 2, 0)
	if !strings.Contains(err.Error(), "already written") {
		t.Errorf("unhelpful error: %v", err)
	}
	x := NewIVar("a")
	if _, err := x.Read(); !strings.Contains(err.Error(), "a") {
		t.Errorf("scalar error should name the variable: %v", err)
	}
}

func TestVector(t *testing.T) {
	v, err := NewVector("t", 5)
	if err != nil {
		t.Fatal(err)
	}
	if v.Len() != 5 {
		t.Error("length wrong")
	}
	if err := v.Write(1, 10); err != nil {
		t.Fatal(err)
	}
	if err := v.Write(5, 50); err != nil {
		t.Fatal(err)
	}
	if x, err := v.Read(5); err != nil || x != 50 {
		t.Fatalf("read = %v, %v", x, err)
	}
	if err := v.Write(1, 11); err == nil {
		t.Error("redefinition should fail")
	}
	if _, err := v.Read(2); err == nil {
		t.Error("read undefined should fail")
	}
	if err := v.Write(6, 0); err == nil {
		t.Error("out of bounds write should fail")
	}
	if _, err := v.Read(0); err == nil {
		t.Error("out of bounds read should fail")
	}
	if !v.Defined(1) || v.Defined(2) || v.Defined(99) {
		t.Error("Defined misreports")
	}
	if _, err := NewVector("t", 0); err == nil {
		t.Error("zero-length vector should fail")
	}
}

func TestSnapshot(t *testing.T) {
	m, _ := NewMatrix("A", 2, 3)
	m.Write(1, 1, 1.5)
	m.Write(2, 3, 2.5)
	vals, oks := m.Snapshot()
	if !oks[0][0] || vals[0][0] != 1.5 {
		t.Error("snapshot (1,1) wrong")
	}
	if !oks[1][2] || vals[1][2] != 2.5 {
		t.Error("snapshot (2,3) wrong")
	}
	if oks[0][1] || oks[1][0] {
		t.Error("snapshot claims undefined elements are defined")
	}
}

// Property: a read returns exactly the value of the unique successful write.
func TestReadReturnsWrittenValue(t *testing.T) {
	f := func(writes []struct {
		I, J uint8
		V    float64
	}) bool {
		m, _ := NewMatrix("A", 16, 16)
		first := map[[2]int64]float64{}
		for _, w := range writes {
			i, j := int64(w.I%16)+1, int64(w.J%16)+1
			err := m.Write(i, j, w.V)
			if _, dup := first[[2]int64{i, j}]; dup {
				if err == nil {
					return false // duplicate write must fail
				}
			} else {
				if err != nil {
					return false // first write must succeed
				}
				first[[2]int64{i, j}] = w.V
			}
		}
		for k, v := range first {
			got, err := m.Read(k[0], k[1])
			if err != nil || got != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
