// Package istruct implements I-structures: the write-once arrays of Id
// Nouveau (paper §2.1), borrowed from logic programming languages. An
// I-structure separates storage allocation from element definition — like an
// imperative array — but an element cannot be redefined once written, and
// reading an undefined element is a run-time error.
//
// The package provides write-once scalars (IVar), vectors, and matrices with
// 1-based indexing to match the paper's programs.
package istruct

import "fmt"

// Value is the element type held by I-structures.
type Value = float64

// state of one element.
type state byte

const (
	empty state = iota
	full
)

// Error is an I-structure run-time error: a read of an undefined element or
// a second write to a defined one.
type Error struct {
	Op    string // "read" or "write"
	Name  string
	Index []int64
}

func (e *Error) Error() string {
	if len(e.Index) == 0 {
		return fmt.Sprintf("istruct: %s of %s: %s", e.Op, e.Name, e.describe())
	}
	return fmt.Sprintf("istruct: %s of %s%v: %s", e.Op, e.Name, e.Index, e.describe())
}

func (e *Error) describe() string {
	if e.Op == "read" {
		return "element is undefined"
	}
	return "element already written"
}

// IVar is a write-once scalar.
type IVar struct {
	name string
	v    Value
	st   state
}

// NewIVar allocates an empty write-once scalar; name is used in errors.
func NewIVar(name string) *IVar { return &IVar{name: name} }

// Write defines the scalar's value; a second write is an error.
func (x *IVar) Write(v Value) error {
	if x.st == full {
		return &Error{Op: "write", Name: x.name}
	}
	x.v, x.st = v, full
	return nil
}

// Read returns the value; reading before the write is an error.
func (x *IVar) Read() (Value, error) {
	if x.st != full {
		return 0, &Error{Op: "read", Name: x.name}
	}
	return x.v, nil
}

// Defined reports whether the scalar has been written.
func (x *IVar) Defined() bool { return x.st == full }

// Matrix is a write-once two-dimensional array with 1-based indices, created
// by the paper's matrix(e1,e2) primitive.
type Matrix struct {
	name       string
	rows, cols int64
	vals       []Value
	sts        []state
}

// NewMatrix allocates an empty rows×cols I-structure matrix.
func NewMatrix(name string, rows, cols int64) (*Matrix, error) {
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("istruct: matrix(%d, %d): dimensions must be positive", rows, cols)
	}
	return &Matrix{
		name: name, rows: rows, cols: cols,
		vals: make([]Value, rows*cols),
		sts:  make([]state, rows*cols),
	}, nil
}

// Rows returns the row count.
func (m *Matrix) Rows() int64 { return m.rows }

// Cols returns the column count.
func (m *Matrix) Cols() int64 { return m.cols }

// Name returns the matrix's name as used in error messages.
func (m *Matrix) Name() string { return m.name }

func (m *Matrix) offset(i, j int64) (int64, error) {
	if i < 1 || i > m.rows || j < 1 || j > m.cols {
		return 0, fmt.Errorf("istruct: %s[%d,%d]: index out of bounds (%dx%d)", m.name, i, j, m.rows, m.cols)
	}
	return (i-1)*m.cols + (j - 1), nil
}

// Write stores v into element (i,j): the paper's A[i1,i2] = e. Writing a
// defined element is a run-time error.
func (m *Matrix) Write(i, j int64, v Value) error {
	off, err := m.offset(i, j)
	if err != nil {
		return err
	}
	if m.sts[off] == full {
		return &Error{Op: "write", Name: m.name, Index: []int64{i, j}}
	}
	m.vals[off], m.sts[off] = v, full
	return nil
}

// Read returns element (i,j): the paper's A[i1,i2]. Reading an undefined
// element is a run-time error.
func (m *Matrix) Read(i, j int64) (Value, error) {
	off, err := m.offset(i, j)
	if err != nil {
		return 0, err
	}
	if m.sts[off] != full {
		return 0, &Error{Op: "read", Name: m.name, Index: []int64{i, j}}
	}
	return m.vals[off], nil
}

// Defined reports whether element (i,j) has been written; out-of-bounds
// indices report false.
func (m *Matrix) Defined(i, j int64) bool {
	off, err := m.offset(i, j)
	return err == nil && m.sts[off] == full
}

// Snapshot copies the defined elements into a dense [][]Value with ok flags;
// useful for comparing sequential and distributed executions.
func (m *Matrix) Snapshot() ([][]Value, [][]bool) {
	vals := make([][]Value, m.rows)
	oks := make([][]bool, m.rows)
	for i := int64(0); i < m.rows; i++ {
		vals[i] = make([]Value, m.cols)
		oks[i] = make([]bool, m.cols)
		for j := int64(0); j < m.cols; j++ {
			off := i*m.cols + j
			vals[i][j] = m.vals[off]
			oks[i][j] = m.sts[off] == full
		}
	}
	return vals, oks
}

// Vector is a write-once one-dimensional array with 1-based indexing.
type Vector struct {
	name string
	n    int64
	vals []Value
	sts  []state
}

// NewVector allocates an empty length-n I-structure vector.
func NewVector(name string, n int64) (*Vector, error) {
	if n <= 0 {
		return nil, fmt.Errorf("istruct: vector(%d): length must be positive", n)
	}
	return &Vector{name: name, n: n, vals: make([]Value, n), sts: make([]state, n)}, nil
}

// Len returns the vector length.
func (v *Vector) Len() int64 { return v.n }

// Write stores x into element i.
func (v *Vector) Write(i int64, x Value) error {
	if i < 1 || i > v.n {
		return fmt.Errorf("istruct: %s[%d]: index out of bounds (len %d)", v.name, i, v.n)
	}
	if v.sts[i-1] == full {
		return &Error{Op: "write", Name: v.name, Index: []int64{i}}
	}
	v.vals[i-1], v.sts[i-1] = x, full
	return nil
}

// Read returns element i.
func (v *Vector) Read(i int64) (Value, error) {
	if i < 1 || i > v.n {
		return 0, fmt.Errorf("istruct: %s[%d]: index out of bounds (len %d)", v.name, i, v.n)
	}
	if v.sts[i-1] != full {
		return 0, &Error{Op: "read", Name: v.name, Index: []int64{i}}
	}
	return v.vals[i-1], nil
}

// Defined reports whether element i has been written.
func (v *Vector) Defined(i int64) bool {
	return i >= 1 && i <= v.n && v.sts[i-1] == full
}
