package autotune

import (
	"fmt"

	"procdecomp/internal/exec"
	"procdecomp/internal/expr"
	"procdecomp/internal/lang"
	"procdecomp/internal/machine"
	"procdecomp/internal/spmd"
)

// The static cost model: an abstract walk of each process's compiled program
// that mirrors the interpreter's cost accounting charge for charge
// (internal/exec) without computing any data values. Control flow — loop
// bounds, guards, message endpoints — is evaluated over the integer
// environment exactly as the interpreter would; data values are tracked as
// "unknown" and only become an error if control flow ever depends on one
// (ErrUnmodeled, the fallback-to-measurement signal).
//
// The walk of one process yields its action sequence: coalesced compute
// spans, sends, and receives, in program order. Because no modeled program's
// control flow depends on received values, every process can be walked
// independently; the message matching (k-th receive on a (src,tag) channel
// pairs with the sender's k-th send on it) reproduces the machine's FIFO
// mailbox semantics. Replaying the matched DAG under the machine's cost
// recurrence — the identical recurrence analysis.(*Dump).Predict uses —
// yields the predicted makespan, exact whenever the walk succeeded.

// ErrUnmodeled reports a program whose control flow the static walk cannot
// decide (a branch on a computed data value). Candidates that hit it fall
// back to direct measurement.
type ErrUnmodeled struct {
	Proc   int
	Reason string
}

func (e *ErrUnmodeled) Error() string {
	return fmt.Sprintf("autotune: process %d not statically modelable: %s", e.Proc, e.Reason)
}

const (
	actCompute = iota
	actSend
	actRecv
)

// action is one step of a process's abstract execution.
type action struct {
	kind   int
	dur    uint64 // compute: accumulated cycles
	peer   int    // send: destination; recv: source
	tag    int64
	values int // send: values carried; recv: expected (-1 = any), then matched
	seq    int // per-(src,dst,tag) channel sequence, filled by matching
}

// Profile is the abstract execution of all processes: the statically derived
// communication DAG plus per-process busy times.
type Profile struct {
	Procs int
	Acts  [][]action
	// Messages/Values totals, after matching.
	Messages int64
	Values   int64
}

// chanKey identifies a FIFO message channel: the machine keys receiver
// mailboxes by (src, tag), so per (src, dst, tag) delivery is in send order.
type chanKey struct {
	src, dst int
	tag      int64
}

type msgID struct {
	ch  chanKey
	seq int
}

// BuildProfile walks the compiled programs (one generic or cfg.Procs
// specialized, as exec.RunSPMD accepts them) and returns the matched profile.
func BuildProfile(progs []*spmd.Program, cfg machine.Config) (*Profile, error) {
	pick := func(p int) *spmd.Program { return progs[p] }
	switch {
	case len(progs) == 1 && progs[0].Proc < 0:
		pick = func(int) *spmd.Program { return progs[0] }
	case len(progs) == cfg.Procs:
		for i, pr := range progs {
			if pr.Proc != i {
				return nil, fmt.Errorf("autotune: program %d is specialized for process %d", i, pr.Proc)
			}
		}
	default:
		return nil, fmt.Errorf("autotune: got %d program(s) for %d processes", len(progs), cfg.Procs)
	}
	pf := &Profile{Procs: cfg.Procs, Acts: make([][]action, cfg.Procs)}
	for p := 0; p < cfg.Procs; p++ {
		w := newWalker(p, cfg)
		if err := w.stmts(pick(p).Body); err != nil {
			return nil, err
		}
		w.flush()
		pf.Acts[p] = w.acts
	}
	if err := pf.match(); err != nil {
		return nil, err
	}
	return pf, nil
}

// match pairs receives with sends channel by channel and fills in message
// sizes. A receive with no matching send means the candidate would deadlock.
func (pf *Profile) match() error {
	sends := map[chanKey][]*action{}
	recvs := map[chanKey][]*action{}
	for p := range pf.Acts {
		for i := range pf.Acts[p] {
			a := &pf.Acts[p][i]
			switch a.kind {
			case actSend:
				k := chanKey{src: p, dst: a.peer, tag: a.tag}
				a.seq = len(sends[k])
				sends[k] = append(sends[k], a)
				pf.Messages++
				pf.Values += int64(a.values)
			case actRecv:
				k := chanKey{src: a.peer, dst: p, tag: a.tag}
				recvs[k] = append(recvs[k], a)
			}
		}
	}
	for k, rs := range recvs {
		ss := sends[k]
		if len(rs) > len(ss) {
			return fmt.Errorf("autotune: candidate deadlocks: %d receive(s) on %d->%d tag %d have no matching send",
				len(rs)-len(ss), k.src, k.dst, k.tag)
		}
		for i, r := range rs {
			if r.values >= 0 && r.values != ss[i].values {
				return fmt.Errorf("autotune: block receive on %d->%d tag %d expects %d values, send carries %d",
					k.src, k.dst, k.tag, r.values, ss[i].values)
			}
			r.values = ss[i].values
			r.seq = i
		}
	}
	return nil
}

// Busy returns each process's busy time: compute plus send/receive overheads,
// with all waits excluded. The maximum is the tier-1 static score — a lower
// bound on the candidate's makespan, cheap enough to rank the whole space.
func (pf *Profile) Busy(cfg machine.Config) []uint64 {
	busy := make([]uint64, pf.Procs)
	for p, acts := range pf.Acts {
		for _, a := range acts {
			switch a.kind {
			case actCompute:
				busy[p] += a.dur
			case actSend:
				busy[p] += cfg.SendStartup + uint64(a.values)*cfg.PerValue
			case actRecv:
				busy[p] += cfg.RecvStartup + uint64(a.values)*cfg.PerValue
			}
		}
	}
	return busy
}

// Static is the tier-1 score: the maximum busy time over processes.
func (pf *Profile) Static(cfg machine.Config) uint64 {
	var max uint64
	for _, b := range pf.Busy(cfg) {
		if b > max {
			max = b
		}
	}
	return max
}

// Predict replays the profile's communication DAG under the machine's cost
// parameters and returns the predicted makespan — the tier-2 score. The
// recurrence is the one analysis.(*Dump).Predict uses (and the machine
// implements): a send completes after startup + per-value packing and its
// message arrives Latency later; a receive waits for the arrival stamp, then
// pays startup + per-value unpacking.
func (pf *Profile) Predict(cfg machine.Config) (uint64, error) {
	clocks := make([]uint64, pf.Procs)
	idx := make([]int, pf.Procs)
	released := map[msgID]uint64{}
	for {
		progressed, done := false, true
		for p := range pf.Acts {
			for idx[p] < len(pf.Acts[p]) {
				a := pf.Acts[p][idx[p]]
				switch a.kind {
				case actRecv:
					rel, ok := released[msgID{ch: chanKey{src: a.peer, dst: p, tag: a.tag}, seq: a.seq}]
					if !ok {
						goto next // sender has not reached this message yet
					}
					if rel > clocks[p] {
						clocks[p] = rel
					}
					clocks[p] += cfg.RecvStartup + uint64(a.values)*cfg.PerValue
				case actSend:
					clocks[p] += cfg.SendStartup + uint64(a.values)*cfg.PerValue
					released[msgID{ch: chanKey{src: p, dst: a.peer, tag: a.tag}, seq: a.seq}] = clocks[p] + cfg.Latency
				default:
					clocks[p] += a.dur
				}
				idx[p]++
				progressed = true
			}
		next:
			if idx[p] < len(pf.Acts[p]) {
				done = false
			}
		}
		if done {
			break
		}
		if !progressed {
			return 0, fmt.Errorf("autotune: predicted replay deadlocked")
		}
	}
	var makespan uint64
	for _, c := range clocks {
		if c > makespan {
			makespan = c
		}
	}
	return makespan, nil
}

// walker is the per-process abstract interpreter.
type walker struct {
	me    int64
	procs int
	cfg   machine.Config
	env   expr.Env           // integer view: me, loop vars, known assignments
	vals  map[string]float64 // known variable values
	acts  []action
	acc   uint64 // pending compute cycles, flushed before sends/receives
}

func newWalker(me int, cfg machine.Config) *walker {
	w := &walker{me: int64(me), procs: cfg.Procs, cfg: cfg,
		env: expr.Env{}, vals: map[string]float64{}}
	w.env[spmd.Me] = int64(me)
	return w
}

func (w *walker) failf(format string, args ...any) error {
	return &ErrUnmodeled{Proc: int(w.me), Reason: fmt.Sprintf(format, args...)}
}

// Cost charges, mirroring machine.Proc.
func (w *walker) ops(n int64) { w.acc += uint64(n) * w.cfg.OpCost }
func (w *walker) mem(n int64) { w.acc += uint64(n) * w.cfg.MemCost }
func (w *walker) loopStep()   { w.acc += w.cfg.LoopCost }

// flush closes the pending compute span.
func (w *walker) flush() {
	if w.acc > 0 {
		w.acts = append(w.acts, action{kind: actCompute, dur: w.acc})
		w.acc = 0
	}
}

func (w *walker) send(dst int, tag int64, values int) error {
	if dst < 0 || dst >= w.procs {
		return w.failf("send to processor %d out of range [0,%d)", dst, w.procs)
	}
	w.flush()
	w.acts = append(w.acts, action{kind: actSend, peer: dst, tag: tag, values: values})
	return nil
}

func (w *walker) recv(src int, tag int64, expect int) error {
	if src < 0 || src >= w.procs {
		return w.failf("recv from processor %d out of range [0,%d)", src, w.procs)
	}
	w.flush()
	w.acts = append(w.acts, action{kind: actRecv, peer: src, tag: tag, values: expect})
	return nil
}

// setVar mirrors exec's setVar for a statically known value.
func (w *walker) setVar(name string, v float64) {
	w.vals[name] = v
	w.env[name] = int64(v)
}

// setUnknown marks a variable as data-dependent: later integer expressions
// that mention it will fail to evaluate, surfacing as ErrUnmodeled.
func (w *walker) setUnknown(name string) {
	delete(w.vals, name)
	delete(w.env, name)
}

// intOf evaluates a control expression over the integer environment.
func (w *walker) intOf(e expr.Expr) (int64, error) {
	v, err := e.Eval(w.env)
	if err != nil {
		return 0, w.failf("%v", err)
	}
	return v, nil
}

// evalV evaluates a value expression if every input is statically known.
func (w *walker) evalV(v spmd.VExpr) (float64, bool) {
	switch v := v.(type) {
	case spmd.VConst:
		return v.F, true
	case spmd.VVar:
		val, ok := w.vals[v.Name]
		return val, ok
	case spmd.VInt:
		i, err := v.X.Eval(w.env)
		if err != nil {
			return 0, false
		}
		return float64(i), true
	case spmd.VBin:
		l, ok := w.evalV(v.L)
		if !ok {
			return 0, false
		}
		r, ok := w.evalV(v.R)
		if !ok {
			return 0, false
		}
		bad := false
		res := exec.EvalBin(v.Op, l, r, func(string) { bad = true })
		return res, !bad
	case spmd.VUn:
		x, ok := w.evalV(v.X)
		if !ok {
			return 0, false
		}
		if v.Op == lang.OpNeg {
			return -x, true
		}
		if x != 0 {
			return 0, true
		}
		return 1, true
	default:
		return 0, false
	}
}

// vexprOps mirrors exec.vexprOps: operator nodes cost one op each.
func vexprOps(v spmd.VExpr) int64 {
	switch v := v.(type) {
	case spmd.VBin:
		return 1 + vexprOps(v.L) + vexprOps(v.R)
	case spmd.VUn:
		return 1 + vexprOps(v.X)
	default:
		return 0
	}
}

func (w *walker) stmts(body []spmd.Stmt) error {
	for _, s := range body {
		if err := w.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

// stmt mirrors exec.(*pstate).stmt charge for charge.
func (w *walker) stmt(s spmd.Stmt) error {
	const indexCost = 2 // exec's flat subscript charge
	switch s := s.(type) {
	case *spmd.Alloc, *spmd.AllocBuf:
		// Allocation is uncharged in the interpreter.
		return nil
	case *spmd.AssignVar:
		w.ops(vexprOps(s.Val))
		if v, ok := w.evalV(s.Val); ok {
			w.setVar(s.Name, v)
		} else {
			w.setUnknown(s.Name)
		}
		return nil
	case *spmd.AssignIVar:
		w.ops(vexprOps(s.Val))
		if v, ok := w.evalV(s.Val); ok {
			w.setVar(s.Name, v)
		} else {
			w.setUnknown(s.Name)
		}
		return nil
	case *spmd.ARead:
		w.ops(indexCost)
		w.mem(1)
		w.setUnknown(s.Dst) // array contents are data
		return nil
	case *spmd.AWrite:
		w.ops(indexCost + vexprOps(s.Val))
		w.mem(1)
		return nil
	case *spmd.BufRead:
		w.ops(indexCost)
		w.mem(1)
		w.setUnknown(s.Dst)
		return nil
	case *spmd.BufWrite:
		w.ops(indexCost + vexprOps(s.Val))
		w.mem(1)
		return nil
	case *spmd.Send:
		w.ops(vexprOps(s.Val))
		dst, err := w.intOf(s.Dst)
		if err != nil {
			return err
		}
		return w.send(int(dst), s.Tag, 1)
	case *spmd.Recv:
		src, err := w.intOf(s.Src)
		if err != nil {
			return err
		}
		if err := w.recv(int(src), s.Tag, 1); err != nil {
			return err
		}
		w.setUnknown(s.Dst)
		return nil
	case *spmd.SendBuf:
		dst, err := w.intOf(s.Dst)
		if err != nil {
			return err
		}
		lo, err := w.intOf(s.Lo)
		if err != nil {
			return err
		}
		hi, err := w.intOf(s.Hi)
		if err != nil {
			return err
		}
		if hi < lo {
			return w.failf("block send of %s[%d..%d]", s.Buf, lo, hi)
		}
		return w.send(int(dst), s.Tag, int(hi-lo+1))
	case *spmd.RecvBuf:
		src, err := w.intOf(s.Src)
		if err != nil {
			return err
		}
		lo, err := w.intOf(s.Lo)
		if err != nil {
			return err
		}
		hi, err := w.intOf(s.Hi)
		if err != nil {
			return err
		}
		if hi < lo {
			return w.failf("block receive into %s[%d..%d]", s.Buf, lo, hi)
		}
		return w.recv(int(src), s.Tag, int(hi-lo+1))
	case *spmd.Coerce:
		return w.coerce(s, indexCost)
	case *spmd.For:
		lo, err := w.intOf(s.Lo)
		if err != nil {
			return err
		}
		hi, err := w.intOf(s.Hi)
		if err != nil {
			return err
		}
		step, err := w.intOf(s.Step)
		if err != nil {
			return err
		}
		if step <= 0 {
			return w.failf("loop step %d", step)
		}
		for x := lo; x <= hi; x += step {
			w.loopStep()
			w.setVar(s.Var, float64(x))
			w.env[s.Var] = x // exact integer, not a float round-trip
			if err := w.stmts(s.Body); err != nil {
				return err
			}
		}
		return nil
	case *spmd.Guard:
		w.ops(1) // the mynode() test, charged on every process
		p, err := w.intOf(s.Proc)
		if err != nil {
			return err
		}
		if p == w.me {
			return w.stmts(s.Body)
		}
		return nil
	case *spmd.IfValue:
		w.ops(vexprOps(s.Cond))
		c, ok := w.evalV(s.Cond)
		if !ok {
			return w.failf("branch on a computed value")
		}
		if c != 0 {
			return w.stmts(s.Then)
		}
		return w.stmts(s.Else)
	default:
		return w.failf("unknown statement %T", s)
	}
}

// coerce mirrors exec.(*pstate).coerce: run-time resolution's value movement,
// with ownership tests charged as compute.
func (w *walker) coerce(s *spmd.Coerce, indexCost int64) error {
	w.ops(2) // owner/needer membership tests
	readSrc := func() {
		w.mem(1)
		if s.Array != "" {
			w.ops(indexCost)
		}
	}
	switch {
	case s.OwnerAll:
		if s.NeederAll {
			readSrc()
			w.setUnknown(s.Dst)
			return nil
		}
		needer, err := w.intOf(s.Needer)
		if err != nil {
			return err
		}
		if needer == w.me {
			readSrc()
			w.setUnknown(s.Dst)
		}
		return nil
	case s.NeederAll:
		owner, err := w.intOf(s.Owner)
		if err != nil {
			return err
		}
		if owner == w.me {
			readSrc()
			for q := 0; q < w.procs; q++ {
				if int64(q) != w.me {
					if err := w.send(q, s.Tag, 1); err != nil {
						return err
					}
				}
			}
			w.setUnknown(s.Dst)
		} else {
			if err := w.recv(int(owner), s.Tag, 1); err != nil {
				return err
			}
			w.setUnknown(s.Dst)
		}
		return nil
	default:
		owner, err := w.intOf(s.Owner)
		if err != nil {
			return err
		}
		needer, err := w.intOf(s.Needer)
		if err != nil {
			return err
		}
		switch {
		case owner == needer:
			if owner == w.me {
				readSrc()
				w.setUnknown(s.Dst)
			}
		case owner == w.me:
			readSrc()
			return w.send(int(needer), s.Tag, 1)
		case needer == w.me:
			if err := w.recv(int(owner), s.Tag, 1); err != nil {
				return err
			}
			w.setUnknown(s.Dst)
		}
		return nil
	}
}
