package autotune

import (
	"fmt"
	"strconv"
	"strings"

	"procdecomp/internal/dist"
)

// ParseMapping parses a mapping spelled on a command line, the inverse of
// Mapping.String:
//
//	all  single  block2d(2x4)  cyclic_cols(8)  block_rows
//
// A 1-D family without a span (no parentheses) gets Span 0; callers default
// it to the machine size.
func ParseMapping(s string) (Mapping, error) {
	s = strings.TrimSpace(s)
	name, arg := s, ""
	if i := strings.IndexByte(s, '('); i >= 0 {
		if !strings.HasSuffix(s, ")") {
			return Mapping{}, fmt.Errorf("autotune: mapping %q: missing )", s)
		}
		name, arg = s[:i], s[i+1:len(s)-1]
	}
	k, err := dist.Parse(name)
	if err != nil {
		return Mapping{}, err
	}
	switch k {
	case dist.KindReplicated, dist.KindSingle:
		if arg != "" {
			return Mapping{}, fmt.Errorf("autotune: mapping %s takes no argument", k)
		}
		return Mapping{Kind: k}, nil
	case dist.KindBlock2D:
		pr, pc, ok := strings.Cut(arg, "x")
		if !ok {
			return Mapping{}, fmt.Errorf("autotune: mapping %q: want block2d(PRxPC)", s)
		}
		r, err1 := strconv.ParseInt(strings.TrimSpace(pr), 10, 64)
		c, err2 := strconv.ParseInt(strings.TrimSpace(pc), 10, 64)
		if err1 != nil || err2 != nil || r < 1 || c < 1 {
			return Mapping{}, fmt.Errorf("autotune: mapping %q: bad processor grid", s)
		}
		return Mapping{Kind: k, PR: r, PC: c}, nil
	default:
		if arg == "" {
			return Mapping{Kind: k}, nil
		}
		span, err := strconv.ParseInt(strings.TrimSpace(arg), 10, 64)
		if err != nil || span < 1 {
			return Mapping{}, fmt.Errorf("autotune: mapping %q: bad span", s)
		}
		return Mapping{Kind: k, Span: span}, nil
	}
}
