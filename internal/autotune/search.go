package autotune

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"procdecomp/internal/analysis"
	"procdecomp/internal/dist"
	"procdecomp/internal/exec"
	"procdecomp/internal/machine"
	"procdecomp/internal/trace"
)

// Status records how far a candidate got through the evaluation tiers.
type Status string

const (
	// StatusInfeasible: the candidate does not compile to a runnable program
	// (semantic rejection, transformation rejection, or a modeled deadlock).
	StatusInfeasible Status = "infeasible"
	// StatusPruned: walked and scored statically; its busy-time lower bound
	// already exceeds the best predicted makespan, so it provably cannot win
	// and is never replayed.
	StatusPruned Status = "pruned"
	// StatusPredicted: makespan predicted by DAG replay, cut before running.
	StatusPredicted Status = "predicted"
	// StatusMeasured: executed on the simulated machine.
	StatusMeasured Status = "measured"
)

// Result is one candidate's outcome.
type Result struct {
	Candidate Candidate
	Status    Status
	// Unmodeled marks a candidate whose control flow the static walk could
	// not decide; it skipped the model tiers and was measured directly.
	Unmodeled bool `json:",omitempty"`
	// Note carries the infeasibility or unmodeled reason.
	Note string `json:",omitempty"`
	// Static is the tier-1 busy-time lower bound.
	Static uint64 `json:",omitempty"`
	// Predicted is the tier-2 DAG-replay makespan.
	Predicted uint64 `json:",omitempty"`
	// Measured is the simulated machine's makespan.
	Measured uint64 `json:",omitempty"`
	Messages int64  `json:",omitempty"`
	Values   int64  `json:",omitempty"`
}

// Baseline is the traced run of the program as annotated, which anchors the
// cost model before any candidate is trusted.
type Baseline struct {
	Mode      string
	Blk       int64 `json:",omitempty"`
	Measured  uint64
	Predicted uint64 // the walker's prediction; search fails unless equal
	Messages  int64
	Values    int64
}

// Report is the search outcome: every candidate's result, the winner with its
// makespan attribution, and the regret of the hand-chosen reference mapping.
// Reports are deterministic — equal inputs produce identical bytes.
type Report struct {
	Workload   string
	Procs      int
	Defines    map[string]int64 `json:",omitempty"`
	Enumerated int              // space size before forcing the reference in
	Baseline   Baseline
	Results    []Result
	// Replayed counts the candidates actually scored by DAG replay in tier
	// 2 — the work the branch-and-bound prune did not save. Warm-starting
	// (Options.Seed) lowers it without changing the winner.
	Replayed int
	Winner   string // winning candidate's Key
	Hand     string // reference candidate's Key
	// Regret is the reference mapping's measured makespan minus the winner's:
	// how many cycles the hand-chosen decomposition leaves on the table.
	Regret uint64
	// Attr partitions the winner's measured makespan by cause.
	Attr analysis.Attribution
}

// Options tunes the search. The zero value is usable.
type Options struct {
	Space Space
	// Keep is the minimum number of statically ranked candidates scored by
	// DAG replay (default 12). Beyond it, candidates are still replayed
	// until their static lower bound passes the best prediction — the prune
	// is branch-and-bound, never a gamble.
	Keep int
	// TopK is how many predicted candidates are confirmed on the simulated
	// machine (default 6).
	TopK int
	// Workers bounds the measurement pool (default 4). Results are written
	// by index, so parallelism never changes the report.
	Workers int
	// Cache, if non-nil, memoizes measurements across searches by content
	// key (workload, candidate, machine calibration).
	Cache *Cache
	// BaselineMode/BaselineBlk select the anchor compilation of the program
	// as annotated (default ctr).
	BaselineMode string
	BaselineBlk  int64
	// Hand overrides the reference candidate whose regret the report quotes.
	// Default: the paper's hand choice — cyclic columns over the whole
	// machine, fully optimized (opt3) with block size 8.
	Hand *Candidate
	// Seed lists warm-start mappings — typically the incumbent decomposition
	// an adaptive caller is already serving. Each valid seed is expanded
	// across the space's pipeline dimension, forced into the candidate set,
	// and replayed first in tier 2, so the branch-and-bound prune starts
	// from the incumbent's bound instead of discovering one from scratch.
	// Seeding a mapping already inside the space never changes the winner,
	// only the replay order and count; a seed outside the space widens it.
	// Invalid seeds are skipped — a stale incumbent must not kill the
	// search that would replace it.
	Seed []Mapping
	// Progress, when non-nil, receives coarse search progress: the anchored
	// baseline, each tier transition with done/total counts, a partial
	// ranking after the prediction tier, every confirmed measurement, and
	// the winner. Calls from the measurement tier arrive concurrently from
	// the worker pool; the callback must be safe for concurrent use and
	// must return promptly. It is observational only — the search's report
	// is bit-identical with or without it.
	Progress func(Progress)
	// evalHook, when non-nil, is called before each candidate evaluation
	// (stage "static" for the tier-1 walk, "measure" for a tier-3 run) — a
	// test seam for injecting panics into the worker pool.
	evalHook func(stage string, c Candidate)
}

// Progress is one coarse progress report from a running search — which
// tier just finished (or which candidate was just measured), how much of
// the tier is done, and a partial ranking where one exists. Stages arrive
// in order baseline, enumerated, static, predicted, then one measured per
// confirmed candidate (concurrently), then winner.
type Progress struct {
	// Stage is "baseline", "enumerated", "static", "predicted",
	// "measured", or "winner".
	Stage string
	// Done/Total count the stage's progress (candidates walked, predicted,
	// or measured so far, out of the tier's population).
	Done, Total int
	// Candidate names the subject of a "measured" or "winner" report.
	Candidate string `json:",omitempty"`
	// Makespan is the baseline measurement, a measured candidate's
	// makespan, or the winner's makespan, depending on Stage.
	Makespan uint64 `json:",omitempty"`
	// Top is the partial ranking at the "predicted" stage: the
	// best-predicted candidate keys, best first.
	Top []string `json:",omitempty"`
}

// ErrEvalPanic marks a candidate evaluation that panicked. The Search worker
// pool recovers the panic and records the candidate as infeasible with the
// panic message (errors.Is against this sentinel), so one broken candidate
// cannot take down a whole search.
var ErrEvalPanic = errors.New("autotune: candidate evaluation panicked")

func panicAsError(c Candidate, r any) error {
	return fmt.Errorf("%w: %s: panic: %v", ErrEvalPanic, c.Key(), r)
}

// Measurement is one confirmed run.
type Measurement struct {
	Makespan uint64
	Messages int64
	Values   int64
}

// Cache memoizes measurements by content key. Safe for concurrent use.
type Cache struct {
	mu   sync.Mutex
	m    map[string]Measurement
	hits int
}

// NewCache returns an empty measurement cache.
func NewCache() *Cache { return &Cache{m: map[string]Measurement{}} }

func (c *Cache) get(key string) (Measurement, bool) {
	if c == nil {
		return Measurement{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	m, ok := c.m[key]
	if ok {
		c.hits++
	}
	return m, ok
}

func (c *Cache) put(key string, m Measurement) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[key] = m
}

// Len reports how many measurements are cached; Hits how many lookups were
// served from the cache.
func (c *Cache) Len() int  { c.mu.Lock(); defer c.mu.Unlock(); return len(c.m) }
func (c *Cache) Hits() int { c.mu.Lock(); defer c.mu.Unlock(); return c.hits }

// CacheKey is the content key of one measurement: the workload identity, the
// candidate's generated-code key, and the machine calibration. Equal keys
// mean the run is bit-identical, so the cached result substitutes exactly.
func CacheKey(w *Workload, c Candidate, cfg machine.Config) string {
	defs := make([]string, 0, len(w.Defines))
	for k, v := range w.Defines {
		defs = append(defs, fmt.Sprintf("%s=%d", k, v))
	}
	sort.Strings(defs)
	return fmt.Sprintf("%s/%s/%s|%s|%s|p%d,op%d,mem%d,loop%d,ss%d,rs%d,pv%d,lat%d",
		w.Name, w.Entry, w.Dist, strings.Join(defs, ","), c.Key(),
		cfg.Procs, cfg.OpCost, cfg.MemCost, cfg.LoopCost,
		cfg.SendStartup, cfg.RecvStartup, cfg.PerValue, cfg.Latency)
}

// Measure compiles and runs one candidate on the simulated machine, validates
// its result against the sequential reference, and reports the measurement.
// It is deterministic: rerunning the same candidate reproduces the makespan
// exactly, which the search (and its tests) rely on.
func Measure(w *Workload, c Candidate, cfg machine.Config) (Measurement, error) {
	m, _, err := measure(context.Background(), w, c, cfg, false)
	return m, err
}

// safeMeasure is Measure under a context with the worker pool's panic
// isolation: a panicking evaluation comes back as an ErrEvalPanic-wrapped
// error instead of unwinding the pool.
func safeMeasure(ctx context.Context, w *Workload, c Candidate, cfg machine.Config, hook func(string, Candidate)) (m Measurement, err error) {
	defer func() {
		if r := recover(); r != nil {
			m, err = Measurement{}, panicAsError(c, r)
		}
	}()
	if hook != nil {
		hook("measure", c)
	}
	m, _, err = measure(ctx, w, c, cfg, false)
	return m, err
}

// measure optionally traces the run and captures it for the analyzer.
func measure(ctx context.Context, w *Workload, c Candidate, cfg machine.Config, traced bool) (Measurement, *analysis.Dump, error) {
	progs, info, err := w.compile(c, cfg.Procs)
	if err != nil {
		return Measurement{}, nil, err
	}
	ins, _, err := w.inputs(info)
	if err != nil {
		return Measurement{}, nil, err
	}
	cfg.Tracer = nil
	var tr *trace.Log
	if traced {
		tr = trace.New()
		cfg.Tracer = tr
	}
	out, err := exec.RunSPMDCtx(ctx, progs, cfg, ins)
	if err != nil {
		return Measurement{}, nil, err
	}
	if err := w.validate(out, progs, info); err != nil {
		return Measurement{}, nil, fmt.Errorf("%s computes the wrong answer: %w", c.Key(), err)
	}
	m := Measurement{Makespan: uint64(out.Stats.Makespan), Messages: out.Stats.Messages, Values: out.Stats.Values}
	if traced {
		return m, analysis.NewDump(cfg, tr), nil
	}
	return m, nil, nil
}

// DefaultHand is the paper's hand-chosen mapping for a machine of the given
// size: cyclic columns across every processor, fully optimized, block size 8.
func DefaultHand(procs int) Candidate {
	return Candidate{Mapping: Mapping{Kind: dist.KindCyclicCols, Span: int64(procs)}, Mode: "opt3", Blk: 8}
}

// forEach runs f(0..n-1) on a bounded worker pool. Callers write results by
// index, so scheduling order never leaks into the output.
func forEach(n, workers int, f func(i int)) {
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				f(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
}

// Search runs the tiered search and returns its report. It fails (rather
// than report) if the machine configuration is outside the model, if the
// baseline run contradicts the model, or if any modeled candidate's measured
// makespan differs from its prediction.
func Search(w *Workload, cfg machine.Config, opts Options) (*Report, error) {
	return SearchCtx(context.Background(), w, cfg, opts)
}

// interrupted finalizes a partial report after context cancellation: every
// result accumulated so far is kept so the caller can still print what the
// search learned, alongside a nonzero ("interrupted") error.
func interrupted(rep *Report, results []Result, err error) (*Report, error) {
	rep.Results = orderResults(results)
	return rep, fmt.Errorf("autotune: search interrupted: %w", err)
}

// SearchCtx is Search under a context. Cancellation is honored between tiers
// and inside the measurement pool (it propagates into the simulated machine
// via exec.RunSPMDCtx); an interrupted search returns the partial report
// together with an error wrapping ctx.Err().
func SearchCtx(ctx context.Context, w *Workload, cfg machine.Config, opts Options) (*Report, error) {
	if cfg.Procs < 1 {
		return nil, fmt.Errorf("autotune: machine with %d processors", cfg.Procs)
	}
	if cfg.Faults != nil {
		return nil, errors.New("autotune: the cost model does not cover fault injection")
	}
	if cfg.Placement != nil {
		return nil, errors.New("autotune: the cost model does not cover multiplexed placement")
	}
	if cfg.MailboxCap > 0 {
		return nil, errors.New("autotune: the cost model does not cover bounded mailboxes")
	}
	if opts.Keep <= 0 {
		opts.Keep = 12
	}
	if opts.TopK <= 0 {
		opts.TopK = 6
	}
	if opts.Workers <= 0 {
		opts.Workers = 4
	}
	if opts.BaselineMode == "" {
		opts.BaselineMode = "ctr"
	}
	hand := DefaultHand(cfg.Procs)
	if opts.Hand != nil {
		hand = *opts.Hand
	}

	rep := &Report{Workload: w.Name, Procs: cfg.Procs, Defines: w.Defines, Hand: hand.Key()}
	emit := func(p Progress) {
		if opts.Progress != nil {
			opts.Progress(p)
		}
	}

	// Anchor: run the program as annotated, traced, and demand that both the
	// dump's identity replay and the walker's prediction reproduce the
	// measured makespan before trusting the model anywhere else.
	if err := anchor(ctx, w, cfg, opts, rep); err != nil {
		if ctx.Err() != nil {
			return interrupted(rep, nil, ctx.Err())
		}
		return nil, err
	}
	emit(Progress{Stage: "baseline", Makespan: rep.Baseline.Measured})

	// Enumerate, forcing the hand-chosen reference in so the winner is never
	// worse than it.
	cands := opts.Space.Enumerate(cfg.Procs)
	rep.Enumerated = len(cands)
	if !hasKey(cands, hand.Key()) {
		cands = append(cands, hand)
		sort.SliceStable(cands, func(i, j int) bool { return cands[i].Key() < cands[j].Key() })
	}
	// Warm start: force each seeded mapping in, expanded across the space's
	// pipeline points, and remember its rank so tier 2 replays it first.
	seedRank := map[string]int{}
	for _, m := range opts.Seed {
		if err := m.Validate(int64(cfg.Procs)); err != nil {
			continue
		}
		for _, pp := range opts.Space.pipelinePoints() {
			c := Candidate{Mapping: m, Mode: pp.mode, Blk: pp.blk}
			if _, ok := seedRank[c.Key()]; ok {
				continue
			}
			seedRank[c.Key()] = len(seedRank)
			if !hasKey(cands, c.Key()) {
				cands = append(cands, c)
			}
		}
	}
	if len(seedRank) > 0 {
		sort.SliceStable(cands, func(i, j int) bool { return cands[i].Key() < cands[j].Key() })
	}
	emit(Progress{Stage: "enumerated", Total: len(cands)})

	// Tier 1: compile and walk everything. Each evaluation runs under a
	// recover, so a candidate whose compilation or walk panics is recorded
	// as infeasible (with the panic message) instead of crashing the pool.
	results := make([]Result, len(cands))
	profiles := make([]*Profile, len(cands))
	forEach(len(cands), opts.Workers, func(i int) {
		c := cands[i]
		results[i] = Result{Candidate: c}
		pf, err := func() (pf *Profile, err error) {
			defer func() {
				if r := recover(); r != nil {
					pf, err = nil, panicAsError(c, r)
				}
			}()
			if opts.evalHook != nil {
				opts.evalHook("static", c)
			}
			progs, _, err := w.compile(c, cfg.Procs)
			if err != nil {
				return nil, err
			}
			return BuildProfile(progs, cfg)
		}()
		if err != nil {
			var um *ErrUnmodeled
			if errors.As(err, &um) {
				results[i].Unmodeled = true
				results[i].Note = um.Reason
				return
			}
			results[i].Status = StatusInfeasible
			results[i].Note = err.Error()
			return
		}
		profiles[i] = pf
		results[i].Status = StatusPruned
		results[i].Static = pf.Static(cfg)
	})
	if err := ctx.Err(); err != nil {
		return interrupted(rep, results, err)
	}

	// Tier 2, with a sound prune. The static score is a lower bound on the
	// makespan (busy time can only be stretched by waits), so replaying in
	// static order and stopping once the bound passes the best prediction is
	// branch-and-bound, not a heuristic: a pruned candidate provably cannot
	// win. Keep forces at least that many replays regardless of the bound.
	modeled := indicesWhere(results, func(r Result) bool { return r.Status == StatusPruned })
	emit(Progress{Stage: "static", Done: len(modeled), Total: len(cands)})
	sort.SliceStable(modeled, func(a, b int) bool {
		ra, rb := results[modeled[a]], results[modeled[b]]
		sa, aok := seedRank[ra.Candidate.Key()]
		sb, bok := seedRank[rb.Candidate.Key()]
		if aok != bok {
			// Seeded candidates replay first: the incumbent's bound is in
			// place before anything else can be pruned against it.
			return aok
		}
		if aok && sa != sb {
			return sa < sb
		}
		if ra.Static != rb.Static {
			return ra.Static < rb.Static
		}
		return ra.Candidate.Key() < rb.Candidate.Key()
	})
	best := uint64(0)
	haveBest := false
	for n, i := range modeled {
		if err := ctx.Err(); err != nil {
			return interrupted(rep, results, err)
		}
		_, seeded := seedRank[results[i].Candidate.Key()]
		forced := seeded || results[i].Candidate.Key() == hand.Key()
		if n >= opts.Keep && haveBest && results[i].Static >= best && !forced {
			continue // provably not the winner
		}
		rep.Replayed++
		pred, err := profiles[i].Predict(cfg)
		if err != nil {
			results[i].Status = StatusInfeasible
			results[i].Note = err.Error()
			continue
		}
		results[i].Status = StatusPredicted
		results[i].Predicted = pred
		results[i].Messages = profiles[i].Messages
		results[i].Values = profiles[i].Values
		if !haveBest || pred < best {
			best, haveBest = pred, true
		}
	}

	// Tier 3 selection: the TopK best-predicted, the reference, and every
	// unmodeled candidate (the model cannot rank what it cannot walk).
	predicted := indicesWhere(results, func(r Result) bool { return r.Status == StatusPredicted })
	sort.SliceStable(predicted, func(a, b int) bool {
		ra, rb := results[predicted[a]], results[predicted[b]]
		if ra.Predicted != rb.Predicted {
			return ra.Predicted < rb.Predicted
		}
		return ra.Candidate.Key() < rb.Candidate.Key()
	})
	if opts.Progress != nil {
		top := make([]string, 0, 5)
		for _, i := range predicted {
			if len(top) == 5 {
				break
			}
			top = append(top, results[i].Candidate.Key())
		}
		emit(Progress{Stage: "predicted", Done: len(predicted), Total: len(modeled), Top: top})
	}
	toMeasure := map[int]bool{}
	for n, i := range predicted {
		if n < opts.TopK || results[i].Candidate.Key() == hand.Key() {
			toMeasure[i] = true
		}
	}
	for i, r := range results {
		if r.Unmodeled {
			toMeasure[i] = true
		}
	}
	var mIdx []int
	for i := range toMeasure {
		mIdx = append(mIdx, i)
	}
	sort.Ints(mIdx)
	if err := ctx.Err(); err != nil {
		return interrupted(rep, results, err)
	}

	// Tier 3: confirm on the simulated machine, through the cache.
	errs := make([]error, len(mIdx))
	var measuredSoFar atomic.Int64
	forEach(len(mIdx), opts.Workers, func(n int) {
		i := mIdx[n]
		key := CacheKey(w, results[i].Candidate, cfg)
		m, ok := opts.Cache.get(key)
		if !ok {
			var err error
			m, err = safeMeasure(ctx, w, results[i].Candidate, cfg, opts.evalHook)
			if err != nil {
				errs[n] = err
				return
			}
			opts.Cache.put(key, m)
		}
		results[i].Status = StatusMeasured
		results[i].Measured = m.Makespan
		results[i].Messages = m.Messages
		results[i].Values = m.Values
		emit(Progress{Stage: "measured", Candidate: results[i].Candidate.Key(),
			Makespan: m.Makespan, Done: int(measuredSoFar.Add(1)), Total: len(mIdx)})
	})
	if err := ctx.Err(); err != nil {
		return interrupted(rep, results, err)
	}
	for n, err := range errs {
		if err != nil {
			// A candidate that compiles and models but fails to run (or runs
			// wrong) is a model violation for modeled candidates, a mere
			// infeasibility for unmodeled ones. A panicking evaluation is
			// never a model violation: the pool isolated it, so it is just
			// recorded and the search carries on.
			i := mIdx[n]
			if !results[i].Unmodeled && !errors.Is(err, ErrEvalPanic) {
				return nil, fmt.Errorf("autotune: modeled candidate %s failed to run: %w", results[i].Candidate.Key(), err)
			}
			results[i].Status = StatusInfeasible
			results[i].Note = err.Error()
		}
	}

	// The invariant that makes the report trustworthy: a modeled candidate's
	// measured makespan must equal its DAG-replay prediction, cycle for cycle.
	for _, i := range mIdx {
		r := results[i]
		if r.Status == StatusMeasured && !r.Unmodeled && r.Predicted != r.Measured {
			return nil, fmt.Errorf("autotune: %s predicted %d but measured %d — the cost model is wrong",
				r.Candidate.Key(), r.Predicted, r.Measured)
		}
	}

	// Winner and regret.
	winner, handIdx := -1, -1
	for _, i := range mIdx {
		r := results[i]
		if r.Status != StatusMeasured {
			continue
		}
		if r.Candidate.Key() == hand.Key() {
			handIdx = i
		}
		if winner < 0 || r.Measured < results[winner].Measured ||
			(r.Measured == results[winner].Measured && r.Candidate.Key() < results[winner].Candidate.Key()) {
			winner = i
		}
	}
	if winner < 0 {
		return nil, errors.New("autotune: no candidate survived to measurement")
	}
	if handIdx < 0 {
		return nil, fmt.Errorf("autotune: reference candidate %s was not measurable", hand.Key())
	}
	rep.Winner = results[winner].Candidate.Key()
	rep.Regret = results[handIdx].Measured - results[winner].Measured

	// Rerun the winner traced: the rerun must reproduce the measurement
	// exactly, and its critical path attributes the makespan by cause.
	m2, d, err := measure(ctx, w, results[winner].Candidate, cfg, true)
	if err != nil {
		if ctx.Err() != nil {
			return interrupted(rep, results, ctx.Err())
		}
		return nil, fmt.Errorf("autotune: winner rerun: %w", err)
	}
	if m2.Makespan != results[winner].Measured {
		return nil, fmt.Errorf("autotune: winner %s measured %d but rerun gave %d — the machine is not deterministic",
			rep.Winner, results[winner].Measured, m2.Makespan)
	}
	cp, err := d.CriticalPath()
	if err != nil {
		return nil, fmt.Errorf("autotune: winner attribution: %w", err)
	}
	rep.Attr = cp.Attr
	emit(Progress{Stage: "winner", Candidate: rep.Winner, Makespan: m2.Makespan})

	rep.Results = orderResults(results)
	return rep, nil
}

// anchor measures the declared program traced and checks the model against
// it: dump identity replay, walker DAG replay, and message totals must all
// agree with the machine.
func anchor(ctx context.Context, w *Workload, cfg machine.Config, opts Options, rep *Report) error {
	progs, info, err := w.compileDeclared(opts.BaselineMode, opts.BaselineBlk, cfg.Procs)
	if err != nil {
		return fmt.Errorf("autotune: baseline does not compile: %w", err)
	}
	ins, _, err := w.inputs(info)
	if err != nil {
		return err
	}
	bcfg := cfg
	tr := trace.New()
	bcfg.Tracer = tr
	out, err := exec.RunSPMDCtx(ctx, progs, bcfg, ins)
	if err != nil {
		return fmt.Errorf("autotune: baseline run: %w", err)
	}
	if err := w.validate(out, progs, info); err != nil {
		return fmt.Errorf("autotune: baseline computes the wrong answer: %w", err)
	}
	measured := uint64(out.Stats.Makespan)

	d := analysis.NewDump(bcfg, tr)
	identity, err := d.Predict(analysis.Scenario{})
	if err != nil {
		return fmt.Errorf("autotune: baseline identity replay: %w", err)
	}
	if identity != measured {
		return fmt.Errorf("autotune: baseline identity replay %d != measured %d", identity, measured)
	}
	pf, err := BuildProfile(progs, cfg)
	if err != nil {
		return fmt.Errorf("autotune: baseline is not statically modelable: %w", err)
	}
	pred, err := pf.Predict(cfg)
	if err != nil {
		return fmt.Errorf("autotune: baseline DAG replay: %w", err)
	}
	if pred != measured {
		return fmt.Errorf("autotune: baseline predicted %d != measured %d — the walker disagrees with the interpreter", pred, measured)
	}
	if pf.Messages != out.Stats.Messages || pf.Values != out.Stats.Values {
		return fmt.Errorf("autotune: baseline modeled %d messages/%d values, machine reports %d/%d",
			pf.Messages, pf.Values, out.Stats.Messages, out.Stats.Values)
	}
	rep.Baseline = Baseline{
		Mode: opts.BaselineMode, Blk: opts.BaselineBlk,
		Measured: measured, Predicted: pred,
		Messages: out.Stats.Messages, Values: out.Stats.Values,
	}
	return nil
}

func hasKey(cands []Candidate, key string) bool {
	for _, c := range cands {
		if c.Key() == key {
			return true
		}
	}
	return false
}

func indicesWhere(rs []Result, pred func(Result) bool) []int {
	var out []int
	for i, r := range rs {
		if pred(r) {
			out = append(out, i)
		}
	}
	return out
}

// orderResults sorts for presentation: measured by makespan, then predicted
// by prediction, then pruned by static score, then infeasible by key.
func orderResults(rs []Result) []Result {
	rank := func(r Result) int {
		switch r.Status {
		case StatusMeasured:
			return 0
		case StatusPredicted:
			return 1
		case StatusPruned:
			return 2
		default:
			return 3
		}
	}
	out := append([]Result(nil), rs...)
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if rank(a) != rank(b) {
			return rank(a) < rank(b)
		}
		switch a.Status {
		case StatusMeasured:
			if a.Measured != b.Measured {
				return a.Measured < b.Measured
			}
		case StatusPredicted:
			if a.Predicted != b.Predicted {
				return a.Predicted < b.Predicted
			}
		case StatusPruned:
			if a.Static != b.Static {
				return a.Static < b.Static
			}
		}
		return a.Candidate.Key() < b.Candidate.Key()
	})
	return out
}
