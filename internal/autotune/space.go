// Package autotune closes the loop the paper leaves open: it searches for the
// domain decomposition instead of taking it as a programmer annotation. Given
// a source program, a machine calibration, and a candidate space — mapping
// family and span per distributed array, plus the transformation pipeline —
// it predicts each candidate's makespan with a tiered cost model and confirms
// the best ones with real simulated runs.
//
// The evaluation tiers, cheapest first:
//
//  1. Static walk. Each candidate is compiled and its per-process programs
//     are walked abstractly, mirroring the interpreter's exact cost
//     accounting (internal/exec) without computing data values. The walk
//     yields each process's busy time (compute + message overheads, no
//     waits); the maximum over processes is a lower bound on the makespan,
//     which makes the prune branch-and-bound: a candidate whose bound
//     exceeds the best tier-2 prediction provably cannot win.
//  2. Communication-DAG replay. The same walk also records every process's
//     action sequence (compute spans, sends, receives). Replaying that DAG
//     with the machine's cost parameters — the identical event-driven
//     recurrence analysis.(*Dump).Predict uses for what-if scenarios —
//     yields the candidate's predicted makespan including pipeline stalls.
//  3. Simulated runs. The top-k survivors execute on the real simulated
//     machine, results validated against the sequential reference. A
//     modeled candidate whose measured makespan differs from its tier-2
//     prediction is an error, never a report.
//
// A traced baseline run of the program's declared mapping anchors the model:
// the dump's identity replay and the walker's prediction must both equal the
// measured makespan before any candidate is trusted.
package autotune

import (
	"fmt"
	"sort"

	"procdecomp/internal/dist"
	"procdecomp/internal/xform"
)

// A Mapping is one candidate decomposition for the workload's distributed
// arrays: a family plus the processors it spans.
type Mapping struct {
	Kind dist.Kind
	// Span is the processor count the 1-D families distribute over (the S of
	// cyclic_cols(S)); it may be smaller than the machine to concentrate the
	// data. Ignored for block2d/all/single.
	Span int64
	// PR, PC form the block2d processor grid.
	PR, PC int64
}

func (m Mapping) String() string {
	switch m.Kind {
	case dist.KindBlock2D:
		return fmt.Sprintf("block2d(%dx%d)", m.PR, m.PC)
	case dist.KindReplicated:
		return "all"
	case dist.KindSingle:
		return "single"
	default:
		return fmt.Sprintf("%s(%d)", m.Kind, m.Span)
	}
}

// Validate checks that the mapping is executable on a machine of the given
// size: every owner the decomposition can produce must name a real processor.
// A mapping that fails validation would crash the run it is compiled into —
// the dist constructors panic on degenerate parameters, and out-of-machine
// owners address nonexistent processes — so the search validates every
// candidate before retargeting and skips offenders with a logged note
// instead of dying mid-search.
func (m Mapping) Validate(procs int64) error {
	if procs < 1 {
		return fmt.Errorf("autotune: machine with %d processors", procs)
	}
	switch m.Kind {
	case dist.KindReplicated, dist.KindSingle:
		return nil
	case dist.KindBlock2D:
		if m.PR < 1 || m.PC < 1 {
			return fmt.Errorf("autotune: mapping %s: grid %dx%d is degenerate", m, m.PR, m.PC)
		}
		if m.PR*m.PC > procs {
			return fmt.Errorf("autotune: mapping %s: grid spans %d processors, machine has %d", m, m.PR*m.PC, procs)
		}
		return nil
	case dist.KindCyclicCols, dist.KindCyclicRows, dist.KindBlockCols,
		dist.KindBlockRows, dist.KindCyclicVec, dist.KindBlockVec:
		if m.Span < 1 {
			return fmt.Errorf("autotune: mapping %s: span %d is not positive", m, m.Span)
		}
		if m.Span > procs {
			return fmt.Errorf("autotune: mapping %s: span %d exceeds the machine's %d processors", m, m.Span, procs)
		}
		return nil
	}
	return fmt.Errorf("autotune: mapping kind %v is not retargetable", m.Kind)
}

// A Candidate is one point of the search space: a mapping plus the
// optimization pipeline compiled on top of it.
type Candidate struct {
	Mapping Mapping
	// Mode is an xform.StandardPipeline mode: rtr, ctr, opt1, opt2, opt3.
	Mode string
	// Blk is the opt3 strip-mine block size (0 for other modes).
	Blk int64
}

// Key is the candidate's canonical content key: equal keys mean identical
// generated code, so the result cache and the deduplication both hash it.
func (c Candidate) Key() string {
	if c.Blk > 0 {
		return fmt.Sprintf("%s/%s/blk%d", c.Mapping, c.Mode, c.Blk)
	}
	return fmt.Sprintf("%s/%s", c.Mapping, c.Mode)
}

func (c Candidate) String() string { return c.Key() }

// Space describes the candidate configurations to enumerate. Zero fields
// take defaults that cover the paper's families.
type Space struct {
	// Kinds are the mapping families to try. Default: the four 1-D matrix
	// families, block2d, all, and single.
	Kinds []dist.Kind
	// Spans are the processor counts for the 1-D families; entries larger
	// than the machine are clipped out. Default: {procs, procs/2}.
	Spans []int64
	// Modes are the optimization pipelines. Default: xform.StandardModes.
	Modes []string
	// Blks are the opt3 strip-mine block sizes. Default: {4, 8}.
	Blks []int64
}

// DefaultKinds is the default family set for matrix workloads.
func DefaultKinds() []dist.Kind {
	return []dist.Kind{
		dist.KindCyclicCols, dist.KindCyclicRows, dist.KindBlockCols,
		dist.KindBlockRows, dist.KindBlock2D, dist.KindReplicated, dist.KindSingle,
	}
}

// Enumerate lists the space's candidates for a machine of the given size, in
// a deterministic order, deduplicated by Key.
func (sp Space) Enumerate(procs int) []Candidate {
	p := int64(procs)
	kinds := sp.Kinds
	if len(kinds) == 0 {
		kinds = DefaultKinds()
	}
	spans := sp.Spans
	if len(spans) == 0 {
		spans = []int64{p}
		if p/2 >= 1 && p/2 != p {
			spans = append(spans, p/2)
		}
	}
	var mappings []Mapping
	for _, k := range kinds {
		switch k {
		case dist.KindReplicated:
			mappings = append(mappings, Mapping{Kind: k})
		case dist.KindSingle:
			mappings = append(mappings, Mapping{Kind: k})
		case dist.KindBlock2D:
			// Proper 2-D factorizations of the machine; the degenerate 1×S
			// and S×1 grids duplicate the block_cols/block_rows owners.
			for pr := int64(2); pr <= p/2; pr++ {
				if p%pr == 0 {
					mappings = append(mappings, Mapping{Kind: k, PR: pr, PC: p / pr})
				}
			}
		default:
			for _, s := range spans {
				if s >= 1 && s <= p {
					mappings = append(mappings, Mapping{Kind: k, Span: s})
				}
			}
		}
	}

	var out []Candidate
	seen := map[string]bool{}
	points := sp.pipelinePoints()
	for _, m := range mappings {
		for _, pp := range points {
			c := Candidate{Mapping: m, Mode: pp.mode, Blk: pp.blk}
			if !seen[c.Key()] {
				seen[c.Key()] = true
				out = append(out, c)
			}
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	return out
}

// A pipelinePoint is one configuration of the space's non-mapping dimension:
// an optimization mode, with a strip-mine block size when the mode takes one.
type pipelinePoint struct {
	mode string
	blk  int64
}

// pipelinePoints lists the space's (mode, blk) pairs with the same defaults
// Enumerate applies — the dimension a warm-start mapping is expanded across.
func (sp Space) pipelinePoints() []pipelinePoint {
	modes := sp.Modes
	if len(modes) == 0 {
		modes = xform.StandardModes()
	}
	blks := sp.Blks
	if len(blks) == 0 {
		blks = []int64{4, 8}
	}
	var out []pipelinePoint
	for _, mode := range modes {
		if mode == "opt3" {
			for _, b := range blks {
				if b >= 1 {
					out = append(out, pipelinePoint{mode: mode, blk: b})
				}
			}
		} else {
			out = append(out, pipelinePoint{mode: mode})
		}
	}
	return out
}
