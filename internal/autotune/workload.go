package autotune

import (
	"fmt"
	"sync"

	"procdecomp/internal/core"
	"procdecomp/internal/dist"
	"procdecomp/internal/exec"
	"procdecomp/internal/istruct"
	"procdecomp/internal/lang"
	"procdecomp/internal/sem"
	"procdecomp/internal/spmd"
	"procdecomp/internal/xform"
)

// A Workload is the program under search: its source, the entry procedure,
// and the name of the dist declaration the search retargets per candidate.
type Workload struct {
	Name string
	// Source is the Idn program text. Each candidate re-parses it and
	// rewrites the Dist declaration, so the source itself is never mutated.
	Source string
	// Entry is the procedure compiled and measured.
	Entry string
	// Dist names the `dist` declaration whose mapping the search varies.
	Dist string
	// Defines overrides source constants (e.g. the grid size N).
	Defines map[string]int64

	refMu  sync.Mutex
	refOut *exec.Outcome
}

// compile builds the per-process programs for one candidate: parse, retarget
// the distribution, semantic-check at the machine size, resolve (run-time or
// compile-time), and apply the mode's validated pass pipeline.
func (w *Workload) compile(c Candidate, procs int) ([]*spmd.Program, *sem.Info, error) {
	prog, err := lang.Parse(w.Source)
	if err != nil {
		return nil, nil, err
	}
	// Reject mappings the machine cannot execute before they are compiled in:
	// a degenerate or out-of-machine mapping would otherwise panic deep in
	// dist/exec instead of surfacing as an infeasible candidate.
	if err := c.Mapping.Validate(int64(procs)); err != nil {
		return nil, nil, err
	}
	if err := Retarget(prog, w.Dist, c.Mapping); err != nil {
		return nil, nil, err
	}
	info, errs := sem.Check(prog, sem.Config{Procs: int64(procs), Defines: w.Defines})
	if len(errs) > 0 {
		return nil, nil, errs[0]
	}
	comp := core.New(info)
	if c.Mode == "rtr" {
		generic, err := comp.CompileRTR(w.Entry)
		if err != nil {
			return nil, nil, err
		}
		return []*spmd.Program{generic}, info, nil
	}
	passes, ok := xform.StandardPipeline(c.Mode, c.Blk)
	if !ok {
		return nil, nil, fmt.Errorf("autotune: unknown mode %q", c.Mode)
	}
	progs, err := comp.CompileCTR(w.Entry, true)
	if err != nil {
		return nil, nil, err
	}
	if _, err := xform.Apply(progs, passes); err != nil {
		return nil, nil, err
	}
	return progs, info, nil
}

// compileDeclared compiles the program exactly as written — the annotation
// the paper's programmer chose — for the baseline run that anchors the model.
func (w *Workload) compileDeclared(mode string, blk int64, procs int) ([]*spmd.Program, *sem.Info, error) {
	prog, err := lang.Parse(w.Source)
	if err != nil {
		return nil, nil, err
	}
	info, errs := sem.Check(prog, sem.Config{Procs: int64(procs), Defines: w.Defines})
	if len(errs) > 0 {
		return nil, nil, errs[0]
	}
	comp := core.New(info)
	if mode == "rtr" {
		generic, err := comp.CompileRTR(w.Entry)
		if err != nil {
			return nil, nil, err
		}
		return []*spmd.Program{generic}, info, nil
	}
	passes, ok := xform.StandardPipeline(mode, blk)
	if !ok {
		return nil, nil, fmt.Errorf("autotune: unknown mode %q", mode)
	}
	progs, err := comp.CompileCTR(w.Entry, true)
	if err != nil {
		return nil, nil, err
	}
	if _, err := xform.Apply(progs, passes); err != nil {
		return nil, nil, err
	}
	return progs, info, nil
}

// inputs builds the deterministic test matrices for the entry's parameters —
// the same pattern pdrun uses, so a searched result is reproducible by hand.
func (w *Workload) inputs(info *sem.Info) (map[string]*istruct.Matrix, []exec.ArgVal, error) {
	p, ok := info.Procs[w.Entry]
	if !ok {
		return nil, nil, fmt.Errorf("autotune: no procedure %s", w.Entry)
	}
	ins := map[string]*istruct.Matrix{}
	var args []exec.ArgVal
	for _, prm := range p.Params {
		if prm.Type.Base != lang.TMatrix {
			return nil, nil, fmt.Errorf("autotune: entry parameter %s is not a matrix", prm.Name)
		}
		mk := func() (*istruct.Matrix, error) {
			m, err := istruct.NewMatrix(prm.Name, prm.Type.Dims[0], prm.Type.Dims[1])
			if err != nil {
				return nil, err
			}
			for i := int64(1); i <= prm.Type.Dims[0]; i++ {
				for j := int64(1); j <= prm.Type.Dims[1]; j++ {
					if err := m.Write(i, j, float64((i*31+j*17)%29)+0.5); err != nil {
						return nil, err
					}
				}
			}
			return m, nil
		}
		m, err := mk()
		if err != nil {
			return nil, nil, err
		}
		ins[prm.Name] = m
		m2, err := mk()
		if err != nil {
			return nil, nil, err
		}
		args = append(args, exec.ArgVal{Matrix: m2})
	}
	return ins, args, nil
}

// reference runs the sequential interpreter once per workload and caches the
// outcome: every candidate's distributed result is compared against it.
func (w *Workload) reference(info *sem.Info) (*exec.Outcome, error) {
	w.refMu.Lock()
	defer w.refMu.Unlock()
	if w.refOut != nil {
		return w.refOut, nil
	}
	_, args, err := w.inputs(info)
	if err != nil {
		return nil, err
	}
	out, err := exec.RunSequential(info, w.Entry, args)
	if err != nil {
		return nil, err
	}
	w.refOut = out
	return out, nil
}

// validate compares a distributed outcome's returned array with the
// sequential reference, identifying it by name the way pdrun does.
func (w *Workload) validate(out *exec.SPMDOutcome, progs []*spmd.Program, info *sem.Info) error {
	seq, err := w.reference(info)
	if err != nil {
		return fmt.Errorf("sequential reference failed: %w", err)
	}
	if !seq.HasRet || seq.Ret.Matrix == nil {
		return nil // nothing to compare
	}
	want := seq.Ret.Matrix
	retName, lastArray := "", ""
	for _, o := range progs[0].Outputs {
		if !o.IsArray {
			continue
		}
		lastArray = o.Name
		if o.Name == want.Name() {
			retName = o.Name
		}
	}
	if retName == "" {
		retName = lastArray
	}
	if retName == "" {
		return fmt.Errorf("the entry returns an array but the compiled program has no array output")
	}
	got := out.Arrays[retName]
	if got == nil {
		return fmt.Errorf("output array %s missing from the distributed result", retName)
	}
	if got.Rows() != want.Rows() || got.Cols() != want.Cols() {
		return fmt.Errorf("output array %s is %dx%d, reference is %dx%d",
			retName, got.Rows(), got.Cols(), want.Rows(), want.Cols())
	}
	for i := int64(1); i <= want.Rows(); i++ {
		for j := int64(1); j <= want.Cols(); j++ {
			if want.Defined(i, j) != got.Defined(i, j) {
				return fmt.Errorf("definedness mismatch at (%d,%d)", i, j)
			}
			if !want.Defined(i, j) {
				continue
			}
			vw, _ := want.Read(i, j)
			vg, _ := got.Read(i, j)
			if d := vw - vg; d > 1e-9 || d < -1e-9 {
				return fmt.Errorf("value mismatch at (%d,%d): %g vs %g", i, j, vg, vw)
			}
		}
	}
	return nil
}

// Retarget rewrites the program's named distribution to the candidate
// mapping. Named families mutate the dist declaration in place; all/single
// have no declaration form, so every `on <name>` annotation is rewritten to
// `on all` / `on proc(0)` instead.
func Retarget(prog *lang.Program, distName string, m Mapping) error {
	switch m.Kind {
	case dist.KindReplicated, dist.KindSingle:
		repl := &lang.MapExpr{Kind: lang.MapAll}
		if m.Kind == dist.KindSingle {
			repl = &lang.MapExpr{Kind: lang.MapProc, Proc: &lang.NumLit{Val: 0, IsInt: true}}
		}
		if n := rewriteUses(prog, distName, repl); n == 0 {
			return fmt.Errorf("autotune: program has no uses of dist %s", distName)
		}
		return nil
	case dist.KindBlock2D:
		if m.PR < 1 || m.PC < 1 {
			return fmt.Errorf("autotune: block2d grid %dx%d invalid", m.PR, m.PC)
		}
		return rewriteDecl(prog, distName, "block2d", []lang.Expr{intLit(m.PR), intLit(m.PC)})
	case dist.KindCyclicCols, dist.KindCyclicRows, dist.KindBlockCols,
		dist.KindBlockRows, dist.KindCyclicVec, dist.KindBlockVec:
		if m.Span < 1 {
			return fmt.Errorf("autotune: %s span %d invalid", m.Kind, m.Span)
		}
		return rewriteDecl(prog, distName, m.Kind.String(), []lang.Expr{intLit(m.Span)})
	}
	return fmt.Errorf("autotune: cannot retarget to %v", m.Kind)
}

func intLit(v int64) lang.Expr { return &lang.NumLit{Val: float64(v), IsInt: true} }

func rewriteDecl(prog *lang.Program, distName, builtin string, args []lang.Expr) error {
	for _, d := range prog.Decls {
		if dd, ok := d.(*lang.DistDecl); ok && dd.Name == distName {
			dd.Builtin = builtin
			dd.Args = args
			return nil
		}
	}
	return fmt.Errorf("autotune: program has no dist declaration %s", distName)
}

// rewriteUses replaces every `on distName` mapping annotation in the program
// with repl, returning how many sites changed.
func rewriteUses(prog *lang.Program, distName string, repl *lang.MapExpr) int {
	n := 0
	swap := func(m **lang.MapExpr) {
		if *m != nil && (*m).Kind == lang.MapNamed && (*m).Name == distName {
			c := *repl
			c.Pos = (*m).Pos
			*m = &c
			n++
		}
	}
	swapSlice := func(ms []lang.MapExpr) {
		for i := range ms {
			if ms[i].Kind == lang.MapNamed && ms[i].Name == distName {
				c := *repl
				c.Pos = ms[i].Pos
				ms[i] = c
				n++
			}
		}
	}
	var walkExpr func(e lang.Expr)
	var walkBlock func(b *lang.Block)
	walkExpr = func(e lang.Expr) {
		switch e := e.(type) {
		case *lang.BinExpr:
			walkExpr(e.L)
			walkExpr(e.R)
		case *lang.UnExpr:
			walkExpr(e.X)
		case *lang.IndexExpr:
			for _, ix := range e.Indices {
				walkExpr(ix)
			}
		case *lang.CallExpr:
			swapSlice(e.DistArgs)
			for _, a := range e.Args {
				walkExpr(a)
			}
		}
	}
	walkBlock = func(b *lang.Block) {
		if b == nil {
			return
		}
		for _, st := range b.Stmts {
			switch st := st.(type) {
			case *lang.LetStmt:
				swap(&st.Map)
				if st.Init != nil {
					walkExpr(st.Init)
				}
			case *lang.AssignStmt:
				walkExpr(st.Value)
			case *lang.StoreStmt:
				for _, ix := range st.Indices {
					walkExpr(ix)
				}
				walkExpr(st.Value)
			case *lang.ForStmt:
				walkExpr(st.Lo)
				walkExpr(st.Hi)
				if st.Step != nil {
					walkExpr(st.Step)
				}
				walkBlock(st.Body)
			case *lang.IfStmt:
				walkExpr(st.Cond)
				walkBlock(st.Then)
				walkBlock(st.Else)
			case *lang.CallStmt:
				swapSlice(st.DistArgs)
				for _, a := range st.Args {
					walkExpr(a)
				}
			case *lang.ReturnStmt:
				if st.Value != nil {
					walkExpr(st.Value)
				}
			}
		}
	}
	for _, d := range prog.Decls {
		pd, ok := d.(*lang.ProcDecl)
		if !ok {
			continue
		}
		for i := range pd.Params {
			swap(&pd.Params[i].Map)
		}
		swap(&pd.RetMap)
		walkBlock(pd.Body)
	}
	return n
}
