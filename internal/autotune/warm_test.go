package autotune

import (
	"context"
	"strings"
	"testing"

	"procdecomp/internal/dist"
	"procdecomp/internal/machine"
)

// Warm-starting seeds the branch-and-bound prune with the incumbent's bound.
// It must never change the winner, the regret, or any shared candidate's
// scores — only which candidates tier 2 visits, and in what order.
func TestWarmStartPreservesWinner(t *testing.T) {
	cfg := machine.DefaultConfig(4)
	w := gsWorkload(16)
	base := Options{Space: Space{Modes: []string{"opt3"}, Blks: []int64{8}}, Keep: 1, TopK: 1}

	cold, err := SearchCtx(context.Background(), w, cfg, base)
	if err != nil {
		t.Fatal(err)
	}

	seeds := map[string]Mapping{
		"winner":     mustMapping(t, strings.SplitN(cold.Winner, "/", 2)[0]),
		"incumbent":  {Kind: dist.KindCyclicCols, Span: 4}, // the declared mapping: the realistic adaptive case
		"cold-loser": {Kind: dist.KindBlock2D, PR: 2, PC: 2},
	}
	for name, m := range seeds {
		t.Run(name, func(t *testing.T) {
			opts := base
			opts.Seed = []Mapping{m}
			warm, err := SearchCtx(context.Background(), w, cfg, opts)
			if err != nil {
				t.Fatal(err)
			}
			if warm.Winner != cold.Winner || warm.Regret != cold.Regret {
				t.Errorf("warm winner %s regret %d, cold winner %s regret %d",
					warm.Winner, warm.Regret, cold.Winner, cold.Regret)
			}
			if warm.Baseline != cold.Baseline {
				t.Errorf("warm baseline %+v differs from cold %+v", warm.Baseline, cold.Baseline)
			}
			// Every candidate the runs share scores identically; seeding only
			// moves candidates between pruned and predicted.
			coldBy := map[string]Result{}
			for _, r := range cold.Results {
				coldBy[r.Candidate.Key()] = r
			}
			for _, r := range warm.Results {
				c, ok := coldBy[r.Candidate.Key()]
				if !ok {
					continue
				}
				if r.Measured != c.Measured || (r.Status == StatusMeasured) != (c.Status == StatusMeasured) {
					t.Errorf("%s: warm %s/%d, cold %s/%d",
						r.Candidate.Key(), r.Status, r.Measured, c.Status, c.Measured)
				}
			}
			// The seeded candidate is never pruned: its bound is what the
			// prune starts from.
			seededKey := Candidate{Mapping: m, Mode: "opt3", Blk: 8}.Key()
			for _, r := range warm.Results {
				if r.Candidate.Key() == seededKey && r.Status == StatusPruned {
					t.Errorf("seeded candidate %s was pruned", seededKey)
				}
			}
		})
	}

	// An invalid seed (span exceeds the machine) is skipped, not fatal: the
	// report is the cold report.
	opts := base
	opts.Seed = []Mapping{{Kind: dist.KindCyclicCols, Span: 99}}
	warm, err := SearchCtx(context.Background(), w, cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Winner != cold.Winner || warm.Replayed != cold.Replayed || len(warm.Results) != len(cold.Results) {
		t.Errorf("invalid seed changed the search: warm %s/%d/%d, cold %s/%d/%d",
			warm.Winner, warm.Replayed, len(warm.Results), cold.Winner, cold.Replayed, len(cold.Results))
	}
}

// mustMapping parses a mapping key, defaulting a span-less 1-D family is not
// needed here — winners always carry their span.
func mustMapping(t *testing.T, key string) Mapping {
	t.Helper()
	m, err := ParseMapping(key)
	if err != nil {
		t.Fatal(err)
	}
	return m
}
