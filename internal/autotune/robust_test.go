package autotune

import (
	"context"
	"errors"
	"strings"
	"testing"

	"procdecomp/internal/dist"
	"procdecomp/internal/machine"
)

// smallSpace keeps the robustness tests fast: one family, four pipelines.
func smallSpace() Space {
	return Space{
		Kinds: []dist.Kind{dist.KindCyclicCols},
		Spans: []int64{4},
		Modes: []string{"ctr", "opt1", "opt2", "opt3"},
		Blks:  []int64{4, 8},
	}
}

// TestSearchSurvivesPanickingCandidate: a candidate whose evaluation panics —
// in the tier-1 static walk or in the tier-3 measurement pool — must be
// recorded as infeasible with the panic message, not crash the search or
// poison the report. The winner still emerges from the surviving candidates.
func TestSearchSurvivesPanickingCandidate(t *testing.T) {
	for _, stage := range []string{"static", "measure"} {
		t.Run(stage, func(t *testing.T) {
			opts := Options{Space: smallSpace()}
			opts.evalHook = func(s string, c Candidate) {
				if s == stage && c.Mode == "opt1" {
					panic("injected evaluation fault")
				}
			}
			rep, err := SearchCtx(context.Background(), gsWorkload(16), machine.DefaultConfig(4), opts)
			if err != nil {
				t.Fatalf("search did not survive the panicking candidate: %v", err)
			}
			if rep.Winner == "" {
				t.Fatal("search survived but crowned no winner")
			}
			if strings.Contains(rep.Winner, "opt1") {
				t.Fatalf("the panicking candidate %s won", rep.Winner)
			}
			var panicked int
			for _, r := range rep.Results {
				if r.Candidate.Mode != "opt1" {
					continue
				}
				if r.Status != StatusInfeasible {
					t.Errorf("%s: status %s, want %s", r.Candidate.Key(), r.Status, StatusInfeasible)
				}
				if !strings.Contains(r.Note, "panic: injected evaluation fault") {
					t.Errorf("%s: note %q does not carry the panic message", r.Candidate.Key(), r.Note)
				}
				panicked++
			}
			if panicked == 0 {
				t.Fatal("no opt1 candidate reached the panicking stage")
			}
		})
	}
}

// TestSearchCtxCanceledBeforeStart: a context canceled before the search
// begins yields an error wrapping context.Canceled, never a crowned report.
func TestSearchCtxCanceledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := SearchCtx(ctx, gsWorkload(16), machine.DefaultConfig(4), Options{Space: smallSpace()})
	if err == nil {
		t.Fatal("canceled search succeeded")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("errors.Is(err, context.Canceled) = false for %v", err)
	}
	if rep == nil {
		t.Fatal("canceled search returned no partial report")
	}
	if rep.Winner != "" {
		t.Fatalf("canceled search crowned %s", rep.Winner)
	}
}

// TestSearchCtxCanceledMidSearch: cancellation after the anchor (triggered
// from inside the tier-1 pool) ends the search promptly with the partial
// results accumulated so far.
func TestSearchCtxCanceledMidSearch(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	opts := Options{Space: smallSpace()}
	opts.evalHook = func(s string, c Candidate) {
		if s == "static" {
			cancel()
		}
	}
	rep, err := SearchCtx(ctx, gsWorkload(16), machine.DefaultConfig(4), opts)
	if err == nil {
		t.Fatal("canceled search succeeded")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("errors.Is(err, context.Canceled) = false for %v", err)
	}
	if rep == nil {
		t.Fatal("canceled search returned no partial report")
	}
	if len(rep.Results) == 0 {
		t.Fatal("mid-search cancellation dropped the partial results")
	}
}
