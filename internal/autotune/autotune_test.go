package autotune

import (
	"bytes"
	"fmt"
	"testing"

	"procdecomp/internal/bench"
	"procdecomp/internal/dist"
	"procdecomp/internal/lang"
	"procdecomp/internal/machine"
)

func gsWorkload(n int64) *Workload {
	return &Workload{
		Name:    "gauss-seidel",
		Source:  bench.GSSource,
		Entry:   "gs_iteration",
		Dist:    "Column",
		Defines: map[string]int64{"N": n},
	}
}

// The walker must reproduce the machine cycle for cycle on every
// code-generation variant before the search may trust it anywhere.
func TestProfilePredictsEveryVariant(t *testing.T) {
	cfg := machine.DefaultConfig(4)
	for _, spec := range bench.Variants() {
		if spec.Handwritten {
			continue
		}
		progs, err := spec.Compile(4, 16, 4)
		if err != nil {
			t.Fatalf("%s: compile: %v", spec.Name, err)
		}
		pf, err := BuildProfile(progs, cfg)
		if err != nil {
			t.Fatalf("%s: walk: %v", spec.Name, err)
		}
		pred, err := pf.Predict(cfg)
		if err != nil {
			t.Fatalf("%s: replay: %v", spec.Name, err)
		}
		pt, err := spec.Run(cfg, 16, 4)
		if err != nil {
			t.Fatalf("%s: run: %v", spec.Name, err)
		}
		if pred != uint64(pt.Makespan) {
			t.Errorf("%s: predicted %d, machine measured %d", spec.Name, pred, pt.Makespan)
		}
		if pf.Messages != pt.Messages || pf.Values != pt.Values {
			t.Errorf("%s: modeled %d messages/%d values, machine %d/%d",
				spec.Name, pf.Messages, pf.Values, pt.Messages, pt.Values)
		}
	}
}

// The ISSUE's acceptance criteria for the seeded Gauss-Seidel search at
// S ∈ {4, 32}: byte-identical reports across runs, every measured candidate
// exactly reproducible by rerunning the machine, the winner's prediction
// equal to its measurement, and a winner at least as fast as the paper's
// hand-chosen cyclic-columns optimized III mapping.
func TestSearchGaussSeidel(t *testing.T) {
	for _, tc := range []struct {
		procs int
		n     int64
	}{{4, 16}, {32, 24}} {
		t.Run(fmt.Sprintf("S%d", tc.procs), func(t *testing.T) {
			cfg := machine.DefaultConfig(tc.procs)
			rep, err := Search(gsWorkload(tc.n), cfg, Options{})
			if err != nil {
				t.Fatal(err)
			}

			// Determinism: a fresh search emits identical bytes in every form.
			rep2, err := Search(gsWorkload(tc.n), cfg, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if rep.Format() != rep2.Format() {
				t.Error("text reports differ between identical searches")
			}
			var j1, j2, h1, h2 bytes.Buffer
			if err := rep.WriteJSON(&j1); err != nil {
				t.Fatal(err)
			}
			if err := rep2.WriteJSON(&j2); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(j1.Bytes(), j2.Bytes()) {
				t.Error("JSON reports differ between identical searches")
			}
			if err := rep.WriteHTML(&h1); err != nil {
				t.Fatal(err)
			}
			if err := rep2.WriteHTML(&h2); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(h1.Bytes(), h2.Bytes()) {
				t.Error("HTML reports differ between identical searches")
			}

			var winner, hand *Result
			for i := range rep.Results {
				switch rep.Results[i].Candidate.Key() {
				case rep.Winner:
					winner = &rep.Results[i]
				case rep.Hand:
					hand = &rep.Results[i]
				}
			}
			if winner == nil || hand == nil {
				t.Fatalf("winner %q or reference %q missing from the results", rep.Winner, rep.Hand)
			}

			// The winner's what-if prediction must equal its measurement.
			if winner.Status != StatusMeasured || winner.Unmodeled {
				t.Fatalf("winner %s was not a modeled measurement: %+v", rep.Winner, winner)
			}
			if winner.Predicted != winner.Measured {
				t.Errorf("winner predicted %d != measured %d", winner.Predicted, winner.Measured)
			}

			// The reference is the paper's hand choice, and it measures exactly
			// what the benchmark harness measures for optimized III.
			if want := DefaultHand(tc.procs).Key(); rep.Hand != want {
				t.Fatalf("reference candidate %s, want %s", rep.Hand, want)
			}
			pt, err := bench.RunGSWith(cfg, bench.OptimizedIII, tc.n, 8)
			if err != nil {
				t.Fatal(err)
			}
			if hand.Measured != uint64(pt.Makespan) {
				t.Errorf("reference measured %d, benchmark harness measures %d", hand.Measured, pt.Makespan)
			}

			// The search never loses to the hand choice, and the regret is its
			// margin.
			if winner.Measured > hand.Measured {
				t.Errorf("winner %s (%d cycles) is slower than the hand choice %s (%d cycles)",
					rep.Winner, winner.Measured, rep.Hand, hand.Measured)
			}
			if rep.Regret != hand.Measured-winner.Measured {
				t.Errorf("regret %d, want %d", rep.Regret, hand.Measured-winner.Measured)
			}

			// Every reported measurement is reproduced exactly by rerunning
			// the machine at that configuration.
			for _, res := range rep.Results {
				if res.Status != StatusMeasured {
					continue
				}
				m, err := Measure(gsWorkload(tc.n), res.Candidate, cfg)
				if err != nil {
					t.Fatalf("rerun %s: %v", res.Candidate.Key(), err)
				}
				if m.Makespan != res.Measured {
					t.Errorf("rerun %s: %d cycles, report says %d", res.Candidate.Key(), m.Makespan, res.Measured)
				}
			}
		})
	}
}

// A shared cache serves repeat searches without changing their reports.
func TestSearchCache(t *testing.T) {
	cfg := machine.DefaultConfig(4)
	cache := NewCache()
	w := gsWorkload(16)
	rep1, err := Search(w, cfg, Options{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if cache.Len() == 0 {
		t.Fatal("search left the cache empty")
	}
	hits := cache.Hits()
	rep2, err := Search(w, cfg, Options{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if cache.Hits() == hits {
		t.Error("second search never hit the cache")
	}
	if rep1.Format() != rep2.Format() {
		t.Error("cache changed the report")
	}
}

// Retargeting covers every mapping family, and a retargeted program still
// computes the right answer (Measure validates against the sequential
// reference).
func TestRetargetEveryFamily(t *testing.T) {
	cfg := machine.DefaultConfig(4)
	w := gsWorkload(8)
	for _, m := range []Mapping{
		{Kind: dist.KindCyclicCols, Span: 2},
		{Kind: dist.KindCyclicRows, Span: 4},
		{Kind: dist.KindBlockCols, Span: 4},
		{Kind: dist.KindBlockRows, Span: 3},
		{Kind: dist.KindBlock2D, PR: 2, PC: 2},
		{Kind: dist.KindReplicated},
		{Kind: dist.KindSingle},
	} {
		c := Candidate{Mapping: m, Mode: "ctr"}
		if _, err := Measure(w, c, cfg); err != nil {
			t.Errorf("%s: %v", c.Key(), err)
		}
	}
	prog, err := lang.Parse(bench.GSSource)
	if err != nil {
		t.Fatal(err)
	}
	if err := Retarget(prog, "NoSuchDist", Mapping{Kind: dist.KindBlockCols, Span: 2}); err == nil {
		t.Error("retargeting an unknown dist succeeded")
	}
}

// Machine features outside the cost model are rejected up front rather than
// silently mispredicted.
func TestSearchRejectsUnmodeledMachines(t *testing.T) {
	w := gsWorkload(8)
	mux := machine.DefaultConfig(4)
	mux.Placement = []int{0, 0, 1, 1}
	if _, err := Search(w, mux, Options{}); err == nil {
		t.Error("search accepted a multiplexed placement")
	}
	capped := machine.DefaultConfig(4)
	capped.MailboxCap = 1
	if _, err := Search(w, capped, Options{}); err == nil {
		t.Error("search accepted bounded mailboxes")
	}
}

// Mapping validation: every owner a candidate mapping can produce must name
// a real processor, or the candidate must be rejected before Retarget —
// degenerate mappings used to crash the search mid-run deep inside dist.
func TestMappingValidate(t *testing.T) {
	for _, tc := range []struct {
		m  Mapping
		ok bool
	}{
		{Mapping{Kind: dist.KindCyclicCols, Span: 4}, true},
		{Mapping{Kind: dist.KindCyclicCols, Span: 1}, true},
		{Mapping{Kind: dist.KindCyclicCols, Span: 0}, false},
		{Mapping{Kind: dist.KindCyclicCols, Span: -2}, false},
		{Mapping{Kind: dist.KindBlockRows, Span: 8}, false}, // spans past the machine
		{Mapping{Kind: dist.KindBlock2D, PR: 2, PC: 2}, true},
		{Mapping{Kind: dist.KindBlock2D, PR: 0, PC: 2}, false},
		{Mapping{Kind: dist.KindBlock2D, PR: 4, PC: 2}, false}, // 8 > 4 processors
		{Mapping{Kind: dist.KindReplicated}, true},
		{Mapping{Kind: dist.KindSingle}, true},
		{Mapping{Kind: dist.Kind(99)}, false},
	} {
		err := tc.m.Validate(4)
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.m, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: validation passed, want rejection", tc.m)
		}
	}
}

// A degenerate candidate handed straight to Measure (the pdmap/pdrun entry
// points route through the same compile) comes back as an error, not a panic.
func TestMeasureRejectsDegenerateMapping(t *testing.T) {
	cfg := machine.DefaultConfig(4)
	w := gsWorkload(8)
	for _, m := range []Mapping{
		{Kind: dist.KindCyclicCols, Span: 8},
		{Kind: dist.KindBlock2D, PR: 4, PC: 2},
	} {
		_, err := Measure(w, Candidate{Mapping: m, Mode: "ctr"}, cfg)
		if err == nil {
			t.Errorf("%s: measuring a degenerate mapping succeeded", m)
		}
	}
}

// A search whose reference candidate is degenerate must skip it as
// infeasible and fail with a diagnosis, never crash.
func TestSearchSurvivesDegenerateHand(t *testing.T) {
	w := gsWorkload(8)
	cfg := machine.DefaultConfig(4)
	hand := Candidate{Mapping: Mapping{Kind: dist.KindCyclicCols, Span: 64}, Mode: "ctr"}
	_, err := Search(w, cfg, Options{Hand: &hand})
	if err == nil {
		t.Fatal("search with a degenerate reference succeeded")
	}
}
