package autotune

import (
	"encoding/json"
	"fmt"
	"html/template"
	"io"
	"sort"
	"strings"
)

// Rendering of search reports. All three forms — text, JSON, HTML — are
// deterministic functions of the Report value: no timestamps, no map
// iteration, so equal searches emit identical bytes.

// Format renders the report as a text table.
func (r *Report) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "pdmap: %s on %d processors", r.Workload, r.Procs)
	if len(r.Defines) > 0 {
		keys := make([]string, 0, len(r.Defines))
		for k := range r.Defines {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		parts := make([]string, len(keys))
		for i, k := range keys {
			parts[i] = fmt.Sprintf("%s=%d", k, r.Defines[k])
		}
		fmt.Fprintf(&b, " (%s)", strings.Join(parts, ", "))
	}
	fmt.Fprintf(&b, "\nsearched %d candidate configurations\n", r.Enumerated)
	fmt.Fprintf(&b, "baseline (%s): measured %d cycles, predicted %d, %d messages (%d values)\n",
		baselineName(r.Baseline), r.Baseline.Measured, r.Baseline.Predicted,
		r.Baseline.Messages, r.Baseline.Values)

	fmt.Fprintf(&b, "\n%-32s %-10s %12s %12s %12s %10s %8s\n",
		"candidate", "status", "static", "predicted", "measured", "messages", "values")
	for _, res := range r.Results {
		mark := " "
		switch res.Candidate.Key() {
		case r.Winner:
			mark = "*"
		case r.Hand:
			mark = "h"
		}
		fmt.Fprintf(&b, "%s%-31s %-10s %12s %12s %12s %10s %8s\n",
			mark, res.Candidate.Key(), string(res.Status),
			orDash(res.Static), orDash(res.Predicted), orDash(res.Measured),
			orDashI(res.Messages), orDashI(res.Values))
		if res.Note != "" {
			fmt.Fprintf(&b, "    %s\n", res.Note)
		}
	}

	fmt.Fprintf(&b, "\nwinner: %s (* above), measured %d cycles\n", r.Winner, r.winnerMeasured())
	fmt.Fprintf(&b, "hand-chosen reference: %s (h above), measured %d cycles\n", r.Hand, r.handMeasured())
	fmt.Fprintf(&b, "regret of the hand choice: %d cycles\n", r.Regret)

	b.WriteString("\nwinner makespan attribution\n")
	total := r.Attr.Total()
	row := func(name string, v uint64) {
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(v) / float64(total)
		}
		fmt.Fprintf(&b, "  %-16s %12d  %5.1f%%\n", name, v, pct)
	}
	row("compute", r.Attr.Compute)
	row("send startup", r.Attr.SendStartup)
	row("recv startup", r.Attr.RecvStartup)
	row("per-value copy", r.Attr.PerValue)
	row("wire latency", r.Attr.Wire)
	return b.String()
}

func (r *Report) winnerMeasured() uint64 { return r.measuredOf(r.Winner) }
func (r *Report) handMeasured() uint64   { return r.measuredOf(r.Hand) }

func (r *Report) measuredOf(key string) uint64 {
	for _, res := range r.Results {
		if res.Candidate.Key() == key {
			return res.Measured
		}
	}
	return 0
}

func baselineName(b Baseline) string {
	if b.Blk > 0 {
		return fmt.Sprintf("%s, blk %d", b.Mode, b.Blk)
	}
	return b.Mode
}

func orDash(v uint64) string {
	if v == 0 {
		return "-"
	}
	return fmt.Sprintf("%d", v)
}

func orDashI(v int64) string {
	if v == 0 {
		return "-"
	}
	return fmt.Sprintf("%d", v)
}

// MarshalJSON renders a candidate as its canonical key: the report's JSON
// names configurations the same way its text does.
func (c Candidate) MarshalJSON() ([]byte, error) { return json.Marshal(c.Key()) }

// WriteJSON emits the report as indented JSON, newline-terminated.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteHTML emits a self-contained HTML report.
func (r *Report) WriteHTML(w io.Writer) error {
	return reportTmpl.Execute(w, htmlReport{R: r})
}

type htmlReport struct {
	R *Report
}

// Pct formats v as a percentage of the winner's attributed makespan.
func (d htmlReport) Pct(v uint64) string {
	total := d.R.Attr.Total()
	if total == 0 {
		return "0.0%"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(v)/float64(total))
}

// Mark flags the winner and the hand-chosen reference rows.
func (d htmlReport) Mark(key string) string {
	switch key {
	case d.R.Winner:
		return "winner"
	case d.R.Hand:
		return "hand"
	}
	return ""
}

// Defs renders the workload defines deterministically.
func (d htmlReport) Defs() string {
	keys := make([]string, 0, len(d.R.Defines))
	for k := range d.R.Defines {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%d", k, d.R.Defines[k])
	}
	return strings.Join(parts, ", ")
}

var reportTmpl = template.Must(template.New("pdmap").Parse(`<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>pdmap report</title>
<style>
body { font: 14px/1.5 system-ui, sans-serif; margin: 2rem auto; max-width: 60rem; color: #1a1a1a; }
h1 { font-size: 1.4rem; } h2 { font-size: 1.1rem; margin-top: 2rem; }
table { border-collapse: collapse; margin: 0.5rem 0; }
th, td { border: 1px solid #ccc; padding: 0.25rem 0.75rem; text-align: right; }
th, td.name { text-align: left; }
tr.winner { background: #e6f4e6; }
tr.hand { background: #eef2fa; }
</style>
</head>
<body>
<h1>pdmap: decomposition search for {{.R.Workload}}</h1>
<p>{{.R.Procs}} processors{{with .Defs}} ({{.}}){{end}};
searched {{.R.Enumerated}} candidate configurations.
Baseline measured {{.R.Baseline.Measured}} cycles.</p>

<h2>Candidates</h2>
<table>
<tr><th>candidate</th><th>status</th><th>predicted</th><th>measured</th><th>messages</th><th>values</th></tr>
{{range .R.Results}}<tr{{with $.Mark .Candidate.Key}} class="{{.}}"{{end}}>
<td class="name">{{.Candidate.Key}}</td><td class="name">{{.Status}}</td>
<td>{{if .Predicted}}{{.Predicted}}{{else}}&ndash;{{end}}</td>
<td>{{if .Measured}}{{.Measured}}{{else}}&ndash;{{end}}</td>
<td>{{if .Messages}}{{.Messages}}{{else}}&ndash;{{end}}</td>
<td>{{if .Values}}{{.Values}}{{else}}&ndash;{{end}}</td>
</tr>
{{end}}</table>

<h2>Outcome</h2>
<p>Winner: <strong>{{.R.Winner}}</strong>. Hand-chosen reference: {{.R.Hand}}.
Regret of the hand choice: {{.R.Regret}} cycles.</p>

<h2>Winner makespan attribution</h2>
<table>
<tr><th>cause</th><th>cycles</th><th>share</th></tr>
<tr><td class="name">compute</td><td>{{.R.Attr.Compute}}</td><td>{{.Pct .R.Attr.Compute}}</td></tr>
<tr><td class="name">send startup</td><td>{{.R.Attr.SendStartup}}</td><td>{{.Pct .R.Attr.SendStartup}}</td></tr>
<tr><td class="name">recv startup</td><td>{{.R.Attr.RecvStartup}}</td><td>{{.Pct .R.Attr.RecvStartup}}</td></tr>
<tr><td class="name">per-value copy</td><td>{{.R.Attr.PerValue}}</td><td>{{.Pct .R.Attr.PerValue}}</td></tr>
<tr><td class="name">wire latency</td><td>{{.R.Attr.Wire}}</td><td>{{.Pct .R.Attr.Wire}}</td></tr>
</table>
</body>
</html>
`))
