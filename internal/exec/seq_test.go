package exec

import (
	"math"
	"strings"
	"testing"

	"procdecomp/internal/istruct"
	"procdecomp/internal/lang"
	"procdecomp/internal/sem"
)

func checked(t *testing.T, src string, procs int64, defines map[string]int64) *sem.Info {
	t.Helper()
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, errs := sem.Check(prog, sem.Config{Procs: procs, Defines: defines})
	if len(errs) > 0 {
		t.Fatalf("check: %v", errs)
	}
	return info
}

const gsSeqSource = `
const N = 16;
const c = 0.25;

dist Column = cyclic_cols(NPROCS);

proc init_boundary(New: matrix[N, N] on Column) {
  for j = 1 to N {
    New[1, j] = 1.0;
    New[N, j] = 1.0;
  }
  for i = 2 to N - 1 {
    New[i, 1] = 1.0;
    New[i, N] = 1.0;
  }
}

proc gs_iteration(Old: matrix[N, N] on Column): matrix[N, N] on Column {
  let New = matrix(N, N) on Column;
  call init_boundary(New);
  for j = 2 to N - 1 {
    for i = 2 to N - 1 {
      New[i, j] = c * (New[i - 1, j] + New[i, j - 1] + Old[i + 1, j] + Old[i, j + 1]);
    }
  }
  return New;
}
`

// fullMatrix builds an n×n matrix with f(i,j) everywhere.
func fullMatrix(t *testing.T, name string, n int64, f func(i, j int64) float64) *istruct.Matrix {
	t.Helper()
	m, err := istruct.NewMatrix(name, n, n)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= n; i++ {
		for j := int64(1); j <= n; j++ {
			if err := m.Write(i, j, f(i, j)); err != nil {
				t.Fatal(err)
			}
		}
	}
	return m
}

// goldenGS computes the Gauss-Seidel iteration directly in Go.
func goldenGS(n int64, old *istruct.Matrix) [][]float64 {
	out := make([][]float64, n+1)
	for i := range out {
		out[i] = make([]float64, n+1)
	}
	for j := int64(1); j <= n; j++ {
		out[1][j], out[n][j] = 1.0, 1.0
	}
	for i := int64(2); i <= n-1; i++ {
		out[i][1], out[i][n] = 1.0, 1.0
	}
	for j := int64(2); j <= n-1; j++ {
		for i := int64(2); i <= n-1; i++ {
			oDown, _ := old.Read(i+1, j)
			oRight, _ := old.Read(i, j+1)
			out[i][j] = 0.25 * (out[i-1][j] + out[i][j-1] + oDown + oRight)
		}
	}
	return out
}

func TestSequentialGaussSeidel(t *testing.T) {
	info := checked(t, gsSeqSource, 4, nil)
	old := fullMatrix(t, "Old", 16, func(i, j int64) float64 { return float64(i*31+j*17) / 7 })
	out, err := RunSequential(info, "gs_iteration", []ArgVal{{Matrix: old}})
	if err != nil {
		t.Fatal(err)
	}
	if !out.HasRet || out.Ret.Matrix == nil {
		t.Fatal("expected a matrix result")
	}
	want := goldenGS(16, old)
	for i := int64(1); i <= 16; i++ {
		for j := int64(1); j <= 16; j++ {
			got, err := out.Ret.Matrix.Read(i, j)
			if err != nil {
				t.Fatalf("(%d,%d): %v", i, j, err)
			}
			if math.Abs(got-want[i][j]) > 1e-12 {
				t.Fatalf("(%d,%d): got %g, want %g", i, j, got, want[i][j])
			}
		}
	}
}

func TestSequentialScalars(t *testing.T) {
	src := `
proc addmul(a: int, b: int): int {
  let s = a + b;
  let p = a * b;
  return s * 10 + p;
}
`
	info := checked(t, src, 2, nil)
	out, err := RunSequential(info, "addmul", []ArgVal{{IsScal: true, Scalar: 3}, {IsScal: true, Scalar: 4}})
	if err != nil {
		t.Fatal(err)
	}
	if out.Ret.Scalar != 82 {
		t.Errorf("got %v, want 82", out.Ret.Scalar)
	}
}

func TestSequentialControlFlow(t *testing.T) {
	src := `
proc chain(n: int): real {
  let A = vector(64) on all;
  A[1] = n + 0.0;
  for i = 2 to 20 {
    if i mod 2 == 0 {
      A[i] = A[i - 1] * 2.0;
    } else {
      A[i] = A[i - 1] + 1.0;
    }
  }
  return A[20];
}
`
	info := checked(t, src, 2, nil)
	out, err := RunSequential(info, "chain", []ArgVal{{IsScal: true, Scalar: 7}})
	if err != nil {
		t.Fatal(err)
	}
	seq := []float64{7}
	for i := int64(2); i <= 20; i++ {
		x := seq[len(seq)-1]
		if i%2 == 0 {
			seq = append(seq, x*2)
		} else {
			seq = append(seq, x+1)
		}
	}
	if out.Ret.Scalar != seq[19] {
		t.Errorf("got %v, want %v", out.Ret.Scalar, seq[19])
	}
}

func TestSequentialIStructureError(t *testing.T) {
	src := `
proc bad() {
  let A = matrix(4, 4) on all;
  A[1, 1] = 1.0;
  A[1, 1] = 2.0;
}
`
	info := checked(t, src, 2, nil)
	_, err := RunSequential(info, "bad", nil)
	if err == nil || !strings.Contains(err.Error(), "already written") {
		t.Errorf("err = %v, want I-structure write error", err)
	}
}

func TestSequentialReadUndefined(t *testing.T) {
	src := `
proc bad(): real {
  let A = matrix(4, 4) on all;
  return A[2, 2];
}
`
	info := checked(t, src, 2, nil)
	_, err := RunSequential(info, "bad", nil)
	if err == nil || !strings.Contains(err.Error(), "undefined") {
		t.Errorf("err = %v, want undefined-element error", err)
	}
}

func TestSequentialScalarSingleAssignment(t *testing.T) {
	src := `
proc bad(): int {
  let x = 0;
  for i = 1 to 3 {
    x = i;
  }
  return x;
}
`
	info := checked(t, src, 2, nil)
	_, err := RunSequential(info, "bad", nil)
	if err == nil || !strings.Contains(err.Error(), "already written") {
		t.Errorf("err = %v, want I-var rebind error", err)
	}
}

func TestSequentialDivMod(t *testing.T) {
	src := `
proc f(a: int, b: int): int {
  return (a div b) * 100 + a mod b;
}
`
	info := checked(t, src, 2, nil)
	out, err := RunSequential(info, "f", []ArgVal{{IsScal: true, Scalar: -7}, {IsScal: true, Scalar: 3}})
	if err != nil {
		t.Fatal(err)
	}
	// floor(-7/3) = -3, -7 mod 3 = 2 (Euclidean)
	if out.Ret.Scalar != -298 {
		t.Errorf("got %v, want -298", out.Ret.Scalar)
	}
}

func TestSequentialNestedCalls(t *testing.T) {
	src := `
proc square(x: int): int { return x * x; }
proc sumsq(a: int, b: int): int { return square(a) + square(b); }
`
	info := checked(t, src, 2, nil)
	out, err := RunSequential(info, "sumsq", []ArgVal{{IsScal: true, Scalar: 3}, {IsScal: true, Scalar: 4}})
	if err != nil {
		t.Fatal(err)
	}
	if out.Ret.Scalar != 25 {
		t.Errorf("got %v, want 25", out.Ret.Scalar)
	}
}

func TestSequentialDivByZero(t *testing.T) {
	src := `proc f(a: int): int { return a div (a - a); }`
	info := checked(t, src, 2, nil)
	if _, err := RunSequential(info, "f", []ArgVal{{IsScal: true, Scalar: 3}}); err == nil {
		t.Error("expected division-by-zero error")
	}
}

func TestSequentialLoopStep(t *testing.T) {
	src := `
proc f(): real {
  let A = vector(32) on all;
  let total = 0;
  for i = 3 to 17 by 4 {
    A[i] = i + 0.0;
  }
  return A[3] + A[7] + A[11] + A[15];
}
`
	info := checked(t, src, 2, nil)
	out, err := RunSequential(info, "f", nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.Ret.Scalar != 36 {
		t.Errorf("got %v, want 36", out.Ret.Scalar)
	}
}

func TestSequentialDiscardedCallResult(t *testing.T) {
	src := `
proc make(A: matrix[2, 2] on all): int {
  A[1, 1] = 3.0;
  return 7;
}
proc main(): real {
  let A = matrix(2, 2) on all;
  call make(A);
  return A[1, 1];
}
`
	info := checked(t, src, 2, nil)
	out, err := RunSequential(info, "main", nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.Ret.Scalar != 3 {
		t.Errorf("got %v, want 3", out.Ret.Scalar)
	}
}

func TestSequentialVectorReturn(t *testing.T) {
	src := `
proc fill(): vector[4] {
  let v = vector(4) on all;
  for i = 1 to 4 {
    v[i] = i * 10.0;
  }
  return v;
}
`
	// Vector returns need an explicit mapping only for distributed dists;
	// "on all" defaults apply here via the return-type check... the checker
	// requires arrays to declare their return mapping, so expect an error.
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	_, errs := sem.Check(prog, sem.Config{Procs: 2})
	if len(errs) == 0 {
		// If accepted, it must run.
		info := checked(t, src, 2, nil)
		out, err := RunSequential(info, "fill", nil)
		if err != nil {
			t.Fatal(err)
		}
		if out.Ret.Vector == nil {
			t.Fatal("expected a vector result")
		}
		v, _ := out.Ret.Vector.Read(3)
		if v != 30 {
			t.Errorf("v[3] = %v, want 30", v)
		}
		return
	}
	// The declared behaviour: array returns must state their mapping.
	if !strings.Contains(errs[0].Error(), "return mapping") {
		t.Errorf("unexpected error: %v", errs[0])
	}
}
