package exec

import (
	"context"
	"errors"
	"fmt"

	"procdecomp/internal/dist"
	"procdecomp/internal/expr"
	"procdecomp/internal/istruct"
	"procdecomp/internal/lang"
	"procdecomp/internal/machine"
	"procdecomp/internal/spmd"
)

// SPMDOutcome is the result of a distributed run: gathered global values
// plus the machine's performance statistics.
type SPMDOutcome struct {
	Stats machine.Stats
	// Arrays holds the output arrays reassembled from the owners' local
	// pieces (undefined elements stay undefined).
	Arrays map[string]*istruct.Matrix
	// Scalars holds output scalar I-variables, read from their owners.
	Scalars map[string]Value
}

// RunSPMD executes the compiled programs on a fresh simulated machine.
// progs must either hold exactly one generic program (Proc == -1, executed
// by every process — run-time resolution) or cfg.Procs specialized programs
// indexed by process number (compile-time resolution). inputs supplies the
// global contents of each parameter array; the harness scatters them to the
// owners before timing starts.
func RunSPMD(progs []*spmd.Program, cfg machine.Config, inputs map[string]*istruct.Matrix) (*SPMDOutcome, error) {
	return RunSPMDCtx(context.Background(), progs, cfg, inputs)
}

// RunSPMDCtx is RunSPMD under a context: the context's Done channel is wired
// to the machine's Cancel hook, so a deadline or cancellation aborts the
// simulated run at the next machine action of any process. A canceled run
// returns an error satisfying errors.Is against both machine.ErrCanceled and
// the context's own error (context.Canceled or context.DeadlineExceeded), so
// callers can tell a host-side abort from a simulation failure.
func RunSPMDCtx(ctx context.Context, progs []*spmd.Program, cfg machine.Config, inputs map[string]*istruct.Matrix) (*SPMDOutcome, error) {
	if done := ctx.Done(); done != nil {
		cfg.Cancel = done
	}
	out, err := runSPMD(progs, cfg, inputs)
	if err != nil && errors.Is(err, machine.ErrCanceled) && ctx.Err() != nil {
		return nil, fmt.Errorf("exec: %w: %w", err, ctx.Err())
	}
	return out, err
}

func runSPMD(progs []*spmd.Program, cfg machine.Config, inputs map[string]*istruct.Matrix) (*SPMDOutcome, error) {
	pick := func(p int) *spmd.Program { return progs[p] }
	switch {
	case len(progs) == 1 && progs[0].Proc < 0:
		pick = func(int) *spmd.Program { return progs[0] }
	case len(progs) == cfg.Procs:
		for i, pr := range progs {
			if pr.Proc != i {
				return nil, fmt.Errorf("exec: program %d is specialized for process %d", i, pr.Proc)
			}
		}
	default:
		return nil, fmt.Errorf("exec: got %d program(s) for %d processes", len(progs), cfg.Procs)
	}

	m := machine.New(cfg)
	states := make([]*pstate, cfg.Procs)
	for i := range states {
		states[i] = newPState(pick(i), i)
	}
	// Scatter input arrays (setup, not timed).
	for i, st := range states {
		for _, prm := range st.prog.Params {
			g, ok := inputs[prm.Name]
			if !ok {
				return nil, fmt.Errorf("exec: no input supplied for parameter %s", prm.Name)
			}
			lp, serr := scatter(g, prm.Dist, int64(i))
			if serr != nil {
				return nil, fmt.Errorf("exec: parameter %s: %w", prm.Name, serr)
			}
			st.arrays[prm.Name] = lp
		}
	}

	err := m.Run(func(p *machine.Proc) {
		st := states[p.ID()]
		st.p = p
		st.exec(st.prog.Body)
	})
	if err != nil {
		return nil, err
	}
	// A traced run self-checks: the event log must reconcile exactly with the
	// machine's compute/comm/idle partition.
	if err := m.VerifyTrace(); err != nil {
		return nil, err
	}

	stats, err := m.Stats()
	if err != nil {
		return nil, err
	}
	out := &SPMDOutcome{
		Stats:   stats,
		Arrays:  map[string]*istruct.Matrix{},
		Scalars: map[string]Value{},
	}
	for _, o := range pick(0).Outputs {
		if o.IsArray {
			info := pick(0).Arrays[o.Name]
			g, gerr := gather(states, o.Name, info)
			if gerr != nil {
				return nil, gerr
			}
			out.Arrays[o.Name] = g
		} else {
			owner := int64(0)
			if o.ScalarDist != nil && o.ScalarDist.Kind() == dist.KindSingle {
				owner, _ = dist.ProcOf(o.ScalarDist)
			}
			iv, ok := states[owner].ivars[o.Name]
			if !ok || !iv.Defined() {
				return nil, fmt.Errorf("exec: output scalar %s undefined on process %d", o.Name, owner)
			}
			v, _ := iv.Read()
			out.Scalars[o.Name] = v
		}
	}
	return out, nil
}

// scatter builds process p's local piece of a global input array. A mapping
// that is inconsistent with the array — a degenerate local allocation, or a
// local index outside it — is reported as an error naming the array, the
// mapping, and the offending element, so callers (and ultimately
// `pdrun -check`) can surface it instead of crashing on a raw panic.
func scatter(g *istruct.Matrix, d dist.Dist, p int64) (*istruct.Matrix, error) {
	ls := d.LocalShape()
	local, err := istruct.NewMatrix(g.Name(), ls[0], ls[1])
	if err != nil {
		return nil, fmt.Errorf("scatter %s under %s: local allocation %v: %w", g.Name(), d, ls, err)
	}
	rows, cols := g.Rows(), g.Cols()
	for i := int64(1); i <= rows; i++ {
		for j := int64(1); j <= cols; j++ {
			owner := d.Owner([]int64{i, j})
			if owner != p && owner != dist.All {
				continue
			}
			if !g.Defined(i, j) {
				continue
			}
			v, _ := g.Read(i, j)
			l := d.Local([]int64{i, j})
			if err := local.Write(l[0], l[1], v); err != nil {
				return nil, fmt.Errorf("scatter %s[%d,%d] under %s to process %d at local [%d,%d]: %w",
					g.Name(), i, j, d, p, l[0], l[1], err)
			}
		}
	}
	return local, nil
}

// gather reassembles a global array from the owners' local pieces. Vectors
// (rank 1) gather into an n×1 matrix, matching their local representation.
func gather(states []*pstate, name string, info spmd.ArrayInfo) (*istruct.Matrix, error) {
	shape := info.GlobalShape
	rows, cols := shape[0], int64(1)
	if len(shape) == 2 {
		cols = shape[1]
	}
	g, err := istruct.NewMatrix(name, rows, cols)
	if err != nil {
		return nil, err
	}
	d := info.Dist
	for i := int64(1); i <= rows; i++ {
		for j := int64(1); j <= cols; j++ {
			idx := []int64{i, j}
			if len(shape) == 1 {
				idx = []int64{i}
			}
			owner := d.Owner(idx)
			if owner == dist.All {
				owner = 0
			}
			st := states[owner]
			local, ok := st.arrays[name]
			if !ok {
				return nil, fmt.Errorf("exec: process %d never allocated %s", owner, name)
			}
			l := d.Local(idx)
			li, lj := l[0], int64(1)
			if len(l) == 2 {
				lj = l[1]
			}
			if !local.Defined(li, lj) {
				continue
			}
			v, _ := local.Read(li, lj)
			if err := g.Write(i, j, v); err != nil {
				return nil, err
			}
		}
	}
	return g, nil
}

// pstate is one process's interpreter state.
type pstate struct {
	prog   *spmd.Program
	me     int64
	p      *machine.Proc
	arrays map[string]*istruct.Matrix
	ivars  map[string]*istruct.IVar
	bufs   map[string][]Value
	vars   map[string]Value
	ienv   expr.Env // integer view of vars + loop variables + me
}

func newPState(prog *spmd.Program, me int) *pstate {
	st := &pstate{
		prog:   prog,
		me:     int64(me),
		arrays: map[string]*istruct.Matrix{},
		ivars:  map[string]*istruct.IVar{},
		bufs:   map[string][]Value{},
		vars:   map[string]Value{},
		ienv:   expr.Env{},
	}
	st.ienv[spmd.Me] = int64(me)
	return st
}

func (st *pstate) failf(format string, args ...any) {
	panic(fmt.Errorf(format, args...))
}

func (st *pstate) setVar(name string, v Value) {
	st.vars[name] = v
	st.ienv[name] = int64(v)
}

func (st *pstate) intOf(e expr.Expr) int64 {
	v, err := e.Eval(st.ienv)
	if err != nil {
		st.failf("process %d: %v", st.me, err)
	}
	return v
}

// vexprOps counts operator nodes, for cost accounting.
func vexprOps(v spmd.VExpr) int64 {
	switch v := v.(type) {
	case spmd.VBin:
		return 1 + vexprOps(v.L) + vexprOps(v.R)
	case spmd.VUn:
		return 1 + vexprOps(v.X)
	default:
		return 0
	}
}

func (st *pstate) evalV(v spmd.VExpr) Value {
	switch v := v.(type) {
	case spmd.VConst:
		return v.F
	case spmd.VVar:
		if val, ok := st.vars[v.Name]; ok {
			return val
		}
		if iv, ok := st.ivars[v.Name]; ok {
			val, err := iv.Read()
			if err != nil {
				st.failf("process %d: %v", st.me, err)
			}
			return val
		}
		st.failf("process %d: undefined variable %s", st.me, v.Name)
		return 0
	case spmd.VInt:
		return Value(st.intOf(v.X))
	case spmd.VBin:
		return EvalBin(v.Op, st.evalV(v.L), st.evalV(v.R), func(msg string) {
			st.failf("process %d: %s", st.me, msg)
		})
	case spmd.VUn:
		x := st.evalV(v.X)
		if v.Op == lang.OpNeg {
			return -x
		}
		if x != 0 {
			return 0
		}
		return 1
	default:
		st.failf("process %d: unknown value expression %T", st.me, v)
		return 0
	}
}

func (st *pstate) exec(body []spmd.Stmt) {
	for _, s := range body {
		st.stmt(s)
	}
}

// indexCost is the flat operation charge for computing one array or buffer
// subscript (the local-index arithmetic of the paper's column_local).
const indexCost = 2

func (st *pstate) stmt(s spmd.Stmt) {
	switch s := s.(type) {
	case *spmd.Alloc:
		switch len(s.Shape) {
		case 2:
			m, err := istruct.NewMatrix(s.Array, st.intOf(s.Shape[0]), st.intOf(s.Shape[1]))
			if err != nil {
				st.failf("process %d: %v", st.me, err)
			}
			st.arrays[s.Array] = m
		case 1:
			m, err := istruct.NewMatrix(s.Array, st.intOf(s.Shape[0]), 1)
			if err != nil {
				st.failf("process %d: %v", st.me, err)
			}
			st.arrays[s.Array] = m
		default:
			st.failf("process %d: alloc of rank %d", st.me, len(s.Shape))
		}
	case *spmd.AllocBuf:
		st.bufs[s.Buf] = make([]Value, st.intOf(s.Size)+1) // 1-based
	case *spmd.AssignVar:
		st.p.Ops(vexprOps(s.Val))
		st.setVar(s.Name, st.evalV(s.Val))
	case *spmd.AssignIVar:
		st.p.Ops(vexprOps(s.Val))
		v := st.evalV(s.Val)
		iv, ok := st.ivars[s.Name]
		if !ok {
			iv = istruct.NewIVar(s.Name)
			st.ivars[s.Name] = iv
		}
		if err := iv.Write(v); err != nil {
			st.failf("process %d: %v", st.me, err)
		}
		st.ienv[s.Name] = int64(v)
	case *spmd.ARead:
		st.p.Ops(indexCost)
		st.p.Mem(1)
		st.setVar(s.Dst, st.aread(s.Array, s.Idx))
	case *spmd.AWrite:
		st.p.Ops(indexCost + vexprOps(s.Val))
		st.p.Mem(1)
		st.awrite(s.Array, s.Idx, st.evalV(s.Val))
	case *spmd.BufRead:
		st.p.Ops(indexCost)
		st.p.Mem(1)
		buf := st.buf(s.Buf)
		i := st.intOf(s.Idx)
		st.checkBuf(s.Buf, buf, i)
		st.setVar(s.Dst, buf[i])
	case *spmd.BufWrite:
		st.p.Ops(indexCost + vexprOps(s.Val))
		st.p.Mem(1)
		buf := st.buf(s.Buf)
		i := st.intOf(s.Idx)
		st.checkBuf(s.Buf, buf, i)
		buf[i] = st.evalV(s.Val)
	case *spmd.Send:
		st.p.Ops(vexprOps(s.Val))
		st.p.Send(int(st.intOf(s.Dst)), s.Tag, st.evalV(s.Val))
	case *spmd.Recv:
		v := st.p.Recv1(int(st.intOf(s.Src)), s.Tag)
		st.setVar(s.Dst, v)
	case *spmd.SendBuf:
		buf := st.buf(s.Buf)
		lo, hi := st.intOf(s.Lo), st.intOf(s.Hi)
		st.checkBuf(s.Buf, buf, lo)
		st.checkBuf(s.Buf, buf, hi)
		st.p.Send(int(st.intOf(s.Dst)), s.Tag, buf[lo:hi+1]...)
	case *spmd.RecvBuf:
		buf := st.buf(s.Buf)
		lo, hi := st.intOf(s.Lo), st.intOf(s.Hi)
		st.checkBuf(s.Buf, buf, lo)
		st.checkBuf(s.Buf, buf, hi)
		vals := st.p.Recv(int(st.intOf(s.Src)), s.Tag)
		if int64(len(vals)) != hi-lo+1 {
			st.failf("process %d: block receive of %d values into %s[%d..%d]", st.me, len(vals), s.Buf, lo, hi)
		}
		copy(buf[lo:hi+1], vals)
	case *spmd.Coerce:
		st.coerce(s)
	case *spmd.For:
		lo, hi, step := st.intOf(s.Lo), st.intOf(s.Hi), st.intOf(s.Step)
		if step <= 0 {
			st.failf("process %d: loop step %d", st.me, step)
		}
		for x := lo; x <= hi; x += step {
			st.p.LoopStep()
			st.vars[s.Var] = Value(x)
			st.ienv[s.Var] = x
			st.exec(s.Body)
		}
	case *spmd.Guard:
		st.p.Ops(1) // the mynode() test of run-time resolution
		if st.intOf(s.Proc) == st.me {
			st.exec(s.Body)
		}
	case *spmd.IfValue:
		st.p.Ops(vexprOps(s.Cond))
		if st.evalV(s.Cond) != 0 {
			st.exec(s.Then)
		} else {
			st.exec(s.Else)
		}
	default:
		st.failf("process %d: unknown statement %T", st.me, s)
	}
}

func (st *pstate) buf(name string) []Value {
	b, ok := st.bufs[name]
	if !ok {
		st.failf("process %d: undefined buffer %s", st.me, name)
	}
	return b
}

func (st *pstate) checkBuf(name string, buf []Value, i int64) {
	if i < 1 || i >= int64(len(buf)) {
		st.failf("process %d: buffer %s index %d out of range [1,%d]", st.me, name, i, len(buf)-1)
	}
}

func (st *pstate) aread(name string, idx []expr.Expr) Value {
	arr, ok := st.arrays[name]
	if !ok {
		st.failf("process %d: undefined array %s", st.me, name)
	}
	i, j := st.intOf(idx[0]), int64(1)
	if len(idx) == 2 {
		j = st.intOf(idx[1])
	}
	v, err := arr.Read(i, j)
	if err != nil {
		st.failf("process %d: %v", st.me, err)
	}
	return v
}

func (st *pstate) awrite(name string, idx []expr.Expr, v Value) {
	arr, ok := st.arrays[name]
	if !ok {
		st.failf("process %d: undefined array %s", st.me, name)
	}
	i, j := st.intOf(idx[0]), int64(1)
	if len(idx) == 2 {
		j = st.intOf(idx[1])
	}
	if err := arr.Write(i, j, v); err != nil {
		st.failf("process %d: %v", st.me, err)
	}
}

// coerce implements run-time resolution's value movement (§3.1). Every
// process executes the statement and plays its role; the ownership tests are
// charged as compute.
func (st *pstate) coerce(s *spmd.Coerce) {
	st.p.Ops(2) // owner/needer membership tests
	readSrc := func() Value {
		st.p.Mem(1)
		if s.Array != "" {
			st.p.Ops(indexCost)
			return st.aread(s.Array, s.Idx)
		}
		iv, ok := st.ivars[s.Var]
		if !ok {
			st.failf("process %d: coerce of undefined scalar %s", st.me, s.Var)
		}
		v, err := iv.Read()
		if err != nil {
			st.failf("process %d: %v", st.me, err)
		}
		return v
	}

	switch {
	case s.OwnerAll:
		// Replicated source: everyone who needs it reads its own copy.
		if s.NeederAll || st.intOf(s.Needer) == st.me {
			st.setVar(s.Dst, readSrc())
		}
	case s.NeederAll:
		owner := st.intOf(s.Owner)
		if owner == st.me {
			v := readSrc()
			for q := 0; q < st.p.Procs(); q++ {
				if int64(q) != st.me {
					st.p.Send(q, s.Tag, v)
				}
			}
			st.setVar(s.Dst, v)
		} else {
			st.setVar(s.Dst, st.p.Recv1(int(owner), s.Tag))
		}
	default:
		owner, needer := st.intOf(s.Owner), st.intOf(s.Needer)
		switch {
		case owner == needer:
			if owner == st.me {
				st.setVar(s.Dst, readSrc())
			}
		case owner == st.me:
			st.p.Send(int(needer), s.Tag, readSrc())
		case needer == st.me:
			st.setVar(s.Dst, st.p.Recv1(int(owner), s.Tag))
		}
	}
}
