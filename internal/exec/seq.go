// Package exec provides the two execution engines of the reproduction: a
// sequential reference interpreter for checked Idn programs (the semantics
// the programmer debugged against, §1), and an SPMD interpreter that runs
// compiled per-process programs on the simulated multicomputer, charging the
// machine's cost model. Comparing the two on the same inputs is how the test
// suite establishes that process decomposition preserves program meaning.
package exec

import (
	"fmt"
	"math"

	"procdecomp/internal/istruct"
	"procdecomp/internal/lang"
	"procdecomp/internal/sem"
)

// Value is a runtime scalar.
type Value = float64

// ArgVal is an argument to (or result of) a program: exactly one field set.
type ArgVal struct {
	Matrix *istruct.Matrix
	Vector *istruct.Vector
	IsScal bool
	Scalar Value
}

// Outcome is the result of a sequential run.
type Outcome struct {
	HasRet bool
	Ret    ArgVal
}

// binding is one scope entry of the sequential interpreter.
type binding struct {
	sym    *sem.Symbol
	ivar   *istruct.IVar   // scalars (single-assignment)
	loop   *Value          // loop variables (mutable)
	matrix *istruct.Matrix // arrays
	vector *istruct.Vector
}

type seqInterp struct {
	info   *sem.Info
	scopes []map[string]*binding
}

type returnSignal struct{ val ArgVal }

// RunSequential interprets procedure procName of the checked program with
// the given arguments, using the reference (single machine, global arrays)
// semantics. I-structure violations and other run-time errors are returned
// as errors.
func RunSequential(info *sem.Info, procName string, args []ArgVal) (out *Outcome, err error) {
	p, ok := info.Procs[procName]
	if !ok {
		return nil, fmt.Errorf("exec: no procedure %s", procName)
	}
	if len(args) != len(p.Params) {
		return nil, fmt.Errorf("exec: %s expects %d argument(s), got %d", procName, len(p.Params), len(args))
	}
	it := &seqInterp{info: info}
	defer func() {
		if r := recover(); r != nil {
			if e, ok := r.(error); ok {
				out, err = nil, e
				return
			}
			panic(r)
		}
	}()
	ret, hasRet := it.call(p, args)
	return &Outcome{HasRet: hasRet, Ret: ret}, nil
}

func (it *seqInterp) fail(pos lang.Pos, format string, args ...any) {
	panic(fmt.Errorf("%s: %s", pos, fmt.Sprintf(format, args...)))
}

func (it *seqInterp) failErr(err error) { panic(err) }

func (it *seqInterp) call(p *sem.Proc, args []ArgVal) (ArgVal, bool) {
	saved := it.scopes
	it.scopes = []map[string]*binding{{}}
	defer func() { it.scopes = saved }()

	for i, prm := range p.Params {
		b := &binding{sym: prm}
		a := args[i]
		switch {
		case prm.Type.Base == lang.TMatrix:
			if a.Matrix == nil {
				it.fail(p.Decl.Pos, "argument %d of %s must be a matrix", i+1, p.Name)
			}
			b.matrix = a.Matrix
		case prm.Type.Base == lang.TVector:
			if a.Vector == nil {
				it.fail(p.Decl.Pos, "argument %d of %s must be a vector", i+1, p.Name)
			}
			b.vector = a.Vector
		default:
			b.ivar = istruct.NewIVar(prm.Name)
			if err := b.ivar.Write(a.Scalar); err != nil {
				it.failErr(err)
			}
		}
		it.scopes[0][prm.Name] = b
	}

	var ret ArgVal
	hasRet := false
	func() {
		defer func() {
			if r := recover(); r != nil {
				if sig, ok := r.(returnSignal); ok {
					ret, hasRet = sig.val, true
					return
				}
				panic(r)
			}
		}()
		it.block(p.Decl.Body)
	}()
	return ret, hasRet
}

func (it *seqInterp) pushScope() { it.scopes = append(it.scopes, map[string]*binding{}) }
func (it *seqInterp) popScope()  { it.scopes = it.scopes[:len(it.scopes)-1] }

func (it *seqInterp) lookup(name string) *binding {
	for i := len(it.scopes) - 1; i >= 0; i-- {
		if b, ok := it.scopes[i][name]; ok {
			return b
		}
	}
	return nil
}

func (it *seqInterp) block(b *lang.Block) {
	it.pushScope()
	defer it.popScope()
	for _, st := range b.Stmts {
		it.stmt(st)
	}
}

func (it *seqInterp) stmt(st lang.Stmt) {
	switch st := st.(type) {
	case *lang.LetStmt:
		sym := it.info.SymbolOf(st)
		b := &binding{sym: sym}
		switch {
		case sym.Kind == sem.SymArray:
			if _, isAlloc := st.Init.(*lang.AllocExpr); isAlloc {
				if sym.Type.Base == lang.TMatrix {
					m, err := istruct.NewMatrix(st.Name, sym.Type.Dims[0], sym.Type.Dims[1])
					if err != nil {
						it.failErr(err)
					}
					b.matrix = m
				} else {
					v, err := istruct.NewVector(st.Name, sym.Type.Dims[0])
					if err != nil {
						it.failErr(err)
					}
					b.vector = v
				}
			} else {
				// Array-valued call.
				call := st.Init.(*lang.CallExpr)
				rv := it.evalCall(call)
				b.matrix, b.vector = rv.Matrix, rv.Vector
			}
		default:
			b.ivar = istruct.NewIVar(st.Name)
			if err := b.ivar.Write(it.eval(st.Init)); err != nil {
				it.failErr(err)
			}
		}
		it.scopes[len(it.scopes)-1][st.Name] = b
	case *lang.AssignStmt:
		b := it.lookup(st.Name)
		v := it.eval(st.Value)
		if err := b.ivar.Write(v); err != nil {
			it.failErr(err)
		}
	case *lang.StoreStmt:
		b := it.lookup(st.Array)
		v := it.eval(st.Value)
		if b.matrix != nil {
			i, j := it.evalInt(st.Indices[0]), it.evalInt(st.Indices[1])
			if err := b.matrix.Write(i, j, v); err != nil {
				it.failErr(err)
			}
		} else {
			i := it.evalInt(st.Indices[0])
			if err := b.vector.Write(i, v); err != nil {
				it.failErr(err)
			}
		}
	case *lang.ForStmt:
		lo, hi := it.evalInt(st.Lo), it.evalInt(st.Hi)
		step := int64(1)
		if st.Step != nil {
			step = it.evalInt(st.Step)
			if step <= 0 {
				it.fail(st.Pos, "loop step must be positive, got %d", step)
			}
		}
		v := Value(0)
		b := &binding{sym: it.info.SymbolOf(st), loop: &v}
		it.pushScope()
		it.scopes[len(it.scopes)-1][st.Var] = b
		for x := lo; x <= hi; x += step {
			v = Value(x)
			it.block(st.Body)
		}
		it.popScope()
	case *lang.IfStmt:
		if it.eval(st.Cond) != 0 {
			it.block(st.Then)
		} else if st.Else != nil {
			it.block(st.Else)
		}
	case *lang.CallStmt:
		it.doCall(st.Pos, st.Name, st.Args)
	case *lang.ReturnStmt:
		if st.Value == nil {
			panic(returnSignal{})
		}
		if vr, ok := st.Value.(*lang.VarRef); ok {
			if b := it.lookup(vr.Name); b != nil && b.sym.Kind == sem.SymArray {
				panic(returnSignal{val: ArgVal{Matrix: b.matrix, Vector: b.vector}})
			}
		}
		panic(returnSignal{val: ArgVal{IsScal: true, Scalar: it.eval(st.Value)}})
	default:
		it.fail(st.Position(), "unsupported statement in interpreter")
	}
}

func (it *seqInterp) doCall(pos lang.Pos, name string, args []lang.Expr) (ArgVal, bool) {
	callee := it.info.Procs[name]
	vals := make([]ArgVal, len(args))
	for i, a := range args {
		prm := callee.Params[i]
		if prm.Type.IsArray() {
			b := it.lookup(a.(*lang.VarRef).Name)
			vals[i] = ArgVal{Matrix: b.matrix, Vector: b.vector}
		} else {
			vals[i] = ArgVal{IsScal: true, Scalar: it.eval(a)}
		}
	}
	return it.call(callee, vals)
}

func (it *seqInterp) evalCall(e *lang.CallExpr) ArgVal {
	rv, ok := it.doCall(e.Pos, e.Name, e.Args)
	if !ok {
		it.fail(e.Pos, "procedure %s did not return a value", e.Name)
	}
	return rv
}

func (it *seqInterp) evalInt(e lang.Expr) int64 {
	v := it.eval(e)
	return int64(v)
}

func (it *seqInterp) eval(e lang.Expr) Value {
	switch e := e.(type) {
	case *lang.NumLit:
		return e.Val
	case *lang.BoolLit:
		if e.Val {
			return 1
		}
		return 0
	case *lang.VarRef:
		sym := it.info.SymbolOf(e)
		if sym.Kind == sem.SymConst {
			return sym.Const
		}
		b := it.lookup(e.Name)
		if b.loop != nil {
			return *b.loop
		}
		v, err := b.ivar.Read()
		if err != nil {
			it.failErr(err)
		}
		return v
	case *lang.IndexExpr:
		b := it.lookup(e.Array)
		if b.matrix != nil {
			v, err := b.matrix.Read(it.evalInt(e.Indices[0]), it.evalInt(e.Indices[1]))
			if err != nil {
				it.failErr(err)
			}
			return v
		}
		v, err := b.vector.Read(it.evalInt(e.Indices[0]))
		if err != nil {
			it.failErr(err)
		}
		return v
	case *lang.UnExpr:
		x := it.eval(e.X)
		if e.Op == lang.OpNeg {
			return -x
		}
		if x != 0 {
			return 0
		}
		return 1
	case *lang.BinExpr:
		return EvalBin(e.Op, it.eval(e.L), it.eval(e.R), func(msg string) { it.fail(e.Pos, "%s", msg) })
	case *lang.CallExpr:
		rv := it.evalCall(e)
		if !rv.IsScal {
			it.fail(e.Pos, "array-valued call used as a scalar")
		}
		return rv.Scalar
	default:
		it.fail(e.Position(), "unsupported expression in interpreter")
		return 0
	}
}

// EvalBin applies a binary operator to runtime values with Idn semantics:
// div is floor division, mod is Euclidean, comparisons yield 1/0. The fail
// callback reports division by zero.
func EvalBin(op lang.Op, l, r Value, fail func(string)) Value {
	boolToV := func(b bool) Value {
		if b {
			return 1
		}
		return 0
	}
	switch op {
	case lang.OpAdd:
		return l + r
	case lang.OpSub:
		return l - r
	case lang.OpMul:
		return l * r
	case lang.OpDivReal:
		if r == 0 {
			fail("division by zero")
			return 0
		}
		return l / r
	case lang.OpDivInt:
		if r == 0 {
			fail("division by zero")
			return 0
		}
		return Value(floorDivI(int64(l), int64(r)))
	case lang.OpMod:
		if r == 0 {
			fail("mod by zero")
			return 0
		}
		return Value(eucModI(int64(l), int64(r)))
	case lang.OpEq:
		return boolToV(l == r)
	case lang.OpNe:
		return boolToV(l != r)
	case lang.OpLt:
		return boolToV(l < r)
	case lang.OpLe:
		return boolToV(l <= r)
	case lang.OpGt:
		return boolToV(l > r)
	case lang.OpGe:
		return boolToV(l >= r)
	case lang.OpAnd:
		return boolToV(l != 0 && r != 0)
	case lang.OpOr:
		return boolToV(l != 0 || r != 0)
	case lang.OpMin:
		return math.Min(l, r)
	case lang.OpMax:
		return math.Max(l, r)
	default:
		fail(fmt.Sprintf("unsupported operator %v", op))
		return 0
	}
}

func floorDivI(a, b int64) int64 {
	q := a / b
	if (a%b != 0) && ((a < 0) != (b < 0)) {
		q--
	}
	return q
}

func eucModI(a, m int64) int64 {
	if m < 0 {
		m = -m
	}
	r := a % m
	if r < 0 {
		r += m
	}
	return r
}
