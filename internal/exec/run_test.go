package exec

import (
	"strings"
	"testing"

	"procdecomp/internal/dist"
	"procdecomp/internal/expr"
	"procdecomp/internal/istruct"
	"procdecomp/internal/lang"
	"procdecomp/internal/machine"
	"procdecomp/internal/spmd"
)

func cfg4() machine.Config { return machine.DefaultConfig(4) }

// prog builds a minimal generic program over one replicated 2x2 array.
func prog(body []spmd.Stmt, outputs ...spmd.OutVar) *spmd.Program {
	d := dist.NewReplicated(4, 2, 2)
	return &spmd.Program{
		Name: "t", Proc: -1,
		Arrays:  map[string]spmd.ArrayInfo{"A": {Name: "A", Dist: d, GlobalShape: []int64{2, 2}}},
		Body:    append([]spmd.Stmt{&spmd.Alloc{Array: "A", Shape: []expr.Expr{expr.C(2), expr.C(2)}}}, body...),
		Outputs: outputs,
	}
}

func TestSPMDGuardExecutesOnOneProcess(t *testing.T) {
	// Each process writes a different element under a guard on me.
	p := prog([]spmd.Stmt{
		&spmd.Guard{Proc: expr.C(1), Body: []spmd.Stmt{
			&spmd.AWrite{Array: "A", Idx: []expr.Expr{expr.C(1), expr.C(1)}, Val: spmd.VConst{F: 7}},
		}},
	}, spmd.OutVar{Name: "A", IsArray: true})
	out, err := RunSPMD([]*spmd.Program{p}, cfg4(), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Replicated gather reads process 0's copy, which must be undefined —
	// only process 1 wrote.
	if out.Arrays["A"].Defined(1, 1) {
		t.Error("guarded write leaked to process 0")
	}
}

func TestSPMDCoerceBroadcast(t *testing.T) {
	// Owner 2 broadcasts a scalar to everyone; every process then writes it
	// into its own replicated copy.
	p := prog([]spmd.Stmt{
		&spmd.Guard{Proc: expr.C(2), Body: []spmd.Stmt{
			&spmd.AssignIVar{Name: "x", Val: spmd.VConst{F: 42}},
		}},
		&spmd.Coerce{Dst: "t1", Var: "x", Owner: expr.C(2), NeederAll: true, Tag: 1},
		&spmd.AWrite{Array: "A", Idx: []expr.Expr{expr.C(1), expr.C(2)}, Val: spmd.VVar{Name: "t1"}},
	}, spmd.OutVar{Name: "A", IsArray: true})
	m := machine.New(cfg4())
	_ = m
	out, err := RunSPMD([]*spmd.Program{p}, cfg4(), nil)
	if err != nil {
		t.Fatal(err)
	}
	v, err := out.Arrays["A"].Read(1, 2)
	if err != nil || v != 42 {
		t.Fatalf("broadcast value = %v (%v)", v, err)
	}
	if out.Stats.Messages != 3 {
		t.Errorf("broadcast messages = %d, want 3", out.Stats.Messages)
	}
}

func TestSPMDCoerceLocalNoMessages(t *testing.T) {
	p := prog([]spmd.Stmt{
		&spmd.AssignIVar{Name: "x", Val: spmd.VConst{F: 5}}, // replicated I-var
		&spmd.Coerce{Dst: "t1", Var: "x", OwnerAll: true, NeederAll: true, Tag: 1},
		&spmd.AWrite{Array: "A", Idx: []expr.Expr{expr.C(2), expr.C(2)}, Val: spmd.VVar{Name: "t1"}},
	}, spmd.OutVar{Name: "A", IsArray: true})
	out, err := RunSPMD([]*spmd.Program{p}, cfg4(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.Stats.Messages != 0 {
		t.Errorf("local coerce sent %d messages", out.Stats.Messages)
	}
}

func TestSPMDIStructureViolationSurfaces(t *testing.T) {
	p := prog([]spmd.Stmt{
		&spmd.AWrite{Array: "A", Idx: []expr.Expr{expr.C(1), expr.C(1)}, Val: spmd.VConst{F: 1}},
		&spmd.AWrite{Array: "A", Idx: []expr.Expr{expr.C(1), expr.C(1)}, Val: spmd.VConst{F: 2}},
	})
	_, err := RunSPMD([]*spmd.Program{p}, cfg4(), nil)
	if err == nil || !strings.Contains(err.Error(), "already written") {
		t.Errorf("err = %v, want I-structure violation", err)
	}
}

func TestSPMDProtocolMismatchDeadlocks(t *testing.T) {
	// Process 0 waits for a message nobody sends: the machine's deadlock
	// detector must surface it as an error, not a hang.
	p := prog([]spmd.Stmt{
		&spmd.Guard{Proc: expr.C(0), Body: []spmd.Stmt{
			&spmd.Recv{Src: expr.C(3), Tag: 77, Dst: "t"},
		}},
	})
	_, err := RunSPMD([]*spmd.Program{p}, cfg4(), nil)
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Errorf("err = %v, want deadlock", err)
	}
}

func TestSPMDScalarOutput(t *testing.T) {
	p := prog([]spmd.Stmt{
		&spmd.Guard{Proc: expr.C(3), Body: []spmd.Stmt{
			&spmd.AssignIVar{Name: "r", Val: spmd.VConst{F: 9}},
		}},
	}, spmd.OutVar{Name: "r", ScalarDist: dist.NewSingle(4, 3)})
	out, err := RunSPMD([]*spmd.Program{p}, cfg4(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.Scalars["r"] != 9 {
		t.Errorf("scalar output = %v", out.Scalars["r"])
	}
}

func TestSPMDMissingInput(t *testing.T) {
	d := dist.NewCyclicCols(4, 4, 4)
	p := &spmd.Program{
		Name: "t", Proc: -1,
		Params: []spmd.ArrayInfo{{Name: "In", Dist: d, GlobalShape: []int64{4, 4}}},
		Arrays: map[string]spmd.ArrayInfo{"In": {Name: "In", Dist: d, GlobalShape: []int64{4, 4}}},
	}
	if _, err := RunSPMD([]*spmd.Program{p}, cfg4(), nil); err == nil {
		t.Error("missing input should be an error")
	}
}

func TestSPMDWrongProgramCount(t *testing.T) {
	p := prog(nil)
	p.Proc = 0 // specialized, but only one program for 4 processes
	if _, err := RunSPMD([]*spmd.Program{p}, cfg4(), nil); err == nil {
		t.Error("program-count mismatch should be an error")
	}
}

func TestSPMDIfValueBranches(t *testing.T) {
	// Each process writes 1 if me < 2 else 2 into its replicated copy; the
	// gather reads process 0 (then-branch).
	p := prog([]spmd.Stmt{
		&spmd.IfValue{
			Cond: spmd.VBin{Op: lang.OpLt, L: spmd.VInt{X: spmd.MeExpr()}, R: spmd.VConst{F: 2}},
			Then: []spmd.Stmt{&spmd.AWrite{Array: "A", Idx: []expr.Expr{expr.C(1), expr.C(1)}, Val: spmd.VConst{F: 1}}},
			Else: []spmd.Stmt{&spmd.AWrite{Array: "A", Idx: []expr.Expr{expr.C(1), expr.C(1)}, Val: spmd.VConst{F: 2}}},
		},
	}, spmd.OutVar{Name: "A", IsArray: true})
	out, err := RunSPMD([]*spmd.Program{p}, cfg4(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := out.Arrays["A"].Read(1, 1); v != 1 {
		t.Errorf("process 0 took the wrong branch: %v", v)
	}
}

func TestSPMDBuffersRoundTrip(t *testing.T) {
	// Pack values into a buffer on process 0, block-send to 1, unpack there.
	p := prog([]spmd.Stmt{
		&spmd.AllocBuf{Buf: "b", Size: expr.C(3)},
		&spmd.Guard{Proc: expr.C(0), Body: []spmd.Stmt{
			&spmd.BufWrite{Buf: "b", Idx: expr.C(1), Val: spmd.VConst{F: 10}},
			&spmd.BufWrite{Buf: "b", Idx: expr.C(2), Val: spmd.VConst{F: 20}},
			&spmd.BufWrite{Buf: "b", Idx: expr.C(3), Val: spmd.VConst{F: 30}},
			&spmd.SendBuf{Dst: expr.C(1), Tag: 5, Buf: "b", Lo: expr.C(1), Hi: expr.C(3)},
		}},
		&spmd.Guard{Proc: expr.C(1), Body: []spmd.Stmt{
			&spmd.RecvBuf{Src: expr.C(0), Tag: 5, Buf: "b", Lo: expr.C(1), Hi: expr.C(3)},
			&spmd.BufRead{Dst: "x", Buf: "b", Idx: expr.C(2)},
			&spmd.AWrite{Array: "A", Idx: []expr.Expr{expr.C(1), expr.C(1)}, Val: spmd.VVar{Name: "x"}},
		}},
	}, spmd.OutVar{Name: "A", IsArray: true})
	out, err := RunSPMD([]*spmd.Program{p}, cfg4(), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Replicated gather reads proc 0's copy: undefined there. Check stats
	// instead and read process 1's value via a second run with a single
	// processor? Simpler: check messages and values.
	if out.Stats.Messages != 1 || out.Stats.Values != 3 {
		t.Errorf("stats = %+v, want 1 message of 3 values", out.Stats)
	}
}

func TestSPMDBufferBoundsChecked(t *testing.T) {
	p := prog([]spmd.Stmt{
		&spmd.AllocBuf{Buf: "b", Size: expr.C(2)},
		&spmd.BufWrite{Buf: "b", Idx: expr.C(5), Val: spmd.VConst{F: 1}},
	})
	_, err := RunSPMD([]*spmd.Program{p}, cfg4(), nil)
	if err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Errorf("err = %v, want bounds error", err)
	}
}

// gatherOne builds a matrix with one defined element per process and checks
// the cyclic gather reassembles ownership correctly.
func TestSPMDGatherCyclic(t *testing.T) {
	d := dist.NewCyclicCols(4, 4, 4)
	p := &spmd.Program{
		Name: "t", Proc: -1,
		Arrays: map[string]spmd.ArrayInfo{"A": {Name: "A", Dist: d, GlobalShape: []int64{4, 4}}},
		Body: []spmd.Stmt{
			&spmd.Alloc{Array: "A", Shape: []expr.Expr{expr.C(4), expr.C(1)}},
			// Every process owns exactly one column; write row 2 of it.
			&spmd.AWrite{Array: "A", Idx: []expr.Expr{expr.C(2), expr.C(1)},
				Val: spmd.VInt{X: spmd.MeExpr()}},
		},
		Outputs: []spmd.OutVar{{Name: "A", IsArray: true}},
	}
	out, err := RunSPMD([]*spmd.Program{p}, cfg4(), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Column j's owner is j mod 4; its local column 1 row 2 holds the owner id.
	for j := int64(1); j <= 4; j++ {
		v, err := out.Arrays["A"].Read(2, j)
		if err != nil {
			t.Fatalf("col %d: %v", j, err)
		}
		if int64(v) != j%4 {
			t.Errorf("col %d gathered from process %v, want %d", j, v, j%4)
		}
	}
}

func TestScatterPartialInput(t *testing.T) {
	g, _ := istruct.NewMatrix("In", 3, 3)
	g.Write(1, 1, 5)
	d := dist.NewCyclicCols(2, 3, 3)
	local, err := scatter(g, d, 1) // owner of column 1 is process 1
	if err != nil {
		t.Fatal(err)
	}
	l := d.Local([]int64{1, 1})
	v, err := local.Read(l[0], l[1])
	if err != nil || v != 5 {
		t.Errorf("scatter lost the defined element: %v %v", v, err)
	}
	if local.Defined(2, 1) {
		t.Error("scatter invented undefined elements")
	}
}

// badAllocDist and badLocalDist wrap a sound decomposition with the two
// failure shapes a malformed mapping can produce: a degenerate local
// allocation, and a local index outside the allocation. scatter used to
// panic on both — and since scattering happens before the machine run, the
// panics escaped RunSPMD raw instead of surfacing as errors.

type badAllocDist struct{ dist.Dist }

func (badAllocDist) LocalShape() []int64 { return []int64{0, 0} }

type badLocalDist struct{ dist.Dist }

func (badLocalDist) Local(idx []int64) []int64 { return []int64{99, 99} }

func scatterProg(d dist.Dist) *spmd.Program {
	return &spmd.Program{
		Name: "t", Proc: -1,
		Params: []spmd.ArrayInfo{{Name: "In", Dist: d, GlobalShape: []int64{2, 2}}},
		Arrays: map[string]spmd.ArrayInfo{"In": {Name: "In", Dist: d, GlobalShape: []int64{2, 2}}},
	}
}

func TestScatterBadAllocationIsError(t *testing.T) {
	g, _ := istruct.NewMatrix("In", 2, 2)
	g.Write(1, 2, 1)
	_, err := scatter(g, badAllocDist{dist.NewCyclicCols(2, 2, 2)}, 0)
	if err == nil || !strings.Contains(err.Error(), "local allocation") {
		t.Fatalf("err = %v, want local-allocation error", err)
	}
}

func TestScatterBadLocalIndexIsError(t *testing.T) {
	g, _ := istruct.NewMatrix("In", 2, 2)
	g.Write(1, 2, 1) // owned by process 0 under cyclic_cols(S=2)
	_, err := scatter(g, badLocalDist{dist.NewCyclicCols(2, 2, 2)}, 0)
	if err == nil || !strings.Contains(err.Error(), "at local [99,99]") {
		t.Fatalf("err = %v, want out-of-range local index error", err)
	}
}

// Both scatter failure paths must come back from RunSPMD as errors naming
// the parameter — the route `pdrun -check` reports — not as panics.
func TestRunSPMDScatterErrorsSurface(t *testing.T) {
	g, _ := istruct.NewMatrix("In", 2, 2)
	g.Write(1, 2, 1)
	for _, tc := range []struct {
		name string
		d    dist.Dist
		want string
	}{
		{"degenerate allocation", badAllocDist{dist.NewCyclicCols(4, 2, 2)}, "local allocation"},
		{"local index out of range", badLocalDist{dist.NewCyclicCols(4, 2, 2)}, "at local [99,99]"},
	} {
		_, err := RunSPMD([]*spmd.Program{scatterProg(tc.d)}, cfg4(), map[string]*istruct.Matrix{"In": g})
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want %q", tc.name, err, tc.want)
		}
		if err != nil && !strings.Contains(err.Error(), "parameter In") {
			t.Errorf("%s: err = %v, want parameter name in message", tc.name, err)
		}
	}
}
