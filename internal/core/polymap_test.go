package core

import (
	"testing"

	"procdecomp/internal/exec"
	"procdecomp/internal/istruct"
	"procdecomp/internal/spmd"
)

// Mapping polymorphism, Figs. 8 and 9 (§5.1). The monomorphic identity-like
// procedure pins its computation to one processor, forcing coercions at
// every call; abstracting the mapping lets each call site compile where its
// argument lives, eliminating the messages.

const monoSrc = `
proc scale(x: real on proc(0)): real on proc(0) {
  return 2.0 * x;
}
proc main(Out: matrix[2, 1] on proc(2)) {
  let b: real on proc(1) = 7.0;
  let cc: real on proc(2) = 9.0;
  Out[1, 1] = scale(b);
  Out[2, 1] = scale(cc);
}
`

const polySrc = `
proc scale[D: dist](x: real on D): real on D {
  return 2.0 * x;
}
proc main(Out: matrix[2, 1] on proc(2)) {
  let b: real on proc(1) = 7.0;
  let cc: real on proc(2) = 9.0;
  Out[1, 1] = scale[proc(1)](b);
  Out[2, 1] = scale[proc(2)](cc);
}
`

func runPolymap(t *testing.T, src string) (*exec.SPMDOutcome, []*spmd.Program) {
	t.Helper()
	info := checked(t, src, 3, nil)
	progs, err := New(info).CompileCTR("main", true)
	if err != nil {
		t.Fatal(err)
	}
	out, _ := istruct.NewMatrix("Out", 2, 1)
	res, err := exec.RunSPMD(progs, testMachine(3), map[string]*istruct.Matrix{"Out": out})
	if err != nil {
		t.Fatal(err)
	}
	return res, progs
}

func TestPolymapResultsAgree(t *testing.T) {
	for _, src := range []string{monoSrc, polySrc} {
		res, _ := runPolymap(t, src)
		v1, err1 := res.Arrays["Out"].Read(1, 1)
		v2, err2 := res.Arrays["Out"].Read(2, 1)
		if err1 != nil || err2 != nil || v1 != 14 || v2 != 18 {
			t.Fatalf("results = %v (%v), %v (%v); want 14, 18", v1, err1, v2, err2)
		}
	}
}

func TestPolymapEliminatesMessages(t *testing.T) {
	mono, _ := runPolymap(t, monoSrc)
	poly, _ := runPolymap(t, polySrc)
	// Fig. 8: the monomorphic calls coerce both arguments to the pinned
	// processor and the results back out where needed. Fig. 9: the
	// polymorphic instantiations compute in place, leaving only the one
	// genuinely necessary move (scale(b)'s result travels to Out's owner).
	if mono.Stats.Messages != 4 {
		t.Errorf("monomorphic messages = %d, want 4", mono.Stats.Messages)
	}
	if poly.Stats.Messages != 1 {
		t.Errorf("polymorphic messages = %d, want 1", poly.Stats.Messages)
	}
	if poly.Stats.Makespan >= mono.Stats.Makespan {
		t.Errorf("polymorphic makespan %d should beat monomorphic %d",
			poly.Stats.Makespan, mono.Stats.Makespan)
	}
}

func TestPolymapParallelCalls(t *testing.T) {
	// Fig. 9's other claim: "Not only can f(b) and f(c) be done in
	// parallel". With the mapping abstracted, the two instantiated bodies
	// run on different processors, so neither serializes behind the other:
	// processor 1's program must not mention processor 0's code at all.
	_, progs := runPolymap(t, polySrc)
	p0 := spmd.Format(progs[0])
	if len(progs[0].Body) != 0 && p0 != spmd.Format(&spmd.Program{Name: progs[0].Name, Proc: 0,
		Params: progs[0].Params, Arrays: progs[0].Arrays, Outputs: progs[0].Outputs}) {
		// Processor 0 owns nothing in the polymorphic version; its program
		// should be empty of statements.
		if len(progs[0].Body) > 0 {
			t.Errorf("processor 0 should have no work in the polymorphic version:\n%s", p0)
		}
	}
}
