package core

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"procdecomp/internal/exec"
	"procdecomp/internal/istruct"
	"procdecomp/internal/lang"
	"procdecomp/internal/machine"
	"procdecomp/internal/sem"
	"procdecomp/internal/spmd"
	"procdecomp/internal/xform"
)

// Conformance property: for randomly generated stencil programs under
// random decompositions and machine sizes, every code-generation strategy —
// run-time resolution, compile-time resolution with and without loop
// restriction, and the full optimization pipeline — computes exactly the
// sequential interpreter's result. This is the repository's strongest
// correctness statement: the process decomposition is semantics-preserving
// across the whole compilation space, not just on the paper's example.

// stencilTerm is one operand of a generated stencil expression.
type stencilTerm struct {
	array  string // "New" or "Old"
	di, dj int64
	coef   float64
}

// genProgram builds a random wavefront-style Idn program. Reads of New are
// constrained to lexicographically earlier iterations (j column-major order)
// so the sequential program is well-defined.
func genProgram(rng *rand.Rand) (src string, distName string) {
	dists := []string{"cyclic_cols", "cyclic_rows", "block_cols", "block_rows"}
	distName = dists[rng.Intn(len(dists))]

	terms := func(allowNew bool) []stencilTerm {
		var ts []stencilTerm
		n := 1 + rng.Intn(3)
		for k := 0; k < n; k++ {
			t := stencilTerm{coef: float64(rng.Intn(5)+1) / 8}
			if allowNew && rng.Intn(2) == 0 {
				t.array = "New"
				// Lexicographically earlier in (j, i) order.
				if rng.Intn(2) == 0 {
					t.dj = -1
					t.di = int64(rng.Intn(3) - 1)
				} else {
					t.dj = 0
					t.di = -1
				}
			} else {
				t.array = "Old"
				t.di = int64(rng.Intn(3) - 1)
				t.dj = int64(rng.Intn(3) - 1)
			}
			ts = append(ts, t)
		}
		return ts
	}

	expr := func(ts []stencilTerm) string {
		parts := make([]string, len(ts))
		for i, t := range ts {
			idx := func(v string, d int64) string {
				switch {
				case d > 0:
					return fmt.Sprintf("%s + %d", v, d)
				case d < 0:
					return fmt.Sprintf("%s - %d", v, -d)
				default:
					return v
				}
			}
			parts[i] = fmt.Sprintf("%g * %s[%s, %s]", t.coef, t.array, idx("i", t.di), idx("j", t.dj))
		}
		return strings.Join(parts, " + ")
	}

	var body string
	if rng.Intn(3) == 0 {
		// Data-dependent control flow between two stencils.
		body = fmt.Sprintf(`      if i mod 2 == 0 {
        New[i, j] = %s;
      } else {
        New[i, j] = %s + bias;
      }`, expr(terms(true)), expr(terms(true)))
	} else {
		body = fmt.Sprintf("      New[i, j] = %s + bias;", expr(terms(true)))
	}

	// The bias scalar lives on a random processor (or replicated),
	// exercising scalar coercion into the stencil.
	biasMap := "all"
	if rng.Intn(2) == 0 {
		biasMap = "proc(0)"
	}

	src = fmt.Sprintf(`
const N = %d;

dist D = %s(NPROCS);

proc boundary(New: matrix[N, N] on D) {
  for j = 1 to N {
    New[1, j] = 2.0;
    New[N, j] = 3.0;
  }
  for i = 2 to N - 1 {
    New[i, 1] = 4.0;
    New[i, N] = 5.0;
  }
}

proc step(Old: matrix[N, N] on D): matrix[N, N] on D {
  let New = matrix(N, N) on D;
  let bias: real on %s = 0.125;
  call boundary(New);
  for j = 2 to N - 1 {
    for i = 2 to N - 1 {
%s
    }
  }
  return New;
}
`, 8+rng.Intn(9), distName, biasMap, body)
	return src, distName
}

func confInput(n int64, rng *rand.Rand) *istruct.Matrix {
	m, err := istruct.NewMatrix("Old", n, n)
	if err != nil {
		panic(err)
	}
	for i := int64(1); i <= n; i++ {
		for j := int64(1); j <= n; j++ {
			m.Write(i, j, math.Floor(rng.Float64()*64)/4)
		}
	}
	return m
}

func TestConformanceRandomStencils(t *testing.T) {
	rng := rand.New(rand.NewSource(20260706))
	const trials = 40
	for trial := 0; trial < trials; trial++ {
		src, distName := genProgram(rng)
		procs := []int64{1, 2, 3, 4, 5}[rng.Intn(5)]
		blk := int64(1 + rng.Intn(6))

		prog, err := lang.Parse(src)
		if err != nil {
			t.Fatalf("trial %d: parse: %v\n%s", trial, err, src)
		}
		info, errs := sem.Check(prog, sem.Config{Procs: procs})
		if len(errs) > 0 {
			t.Fatalf("trial %d: check: %v\n%s", trial, errs, src)
		}
		n := int64(info.Consts["N"].Const)
		seed := rng.Int63()

		mkInput := func() *istruct.Matrix {
			return confInput(n, rand.New(rand.NewSource(seed)))
		}
		want, err := exec.RunSequential(info, "step", []exec.ArgVal{{Matrix: mkInput()}})
		if err != nil {
			t.Fatalf("trial %d: sequential: %v\n%s", trial, err, src)
		}

		comp := New(info)
		runAndCompare := func(label string, progs []*spmd.Program) {
			t.Helper()
			out, err := exec.RunSPMD(progs, machine.DefaultConfig(int(procs)),
				map[string]*istruct.Matrix{"Old": mkInput()})
			if err != nil {
				t.Fatalf("trial %d (%s, dist=%s, S=%d): %v\n%s", trial, label, distName, procs, err, src)
			}
			got := out.Arrays["New"]
			for i := int64(1); i <= n; i++ {
				for j := int64(1); j <= n; j++ {
					dw, dg := want.Ret.Matrix.Defined(i, j), got.Defined(i, j)
					if dw != dg {
						t.Fatalf("trial %d (%s, dist=%s, S=%d): definedness mismatch at (%d,%d)\n%s",
							trial, label, distName, procs, i, j, src)
					}
					if !dw {
						continue
					}
					vw, _ := want.Ret.Matrix.Read(i, j)
					vg, _ := got.Read(i, j)
					if math.Abs(vw-vg) > 1e-9 {
						t.Fatalf("trial %d (%s, dist=%s, S=%d): (%d,%d) = %g, want %g\n%s",
							trial, label, distName, procs, i, j, vg, vw, src)
					}
				}
			}
		}

		rtr, err := comp.CompileRTR("step")
		if err != nil {
			t.Fatalf("trial %d: RTR compile: %v\n%s", trial, err, src)
		}
		runAndCompare("RTR", []*spmd.Program{rtr})

		plain, err := comp.CompileCTR("step", false)
		if err != nil {
			t.Fatalf("trial %d: CTR compile: %v\n%s", trial, err, src)
		}
		runAndCompare("CTR/unrestricted", plain)

		restricted, err := comp.CompileCTR("step", true)
		if err != nil {
			t.Fatalf("trial %d: CTR compile: %v\n%s", trial, err, src)
		}
		runAndCompare("CTR/restricted", restricted)

		optimized, err := comp.CompileCTR("step", true)
		if err != nil {
			t.Fatal(err)
		}
		xform.Vectorize(optimized)
		xform.Jam(optimized)
		xform.StripMine(optimized, blk)
		runAndCompare(fmt.Sprintf("optimized/blk=%d", blk), optimized)
	}
}

// Conformance on the message-count invariant: whatever the optimizations do
// to packaging, the total number of VALUES moved must be identical to
// run-time resolution's (locality decides what moves; optimizations only
// re-batch it). Sends to nobody (the unconsumed last column) are the one
// allowed difference, so the optimized value count may be at most the RTR
// count.
func TestConformanceValuesInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		src, _ := genProgram(rng)
		procs := int64(2 + rng.Intn(3))
		prog, err := lang.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		info, errs := sem.Check(prog, sem.Config{Procs: procs})
		if len(errs) > 0 {
			t.Fatal(errs)
		}
		n := int64(info.Consts["N"].Const)
		seed := rng.Int63()
		mkInput := func() *istruct.Matrix {
			return confInput(n, rand.New(rand.NewSource(seed)))
		}
		comp := New(info)
		rtr, err := comp.CompileRTR("step")
		if err != nil {
			t.Fatal(err)
		}
		base, err := exec.RunSPMD([]*spmd.Program{rtr}, machine.DefaultConfig(int(procs)),
			map[string]*istruct.Matrix{"Old": mkInput()})
		if err != nil {
			t.Fatal(err)
		}
		opt, err := comp.CompileCTR("step", true)
		if err != nil {
			t.Fatal(err)
		}
		xform.Vectorize(opt)
		xform.Jam(opt)
		xform.StripMine(opt, 4)
		after, err := exec.RunSPMD(opt, machine.DefaultConfig(int(procs)),
			map[string]*istruct.Matrix{"Old": mkInput()})
		if err != nil {
			t.Fatal(err)
		}
		if after.Stats.Values > base.Stats.Values {
			t.Errorf("trial %d: optimization increased moved values: %d > %d\n%s",
				trial, after.Stats.Values, base.Stats.Values, src)
		}
		if after.Stats.Messages > base.Stats.Messages {
			t.Errorf("trial %d: optimization increased messages: %d > %d",
				trial, after.Stats.Messages, base.Stats.Messages)
		}
	}
}

// Conformance under multiplexing: the same random programs, with the
// specialized processes co-scheduled on fewer physical nodes, must still
// match the sequential semantics (the §5.4 machine mode changes timing, and
// must not change meaning).
func TestConformanceMultiplexed(t *testing.T) {
	rng := rand.New(rand.NewSource(31415))
	for trial := 0; trial < 8; trial++ {
		src, distName := genProgram(rng)
		const vprocs = 6
		const nodes = 2
		prog, err := lang.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		info, errs := sem.Check(prog, sem.Config{Procs: vprocs})
		if len(errs) > 0 {
			t.Fatal(errs)
		}
		n := int64(info.Consts["N"].Const)
		seed := rng.Int63()
		mkInput := func() *istruct.Matrix {
			return confInput(n, rand.New(rand.NewSource(seed)))
		}
		want, err := exec.RunSequential(info, "step", []exec.ArgVal{{Matrix: mkInput()}})
		if err != nil {
			t.Fatal(err)
		}
		progs, err := New(info).CompileCTR("step", true)
		if err != nil {
			t.Fatal(err)
		}
		xform.Vectorize(progs)
		xform.Jam(progs)
		cfg := machine.DefaultConfig(vprocs)
		cfg.Placement = make([]int, vprocs)
		for i := range cfg.Placement {
			cfg.Placement[i] = i % nodes
		}
		out, err := exec.RunSPMD(progs, cfg, map[string]*istruct.Matrix{"Old": mkInput()})
		if err != nil {
			t.Fatalf("trial %d (dist=%s): %v\n%s", trial, distName, err, src)
		}
		got := out.Arrays["New"]
		for i := int64(1); i <= n; i++ {
			for j := int64(1); j <= n; j++ {
				if want.Ret.Matrix.Defined(i, j) != got.Defined(i, j) {
					t.Fatalf("trial %d: definedness mismatch at (%d,%d)\n%s", trial, i, j, src)
				}
				if !want.Ret.Matrix.Defined(i, j) {
					continue
				}
				vw, _ := want.Ret.Matrix.Read(i, j)
				vg, _ := got.Read(i, j)
				if math.Abs(vw-vg) > 1e-9 {
					t.Fatalf("trial %d: (%d,%d) = %g, want %g\n%s", trial, i, j, vg, vw, src)
				}
			}
		}
	}
}
