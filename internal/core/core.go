// Package core implements the paper's primary contribution: process
// decomposition through locality of reference. Given a checked sequential
// Idn program and its domain decomposition, it performs:
//
//   - Run-time resolution (§3.1): one generic SPMD program for all
//     processes, built from three rules — the owner of a datum computes it,
//     the owner communicates it to whoever needs it (coerce), and every
//     process examines every statement to determine its role.
//
//   - Compile-time resolution (§3.2): the mapping information is propagated
//     through the program (the evaluators appear here as the symbolic owner
//     expressions attached to guards and coerces), and the generic program
//     is specialized for each process. Ownership tests decidable at compile
//     time (yes/no/inconclusive, via the expr package's three-valued
//     comparison) are eliminated; coerces whose roles are decided split into
//     bare sends, receives, or local reads; and loops whose residual guards
//     solve to congruence classes are restricted to the iterations the
//     process actually participates in. Inconclusive tests remain as
//     run-time checks, exactly as the paper prescribes.
//
// Procedure calls are integrated at compile time (the participants function
// is "symbolically applied to the actual parameters" — here, by compiling
// the callee's body at the call site with formals bound to actuals, scalars
// coerced to the formal's owner). Recursion is rejected by sem.
package core

import (
	"fmt"

	"procdecomp/internal/dist"
	"procdecomp/internal/expr"
	"procdecomp/internal/lang"
	"procdecomp/internal/sem"
	"procdecomp/internal/spmd"
)

// Compiler drives process decomposition for one checked program.
type Compiler struct {
	info *sem.Info
}

// New creates a compiler over a checked program.
func New(info *sem.Info) *Compiler { return &Compiler{info: info} }

// CompileRTR generates the run-time resolution program for the entry
// procedure: a single generic program executed by every process.
func (c *Compiler) CompileRTR(entry string) (prog *spmd.Program, err error) {
	p, ok := c.info.Procs[entry]
	if !ok {
		return nil, fmt.Errorf("core: no procedure %s", entry)
	}
	g := &gen{
		info:   c.info,
		used:   map[string]bool{spmd.Me: true},
		arrays: map[string]spmd.ArrayInfo{},
	}
	defer func() {
		if r := recover(); r != nil {
			if ce, ok := r.(*compileError); ok {
				prog, err = nil, fmt.Errorf("core: %s: %s", ce.pos, ce.msg)
				return
			}
			panic(r)
		}
	}()

	env := newScope(nil)
	var params []spmd.ArrayInfo
	for _, prm := range p.Params {
		if !prm.Type.IsArray() {
			return nil, fmt.Errorf("core: entry procedure %s has scalar parameter %s; use consts for scalar inputs", entry, prm.Name)
		}
		if prm.Type.Base != lang.TMatrix {
			return nil, fmt.Errorf("core: entry procedure parameters must be matrices")
		}
		name := g.fresh(prm.Name)
		info := spmd.ArrayInfo{Name: name, Dist: prm.Dist, GlobalShape: prm.Type.Dims}
		params = append(params, info)
		g.arrays[name] = info
		env.bind(prm, &irBinding{name: name, sym: prm})
	}

	var body block
	retVal := g.compileBody(&body, env, p)

	var outputs []spmd.OutVar
	for _, prm := range params {
		outputs = append(outputs, spmd.OutVar{Name: prm.Name, IsArray: true})
	}
	if retVal != nil {
		if retVal.isArray {
			if retVal.name != "" && g.arrays[retVal.name].Name != "" {
				already := false
				for _, o := range outputs {
					if o.Name == retVal.name {
						already = true
					}
				}
				if !already {
					outputs = append(outputs, spmd.OutVar{Name: retVal.name, IsArray: true})
				}
			}
		} else {
			outputs = append(outputs, spmd.OutVar{Name: retVal.name, ScalarDist: retVal.dist})
		}
	}

	return &spmd.Program{
		Name:    entry,
		Proc:    -1,
		Params:  params,
		Arrays:  g.arrays,
		Body:    body.stmts,
		Outputs: outputs,
	}, nil
}

// CompileCTR generates compile-time resolution programs: one specialized
// program per process. restrict controls whether loops are restricted to
// owned iterations (the full §3.2 treatment); without it, specialization
// only removes decidable guards and splits coerces.
func (c *Compiler) CompileCTR(entry string, restrict bool) ([]*spmd.Program, error) {
	generic, err := c.CompileRTR(entry)
	if err != nil {
		return nil, err
	}
	return SpecializeAll(generic, c.info.Cfg.Procs, restrict), nil
}

// compileError aborts compilation with a source position.
type compileError struct {
	pos lang.Pos
	msg string
}

// irBinding is the compile-time value of a source symbol: the IR name it was
// given in the current procedure instance.
type irBinding struct {
	name string
	sym  *sem.Symbol
}

// scope maps sem symbols to IR bindings for one procedure instance.
type scope struct {
	parent *scope
	byName map[*sem.Symbol]*irBinding
}

func newScope(parent *scope) *scope {
	return &scope{parent: parent, byName: map[*sem.Symbol]*irBinding{}}
}

func (s *scope) bind(sym *sem.Symbol, b *irBinding) { s.byName[sym] = b }

func (s *scope) lookup(sym *sem.Symbol) *irBinding {
	for sc := s; sc != nil; sc = sc.parent {
		if b, ok := sc.byName[sym]; ok {
			return b
		}
	}
	return nil
}

// block accumulates generated statements.
type block struct {
	stmts []spmd.Stmt
}

func (b *block) emit(s spmd.Stmt) { b.stmts = append(b.stmts, s) }

// target is where a computation happens: a single symbolic process, or all
// of them (replicated).
type target struct {
	all  bool
	proc expr.Expr
}

func allTarget() target             { return target{all: true} }
func procTarget(e expr.Expr) target { return target{proc: e} }

// gen is the run-time resolution code generator.
type gen struct {
	info    *sem.Info
	used    map[string]bool
	nextTmp int
	nextTag spmd.Tag
	arrays  map[string]spmd.ArrayInfo
}

func (g *gen) failf(pos lang.Pos, format string, args ...any) {
	panic(&compileError{pos: pos, msg: fmt.Sprintf(format, args...)})
}

// fresh returns base if unused, else base#k.
func (g *gen) fresh(base string) string {
	if !g.used[base] {
		g.used[base] = true
		return base
	}
	for k := 2; ; k++ {
		name := fmt.Sprintf("%s#%d", base, k)
		if !g.used[name] {
			g.used[name] = true
			return name
		}
	}
}

func (g *gen) tmp() string {
	g.nextTmp++
	return fmt.Sprintf("t%d", g.nextTmp)
}

func (g *gen) tag() spmd.Tag {
	g.nextTag++
	return g.nextTag
}

// ownerOfScalar returns the target owning a scalar symbol.
func ownerOfScalar(sym *sem.Symbol) target {
	if p, ok := dist.ProcOf(sym.Dist); ok {
		return procTarget(expr.C(p))
	}
	return allTarget() // replicated (constants, loop variables, ALL scalars)
}

// ownerOfElem returns the target owning an array element at the given
// symbolic global index.
func ownerOfElem(d dist.Dist, idx []expr.Expr) target {
	if d.Kind() == dist.KindReplicated {
		return allTarget()
	}
	return procTarget(d.SymbolicOwner(idx))
}

// guard wraps stmts in "if proc = mynode()" unless the target is all.
func (g *gen) guarded(b *block, to target, stmts []spmd.Stmt) {
	if to.all {
		for _, s := range stmts {
			b.emit(s)
		}
		return
	}
	b.emit(&spmd.Guard{Proc: to.proc, Body: stmts})
}

// coerceScalar emits a coerce of a scalar I-variable to the target and
// returns the temporary holding it there.
func (g *gen) coerceScalar(b *block, bnd *irBinding, to target) string {
	dst := g.tmp()
	co := &spmd.Coerce{Dst: dst, Var: bnd.name, Tag: g.tag()}
	from := ownerOfScalar(bnd.sym)
	if from.all {
		co.OwnerAll = true
	} else {
		co.Owner = from.proc
	}
	if to.all {
		co.NeederAll = true
	} else {
		co.Needer = to.proc
	}
	b.emit(co)
	return dst
}

// coerceElem emits a coerce of an array element to the target.
func (g *gen) coerceElem(b *block, arrName string, d dist.Dist, idx []expr.Expr, to target) string {
	dst := g.tmp()
	co := &spmd.Coerce{Dst: dst, Array: arrName, Idx: d.SymbolicLocal(idx), Tag: g.tag()}
	from := ownerOfElem(d, idx)
	if from.all {
		co.OwnerAll = true
	} else {
		co.Owner = from.proc
	}
	if to.all {
		co.NeederAll = true
	} else {
		co.Needer = to.proc
	}
	b.emit(co)
	return dst
}

// compileBody compiles a procedure instance and returns its result (nil for
// void procedures).
type result struct {
	isArray bool
	name    string    // IR array name or scalar temp name
	dist    dist.Dist // scalar result owner
}

func (g *gen) compileBody(b *block, env *scope, p *sem.Proc) *result {
	n := len(p.Decl.Body.Stmts)
	for i, st := range p.Decl.Body.Stmts {
		if ret, isRet := st.(*lang.ReturnStmt); isRet {
			if i != n-1 {
				g.failf(ret.Pos, "return must be the final statement of %s for compile-time integration", p.Name)
			}
			if ret.Value == nil {
				return nil
			}
			if vr, ok := ret.Value.(*lang.VarRef); ok {
				sym := g.info.SymbolOf(vr)
				if sym.Kind == sem.SymArray {
					return &result{isArray: true, name: env.lookup(sym).name}
				}
			}
			// Scalar return: compute at the declared return mapping.
			to := target{all: true}
			if pp, ok := dist.ProcOf(p.RetDist); ok {
				to = procTarget(expr.C(pp))
			}
			name := g.fresh(p.Name + ".ret")
			v := g.compileValue(b, env, ret.Value, to)
			g.guarded(b, to, []spmd.Stmt{&spmd.AssignIVar{Name: name, Val: v}})
			return &result{name: name, dist: p.RetDist}
		}
		g.compileStmt(b, env, st)
	}
	return nil
}

func (g *gen) compileStmt(b *block, env *scope, st lang.Stmt) {
	switch st := st.(type) {
	case *lang.LetStmt:
		sym := g.info.SymbolOf(st)
		if sym.Kind == sem.SymArray {
			if _, isAlloc := st.Init.(*lang.AllocExpr); isAlloc {
				name := g.fresh(st.Name)
				g.arrays[name] = spmd.ArrayInfo{Name: name, Dist: sym.Dist, GlobalShape: sym.Type.Dims}
				shape := sym.Dist.LocalShape()
				se := make([]expr.Expr, len(shape))
				for i, v := range shape {
					se[i] = expr.C(v)
				}
				if len(se) == 1 {
					se = append(se, expr.C(1)) // vectors are 1-column matrices locally
				}
				b.emit(&spmd.Alloc{Array: name, Shape: se})
				env.bind(sym, &irBinding{name: name, sym: sym})
				return
			}
			// Array-valued call: bind the let name to the returned array.
			call := st.Init.(*lang.CallExpr)
			res := g.integrateCall(b, env, call.Pos, call.Name, call.Args)
			if res == nil || !res.isArray {
				g.failf(st.Pos, "call %s did not produce an array", call.Name)
			}
			env.bind(sym, &irBinding{name: res.name, sym: sym})
			return
		}
		to := ownerOfScalar(sym)
		name := g.fresh(st.Name)
		v := g.compileValue(b, env, st.Init, to)
		g.guarded(b, to, []spmd.Stmt{&spmd.AssignIVar{Name: name, Val: v}})
		env.bind(sym, &irBinding{name: name, sym: sym})

	case *lang.AssignStmt:
		sym := g.info.SymbolOf(st)
		bnd := env.lookup(sym)
		to := ownerOfScalar(sym)
		v := g.compileValue(b, env, st.Value, to)
		g.guarded(b, to, []spmd.Stmt{&spmd.AssignIVar{Name: bnd.name, Val: v}})

	case *lang.StoreStmt:
		sym := g.info.SymbolOf(st)
		bnd := env.lookup(sym)
		idx := make([]expr.Expr, len(st.Indices))
		for i, ix := range st.Indices {
			idx[i] = g.compileIndex(b, env, ix)
		}
		to := ownerOfElem(sym.Dist, idx)
		v := g.compileValue(b, env, st.Value, to)
		g.guarded(b, to, []spmd.Stmt{
			&spmd.AWrite{Array: bnd.name, Idx: sym.Dist.SymbolicLocal(idx), Val: v},
		})

	case *lang.ForStmt:
		lo := g.compileIndex(b, env, st.Lo)
		hi := g.compileIndex(b, env, st.Hi)
		step := expr.C(1)
		if st.Step != nil {
			step = g.compileIndex(b, env, st.Step)
		}
		sym := g.info.SymbolOf(st)
		name := g.fresh(st.Var)
		inner := newScope(env)
		inner.bind(sym, &irBinding{name: name, sym: sym})
		var body block
		for _, s := range st.Body.Stmts {
			g.compileStmt(&body, inner, s)
		}
		b.emit(&spmd.For{Var: name, Lo: lo, Hi: hi, Step: step, Body: body.stmts})

	case *lang.IfStmt:
		// §3.2: the participants of both branches evaluate the condition;
		// run-time resolution evaluates it everywhere.
		cond := g.compileValue(b, env, st.Cond, allTarget())
		var thenB, elseB block
		inner := newScope(env)
		for _, s := range st.Then.Stmts {
			g.compileStmt(&thenB, inner, s)
		}
		if st.Else != nil {
			inner2 := newScope(env)
			for _, s := range st.Else.Stmts {
				g.compileStmt(&elseB, inner2, s)
			}
		}
		b.emit(&spmd.IfValue{Cond: cond, Then: thenB.stmts, Else: elseB.stmts})

	case *lang.CallStmt:
		g.integrateCall(b, env, st.Pos, st.Name, st.Args)

	case *lang.ReturnStmt:
		g.failf(st.Pos, "return must be the final statement of its procedure for compile-time integration")

	default:
		g.failf(st.Position(), "unsupported statement")
	}
}

// integrateCall compiles a call by integrating the callee's body at the call
// site: array actuals alias, scalar actuals are computed and coerced to the
// formal's owner (the Fig. 8 behaviour), and the body is compiled in a fresh
// scope with fresh names.
func (g *gen) integrateCall(b *block, env *scope, pos lang.Pos, name string, args []lang.Expr) *result {
	callee, ok := g.info.Procs[name]
	if !ok {
		g.failf(pos, "undefined procedure %s", name)
	}
	inner := newScope(nil) // callee sees only its own bindings
	for i, prm := range callee.Params {
		a := args[i]
		if prm.Type.IsArray() {
			vr := a.(*lang.VarRef)
			actual := env.lookup(g.info.SymbolOf(vr))
			inner.bind(prm, &irBinding{name: actual.name, sym: prm})
			continue
		}
		// Scalar: compute the actual at the formal's owner and bind.
		to := ownerOfScalar(prm)
		v := g.compileValue(b, env, a, to)
		fname := g.fresh(name + "." + prm.Name)
		g.guarded(b, to, []spmd.Stmt{&spmd.AssignIVar{Name: fname, Val: v}})
		inner.bind(prm, &irBinding{name: fname, sym: prm})
	}
	return g.compileBody(b, inner, callee)
}

// compileIndex compiles an integer (index/bound) expression into a symbolic
// expr usable by every process: constants and loop variables are replicated;
// owned scalars are broadcast once into a temporary.
func (g *gen) compileIndex(b *block, env *scope, e lang.Expr) expr.Expr {
	switch e := e.(type) {
	case *lang.NumLit:
		return expr.C(int64(e.Val))
	case *lang.VarRef:
		sym := g.info.SymbolOf(e)
		switch sym.Kind {
		case sem.SymConst:
			return expr.C(int64(sym.Const))
		case sem.SymLoopVar:
			return expr.V(env.lookup(sym).name)
		default:
			// An owned scalar used in an index: broadcast its value so every
			// process can evaluate the subscript and the ownership test.
			bnd := env.lookup(sym)
			tmp := g.coerceScalar(b, bnd, allTarget())
			return expr.V(tmp)
		}
	case *lang.UnExpr:
		if e.Op == lang.OpNeg {
			return expr.Neg(g.compileIndex(b, env, e.X))
		}
		g.failf(e.Pos, "operator not allowed in an index expression")
	case *lang.BinExpr:
		l := g.compileIndex(b, env, e.L)
		r := g.compileIndex(b, env, e.R)
		switch e.Op {
		case lang.OpAdd:
			return expr.Add(l, r)
		case lang.OpSub:
			return expr.Sub(l, r)
		case lang.OpMul:
			return expr.Mul(l, r)
		case lang.OpDivInt:
			return expr.Div(l, r)
		case lang.OpMod:
			return expr.Mod(l, r)
		case lang.OpMin:
			return expr.Min(l, r)
		case lang.OpMax:
			return expr.Max(l, r)
		default:
			g.failf(e.Pos, "operator %s not allowed in an index expression", e.Op)
		}
	case *lang.CallExpr:
		res := g.integrateCall(b, env, e.Pos, e.Name, e.Args)
		if res == nil || res.isArray {
			g.failf(e.Pos, "call %s cannot be used in an index expression", e.Name)
		}
		tmp := g.tmp()
		co := &spmd.Coerce{Dst: tmp, Var: res.name, Tag: g.tag(), NeederAll: true}
		if pp, ok := dist.ProcOf(res.dist); ok {
			co.Owner = expr.C(pp)
		} else {
			co.OwnerAll = true
		}
		b.emit(co)
		return expr.V(tmp)
	}
	g.failf(e.Position(), "unsupported index expression")
	return expr.Expr{}
}

// compileValue compiles a data expression evaluated at the given target;
// remote operands are coerced there first (Fig. 4b).
func (g *gen) compileValue(b *block, env *scope, e lang.Expr, to target) spmd.VExpr {
	switch e := e.(type) {
	case *lang.NumLit:
		return spmd.VConst{F: e.Val}
	case *lang.BoolLit:
		if e.Val {
			return spmd.VConst{F: 1}
		}
		return spmd.VConst{F: 0}
	case *lang.VarRef:
		sym := g.info.SymbolOf(e)
		switch sym.Kind {
		case sem.SymConst:
			return spmd.VConst{F: sym.Const}
		case sem.SymLoopVar:
			return spmd.VInt{X: expr.V(env.lookup(sym).name)}
		default:
			bnd := env.lookup(sym)
			from := ownerOfScalar(sym)
			if from.all {
				return spmd.VVar{Name: bnd.name} // replicated: read own copy
			}
			tmp := g.coerceScalar(b, bnd, to)
			return spmd.VVar{Name: tmp}
		}
	case *lang.IndexExpr:
		sym := g.info.SymbolOf(e)
		bnd := env.lookup(sym)
		idx := make([]expr.Expr, len(e.Indices))
		for i, ix := range e.Indices {
			idx[i] = g.compileIndex(b, env, ix)
		}
		d := sym.Dist
		if d.Kind() == dist.KindReplicated {
			// Everyone has a copy: plain local read at the use site.
			tmp := g.tmp()
			localIdx := d.SymbolicLocal(idx)
			if len(localIdx) == 1 {
				localIdx = append(localIdx, expr.C(1))
			}
			g.guarded(b, to, []spmd.Stmt{&spmd.ARead{Dst: tmp, Array: bnd.name, Idx: localIdx}})
			return spmd.VVar{Name: tmp}
		}
		tmp := g.coerceElem(b, bnd.name, d, idx, to)
		return spmd.VVar{Name: tmp}
	case *lang.UnExpr:
		return spmd.VUn{Op: e.Op, X: g.compileValue(b, env, e.X, to)}
	case *lang.BinExpr:
		l := g.compileValue(b, env, e.L, to)
		r := g.compileValue(b, env, e.R, to)
		return spmd.VBin{Op: e.Op, L: l, R: r}
	case *lang.CallExpr:
		res := g.integrateCall(b, env, e.Pos, e.Name, e.Args)
		if res == nil {
			g.failf(e.Pos, "procedure %s returns no value", e.Name)
		}
		if res.isArray {
			g.failf(e.Pos, "array-valued call used as a scalar")
		}
		from := target{all: true}
		if pp, ok := dist.ProcOf(res.dist); ok {
			from = procTarget(expr.C(pp))
		}
		if from.all {
			return spmd.VVar{Name: res.name}
		}
		tmp := g.tmp()
		co := &spmd.Coerce{Dst: tmp, Var: res.name, Owner: from.proc, Tag: g.tag()}
		if to.all {
			co.NeederAll = true
		} else {
			co.Needer = to.proc
		}
		b.emit(co)
		return spmd.VVar{Name: tmp}
	default:
		g.failf(e.Position(), "unsupported expression")
		return nil
	}
}
