package core

import (
	"math"
	"strings"
	"testing"

	"procdecomp/internal/exec"
	"procdecomp/internal/istruct"
	"procdecomp/internal/lang"
	"procdecomp/internal/machine"
	"procdecomp/internal/sem"
	"procdecomp/internal/spmd"
)

func checked(t *testing.T, src string, procs int64, defines map[string]int64) *sem.Info {
	t.Helper()
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, errs := sem.Check(prog, sem.Config{Procs: procs, Defines: defines})
	if len(errs) > 0 {
		t.Fatalf("check: %v", errs)
	}
	return info
}

func testMachine(procs int) machine.Config {
	cfg := machine.DefaultConfig(procs)
	return cfg
}

// fig4Source is the paper's Fig. 4a: a:P1, b:P2, c:P3 (0-indexed here).
const fig4Source = `
proc main(Out: matrix[1, 1] on proc(2)) {
  let a: int on proc(0) = 5;
  let b: int on proc(1) = 7;
  let cc: int on proc(2) = a + b;
  Out[1, 1] = cc + 0.0;
}
`

func TestFig4RunTimeResolution(t *testing.T) {
	info := checked(t, fig4Source, 3, nil)
	rtr, err := New(info).CompileRTR("main")
	if err != nil {
		t.Fatal(err)
	}
	got := spmd.Format(rtr)
	// The generic program must contain the paper's shape: guarded
	// assignments for a and b, coerces of both to processor 2, and a guarded
	// sum there.
	for _, want := range []string{
		"if 0 = mynode()",
		"a = 5",
		"if 1 = mynode()",
		"b = 7",
		"coerce(a, 0, 2)",
		"coerce(b, 1, 2)",
		"if 2 = mynode()",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("run-time resolution output missing %q:\n%s", want, got)
		}
	}
}

func TestFig4CompileTimeResolution(t *testing.T) {
	info := checked(t, fig4Source, 3, nil)
	progs, err := New(info).CompileCTR("main", true)
	if err != nil {
		t.Fatal(err)
	}
	p0, p1, p2 := spmd.Format(progs[0]), spmd.Format(progs[1]), spmd.Format(progs[2])
	// Fig. 4d: P1 assigns a and sends it; P2 assigns b and sends it; P3
	// receives both and adds.
	if !strings.Contains(p0, "a = 5") || !strings.Contains(p0, "send(") {
		t.Errorf("process 0 should assign a and send it:\n%s", p0)
	}
	if strings.Contains(p0, "receive") || strings.Contains(p0, "coerce") {
		t.Errorf("process 0 should not receive or coerce:\n%s", p0)
	}
	if !strings.Contains(p1, "b = 7") || !strings.Contains(p1, "send(") {
		t.Errorf("process 1 should assign b and send it:\n%s", p1)
	}
	if !strings.Contains(p2, "receive(from 0)") || !strings.Contains(p2, "receive(from 1)") {
		t.Errorf("process 2 should receive from 0 and 1:\n%s", p2)
	}
	if strings.Contains(p2, "mynode") {
		t.Errorf("process 2 should have no residual guards:\n%s", p2)
	}
	// No process retains the other's assignment.
	if strings.Contains(p0, "b = 7") || strings.Contains(p1, "a = 5") {
		t.Error("specialization leaked other processes' statements")
	}
}

func TestFig4Executes(t *testing.T) {
	info := checked(t, fig4Source, 3, nil)
	out, err := istruct.NewMatrix("Out", 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	inputs := map[string]*istruct.Matrix{"Out": out}

	rtr, err := New(info).CompileRTR("main")
	if err != nil {
		t.Fatal(err)
	}
	res, err := exec.RunSPMD([]*spmd.Program{rtr}, testMachine(3), inputs)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := res.Arrays["Out"].Read(1, 1); v != 12 {
		t.Errorf("RTR result = %v, want 12", v)
	}

	ctr, err := New(info).CompileCTR("main", true)
	if err != nil {
		t.Fatal(err)
	}
	out2, _ := istruct.NewMatrix("Out", 1, 1)
	res2, err := exec.RunSPMD(ctr, testMachine(3), map[string]*istruct.Matrix{"Out": out2})
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := res2.Arrays["Out"].Read(1, 1); v != 12 {
		t.Errorf("CTR result = %v, want 12", v)
	}
	// CTR must exchange exactly the two messages of Fig. 4d.
	if res2.Stats.Messages != 2 {
		t.Errorf("CTR messages = %d, want 2", res2.Stats.Messages)
	}
}

// gsSource is the Gauss-Seidel program of Fig. 1.
const gsSource = `
const N = 16;
const c = 0.25;

dist Column = cyclic_cols(NPROCS);

proc init_boundary(New: matrix[N, N] on Column) {
  for j = 1 to N {
    New[1, j] = 1.0;
    New[N, j] = 1.0;
  }
  for i = 2 to N - 1 {
    New[i, 1] = 1.0;
    New[i, N] = 1.0;
  }
}

proc gs_iteration(Old: matrix[N, N] on Column): matrix[N, N] on Column {
  let New = matrix(N, N) on Column;
  call init_boundary(New);
  for j = 2 to N - 1 {
    for i = 2 to N - 1 {
      New[i, j] = c * (New[i - 1, j] + New[i, j - 1] + Old[i + 1, j] + Old[i, j + 1]);
    }
  }
  return New;
}
`

func gsInput(t *testing.T, n int64) *istruct.Matrix {
	t.Helper()
	m, err := istruct.NewMatrix("Old", n, n)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= n; i++ {
		for j := int64(1); j <= n; j++ {
			if err := m.Write(i, j, float64((i*37+j*11)%23)+0.5); err != nil {
				t.Fatal(err)
			}
		}
	}
	return m
}

// matricesEqual compares two matrices element-wise including definedness.
func matricesEqual(t *testing.T, a, b *istruct.Matrix, label string) {
	t.Helper()
	if a.Rows() != b.Rows() || a.Cols() != b.Cols() {
		t.Fatalf("%s: shape mismatch", label)
	}
	for i := int64(1); i <= a.Rows(); i++ {
		for j := int64(1); j <= a.Cols(); j++ {
			da, db := a.Defined(i, j), b.Defined(i, j)
			if da != db {
				t.Fatalf("%s: definedness mismatch at (%d,%d): %v vs %v", label, i, j, da, db)
			}
			if !da {
				continue
			}
			va, _ := a.Read(i, j)
			vb, _ := b.Read(i, j)
			if math.Abs(va-vb) > 1e-9 {
				t.Fatalf("%s: value mismatch at (%d,%d): %g vs %g", label, i, j, va, vb)
			}
		}
	}
}

// runSeqGS runs the reference interpreter.
func runSeqGS(t *testing.T, info *sem.Info, old *istruct.Matrix) *istruct.Matrix {
	t.Helper()
	out, err := exec.RunSequential(info, "gs_iteration", []exec.ArgVal{{Matrix: old}})
	if err != nil {
		t.Fatal(err)
	}
	return out.Ret.Matrix
}

func TestGaussSeidelRTRMatchesSequential(t *testing.T) {
	for _, procs := range []int64{1, 2, 3, 4, 8} {
		info := checked(t, gsSource, procs, nil)
		old := gsInput(t, 16)
		want := runSeqGS(t, info, old)

		rtr, err := New(info).CompileRTR("gs_iteration")
		if err != nil {
			t.Fatalf("S=%d: %v", procs, err)
		}
		res, err := exec.RunSPMD([]*spmd.Program{rtr}, testMachine(int(procs)),
			map[string]*istruct.Matrix{"Old": gsInput(t, 16)})
		if err != nil {
			t.Fatalf("S=%d: %v", procs, err)
		}
		matricesEqual(t, want, res.Arrays["New"], "RTR S="+string(rune('0'+procs)))
	}
}

func TestGaussSeidelCTRMatchesSequential(t *testing.T) {
	for _, procs := range []int64{1, 2, 3, 4, 8} {
		for _, restrict := range []bool{false, true} {
			info := checked(t, gsSource, procs, nil)
			old := gsInput(t, 16)
			want := runSeqGS(t, info, old)

			ctr, err := New(info).CompileCTR("gs_iteration", restrict)
			if err != nil {
				t.Fatalf("S=%d restrict=%v: %v", procs, restrict, err)
			}
			res, err := exec.RunSPMD(ctr, testMachine(int(procs)),
				map[string]*istruct.Matrix{"Old": gsInput(t, 16)})
			if err != nil {
				t.Fatalf("S=%d restrict=%v: %v", procs, restrict, err)
			}
			matricesEqual(t, want, res.Arrays["New"], "CTR")
		}
	}
}

func TestGaussSeidelMessageCounts(t *testing.T) {
	// Footnote 3 scaled down: for an N×N grid the run-time resolution code
	// exchanges 2·(N-2)² element messages when every interior neighbour pair
	// crosses processes. With cyclic columns and S>=2, New[i,j-1] and
	// Old[i,j+1] are always remote; the paper's 31,752 = 2·126² at N=128.
	const n = 16
	for _, procs := range []int64{2, 4, 8} {
		info := checked(t, gsSource, procs, nil)
		rtr, err := New(info).CompileRTR("gs_iteration")
		if err != nil {
			t.Fatal(err)
		}
		res, err := exec.RunSPMD([]*spmd.Program{rtr}, testMachine(int(procs)),
			map[string]*istruct.Matrix{"Old": gsInput(t, n)})
		if err != nil {
			t.Fatal(err)
		}
		want := int64(2 * (n - 2) * (n - 2))
		if res.Stats.Messages != want {
			t.Errorf("S=%d: RTR messages = %d, want %d", procs, res.Stats.Messages, want)
		}

		// Compile-time resolution "exchanges as many messages as the
		// run-time version" (§4).
		ctr, err := New(info).CompileCTR("gs_iteration", true)
		if err != nil {
			t.Fatal(err)
		}
		res2, err := exec.RunSPMD(ctr, testMachine(int(procs)),
			map[string]*istruct.Matrix{"Old": gsInput(t, n)})
		if err != nil {
			t.Fatal(err)
		}
		if res2.Stats.Messages != want {
			t.Errorf("S=%d: CTR messages = %d, want %d", procs, res2.Stats.Messages, want)
		}
	}
}

func TestCTRFasterThanRTR(t *testing.T) {
	// Fig. 6: compile-time resolution beats run-time resolution.
	const procs = 4
	info := checked(t, gsSource, procs, nil)
	c := New(info)
	rtr, err := c.CompileRTR("gs_iteration")
	if err != nil {
		t.Fatal(err)
	}
	ctr, err := c.CompileCTR("gs_iteration", true)
	if err != nil {
		t.Fatal(err)
	}
	resR, err := exec.RunSPMD([]*spmd.Program{rtr}, testMachine(procs),
		map[string]*istruct.Matrix{"Old": gsInput(t, 16)})
	if err != nil {
		t.Fatal(err)
	}
	resC, err := exec.RunSPMD(ctr, testMachine(procs),
		map[string]*istruct.Matrix{"Old": gsInput(t, 16)})
	if err != nil {
		t.Fatal(err)
	}
	if resC.Stats.Makespan >= resR.Stats.Makespan {
		t.Errorf("CTR makespan %d should beat RTR %d", resC.Stats.Makespan, resR.Stats.Makespan)
	}
}

func TestFig5Shape(t *testing.T) {
	// The specialized program for a non-boundary processor must use strided
	// or round-based loops over owned columns, not a full scan with guards.
	info := checked(t, gsSource, 4, nil)
	ctr, err := New(info).CompileCTR("gs_iteration", true)
	if err != nil {
		t.Fatal(err)
	}
	p1 := spmd.Format(ctr[1])
	if strings.Contains(p1, "mynode") {
		t.Errorf("specialized program retains ownership guards:\n%s", p1)
	}
	if strings.Contains(p1, "coerce") {
		t.Errorf("specialized program retains coerces:\n%s", p1)
	}
	if !strings.Contains(p1, "send(") || !strings.Contains(p1, "receive(") {
		t.Errorf("specialized program should have bare sends/receives:\n%s", p1)
	}
}

// Vectors (rank-1 I-structures) flow through the whole pipeline: replicated
// and single-processor placements, remote element reads via coerce.
func TestVectorsEndToEnd(t *testing.T) {
	src := `
proc main(Out: matrix[2, 1] on proc(0)) {
  let v = vector(8) on all;
  let w = vector(8) on proc(NPROCS - 1);
  for i = 1 to 8 {
    v[i] = i * 2.0;
    w[i] = i + 0.5;
  }
  Out[1, 1] = v[3] + v[5];
  Out[2, 1] = w[2] + w[7];
}
`
	for _, procs := range []int64{1, 2, 3} {
		info := checked(t, src, procs, nil)
		want, err := exec.RunSequential(info, "main", []exec.ArgVal{{Matrix: mustMatrix(t, 2, 1)}})
		if err != nil {
			t.Fatal(err)
		}
		_ = want // main returns nothing; compare the Out parameter instead

		seqOut := mustMatrix(t, 2, 1)
		if _, err := exec.RunSequential(info, "main", []exec.ArgVal{{Matrix: seqOut}}); err != nil {
			t.Fatal(err)
		}

		for _, restrict := range []bool{false, true} {
			progs, err := New(info).CompileCTR("main", restrict)
			if err != nil {
				t.Fatalf("S=%d: %v", procs, err)
			}
			out := mustMatrix(t, 2, 1)
			res, err := exec.RunSPMD(progs, testMachine(int(procs)), map[string]*istruct.Matrix{"Out": out})
			if err != nil {
				t.Fatalf("S=%d restrict=%v: %v", procs, restrict, err)
			}
			for i := int64(1); i <= 2; i++ {
				wv, _ := seqOut.Read(i, 1)
				gv, err := res.Arrays["Out"].Read(i, 1)
				if err != nil || wv != gv {
					t.Fatalf("S=%d restrict=%v: Out[%d,1] = %v (%v), want %v", procs, restrict, i, gv, err, wv)
				}
			}
		}

		rtr, err := New(info).CompileRTR("main")
		if err != nil {
			t.Fatal(err)
		}
		out := mustMatrix(t, 2, 1)
		res, err := exec.RunSPMD([]*spmd.Program{rtr}, testMachine(int(procs)), map[string]*istruct.Matrix{"Out": out})
		if err != nil {
			t.Fatalf("S=%d RTR: %v", procs, err)
		}
		for i := int64(1); i <= 2; i++ {
			wv, _ := seqOut.Read(i, 1)
			gv, _ := res.Arrays["Out"].Read(i, 1)
			if wv != gv {
				t.Fatalf("S=%d RTR: Out[%d,1] = %v, want %v", procs, i, gv, wv)
			}
		}
	}
}

func mustMatrix(t *testing.T, r, c int64) *istruct.Matrix {
	t.Helper()
	m, err := istruct.NewMatrix("Out", r, c)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// Entry procedures with scalar parameters are rejected with a helpful
// message (scalar inputs come in as consts).
func TestEntryScalarParamRejected(t *testing.T) {
	info := checked(t, `proc main(x: int) { let y = x; }`, 2, nil)
	if _, err := New(info).CompileRTR("main"); err == nil ||
		!strings.Contains(err.Error(), "use consts") {
		t.Errorf("err = %v", err)
	}
}

// Mid-procedure returns are rejected by the call integrator.
func TestMidReturnRejected(t *testing.T) {
	src := `
proc f(): int {
  return 1;
  -- unreachable second statement
}
proc g(): int {
  let x = 1;
  if x < 2 {
    return 5;
  }
  return 6;
}
proc main(Out: matrix[1, 1] on proc(0)) {
  Out[1, 1] = g() + 0.0;
}
`
	info := checked(t, src, 2, nil)
	_, err := New(info).CompileRTR("main")
	if err == nil || !strings.Contains(err.Error(), "final statement") {
		t.Errorf("err = %v", err)
	}
}

// Unknown entry procedure.
func TestUnknownEntry(t *testing.T) {
	info := checked(t, `proc main() {}`, 2, nil)
	if _, err := New(info).CompileRTR("nosuch"); err == nil {
		t.Error("expected error for unknown entry")
	}
}

// Distributed vectors (§2.3's machinery in one dimension): a linear
// recurrence over a cyclic vector is a 1-D wavefront; block vectors fall to
// run-time ownership tests. Both must match the sequential semantics.
func TestDistributedVectorRecurrence(t *testing.T) {
	for _, distName := range []string{"cyclic", "block"} {
		src := `
const N = 24;
dist D = ` + distName + `(NPROCS);

proc recur(B: matrix[N, 1] on all): vector[N] on D {
  let v = vector(N) on D;
  v[1] = B[1, 1];
  for i = 2 to N {
    v[i] = 0.5 * v[i - 1] + B[i, 1];
  }
  return v;
}
`
		for _, procs := range []int64{1, 2, 3, 4} {
			info := checked(t, src, procs, nil)
			input := func() *istruct.Matrix {
				b, _ := istruct.NewMatrix("B", 24, 1)
				for i := int64(1); i <= 24; i++ {
					b.Write(i, 1, float64((i*7)%11)+0.5)
				}
				return b
			}
			seq, err := exec.RunSequential(info, "recur", []exec.ArgVal{{Matrix: input()}})
			if err != nil {
				t.Fatal(err)
			}
			for _, restrict := range []bool{false, true} {
				progs, err := New(info).CompileCTR("recur", restrict)
				if err != nil {
					t.Fatalf("%s S=%d: %v", distName, procs, err)
				}
				res, err := exec.RunSPMD(progs, testMachine(int(procs)),
					map[string]*istruct.Matrix{"B": input()})
				if err != nil {
					t.Fatalf("%s S=%d restrict=%v: %v", distName, procs, restrict, err)
				}
				got := res.Arrays["v"]
				for i := int64(1); i <= 24; i++ {
					wv, err1 := seq.Ret.Vector.Read(i)
					gv, err2 := got.Read(i, 1)
					if err1 != nil || err2 != nil || math.Abs(wv-gv) > 1e-9 {
						t.Fatalf("%s S=%d restrict=%v: v[%d] = %v (%v), want %v (%v)",
							distName, procs, restrict, i, gv, err2, wv, err1)
					}
				}
				// The cyclic ring must actually communicate when S > 1.
				if distName == "cyclic" && procs > 1 && res.Stats.Messages == 0 {
					t.Errorf("%s S=%d: expected ring messages", distName, procs)
				}
			}
		}
	}
}
