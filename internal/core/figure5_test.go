package core

import (
	"testing"

	"procdecomp/internal/spmd"
)

// TestFigure5Golden pins the exact compile-time resolution output for a
// non-boundary processor of a small wavefront (the shape of the paper's
// Fig. 5): the three per-column roles — send the old column left, compute
// the column receiving from both neighbours, send the new column right —
// restricted to the processor's congruence classes, with no residual
// ownership tests. A change to this text means the code generator changed;
// update deliberately.
func TestFigure5Golden(t *testing.T) {
	info := checked(t, gsSource, 4, map[string]int64{"N": 8})
	progs, err := New(info).CompileCTR("gs_iteration", true)
	if err != nil {
		t.Fatal(err)
	}
	got := spmd.Format(progs[1])
	const want = `program gs_iteration  -- specialized for process 1
param Old: cyclic_cols(S=4, 8x8)
New := local_alloc(8, 2)
for j = 1 to 8 by 4 {
  is_write(New[1, ((j - 1) div 4) + 1], 1)
  is_write(New[8, ((j - 1) div 4) + 1], 1)
}
for i = 2 to 7 {
  is_write(New[i, 1], 1)
}
for j#2.round = 0 to 1 {
  if (4*j#2.round + 2 <= 7) {
    for i#2 = 2 to 7 {
      ct1 := is_read(New[i#2, ((4*j#2.round) div 4) + 1])
      send(ct1, to 2)  -- tag 2
    }
  }
  if (4*j#2.round + 4 <= 7) {
    for i#2 = 2 to 7 {
      ct2 := is_read(Old[i#2, ((4*j#2.round + 4) div 4) + 1])
      send(ct2, to 0)  -- tag 4
    }
  }
  if (4*j#2.round + 5 <= 7) {
    for i#2 = 2 to 7 {
      t1 := is_read(New[i#2 - 1, ((4*j#2.round + 4) div 4) + 1])
      t2 := receive(from 0)  -- tag 2
      t3 := is_read(Old[i#2 + 1, ((4*j#2.round + 4) div 4) + 1])
      t4 := receive(from 2)  -- tag 4
      is_write(New[i#2, ((4*j#2.round + 4) div 4) + 1], (0.25 * (((t1 + t2) + t3) + t4)))
    }
  }
}
output Old  -- gathered via cyclic_cols(S=4, 8x8)
output New  -- gathered via cyclic_cols(S=4, 8x8)
`
	if got != want {
		t.Errorf("Fig. 5 golden mismatch.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}
