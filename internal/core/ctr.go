package core

import (
	"fmt"
	"sort"

	"procdecomp/internal/expr"
	"procdecomp/internal/lang"
	"procdecomp/internal/spmd"
)

// Compile-time resolution (§3.2). The generic run-time resolution program is
// specialized for each process:
//
//  1. "me" is replaced by the process number everywhere.
//  2. Ownership guards are resolved with the three-valued comparison: true
//     guards are spliced, false guards are dropped, inconclusive guards stay
//     as run-time tests.
//  3. Coerces whose owner/needer relationship is decided split into bare
//     sends, receives, or local reads; undecided coerces stay (run-time
//     resolution fallback).
//  4. Loops whose residual guards solve to congruence classes of the loop
//     variable (j mod S == p, Fig. 5) are restricted to the iterations the
//     process participates in. The restricted form preserves the exact
//     global execution order of run-time resolution: when several classes
//     coexist, the loop iterates over "rounds" of S consecutive iterations,
//     visiting each class at its position within the round; a single class
//     becomes the classic strided loop of Fig. 5.

// SpecializeAll produces one specialized program per process from the
// generic program.
func SpecializeAll(generic *spmd.Program, procs int64, restrict bool) []*spmd.Program {
	out := make([]*spmd.Program, procs)
	for p := int64(0); p < procs; p++ {
		out[p] = Specialize(generic, p, procs, restrict)
	}
	return out
}

// Specialize produces the program for one process of a procs-sized machine.
func Specialize(generic *spmd.Program, p, procs int64, restrict bool) *spmd.Program {
	body := spmd.CloneBody(generic.Body)
	spmd.SubstBody(body, spmd.Me, expr.C(p))
	s := &spec{p: p, procs: procs, restrict: restrict}
	body = s.stmts(body)
	prog := *generic
	prog.Body = body
	prog.Proc = int(p)
	return &prog
}

type spec struct {
	p        int64
	procs    int64
	restrict bool
	nextTmp  int
}

func (s *spec) tmp() string {
	s.nextTmp++
	return fmt.Sprintf("ct%d", s.nextTmp)
}

// me returns this process's number as an expression.
func (s *spec) me() expr.Expr { return expr.C(s.p) }

func (s *spec) stmts(in []spmd.Stmt) []spmd.Stmt {
	var out []spmd.Stmt
	for _, st := range in {
		out = append(out, s.stmt(st)...)
	}
	return out
}

func (s *spec) stmt(st spmd.Stmt) []spmd.Stmt {
	switch st := st.(type) {
	case *spmd.Guard:
		body := s.stmts(st.Body)
		if len(body) == 0 {
			return nil
		}
		switch expr.EqualTri(s.me(), st.Proc) {
		case expr.Yes:
			return body
		case expr.No:
			return nil
		default:
			return []spmd.Stmt{&spmd.Guard{Proc: st.Proc, Body: body}}
		}
	case *spmd.Coerce:
		return s.coerce(st)
	case *spmd.For:
		body := s.stmts(st.Body)
		if len(body) == 0 {
			return nil
		}
		loop := &spmd.For{Var: st.Var, Lo: st.Lo, Hi: st.Hi, Step: st.Step, Body: body}
		if s.restrict {
			return s.restrictLoop(loop)
		}
		return []spmd.Stmt{loop}
	case *spmd.IfValue:
		then := s.stmts(st.Then)
		els := s.stmts(st.Else)
		if len(then) == 0 && len(els) == 0 {
			return nil
		}
		return []spmd.Stmt{&spmd.IfValue{Cond: st.Cond, Then: then, Else: els}}
	default:
		return []spmd.Stmt{st}
	}
}

// readInto builds the statement that loads a coerce's source into dst
// (valid only on the owner).
func readInto(co *spmd.Coerce, dst string) spmd.Stmt {
	if co.Array != "" {
		return &spmd.ARead{Dst: dst, Array: co.Array, Idx: co.Idx}
	}
	return &spmd.AssignVar{Name: dst, Val: spmd.VVar{Name: co.Var}}
}

// coerce resolves one coerce for process p, splitting it into its roles when
// the analysis decides them; an inconclusive analysis keeps the coerce as a
// run-time test (§3.2's third outcome).
func (s *spec) coerce(co *spmd.Coerce) []spmd.Stmt {
	switch {
	case co.OwnerAll && co.NeederAll:
		return []spmd.Stmt{readInto(co, co.Dst)}
	case co.OwnerAll:
		// Replicated source: the needer reads its own copy.
		switch expr.EqualTri(s.me(), co.Needer) {
		case expr.Yes:
			return []spmd.Stmt{readInto(co, co.Dst)}
		case expr.No:
			return nil
		default:
			return []spmd.Stmt{&spmd.Guard{Proc: co.Needer, Body: []spmd.Stmt{readInto(co, co.Dst)}}}
		}
	case co.NeederAll:
		// Broadcast from the owner.
		switch expr.EqualTri(s.me(), co.Owner) {
		case expr.Yes:
			out := []spmd.Stmt{readInto(co, co.Dst)}
			for q := int64(0); q < s.procs; q++ {
				if q != s.p {
					out = append(out, &spmd.Send{Dst: expr.C(q), Tag: co.Tag, Val: spmd.VVar{Name: co.Dst}})
				}
			}
			return out
		case expr.No:
			return []spmd.Stmt{&spmd.Recv{Src: co.Owner, Tag: co.Tag, Dst: co.Dst}}
		default:
			return []spmd.Stmt{co}
		}
	default:
		eq := expr.EqualTri(co.Owner, co.Needer)
		switch eq {
		case expr.Yes:
			// Local: just a read on the owner.
			switch expr.EqualTri(s.me(), co.Owner) {
			case expr.Yes:
				return []spmd.Stmt{readInto(co, co.Dst)}
			case expr.No:
				return nil
			default:
				return []spmd.Stmt{&spmd.Guard{Proc: co.Owner, Body: []spmd.Stmt{readInto(co, co.Dst)}}}
			}
		case expr.No:
			var out []spmd.Stmt
			// Sender role.
			switch expr.EqualTri(s.me(), co.Owner) {
			case expr.Yes:
				tmp := s.tmp()
				out = append(out, readInto(co, tmp),
					&spmd.Send{Dst: co.Needer, Tag: co.Tag, Val: spmd.VVar{Name: tmp}})
			case expr.Maybe:
				tmp := s.tmp()
				out = append(out, &spmd.Guard{Proc: co.Owner, Body: []spmd.Stmt{
					readInto(co, tmp),
					&spmd.Send{Dst: co.Needer, Tag: co.Tag, Val: spmd.VVar{Name: tmp}},
				}})
			}
			// Receiver role.
			switch expr.EqualTri(s.me(), co.Needer) {
			case expr.Yes:
				out = append(out, &spmd.Recv{Src: co.Owner, Tag: co.Tag, Dst: co.Dst})
			case expr.Maybe:
				out = append(out, &spmd.Guard{Proc: co.Needer, Body: []spmd.Stmt{
					&spmd.Recv{Src: co.Owner, Tag: co.Tag, Dst: co.Dst},
				}})
			}
			return out
		default:
			// Owner-needer relationship undecidable: run-time resolution.
			return []spmd.Stmt{co}
		}
	}
}

// piece is a classified fragment of a loop body: stmts that execute exactly
// when cond's process expression equals p (condDep) or unconditionally
// (cond == nil).
type piece struct {
	cond  *expr.Expr // the guard's process expression, nil for unconditional
	stmts []spmd.Stmt
}

// classify decomposes a loop-body statement into guard-classified pieces.
// ok is false when the statement cannot be classified (data-dependent
// control flow, residual coerces, unguarded leaf work).
func classify(st spmd.Stmt) (pieces []piece, ok bool) {
	switch st := st.(type) {
	case *spmd.Guard:
		c := st.Proc
		return []piece{{cond: &c, stmts: st.Body}}, true
	case *spmd.For:
		inner, ok := classifyList(st.Body)
		if !ok {
			return nil, false
		}
		// Rebuild one loop per class. Distribution across classes is exact
		// because classifyList guarantees classes are pairwise disjoint.
		var out []piece
		for _, pc := range inner {
			loop := &spmd.For{Var: st.Var, Lo: st.Lo, Hi: st.Hi, Step: st.Step, Body: pc.stmts}
			out = append(out, piece{cond: pc.cond, stmts: []spmd.Stmt{loop}})
		}
		return out, true
	default:
		return nil, false
	}
}

// classifyList classifies every statement of a loop body and merges pieces
// with provably-equal conditions (preserving their relative order). It fails
// when any statement is unclassifiable or when two conditions are neither
// provably equal nor provably different — distribution would then be unsound.
func classifyList(body []spmd.Stmt) ([]piece, bool) {
	var merged []piece
	for _, st := range body {
		pieces, ok := classify(st)
		if !ok {
			return nil, false
		}
		for _, pc := range pieces {
			placed := false
			for i := range merged {
				switch expr.EqualTri(*merged[i].cond, *pc.cond) {
				case expr.Yes:
					merged[i].stmts = append(merged[i].stmts, pc.stmts...)
					placed = true
				case expr.No:
					// disjoint: keep looking
				default:
					return nil, false // can't prove the classes disjoint
				}
				if placed {
					break
				}
			}
			if !placed {
				merged = append(merged, pc)
			}
		}
	}
	return merged, true
}

// restrictLoop restricts a specialized loop to the iterations in which this
// process participates. When the body does not fit the decidable fragment,
// the loop is returned unchanged — the run-time guards keep it correct.
func (s *spec) restrictLoop(loop *spmd.For) []spmd.Stmt {
	step, ok := loop.Step.ConstVal()
	if !ok || step != 1 {
		return []spmd.Stmt{loop}
	}
	lo, loConst := loop.Lo.ConstVal()
	if !loConst {
		return []spmd.Stmt{loop}
	}
	pieces, ok := classifyList(loop.Body)
	if !ok || len(pieces) == 0 {
		return []spmd.Stmt{loop}
	}

	// Solve every class condition as v ≡ r (mod S) for a shared S.
	type class struct {
		r     int64
		start int64 // first iteration ≥ lo in the class
		stmts []spmd.Stmt
	}
	var classes []class
	var stride int64
	for _, pc := range pieces {
		inner, sv, isMod := expr.AsMod(*pc.cond)
		if !isMod {
			return []spmd.Stmt{loop}
		}
		if stride == 0 {
			stride = sv
		} else if stride != sv {
			return []spmd.Stmt{loop}
		}
		sol, solved := expr.SolveModEq(inner, sv, s.me(), loop.Var)
		if !solved {
			return []spmd.Stmt{loop}
		}
		r, rConst := sol.Offset.ConstVal()
		if !rConst {
			return []spmd.Stmt{loop}
		}
		// This process participates in the class iff its number can satisfy
		// the equation at all; SolveModEq already folded p in, so any
		// solution progression is genuine.
		classes = append(classes, class{
			r:     r,
			start: lo + expr.EucMod(r-lo, sv),
			stmts: pc.stmts,
		})
	}
	if stride == 1 {
		// Every iteration participates; stripping the (always-true) guards
		// is the entire win.
		var body []spmd.Stmt
		for _, cl := range classes {
			body = append(body, cl.stmts...)
		}
		return []spmd.Stmt{&spmd.For{Var: loop.Var, Lo: loop.Lo, Hi: loop.Hi, Step: loop.Step, Body: body}}
	}

	sort.SliceStable(classes, func(i, j int) bool { return classes[i].start < classes[j].start })

	if len(classes) == 1 {
		// Fig. 5: the classic strided loop "for j = p to N by S".
		cl := classes[0]
		return []spmd.Stmt{&spmd.For{
			Var:  loop.Var,
			Lo:   expr.C(cl.start),
			Hi:   loop.Hi,
			Step: expr.C(stride),
			Body: cl.stmts,
		}}
	}

	// Several disjoint classes: iterate over rounds of S consecutive
	// iterations, visiting each class at its position within the round.
	// This preserves the exact global iteration order of the unrestricted
	// loop while skipping every iteration this process has no role in.
	round := loop.Var + ".round"
	minStart := classes[0].start
	rounds := expr.Div(expr.Sub(loop.Hi, expr.C(minStart)), expr.C(stride))
	var body []spmd.Stmt
	for _, cl := range classes {
		v := expr.Add(expr.C(cl.start), expr.Mul(expr.V(round), expr.C(stride)))
		stmts := spmd.CloneBody(cl.stmts)
		spmd.SubstBody(stmts, loop.Var, v)
		inRange := spmd.VBin{
			Op: lang.OpLe,
			L:  spmd.VInt{X: v},
			R:  spmd.VInt{X: loop.Hi},
		}
		body = append(body, &spmd.IfValue{Cond: inRange, Then: stmts})
	}
	return []spmd.Stmt{&spmd.For{
		Var:  round,
		Lo:   expr.C(0),
		Hi:   rounds,
		Step: expr.C(1),
		Body: body,
	}}
}
