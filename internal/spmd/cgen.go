package spmd

import (
	"fmt"
	"strings"

	"procdecomp/internal/expr"
)

// FormatC renders a specialized program as C for the iPSC/2, in the style of
// the paper's Appendix A: csend/crecv for messages and the is_read/is_write
// run-time-system macros for I-structure access. The output is what the
// authors' compiler ultimately produced ("Our goal is to produce C code for
// the iPSC/2 that does as well as a handwritten program", §2.3); here it
// serves as a faithful artifact and for inspection — the simulator executes
// the IR directly.
//
// Conventions: values are doubles; local I-structure matrices are flattened
// row-major by the LOCAL(a, i, j) macro; message buffers are double arrays
// indexed from 1 like the paper's vectors; each channel's tag is the csend
// "type" argument.
func FormatC(p *Program) string {
	g := &cgen{}
	var b strings.Builder

	fmt.Fprintf(&b, "/* %s: ", p.Name)
	if p.Proc < 0 {
		b.WriteString("generic run-time resolution program (all nodes) */\n")
	} else {
		fmt.Fprintf(&b, "compile-time resolution program for node %d */\n", p.Proc)
	}
	b.WriteString(`#include "istruct.h" /* is_read, is_write, istructure (run-time system) */
#include <cube.h>     /* csend, crecv, mynode (iPSC/2) */

`)
	fmt.Fprintf(&b, "void %s(", cIdent(p.Name))
	for i, prm := range p.Params {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "istructure %s", cIdent(prm.Name))
	}
	b.WriteString(")\n{\n")

	// Declarations: scan the body for temporaries and buffers.
	decls := g.scan(p.Body)
	if len(decls.scalars) > 0 {
		fmt.Fprintf(&b, "  double %s;\n", strings.Join(decls.scalars, ", "))
	}
	if len(decls.ints) > 0 {
		fmt.Fprintf(&b, "  int %s;\n", strings.Join(decls.ints, ", "))
	}
	for _, arr := range decls.arrays {
		fmt.Fprintf(&b, "  istructure %s;\n", arr)
	}
	if len(decls.scalars)+len(decls.ints)+len(decls.arrays) > 0 {
		b.WriteString("\n")
	}

	g.stmts(&b, p.Body, 1)
	b.WriteString("}\n")
	return b.String()
}

type cdecls struct {
	scalars []string
	ints    []string
	arrays  []string
}

type cgen struct {
	seen map[string]bool
}

func (g *cgen) mark(set *[]string, name string) {
	if g.seen == nil {
		g.seen = map[string]bool{}
	}
	if !g.seen[name] {
		g.seen[name] = true
		*set = append(*set, name)
	}
}

// scan collects declarations: double temporaries, int loop variables, local
// istructure allocations, and message buffers (declared as double arrays).
func (g *cgen) scan(body []Stmt) cdecls {
	var d cdecls
	var walk func(body []Stmt)
	walk = func(body []Stmt) {
		for _, st := range body {
			switch st := st.(type) {
			case *Alloc:
				g.mark(&d.arrays, cIdent(st.Array))
			case *AllocBuf:
				// emitted inline as a calloc, declared as a pointer
				g.mark(&d.scalars, "*"+cIdent(st.Buf))
			case *AssignVar:
				g.mark(&d.scalars, cIdent(st.Name))
			case *AssignIVar:
				g.mark(&d.scalars, cIdent(st.Name))
			case *ARead:
				g.mark(&d.scalars, cIdent(st.Dst))
			case *BufRead:
				g.mark(&d.scalars, cIdent(st.Dst))
			case *Recv:
				g.mark(&d.scalars, cIdent(st.Dst))
			case *Coerce:
				g.mark(&d.scalars, cIdent(st.Dst))
			case *For:
				g.mark(&d.ints, cIdent(st.Var))
				walk(st.Body)
			case *Guard:
				walk(st.Body)
			case *IfValue:
				walk(st.Then)
				walk(st.Else)
			}
		}
	}
	walk(body)
	return d
}

func (g *cgen) stmts(b *strings.Builder, body []Stmt, depth int) {
	for _, st := range body {
		g.stmt(b, st, depth)
	}
}

func cInd(b *strings.Builder, depth int) {
	for i := 0; i < depth; i++ {
		b.WriteString("  ")
	}
}

func (g *cgen) stmt(b *strings.Builder, st Stmt, depth int) {
	cInd(b, depth)
	switch st := st.(type) {
	case *Alloc:
		parts := make([]string, len(st.Shape))
		for i, e := range st.Shape {
			parts[i] = cExpr(e)
		}
		fmt.Fprintf(b, "%s = local_alloc(%s);\n", cIdent(st.Array), strings.Join(parts, ", "))
	case *AllocBuf:
		fmt.Fprintf(b, "%s = (double *) calloc(%s + 1, sizeof(double));\n",
			cIdent(st.Buf), cExpr(st.Size))
	case *AssignVar, *AssignIVar:
		var name string
		var val VExpr
		if s, ok := st.(*AssignVar); ok {
			name, val = s.Name, s.Val
		} else {
			s := st.(*AssignIVar)
			name, val = s.Name, s.Val
		}
		fmt.Fprintf(b, "%s = %s;\n", cIdent(name), cVExpr(val))
	case *ARead:
		fmt.Fprintf(b, "%s = is_read(%s, %s);\n", cIdent(st.Dst), cIdent(st.Array), cLocal(st.Idx))
	case *AWrite:
		fmt.Fprintf(b, "is_write(%s, %s, %s);\n", cIdent(st.Array), cLocal(st.Idx), cVExpr(st.Val))
	case *BufRead:
		fmt.Fprintf(b, "%s = %s[%s];\n", cIdent(st.Dst), cIdent(st.Buf), cExpr(st.Idx))
	case *BufWrite:
		fmt.Fprintf(b, "%s[%s] = %s;\n", cIdent(st.Buf), cExpr(st.Idx), cVExpr(st.Val))
	case *Send:
		fmt.Fprintf(b, "{ double tmp = %s; csend(%d, &tmp, sizeof(double), %s, 0); }\n",
			cVExpr(st.Val), st.Tag, cExpr(st.Dst))
	case *Recv:
		fmt.Fprintf(b, "crecv(%d, &%s, sizeof(double)); /* from %s */\n",
			st.Tag, cIdent(st.Dst), cExpr(st.Src))
	case *SendBuf:
		fmt.Fprintf(b, "csend(%d, &%s[%s], sizeof(double) * (%s - %s + 1), %s, 0);\n",
			st.Tag, cIdent(st.Buf), cExpr(st.Lo), cExpr(st.Hi), cExpr(st.Lo), cExpr(st.Dst))
	case *RecvBuf:
		fmt.Fprintf(b, "crecv(%d, &%s[%s], sizeof(double) * (%s - %s + 1)); /* from %s */\n",
			st.Tag, cIdent(st.Buf), cExpr(st.Lo), cExpr(st.Hi), cExpr(st.Lo), cExpr(st.Src))
	case *Coerce:
		// Run-time resolution fallback: expand the ownership tests inline.
		src := cIdent(st.Var)
		if st.Array != "" {
			src = fmt.Sprintf("is_read(%s, %s)", cIdent(st.Array), cLocal(st.Idx))
		}
		owner := "OWNER_ALL"
		if !st.OwnerAll {
			owner = cExpr(st.Owner)
		}
		needer := "NEEDER_ALL"
		if !st.NeederAll {
			needer = cExpr(st.Needer)
		}
		fmt.Fprintf(b, "%s = coerce(%s, %s, %s, %d); /* run-time resolution */\n",
			cIdent(st.Dst), src, owner, needer, st.Tag)
	case *For:
		fmt.Fprintf(b, "for (%s = %s; %s <= %s; %s += %s) {\n",
			cIdent(st.Var), cExpr(st.Lo), cIdent(st.Var), cExpr(st.Hi), cIdent(st.Var), cExpr(st.Step))
		g.stmts(b, st.Body, depth+1)
		cInd(b, depth)
		b.WriteString("}\n")
	case *Guard:
		fmt.Fprintf(b, "if (%s == mynode()) {\n", cExpr(st.Proc))
		g.stmts(b, st.Body, depth+1)
		cInd(b, depth)
		b.WriteString("}\n")
	case *IfValue:
		fmt.Fprintf(b, "if (%s) {\n", cVExpr(st.Cond))
		g.stmts(b, st.Then, depth+1)
		cInd(b, depth)
		b.WriteString("}")
		if len(st.Else) > 0 {
			b.WriteString(" else {\n")
			g.stmts(b, st.Else, depth+1)
			cInd(b, depth)
			b.WriteString("}")
		}
		b.WriteString("\n")
	default:
		fmt.Fprintf(b, "/* unknown statement %T */\n", st)
	}
}

// cIdent sanitizes IR names ("j#2.round" is not a C identifier).
func cIdent(name string) string {
	r := strings.NewReplacer("#", "_", ".", "_", "-", "_")
	return r.Replace(name)
}

// cLocal renders a local index as the LOCAL flattening macro's arguments.
func cLocal(idx []expr.Expr) string {
	parts := make([]string, len(idx))
	for i, e := range idx {
		parts[i] = cExpr(e)
	}
	return "LOCAL(" + strings.Join(parts, ", ") + ")"
}

// cExpr renders a symbolic integer expression in C. div and mod are emitted
// through the FLOORDIV/EUCMOD macros so the C semantics match the
// compiler's (the paper's index arithmetic is non-negative, where they
// coincide with / and %).
func cExpr(e expr.Expr) string {
	s := e.String()
	s = strings.NewReplacer("#", "_", ".", "_").Replace(s)
	// The canonical printer uses "a div b" and "(x mod m)"; rewrite to macros.
	s = rewriteBinword(s, "div", "FLOORDIV")
	s = rewriteBinword(s, "mod", "EUCMOD")
	return s
}

// rewriteBinword turns "(X word Y)" into "MACRO(X, Y)" for the canonical
// parenthesized forms the expression printer emits.
func rewriteBinword(s, word, macro string) string {
	needle := " " + word + " "
	for {
		i := strings.Index(s, needle)
		if i < 0 {
			return s
		}
		// Find the opening paren that starts this form: scan left matching
		// parens from i.
		depth := 0
		start := -1
		for k := i - 1; k >= 0; k-- {
			switch s[k] {
			case ')':
				depth++
			case '(':
				if depth == 0 {
					start = k
				} else {
					depth--
				}
			}
			if start >= 0 {
				break
			}
		}
		// Find the closing paren to the right.
		depth = 0
		end := -1
		for k := i + len(needle); k < len(s); k++ {
			switch s[k] {
			case '(':
				depth++
			case ')':
				if depth == 0 {
					end = k
				} else {
					depth--
				}
			}
			if end >= 0 {
				break
			}
		}
		if start < 0 || end < 0 {
			return s // not the canonical parenthesized form; leave as-is
		}
		left := s[start+1 : i]
		right := s[i+len(needle) : end]
		s = s[:start] + macro + "(" + left + ", " + right + ")" + s[end+1:]
	}
}

// cVExpr renders a data-value expression in C.
func cVExpr(v VExpr) string {
	switch v := v.(type) {
	case VConst:
		return fmt.Sprintf("%g", v.F)
	case VVar:
		return cIdent(v.Name)
	case VInt:
		return cExpr(v.X)
	case VBin:
		op := v.Op.String()
		switch op {
		case "and":
			op = "&&"
		case "or":
			op = "||"
		case "min":
			return fmt.Sprintf("MIN(%s, %s)", cVExpr(v.L), cVExpr(v.R))
		case "max":
			return fmt.Sprintf("MAX(%s, %s)", cVExpr(v.L), cVExpr(v.R))
		case "div":
			return fmt.Sprintf("FLOORDIV(%s, %s)", cVExpr(v.L), cVExpr(v.R))
		case "mod":
			return fmt.Sprintf("EUCMOD(%s, %s)", cVExpr(v.L), cVExpr(v.R))
		}
		return fmt.Sprintf("(%s %s %s)", cVExpr(v.L), op, cVExpr(v.R))
	case VUn:
		if v.Op.String() == "not" {
			return fmt.Sprintf("!(%s)", cVExpr(v.X))
		}
		return fmt.Sprintf("-(%s)", cVExpr(v.X))
	default:
		return "/* ? */0"
	}
}
