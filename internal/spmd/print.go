package spmd

import (
	"fmt"
	"strings"

	"procdecomp/internal/expr"
)

// Format renders a program in the paper's pseudo-code style, for inspection
// and golden tests.
func Format(p *Program) string {
	var b strings.Builder
	if p.Proc < 0 {
		fmt.Fprintf(&b, "program %s  -- generic (run-time resolution), executed by all processes\n", p.Name)
	} else {
		fmt.Fprintf(&b, "program %s  -- specialized for process %d\n", p.Name, p.Proc)
	}
	for _, prm := range p.Params {
		fmt.Fprintf(&b, "param %s: %v\n", prm.Name, prm.Dist)
	}
	FormatBody(&b, p.Body, 0)
	for _, o := range p.Outputs {
		if o.IsArray {
			fmt.Fprintf(&b, "output %s  -- gathered via %v\n", o.Name, p.Arrays[o.Name].Dist)
		} else {
			fmt.Fprintf(&b, "output %s  -- scalar on %v\n", o.Name, o.ScalarDist)
		}
	}
	return b.String()
}

// FormatBody renders a statement list at the given indentation depth.
func FormatBody(b *strings.Builder, body []Stmt, depth int) {
	for _, s := range body {
		formatStmt(b, s, depth)
	}
}

func ind(b *strings.Builder, depth int) {
	for i := 0; i < depth; i++ {
		b.WriteString("  ")
	}
}

func exprList(idx []expr.Expr) string {
	parts := make([]string, len(idx))
	for i, e := range idx {
		parts[i] = e.String()
	}
	return strings.Join(parts, ", ")
}

func formatStmt(b *strings.Builder, s Stmt, depth int) {
	ind(b, depth)
	switch s := s.(type) {
	case *Alloc:
		parts := make([]string, len(s.Shape))
		for i, e := range s.Shape {
			parts[i] = e.String()
		}
		fmt.Fprintf(b, "%s := local_alloc(%s)\n", s.Array, strings.Join(parts, ", "))
	case *AllocBuf:
		fmt.Fprintf(b, "%s := vector[%s]\n", s.Buf, s.Size)
	case *AssignVar:
		fmt.Fprintf(b, "%s := %s\n", s.Name, FormatV(s.Val))
	case *AssignIVar:
		fmt.Fprintf(b, "%s = %s  -- I-var\n", s.Name, FormatV(s.Val))
	case *ARead:
		fmt.Fprintf(b, "%s := is_read(%s[%s])\n", s.Dst, s.Array, exprList(s.Idx))
	case *AWrite:
		fmt.Fprintf(b, "is_write(%s[%s], %s)\n", s.Array, exprList(s.Idx), FormatV(s.Val))
	case *BufRead:
		fmt.Fprintf(b, "%s := %s[%s]\n", s.Dst, s.Buf, s.Idx)
	case *BufWrite:
		fmt.Fprintf(b, "%s[%s] := %s\n", s.Buf, s.Idx, FormatV(s.Val))
	case *Send:
		fmt.Fprintf(b, "send(%s, to %s)  -- tag %d\n", FormatV(s.Val), s.Dst, s.Tag)
	case *Recv:
		fmt.Fprintf(b, "%s := receive(from %s)  -- tag %d\n", s.Dst, s.Src, s.Tag)
	case *SendBuf:
		fmt.Fprintf(b, "send(%s[%s..%s], to %s)  -- tag %d\n", s.Buf, s.Lo, s.Hi, s.Dst, s.Tag)
	case *RecvBuf:
		fmt.Fprintf(b, "%s[%s..%s] := receive(from %s)  -- tag %d\n", s.Buf, s.Lo, s.Hi, s.Src, s.Tag)
	case *Coerce:
		src := s.Var
		if s.Array != "" {
			src = fmt.Sprintf("%s[%s]", s.Array, exprList(s.Idx))
		}
		owner := "ALL"
		if !s.OwnerAll {
			owner = s.Owner.String()
		}
		needer := "ALL"
		if !s.NeederAll {
			needer = s.Needer.String()
		}
		fmt.Fprintf(b, "%s := coerce(%s, %s, %s)  -- tag %d\n", s.Dst, src, owner, needer, s.Tag)
	case *For:
		if v, ok := s.Step.ConstVal(); ok && v == 1 {
			fmt.Fprintf(b, "for %s = %s to %s {\n", s.Var, s.Lo, s.Hi)
		} else {
			fmt.Fprintf(b, "for %s = %s to %s by %s {\n", s.Var, s.Lo, s.Hi, s.Step)
		}
		FormatBody(b, s.Body, depth+1)
		ind(b, depth)
		b.WriteString("}\n")
	case *Guard:
		fmt.Fprintf(b, "if %s = mynode() {\n", s.Proc)
		FormatBody(b, s.Body, depth+1)
		ind(b, depth)
		b.WriteString("}\n")
	case *IfValue:
		fmt.Fprintf(b, "if %s {\n", FormatV(s.Cond))
		FormatBody(b, s.Then, depth+1)
		ind(b, depth)
		b.WriteString("}")
		if len(s.Else) > 0 {
			b.WriteString(" else {\n")
			FormatBody(b, s.Else, depth+1)
			ind(b, depth)
			b.WriteString("}")
		}
		b.WriteString("\n")
	default:
		fmt.Fprintf(b, "<?stmt %T>\n", s)
	}
}

// FormatV renders a value expression.
func FormatV(v VExpr) string {
	switch v := v.(type) {
	case VConst:
		return fmt.Sprintf("%g", v.F)
	case VVar:
		return v.Name
	case VInt:
		return v.X.String()
	case VBin:
		return fmt.Sprintf("(%s %s %s)", FormatV(v.L), v.Op, FormatV(v.R))
	case VUn:
		return fmt.Sprintf("(%s %s)", v.Op, FormatV(v.X))
	default:
		return fmt.Sprintf("<?vexpr %T>", v)
	}
}
