package spmd

import (
	"strings"
	"testing"

	"procdecomp/internal/dist"
	"procdecomp/internal/expr"
	"procdecomp/internal/lang"
)

// sample builds a small program exercising every statement kind.
func sample() *Program {
	j := expr.V("j")
	me := MeExpr()
	d := dist.NewCyclicCols(4, 8, 8)
	return &Program{
		Name:   "sample",
		Proc:   -1,
		Params: []ArrayInfo{{Name: "Old", Dist: d, GlobalShape: []int64{8, 8}}},
		Arrays: map[string]ArrayInfo{
			"Old": {Name: "Old", Dist: d, GlobalShape: []int64{8, 8}},
			"New": {Name: "New", Dist: d, GlobalShape: []int64{8, 8}},
		},
		Body: []Stmt{
			&Alloc{Array: "New", Shape: []expr.Expr{expr.C(8), expr.C(2)}},
			&AllocBuf{Buf: "buf", Size: expr.C(6)},
			&Guard{Proc: expr.Mod(j, expr.C(4)), Body: []Stmt{
				&AssignIVar{Name: "x", Val: VConst{F: 5}},
			}},
			&Coerce{Dst: "t1", Var: "x", Owner: expr.C(0), Needer: expr.C(2), Tag: 7},
			&For{Var: "j", Lo: expr.C(2), Hi: expr.C(7), Step: expr.C(1), Body: []Stmt{
				&ARead{Dst: "t2", Array: "Old", Idx: []expr.Expr{expr.V("i"), expr.C(1)}},
				&Send{Dst: expr.Mod(expr.Sub(j, expr.C(1)), expr.C(4)), Tag: 3, Val: VVar{Name: "t2"}},
				&Recv{Src: me, Tag: 3, Dst: "t3"},
				&BufWrite{Buf: "buf", Idx: expr.V("j"), Val: VBin{Op: lang.OpAdd, L: VVar{Name: "t2"}, R: VVar{Name: "t3"}}},
				&BufRead{Dst: "t4", Buf: "buf", Idx: expr.V("j")},
				&AWrite{Array: "New", Idx: []expr.Expr{expr.V("i"), expr.C(1)}, Val: VUn{Op: lang.OpNeg, X: VVar{Name: "t4"}}},
			}},
			&SendBuf{Dst: expr.C(1), Tag: 9, Buf: "buf", Lo: expr.C(1), Hi: expr.C(6)},
			&RecvBuf{Src: expr.C(1), Tag: 9, Buf: "buf", Lo: expr.C(1), Hi: expr.C(6)},
			&IfValue{Cond: VBin{Op: lang.OpLt, L: VInt{X: j}, R: VConst{F: 4}},
				Then: []Stmt{&AssignVar{Name: "y", Val: VInt{X: j}}},
				Else: []Stmt{&AssignVar{Name: "y", Val: VConst{F: 0}}}},
		},
		Outputs: []OutVar{{Name: "New", IsArray: true}},
	}
}

func TestFormatCoversAllStatements(t *testing.T) {
	out := Format(sample())
	for _, want := range []string{
		"generic (run-time resolution)",
		"local_alloc(8, 2)",
		"buf := vector[6]",
		"mynode()",
		"x = 5  -- I-var",
		"coerce(x, 0, 2)",
		"for j = 2 to 7 {",
		"is_read(Old[i, 1])",
		"send(t2, to ((j + 3) mod 4))",
		"t3 := receive(from me)",
		"buf[j] := (t2 + t3)",
		"is_write(New[i, 1], (- t4))",
		"send(buf[1..6], to 1)",
		"buf[1..6] := receive(from 1)",
		"if (j < 4) {",
		"} else {",
		"output New",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted program missing %q:\n%s", want, out)
		}
	}
}

func TestFormatSpecialized(t *testing.T) {
	p := sample()
	p.Proc = 2
	if !strings.Contains(Format(p), "specialized for process 2") {
		t.Error("specialized header missing")
	}
}

func TestCloneBodyIndependence(t *testing.T) {
	p := sample()
	clone := CloneBody(p.Body)
	// Mutate the clone deeply; the original must not change.
	cloneFor := clone[4].(*For)
	cloneFor.Body[0].(*ARead).Dst = "CHANGED"
	cloneFor.Body = append(cloneFor.Body, &AssignVar{Name: "extra", Val: VConst{}})
	clone[0].(*Alloc).Shape[0] = expr.C(999)

	origFor := p.Body[4].(*For)
	if origFor.Body[0].(*ARead).Dst != "t2" {
		t.Error("clone shares ARead with original")
	}
	if len(origFor.Body) != 6 {
		t.Error("clone shares loop body slice with original")
	}
	if v, _ := p.Body[0].(*Alloc).Shape[0].ConstVal(); v != 8 {
		t.Error("clone shares alloc shape with original")
	}
}

func TestSubstBodyMe(t *testing.T) {
	p := sample()
	body := CloneBody(p.Body)
	SubstBody(body, Me, expr.C(2))
	recv := body[4].(*For).Body[2].(*Recv)
	if v, ok := recv.Src.ConstVal(); !ok || v != 2 {
		t.Errorf("me not substituted in Recv.Src: %v", recv.Src)
	}
	// Formatting the substituted body must not mention "me" anywhere.
	var b strings.Builder
	FormatBody(&b, body, 0)
	if strings.Contains(b.String(), "me") {
		t.Errorf("substituted body still mentions me:\n%s", b.String())
	}
}

func TestSubstBodyLoopVar(t *testing.T) {
	body := []Stmt{
		&For{Var: "k", Lo: expr.C(0), Hi: expr.V("r"), Step: expr.C(1), Body: []Stmt{
			&AWrite{Array: "A", Idx: []expr.Expr{expr.V("r"), expr.V("k")}, Val: VInt{X: expr.V("r")}},
		}},
	}
	SubstBody(body, "r", expr.C(5))
	f := body[0].(*For)
	if v, _ := f.Hi.ConstVal(); v != 5 {
		t.Errorf("Hi not substituted: %v", f.Hi)
	}
	w := f.Body[0].(*AWrite)
	if v, _ := w.Idx[0].ConstVal(); v != 5 {
		t.Errorf("index not substituted: %v", w.Idx[0])
	}
	if FormatV(w.Val) != "5" {
		t.Errorf("VInt not substituted: %s", FormatV(w.Val))
	}
	// The loop variable itself must be untouched.
	if !w.Idx[1].Equal(expr.V("k")) {
		t.Error("loop variable was substituted")
	}
}

func TestSubstVExpr(t *testing.T) {
	v := VBin{Op: lang.OpAdd, L: VInt{X: expr.V("r")}, R: VUn{Op: lang.OpNeg, X: VInt{X: expr.V("r")}}}
	got := SubstVExpr(v, "r", expr.C(3))
	if FormatV(got) != "(3 + (- 3))" {
		t.Errorf("got %s", FormatV(got))
	}
}

func TestVExprEqual(t *testing.T) {
	a := VBin{Op: lang.OpAdd, L: VConst{F: 1}, R: VVar{Name: "x"}}
	b := VBin{Op: lang.OpAdd, L: VConst{F: 1}, R: VVar{Name: "x"}}
	c := VBin{Op: lang.OpAdd, L: VConst{F: 2}, R: VVar{Name: "x"}}
	if !VExprEqual(a, b) || VExprEqual(a, c) {
		t.Error("VExprEqual misreports")
	}
	if !VExprEqual(nil, nil) || VExprEqual(a, nil) {
		t.Error("nil handling wrong")
	}
}

func TestCloneProgram(t *testing.T) {
	p := sample()
	c := p.CloneProgram()
	c.Body[0].(*Alloc).Array = "Other"
	if p.Body[0].(*Alloc).Array != "New" {
		t.Error("CloneProgram shares body")
	}
	if c.Name != p.Name || len(c.Outputs) != len(p.Outputs) {
		t.Error("metadata not carried over")
	}
}
