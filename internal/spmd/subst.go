package spmd

import "procdecomp/internal/expr"

// SubstVExpr substitutes a symbolic variable in the integer parts of a value
// expression.
func SubstVExpr(v VExpr, name string, val expr.Expr) VExpr {
	return substV(v, name, val)
}

// VExprEqual reports structural equality of value expressions (via their
// canonical rendering).
func VExprEqual(a, b VExpr) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	return FormatV(a) == FormatV(b)
}
