// Package spmd defines the SPMD intermediate representation the
// process-decomposition compiler targets.
//
// A Program is the code for one process (or, for run-time resolution, the
// single "generic" program every process executes, parameterized by the
// special variable "me" — the paper's mynode()). Statements manipulate three
// kinds of state: write-once I-structure arrays (allocated per-process with
// their local shape), write-once scalar I-variables, and mutable compiler
// temporaries and message buffers. Communication is explicit: element sends
// and receives (the paper's csend/crecv), block transfers for vectorized
// messages, and the coerce primitive of run-time resolution (§3.1), which
// moves a value from its owner to the process that needs it.
//
// Index, bound, and processor expressions are symbolic integer expressions
// (internal/expr), which is what lets compile-time resolution and the §4
// transformations reason about them; data values are VExprs evaluated over
// the process's scalar environment.
package spmd

import (
	"procdecomp/internal/dist"
	"procdecomp/internal/expr"
	"procdecomp/internal/lang"
)

// Me is the reserved variable bound to the executing process's number.
const Me = "me"

// MeExpr returns the symbolic reference to the executing process.
func MeExpr() expr.Expr { return expr.V(Me) }

// Tag identifies a communication site; all messages of one syntactic
// send/recv/coerce site share a tag, and FIFO ordering per (source,
// destination, tag) does the rest.
type Tag = int64

// VExpr is a data-value expression evaluated at run time.
type VExpr interface{ vexpr() }

// VConst is a literal value.
type VConst struct{ F float64 }

// VVar reads a scalar variable, temporary, or I-variable.
type VVar struct{ Name string }

// VInt injects a symbolic integer expression (loop variables, processor
// arithmetic) as a data value.
type VInt struct{ X expr.Expr }

// VBin applies a binary operator. Comparisons yield 1 or 0; "and"/"or" are
// strict.
type VBin struct {
	Op   lang.Op
	L, R VExpr
}

// VUn applies a unary operator (negation or not).
type VUn struct {
	Op lang.Op
	X  VExpr
}

func (VConst) vexpr() {}
func (VVar) vexpr()   {}
func (VInt) vexpr()   {}
func (VBin) vexpr()   {}
func (VUn) vexpr()    {}

// Stmt is one IR statement.
type Stmt interface{ stmt() }

// Alloc allocates the local part of an I-structure array; Shape is the local
// allocation (the paper's alloc function applied by the compiler).
type Alloc struct {
	Array string
	Shape []expr.Expr
}

// AllocBuf allocates a mutable message buffer of the given size (1-based
// indexing, like the paper's oldvalues/snewvalues/rnewvalues vectors).
type AllocBuf struct {
	Buf  string
	Size expr.Expr
}

// AssignVar sets a mutable compiler temporary.
type AssignVar struct {
	Name string
	Val  VExpr
}

// AssignIVar writes a program-level scalar I-variable (write-once).
type AssignIVar struct {
	Name string
	Val  VExpr
}

// ARead loads a local I-structure element into a temporary. Idx is the LOCAL
// index (the compiler has already applied the mapping's local function).
type ARead struct {
	Dst   string
	Array string
	Idx   []expr.Expr
}

// AWrite stores into a local I-structure element (local index).
type AWrite struct {
	Array string
	Idx   []expr.Expr
	Val   VExpr
}

// BufRead loads buffer element Idx into a temporary.
type BufRead struct {
	Dst string
	Buf string
	Idx expr.Expr
}

// BufWrite stores into a buffer element.
type BufWrite struct {
	Buf string
	Idx expr.Expr
	Val VExpr
}

// Send transmits one value to process Dst.
type Send struct {
	Dst expr.Expr
	Tag Tag
	Val VExpr
}

// Recv receives one value from process Src into a temporary.
type Recv struct {
	Src expr.Expr
	Tag Tag
	Dst string
}

// SendBuf transmits buffer elements Lo..Hi (inclusive) in one message.
type SendBuf struct {
	Dst    expr.Expr
	Tag    Tag
	Buf    string
	Lo, Hi expr.Expr
}

// RecvBuf receives one message into buffer elements Lo..Hi (inclusive).
type RecvBuf struct {
	Src    expr.Expr
	Tag    Tag
	Buf    string
	Lo, Hi expr.Expr
}

// Coerce is run-time resolution's value-moving primitive (§3.1): the value
// of a scalar I-variable or array element travels from its owner to the
// process that needs it. When owner and needer coincide (or the data is
// replicated), it is just a read. Every process executes the Coerce; each
// plays its role.
type Coerce struct {
	Dst string // temporary defined on the needing process
	// Source: either a scalar I-variable (Array == "") or an array element
	// with its LOCAL index (meaningful on the owner).
	Array string
	Idx   []expr.Expr
	Var   string
	// Owner is the owning process (ignored when OwnerAll); Needer is the
	// process that needs the value (ignored when NeederAll, meaning every
	// process needs it — the owner broadcasts).
	Owner     expr.Expr
	OwnerAll  bool
	Needer    expr.Expr
	NeederAll bool
	Tag       Tag
}

// For is a counted loop with inclusive upper bound and positive step.
type For struct {
	Var          string
	Lo, Hi, Step expr.Expr
	Body         []Stmt
}

// Guard executes Body only on process Proc — run-time resolution's
// "if P = mynode() then ..." (Fig. 4b).
type Guard struct {
	Proc expr.Expr
	Body []Stmt
}

// IfValue branches on a run-time data value.
type IfValue struct {
	Cond VExpr
	Then []Stmt
	Else []Stmt
}

func (*Alloc) stmt()      {}
func (*AllocBuf) stmt()   {}
func (*AssignVar) stmt()  {}
func (*AssignIVar) stmt() {}
func (*ARead) stmt()      {}
func (*AWrite) stmt()     {}
func (*BufRead) stmt()    {}
func (*BufWrite) stmt()   {}
func (*Send) stmt()       {}
func (*Recv) stmt()       {}
func (*SendBuf) stmt()    {}
func (*RecvBuf) stmt()    {}
func (*Coerce) stmt()     {}
func (*For) stmt()        {}
func (*Guard) stmt()      {}
func (*IfValue) stmt()    {}

// ArrayInfo records the global view of a distributed array for result
// gathering and for the transformations.
type ArrayInfo struct {
	Name        string
	Dist        dist.Dist
	GlobalShape []int64
}

// OutVar names a program output: a distributed array (gathered from owners)
// or a scalar I-variable (read from its owner, or any process when
// replicated).
type OutVar struct {
	Name    string
	IsArray bool
	// Dist of a scalar output (owner); arrays use Arrays[Name].Dist.
	ScalarDist dist.Dist
}

// Program is the code for one process, or the generic run-time resolution
// program executed by all processes.
type Program struct {
	Name string
	// Proc is the process this program was specialized for, or -1 for the
	// generic (run-time resolution) program.
	Proc int
	// Params declares input arrays (allocated and filled by the harness
	// before the run) in order.
	Params []ArrayInfo
	// Arrays records every distributed array the program touches, including
	// params and locally allocated ones.
	Arrays map[string]ArrayInfo
	Body   []Stmt
	// Outputs lists the values the program produces.
	Outputs []OutVar
}

// Clone returns a deep copy of the statement list (metadata is shared).
// Transformations clone before rewriting so the untransformed program
// remains usable.
func CloneBody(body []Stmt) []Stmt {
	out := make([]Stmt, len(body))
	for i, s := range body {
		out[i] = cloneStmt(s)
	}
	return out
}

func cloneStmt(s Stmt) Stmt {
	switch s := s.(type) {
	case *Alloc:
		c := *s
		c.Shape = append([]expr.Expr(nil), s.Shape...)
		return &c
	case *AllocBuf:
		c := *s
		return &c
	case *AssignVar:
		c := *s
		return &c
	case *AssignIVar:
		c := *s
		return &c
	case *ARead:
		c := *s
		c.Idx = append([]expr.Expr(nil), s.Idx...)
		return &c
	case *AWrite:
		c := *s
		c.Idx = append([]expr.Expr(nil), s.Idx...)
		return &c
	case *BufRead:
		c := *s
		return &c
	case *BufWrite:
		c := *s
		return &c
	case *Send:
		c := *s
		return &c
	case *Recv:
		c := *s
		return &c
	case *SendBuf:
		c := *s
		return &c
	case *RecvBuf:
		c := *s
		return &c
	case *Coerce:
		c := *s
		c.Idx = append([]expr.Expr(nil), s.Idx...)
		return &c
	case *For:
		c := *s
		c.Body = CloneBody(s.Body)
		return &c
	case *Guard:
		c := *s
		c.Body = CloneBody(s.Body)
		return &c
	case *IfValue:
		c := *s
		c.Then = CloneBody(s.Then)
		c.Else = CloneBody(s.Else)
		return &c
	default:
		panic("spmd: cloneStmt: unknown statement")
	}
}

// CloneProgram deep-copies a program's body (metadata shared).
func (p *Program) CloneProgram() *Program {
	c := *p
	c.Body = CloneBody(p.Body)
	return &c
}

// SubstBody substitutes a symbolic variable (typically Me) by a constant in
// every integer expression of the body, in place. Used when specializing the
// generic program for one process.
func SubstBody(body []Stmt, name string, val expr.Expr) {
	for _, s := range body {
		substStmt(s, name, val)
	}
}

func substIdx(idx []expr.Expr, name string, val expr.Expr) {
	for i := range idx {
		idx[i] = idx[i].Subst(name, val)
	}
}

func substV(v VExpr, name string, val expr.Expr) VExpr {
	switch v := v.(type) {
	case VInt:
		return VInt{X: v.X.Subst(name, val)}
	case VBin:
		return VBin{Op: v.Op, L: substV(v.L, name, val), R: substV(v.R, name, val)}
	case VUn:
		return VUn{Op: v.Op, X: substV(v.X, name, val)}
	default:
		return v
	}
}

func substStmt(s Stmt, name string, val expr.Expr) {
	switch s := s.(type) {
	case *Alloc:
		substIdx(s.Shape, name, val)
	case *AllocBuf:
		s.Size = s.Size.Subst(name, val)
	case *AssignVar:
		s.Val = substV(s.Val, name, val)
	case *AssignIVar:
		s.Val = substV(s.Val, name, val)
	case *ARead:
		substIdx(s.Idx, name, val)
	case *AWrite:
		substIdx(s.Idx, name, val)
		s.Val = substV(s.Val, name, val)
	case *BufRead:
		s.Idx = s.Idx.Subst(name, val)
	case *BufWrite:
		s.Idx = s.Idx.Subst(name, val)
		s.Val = substV(s.Val, name, val)
	case *Send:
		s.Dst = s.Dst.Subst(name, val)
		s.Val = substV(s.Val, name, val)
	case *Recv:
		s.Src = s.Src.Subst(name, val)
	case *SendBuf:
		s.Dst = s.Dst.Subst(name, val)
		s.Lo = s.Lo.Subst(name, val)
		s.Hi = s.Hi.Subst(name, val)
	case *RecvBuf:
		s.Src = s.Src.Subst(name, val)
		s.Lo = s.Lo.Subst(name, val)
		s.Hi = s.Hi.Subst(name, val)
	case *Coerce:
		substIdx(s.Idx, name, val)
		if !s.OwnerAll {
			s.Owner = s.Owner.Subst(name, val)
		}
		if !s.NeederAll {
			s.Needer = s.Needer.Subst(name, val)
		}
	case *For:
		s.Lo = s.Lo.Subst(name, val)
		s.Hi = s.Hi.Subst(name, val)
		s.Step = s.Step.Subst(name, val)
		SubstBody(s.Body, name, val)
	case *Guard:
		s.Proc = s.Proc.Subst(name, val)
		SubstBody(s.Body, name, val)
	case *IfValue:
		s.Cond = substV(s.Cond, name, val)
		SubstBody(s.Then, name, val)
		SubstBody(s.Else, name, val)
	}
}
