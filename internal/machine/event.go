package machine

import (
	"errors"
	"fmt"

	"procdecomp/internal/trace"
)

// The discrete-event engine.
//
// The goroutine engine (the original core, kept behind Config.Engine) lets
// every process goroutine run freely and serializes them with a mutex and
// condition-variable broadcasts. That is semantically fine — the simulated
// clocks are order-independent — but each message wakes every blocked
// goroutine (a thundering herd that is O(procs) per event), so wall-clock
// cost grows quadratically with machine size and a pdmap search pays real
// scheduler overhead for every candidate run.
//
// This engine replaces the free-running goroutines with a single-threaded
// discrete-event loop in virtual time:
//
//   - The event queue is a binary min-heap of runnable processes keyed by
//     (clock, id) — process ids break virtual-time ties, which is the
//     determinism rule. Each heap entry means "this process's next step is
//     an event at its current virtual time".
//   - Exactly one process executes at any instant. A process runs until its
//     next step cannot proceed — a receive on an empty queue, a send on a
//     full channel, or (under Placement) an action that must wait its
//     conservative-admission turn — then parks and the loop pops the
//     minimal (clock, id) process and resumes it.
//   - Wake-ups are exact, not broadcast: the process whose step creates the
//     awaited state (an enqueue for a parked receiver, a freed slot for a
//     capacity-parked sender, a lost message or crash for a watchdogged
//     receiver) moves exactly the affected process back into the heap.
//
// Processes keep the blocking Proc API (Compute/Send/Recv), so their stacks
// have to live somewhere: each process still owns a goroutine, but it is a
// coroutine, not a thread of execution — the loop and the processes hand a
// single execution token around over unbuffered-in-effect channels, so no
// two of them are ever runnable at once and no event-path state needs a
// lock. The happens-before edges of the token handoffs are what make the
// engine race-detector clean.
//
// Equivalence with the goroutine engine is exact, not approximate, and is
// enforced by the differential harness in internal/bench:
//
//   - Direct mode: arrival stamps are computed at send time and each
//     (src, tag) FIFO has a single sender, so any execution order that
//     respects message availability yields bit-identical clocks, traces,
//     and counters. The heap order is one such order.
//   - Multiplexed mode: the goroutine engine admits the active process with
//     the minimal (clock, id) key; parking on that exact rule reproduces the
//     same admission sequence, and busyCore is shared code.
//   - The reliable transport (transmitLocked), watchdog diagnosis
//     (unsatisfiableLocked), backpressure arithmetic, and deadlock report
//     (deadlockErrorLocked) are the same functions in both engines; their
//     "Locked" suffix is satisfied here by the execution token.

// Engine selects the simulation core (Config.Engine).
type Engine uint8

const (
	// EngineEvent is the single-threaded discrete-event loop — the default.
	EngineEvent Engine = iota
	// EngineGoroutine is the original goroutines+condvar machine, retained
	// as the differential-testing and benchmark baseline.
	EngineGoroutine
)

func (e Engine) String() string {
	switch e {
	case EngineEvent:
		return "event"
	case EngineGoroutine:
		return "goroutine"
	}
	return fmt.Sprintf("Engine(%d)", int(e))
}

type evState uint8

const (
	evReady   evState = iota // in the run heap, waiting to be resumed
	evRunning                // holds the execution token
	evWaiting                // parked on a condition recorded in m.waiting
	evDone                   // body returned or process unwound
)

// evLoop is the event engine's state. Everything here is touched only by
// whichever goroutine holds the execution token (the loop or exactly one
// process), so none of it is locked.
type evLoop struct {
	m *Machine
	// resume[p] carries the token to process p; false means "unwind now".
	resume []chan bool
	// yield carries the token back to the loop; every resume is answered by
	// exactly one yield (a park or a termination).
	yield chan struct{}
	state []evState
	heap  []int32 // runnable pids, min-heap by (clock, id)
	live  int     // processes not yet evDone
}

func newEvLoop(m *Machine) *evLoop {
	ev := &evLoop{
		m:      m,
		resume: make([]chan bool, m.cfg.Procs),
		yield:  make(chan struct{}, 1),
		state:  make([]evState, m.cfg.Procs),
		heap:   make([]int32, 0, m.cfg.Procs),
	}
	for i := range ev.resume {
		ev.resume[i] = make(chan bool, 1)
	}
	return ev
}

// less orders heap entries by (clock, id) — the engine's tie-breaking rule.
func (ev *evLoop) less(a, b int32) bool {
	ca, cb := ev.m.procs[a].clock, ev.m.procs[b].clock
	return ca < cb || (ca == cb && a < b)
}

func (ev *evLoop) push(pid int32) {
	h := append(ev.heap, pid)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !ev.less(h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	ev.heap = h
}

func (ev *evLoop) pop() int32 {
	h := ev.heap
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h = h[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < len(h) && ev.less(h[l], h[min]) {
			min = l
		}
		if r < len(h) && ev.less(h[r], h[min]) {
			min = r
		}
		if min == i {
			break
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
	ev.heap = h
	return top
}

// ready moves a parked process into the run heap. Callers have already
// checked the process is evWaiting and its awaited condition now holds; its
// m.waiting entry stays until the process itself deletes it on resume, which
// is why every wake predicate also checks the state.
func (ev *evLoop) ready(pid int) {
	ev.state[pid] = evReady
	ev.push(int32(pid))
}

// park hands the token back to the loop and blocks until resumed. The caller
// has already recorded why it is parked (state + m.waiting, or a heap entry
// for a conservative-admission wait). A false resume means the run is being
// torn down: unwind without touching any clocks.
func (ev *evLoop) park(p *Proc) {
	ev.yield <- struct{}{}
	if !<-ev.resume[p.id] {
		panic(errAborted)
	}
}

// main is the body wrapper of one process coroutine. Its recover
// classification is the same as the goroutine engine's Run defer; the one
// addition is the crash wake-up, which replaces the old engine's broadcast:
// receivers blocked on the crashed process must learn their receive became
// unsatisfiable.
func (ev *evLoop) main(p *Proc, body func(p *Proc)) {
	defer func() {
		m := ev.m
		if r := recover(); r != nil {
			if err, ok := r.(error); ok && errors.Is(err, errAborted) {
				// Secondary abort; keep the original failure.
			} else if cs, ok := r.(crashStop); ok {
				// A fault-scheduled crash-stop: the process dies silently,
				// like a failed node. The run is not aborted — peers that
				// depended on it surface watchdog or deadlock errors.
				m.crashed[cs.proc] = true
				ev.wakeCrashed(cs.proc)
			} else if m.failed == nil {
				m.failed = fmt.Errorf("machine: process %d failed: %v", p.id, r)
			}
		}
		ev.state[p.id] = evDone
		ev.live--
		ev.yield <- struct{}{}
	}()
	if !<-ev.resume[p.id] {
		panic(errAborted)
	}
	body(p)
}

// runEvent is Machine.Run on the event engine: the event loop itself.
func (m *Machine) runEvent(body func(p *Proc)) error {
	m.mu.Lock()
	m.running = true
	m.mu.Unlock()

	ev := m.ev
	ev.live = m.cfg.Procs
	for _, p := range m.procs {
		ev.state[p.id] = evReady
		ev.push(int32(p.id))
		go ev.main(p, body)
	}
	beatEvery := m.cfg.HeartbeatEvery
	if beatEvery <= 0 {
		beatEvery = 4096
	}
	dispatches := 0
	for ev.live > 0 {
		if len(ev.heap) == 0 {
			// Quiescence: every live process is parked in m.waiting. Diagnose
			// (watchdog first, deadlock otherwise — the same order as the
			// goroutine engine's checkDeadlockLocked) and tear down.
			if m.failed == nil && !ev.quiesce() {
				continue // a defensive wake found runnable work
			}
			ev.abortWaiting()
			continue
		}
		pid := ev.pop()
		// The popped process's clock is the minimum over runnable work, so
		// it is the loop's current virtual time; report it periodically.
		if beat := m.cfg.Heartbeat; beat != nil {
			if dispatches++; dispatches >= beatEvery {
				dispatches = 0
				beat(m.procs[pid].clock)
			}
		}
		ev.state[pid] = evRunning
		ev.resume[pid] <- true
		<-ev.yield
	}

	m.mu.Lock()
	m.running = false
	m.mu.Unlock()
	return m.failed
}

// quiesce diagnoses a run where no process can step: prefer the watchdog
// (scanning in process order, so the reported receive is deterministic),
// fall back to the deadlock report. It returns false — without setting a
// failure — if some parked process turns out to be satisfiable after all;
// that cannot happen if the wake rules are complete, but handling it keeps
// the engine live rather than deadlocking the host on a missed wake.
func (ev *evLoop) quiesce() bool {
	m := ev.m
	for pid := 0; pid < m.cfg.Procs; pid++ {
		if ev.state[pid] != evWaiting {
			continue
		}
		wi := m.waiting[pid]
		if wi.send {
			if uint64(len(m.links[pid][wi.dst].freed)) > wi.idx {
				ev.ready(pid)
				return false
			}
		} else if len(m.boxes[pid][wi.k]) > 0 {
			ev.ready(pid)
			return false
		}
	}
	for pid := 0; pid < m.cfg.Procs; pid++ {
		if ev.state[pid] != evWaiting {
			continue
		}
		wi := m.waiting[pid]
		if wi.send {
			if reason := m.sendUnsatisfiableLocked(wi.dst); reason != "" {
				m.failed = &SendTimeoutError{Proc: pid, Dst: wi.dst,
					Clock: m.procs[pid].clock, Reason: reason}
				return true
			}
			continue
		}
		if reason := m.unsatisfiableLocked(pid, wi.k); reason != "" {
			m.failed = &RecvTimeoutError{Proc: pid, Src: wi.k.src, Tag: wi.k.tag,
				Clock: m.procs[pid].clock, Reason: reason}
			return true
		}
	}
	m.failed = m.deadlockErrorLocked()
	return true
}

// abortWaiting unwinds every parked process after a failure: each gets a
// false resume, panics errAborted up its own stack (running its defers), and
// yields back from its termination. Ready processes need no special
// handling — the loop keeps resuming them and they die at their next machine
// action (or finish cleanly, as in the goroutine engine).
func (ev *evLoop) abortWaiting() {
	for pid := range ev.state {
		if ev.state[pid] != evWaiting {
			continue
		}
		ev.state[pid] = evRunning
		ev.resume[pid] <- false
		<-ev.yield
	}
}

// Exact wake-ups. Each is called by the running process at the moment it
// creates the awaited state; the predicates mirror the conditions the woken
// process will re-check, so a wake is never wasted (the one exception is a
// capacity wake, where the waiter re-derives its slot index).

// wakeRecv readies dst if it is parked receiving exactly k.
func (ev *evLoop) wakeRecv(dst int, k key) {
	if ev.state[dst] != evWaiting {
		return
	}
	if wi, ok := ev.m.waiting[dst]; ok && !wi.send && wi.k == k {
		ev.ready(dst)
	}
}

// wakeLoss readies dst if it is parked receiving from src on any tag: a
// lost-forever message killed the src→dst link, so the watchdog must run at
// the receiver (the goroutine engine broadcast here).
func (ev *evLoop) wakeLoss(dst, src int) {
	if ev.state[dst] != evWaiting {
		return
	}
	if wi, ok := ev.m.waiting[dst]; ok && !wi.send && wi.k.src == src {
		ev.ready(dst)
	}
}

// wakeCap readies src if it is parked sending to dst and its awaited slot
// has been freed.
func (ev *evLoop) wakeCap(src, dst int) {
	if ev.state[src] != evWaiting {
		return
	}
	m := ev.m
	if wi, ok := m.waiting[src]; ok && wi.send && wi.dst == dst &&
		uint64(len(m.links[src][dst].freed)) > wi.idx {
		ev.ready(src)
	}
}

// wakeCrashed readies every process parked on the crashed process — blocked
// receiving from it, or capacity-blocked sending to it — in pid order; each
// will fail its watchdog check when it runs.
func (ev *evLoop) wakeCrashed(crashed int) {
	m := ev.m
	for pid := 0; pid < m.cfg.Procs; pid++ {
		if ev.state[pid] != evWaiting {
			continue
		}
		wi, ok := m.waiting[pid]
		if !ok {
			continue
		}
		if (!wi.send && wi.k.src == crashed) || (wi.send && wi.dst == crashed) {
			ev.ready(pid)
		}
	}
}

// admit parks p until it holds the minimal (clock, id) key among runnable
// processes — the event engine's half of the conservative admission rule
// used under Placement (the goroutine engine's acquireLocked). Processes
// parked in m.waiting are not runnable and do not gate admission, exactly as
// muxWaiting processes do not in myTurnLocked.
func (p *Proc) admit() {
	ev := p.m.ev
	for {
		if p.m.failed != nil {
			panic(errAborted)
		}
		if len(ev.heap) == 0 || !ev.less(ev.heap[0], int32(p.id)) {
			return
		}
		ev.state[p.id] = evReady
		ev.push(int32(p.id))
		ev.park(p)
	}
}

// evSend is Proc.Send on the event engine (direct mode). The virtual-time
// arithmetic is copied line for line from Send/faultySend; only the
// synchronization differs (exact wakes instead of mutex+broadcast).
func (p *Proc) evSend(dst int, tag int64, vals []Value) {
	m := p.m
	cfg := &m.cfg
	if m.faultive() {
		if m.failed != nil {
			panic(errAborted)
		}
		p.evCapWait(dst)
	}
	p.msgSeq++
	over := cfg.SendStartup + Cost(len(vals))*cfg.PerValue
	start := p.clock
	p.clock += over
	p.comm += over
	if t := cfg.Tracer; t != nil {
		t.Emit(trace.Event{Proc: p.id, Kind: trace.KindSend, Start: start, End: p.clock,
			Peer: dst, Tag: tag, Values: len(vals), Seq: p.msgSeq})
	}
	arrive, ok := p.clock+cfg.Latency, true
	if cfg.Faults != nil {
		arrive, ok = m.transmitLocked(p, dst, tag, len(vals), p.clock)
	}
	if m.failed != nil {
		panic(errAborted)
	}
	m.msgs++
	m.vals += int64(len(vals))
	if !ok {
		// Lost forever: nothing arrives, but a receiver blocked on this link
		// must wake and run its watchdog check.
		m.ev.wakeLoss(dst, p.id)
		return
	}
	k := key{src: p.id, tag: tag}
	m.boxes[dst][k] = append(m.boxes[dst][k],
		message{vals: append([]Value(nil), vals...), arrive: arrive, seq: p.msgSeq})
	if m.faultive() {
		m.links[p.id][dst].sent++
	}
	m.ev.wakeRecv(dst, k)
}

// evCapWait is capWaitLocked on the event engine: park until the awaited
// slot frees, then adopt its virtual time.
func (p *Proc) evCapWait(dst int) {
	m := p.m
	capN := uint64(m.cfg.MailboxCap)
	if capN == 0 {
		return
	}
	ls := &m.links[p.id][dst]
	if ls.sent < capN {
		return
	}
	idx := ls.sent - capN
	ev := m.ev
	for uint64(len(ls.freed)) <= idx {
		if m.failed != nil {
			panic(errAborted)
		}
		// The send watchdog: a slot that can be proven never to free (the
		// receiver crash-stopped) fails now with a typed error instead of
		// surfacing as a deadlock at quiescence.
		if reason := m.sendUnsatisfiableLocked(dst); reason != "" {
			m.failed = &SendTimeoutError{Proc: p.id, Dst: dst, Clock: p.clock, Reason: reason}
			panic(errAborted)
		}
		m.waiting[p.id] = waitInfo{send: true, dst: dst, idx: idx}
		ev.state[p.id] = evWaiting
		ev.park(p)
		delete(m.waiting, p.id)
	}
	if freeAt := ls.freed[idx]; freeAt > p.clock {
		if t := m.cfg.Tracer; t != nil {
			t.Emit(trace.Event{Proc: p.id, Kind: trace.KindBlocked, Start: p.clock, End: freeAt, Peer: dst})
		}
		p.idle += freeAt - p.clock
		p.clock = freeAt
	}
}

// evRecv is Proc.Recv on the event engine (direct mode).
func (p *Proc) evRecv(src int, tag int64) []Value {
	m := p.m
	ev := m.ev
	k := key{src: src, tag: tag}
	for len(m.boxes[p.id][k]) == 0 {
		if m.failed != nil {
			panic(errAborted)
		}
		// The watchdog: a receive that can be proven unsatisfiable fails
		// now, at the receiver's virtual time.
		if reason := m.unsatisfiableLocked(p.id, k); reason != "" {
			m.failed = &RecvTimeoutError{Proc: p.id, Src: src, Tag: tag, Clock: p.clock, Reason: reason}
			panic(errAborted)
		}
		m.waiting[p.id] = waitInfo{k: k}
		ev.state[p.id] = evWaiting
		ev.park(p)
		delete(m.waiting, p.id)
	}
	q := m.boxes[p.id][k]
	msg := q[0]
	if len(q) == 1 {
		delete(m.boxes[p.id], k)
	} else {
		m.boxes[p.id][k] = q[1:]
	}
	vals := p.finishRecv(msg, src, tag)
	if m.cfg.MailboxCap > 0 {
		// Free the channel slot at the receiver's post-overhead clock and
		// wake a sender parked on it.
		m.links[src][p.id].freed = append(m.links[src][p.id].freed, p.clock)
		ev.wakeCap(src, p.id)
	}
	return vals
}

// evMuxCompute is Proc.Compute under Placement on the event engine.
func (p *Proc) evMuxCompute(c Cost) {
	p.admit()
	m := p.m
	m.sched.busyCore(p, c)
	p.compute += c
	if t := m.cfg.Tracer; t != nil {
		t.Emit(trace.Event{Proc: p.id, Kind: trace.KindCompute, Start: p.clock - c, End: p.clock, Peer: -1})
	}
}

// evMuxSend is Proc.Send under Placement on the event engine.
func (p *Proc) evMuxSend(dst int, tag int64, vals []Value) {
	m := p.m
	cfg := &m.cfg
	if cfg.MailboxCap > 0 {
		p.evMuxCapWait(dst)
	} else {
		p.admit()
	}
	p.msgSeq++
	over := cfg.SendStartup + Cost(len(vals))*cfg.PerValue
	m.sched.busyCore(p, over)
	p.comm += over
	if t := cfg.Tracer; t != nil {
		t.Emit(trace.Event{Proc: p.id, Kind: trace.KindSend, Start: p.clock - over, End: p.clock,
			Peer: dst, Tag: tag, Values: len(vals), Seq: p.msgSeq})
	}
	arrive, ok := p.clock+cfg.Latency, true
	if cfg.Faults != nil {
		arrive, ok = m.transmitLocked(p, dst, tag, len(vals), p.clock)
	}
	m.msgs++
	m.vals += int64(len(vals))
	if !ok {
		m.ev.wakeLoss(dst, p.id)
		return
	}
	k := key{src: p.id, tag: tag}
	m.boxes[dst][k] = append(m.boxes[dst][k],
		message{vals: append([]Value(nil), vals...), arrive: arrive, seq: p.msgSeq})
	if m.faultive() {
		m.links[p.id][dst].sent++
	}
	// The goroutine engine reactivates a receiver parked on exactly this
	// message atomically with the send; the exact wake is the same rule.
	m.ev.wakeRecv(dst, k)
}

// evMuxCapWait is muxCapWaitLocked on the event engine: admission and a free
// slot are acquired together, re-admitting after every park.
func (p *Proc) evMuxCapWait(dst int) {
	m := p.m
	ev := m.ev
	capN := uint64(m.cfg.MailboxCap)
	ls := &m.links[p.id][dst]
	for {
		p.admit()
		if ls.sent < capN {
			return
		}
		idx := ls.sent - capN
		if uint64(len(ls.freed)) > idx {
			if freeAt := ls.freed[idx]; freeAt > p.clock {
				if t := m.cfg.Tracer; t != nil {
					t.Emit(trace.Event{Proc: p.id, Kind: trace.KindBlocked, Start: p.clock, End: freeAt, Peer: dst})
				}
				p.idle += freeAt - p.clock
				p.clock = freeAt
			}
			return
		}
		if reason := m.sendUnsatisfiableLocked(dst); reason != "" {
			m.failed = &SendTimeoutError{Proc: p.id, Dst: dst, Clock: p.clock, Reason: reason}
			panic(errAborted)
		}
		m.waiting[p.id] = waitInfo{send: true, dst: dst, idx: idx}
		ev.state[p.id] = evWaiting
		ev.park(p)
		delete(m.waiting, p.id)
	}
}

// evMuxRecv is Proc.Recv under Placement on the event engine.
func (p *Proc) evMuxRecv(src int, tag int64) []Value {
	m := p.m
	cfg := &m.cfg
	ev := m.ev
	k := key{src: src, tag: tag}
	for {
		p.admit()
		if len(m.boxes[p.id][k]) > 0 {
			break
		}
		if reason := m.unsatisfiableLocked(p.id, k); reason != "" {
			m.failed = &RecvTimeoutError{Proc: p.id, Src: src, Tag: tag, Clock: p.clock, Reason: reason}
			panic(errAborted)
		}
		m.waiting[p.id] = waitInfo{k: k}
		ev.state[p.id] = evWaiting
		ev.park(p)
		delete(m.waiting, p.id)
	}
	q := m.boxes[p.id][k]
	msg := q[0]
	if len(q) == 1 {
		delete(m.boxes[p.id], k)
	} else {
		m.boxes[p.id][k] = q[1:]
	}
	if msg.arrive > p.clock {
		if t := cfg.Tracer; t != nil {
			t.Emit(trace.Event{Proc: p.id, Kind: trace.KindIdle, Start: p.clock, End: msg.arrive,
				Peer: src, Tag: tag, Seq: msg.seq, Arrive: msg.arrive})
		}
		p.idle += msg.arrive - p.clock
		p.clock = msg.arrive // waiting: no CPU charged
	}
	over := cfg.RecvStartup + Cost(len(msg.vals))*cfg.PerValue
	m.sched.busyCore(p, over)
	p.comm += over
	if t := cfg.Tracer; t != nil {
		t.Emit(trace.Event{Proc: p.id, Kind: trace.KindRecv, Start: p.clock - over, End: p.clock,
			Peer: src, Tag: tag, Values: len(msg.vals), Seq: msg.seq, Arrive: msg.arrive})
	}
	if cfg.MailboxCap > 0 {
		m.links[src][p.id].freed = append(m.links[src][p.id].freed, p.clock)
		ev.wakeCap(src, p.id)
	}
	return msg.vals
}
