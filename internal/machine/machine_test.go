package machine

import (
	"errors"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func testConfig(procs int) Config {
	return Config{
		Procs: procs, OpCost: 1, MemCost: 1, LoopCost: 1,
		SendStartup: 100, RecvStartup: 10, PerValue: 2, Latency: 5, ValueBytes: 4,
	}
}

// mustStats fetches Stats after Run has returned, failing the test on error.
func mustStats(t *testing.T, m *Machine) Stats {
	t.Helper()
	st, err := m.Stats()
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestPingTiming(t *testing.T) {
	m := New(testConfig(2))
	var recvClock Cost
	err := m.Run(func(p *Proc) {
		switch p.ID() {
		case 0:
			p.Compute(50)
			p.Send(1, 7, 3.5)
		case 1:
			v := p.Recv1(0, 7)
			if v != 3.5 {
				t.Errorf("got %v, want 3.5", v)
			}
			recvClock = p.Clock()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// Sender: 50 compute + 100 startup + 2 per-value = 152; arrival 152+5=157.
	// Receiver idle until 157, then 10 + 2 = 169.
	if recvClock != 169 {
		t.Errorf("receiver clock = %d, want 169", recvClock)
	}
	st := mustStats(t, m)
	if st.Messages != 1 || st.Values != 1 || st.Bytes != 4 {
		t.Errorf("stats = %+v", st)
	}
	if st.Makespan != 169 {
		t.Errorf("makespan = %d, want 169", st.Makespan)
	}
}

func TestReceiverNotDelayedWhenMessageEarly(t *testing.T) {
	m := New(testConfig(2))
	var recvClock Cost
	err := m.Run(func(p *Proc) {
		switch p.ID() {
		case 0:
			p.Send(1, 1, 1) // arrives at 100+2+5 = 107
		case 1:
			p.Compute(500) // already past arrival
			p.Recv(0, 1)
			recvClock = p.Clock()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if recvClock != 512 { // 500 + 10 + 2
		t.Errorf("receiver clock = %d, want 512", recvClock)
	}
}

func TestFIFOPerTag(t *testing.T) {
	m := New(testConfig(2))
	var got []Value
	err := m.Run(func(p *Proc) {
		switch p.ID() {
		case 0:
			for i := 0; i < 10; i++ {
				p.Send(1, 3, Value(i))
			}
		case 1:
			for i := 0; i < 10; i++ {
				got = append(got, p.Recv1(0, 3))
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != Value(i) {
			t.Fatalf("out of order: got[%d] = %v", i, v)
		}
	}
}

func TestTagsIndependent(t *testing.T) {
	m := New(testConfig(2))
	err := m.Run(func(p *Proc) {
		switch p.ID() {
		case 0:
			p.Send(1, 1, 10)
			p.Send(1, 2, 20)
		case 1:
			// Receive in the opposite order of sending.
			if v := p.Recv1(0, 2); v != 20 {
				t.Errorf("tag 2: got %v", v)
			}
			if v := p.Recv1(0, 1); v != 10 {
				t.Errorf("tag 1: got %v", v)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDeadlockDetected(t *testing.T) {
	m := New(testConfig(2))
	err := m.Run(func(p *Proc) {
		// Both wait for a message that never comes.
		p.Recv(1-p.ID(), 99)
	})
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v, want deadlock", err)
	}
}

func TestDeadlockWithFinishedProcs(t *testing.T) {
	m := New(testConfig(3))
	err := m.Run(func(p *Proc) {
		if p.ID() == 0 {
			return // finishes immediately
		}
		p.Recv(0, 1) // waits forever
	})
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v, want deadlock", err)
	}
}

func TestPanicAborts(t *testing.T) {
	m := New(testConfig(2))
	err := m.Run(func(p *Proc) {
		if p.ID() == 0 {
			panic("boom")
		}
		p.Recv(0, 1) // must be woken up rather than hang
	})
	if err == nil || errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v, want process failure", err)
	}
}

func TestRingDeterministicTiming(t *testing.T) {
	// A token passed around a ring: the final clock must be identical across
	// repeated runs (virtual-time determinism regardless of scheduling).
	run := func() Cost {
		m := New(testConfig(8))
		if err := m.Run(func(p *Proc) {
			right := (p.ID() + 1) % 8
			left := (p.ID() + 7) % 8
			if p.ID() == 0 {
				p.Send(right, 0, 1)
				p.Recv(left, 0)
			} else {
				v := p.Recv1(left, 0)
				p.Compute(Cost(p.ID()) * 13)
				p.Send(right, 0, v+1)
			}
		}); err != nil {
			t.Fatal(err)
		}
		return mustStats(t, m).Makespan
	}
	first := run()
	for i := 0; i < 20; i++ {
		if got := run(); got != first {
			t.Fatalf("run %d: makespan %d != %d", i, got, first)
		}
	}
}

func TestManyToOneCounts(t *testing.T) {
	const procs = 9
	m := New(testConfig(procs))
	var total int64
	err := m.Run(func(p *Proc) {
		if p.ID() == 0 {
			for src := 1; src < procs; src++ {
				vals := p.Recv(src, 5)
				atomic.AddInt64(&total, int64(len(vals)))
			}
			return
		}
		p.Send(0, 5, make([]Value, p.ID())...)
	})
	if err != nil {
		t.Fatal(err)
	}
	st := mustStats(t, m)
	if st.Messages != procs-1 {
		t.Errorf("messages = %d, want %d", st.Messages, procs-1)
	}
	want := int64((procs - 1) * procs / 2)
	if st.Values != want || total != want {
		t.Errorf("values = %d (recv %d), want %d", st.Values, total, want)
	}
}

func TestSendOutOfRangePanics(t *testing.T) {
	m := New(testConfig(2))
	err := m.Run(func(p *Proc) {
		if p.ID() == 0 {
			p.Send(5, 0, 1)
		}
	})
	if err == nil {
		t.Fatal("expected error for out-of-range send")
	}
}

func TestMakespanIsMaxClock(t *testing.T) {
	m := New(testConfig(4))
	if err := m.Run(func(p *Proc) {
		p.Compute(Cost(p.ID()) * 1000)
	}); err != nil {
		t.Fatal(err)
	}
	st := mustStats(t, m)
	if st.Makespan != 3000 {
		t.Errorf("makespan = %d, want 3000", st.Makespan)
	}
	for i, c := range st.ProcTimes {
		if c != Cost(i)*1000 {
			t.Errorf("proc %d time = %d", i, c)
		}
	}
}

// Property: a message's receive completion time is never before
// send-initiation + startup + latency, and cost accounting is additive.
func TestMessageCostLowerBound(t *testing.T) {
	f := func(work uint16, nvals uint8) bool {
		n := int(nvals%32) + 1
		m := New(testConfig(2))
		var senderDone, recvDone Cost
		err := m.Run(func(p *Proc) {
			if p.ID() == 0 {
				p.Compute(Cost(work))
				p.Send(1, 0, make([]Value, n)...)
				senderDone = p.Clock()
			} else {
				p.Recv(0, 0)
				recvDone = p.Clock()
			}
		})
		if err != nil {
			return false
		}
		cfg := testConfig(2)
		wantSender := Cost(work) + cfg.SendStartup + Cost(n)*cfg.PerValue
		wantRecv := wantSender + cfg.Latency + cfg.RecvStartup + Cost(n)*cfg.PerValue
		return senderDone == wantSender && recvDone == wantRecv
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig(16)
	if cfg.Procs != 16 || cfg.SendStartup < 100*cfg.OpCost {
		t.Errorf("default config not iPSC/2-flavoured: %+v", cfg)
	}
	m := New(cfg)
	if m.Config().Procs != 16 {
		t.Error("Config() mismatch")
	}
}

func TestNewPanicsOnBadProcs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(Config{Procs: 0})
}

func TestSharedMemoryConfig(t *testing.T) {
	mp := DefaultConfig(8)
	shm := SharedMemoryConfig(8)
	if shm.Procs != 8 {
		t.Error("procs not carried")
	}
	// §1's regimes: hundreds of cycles per message vs tens.
	if mp.SendStartup < 100 || shm.SendStartup > 50 {
		t.Errorf("start-ups do not reflect the two machine classes: %d vs %d",
			mp.SendStartup, shm.SendStartup)
	}
	if shm.SendStartup+shm.RecvStartup < 10 {
		t.Error("remote access should still cost tens of cycles on shared memory")
	}
}

// The time partition must account for every cycle: compute + comm + idle
// equals the final clock on every process, in every run.
func TestBreakdownAccountsEveryCycle(t *testing.T) {
	m := New(testConfig(4))
	if err := m.Run(func(p *Proc) {
		right := (p.ID() + 1) % 4
		left := (p.ID() + 3) % 4
		p.Compute(Cost(p.ID()*50 + 10))
		p.Send(right, 1, 1, 2, 3)
		p.Recv(left, 1)
		p.Ops(7)
		p.Mem(3)
		p.LoopStep()
	}); err != nil {
		t.Fatal(err)
	}
	st := mustStats(t, m)
	for i, b := range st.Breakdown {
		if b.Compute+b.Comm+b.Idle != st.ProcTimes[i] {
			t.Errorf("proc %d: %d + %d + %d != clock %d",
				i, b.Compute, b.Comm, b.Idle, st.ProcTimes[i])
		}
	}
	if st.MeanUtilization() <= 0 || st.MeanUtilization() > 1 {
		t.Errorf("mean utilization = %v", st.MeanUtilization())
	}
}

// Stats must refuse to report mid-run: the per-process clocks are written
// lock-free by the process goroutines, so a concurrent snapshot would be a
// data race returning torn values. (This call used to panic; it now returns
// the typed ErrRunInProgress, and `go test -race` keeps the guard honest.)
func TestStatsDuringRunReturnsError(t *testing.T) {
	for _, engine := range []Engine{EngineEvent, EngineGoroutine} {
		cfg := testConfig(2)
		cfg.Engine = engine
		m := New(cfg)
		inBody := make(chan struct{})
		release := make(chan struct{})
		done := make(chan error, 1)
		go func() {
			done <- m.Run(func(p *Proc) {
				if p.ID() == 0 {
					close(inBody)
				}
				<-release
				p.Compute(10)
			})
		}()
		<-inBody
		if _, err := m.Stats(); !errors.Is(err, ErrRunInProgress) {
			t.Errorf("%v: Stats during Run: err = %v, want ErrRunInProgress", engine, err)
		}
		close(release)
		if err := <-done; err != nil {
			t.Fatal(err)
		}
		// After Run returns, Stats is safe again.
		if st := mustStats(t, m); st.Makespan != 10 {
			t.Errorf("%v: makespan = %d, want 10", engine, st.Makespan)
		}
	}
}

func TestIdleMeasuresWaiting(t *testing.T) {
	m := New(testConfig(2))
	if err := m.Run(func(p *Proc) {
		if p.ID() == 0 {
			p.Compute(10000)
			p.Send(1, 1, 1)
			return
		}
		p.Recv(0, 1)
	}); err != nil {
		t.Fatal(err)
	}
	b := mustStats(t, m).Breakdown[1]
	if b.Idle < 10000 {
		t.Errorf("receiver idle = %d, want >= 10000", b.Idle)
	}
	if b.Compute != 0 {
		t.Errorf("receiver compute = %d, want 0", b.Compute)
	}
}
