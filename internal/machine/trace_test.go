package machine

import (
	"bytes"
	"encoding/json"
	"testing"

	"procdecomp/internal/trace"
)

func newTestLog() *trace.Log { return trace.New() }

func tracedConfig(procs int) (Config, *trace.Log) {
	cfg := testConfig(procs)
	tr := trace.New()
	cfg.Tracer = tr
	return cfg, tr
}

// The direct path must emit the exact event sequence of a ping: the sender's
// compute and send spans, the receiver's idle wait and recv overhead, with
// the virtual times of TestPingTiming.
func TestTraceDirectPing(t *testing.T) {
	cfg, tr := tracedConfig(2)
	m := New(cfg)
	if err := m.Run(func(p *Proc) {
		switch p.ID() {
		case 0:
			p.Compute(50)
			p.Send(1, 7, 3.5)
		case 1:
			p.Recv1(0, 7)
		}
	}); err != nil {
		t.Fatal(err)
	}

	want0 := []trace.Event{
		{Proc: 0, Kind: trace.KindCompute, Start: 0, End: 50, Peer: -1},
		{Proc: 0, Kind: trace.KindSend, Start: 50, End: 152, Peer: 1, Tag: 7, Values: 1, Seq: 1},
	}
	want1 := []trace.Event{
		{Proc: 1, Kind: trace.KindIdle, Start: 0, End: 157, Peer: 0, Tag: 7, Seq: 1, Arrive: 157},
		{Proc: 1, Kind: trace.KindRecv, Start: 157, End: 169, Peer: 0, Tag: 7, Values: 1, Seq: 1, Arrive: 157},
	}
	for p, want := range [][]trace.Event{want0, want1} {
		got := tr.Events(p)
		if len(got) != len(want) {
			t.Fatalf("proc %d: %d events, want %d: %+v", p, len(got), len(want), got)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("proc %d event %d = %+v, want %+v", p, i, got[i], want[i])
			}
		}
	}
	if err := m.VerifyTrace(); err != nil {
		t.Error(err)
	}
}

// Traced event durations must sum exactly to the Breakdown partition on the
// direct path, for a workload mixing compute, sends, receives, and waits.
func TestTraceReconcilesDirect(t *testing.T) {
	cfg, tr := tracedConfig(4)
	m := New(cfg)
	if err := m.Run(func(p *Proc) {
		right := (p.ID() + 1) % 4
		left := (p.ID() + 3) % 4
		p.Compute(Cost(p.ID()*50 + 10))
		p.Send(right, 1, 1, 2, 3)
		p.Recv(left, 1)
		p.Ops(7)
		p.Mem(3)
		p.LoopStep()
	}); err != nil {
		t.Fatal(err)
	}
	if err := m.VerifyTrace(); err != nil {
		t.Fatal(err)
	}
	st := mustStats(t, m)
	for i, b := range st.Breakdown {
		s := tr.Sums(i)
		if s.Compute != b.Compute || s.Comm != b.Comm || s.Idle+s.Blocked != b.Idle {
			t.Errorf("proc %d: trace %+v != breakdown %+v", i, s, b)
		}
		if s.Total() != st.ProcTimes[i] {
			t.Errorf("proc %d: traced total %d != clock %d", i, s.Total(), st.ProcTimes[i])
		}
	}
}

// Under Placement, time a runnable process spends waiting for its node's CPU
// is a blocked span, charged to the idle account: two co-residents computing
// 1000 cycles each mean the second is blocked for the first's 1000.
func TestTraceMuxBlockedSpan(t *testing.T) {
	cfg, tr := tracedConfig(2)
	cfg.Placement = []int{0, 0}
	m := New(cfg)
	if err := m.Run(func(p *Proc) {
		p.Compute(1000)
	}); err != nil {
		t.Fatal(err)
	}
	if err := m.VerifyTrace(); err != nil {
		t.Fatal(err)
	}
	// The scheduler admits process 0 first (smaller id at equal clocks).
	evs := tr.Events(1)
	if len(evs) != 2 {
		t.Fatalf("proc 1 events = %+v, want blocked+compute", evs)
	}
	if evs[0].Kind != trace.KindBlocked || evs[0].Start != 0 || evs[0].End != 1000 {
		t.Errorf("blocked span = %+v, want [0,1000)", evs[0])
	}
	if evs[1].Kind != trace.KindCompute || evs[1].Start != 1000 || evs[1].End != 2000 {
		t.Errorf("compute span = %+v, want [1000,2000)", evs[1])
	}
	st := mustStats(t, m)
	if st.Breakdown[1].Idle != 1000 {
		t.Errorf("proc 1 idle = %d, want 1000 (CPU wait must be accounted)", st.Breakdown[1].Idle)
	}
}

// The multiplexed path's Breakdown must account every cycle even without a
// tracer: compute + comm + idle == final clock under CPU contention. (The
// CPU-wait gap used to vanish from the partition.)
func TestMuxBreakdownAccountsEveryCycle(t *testing.T) {
	m := New(muxConfig(6, []int{0, 0, 0, 1, 1, 1}))
	if err := m.Run(func(p *Proc) {
		right := (p.ID() + 1) % 6
		left := (p.ID() + 5) % 6
		p.Compute(Cost(17*p.ID() + 23))
		if p.ID()%2 == 0 {
			p.Send(right, 1, 1, 2)
			p.Recv(left, 2)
		} else {
			p.Recv(left, 1)
			p.Send(right, 2, 3)
		}
		p.Compute(100)
	}); err != nil {
		t.Fatal(err)
	}
	st := mustStats(t, m)
	var contended bool
	for i, b := range st.Breakdown {
		if b.Compute+b.Comm+b.Idle != st.ProcTimes[i] {
			t.Errorf("proc %d: %d + %d + %d != clock %d",
				i, b.Compute, b.Comm, b.Idle, st.ProcTimes[i])
		}
		if b.Idle > 0 {
			contended = true
		}
	}
	if !contended {
		t.Error("workload was expected to exhibit CPU contention or message waits")
	}
}

// Traced multiplexed runs reconcile exactly, including blocked spans, and
// stay deterministic across repetitions.
func TestTraceMuxReconcilesDeterministically(t *testing.T) {
	run := func() ([]Cost, *trace.Log) {
		cfg, tr := tracedConfig(6)
		cfg.Placement = []int{0, 1, 0, 1, 0, 1}
		m := New(cfg)
		if err := m.Run(func(p *Proc) {
			right := (p.ID() + 1) % 6
			left := (p.ID() + 5) % 6
			for k := 0; k < 5; k++ {
				p.Compute(Cost(13*p.ID() + 7))
				if p.ID()%2 == 0 {
					p.Send(right, 1, float64(k))
					p.Recv(left, 2)
				} else {
					p.Recv(left, 1)
					p.Send(right, 2, float64(k))
				}
			}
		}); err != nil {
			t.Fatal(err)
		}
		if err := m.VerifyTrace(); err != nil {
			t.Fatal(err)
		}
		return mustStats(t, m).ProcTimes, tr
	}
	clocks, first := run()
	_ = clocks
	for trial := 0; trial < 5; trial++ {
		_, tr := run()
		for p := 0; p < 6; p++ {
			a, b := first.Events(p), tr.Events(p)
			if len(a) != len(b) {
				t.Fatalf("trial %d proc %d: %d events != %d", trial, p, len(b), len(a))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("trial %d proc %d event %d: %+v != %+v", trial, p, i, b[i], a[i])
				}
			}
		}
	}
}

// The trace-side message matrix must agree with the machine's counters.
func TestTraceMatrixMatchesStats(t *testing.T) {
	cfg, tr := tracedConfig(3)
	m := New(cfg)
	if err := m.Run(func(p *Proc) {
		switch p.ID() {
		case 0:
			p.Send(1, 1, 1)
			p.Send(1, 1, 2)
			p.Send(2, 2, 3, 4)
		case 1:
			p.Recv(0, 1)
			p.Recv(0, 1)
		case 2:
			p.Recv(0, 2)
		}
	}); err != nil {
		t.Fatal(err)
	}
	st := mustStats(t, m)
	if tr.Messages() != st.Messages {
		t.Errorf("trace messages %d != stats %d", tr.Messages(), st.Messages)
	}
	mat := tr.MessageMatrix()
	if mat[0][1] != 2 || mat[0][2] != 1 {
		t.Errorf("matrix = %v", mat)
	}
	h := tr.TagHistogram()
	if h[1].Messages != 2 || h[1].Values != 2 || h[2].Messages != 1 || h[2].Values != 2 {
		t.Errorf("histogram = %v", h)
	}
}

// A real run's Chrome export must be valid JSON with one track per process.
func TestTraceChromeExportFromRun(t *testing.T) {
	cfg, tr := tracedConfig(2)
	m := New(cfg)
	if err := m.Run(func(p *Proc) {
		if p.ID() == 0 {
			p.Compute(10)
			p.Send(1, 1, 1)
		} else {
			p.Recv(0, 1)
		}
	}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("invalid trace JSON: %v", err)
	}
	if len(parsed.TraceEvents) == 0 {
		t.Fatal("no events exported")
	}
}

// An untraced machine's VerifyTrace is a no-op, and tracing must not change
// the simulated clocks.
func TestTracingDoesNotPerturbTiming(t *testing.T) {
	body := func(p *Proc) {
		right := (p.ID() + 1) % 4
		left := (p.ID() + 3) % 4
		p.Compute(Cost(p.ID()*31 + 5))
		p.Send(right, 1, 1)
		p.Recv(left, 1)
	}
	plain := New(testConfig(4))
	if err := plain.Run(body); err != nil {
		t.Fatal(err)
	}
	if err := plain.VerifyTrace(); err != nil {
		t.Errorf("untraced VerifyTrace = %v, want nil", err)
	}
	cfg, _ := tracedConfig(4)
	traced := New(cfg)
	if err := traced.Run(body); err != nil {
		t.Fatal(err)
	}
	ps, ts := mustStats(t, plain), mustStats(t, traced)
	if ps.Makespan != ts.Makespan {
		t.Errorf("tracing changed the makespan: %d != %d", ts.Makespan, ps.Makespan)
	}
	for i := range ps.ProcTimes {
		if ps.ProcTimes[i] != ts.ProcTimes[i] {
			t.Errorf("proc %d clock %d != %d", i, ts.ProcTimes[i], ps.ProcTimes[i])
		}
	}
}
