package machine

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"procdecomp/internal/trace"
)

// TestMailboxCapBackpressure: with capacity 1, a fast sender blocks in
// virtual time until the receiver frees a slot, adopting the dequeue's
// virtual time — exact numbers checked end to end, and the blocked spans
// reconcile against the Breakdown.
func TestMailboxCapBackpressure(t *testing.T) {
	log := trace.New()
	cfg := testConfig(2)
	cfg.MailboxCap = 1
	cfg.Tracer = log
	m := New(cfg)
	var got []Value
	err := m.Run(func(p *Proc) {
		switch p.ID() {
		case 0:
			for i := 0; i < 3; i++ {
				p.Send(1, 1, Value(i))
			}
		case 1:
			p.Compute(1000)
			for i := 0; i < 3; i++ {
				got = append(got, p.Recv1(0, 1))
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := []Value{0, 1, 2}; !reflect.DeepEqual(got, want) {
		t.Errorf("received %v, want %v", got, want)
	}
	st := mustStats(t, m)
	// Send 1: 0..102, arrives 107. Send 2 waits for the first dequeue: the
	// receiver computes to 1000, dequeues at 1012; sender blocked 102..1012,
	// sends 1012..1114, arrives 1119. Send 3 waits for the second dequeue at
	// 1131 (receiver idles 1012..1119 then unpacks); sender blocked
	// 1114..1131, sends 1131..1233, arrives 1238; final receive ends 1250.
	if st.Makespan != 1250 {
		t.Errorf("makespan = %d, want 1250", st.Makespan)
	}
	if idle := st.Breakdown[0].Idle; idle != 927 {
		t.Errorf("sender blocked cycles = %d, want 927 (910 + 17)", idle)
	}
	if err := m.VerifyTrace(); err != nil {
		t.Errorf("bounded-mailbox trace does not reconcile: %v", err)
	}
	var blocked uint64
	for _, e := range log.Events(0) {
		if e.Kind == trace.KindBlocked {
			blocked += e.Dur()
			if e.Peer != 1 {
				t.Errorf("blocked span names peer %d, want destination 1", e.Peer)
			}
		}
	}
	if blocked != 927 {
		t.Errorf("traced blocked cycles = %d, want 927", blocked)
	}
}

// TestMailboxCapUnboundedIdentical: capacity 0 must leave the machine
// bit-identical to the seed semantics (sends never block).
func TestMailboxCapUnboundedIdentical(t *testing.T) {
	run := func(capacity int) Stats {
		cfg := testConfig(2)
		cfg.MailboxCap = capacity
		m := New(cfg)
		if err := m.Run(func(p *Proc) {
			switch p.ID() {
			case 0:
				for i := 0; i < 5; i++ {
					p.Send(1, 1, Value(i))
				}
			case 1:
				p.Compute(5000)
				for i := 0; i < 5; i++ {
					p.Recv1(0, 1)
				}
			}
		}); err != nil {
			t.Fatal(err)
		}
		return mustStats(t, m)
	}
	if z, big := run(0), run(100); !reflect.DeepEqual(z, big) {
		t.Errorf("capacity 0 and never-binding capacity differ:\n%+v\n%+v", z, big)
	}
}

// TestMailboxCapDeadlock: two processes that each fill the other's bounded
// channel before receiving deadlock in Send — detected and diagnosed, not
// hung.
func TestMailboxCapDeadlock(t *testing.T) {
	cfg := testConfig(2)
	cfg.MailboxCap = 1
	m := New(cfg)
	err := m.Run(func(p *Proc) {
		other := 1 - p.ID()
		p.Send(other, 0, 1.0)
		p.Send(other, 0, 2.0) // channel full: blocks until the other dequeues
		p.Recv(other, 0)
		p.Recv(other, 0)
	})
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
	var de *DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("err = %T, want *DeadlockError", err)
	}
	if len(de.Blocked) != 2 {
		t.Fatalf("blocked = %+v, want both processes", de.Blocked)
	}
	for i, b := range de.Blocked {
		if !b.Send || b.Proc != i || b.Peer != 1-i {
			t.Errorf("blocked[%d] = %+v, want proc %d blocked in send to %d", i, b, i, 1-i)
		}
	}
	if msg := err.Error(); !strings.Contains(msg, "blocked in send") || !strings.Contains(msg, "channel ->1 full") {
		t.Errorf("error %q lacks send-side diagnostics", msg)
	}
}

// TestMailboxCapMux: bounded channels compose with multiplexed placement —
// the run completes deterministically and its trace reconciles.
func TestMailboxCapMux(t *testing.T) {
	run := func() Stats {
		log := trace.New()
		cfg := testConfig(4)
		cfg.Placement = []int{0, 0, 1, 1}
		cfg.MailboxCap = 1
		cfg.Tracer = log
		m := New(cfg)
		if err := m.Run(func(p *Proc) {
			next, prev := (p.ID()+1)%4, (p.ID()+3)%4
			for k := 0; k < 3; k++ {
				p.Send(next, 0, Value(k))
				if v := p.Recv1(prev, 0); v != Value(k) {
					t.Errorf("proc %d round %d: got %v", p.ID(), k, v)
				}
				p.Compute(20)
			}
		}); err != nil {
			t.Fatalf("multiplexed bounded run failed: %v", err)
		}
		if err := m.VerifyTrace(); err != nil {
			t.Errorf("multiplexed bounded trace does not reconcile: %v", err)
		}
		return mustStats(t, m)
	}
	if st1, st2 := run(), run(); !reflect.DeepEqual(st1, st2) {
		t.Errorf("multiplexed bounded run not deterministic:\n%+v\n%+v", st1, st2)
	}
}

// TestDeadlockDiagnostics: the deadlock error names who is blocked on which
// (src, tag) and what is sitting unread in their mailboxes.
func TestDeadlockDiagnostics(t *testing.T) {
	m := New(testConfig(2))
	err := m.Run(func(p *Proc) {
		switch p.ID() {
		case 0:
			p.Send(1, 9, 1.0) // delivered but never asked for
			p.Recv(1, 1)
		case 1:
			p.Recv(0, 2) // wrong tag: 9 is pending, 2 never comes
		}
	})
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
	var de *DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("err = %T, want *DeadlockError", err)
	}
	if len(de.Blocked) != 2 || de.Blocked[0].Proc != 0 || de.Blocked[1].Proc != 1 {
		t.Fatalf("blocked = %+v, want procs 0 and 1 in order", de.Blocked)
	}
	msg := err.Error()
	for _, want := range []string{
		"proc 0 blocked in recv",
		"awaits (src 1, tag 1)",
		"proc 1 blocked in recv",
		"awaits (src 0, tag 2)",
		"mailbox holds (src 0, tag 9)x1",
	} {
		if !strings.Contains(msg, want) {
			t.Errorf("deadlock error %q missing %q", msg, want)
		}
	}
}

// TestRecvOutOfRangePanics: Recv validates its source like Send validates
// its destination (the seed's guard, pinned by test).
func TestRecvOutOfRangePanics(t *testing.T) {
	m := New(testConfig(2))
	err := m.Run(func(p *Proc) {
		if p.ID() == 0 {
			p.Recv(2, 0)
		}
	})
	if err == nil || !strings.Contains(err.Error(), "recv from processor 2 out of range [0,2)") {
		t.Errorf("err = %v, want out-of-range receive panic", err)
	}
}
