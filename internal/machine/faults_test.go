package machine

import (
	"bytes"
	"errors"
	"reflect"
	"strings"
	"testing"

	"procdecomp/internal/faults"
	"procdecomp/internal/trace"
)

// chainBody is a pipeline workload: proc 0 feeds rounds values into a chain
// whose middle stages increment and forward them; the last process collects.
// Tags cycle over three FIFOs per link and every stage computes between
// messages, so drops, duplicates, and reordering all get exercised.
func chainBody(rounds int, out *[]Value) func(*Proc) {
	return func(p *Proc) {
		last := p.Procs() - 1
		switch {
		case p.ID() == 0:
			for i := 0; i < rounds; i++ {
				p.Compute(7)
				p.Send(1, int64(i%3), Value(i))
			}
		case p.ID() < last:
			for i := 0; i < rounds; i++ {
				v := p.Recv1(p.ID()-1, int64(i%3))
				p.Compute(5)
				p.Send(p.ID()+1, int64(i%3), v+1)
			}
		default:
			for i := 0; i < rounds; i++ {
				*out = append(*out, p.Recv1(last-1, int64(i%3)))
				p.Compute(3)
			}
		}
	}
}

func runChain(t *testing.T, cfg Config, rounds int) ([]Value, Stats) {
	t.Helper()
	m := New(cfg)
	var out []Value
	if err := m.Run(chainBody(rounds, &out)); err != nil {
		t.Fatalf("run failed: %v", err)
	}
	return out, mustStats(t, m)
}

// TestFaultsSameResultsUnderChaos is the tentpole guarantee: a seeded chaos
// schedule with drops, duplicates, ack loss, and jitter changes only virtual
// time — the values every process computes are identical to the fault-free
// run.
func TestFaultsSameResultsUnderChaos(t *testing.T) {
	const rounds = 40
	want, clean := runChain(t, testConfig(4), rounds)

	cfg := testConfig(4)
	cfg.Faults = faults.Chaos(42, 0.10)
	got, st := runChain(t, cfg, rounds)

	if !reflect.DeepEqual(got, want) {
		t.Errorf("values under faults differ from fault-free run:\ngot  %v\nwant %v", got, want)
	}
	if st.Retries == 0 {
		t.Error("chaos run at 10% drop recorded no retries; schedule not applied?")
	}
	if st.Lost != 0 {
		t.Errorf("chaos run lost %d messages forever; expected reliable delivery", st.Lost)
	}
	if st.Messages != clean.Messages || st.Values != clean.Values {
		t.Errorf("message accounting changed under faults: got %d/%d, want %d/%d",
			st.Messages, st.Values, clean.Messages, clean.Values)
	}
	if clean.Retries != 0 || clean.Duplicates != 0 {
		t.Errorf("fault-free run has transport counters: %+v", clean)
	}
}

// TestFaultsDeterministicPerSeed: same seed, same faults, same everything.
func TestFaultsDeterministicPerSeed(t *testing.T) {
	run := func(seed uint64) ([]Value, Stats) {
		cfg := testConfig(4)
		cfg.Faults = faults.Chaos(seed, 0.10)
		return runChain(t, cfg, 30)
	}
	out1, st1 := run(7)
	out2, st2 := run(7)
	if !reflect.DeepEqual(out1, out2) {
		t.Error("same seed produced different values")
	}
	if !reflect.DeepEqual(st1, st2) {
		t.Errorf("same seed produced different stats:\n%+v\n%+v", st1, st2)
	}
	out3, st3 := run(8)
	if reflect.DeepEqual(st1, st3) && reflect.DeepEqual(out1, out3) {
		t.Log("seeds 7 and 8 happen to coincide (legal but suspicious)")
	}
	_ = out3
}

// TestFaultsDuplicatesSuppressed: with every ack lost, the sender retransmits
// up to its attempt budget, the receiver suppresses each redundant copy, and
// timing is identical to the fault-free run (the first copy's arrival is what
// releases the message).
func TestFaultsDuplicatesSuppressed(t *testing.T) {
	cfg := testConfig(2)
	cfg.Faults = &faults.Schedule{Seed: 3, AckDrop: 1, MaxAttempts: 3, RTO: 16}
	m := New(cfg)
	err := m.Run(func(p *Proc) {
		switch p.ID() {
		case 0:
			p.Compute(50)
			p.Send(1, 7, 3.5)
		case 1:
			if v := p.Recv1(0, 7); v != 3.5 {
				t.Errorf("got %v, want 3.5", v)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	st := mustStats(t, m)
	if st.Makespan != 169 {
		t.Errorf("makespan = %d, want 169 (duplicates must not delay delivery)", st.Makespan)
	}
	if st.Retries != 2 || st.Duplicates != 2 {
		t.Errorf("retries = %d, duplicates = %d, want 2 and 2 (attempts 2 and 3 are redundant)",
			st.Retries, st.Duplicates)
	}
	if st.Messages != 1 || st.Values != 1 {
		t.Errorf("duplicate suppression leaked into message accounting: %+v", st)
	}
}

// TestFaultsReorderReleasedInOrder: heavy jitter reorders arrivals on the
// wire, but the transport releases messages in sequence order, so a FIFO
// stream is received in exactly the order it was sent.
func TestFaultsReorderReleasedInOrder(t *testing.T) {
	cfg := testConfig(2)
	cfg.Faults = &faults.Schedule{Seed: 11, Delay: 1, MaxJitter: 500}
	m := New(cfg)
	var got []Value
	err := m.Run(func(p *Proc) {
		switch p.ID() {
		case 0:
			for i := 0; i < 10; i++ {
				p.Send(1, 1, Value(i))
			}
		case 1:
			for i := 0; i < 10; i++ {
				got = append(got, p.Recv1(0, 1))
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != Value(i) {
			t.Fatalf("message %d delivered out of order: got %v, want %v (stream %v)", i, v, Value(i), got)
		}
	}
}

// TestFaultsLinkDownWindow: a finite outage window manifests as delay — the
// transport retries under exponential backoff until an attempt departs after
// the window, and timing is exactly predictable.
func TestFaultsLinkDownWindow(t *testing.T) {
	cfg := testConfig(2)
	cfg.Faults = &faults.Schedule{
		Seed: 1,
		Down: []faults.Window{{Src: 0, Dst: 1, From: 0, To: 5000}},
		RTO:  64,
	}
	m := New(cfg)
	err := m.Run(func(p *Proc) {
		switch p.ID() {
		case 0:
			p.Send(1, 1, 9.0)
		case 1:
			if v := p.Recv1(0, 1); v != 9.0 {
				t.Errorf("got %v, want 9.0", v)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	st := mustStats(t, m)
	// Send overhead ends at 102; attempts depart at 102, 166, 294, 550, 1062,
	// 2086, 4134 (all inside the window) and 8230 (outside). Arrival 8235,
	// receive overhead 12 -> 8247.
	if st.Makespan != 8247 {
		t.Errorf("makespan = %d, want 8247", st.Makespan)
	}
	if st.Retries != 7 {
		t.Errorf("retries = %d, want 7", st.Retries)
	}
}

// TestFaultsSlowdownScalesCompute: a slow-factor straggler pays scaled
// compute charges.
func TestFaultsSlowdownScalesCompute(t *testing.T) {
	cfg := testConfig(2)
	cfg.Faults = &faults.Schedule{Seed: 1, Slow: map[int]float64{0: 2}}
	m := New(cfg)
	err := m.Run(func(p *Proc) {
		p.Compute(100)
	})
	if err != nil {
		t.Fatal(err)
	}
	st := mustStats(t, m)
	if st.ProcTimes[0] != 200 || st.ProcTimes[1] != 100 {
		t.Errorf("proc times = %v, want [200 100]", st.ProcTimes)
	}
}

// TestFaultsCrashStopWatchdog: a crash-stopped sender does not hang its
// receiver — the watchdog diagnoses the blocked (src, tag) and names the
// crash.
func TestFaultsCrashStopWatchdog(t *testing.T) {
	cfg := testConfig(2)
	cfg.Faults = &faults.Schedule{Seed: 1, Crash: map[int]uint64{0: 0}}
	m := New(cfg)
	err := m.Run(func(p *Proc) {
		switch p.ID() {
		case 0:
			p.Compute(10) // crash point 0: this action never happens
			p.Send(1, 5, 1.0)
		case 1:
			p.Recv(0, 5)
			t.Error("receive from a crashed process returned")
		}
	})
	if !errors.Is(err, ErrRecvTimeout) {
		t.Fatalf("err = %v, want ErrRecvTimeout", err)
	}
	var rte *RecvTimeoutError
	if !errors.As(err, &rte) {
		t.Fatalf("err = %T, want *RecvTimeoutError", err)
	}
	if rte.Proc != 1 || rte.Src != 0 || rte.Tag != 5 {
		t.Errorf("diagnosis = %+v, want proc 1 blocked on (src 0, tag 5)", rte)
	}
	if !strings.Contains(err.Error(), "crash-stopped") {
		t.Errorf("error %q does not name the crash", err)
	}
}

// TestFaultsLostForeverWatchdog: when the transport exhausts its attempt
// budget the receive fails with a diagnosis naming the blocked (src, tag) and
// the lost message — never a hang, never a bare deadlock.
func TestFaultsLostForeverWatchdog(t *testing.T) {
	cfg := testConfig(2)
	cfg.Faults = &faults.Schedule{Seed: 1, Drop: 1, MaxAttempts: 3, RTO: 10}
	m := New(cfg)
	err := m.Run(func(p *Proc) {
		switch p.ID() {
		case 0:
			p.Send(1, 7, 1.0)
			p.Send(1, 7, 2.0) // the link is dead by now: lost too
		case 1:
			p.Recv(0, 7)
			t.Error("receive of a lost-forever message returned")
		}
	})
	if !errors.Is(err, ErrRecvTimeout) {
		t.Fatalf("err = %v, want ErrRecvTimeout", err)
	}
	msg := err.Error()
	if !strings.Contains(msg, "(src 0, tag 7)") || !strings.Contains(msg, "lost forever") {
		t.Errorf("error %q does not name the blocked receive and the loss", msg)
	}
	if st := mustStats(t, m); st.Lost != 2 {
		t.Errorf("lost = %d, want 2 (second send on the dead link is lost too)", st.Lost)
	}
}

// TestFaultsWireTrace: transport activity is recorded as wire events that
// leave the process-span accounting intact (VerifyTrace still reconciles
// exactly), and the Chrome export shows them on a network track.
func TestFaultsWireTrace(t *testing.T) {
	log := trace.New()
	cfg := testConfig(4)
	cfg.Faults = faults.Chaos(5, 0.10)
	cfg.Tracer = log
	m := New(cfg)
	var out []Value
	if err := m.Run(chainBody(30, &out)); err != nil {
		t.Fatal(err)
	}
	if err := m.VerifyTrace(); err != nil {
		t.Errorf("trace does not reconcile under faults: %v", err)
	}
	st := mustStats(t, m)
	counts := log.WireCounts()
	if counts[trace.WireDeliver] != st.Messages {
		t.Errorf("wire deliveries = %d, want %d (one per message)", counts[trace.WireDeliver], st.Messages)
	}
	if counts[trace.WireXmit] != st.Messages+st.Retries {
		t.Errorf("wire xmits = %d, want messages %d + retries %d", counts[trace.WireXmit], st.Messages, st.Retries)
	}
	if counts[trace.WireDup] != st.Duplicates || counts[trace.WireLost] != 0 {
		t.Errorf("wire counts %v disagree with stats %+v", counts, st)
	}
	var buf bytes.Buffer
	if err := log.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"network"`, `"xmit"`, `"ph":"i"`} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("Chrome export missing %s", want)
		}
	}
}

// TestFaultsMuxPlacement: the fault transport composes with multiplexed
// placement — a chaos run over co-resident processes completes with the
// fault-free values, deterministically, and its trace reconciles.
func TestFaultsMuxPlacement(t *testing.T) {
	const rounds = 30
	clean := testConfig(4)
	clean.Placement = []int{0, 0, 1, 1}
	want, _ := runChain(t, clean, rounds)

	run := func() ([]Value, Stats) {
		log := trace.New()
		cfg := testConfig(4)
		cfg.Placement = []int{0, 0, 1, 1}
		cfg.Faults = faults.Chaos(13, 0.10)
		cfg.Tracer = log
		m := New(cfg)
		var out []Value
		if err := m.Run(chainBody(rounds, &out)); err != nil {
			t.Fatalf("multiplexed chaos run failed: %v", err)
		}
		if err := m.VerifyTrace(); err != nil {
			t.Errorf("multiplexed chaos trace does not reconcile: %v", err)
		}
		return out, mustStats(t, m)
	}
	got1, st1 := run()
	got2, st2 := run()
	if !reflect.DeepEqual(got1, want) {
		t.Errorf("multiplexed values under faults differ from fault-free run:\ngot  %v\nwant %v", got1, want)
	}
	if !reflect.DeepEqual(got1, got2) || !reflect.DeepEqual(st1, st2) {
		t.Error("multiplexed chaos run is not deterministic per seed")
	}
	if st1.Retries == 0 {
		t.Error("multiplexed chaos run recorded no retries; transport not engaged?")
	}
}
