// Package machine simulates the message-passing multicomputer of the paper's
// §2.2: n processors, each executing one process, communicating through
// explicit sends and receives, where "the cost of accessing a data item is
// binary — local access is more efficient than non-local access, but all
// non-local accesses are equally expensive."
//
// Each simulated processor carries a virtual clock measured in abstract
// cycles. Compute advances the clock; Send charges the sender a start-up cost
// plus a per-value packing cost and stamps the message with its wire-arrival
// time; Recv waits for the matching (source, tag) FIFO, advances the
// receiver's clock to the arrival stamp if it was earlier, and charges an
// unpacking cost. Because processes interact only through these
// point-to-point FIFOs and every receive names its source and tag, the
// simulated clocks and delivered values are deterministic regardless of Go
// scheduling. The execution time of a run is the makespan — the maximum
// final clock over all processors — which is what the paper's Figures 6 and
// 7 plot against the number of processors.
//
// Two simulation cores implement these semantics (Config.Engine). The
// default, EngineEvent, is a single-threaded discrete-event loop (event.go):
// at most one process executes at any instant, and a (clock, id) priority
// queue of runnable processes decides who steps next, so a run costs no lock
// contention and no broadcast wake-ups. EngineGoroutine is the original
// machine — one free-running goroutine per process, a mutex around the
// mailboxes, and condition-variable broadcasts — kept as the baseline the
// event loop is differentially tested and benchmarked against
// (internal/bench). Both engines produce bit-identical virtual-time results.
package machine

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"procdecomp/internal/faults"
	"procdecomp/internal/trace"
)

// Cost is virtual time in abstract machine cycles.
type Cost = uint64

// Config calibrates the simulated machine. The defaults model the Intel
// iPSC/2's defining property: message start-up costs hundreds of compute
// operations ("message-passing systems typically take hundreds to thousands
// of cycles to deliver messages", §1), so combining messages matters far more
// than shaving arithmetic.
type Config struct {
	// Procs is the number of processors (one process per processor, §2.2).
	Procs int
	// OpCost is the cost of one scalar arithmetic operation.
	OpCost Cost
	// MemCost is the cost of one local I-structure read or write.
	MemCost Cost
	// LoopCost is the per-iteration loop bookkeeping cost.
	LoopCost Cost
	// SendStartup is the fixed CPU cost to initiate any send.
	SendStartup Cost
	// RecvStartup is the fixed CPU cost to complete any receive.
	RecvStartup Cost
	// PerValue is the packing/unpacking CPU cost per value transferred,
	// charged to the sender and to the receiver.
	PerValue Cost
	// Latency is the wire time of flight, overlappable with computation.
	Latency Cost
	// ValueBytes is the size of one transferred value, for byte accounting.
	ValueBytes int
	// Placement, when non-nil, multiplexes the Procs virtual processes onto
	// physical nodes: Placement[i] is the node running process i. Node CPUs
	// serialize their residents' compute and message overhead, but time a
	// process spends blocked in a receive occupies no CPU — §5.4's latency
	// hiding. Nil means one process per processor (the paper's base model).
	Placement []int
	// Tracer, when non-nil, records a per-process event log of the run —
	// compute, send, recv, idle, and blocked spans with virtual-time
	// start/end, peer, tag, and value count. Nil (the default) disables
	// tracing; untraced runs pay only a nil check per action. Read the log
	// after Run returns (Run is the happens-before edge).
	Tracer *trace.Log
	// Faults, when non-nil, replaces the ideal fabric with a deterministic
	// seed-driven faulty one (drops, duplicates, jitter, link outages,
	// process slowdowns and crash-stops — see internal/faults) under a
	// reliable transport: per-link sequence numbers, acknowledgements,
	// virtual-time retry timers with exponential backoff, duplicate
	// suppression, and in-order release (transport.go). Delivered values
	// are identical to a fault-free run; only virtual time and the wire
	// trace change. A message lost forever (attempt budget exhausted, or a
	// crash-stopped sender) surfaces as a RecvTimeoutError naming the
	// blocked receive, never a hang. Nil (the default) keeps the ideal
	// fabric, bit-identical to earlier versions.
	Faults *faults.Schedule
	// MailboxCap, when positive, bounds every (src, dst) channel to that
	// many undelivered messages: Send blocks in virtual time until the
	// receiver drains the channel below the cap (backpressure). The wait is
	// charged to the sender's idle account and traced as a blocked span.
	// 0 (the default) keeps channels unbounded, preserving the iPSC's
	// never-blocking csend semantics.
	MailboxCap int
	// Engine selects the simulation core. The zero value, EngineEvent, is
	// the single-threaded discrete-event loop; EngineGoroutine is the
	// original goroutines+condvar machine, retained as the differential-
	// testing and benchmark baseline (internal/bench's engine diff harness
	// proves the two bit-identical). Both produce identical virtual-time
	// results; they differ only in wall-clock cost.
	Engine Engine
	// Cancel, when non-nil, lets the host abort a run in wall-clock time:
	// once the channel is closed, every process fails at its next machine
	// action and Run returns a *CanceledError (errors.Is ErrCanceled).
	// Cancellation is best-effort — a run that completes before any process
	// takes another action returns its normal result — and the point of
	// interruption depends on host scheduling, so a canceled run's partial
	// clocks are not deterministic (finished runs are unaffected: nil Cancel,
	// or a channel that never closes, is bit-identical to earlier versions).
	// Typically wired to a context's Done channel by exec.RunSPMDCtx.
	Cancel <-chan struct{}
	// Heartbeat, when non-nil, is called by the event-loop engine roughly
	// every HeartbeatEvery process dispatches with the current virtual
	// clock. It is a purely observational progress hook (pdserve streams it
	// to clients of long runs): it runs on the loop's own goroutine between
	// dispatches, must return promptly, and must not call back into the
	// machine. It has no effect on the simulation — clocks, traces, and
	// Stats are bit-identical with or without it. The goroutine engine has
	// no single clock owner and ignores it.
	Heartbeat func(clock Cost)
	// HeartbeatEvery is the dispatch interval between Heartbeat calls
	// (default 4096 when Heartbeat is set).
	HeartbeatEvery int
}

// DefaultConfig returns the iPSC/2-flavoured calibration used by the paper
// reproduction benchmarks: with OpCost 1, a minimal message costs 350× a
// scalar operation to send.
func DefaultConfig(procs int) Config {
	return Config{
		Procs:       procs,
		OpCost:      1,
		MemCost:     1,
		LoopCost:    1,
		SendStartup: 350,
		RecvStartup: 100,
		PerValue:    2,
		Latency:     50,
		ValueBytes:  4,
	}
}

// SharedMemoryConfig models the paper's other machine class (§1): a
// shared-memory multiprocessor like the BBN Butterfly, where "the cost of
// accessing a non-local data item (i.e., across the network) is on the order
// of tens of cycles". Moving a value is just a remote read/write — cheap but
// not free — so the same locality analysis still pays, just with smaller
// constant factors.
func SharedMemoryConfig(procs int) Config {
	return Config{
		Procs:       procs,
		OpCost:      1,
		MemCost:     1,
		LoopCost:    1,
		SendStartup: 10,
		RecvStartup: 10,
		PerValue:    1,
		Latency:     5,
		ValueBytes:  4,
	}
}

// Value is the unit of data exchanged between processes.
type Value = float64

type message struct {
	vals   []Value
	arrive Cost
	// seq is the sender's 1-based message counter — the stable edge ID the
	// tracer stamps on the send span and on the matching idle/recv spans,
	// so an analyzer can link both ends of every message.
	seq uint64
}

// key identifies a FIFO message queue within one destination's mailbox.
type key struct {
	src int
	tag int64
}

// Breakdown partitions one process's virtual time: every cycle of its final
// clock is compute, communication overhead (packing/unpacking and start-up),
// or idle time spent blocked in a receive before the message arrived.
type Breakdown struct {
	Compute Cost
	Comm    Cost
	Idle    Cost
}

// Utilization is the fraction of the process's time spent computing.
func (b Breakdown) Utilization() float64 {
	total := b.Compute + b.Comm + b.Idle
	if total == 0 {
		return 0
	}
	return float64(b.Compute) / float64(total)
}

// Stats summarizes a finished run.
type Stats struct {
	Messages  int64       // total messages sent (application-level)
	Values    int64       // total values transferred
	Bytes     int64       // total bytes transferred
	Makespan  Cost        // max final clock over all processors
	ProcTimes []Cost      // final clock per processor
	Breakdown []Breakdown // per-processor time partition
	// Transport counters, nonzero only under Config.Faults.
	Retries    int64 // retransmission attempts by the reliable transport
	Duplicates int64 // redundant copies suppressed by the receiver transport
	Lost       int64 // messages lost forever (attempt budget exhausted)
}

// MeanUtilization averages the compute fraction over all processors.
func (s Stats) MeanUtilization() float64 {
	if len(s.Breakdown) == 0 {
		return 0
	}
	sum := 0.0
	for _, b := range s.Breakdown {
		sum += b.Utilization()
	}
	return sum / float64(len(s.Breakdown))
}

// Machine is one simulated multicomputer run. Create with New, execute with
// Run, then inspect Stats. A Machine is not reusable after Run returns.
type Machine struct {
	cfg Config

	mu      sync.Mutex
	cond    *sync.Cond
	boxes   []map[key][]message // per-destination mailboxes
	waiting map[int]waitInfo    // blocked processes and what they wait for
	active  int                 // processes started and not yet finished
	running bool                // Run in progress; guards Stats snapshots
	failed  error               // first failure; aborts everything

	// Fault-injection and backpressure state (transport.go). links and lost
	// are allocated only when Config.Faults or Config.MailboxCap is set.
	links   [][]linkState        // per-(src,dst) transport/backpressure state
	lost    []map[key]lostRecord // per-destination lost-forever messages
	crashed []bool               // fault-injected crash-stopped processes

	msgs, vals               int64
	retries, dups, lostCount int64
	procs                    []*Proc
	sched                    *muxSched // nil unless Config.Placement multiplexes processes
	ev                       *evLoop   // nil unless Config.Engine is EngineEvent

	// canceled is set by the Cancel watcher; processes poll it at every
	// machine action. It is the only cross-thread signal into the event
	// engine, which is why it is atomic rather than token-guarded.
	canceled atomic.Bool
}

// ErrDeadlock is returned by Run when every live process is blocked in Recv
// (or, under Config.MailboxCap, in Send). The concrete error is a
// *DeadlockError carrying per-process diagnostics; errors.Is against this
// sentinel keeps working.
var ErrDeadlock = errors.New("machine: deadlock: all processes blocked in receive")

// ErrRecvTimeout is returned by Run when the receive watchdog diagnoses a
// blocked receive that can never be satisfied under the fault schedule (its
// message was lost forever, its link is dead, or its sender crash-stopped).
// The concrete error is a *RecvTimeoutError naming the blocked (src, tag).
var ErrRecvTimeout = errors.New("machine: receive watchdog timeout")

// ErrSendTimeout is returned by Run when the send watchdog diagnoses a
// sender blocked on a full bounded channel (Config.MailboxCap) that can
// never drain — its receiver crash-stopped. The concrete error is a
// *SendTimeoutError naming the blocked channel; without this diagnosis the
// sender would surface as a bare deadlock report.
var ErrSendTimeout = errors.New("machine: send watchdog timeout")

// ErrCanceled is returned by Run when the host closed Config.Cancel before
// the run finished. The concrete error is a *CanceledError.
var ErrCanceled = errors.New("machine: run canceled")

// CanceledError reports a run aborted through Config.Cancel. Proc and Clock
// name the first process that observed the cancellation and its virtual time
// (Proc is -1 when the watcher itself recorded the failure); they describe
// where the abort landed, not a deterministic property of the program.
type CanceledError struct {
	Proc  int
	Clock Cost
}

func (e *CanceledError) Error() string {
	if e.Proc < 0 {
		return "machine: run canceled by the host"
	}
	return fmt.Sprintf("machine: run canceled by the host at process %d, cycle %d", e.Proc, e.Clock)
}

// Is makes errors.Is(err, ErrCanceled) work.
func (e *CanceledError) Is(target error) bool { return target == ErrCanceled }

// errAborted interrupts processes blocked in Recv after another process
// failed; Run reports the original failure.
var errAborted = errors.New("machine: run aborted")

// ErrRunInProgress is returned by Stats when called while Run is still in
// progress: the per-process clocks and time partitions are written lock-free
// by the process goroutines, and the only happens-before edge making them
// readable is Run returning, so a mid-run snapshot would be torn.
var ErrRunInProgress = errors.New("machine: Stats called while Run is in progress; per-process clocks are only readable after Run returns")

// New creates a machine with the given configuration.
func New(cfg Config) *Machine {
	if cfg.Procs <= 0 {
		panic(fmt.Sprintf("machine: Procs must be positive, got %d", cfg.Procs))
	}
	if cfg.ValueBytes <= 0 {
		cfg.ValueBytes = 4
	}
	m := &Machine{cfg: cfg, waiting: map[int]waitInfo{}}
	m.cond = sync.NewCond(&m.mu)
	m.boxes = make([]map[key][]message, cfg.Procs)
	m.procs = make([]*Proc, cfg.Procs)
	m.crashed = make([]bool, cfg.Procs)
	for i := range m.boxes {
		m.boxes[i] = map[key][]message{}
		m.procs[i] = &Proc{id: i, m: m}
	}
	if m.faultive() {
		m.links = make([][]linkState, cfg.Procs)
		for i := range m.links {
			m.links[i] = make([]linkState, cfg.Procs)
		}
		m.lost = make([]map[key]lostRecord, cfg.Procs)
	}
	if cfg.Placement != nil {
		sched, err := initMux(m, cfg.Placement)
		if err != nil {
			panic(err)
		}
		m.sched = sched
	}
	switch cfg.Engine {
	case EngineEvent:
		m.ev = newEvLoop(m)
	case EngineGoroutine:
		// The legacy core needs no extra state.
	default:
		panic(fmt.Sprintf("machine: unknown engine %d", cfg.Engine))
	}
	if cfg.Tracer != nil {
		cfg.Tracer.Begin(cfg.Procs, cfg.Placement)
	}
	return m
}

// Config returns the machine's configuration.
func (m *Machine) Config() Config { return m.cfg }

// Run executes body once per processor, concurrently, and waits for all
// processes to finish. A panic in any process (an I-structure error, for
// example) aborts the run and is returned as an error, as is deadlock.
func (m *Machine) Run(body func(p *Proc)) error {
	if m.cfg.Cancel != nil {
		stop := make(chan struct{})
		defer close(stop)
		go m.watchCancel(stop)
	}
	if m.ev != nil {
		return m.runEvent(body)
	}
	m.mu.Lock()
	m.active = m.cfg.Procs
	m.running = true
	if m.sched != nil {
		// Register every process before any runs, so the conservative
		// scheduler's minimum is over the full set from the first action.
		for _, p := range m.procs {
			m.sched.start(p)
		}
	}
	m.mu.Unlock()

	var wg sync.WaitGroup
	for _, p := range m.procs {
		wg.Add(1)
		go func(p *Proc) {
			defer wg.Done()
			defer func() {
				m.mu.Lock()
				m.active--
				if m.sched != nil {
					m.sched.stop(p)
				}
				if r := recover(); r != nil {
					if err, ok := r.(error); ok && errors.Is(err, errAborted) {
						// Secondary abort; keep the original failure.
					} else if cs, ok := r.(crashStop); ok {
						// A fault-scheduled crash-stop: the process dies
						// silently, like a failed node. The run is not
						// aborted — peers that depended on it surface
						// watchdog or deadlock errors naming it.
						m.crashed[cs.proc] = true
					} else if m.failed == nil {
						m.failed = fmt.Errorf("machine: process %d failed: %v", p.id, r)
					}
				}
				m.checkDeadlockLocked()
				m.cond.Broadcast()
				m.mu.Unlock()
			}()
			body(p)
		}(p)
	}
	wg.Wait()
	m.mu.Lock()
	defer m.mu.Unlock()
	m.running = false
	return m.failed
}

// watchCancel waits for Config.Cancel (or the end of the run) and raises the
// cancellation flag. On the goroutine engine it also records the failure and
// broadcasts, so processes parked in cond.Wait unwind promptly; on the event
// engine the loop's single-threaded state may only be touched by the token
// holder, so processes discover the flag at their next machine action.
func (m *Machine) watchCancel(stop chan struct{}) {
	select {
	case <-m.cfg.Cancel:
		m.canceled.Store(true)
		if m.ev == nil {
			m.mu.Lock()
			if m.failed == nil {
				m.failed = &CanceledError{Proc: -1}
			}
			m.cond.Broadcast()
			m.mu.Unlock()
		}
	case <-stop:
	}
}

// checkCancel aborts the calling process if the host canceled the run. It is
// the cancellation point of every machine action (Compute, Send, Recv), so a
// compute-bound process still observes cancellation between charges.
func (p *Proc) checkCancel() {
	m := p.m
	if m.cfg.Cancel == nil || !m.canceled.Load() {
		return
	}
	if m.ev != nil {
		// Token holder: event-engine state needs no lock.
		if m.failed == nil {
			m.failed = &CanceledError{Proc: p.id, Clock: p.clock}
		}
		panic(errAborted)
	}
	m.mu.Lock()
	if m.failed == nil {
		m.failed = &CanceledError{Proc: p.id, Clock: p.clock}
	}
	m.cond.Broadcast()
	m.mu.Unlock()
	panic(errAborted)
}

// checkDeadlockLocked flags deadlock when every live process is blocked (in
// Recv, or in Send on a full channel) and nothing pending can satisfy any of
// them. The satisfiability test matters: a receiver woken by a send — or a
// capacity-blocked sender woken by a dequeue — still counts as waiting until
// it reacquires the lock, so the count alone would misfire. At quiescence,
// if faults made a blocked receive provably unsatisfiable, the failure is a
// RecvTimeoutError naming it (the watchdog); otherwise a DeadlockError
// listing every blocked process and its pending mailbox.
func (m *Machine) checkDeadlockLocked() {
	if m.failed != nil || m.active == 0 || len(m.waiting) != m.active {
		return
	}
	for pid, wi := range m.waiting {
		if wi.send {
			if uint64(len(m.links[pid][wi.dst].freed)) > wi.idx {
				return // the slot freed; the sender just hasn't woken yet
			}
		} else if len(m.boxes[pid][wi.k]) > 0 {
			return
		}
	}
	// Quiescent: nothing can make progress. Prefer the watchdog diagnosis,
	// scanning in process order so the reported action is deterministic: a
	// blocked receive whose message can never come, or a capacity-blocked
	// send whose receiver can never drain.
	for pid := 0; pid < m.cfg.Procs; pid++ {
		wi, ok := m.waiting[pid]
		if !ok {
			continue
		}
		if wi.send {
			if reason := m.sendUnsatisfiableLocked(wi.dst); reason != "" {
				m.failed = &SendTimeoutError{Proc: pid, Dst: wi.dst,
					Clock: m.procs[pid].clock, Reason: reason}
				return
			}
			continue
		}
		if reason := m.unsatisfiableLocked(pid, wi.k); reason != "" {
			m.failed = &RecvTimeoutError{Proc: pid, Src: wi.k.src, Tag: wi.k.tag,
				Clock: m.procs[pid].clock, Reason: reason}
			return
		}
	}
	m.failed = m.deadlockErrorLocked()
}

// Stats reports the metrics of a finished run. It must not be called while
// Run is in progress: the per-process clocks and time partitions are written
// lock-free by the process goroutines (single writer each), and the only
// happens-before edge making them readable is Run returning. A mid-run call
// would be a data race, so Stats reports ErrRunInProgress instead of
// returning torn values.
func (m *Machine) Stats() (Stats, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.running {
		return Stats{}, ErrRunInProgress
	}
	s := Stats{
		Messages:   m.msgs,
		Values:     m.vals,
		Bytes:      m.vals * int64(m.cfg.ValueBytes),
		ProcTimes:  make([]Cost, len(m.procs)),
		Breakdown:  make([]Breakdown, len(m.procs)),
		Retries:    m.retries,
		Duplicates: m.dups,
		Lost:       m.lostCount,
	}
	for i, p := range m.procs {
		s.ProcTimes[i] = p.clock
		s.Breakdown[i] = Breakdown{Compute: p.compute, Comm: p.comm, Idle: p.idle}
		if p.clock > s.Makespan {
			s.Makespan = p.clock
		}
	}
	return s, nil
}

// VerifyTrace reconciles the run's event log against its Breakdown: for every
// process the traced spans must tile [0, clock) exactly and their per-kind
// sums must equal the compute/comm/idle partition (compute + comm + idle ==
// final clock). It returns nil on an untraced machine. Call after Run.
func (m *Machine) VerifyTrace() error {
	t := m.cfg.Tracer
	if t == nil {
		return nil
	}
	s, err := m.Stats()
	if err != nil {
		return err
	}
	for i, b := range s.Breakdown {
		if err := t.Reconcile(i, b.Compute, b.Comm, b.Idle, s.ProcTimes[i]); err != nil {
			return fmt.Errorf("machine: trace does not reconcile with Breakdown: %w", err)
		}
	}
	return nil
}

// Proc is one simulated process, usable only from the goroutine Run gave it
// to. Clock manipulation needs no locking (single writer); the machine mutex
// guards only mailbox traffic.
type Proc struct {
	id    int
	m     *Machine
	clock Cost
	// time partition (compute + comm + idle == clock)
	compute Cost
	comm    Cost
	idle    Cost
	// msgSeq counts this process's sends, 1-based; stamped on messages and
	// trace events as the stable (sender, seq) message edge ID.
	msgSeq uint64
}

// ID returns the processor number, 0..Procs-1 — the paper's mynode().
func (p *Proc) ID() int { return p.id }

// Procs returns the machine size.
func (p *Proc) Procs() int { return p.m.cfg.Procs }

// Clock returns the process's current virtual time.
func (p *Proc) Clock() Cost { return p.clock }

// Compute advances the clock by c cycles of local work. Under a fault
// schedule, a slowed-down process pays a scaled charge and a crash-stopped
// one stops here.
func (p *Proc) Compute(c Cost) {
	p.checkCancel()
	if f := p.m.cfg.Faults; f != nil {
		p.checkCrash()
		c = Cost(f.ScaleCompute(p.id, uint64(c)))
	}
	if p.m.sched != nil {
		if p.m.ev != nil {
			p.evMuxCompute(c)
		} else {
			p.muxCompute(c)
		}
		return
	}
	start := p.clock
	p.clock += c
	p.compute += c
	if t := p.m.cfg.Tracer; t != nil {
		t.Emit(trace.Event{Proc: p.id, Kind: trace.KindCompute, Start: start, End: p.clock, Peer: -1})
	}
}

// Ops charges n scalar operations.
func (p *Proc) Ops(n int64) { p.Compute(Cost(n) * p.m.cfg.OpCost) }

// Mem charges n local I-structure accesses.
func (p *Proc) Mem(n int64) { p.Compute(Cost(n) * p.m.cfg.MemCost) }

// LoopStep charges one loop-iteration bookkeeping step.
func (p *Proc) LoopStep() { p.Compute(p.m.cfg.LoopCost) }

// Send transmits vals to processor dst with the given tag: the paper's
// csend. The sender is charged start-up plus per-value packing; the message
// arrives on the wire Latency cycles later. Sends are buffered and never
// block (iPSC semantics: csend returns once the message is copied out).
func (p *Proc) Send(dst int, tag int64, vals ...Value) {
	if dst < 0 || dst >= p.m.cfg.Procs {
		panic(fmt.Sprintf("machine: send to processor %d out of range [0,%d)", dst, p.m.cfg.Procs))
	}
	p.checkCancel()
	p.checkCrash()
	if p.m.sched != nil {
		if p.m.ev != nil {
			p.evMuxSend(dst, tag, vals)
		} else {
			p.muxSend(dst, tag, vals)
		}
		return
	}
	m := p.m
	if m.ev != nil {
		p.evSend(dst, tag, vals)
		return
	}
	if m.faultive() {
		p.faultySend(dst, tag, vals)
		return
	}
	cfg := &p.m.cfg
	p.msgSeq++
	over := cfg.SendStartup + Cost(len(vals))*cfg.PerValue
	start := p.clock
	p.clock += over
	p.comm += over
	if t := cfg.Tracer; t != nil {
		t.Emit(trace.Event{Proc: p.id, Kind: trace.KindSend, Start: start, End: p.clock,
			Peer: dst, Tag: tag, Values: len(vals), Seq: p.msgSeq})
	}
	msg := message{vals: append([]Value(nil), vals...), arrive: p.clock + cfg.Latency, seq: p.msgSeq}

	m.mu.Lock()
	if m.failed != nil {
		m.mu.Unlock()
		panic(errAborted)
	}
	k := key{src: p.id, tag: tag}
	m.boxes[dst][k] = append(m.boxes[dst][k], msg)
	m.msgs++
	m.vals += int64(len(vals))
	m.cond.Broadcast()
	m.mu.Unlock()
}

// faultySend is Send over the fault transport and/or bounded channels. The
// whole action runs under the machine mutex: the capacity wait, the send
// overhead charge, the reliable-delivery simulation, and the enqueue.
func (p *Proc) faultySend(dst int, tag int64, vals []Value) {
	m := p.m
	cfg := &m.cfg
	m.mu.Lock()
	if m.failed != nil {
		m.mu.Unlock()
		panic(errAborted)
	}
	m.capWaitLocked(p, dst) // unlocks and panics if the run fails meanwhile

	p.msgSeq++
	over := cfg.SendStartup + Cost(len(vals))*cfg.PerValue
	start := p.clock
	p.clock += over
	p.comm += over
	if t := cfg.Tracer; t != nil {
		t.Emit(trace.Event{Proc: p.id, Kind: trace.KindSend, Start: start, End: p.clock,
			Peer: dst, Tag: tag, Values: len(vals), Seq: p.msgSeq})
	}
	arrive, ok := p.clock+cfg.Latency, true
	if cfg.Faults != nil {
		arrive, ok = m.transmitLocked(p, dst, tag, len(vals), p.clock)
	}
	m.msgs++
	m.vals += int64(len(vals))
	if ok {
		k := key{src: p.id, tag: tag}
		m.boxes[dst][k] = append(m.boxes[dst][k], message{vals: append([]Value(nil), vals...), arrive: arrive, seq: p.msgSeq})
		m.links[p.id][dst].sent++
	}
	// Broadcast even on a lost message: a receiver blocked on this queue
	// must wake and run its watchdog check.
	m.cond.Broadcast()
	m.mu.Unlock()
}

// Recv blocks until a message with the given tag from processor src is
// available — the paper's crecv. The receiver's clock advances to the
// message's arrival time if it was earlier (idle wait), then is charged
// start-up plus per-value unpacking.
func (p *Proc) Recv(src int, tag int64) []Value {
	if src < 0 || src >= p.m.cfg.Procs {
		panic(fmt.Sprintf("machine: recv from processor %d out of range [0,%d)", src, p.m.cfg.Procs))
	}
	p.checkCancel()
	p.checkCrash()
	if p.m.sched != nil {
		if p.m.ev != nil {
			return p.evMuxRecv(src, tag)
		}
		return p.muxRecv(src, tag)
	}
	m := p.m
	if m.ev != nil {
		return p.evRecv(src, tag)
	}
	k := key{src: src, tag: tag}
	m.mu.Lock()
	for len(m.boxes[p.id][k]) == 0 {
		if m.failed != nil {
			m.mu.Unlock()
			panic(errAborted)
		}
		// The watchdog: a receive that can be proven unsatisfiable — its
		// message lost forever, its link dead, its sender crash-stopped —
		// fails now, at the receiver's virtual time, instead of hanging
		// until (or past) global quiescence.
		if reason := m.unsatisfiableLocked(p.id, k); reason != "" {
			m.failed = &RecvTimeoutError{Proc: p.id, Src: src, Tag: tag, Clock: p.clock, Reason: reason}
			m.cond.Broadcast()
			m.mu.Unlock()
			panic(errAborted)
		}
		m.waiting[p.id] = waitInfo{k: k}
		m.checkDeadlockLocked()
		if m.failed != nil {
			delete(m.waiting, p.id)
			m.cond.Broadcast()
			m.mu.Unlock()
			panic(errAborted)
		}
		m.cond.Wait()
		delete(m.waiting, p.id)
	}
	q := m.boxes[p.id][k]
	msg := q[0]
	if len(q) == 1 {
		delete(m.boxes[p.id], k)
	} else {
		m.boxes[p.id][k] = q[1:]
	}
	if m.cfg.MailboxCap > 0 {
		// Bounded channels: finish the receive accounting under the lock so
		// the freed slot carries the receiver's post-overhead clock — the
		// virtual time a capacity-blocked sender will resume at.
		vals := p.finishRecv(msg, src, tag)
		ls := &m.links[src][p.id]
		ls.freed = append(ls.freed, p.clock)
		m.cond.Broadcast()
		m.mu.Unlock()
		return vals
	}
	m.mu.Unlock()
	return p.finishRecv(msg, src, tag)
}

// finishRecv performs the receiver-side accounting of a dequeued message:
// the idle jump to its arrival stamp, then the unpacking overhead. It
// touches only the receiving process's own state, so it is safe with or
// without the machine mutex.
func (p *Proc) finishRecv(msg message, src int, tag int64) []Value {
	cfg := &p.m.cfg
	if msg.arrive > p.clock {
		if t := cfg.Tracer; t != nil {
			t.Emit(trace.Event{Proc: p.id, Kind: trace.KindIdle, Start: p.clock, End: msg.arrive,
				Peer: src, Tag: tag, Seq: msg.seq, Arrive: msg.arrive})
		}
		p.idle += msg.arrive - p.clock
		p.clock = msg.arrive
	}
	over := cfg.RecvStartup + Cost(len(msg.vals))*cfg.PerValue
	start := p.clock
	p.clock += over
	p.comm += over
	if t := cfg.Tracer; t != nil {
		t.Emit(trace.Event{Proc: p.id, Kind: trace.KindRecv, Start: start, End: p.clock,
			Peer: src, Tag: tag, Values: len(msg.vals), Seq: msg.seq, Arrive: msg.arrive})
	}
	return msg.vals
}

// Recv1 receives a single-value message and returns the value.
func (p *Proc) Recv1(src int, tag int64) Value {
	vals := p.Recv(src, tag)
	if len(vals) != 1 {
		panic(fmt.Sprintf("machine: Recv1 got %d values", len(vals)))
	}
	return vals[0]
}
