package machine

import (
	"fmt"

	"procdecomp/internal/trace"
)

// Multiplexed execution: several processes per processor.
//
// §2.2, footnote 2: "Strictly speaking, the iPSC permits multiple processes
// to execute on a processor but we can take that into account simply by
// increasing the number of processors in our model." §5.4 is the payoff:
// "A good process decomposition places several processes on one processor to
// ensure that when one process needs to wait for a remote reference the
// processor running it will have work to do."
//
// Setting Config.Placement maps each virtual process to a physical node.
// Node CPUs are serialized: compute and message-handling overhead of
// co-resident processes cannot overlap, but time a process spends blocked
// waiting for a message occupies no CPU — co-residents run during it. That
// is exactly the latency hiding §5.4 describes.
//
// Determinism: a global conservative scheduler admits exactly one virtual
// process action at a time, always the active process with the smallest
// (clock, id) key. A process blocked in a receive is not active and rejoins
// with its clock advanced to the message's arrival. Because every admitted
// action has the globally minimal timestamp, no later action can causally
// affect it, so simulated clocks are independent of Go scheduling — the same
// guarantee the direct machine gives, extended to CPU contention.

// muxSched is the conservative global scheduler used when Placement is set.
type muxSched struct {
	m     *Machine
	node  []int  // virtual process -> physical node
	nodes []Cost // physical node CPU clocks

	// Per-process scheduler state, guarded by the machine mutex.
	state []muxState
}

type muxState int

const (
	muxUnstarted muxState = iota
	muxActive             // between actions or parked in acquire
	muxWaiting            // blocked in a receive with an empty queue
	muxFinished
)

// initMux validates the placement and builds the scheduler.
func initMux(m *Machine, placement []int) (*muxSched, error) {
	if len(placement) != m.cfg.Procs {
		return nil, fmt.Errorf("machine: placement has %d entries for %d processes", len(placement), m.cfg.Procs)
	}
	maxNode := 0
	for vp, n := range placement {
		if n < 0 {
			return nil, fmt.Errorf("machine: process %d placed on negative node %d", vp, n)
		}
		if n > maxNode {
			maxNode = n
		}
	}
	s := &muxSched{
		m:     m,
		node:  append([]int(nil), placement...),
		nodes: make([]Cost, maxNode+1),
		state: make([]muxState, m.cfg.Procs),
	}
	return s, nil
}

// start marks a process live; stop marks it finished. Both run under m.mu.
func (s *muxSched) start(p *Proc) { s.state[p.id] = muxActive }

func (s *muxSched) stop(p *Proc) {
	s.state[p.id] = muxFinished
	s.m.cond.Broadcast()
}

// myTurnLocked reports whether p holds the minimal (clock, id) key among
// active processes.
func (s *muxSched) myTurnLocked(p *Proc) bool {
	for _, q := range s.m.procs {
		if q == p || s.state[q.id] != muxActive {
			continue
		}
		if q.clock < p.clock || (q.clock == p.clock && q.id < p.id) {
			return false
		}
	}
	return true
}

// acquire blocks until it is p's turn to act. Callers must hold m.mu and
// must perform the whole action before releasing it (the scheduler admits
// one action at a time by construction: every acquirer re-checks on each
// wake-up, and only the minimal process proceeds).
func (s *muxSched) acquireLocked(p *Proc) {
	for !s.myTurnLocked(p) {
		if s.m.failed != nil {
			panic(errAborted)
		}
		s.m.cond.Wait()
	}
	if s.m.failed != nil {
		panic(errAborted)
	}
}

// busy charges c cycles of CPU to p's node, serializing with co-residents:
// the work starts when both the process and the node are free. Time the
// process spends runnable but waiting for the node CPU (a co-resident held
// it) is charged to its idle account — every cycle of the final clock must be
// compute, comm, or idle — and traced as a blocked span.
func (s *muxSched) busyLocked(p *Proc, c Cost) {
	s.busyCore(p, c)
	s.m.cond.Broadcast()
}

// busyCore is the engine-independent node-CPU accounting of busyLocked: both
// engines charge contention gaps and advance the node clock with exactly this
// arithmetic, which is what keeps their blocked spans bit-identical. The
// event engine calls it directly (no condvar to broadcast on).
func (s *muxSched) busyCore(p *Proc, c Cost) {
	n := s.node[p.id]
	start := p.clock
	if s.nodes[n] > start {
		start = s.nodes[n]
	}
	if gap := start - p.clock; gap > 0 {
		p.idle += gap
		if t := s.m.cfg.Tracer; t != nil {
			t.Emit(trace.Event{Proc: p.id, Kind: trace.KindBlocked, Start: p.clock, End: start, Peer: -1})
		}
	}
	p.clock = start + c
	s.nodes[n] = p.clock
}

// muxCompute is Proc.Compute under multiplexing.
func (p *Proc) muxCompute(c Cost) {
	m := p.m
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sched.acquireLocked(p)
	m.sched.busyLocked(p, c)
	p.compute += c
	if t := m.cfg.Tracer; t != nil {
		t.Emit(trace.Event{Proc: p.id, Kind: trace.KindCompute, Start: p.clock - c, End: p.clock, Peer: -1})
	}
}

// muxSend is Proc.Send under multiplexing.
func (p *Proc) muxSend(dst int, tag int64, vals []Value) {
	m := p.m
	cfg := &m.cfg
	m.mu.Lock()
	defer m.mu.Unlock()
	if cfg.MailboxCap > 0 {
		m.muxCapWaitLocked(p, dst)
	} else {
		m.sched.acquireLocked(p)
	}
	p.msgSeq++
	over := cfg.SendStartup + Cost(len(vals))*cfg.PerValue
	m.sched.busyLocked(p, over)
	p.comm += over
	if t := cfg.Tracer; t != nil {
		t.Emit(trace.Event{Proc: p.id, Kind: trace.KindSend, Start: p.clock - over, End: p.clock,
			Peer: dst, Tag: tag, Values: len(vals), Seq: p.msgSeq})
	}
	arrive, ok := p.clock+cfg.Latency, true
	if cfg.Faults != nil {
		arrive, ok = m.transmitLocked(p, dst, tag, len(vals), p.clock)
	}
	m.msgs++
	m.vals += int64(len(vals))
	if !ok {
		// Lost forever: nothing arrives, nobody to wake — but broadcast so
		// blocked receivers re-run their watchdog check.
		m.cond.Broadcast()
		return
	}
	msg := message{vals: append([]Value(nil), vals...), arrive: arrive, seq: p.msgSeq}
	k := key{src: p.id, tag: tag}
	m.boxes[dst][k] = append(m.boxes[dst][k], msg)
	if m.faultive() {
		m.links[p.id][dst].sent++
	}
	// If the destination is asleep waiting for exactly this message, it
	// re-enters the active set NOW, atomically with the send — otherwise a
	// process with a larger clock could be admitted before the receiver's
	// goroutine wakes, breaking the deterministic admission order.
	if m.sched.state[dst] == muxWaiting {
		if wi, ok := m.waiting[dst]; ok && !wi.send && wi.k == k {
			m.sched.state[dst] = muxActive
		}
	}
	m.cond.Broadcast()
}

// muxCapWaitLocked is capWaitLocked under multiplexing: it acquires p's
// scheduler turn AND a free slot on the channel p→dst together. While parked
// for capacity the process leaves the active set (like a blocked receive), so
// co-residents run; on wake it re-acquires its turn before re-checking — the
// same loop shape as muxRecv, preserving the conservative admission order.
// Called with m.mu held; panics with errAborted (mutex released by the
// caller's deferred unlock) if the run fails while waiting.
func (m *Machine) muxCapWaitLocked(p *Proc, dst int) {
	capN := uint64(m.cfg.MailboxCap)
	ls := &m.links[p.id][dst]
	for {
		m.sched.acquireLocked(p)
		if ls.sent < capN {
			return
		}
		idx := ls.sent - capN
		if uint64(len(ls.freed)) > idx {
			if freeAt := ls.freed[idx]; freeAt > p.clock {
				if t := m.cfg.Tracer; t != nil {
					t.Emit(trace.Event{Proc: p.id, Kind: trace.KindBlocked, Start: p.clock, End: freeAt, Peer: dst})
				}
				p.idle += freeAt - p.clock
				p.clock = freeAt
			}
			return
		}
		m.sched.state[p.id] = muxWaiting
		m.waiting[p.id] = waitInfo{send: true, dst: dst, idx: idx}
		m.checkDeadlockLocked()
		if m.failed != nil {
			delete(m.waiting, p.id)
			m.sched.state[p.id] = muxActive
			m.cond.Broadcast()
			panic(errAborted)
		}
		m.cond.Broadcast()
		m.cond.Wait()
		delete(m.waiting, p.id)
		m.sched.state[p.id] = muxActive
		if m.failed != nil {
			m.cond.Broadcast()
			panic(errAborted)
		}
	}
}

// muxRecv is Proc.Recv under multiplexing. Waiting for the message occupies
// no CPU; only the unpacking overhead does.
func (p *Proc) muxRecv(src int, tag int64) []Value {
	m := p.m
	cfg := &m.cfg
	k := key{src: src, tag: tag}
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		m.sched.acquireLocked(p)
		if len(m.boxes[p.id][k]) > 0 {
			break
		}
		// The watchdog (see Recv): a provably unsatisfiable receive fails
		// now instead of hanging.
		if reason := m.unsatisfiableLocked(p.id, k); reason != "" {
			m.failed = &RecvTimeoutError{Proc: p.id, Src: src, Tag: tag, Clock: p.clock, Reason: reason}
			m.cond.Broadcast()
			panic(errAborted)
		}
		// Nothing to receive: step out of the active set so co-residents
		// (and everyone else) can proceed.
		m.sched.state[p.id] = muxWaiting
		m.waiting[p.id] = waitInfo{k: k}
		m.checkDeadlockLocked()
		if m.failed != nil {
			delete(m.waiting, p.id)
			m.sched.state[p.id] = muxActive
			m.cond.Broadcast()
			panic(errAborted)
		}
		m.cond.Broadcast()
		m.cond.Wait()
		delete(m.waiting, p.id)
		m.sched.state[p.id] = muxActive
		if m.failed != nil {
			m.cond.Broadcast()
			panic(errAborted)
		}
	}
	q := m.boxes[p.id][k]
	msg := q[0]
	if len(q) == 1 {
		delete(m.boxes[p.id], k)
	} else {
		m.boxes[p.id][k] = q[1:]
	}
	if msg.arrive > p.clock {
		if t := cfg.Tracer; t != nil {
			t.Emit(trace.Event{Proc: p.id, Kind: trace.KindIdle, Start: p.clock, End: msg.arrive,
				Peer: src, Tag: tag, Seq: msg.seq, Arrive: msg.arrive})
		}
		p.idle += msg.arrive - p.clock
		p.clock = msg.arrive // waiting: no CPU charged
	}
	over := cfg.RecvStartup + Cost(len(msg.vals))*cfg.PerValue
	m.sched.busyLocked(p, over)
	p.comm += over
	if t := cfg.Tracer; t != nil {
		t.Emit(trace.Event{Proc: p.id, Kind: trace.KindRecv, Start: p.clock - over, End: p.clock,
			Peer: src, Tag: tag, Values: len(msg.vals), Seq: msg.seq, Arrive: msg.arrive})
	}
	if cfg.MailboxCap > 0 {
		// Free the channel slot at the receiver's post-overhead clock, and —
		// like muxSend waking a waiting receiver — reactivate a sender parked
		// on this channel NOW, atomically with the free, so the deterministic
		// admission order cannot depend on when its goroutine wakes.
		m.links[src][p.id].freed = append(m.links[src][p.id].freed, p.clock)
		if m.sched.state[src] == muxWaiting {
			if wi, ok := m.waiting[src]; ok && wi.send && wi.dst == p.id {
				m.sched.state[src] = muxActive
			}
		}
		m.cond.Broadcast()
	}
	return msg.vals
}

// NodeTimes reports the physical node clocks of a multiplexed run (nil when
// the machine was not multiplexed).
func (m *Machine) NodeTimes() []Cost {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.sched == nil {
		return nil
	}
	return append([]Cost(nil), m.sched.nodes...)
}
