package machine

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"procdecomp/internal/faults"
)

// engines runs a subtest per simulation core, since the watchdog and
// cancellation rules are implemented separately in each.
func engines(t *testing.T, f func(t *testing.T, e Engine)) {
	t.Helper()
	for _, e := range []Engine{EngineEvent, EngineGoroutine} {
		t.Run(e.String(), func(t *testing.T) { f(t, e) })
	}
}

// TestCapBlockedSenderOnCrashedPeer: MailboxCap backpressure interacting
// with a crash-stop fault. Process 1 crash-stops before receiving anything;
// process 0 fills the bounded 0→1 channel and blocks on capacity. The send
// watchdog must diagnose the wait as unsatisfiable — a typed SendTimeoutError
// naming the sender, the dead destination, and the reason — never a bare
// deadlock report and never a hang.
func TestCapBlockedSenderOnCrashedPeer(t *testing.T) {
	engines(t, func(t *testing.T, e Engine) {
		cfg := DefaultConfig(2)
		cfg.Engine = e
		cfg.MailboxCap = 1
		cfg.Faults = &faults.Schedule{Seed: 1, Crash: map[int]uint64{1: 0}}
		m := New(cfg)
		err := m.Run(func(p *Proc) {
			if p.ID() == 1 {
				p.Compute(1) // crash-stops here (crash point 0)
				p.Recv(0, 7)
				return
			}
			p.Send(1, 7, 1.0) // fills the one-slot channel
			p.Send(1, 7, 2.0) // blocks on capacity, forever
		})
		if err == nil {
			t.Fatal("run succeeded; want a send watchdog error")
		}
		if errors.Is(err, ErrDeadlock) {
			t.Fatalf("got a deadlock report, want a typed send watchdog error: %v", err)
		}
		if !errors.Is(err, ErrSendTimeout) {
			t.Fatalf("errors.Is(err, ErrSendTimeout) = false for %v", err)
		}
		var ste *SendTimeoutError
		if !errors.As(err, &ste) {
			t.Fatalf("error is %T, want *SendTimeoutError: %v", err, err)
		}
		if ste.Proc != 0 || ste.Dst != 1 {
			t.Errorf("watchdog blamed proc %d -> %d, want 0 -> 1", ste.Proc, ste.Dst)
		}
		if ste.Reason == "" {
			t.Error("watchdog reported no reason")
		}
	})
}

// TestCapBlockedSenderCrashAfterBlock covers the other interleaving: the
// sender is already parked on the full channel when the receiver crashes
// mid-run. The crash wake-up must reach capacity-blocked senders, not only
// blocked receivers.
func TestCapBlockedSenderCrashAfterBlock(t *testing.T) {
	engines(t, func(t *testing.T, e Engine) {
		cfg := DefaultConfig(2)
		cfg.Engine = e
		cfg.MailboxCap = 1
		// Process 1 crashes at virtual time 5000: after it has received one
		// message (freeing a slot) but before it drains the rest.
		cfg.Faults = &faults.Schedule{Seed: 1, Crash: map[int]uint64{1: 5000}}
		m := New(cfg)
		err := m.Run(func(p *Proc) {
			if p.ID() == 1 {
				p.Recv(0, 7)
				p.Compute(10000) // crosses the crash point
				p.Recv(0, 7)
				p.Recv(0, 7)
				return
			}
			for i := 0; i < 3; i++ {
				p.Send(1, 7, float64(i))
			}
		})
		if err == nil {
			t.Fatal("run succeeded; want a send watchdog error")
		}
		if !errors.Is(err, ErrSendTimeout) {
			t.Fatalf("want ErrSendTimeout, got %v", err)
		}
	})
}

// TestCancelAbortsRun: closing Config.Cancel makes a long compute-bound run
// return a typed *CanceledError instead of running to completion.
func TestCancelAbortsRun(t *testing.T) {
	engines(t, func(t *testing.T, e Engine) {
		cancel := make(chan struct{})
		close(cancel) // canceled before the run starts: the first action aborts
		cfg := DefaultConfig(4)
		cfg.Engine = e
		cfg.Cancel = cancel
		m := New(cfg)
		err := m.Run(func(p *Proc) {
			for i := 0; i < 1_000_000; i++ {
				p.Compute(1)
			}
		})
		if err == nil {
			t.Fatal("canceled run succeeded")
		}
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("errors.Is(err, ErrCanceled) = false for %v", err)
		}
		var ce *CanceledError
		if !errors.As(err, &ce) {
			t.Fatalf("error is %T, want *CanceledError", err)
		}
	})
}

// TestCancelUnblocksParkedReceiver: cancellation must also reach a process
// blocked in Recv with no message coming — the case where only the host's
// wall-clock signal can end the run.
func TestCancelUnblocksParkedReceiver(t *testing.T) {
	engines(t, func(t *testing.T, e Engine) {
		cancel := make(chan struct{})
		cfg := DefaultConfig(2)
		cfg.Engine = e
		cfg.Cancel = cancel
		m := New(cfg)
		done := make(chan error, 1)
		go func() {
			done <- m.Run(func(p *Proc) {
				if p.ID() == 0 {
					// An endless ping-pong: proc 0 keeps proc 1 fed so the
					// run never deadlocks and never finishes on its own.
					for i := 0; ; i++ {
						p.Send(1, 1, float64(i))
						p.Recv(1, 2)
					}
				}
				for {
					p.Recv(0, 1)
					p.Send(0, 2, 1.0)
				}
			})
		}()
		time.Sleep(5 * time.Millisecond)
		close(cancel)
		select {
		case err := <-done:
			if !errors.Is(err, ErrCanceled) {
				t.Fatalf("want ErrCanceled, got %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("run did not terminate after cancellation")
		}
	})
}

// TestCancelNeverClosedIsIdentical: a Cancel channel that never fires must
// not change the simulated result in any way.
func TestCancelNeverClosedIsIdentical(t *testing.T) {
	engines(t, func(t *testing.T, e Engine) {
		run := func(cancel <-chan struct{}) Stats {
			cfg := DefaultConfig(3)
			cfg.Engine = e
			cfg.Cancel = cancel
			m := New(cfg)
			if err := m.Run(func(p *Proc) {
				p.Compute(10)
				next := (p.ID() + 1) % 3
				prev := (p.ID() + 2) % 3
				p.Send(next, 1, float64(p.ID()))
				p.Recv(prev, 1)
			}); err != nil {
				t.Fatal(err)
			}
			s, err := m.Stats()
			if err != nil {
				t.Fatal(err)
			}
			return s
		}
		base := run(nil)
		got := run(make(chan struct{}))
		if fmt.Sprint(base) != fmt.Sprint(got) {
			t.Fatalf("an armed-but-silent Cancel changed the run:\n base %v\n got  %v", base, got)
		}
	})
}
