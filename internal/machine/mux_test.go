package machine

import (
	"errors"
	"testing"
)

func muxConfig(procs int, placement []int) Config {
	cfg := testConfig(procs)
	cfg.Placement = placement
	return cfg
}

// Identity placement (one process per node) must behave exactly like the
// direct machine: same clocks, same stats.
func TestMuxIdentityMatchesDirect(t *testing.T) {
	body := func(p *Proc) {
		right := (p.ID() + 1) % 4
		left := (p.ID() + 3) % 4
		p.Compute(Cost(p.ID()*37 + 11))
		p.Send(right, 1, 1, 2)
		vals := p.Recv(left, 1)
		p.Compute(Cost(len(vals)) * 100)
	}
	direct := New(testConfig(4))
	if err := direct.Run(body); err != nil {
		t.Fatal(err)
	}
	mux := New(muxConfig(4, []int{0, 1, 2, 3}))
	if err := mux.Run(body); err != nil {
		t.Fatal(err)
	}
	ds, ms := mustStats(t, direct), mustStats(t, mux)
	if ds.Makespan != ms.Makespan {
		t.Errorf("makespan %d != %d", ms.Makespan, ds.Makespan)
	}
	for i := range ds.ProcTimes {
		if ds.ProcTimes[i] != ms.ProcTimes[i] {
			t.Errorf("proc %d clock %d != %d", i, ms.ProcTimes[i], ds.ProcTimes[i])
		}
	}
	if ds.Messages != ms.Messages || ds.Values != ms.Values {
		t.Error("message stats differ")
	}
}

// Co-resident processes serialize their compute: two processes doing 1000
// cycles each on one node take 2000 node cycles.
func TestMuxSerializesCompute(t *testing.T) {
	m := New(muxConfig(2, []int{0, 0}))
	if err := m.Run(func(p *Proc) {
		p.Compute(1000)
	}); err != nil {
		t.Fatal(err)
	}
	nodes := m.NodeTimes()
	if len(nodes) != 1 || nodes[0] != 2000 {
		t.Errorf("node times = %v, want [2000]", nodes)
	}
	st := mustStats(t, m)
	if st.Makespan != 2000 {
		t.Errorf("makespan = %d, want 2000", st.Makespan)
	}
}

// Latency hiding (§5.4): while one resident waits for a remote message, its
// co-resident computes. The node finishes much earlier than if the wait
// held the CPU.
func TestMuxLatencyHiding(t *testing.T) {
	// Process 0 (node 0) waits for a message process 2 (node 1) sends after
	// long compute; process 1 (node 0) computes meanwhile.
	m := New(muxConfig(3, []int{0, 0, 1}))
	if err := m.Run(func(p *Proc) {
		switch p.ID() {
		case 0:
			p.Recv(2, 9)
			p.Compute(10)
		case 1:
			p.Compute(5000)
		case 2:
			p.Compute(5000)
			p.Send(0, 9, 1)
		}
	}); err != nil {
		t.Fatal(err)
	}
	st := mustStats(t, m)
	// Process 1's 5000 cycles fully overlap process 0's wait: node 0's
	// clock stays near the message arrival, not near wait+5000.
	arrival := Cost(5000) + testConfig(3).SendStartup + 2 + testConfig(3).Latency
	finish0 := st.ProcTimes[0]
	if finish0 > arrival+200 {
		t.Errorf("process 0 finished at %d; waiting seems to have held the CPU (arrival %d)", finish0, arrival)
	}
	if st.Breakdown[0].Idle == 0 {
		t.Error("process 0 should have idled waiting")
	}
	if st.ProcTimes[1] < 5000 {
		t.Error("process 1 did not do its work")
	}
}

// Determinism: repeated multiplexed runs give identical clocks.
func TestMuxDeterministic(t *testing.T) {
	run := func() []Cost {
		m := New(muxConfig(6, []int{0, 1, 0, 1, 0, 1}))
		if err := m.Run(func(p *Proc) {
			right := (p.ID() + 1) % 6
			left := (p.ID() + 5) % 6
			for k := 0; k < 5; k++ {
				p.Compute(Cost(13*p.ID() + 7))
				if p.ID()%2 == 0 {
					p.Send(right, 1, float64(k))
					p.Recv(left, 2)
				} else {
					p.Recv(left, 1)
					p.Send(right, 2, float64(k))
				}
			}
		}); err != nil {
			t.Fatal(err)
		}
		return mustStats(t, m).ProcTimes
	}
	first := run()
	for trial := 0; trial < 15; trial++ {
		got := run()
		for i := range first {
			if got[i] != first[i] {
				t.Fatalf("trial %d: proc %d clock %d != %d", trial, i, got[i], first[i])
			}
		}
	}
}

func TestMuxDeadlockDetected(t *testing.T) {
	m := New(muxConfig(2, []int{0, 0}))
	err := m.Run(func(p *Proc) {
		p.Recv(1-p.ID(), 99)
	})
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v, want deadlock", err)
	}
}

// Deadlock detection through the muxRecv path: co-resident processes wait
// on a cycle that crosses nodes while another resident finished long ago.
func TestMuxDeadlockCoResidentCycle(t *testing.T) {
	// Processes 0,1 on node 0; 2,3 on node 1. Process 0 computes and exits;
	// 1 -> 3 -> 2 -> 1 wait on each other forever.
	m := New(muxConfig(4, []int{0, 0, 1, 1}))
	err := m.Run(func(p *Proc) {
		switch p.ID() {
		case 0:
			p.Compute(500)
		case 1:
			p.Recv(3, 1)
		case 2:
			p.Recv(1, 1)
		case 3:
			p.Recv(2, 1)
		}
	})
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v, want deadlock", err)
	}
}

// A queued message under the wrong tag must not mask a multiplexed deadlock:
// the detector requires a pending message that satisfies a waiter.
func TestMuxDeadlockDespitePendingWrongTag(t *testing.T) {
	m := New(muxConfig(3, []int{0, 0, 0}))
	err := m.Run(func(p *Proc) {
		switch p.ID() {
		case 0:
			p.Send(1, 5, 1.0) // delivered but never awaited
			p.Recv(1, 6)
		case 1:
			p.Recv(0, 6)
		case 2:
			p.Compute(10)
		}
	})
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v, want deadlock", err)
	}
}

// A traced multiplexed deadlock still reports ErrDeadlock (the tracer must
// not interfere with the abort paths).
func TestMuxDeadlockWithTracer(t *testing.T) {
	cfg := muxConfig(2, []int{0, 0})
	cfg.Tracer = nil // exercise default first
	for _, traced := range []bool{false, true} {
		cfg := cfg
		if traced {
			cfg.Tracer = newTestLog()
		}
		m := New(cfg)
		err := m.Run(func(p *Proc) {
			p.Recv(1-p.ID(), 99)
		})
		if !errors.Is(err, ErrDeadlock) {
			t.Fatalf("traced=%v: err = %v, want deadlock", traced, err)
		}
	}
}

func TestMuxPanicAborts(t *testing.T) {
	m := New(muxConfig(3, []int{0, 0, 1}))
	err := m.Run(func(p *Proc) {
		if p.ID() == 2 {
			panic("boom")
		}
		p.Recv(2, 1)
	})
	if err == nil || errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v, want process failure", err)
	}
}

func TestMuxBadPlacement(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for bad placement length")
		}
	}()
	New(muxConfig(3, []int{0, 1}))
}
