package machine

import (
	"fmt"
	"sort"
	"strings"

	"procdecomp/internal/trace"
)

// Reliable delivery over a faulty fabric.
//
// When Config.Faults is set, the ideal network of §2.2 is replaced by one
// that can drop, duplicate, delay, and reorder individual transmission
// attempts (see internal/faults). Programs still see the paper's semantics —
// per-(src,tag) FIFOs delivering exactly the values sent — because each link
// runs a reliable transport: every message gets a per-link sequence number,
// is retransmitted on a virtual-time retry timer with exponential backoff
// until acknowledged, duplicates are suppressed at the receiver, and
// delivery is released in sequence order (a reordered early arrival waits
// for its predecessor's release).
//
// The protocol is simulated synchronously at send time: because every fault
// decision is a pure function of (seed, link, seq, attempt) and retry timers
// live in virtual time, the entire retransmission dialogue — and therefore
// the message's final release stamp — is computable the moment the send
// happens, in the sender's goroutine, without simulating the NIC as a
// separate process. Retransmissions are NIC work, not process work: they
// consume no process CPU, so fault storms surface as receiver idle time
// (later arrival stamps), exactly where a real latency hit would land.
//
// If the transport exhausts its attempt budget the message is lost forever
// and the link is declared dead (later sends on it are lost too, like a
// reset connection). A receive that can be proven unsatisfiable — its
// message lost, its link dead, or its peer crash-stopped — fails with a
// RecvTimeoutError naming the blocked (src, tag) instead of hanging; the
// deadlock detector performs the same test at quiescence.

// waitInfo records why a process is parked: blocked in Recv for a (src,tag)
// key, or blocked in Send until its channel has a free slot.
type waitInfo struct {
	send bool
	k    key    // recv: the awaited (src, tag)
	dst  int    // send: the destination whose channel is full
	idx  uint64 // send: the channel dequeue index being waited for
}

// linkState is the per-(src,dst) transport and backpressure state. seq,
// lastRel, dead, and sent are written only by the sending process; freed is
// appended by the receiving process. All access happens under the machine
// mutex (fault/backpressure paths only — the ideal fabric never touches it).
type linkState struct {
	seq     uint64 // transport sequence numbers consumed (including lost)
	lastRel Cost   // release stamp of the last delivered message (in-order)
	dead    bool   // a message was lost forever; the link is down for good
	sent    uint64 // messages enqueued at the destination (occupancy numerator)
	freed   []Cost // cumulative virtual times the receiver freed each slot
}

// lostRecord describes the first message lost forever on a (dst, src, tag)
// queue, for watchdog diagnostics.
type lostRecord struct {
	count    int
	seq      uint64
	at       Cost // departure time of the final attempt
	attempts int
}

// faultive reports whether sends must take the slow path (fault transport
// and/or bounded channels).
func (m *Machine) faultive() bool {
	return m.cfg.Faults != nil || m.cfg.MailboxCap > 0
}

// transmitLocked simulates the reliable delivery of one message departing
// p→dst at virtual time depart, and returns its release stamp at the
// receiver. ok is false when the transport gave up: the message is lost
// forever and recorded for watchdog diagnostics. Called with m.mu held.
func (m *Machine) transmitLocked(p *Proc, dst int, tag int64, nvals int, depart Cost) (release Cost, ok bool) {
	f := m.cfg.Faults
	ls := &m.links[p.id][dst]
	seq := ls.seq
	ls.seq++
	t := m.cfg.Tracer
	wire := func(kind trace.WireKind, attempt int, at Cost) {
		if t != nil {
			t.EmitWire(trace.WireEvent{Kind: kind, Src: p.id, Dst: dst, Tag: tag,
				Seq: seq, MsgSeq: p.msgSeq, Attempt: attempt, Time: at, Values: nvals})
		}
	}
	if ls.dead {
		m.recordLostLocked(p.id, dst, tag, seq, depart, 0)
		wire(trace.WireLost, 0, depart)
		return 0, false
	}

	rto, maxAttempts := f.Retry(m.cfg.Latency)
	var firstArrive Cost
	delivered := false
	attempts := 0
	for attempt := 1; attempt <= maxAttempts; attempt++ {
		attempts = attempt
		if attempt > 1 {
			m.retries++
		}
		out := f.Attempt(p.id, dst, seq, attempt, depart)
		wire(trace.WireXmit, attempt, depart)
		if out.Drop {
			// The attempt never arrives; the retry timer fires rto later.
			wire(trace.WireDrop, attempt, depart)
			depart += rto
			rto *= 2
			continue
		}
		arrive := depart + m.cfg.Latency + out.Jitter
		if !delivered {
			delivered, firstArrive = true, arrive
			wire(trace.WireDeliver, attempt, arrive)
		} else {
			// A retransmission of data the receiver already has (its ack
			// was lost): suppressed by sequence-number dedup.
			m.dups++
			wire(trace.WireDup, attempt, arrive)
		}
		if out.Dup {
			// The network itself duplicated the attempt; also suppressed.
			m.dups++
			wire(trace.WireDup, attempt, arrive)
		}
		if out.AckDrop {
			wire(trace.WireAckDrop, attempt, arrive)
			depart += rto
			rto *= 2
			continue
		}
		break // acknowledged: the sender's transport is done
	}
	if !delivered {
		ls.dead = true
		m.recordLostLocked(p.id, dst, tag, seq, depart, attempts)
		wire(trace.WireLost, attempts, depart)
		return 0, false
	}
	// In-order release: a message that arrived before its predecessor was
	// released is held by the receiver's transport until sequence order is
	// restored — this is what turns network reordering back into the
	// paper's in-order fabric.
	if firstArrive < ls.lastRel {
		firstArrive = ls.lastRel
	}
	ls.lastRel = firstArrive
	return firstArrive, true
}

// recordLostLocked notes a lost-forever message so a receive blocked on its
// queue can fail with a precise diagnosis rather than a bare deadlock.
func (m *Machine) recordLostLocked(src, dst int, tag int64, seq uint64, at Cost, attempts int) {
	m.lostCount++
	k := key{src: src, tag: tag}
	if m.lost[dst] == nil {
		m.lost[dst] = map[key]lostRecord{}
	}
	r, ok := m.lost[dst][k]
	if !ok {
		r = lostRecord{seq: seq, at: at, attempts: attempts}
	}
	r.count++
	m.lost[dst][k] = r
}

// unsatisfiableLocked reports why a receive by pid on queue k can never be
// satisfied ("" when it still can): the message was lost forever, the link
// is dead, or the sender crash-stopped. Only meaningful when the queue is
// empty and faults are enabled.
func (m *Machine) unsatisfiableLocked(pid int, k key) string {
	if m.cfg.Faults == nil {
		return ""
	}
	if r, ok := m.lost[pid][k]; ok {
		return fmt.Sprintf("message seq %d from process %d was lost forever after %d delivery attempts (last at cycle %d); %d message(s) lost on this queue, link %d->%d is dead",
			r.seq, k.src, r.attempts, r.at, r.count, k.src, pid)
	}
	if m.links[k.src][pid].dead {
		return fmt.Sprintf("link %d->%d is dead (an earlier message on it was lost forever)", k.src, pid)
	}
	if m.crashed[k.src] {
		return fmt.Sprintf("process %d crash-stopped and will never send", k.src)
	}
	return ""
}

// sendUnsatisfiableLocked reports why a send blocked on dst's full bounded
// channel can never proceed ("" when it still can): only dst itself drains
// its mailbox, so once dst crash-stops no slot will ever free. Crashes only
// happen under a fault schedule.
func (m *Machine) sendUnsatisfiableLocked(dst int) string {
	if m.cfg.Faults == nil {
		return ""
	}
	if m.crashed[dst] {
		return fmt.Sprintf("process %d crash-stopped and will never drain its mailbox", dst)
	}
	return ""
}

// capWaitLocked blocks p until the channel p→dst has a free slot
// (Config.MailboxCap), then advances p's clock to the virtual time the slot
// freed — backpressure in virtual time. The wait is charged to the sender's
// idle account and traced as a blocked span. Determinism: the slot p waits
// for is the (sent-cap)-th dequeue on this exact channel, whose virtual time
// is a deterministic property of the receiver's program, so the adopted
// clock cannot depend on goroutine scheduling. Called with m.mu held; panics
// with errAborted (after unlocking) if the run fails while waiting.
func (m *Machine) capWaitLocked(p *Proc, dst int) {
	capN := uint64(m.cfg.MailboxCap)
	ls := &m.links[p.id][dst]
	if capN == 0 || ls.sent < capN {
		return
	}
	idx := ls.sent - capN
	for uint64(len(ls.freed)) <= idx {
		// The send watchdog: a wait for a slot that can be proven never to
		// free — the receiver crash-stopped — fails now with a typed error,
		// at the sender's virtual time, instead of surfacing as a deadlock
		// at quiescence.
		if reason := m.sendUnsatisfiableLocked(dst); reason != "" {
			m.failed = &SendTimeoutError{Proc: p.id, Dst: dst, Clock: p.clock, Reason: reason}
			m.cond.Broadcast()
			m.mu.Unlock()
			panic(errAborted)
		}
		m.waiting[p.id] = waitInfo{send: true, dst: dst, idx: idx}
		m.checkDeadlockLocked()
		if m.failed != nil {
			delete(m.waiting, p.id)
			m.cond.Broadcast()
			m.mu.Unlock()
			panic(errAborted)
		}
		m.cond.Wait()
		delete(m.waiting, p.id)
		if m.failed != nil {
			m.cond.Broadcast()
			m.mu.Unlock()
			panic(errAborted)
		}
	}
	if freeAt := ls.freed[idx]; freeAt > p.clock {
		if t := m.cfg.Tracer; t != nil {
			t.Emit(trace.Event{Proc: p.id, Kind: trace.KindBlocked, Start: p.clock, End: freeAt, Peer: dst})
		}
		p.idle += freeAt - p.clock
		p.clock = freeAt
	}
}

// crashStop is the panic payload of a fault-injected crash: the process
// stops silently (no run-wide abort); peers that depended on it surface
// watchdog or deadlock errors naming it.
type crashStop struct {
	proc int
	at   Cost
}

// checkCrash stops the process if its fault-scheduled crash point has been
// reached. Called at the top of every machine action.
func (p *Proc) checkCrash() {
	f := p.m.cfg.Faults
	if f == nil {
		return
	}
	if at, ok := f.CrashPoint(p.id); ok && p.clock >= Cost(at) {
		panic(crashStop{proc: p.id, at: p.clock})
	}
}

// RecvTimeoutError is the receive watchdog's diagnosis: a process is blocked
// on a (src, tag) queue that can never be satisfied — the message was lost
// forever by the fault schedule, its link is dead, or the sender
// crash-stopped. It satisfies errors.Is(err, ErrRecvTimeout).
type RecvTimeoutError struct {
	Proc  int   // the blocked receiver
	Src   int   // the awaited source
	Tag   int64 // the awaited tag
	Clock Cost  // the receiver's virtual time at the blocked receive
	// Reason says why the receive is unsatisfiable.
	Reason string
}

func (e *RecvTimeoutError) Error() string {
	return fmt.Sprintf("machine: receive watchdog: process %d blocked at cycle %d waiting for (src %d, tag %d): %s",
		e.Proc, e.Clock, e.Src, e.Tag, e.Reason)
}

// Is makes errors.Is(err, ErrRecvTimeout) work.
func (e *RecvTimeoutError) Is(target error) bool { return target == ErrRecvTimeout }

// SendTimeoutError is the send watchdog's diagnosis: a process is blocked in
// Send on a full bounded channel (Config.MailboxCap) that can never drain
// because the receiver crash-stopped. It satisfies
// errors.Is(err, ErrSendTimeout).
type SendTimeoutError struct {
	Proc  int  // the blocked sender
	Dst   int  // the destination whose channel is full
	Clock Cost // the sender's virtual time at the blocked send
	// Reason says why the channel can never drain.
	Reason string
}

func (e *SendTimeoutError) Error() string {
	return fmt.Sprintf("machine: send watchdog: process %d blocked at cycle %d sending to process %d on a full channel: %s",
		e.Proc, e.Clock, e.Dst, e.Reason)
}

// Is makes errors.Is(err, ErrSendTimeout) work.
func (e *SendTimeoutError) Is(target error) bool { return target == ErrSendTimeout }

// BlockedProc is one entry of a DeadlockError: a process, what it is blocked
// on, and what its mailbox held at the time.
type BlockedProc struct {
	Proc int
	// Send is true when the process was blocked in Send waiting for channel
	// capacity (Config.MailboxCap), false when blocked in Recv.
	Send bool
	// Peer is the awaited source (recv) or the full channel's destination
	// (send).
	Peer int
	// Tag is the awaited message tag (recv only).
	Tag   int64
	Clock Cost
	// Pending summarizes the non-empty queues sitting in the process's own
	// mailbox — messages it could receive but is not asking for.
	Pending []string
}

func (b BlockedProc) String() string {
	var s string
	if b.Send {
		s = fmt.Sprintf("proc %d blocked in send at cycle %d: channel ->%d full", b.Proc, b.Clock, b.Peer)
	} else {
		s = fmt.Sprintf("proc %d blocked in recv at cycle %d: awaits (src %d, tag %d)", b.Proc, b.Clock, b.Peer, b.Tag)
	}
	if len(b.Pending) > 0 {
		s += fmt.Sprintf(", mailbox holds %s", strings.Join(b.Pending, " "))
	}
	return s
}

// DeadlockError reports a detected deadlock with per-process diagnostics:
// who is blocked on which (src, tag) key or full channel, and what is
// pending in each blocked process's mailbox. It satisfies
// errors.Is(err, ErrDeadlock).
type DeadlockError struct {
	Blocked []BlockedProc
}

func (e *DeadlockError) Error() string {
	parts := make([]string, len(e.Blocked))
	for i, b := range e.Blocked {
		parts[i] = b.String()
	}
	return fmt.Sprintf("machine: deadlock: all %d live processes blocked: %s",
		len(e.Blocked), strings.Join(parts, "; "))
}

// Is makes errors.Is(err, ErrDeadlock) work, preserving the sentinel
// contract of earlier versions.
func (e *DeadlockError) Is(target error) bool { return target == ErrDeadlock }

// deadlockErrorLocked builds the diagnostic for the current quiescent state,
// deterministically ordered by process id.
func (m *Machine) deadlockErrorLocked() error {
	pids := make([]int, 0, len(m.waiting))
	for pid := range m.waiting {
		pids = append(pids, pid)
	}
	sort.Ints(pids)
	e := &DeadlockError{}
	for _, pid := range pids {
		wi := m.waiting[pid]
		bp := BlockedProc{Proc: pid, Send: wi.send, Clock: m.procs[pid].clock}
		if wi.send {
			bp.Peer = wi.dst
		} else {
			bp.Peer, bp.Tag = wi.k.src, wi.k.tag
		}
		ks := make([]key, 0, len(m.boxes[pid]))
		for k, q := range m.boxes[pid] {
			if len(q) > 0 {
				ks = append(ks, k)
			}
		}
		sort.Slice(ks, func(i, j int) bool {
			if ks[i].src != ks[j].src {
				return ks[i].src < ks[j].src
			}
			return ks[i].tag < ks[j].tag
		})
		for _, k := range ks {
			bp.Pending = append(bp.Pending, fmt.Sprintf("(src %d, tag %d)x%d", k.src, k.tag, len(m.boxes[pid][k])))
		}
		e.Blocked = append(e.Blocked, bp)
	}
	return e
}
