package machine

import (
	"reflect"
	"testing"
)

// pingPong is the heartbeat workload: rounds request/reply exchanges between
// two processes, so the event loop performs a known-shaped dispatch sequence
// (each blocking receive forces a fresh dispatch).
func pingPong(rounds int) func(p *Proc) {
	return func(p *Proc) {
		for i := 0; i < rounds; i++ {
			if p.ID() == 0 {
				p.Send(1, 1, Value(i))
				p.Recv(1, 2)
			} else {
				p.Recv(0, 1)
				p.Send(0, 2, Value(i))
			}
		}
	}
}

// heartbeats runs the workload on the given engine and returns the beat
// clocks in call order plus the run's stats. Heartbeat runs on the loop's
// own goroutine, and Run joins it, so the slice is safe to read after.
func heartbeats(t *testing.T, engine Engine, every, rounds int) ([]Cost, Stats) {
	t.Helper()
	cfg := testConfig(2)
	cfg.Engine = engine
	cfg.HeartbeatEvery = every
	var beats []Cost
	cfg.Heartbeat = func(c Cost) { beats = append(beats, c) }
	m := New(cfg)
	if err := m.Run(pingPong(rounds)); err != nil {
		t.Fatal(err)
	}
	return beats, mustStats(t, m)
}

// TestHeartbeatCadence pins the contract: on the event engine, Heartbeat
// fires exactly every HeartbeatEvery dispatches — halving the interval over
// the same workload yields floor(D/k) beats for the same dispatch count D.
func TestHeartbeatCadence(t *testing.T) {
	const rounds = 200
	// every=1 counts every dispatch, giving us the workload's exact D.
	all, _ := heartbeats(t, EngineEvent, 1, rounds)
	d := len(all)
	if d < 2*rounds {
		t.Fatalf("ping-pong of %d rounds produced only %d dispatches", rounds, d)
	}
	for _, every := range []int{4, 8, 16, 64} {
		beats, _ := heartbeats(t, EngineEvent, every, rounds)
		if want := d / every; len(beats) != want {
			t.Errorf("every=%d: %d beats over %d dispatches, want %d", every, len(beats), d, want)
		}
	}
}

// TestHeartbeatOrdering pins the loop's clock discipline: beats report the
// loop's current virtual time, so the sequence is non-decreasing and never
// exceeds the run's makespan.
func TestHeartbeatOrdering(t *testing.T) {
	beats, st := heartbeats(t, EngineEvent, 8, 200)
	if len(beats) == 0 {
		t.Fatal("no beats")
	}
	for i := 1; i < len(beats); i++ {
		if beats[i] < beats[i-1] {
			t.Fatalf("beat %d went backwards: %d after %d", i, beats[i], beats[i-1])
		}
	}
	if last := beats[len(beats)-1]; last > st.Makespan {
		t.Errorf("last beat %d exceeds makespan %d", last, st.Makespan)
	}
}

// TestHeartbeatDeterministic: equal runs beat at equal virtual clocks.
func TestHeartbeatDeterministic(t *testing.T) {
	a, _ := heartbeats(t, EngineEvent, 8, 200)
	b, _ := heartbeats(t, EngineEvent, 8, 200)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("beat sequences differ between identical runs:\n%v\n%v", a, b)
	}
}

// TestHeartbeatObservationalOnly: the hook must not perturb the simulation —
// stats are bit-identical with and without it — and the default interval
// only applies when the hook is set at all.
func TestHeartbeatObservationalOnly(t *testing.T) {
	const rounds = 200
	_, withBeats := heartbeats(t, EngineEvent, 3, rounds)
	cfg := testConfig(2)
	cfg.Engine = EngineEvent
	m := New(cfg)
	if err := m.Run(pingPong(rounds)); err != nil {
		t.Fatal(err)
	}
	if without := mustStats(t, m); !reflect.DeepEqual(without, withBeats) {
		t.Errorf("heartbeat perturbed the simulation:\nwith:    %+v\nwithout: %+v", withBeats, without)
	}
}

// TestHeartbeatDefaultInterval: HeartbeatEvery <= 0 means the documented
// default of 4096 dispatches, verified against the workload's exact
// dispatch count.
func TestHeartbeatDefaultInterval(t *testing.T) {
	const rounds = 3000 // enough dispatches to cross 4096 at least once
	all, _ := heartbeats(t, EngineEvent, 1, rounds)
	d := len(all)
	if d <= 4096 {
		t.Fatalf("workload produced only %d dispatches, cannot observe the default interval", d)
	}
	beats, _ := heartbeats(t, EngineEvent, 0, rounds)
	if want := d / 4096; len(beats) != want {
		t.Errorf("default interval: %d beats over %d dispatches, want %d", len(beats), d, want)
	}
}

// TestHeartbeatGoroutineEngineIgnores: the goroutine engine has no single
// clock owner, so the hook documents itself as event-engine-only.
func TestHeartbeatGoroutineEngineIgnores(t *testing.T) {
	beats, _ := heartbeats(t, EngineGoroutine, 1, 50)
	if len(beats) != 0 {
		t.Errorf("goroutine engine called Heartbeat %d times, want 0", len(beats))
	}
}
