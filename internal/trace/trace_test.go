package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestEmitCoalescesCompute(t *testing.T) {
	l := New()
	l.Begin(1, nil)
	l.Emit(Event{Proc: 0, Kind: KindCompute, Start: 0, End: 5, Peer: -1})
	l.Emit(Event{Proc: 0, Kind: KindCompute, Start: 5, End: 9, Peer: -1})
	l.Emit(Event{Proc: 0, Kind: KindSend, Start: 9, End: 20, Peer: 0, Tag: 1, Values: 2})
	l.Emit(Event{Proc: 0, Kind: KindCompute, Start: 20, End: 21, Peer: -1})
	evs := l.Events(0)
	if len(evs) != 3 {
		t.Fatalf("events = %d, want 3 (adjacent compute spans must merge)", len(evs))
	}
	if evs[0].Start != 0 || evs[0].End != 9 {
		t.Errorf("merged span = [%d,%d), want [0,9)", evs[0].Start, evs[0].End)
	}
}

func TestEmitDropsZeroDurationCompute(t *testing.T) {
	l := New()
	l.Begin(1, nil)
	l.Emit(Event{Proc: 0, Kind: KindCompute, Start: 3, End: 3, Peer: -1})
	l.Emit(Event{Proc: 0, Kind: KindIdle, Start: 3, End: 3, Peer: 0})
	l.Emit(Event{Proc: 0, Kind: KindBlocked, Start: 3, End: 3, Peer: -1})
	if n := len(l.Events(0)); n != 0 {
		t.Fatalf("events = %d, want 0", n)
	}
	// Zero-duration sends keep their message-pattern information.
	l.Emit(Event{Proc: 0, Kind: KindSend, Start: 3, End: 3, Peer: 0, Tag: 9, Values: 1})
	if n := len(l.Events(0)); n != 1 {
		t.Fatalf("events = %d, want 1 (zero-duration send must be kept)", n)
	}
}

func TestSumsAndReconcile(t *testing.T) {
	l := New()
	l.Begin(2, nil)
	l.Emit(Event{Proc: 0, Kind: KindCompute, Start: 0, End: 50, Peer: -1})
	l.Emit(Event{Proc: 0, Kind: KindSend, Start: 50, End: 152, Peer: 1, Tag: 7, Values: 1})
	l.Emit(Event{Proc: 1, Kind: KindIdle, Start: 0, End: 157, Peer: 0, Tag: 7})
	l.Emit(Event{Proc: 1, Kind: KindRecv, Start: 157, End: 169, Peer: 0, Tag: 7, Values: 1})

	s := l.Sums(0)
	if s.Compute != 50 || s.Comm != 102 || s.Idle != 0 {
		t.Errorf("proc 0 sums = %+v", s)
	}
	if err := l.Reconcile(0, 50, 102, 0, 152); err != nil {
		t.Errorf("proc 0: %v", err)
	}
	if err := l.Reconcile(1, 0, 12, 157, 169); err != nil {
		t.Errorf("proc 1: %v", err)
	}
	// Wrong partition must be detected.
	if err := l.Reconcile(0, 49, 103, 0, 152); err == nil {
		t.Error("reconcile accepted a wrong compute sum")
	}
	// Wrong clock must be detected.
	if err := l.Reconcile(0, 50, 102, 0, 200); err == nil {
		t.Error("reconcile accepted a wrong final clock")
	}
}

func TestReconcileDetectsGapsAndOverlaps(t *testing.T) {
	l := New()
	l.Begin(1, nil)
	l.Emit(Event{Proc: 0, Kind: KindCompute, Start: 0, End: 10, Peer: -1})
	l.Emit(Event{Proc: 0, Kind: KindRecv, Start: 12, End: 20, Peer: 0}) // gap [10,12)
	if err := l.Reconcile(0, 10, 8, 0, 20); err == nil {
		t.Error("reconcile accepted a gap in the event tiling")
	}

	l.Begin(1, nil)
	l.Emit(Event{Proc: 0, Kind: KindCompute, Start: 0, End: 10, Peer: -1})
	l.Emit(Event{Proc: 0, Kind: KindRecv, Start: 8, End: 20, Peer: 0}) // overlaps
	if err := l.Reconcile(0, 10, 12, 0, 20); err == nil {
		t.Error("reconcile accepted overlapping events")
	}
}

func TestMessageMatrixAndTagHistogram(t *testing.T) {
	l := New()
	l.Begin(3, nil)
	l.Emit(Event{Proc: 0, Kind: KindSend, Start: 0, End: 1, Peer: 1, Tag: 1, Values: 4})
	l.Emit(Event{Proc: 0, Kind: KindSend, Start: 1, End: 2, Peer: 1, Tag: 2, Values: 8})
	l.Emit(Event{Proc: 2, Kind: KindSend, Start: 0, End: 1, Peer: 0, Tag: 1, Values: 1})
	// Receives must not count as traffic.
	l.Emit(Event{Proc: 1, Kind: KindRecv, Start: 0, End: 1, Peer: 0, Tag: 1, Values: 4})

	m := l.MessageMatrix()
	if m[0][1] != 2 || m[2][0] != 1 || m[0][2] != 0 {
		t.Errorf("matrix = %v", m)
	}
	if l.Messages() != 3 {
		t.Errorf("messages = %d, want 3", l.Messages())
	}
	h := l.TagHistogram()
	if h[1].Messages != 2 || h[1].Values != 5 {
		t.Errorf("tag 1 = %+v", h[1])
	}
	if h[2].Messages != 1 || h[2].Values != 8 {
		t.Errorf("tag 2 = %+v", h[2])
	}
	src, dst, c, ok := l.BusiestLink()
	if !ok || src != 0 || dst != 1 || c != 2 {
		t.Errorf("busiest link = %d->%d (%d, ok=%v)", src, dst, c, ok)
	}
}

// chromeFile mirrors the trace-event JSON shape for decoding in tests.
type chromeFile struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		Ts   uint64         `json:"ts"`
		Dur  uint64         `json:"dur"`
		Pid  int            `json:"pid"`
		Tid  int            `json:"tid"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
}

func TestWriteChromeTraceValidJSON(t *testing.T) {
	l := New()
	l.Begin(2, nil)
	l.Emit(Event{Proc: 0, Kind: KindCompute, Start: 0, End: 50, Peer: -1})
	l.Emit(Event{Proc: 0, Kind: KindSend, Start: 50, End: 152, Peer: 1, Tag: 7, Values: 3})
	l.Emit(Event{Proc: 1, Kind: KindIdle, Start: 0, End: 157, Peer: 0, Tag: 7})
	l.Emit(Event{Proc: 1, Kind: KindRecv, Start: 157, End: 169, Peer: 0, Tag: 7, Values: 3})

	var buf bytes.Buffer
	if err := l.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var f chromeFile
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	var spans, meta int
	for _, e := range f.TraceEvents {
		switch e.Ph {
		case "X":
			spans++
			if e.Name == "send" {
				if e.Ts != 50 || e.Dur != 102 || e.Tid != 0 {
					t.Errorf("send span = %+v", e)
				}
				if dst, okd := e.Args["dst"]; !okd || dst != float64(1) {
					t.Errorf("send args = %v", e.Args)
				}
			}
		case "M":
			meta++
		}
	}
	if spans != 4 {
		t.Errorf("span events = %d, want 4", spans)
	}
	if meta < 3 { // one process_name + two thread_name
		t.Errorf("metadata events = %d, want >= 3", meta)
	}
}

func TestWriteChromeTracePlacementTracks(t *testing.T) {
	l := New()
	l.Begin(4, []int{0, 0, 1, 1})
	l.Emit(Event{Proc: 2, Kind: KindCompute, Start: 0, End: 10, Peer: -1})
	l.Emit(Event{Proc: 3, Kind: KindBlocked, Start: 0, End: 10, Peer: -1})

	var buf bytes.Buffer
	if err := l.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "node 0") || !strings.Contains(out, "node 1") {
		t.Error("per-node tracks missing under Placement")
	}
	var f chromeFile
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatal(err)
	}
	for _, e := range f.TraceEvents {
		if e.Ph == "X" && e.Tid == 2 && e.Pid != 1 {
			t.Errorf("proc 2's span on pid %d, want node 1", e.Pid)
		}
	}
}

func TestKindString(t *testing.T) {
	want := map[Kind]string{
		KindCompute: "compute", KindSend: "send", KindRecv: "recv",
		KindIdle: "idle", KindBlocked: "blocked",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), s)
		}
	}
}
