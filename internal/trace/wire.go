package trace

import "sync"

// Wire-level events: what the reliable transport did underneath the process
// spans. Process events (compute/send/recv/idle/blocked) must tile each
// process's clock exactly — Reconcile enforces it — so transport activity
// (retransmissions, drops, duplicate suppression) is recorded in a separate
// stream that carries virtual timestamps but occupies no process time.
// The Chrome export shows it as instant events on a "network" track, so a
// trace of a chaos run displays the fault storm under the process timeline.

// WireKind classifies one transport event.
type WireKind uint8

const (
	// WireXmit is a data transmission attempt leaving the sender's NIC.
	WireXmit WireKind = iota
	// WireDrop is an attempt dropped by the fault schedule or a downed link.
	WireDrop
	// WireDeliver is the first copy of a message reaching the receiver's
	// transport (the copy that is released to the application).
	WireDeliver
	// WireDup is a redundant copy suppressed by the receiver's duplicate
	// detection (a network duplicate, or a retransmission after a lost ack).
	WireDup
	// WireAckDrop is a lost acknowledgement: the data arrived but the sender
	// will retransmit it anyway.
	WireAckDrop
	// WireLost is the transport giving up after its attempt budget: the
	// message is lost forever and the link is declared dead.
	WireLost
)

func (k WireKind) String() string {
	switch k {
	case WireXmit:
		return "xmit"
	case WireDrop:
		return "drop"
	case WireDeliver:
		return "deliver"
	case WireDup:
		return "dup"
	case WireAckDrop:
		return "ackdrop"
	case WireLost:
		return "lost"
	}
	return "WireKind(?)"
}

// WireEvent is one transport-level event at a virtual-time instant.
type WireEvent struct {
	Kind     WireKind
	Src, Dst int
	Tag      int64
	// Seq is the message's per-link transport sequence number.
	Seq uint64
	// MsgSeq is the sender's application-level message counter — the same
	// number the send/recv/idle process spans carry in Event.Seq — linking
	// every transport attempt back to the process span that initiated it.
	MsgSeq uint64
	// Attempt is the 1-based transmission attempt the event belongs to.
	Attempt int
	// Time is the virtual instant: departure for xmit/drop/lost, arrival
	// for deliver/dup/ackdrop.
	Time uint64
	// Values is the message's payload size.
	Values int
}

// EmitWire appends one transport event. Unlike Emit, wire events originate
// from many sender goroutines into one stream, so the log serializes them
// with its own mutex. Ordering between concurrent senders is not meaningful
// (each event carries its virtual timestamp); per-link order is send order.
func (l *Log) EmitWire(e WireEvent) {
	l.wmu.Lock()
	l.wire = append(l.wire, e)
	l.wmu.Unlock()
}

// WireEvents returns the transport event stream. Read only after the run
// completes; the returned slice is the log's own storage.
func (l *Log) WireEvents() []WireEvent {
	l.wmu.Lock()
	defer l.wmu.Unlock()
	return l.wire
}

// WireCounts sums the transport stream by kind.
func (l *Log) WireCounts() map[WireKind]int64 {
	c := map[WireKind]int64{}
	for _, e := range l.WireEvents() {
		c[e.Kind]++
	}
	return c
}

// wireState is embedded in Log (kept in a separate struct so trace.go stays
// focused on process spans).
type wireState struct {
	wmu  sync.Mutex
	wire []WireEvent
}
