package trace

// Communication-pattern analysis over the event log, in the spirit of the
// per-message communication profiles PGAS-compiler work uses to drive
// optimization decisions: who talks to whom (MessageMatrix) and what the
// traffic is made of (TagHistogram). Both are derived purely from send
// events, so they agree with the machine's Messages/Values counters by
// construction.

// MessageMatrix returns per-(src,dst) message counts: m[src][dst] is the
// number of messages src sent to dst.
func (l *Log) MessageMatrix() [][]int64 {
	n := len(l.events)
	m := make([][]int64, n)
	for i := range m {
		m[i] = make([]int64, n)
	}
	for src, evs := range l.events {
		for _, e := range evs {
			if e.Kind == KindSend {
				m[src][e.Peer]++
			}
		}
	}
	return m
}

// TagStats aggregates the traffic carried under one message tag.
type TagStats struct {
	Messages int64
	Values   int64
}

// TagHistogram returns per-tag message and value counts — which logical
// channels (old-column shipments vs. new-value blocks, say) carry the
// traffic.
func (l *Log) TagHistogram() map[int64]TagStats {
	h := map[int64]TagStats{}
	for _, evs := range l.events {
		for _, e := range evs {
			if e.Kind != KindSend {
				continue
			}
			s := h[e.Tag]
			s.Messages++
			s.Values += int64(e.Values)
			h[e.Tag] = s
		}
	}
	return h
}

// Messages is the total message count recorded in the log.
func (l *Log) Messages() int64 {
	var n int64
	for _, evs := range l.events {
		for _, e := range evs {
			if e.Kind == KindSend {
				n++
			}
		}
	}
	return n
}

// BusiestLink returns the (src,dst) pair exchanging the most messages and
// that count; ok is false when no messages were sent.
func (l *Log) BusiestLink() (src, dst int, count int64, ok bool) {
	m := l.MessageMatrix()
	for s := range m {
		for d, c := range m[s] {
			if c > count {
				src, dst, count, ok = s, d, c, true
			}
		}
	}
	return src, dst, count, ok
}
