package trace

import (
	"encoding/json"
	"fmt"
	"io"
)

// chromeEvent is one entry of the Chrome trace-event format's JSON array
// (the "Trace Event Format" consumed by chrome://tracing and Perfetto).
// Timestamps are nominally microseconds; we write virtual cycles directly —
// the viewer's absolute units are wrong but every relative length is exact.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   uint64         `json:"ts"`
	Dur  uint64         `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// networkPid groups the transport's wire events into their own Chrome
// "process", away from the node/processor tracks.
const networkPid = 1 << 20

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
	// PDTrace carries an arbitrary machine-readable payload alongside the
	// viewer events (the analysis layer embeds its replayable dump here).
	// Chrome and Perfetto ignore unknown top-level keys, so one file serves
	// both the timeline viewer and pdtrace.
	PDTrace any `json:"pdtrace,omitempty"`
}

// WriteChromeTrace writes the log in Chrome trace-event JSON. Each process is
// one track (a Chrome "thread"); under Placement the tracks group under their
// physical node (a Chrome "process"), so the viewer shows co-residents
// interleaving on the node's CPU. Open the file at chrome://tracing or
// https://ui.perfetto.dev.
func (l *Log) WriteChromeTrace(w io.Writer) error {
	return l.WriteChromeTraceWith(w, nil)
}

// WriteChromeTraceWith is WriteChromeTrace with an extra payload embedded
// under the file's top-level "pdtrace" key, which trace viewers ignore.
func (l *Log) WriteChromeTraceWith(w io.Writer, payload any) error {
	var events []chromeEvent

	// Name the tracks: one "process" per node (or a single "processors"
	// group for the direct model), one "thread" per simulated process.
	if l.Multiplexed() {
		seen := map[int]bool{}
		for p := range l.events {
			n := l.Node(p)
			if !seen[n] {
				seen[n] = true
				events = append(events, chromeEvent{
					Name: "process_name", Ph: "M", Pid: n,
					Args: map[string]any{"name": fmt.Sprintf("node %d", n)},
				})
			}
		}
	} else {
		events = append(events, chromeEvent{
			Name: "process_name", Ph: "M", Pid: 0,
			Args: map[string]any{"name": "processors"},
		})
	}
	for p := range l.events {
		pid := 0
		if l.Multiplexed() {
			pid = l.Node(p)
		}
		events = append(events, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: pid, Tid: p,
			Args: map[string]any{"name": fmt.Sprintf("proc %d", p)},
		})
	}

	for p, evs := range l.events {
		pid := 0
		if l.Multiplexed() {
			pid = l.Node(p)
		}
		for _, e := range evs {
			ce := chromeEvent{
				Name: e.Kind.String(), Cat: e.Kind.String(), Ph: "X",
				Ts: e.Start, Dur: e.Dur(), Pid: pid, Tid: p,
			}
			switch e.Kind {
			case KindSend:
				ce.Args = map[string]any{"dst": e.Peer, "tag": e.Tag, "values": e.Values, "msg": e.Seq}
			case KindRecv:
				ce.Args = map[string]any{"src": e.Peer, "tag": e.Tag, "values": e.Values, "msg": e.Seq}
			case KindIdle:
				ce.Args = map[string]any{"src": e.Peer, "tag": e.Tag, "msg": e.Seq}
			}
			events = append(events, ce)
		}
	}

	// Transport activity (retries, drops, duplicate suppression) renders as
	// instant events on a "network" process, one track per sending process,
	// so a chaos run shows its fault storm under the processor timeline.
	if wire := l.WireEvents(); len(wire) > 0 {
		events = append(events, chromeEvent{
			Name: "process_name", Ph: "M", Pid: networkPid,
			Args: map[string]any{"name": "network"},
		})
		seen := map[int]bool{}
		for _, e := range wire {
			if !seen[e.Src] {
				seen[e.Src] = true
				events = append(events, chromeEvent{
					Name: "thread_name", Ph: "M", Pid: networkPid, Tid: e.Src,
					Args: map[string]any{"name": fmt.Sprintf("links from proc %d", e.Src)},
				})
			}
			events = append(events, chromeEvent{
				Name: e.Kind.String(), Cat: "wire", Ph: "i", S: "t",
				Ts: e.Time, Pid: networkPid, Tid: e.Src,
				Args: map[string]any{
					"src": e.Src, "dst": e.Dst, "tag": e.Tag,
					"seq": e.Seq, "attempt": e.Attempt, "values": e.Values,
					"msg": e.MsgSeq,
				},
			})
		}
	}

	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{TraceEvents: events, DisplayTimeUnit: "ns", PDTrace: payload})
}
