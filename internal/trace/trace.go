// Package trace records a per-process event log of a simulated machine run:
// every span of virtual time a process spends computing, sending, receiving,
// idling for a message, or blocked waiting for its node's CPU. The log is the
// instrument behind the paper's evaluation story — Figs. 6 and 7 argue about
// where virtual time goes (compute vs. message overhead vs. idle wait), and
// the event log lets that argument be inspected event by event rather than
// only through post-hoc aggregates.
//
// A Log is attached to a run through machine.Config.Tracer (nil by default:
// untraced runs pay nothing beyond a nil check). The machine emits events;
// after Run returns the log offers a Chrome trace-event exporter
// (WriteChromeTrace, openable in chrome://tracing or Perfetto), a per-
// (src,dst) message matrix and per-tag histogram for communication-pattern
// analysis, and an exact reconciliation check against the machine's
// Breakdown partition (Reconcile).
//
// Concurrency: Begin is called once before processes start; each process
// emits only its own events (distinct per-process slices, no locking), and
// readers must wait until the run completes — machine.Run's return is the
// happens-before edge.
package trace

import "fmt"

// Kind classifies one event span.
type Kind uint8

const (
	// KindCompute is local work: the process advanced its clock computing.
	KindCompute Kind = iota
	// KindSend is the CPU overhead of initiating a send (start-up plus
	// per-value packing).
	KindSend
	// KindRecv is the CPU overhead of completing a receive (start-up plus
	// per-value unpacking).
	KindRecv
	// KindIdle is time spent waiting for a message that had not yet arrived:
	// the clock jumped to the message's arrival stamp.
	KindIdle
	// KindBlocked is time a runnable process waited for its node's CPU while
	// a co-resident held it. It occurs only under Config.Placement; in the
	// one-process-per-processor model a process never contends for a CPU.
	KindBlocked
	numKinds
)

func (k Kind) String() string {
	switch k {
	case KindCompute:
		return "compute"
	case KindSend:
		return "send"
	case KindRecv:
		return "recv"
	case KindIdle:
		return "idle"
	case KindBlocked:
		return "blocked"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Event is one span of a process's virtual time, [Start, End) in cycles.
type Event struct {
	Proc  int
	Kind  Kind
	Start uint64
	End   uint64
	// Peer is the other endpoint: the destination of a send, the source of a
	// receive or of the message an idle span waited for; -1 otherwise.
	Peer int
	// Tag is the message tag of send/recv/idle events; 0 otherwise.
	Tag int64
	// Values is the number of values moved by a send or receive.
	Values int
	// Seq identifies the message a send/recv/idle event belongs to: the
	// sender's 1-based message counter, in program order, so the pair
	// (sender, Seq) is a stable edge ID linking the send span to the
	// receiver's idle and recv spans and to the transport's wire events.
	// 0 on non-message events.
	Seq uint64
	// Arrive is the message's release stamp at the receiver, set on recv and
	// idle events: the virtual instant the transport made the message
	// available. For an idle event Arrive == End; for a recv event it can
	// precede Start (the message was waiting before the receiver asked).
	Arrive uint64
}

// Dur is the event's span length in cycles.
func (e Event) Dur() uint64 { return e.End - e.Start }

// Log collects the events of one machine run.
type Log struct {
	node   []int // per-process node under Placement; nil for the direct model
	events [][]Event
	wireState
}

// New returns an empty log, ready to pass as machine.Config.Tracer.
func New() *Log { return &Log{} }

// Rebuild reconstructs a completed log from its serialized parts — the
// inverse of reading Events/WireEvents per process, used by the analysis
// layer to revive a trace dumped to disk. The slices are adopted, not
// copied; the caller must not modify them afterwards.
func Rebuild(placement []int, events [][]Event, wire []WireEvent) *Log {
	l := &Log{events: events}
	if placement != nil {
		l.node = append([]int(nil), placement...)
	}
	l.wire = wire
	return l
}

// Begin resets the log for a run of procs processes. placement is the
// machine's Config.Placement (nil for the direct one-process-per-processor
// model); it labels the per-node tracks of the Chrome export. The machine
// calls Begin from New; users only construct the Log.
func (l *Log) Begin(procs int, placement []int) {
	l.node = nil
	if placement != nil {
		l.node = append([]int(nil), placement...)
	}
	l.events = make([][]Event, procs)
	l.wmu.Lock()
	l.wire = nil
	l.wmu.Unlock()
}

// Emit appends one event to its process's log. Consecutive compute spans are
// coalesced (the interpreter charges compute in many tiny increments; merging
// runs keeps logs and exported traces compact). Zero-duration compute, idle,
// and blocked spans are dropped; zero-duration send/recv events are kept
// because they carry message-pattern information.
//
// Emit is called by the simulated machine from the owning process's
// goroutine only; it needs no lock because each process appends to its own
// slice.
func (l *Log) Emit(e Event) {
	if e.End == e.Start {
		switch e.Kind {
		case KindCompute, KindIdle, KindBlocked:
			return
		}
	}
	evs := l.events[e.Proc]
	if e.Kind == KindCompute && len(evs) > 0 {
		if last := &evs[len(evs)-1]; last.Kind == KindCompute && last.End == e.Start {
			last.End = e.End
			return
		}
	}
	l.events[e.Proc] = append(evs, e)
}

// Procs is the number of processes the log was begun for.
func (l *Log) Procs() int { return len(l.events) }

// Node returns the physical node of process p (p itself when the run was not
// multiplexed).
func (l *Log) Node(p int) int {
	if l.node == nil {
		return p
	}
	return l.node[p]
}

// Multiplexed reports whether the run placed several processes per node.
func (l *Log) Multiplexed() bool { return l.node != nil }

// Events returns process p's event log in virtual-time order. The returned
// slice is the log's own storage; callers must not modify it.
func (l *Log) Events(p int) []Event { return l.events[p] }

// Len is the total number of recorded events.
func (l *Log) Len() int {
	n := 0
	for _, evs := range l.events {
		n += len(evs)
	}
	return n
}

// Partition sums a process's event durations by kind — the trace-side view
// of the machine's Breakdown.
type Partition struct {
	Compute uint64
	Comm    uint64 // send + recv overhead
	Idle    uint64 // message wait
	Blocked uint64 // CPU wait under Placement
}

// Total is every traced cycle of the partition.
func (p Partition) Total() uint64 { return p.Compute + p.Comm + p.Idle + p.Blocked }

// Sums accumulates process p's event durations by kind.
func (l *Log) Sums(p int) Partition {
	var s Partition
	for _, e := range l.events[p] {
		switch e.Kind {
		case KindCompute:
			s.Compute += e.Dur()
		case KindSend, KindRecv:
			s.Comm += e.Dur()
		case KindIdle:
			s.Idle += e.Dur()
		case KindBlocked:
			s.Blocked += e.Dur()
		}
	}
	return s
}

// Totals sums every process's partition.
func (l *Log) Totals() Partition {
	var t Partition
	for p := range l.events {
		s := l.Sums(p)
		t.Compute += s.Compute
		t.Comm += s.Comm
		t.Idle += s.Idle
		t.Blocked += s.Blocked
	}
	return t
}

// Reconcile checks process p's event log against the machine's accounting:
// the events must tile [0, clock) exactly — in order, no gaps, no overlaps —
// and the per-kind sums must equal the Breakdown partition (compute, comm,
// and idle, where trace idle + blocked together account for the Breakdown's
// idle cycles). A nil error means every cycle of the process's final clock
// is explained by exactly one traced event.
func (l *Log) Reconcile(p int, compute, comm, idle, clock uint64) error {
	var prevEnd uint64
	for i, e := range l.events[p] {
		if e.End < e.Start {
			return fmt.Errorf("trace: proc %d event %d (%s) ends at %d before it starts at %d", p, i, e.Kind, e.End, e.Start)
		}
		if e.Start != prevEnd {
			return fmt.Errorf("trace: proc %d event %d (%s) starts at %d, want %d (events must tile the clock)", p, i, e.Kind, e.Start, prevEnd)
		}
		prevEnd = e.End
	}
	if prevEnd != clock {
		return fmt.Errorf("trace: proc %d events end at %d, final clock is %d", p, prevEnd, clock)
	}
	s := l.Sums(p)
	if s.Compute != compute {
		return fmt.Errorf("trace: proc %d traced compute %d != breakdown compute %d", p, s.Compute, compute)
	}
	if s.Comm != comm {
		return fmt.Errorf("trace: proc %d traced comm %d != breakdown comm %d", p, s.Comm, comm)
	}
	if s.Idle+s.Blocked != idle {
		return fmt.Errorf("trace: proc %d traced idle %d + blocked %d != breakdown idle %d", p, s.Idle, s.Blocked, idle)
	}
	return nil
}
