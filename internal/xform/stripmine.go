package xform

import (
	"fmt"

	"procdecomp/internal/expr"
	"procdecomp/internal/spmd"
)

// StripMine applies Optimized III (Appendix A.4): the pipelined per-element
// messages produced by Jam are blocked. Each loop that receives or sends a
// channel's elements one at a time is strip-mined into an outer block loop
// and an inner element loop; a whole block is received before the inner loop
// and the produced block is sent after it, using the snewvalues/rnewvalues
// buffers of the paper's Fig. 3.
//
// Applicability per channel: the channel carries a written array; every site
// is either a fused compute loop (per-element Recv and/or adjacent
// ARead+Send of the channel directly in a unit-stride loop body) or a
// remainder element-send loop; and all site loops share the same bounds so
// both ends chunk identically. Returns the number of channels transformed.
func StripMine(progs []*spmd.Program, blksize int64) int {
	if blksize <= 0 {
		return 0
	}
	transformed := 0
	for {
		s := collect(progs)
		tag, ok := s.nextStripminable()
		if !ok {
			return transformed
		}
		s.stripMineChannel(tag, blksize)
		transformed++
	}
}

// smSite is one loop participating in a channel, in fused or send-loop form.
type smSite struct {
	holder *[]spmd.Stmt
	pos    int
	loop   *spmd.For
	// positions within loop.Body
	recvPos int // index of Recv, or -1
	sendPos int // index of the ARead of an adjacent ARead+Send pair, or of
	// the IfValue wrapping such a pair; -1 if none
	sendCond spmd.VExpr // condition wrapping the pair, nil if bare
	sendRead *spmd.ARead
	sendStmt *spmd.Send
}

// stripPlan gathers every loop touching the channel. ok is false when any
// site is outside the supported shapes or bounds disagree.
func (s *suite) stripPlan(tag spmd.Tag) ([]*smSite, bool) {
	var sites []*smSite
	var lo, hi expr.Expr
	haveBounds := false
	addLoop := func(holder *[]spmd.Stmt, pos int, f *spmd.For) *smSite {
		for _, st := range sites {
			if st.loop == f {
				return st
			}
		}
		st := &smSite{holder: holder, pos: pos, loop: f, recvPos: -1, sendPos: -1}
		sites = append(sites, st)
		return st
	}

	okShape := true
	var walk func(body *[]spmd.Stmt, accounted bool)
	walk = func(body *[]spmd.Stmt, accounted bool) {
		for i := 0; i < len(*body); i++ {
			switch st := (*body)[i].(type) {
			case *spmd.For:
				// Does this loop touch the channel directly in its body
				// (possibly through a fused send's condition wrapper)?
				touches := false
				for _, inner := range st.Body {
					switch inner := inner.(type) {
					case *spmd.Recv:
						if inner.Tag == tag {
							touches = true
						}
					case *spmd.Send:
						if inner.Tag == tag {
							touches = true
						}
					case *spmd.IfValue:
						for _, t := range inner.Then {
							if sd, ok := t.(*spmd.Send); ok && sd.Tag == tag {
								touches = true
							}
						}
					}
				}
				if touches {
					site := addLoop(body, i, st)
					if !s.classifySite(site, tag) {
						okShape = false
						return
					}
					if v, okc := st.Step.ConstVal(); !okc || v != 1 {
						okShape = false
						return
					}
					if !haveBounds {
						lo, hi, haveBounds = st.Lo, st.Hi, true
					} else if !st.Lo.Equal(lo) || !st.Hi.Equal(hi) {
						okShape = false
						return
					}
				}
				walk(&st.Body, touches)
			case *spmd.IfValue:
				walk(&st.Then, accounted)
				walk(&st.Else, accounted)
			case *spmd.Guard:
				walk(&st.Body, false)
			case *spmd.Recv:
				if st.Tag == tag && !accounted {
					okShape = false // receive outside any site loop
					return
				}
			case *spmd.Send:
				if st.Tag == tag && !accounted {
					okShape = false // send outside a recognized site loop
					return
				}
			case *spmd.SendBuf:
				if st.Tag == tag {
					okShape = false // already block-based
					return
				}
			case *spmd.RecvBuf:
				if st.Tag == tag {
					okShape = false
					return
				}
			case *spmd.Coerce:
				if st.Tag == tag {
					okShape = false
					return
				}
			}
			if !okShape {
				return
			}
		}
	}
	for _, p := range s.progs {
		walk(&p.Body, false)
		if !okShape {
			return nil, false
		}
	}
	if !haveBounds {
		return nil, false
	}
	// Lo need not be constant — only shared, so both ends chunk identically.
	return sites, len(sites) > 0
}

// classifySite locates the channel operations inside the site loop:
// at most one Recv and at most one adjacent ARead+Send pair, and no bare
// element operations of other channels (those would be re-chunked
// inconsistently with their own remote ends).
func (s *suite) classifySite(site *smSite, tag spmd.Tag) bool {
	matchPair := func(rd *spmd.ARead, sd *spmd.Send) bool {
		vv, ok := sd.Val.(spmd.VVar)
		return ok && vv.Name == rd.Dst && !sd.Dst.HasVar(site.loop.Var)
	}
	for k, inner := range site.loop.Body {
		switch inner := inner.(type) {
		case *spmd.Recv:
			if inner.Tag != tag {
				return false
			}
			if site.recvPos >= 0 {
				return false
			}
			site.recvPos = k
		case *spmd.Send:
			if inner.Tag != tag {
				return false
			}
			if site.sendPos >= 0 || k == 0 {
				return false
			}
			rd, ok := site.loop.Body[k-1].(*spmd.ARead)
			if !ok || !matchPair(rd, inner) {
				return false
			}
			site.sendPos, site.sendRead, site.sendStmt = k-1, rd, inner
		case *spmd.IfValue:
			// The only conditional shape supported is a fused send guarded
			// by its original send condition: exactly [ARead; Send]. Any
			// other conditional communication makes the loop ineligible —
			// re-chunking it would desynchronize the channel's remote end.
			if !containsComm(inner.Then) && !containsComm(inner.Else) {
				continue
			}
			if len(inner.Then) != 2 || len(inner.Else) != 0 {
				return false
			}
			rd, okR := inner.Then[0].(*spmd.ARead)
			sd, okS := inner.Then[1].(*spmd.Send)
			if !okR || !okS || sd.Tag != tag {
				return false
			}
			if site.sendPos >= 0 || !matchPair(rd, sd) {
				return false
			}
			site.sendPos, site.sendCond, site.sendRead, site.sendStmt = k, inner.Cond, rd, sd
		case *spmd.For, *spmd.Coerce, *spmd.SendBuf, *spmd.RecvBuf:
			// Nested loops or other communication forms: unsupported shape.
			return false
		}
	}
	return site.recvPos >= 0 || site.sendPos >= 0
}

func (s *suite) nextStripminable() (spmd.Tag, bool) {
	var tags []spmd.Tag
	for t := range s.allChannelTags() {
		tags = append(tags, t)
	}
	sortTags(tags)
	for _, t := range tags {
		if _, ok := s.stripPlan(t); ok {
			return t, true
		}
	}
	return 0, false
}

// allChannelTags scans for element send/recv tags anywhere (fused sends are
// bare Sends, so s.sends does not cover them).
func (s *suite) allChannelTags() map[spmd.Tag]bool {
	out := map[spmd.Tag]bool{}
	var walk func(body []spmd.Stmt)
	walk = func(body []spmd.Stmt) {
		for _, st := range body {
			switch st := st.(type) {
			case *spmd.Send:
				out[st.Tag] = true
			case *spmd.Recv:
				out[st.Tag] = true
			case *spmd.For:
				walk(st.Body)
			case *spmd.IfValue:
				walk(st.Then)
				walk(st.Else)
			case *spmd.Guard:
				walk(st.Body)
			}
		}
	}
	for _, p := range s.progs {
		walk(p.Body)
	}
	return out
}

func sortTags(tags []spmd.Tag) {
	for i := 1; i < len(tags); i++ {
		for j := i; j > 0 && tags[j] < tags[j-1]; j-- {
			tags[j], tags[j-1] = tags[j-1], tags[j]
		}
	}
}

func (s *suite) stripMineChannel(tag spmd.Tag, blksize int64) {
	sites, _ := s.stripPlan(tag)
	for _, site := range sites {
		f := site.loop
		kVar := f.Var + ".blk"
		blkLo := expr.Add(f.Lo, expr.Mul(expr.V(kVar), expr.C(blksize)))
		blkHi := expr.Min(expr.Add(blkLo, expr.C(blksize-1)), f.Hi)
		cnt := expr.Add(expr.Sub(blkHi, blkLo), expr.C(1))
		pos := expr.Add(expr.Sub(expr.V(f.Var), blkLo), expr.C(1))

		rbuf := fmt.Sprintf("rnewvalues%d", tag)
		sbuf := fmt.Sprintf("snewvalues%d", tag)

		// Rewrite the loop body: Recv -> buffer read, Send -> buffer write
		// (keeping a fused send's condition wrapper around the write).
		var recvSrc expr.Expr
		body := make([]spmd.Stmt, 0, len(f.Body))
		for k := 0; k < len(f.Body); k++ {
			switch {
			case k == site.recvPos:
				rc := f.Body[k].(*spmd.Recv)
				recvSrc = rc.Src
				body = append(body, &spmd.BufRead{Dst: rc.Dst, Buf: rbuf, Idx: pos})
			case site.sendPos >= 0 && k == site.sendPos && site.sendCond != nil:
				pack := []spmd.Stmt{site.sendRead,
					&spmd.BufWrite{Buf: sbuf, Idx: pos, Val: site.sendStmt.Val}}
				body = append(body, &spmd.IfValue{Cond: site.sendCond, Then: pack})
			case site.sendPos >= 0 && site.sendCond == nil && k == site.sendPos+1:
				body = append(body, &spmd.BufWrite{Buf: sbuf, Idx: pos, Val: site.sendStmt.Val})
			default:
				body = append(body, f.Body[k])
			}
		}

		inner := &spmd.For{Var: f.Var, Lo: blkLo, Hi: blkHi, Step: expr.C(1), Body: body}
		var blockBody []spmd.Stmt
		if site.recvPos >= 0 {
			blockBody = append(blockBody, &spmd.RecvBuf{Src: recvSrc, Tag: tag, Buf: rbuf, Lo: expr.C(1), Hi: cnt})
		}
		blockBody = append(blockBody, inner)
		if site.sendPos >= 0 {
			sendBuf := spmd.Stmt(&spmd.SendBuf{Dst: site.sendStmt.Dst, Tag: tag, Buf: sbuf, Lo: expr.C(1), Hi: cnt})
			if site.sendCond != nil {
				sendBuf = &spmd.IfValue{Cond: site.sendCond, Then: []spmd.Stmt{sendBuf}}
			}
			blockBody = append(blockBody, sendBuf)
		}
		blocks := expr.Div(expr.Sub(f.Hi, f.Lo), expr.C(blksize))
		outer := &spmd.For{Var: kVar, Lo: expr.C(0), Hi: blocks, Step: expr.C(1), Body: blockBody}

		var repl []spmd.Stmt
		if site.recvPos >= 0 {
			repl = append(repl, &spmd.AllocBuf{Buf: rbuf, Size: expr.C(blksize)})
		}
		if site.sendPos >= 0 {
			repl = append(repl, &spmd.AllocBuf{Buf: sbuf, Size: expr.C(blksize)})
		}
		repl = append(repl, outer)
		splice(site.holder, site.pos, repl...)
	}
}

// containsComm reports whether a statement list contains any communication,
// at any depth.
func containsComm(body []spmd.Stmt) bool {
	for _, st := range body {
		switch st := st.(type) {
		case *spmd.Send, *spmd.Recv, *spmd.SendBuf, *spmd.RecvBuf, *spmd.Coerce:
			return true
		case *spmd.For:
			if containsComm(st.Body) {
				return true
			}
		case *spmd.IfValue:
			if containsComm(st.Then) || containsComm(st.Else) {
				return true
			}
		case *spmd.Guard:
			if containsComm(st.Body) {
				return true
			}
		}
	}
	return false
}
