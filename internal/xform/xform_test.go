package xform

import (
	"math"
	"strings"
	"testing"

	"procdecomp/internal/core"
	"procdecomp/internal/exec"
	"procdecomp/internal/expr"
	"procdecomp/internal/istruct"
	"procdecomp/internal/lang"
	"procdecomp/internal/machine"
	"procdecomp/internal/sem"
	"procdecomp/internal/spmd"
)

const gsSource = `
const N = 16;
const c = 0.25;

dist Column = cyclic_cols(NPROCS);

proc init_boundary(New: matrix[N, N] on Column) {
  for j = 1 to N {
    New[1, j] = 1.0;
    New[N, j] = 1.0;
  }
  for i = 2 to N - 1 {
    New[i, 1] = 1.0;
    New[i, N] = 1.0;
  }
}

proc gs_iteration(Old: matrix[N, N] on Column): matrix[N, N] on Column {
  let New = matrix(N, N) on Column;
  call init_boundary(New);
  for j = 2 to N - 1 {
    for i = 2 to N - 1 {
      New[i, j] = c * (New[i - 1, j] + New[i, j - 1] + Old[i + 1, j] + Old[i, j + 1]);
    }
  }
  return New;
}
`

func checked(t *testing.T, procs int64, n int64) *sem.Info {
	t.Helper()
	prog, err := lang.Parse(gsSource)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, errs := sem.Check(prog, sem.Config{Procs: procs, Defines: map[string]int64{"N": n}})
	if len(errs) > 0 {
		t.Fatalf("check: %v", errs)
	}
	return info
}

func gsInput(t *testing.T, n int64) *istruct.Matrix {
	t.Helper()
	m, err := istruct.NewMatrix("Old", n, n)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= n; i++ {
		for j := int64(1); j <= n; j++ {
			m.Write(i, j, float64((i*13+j*7)%19)+0.25)
		}
	}
	return m
}

func compileCTR(t *testing.T, info *sem.Info) []*spmd.Program {
	t.Helper()
	progs, err := core.New(info).CompileCTR("gs_iteration", true)
	if err != nil {
		t.Fatal(err)
	}
	return progs
}

func run(t *testing.T, progs []*spmd.Program, procs int, n int64) *exec.SPMDOutcome {
	t.Helper()
	res, err := exec.RunSPMD(progs, machine.DefaultConfig(procs), map[string]*istruct.Matrix{"Old": gsInput(t, n)})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func reference(t *testing.T, info *sem.Info, n int64) *istruct.Matrix {
	t.Helper()
	out, err := exec.RunSequential(info, "gs_iteration", []exec.ArgVal{{Matrix: gsInput(t, n)}})
	if err != nil {
		t.Fatal(err)
	}
	return out.Ret.Matrix
}

func assertEqual(t *testing.T, want, got *istruct.Matrix, label string) {
	t.Helper()
	for i := int64(1); i <= want.Rows(); i++ {
		for j := int64(1); j <= want.Cols(); j++ {
			dw, dg := want.Defined(i, j), got.Defined(i, j)
			if dw != dg {
				t.Fatalf("%s: definedness mismatch at (%d,%d)", label, i, j)
			}
			if !dw {
				continue
			}
			vw, _ := want.Read(i, j)
			vg, _ := got.Read(i, j)
			if math.Abs(vw-vg) > 1e-9 {
				t.Fatalf("%s: (%d,%d) = %g, want %g", label, i, j, vg, vw)
			}
		}
	}
}

// Message-count formulas for the N×N wavefront, interior (N-2)².
func optIMsgs(n int64) int64 { return (n-2)*(n-2) + (n - 2) }
func optIIIMsgs(n, b int64) int64 {
	blocksPerCol := (n - 2 + b - 1) / b
	return (n-2)*blocksPerCol + (n - 2)
}

func TestVectorizePreservesSemantics(t *testing.T) {
	for _, procs := range []int64{2, 3, 4, 8} {
		const n = 16
		info := checked(t, procs, n)
		want := reference(t, info, n)
		progs := compileCTR(t, info)
		changed := Vectorize(progs)
		if changed == 0 {
			t.Fatalf("S=%d: vectorize transformed nothing", procs)
		}
		res := run(t, progs, int(procs), n)
		assertEqual(t, want, res.Arrays["New"], "vectorized")
		if res.Stats.Messages != optIMsgs(n) {
			t.Errorf("S=%d: messages = %d, want %d", procs, res.Stats.Messages, optIMsgs(n))
		}
	}
}

func TestVectorizeOnlyReadOnlyChannels(t *testing.T) {
	info := checked(t, 4, 16)
	progs := compileCTR(t, info)
	if changed := Vectorize(progs); changed != 1 {
		t.Errorf("vectorize transformed %d channels, want 1 (only the Old column)", changed)
	}
}

func TestJamPreservesSemantics(t *testing.T) {
	for _, procs := range []int64{2, 3, 4, 8} {
		const n = 16
		info := checked(t, procs, n)
		want := reference(t, info, n)
		progs := compileCTR(t, info)
		Vectorize(progs)
		if changed := Jam(progs); changed == 0 {
			t.Fatalf("S=%d: jam transformed nothing", procs)
		}
		res := run(t, progs, int(procs), n)
		assertEqual(t, want, res.Arrays["New"], "jammed")
		// Jam relocates sends; it does not change the message count.
		if res.Stats.Messages != optIMsgs(n) {
			t.Errorf("S=%d: messages = %d, want %d", procs, res.Stats.Messages, optIMsgs(n))
		}
	}
}

func TestJamExposesParallelism(t *testing.T) {
	// Optimized II's defining property (Fig. 7): with pipelining, makespan
	// drops as processors are added; before it, the curve is flat.
	const n = 32
	makespan := func(procs int64, jam bool) machine.Cost {
		info := checked(t, procs, n)
		progs := compileCTR(t, info)
		Vectorize(progs)
		if jam {
			Jam(progs)
		}
		return run(t, progs, int(procs), n).Stats.Makespan
	}
	preJam2, preJam8 := makespan(2, false), makespan(8, false)
	postJam2, postJam8 := makespan(2, true), makespan(8, true)
	// Jamming must scale markedly better than the column-serialized version
	// and deliver a real absolute speedup from 2 to 8 processors.
	flatRatio := float64(preJam2) / float64(preJam8)
	speedup := float64(postJam2) / float64(postJam8)
	if speedup < 2 {
		t.Errorf("jammed speedup 2->8 procs = %.2f, expected > 2", speedup)
	}
	if speedup < flatRatio*1.2 {
		t.Errorf("jamming did not improve scaling: %.2f vs %.2f unjammed", speedup, flatRatio)
	}
}

func TestStripMinePreservesSemantics(t *testing.T) {
	for _, procs := range []int64{2, 3, 4, 8} {
		for _, blk := range []int64{1, 2, 4, 7, 14, 20} {
			const n = 16
			info := checked(t, procs, n)
			want := reference(t, info, n)
			progs := compileCTR(t, info)
			Vectorize(progs)
			Jam(progs)
			if changed := StripMine(progs, blk); changed == 0 {
				t.Fatalf("S=%d blk=%d: strip mine transformed nothing", procs, blk)
			}
			res := run(t, progs, int(procs), n)
			assertEqual(t, want, res.Arrays["New"], "strip-mined")
			if res.Stats.Messages != optIIIMsgs(n, blk) {
				t.Errorf("S=%d blk=%d: messages = %d, want %d",
					procs, blk, res.Stats.Messages, optIIIMsgs(n, blk))
			}
		}
	}
}

func TestStripMineReducesMessagesAndBeatsJamAtScale(t *testing.T) {
	const n = 32
	const procs = 8
	info := checked(t, procs, n)
	base := compileCTR(t, info)
	Vectorize(base)
	Jam(base)
	jammed := run(t, base, procs, n)

	info2 := checked(t, procs, n)
	mined := compileCTR(t, info2)
	Vectorize(mined)
	Jam(mined)
	StripMine(mined, 5)
	blocked := run(t, mined, procs, n)

	if blocked.Stats.Messages >= jammed.Stats.Messages {
		t.Errorf("blocking did not reduce messages: %d vs %d",
			blocked.Stats.Messages, jammed.Stats.Messages)
	}
	if blocked.Stats.Makespan >= jammed.Stats.Makespan {
		t.Errorf("blocking did not improve makespan: %d vs %d",
			blocked.Stats.Makespan, jammed.Stats.Makespan)
	}
}

func TestFullPipelineOrdering(t *testing.T) {
	// Fig. 6/7 ordering at one configuration: RTR > CTR > OptI > OptII > OptIII.
	const n = 32
	const procs = 8
	info := checked(t, procs, n)
	comp := core.New(info)

	rtr, err := comp.CompileRTR("gs_iteration")
	if err != nil {
		t.Fatal(err)
	}
	mkRTR := run(t, []*spmd.Program{rtr}, procs, n).Stats.Makespan

	ctr := compileCTR(t, info)
	mkCTR := run(t, ctr, procs, n).Stats.Makespan

	v := compileCTR(t, info)
	Vectorize(v)
	mkI := run(t, v, procs, n).Stats.Makespan

	j := compileCTR(t, info)
	Vectorize(j)
	Jam(j)
	mkII := run(t, j, procs, n).Stats.Makespan

	sm := compileCTR(t, info)
	Vectorize(sm)
	Jam(sm)
	StripMine(sm, 5)
	mkIII := run(t, sm, procs, n).Stats.Makespan

	if !(mkRTR > mkCTR && mkCTR > mkI && mkI > mkII && mkII > mkIII) {
		t.Errorf("expected RTR > CTR > OptI > OptII > OptIII, got %d > %d > %d > %d > %d",
			mkRTR, mkCTR, mkI, mkII, mkIII)
	}
}

func TestInterchange(t *testing.T) {
	// Reversed-loop Gauss-Seidel: i outer, j inner.
	src := `
const N = 12;
const c = 0.25;
dist Column = cyclic_cols(NPROCS);
proc init_boundary(New: matrix[N, N] on Column) {
  for j = 1 to N {
    New[1, j] = 1.0;
    New[N, j] = 1.0;
  }
  for i = 2 to N - 1 {
    New[i, 1] = 1.0;
    New[i, N] = 1.0;
  }
}
proc gs_rev(Old: matrix[N, N] on Column): matrix[N, N] on Column {
  let New = matrix(N, N) on Column;
  call init_boundary(New);
  for i = 2 to N - 1 {
    for j = 2 to N - 1 {
      New[i, j] = c * (New[i - 1, j] + New[i, j - 1] + Old[i + 1, j] + Old[i, j + 1]);
    }
  }
  return New;
}
`
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	info, errs := sem.Check(prog, sem.Config{Procs: 4})
	if len(errs) > 0 {
		t.Fatal(errs)
	}
	want, err := exec.RunSequential(info, "gs_rev", []exec.ArgVal{{Matrix: gsInput(t, 12)}})
	if err != nil {
		t.Fatal(err)
	}
	generic, err := core.New(info).CompileRTR("gs_rev")
	if err != nil {
		t.Fatal(err)
	}
	if !Interchange(generic, "i") {
		t.Fatal("interchange did not fire")
	}
	progs := core.SpecializeAll(generic, 4, true)
	res, err := exec.RunSPMD(progs, machine.DefaultConfig(4), map[string]*istruct.Matrix{"Old": gsInput(t, 12)})
	if err != nil {
		t.Fatal(err)
	}
	assertEqual(t, want.Ret.Matrix, res.Arrays["New"], "interchanged")
}

func TestInterchangeRefusesDependentBounds(t *testing.T) {
	// A triangular nest must not be swapped.
	prog := &spmd.Program{Body: []spmd.Stmt{
		&spmd.For{Var: "a", Lo: c0(), Hi: c0(), Step: c1(), Body: []spmd.Stmt{
			&spmd.For{Var: "b", Lo: c0(), Hi: vOf("a"), Step: c1()},
		}},
	}}
	if Interchange(prog, "a") {
		t.Error("interchange fired on a triangular nest")
	}
}

func c0() expr.Expr          { return expr.C(0) }
func c1() expr.Expr          { return expr.C(1) }
func vOf(n string) expr.Expr { return expr.V(n) }

// Running each pass a second time must be a no-op: transformed channels are
// no longer in the matchable fragment.
func TestPassesIdempotent(t *testing.T) {
	info := checked(t, 4, 16)
	progs := compileCTR(t, info)
	if Vectorize(progs) == 0 {
		t.Fatal("first vectorize did nothing")
	}
	if n := Vectorize(progs); n != 0 {
		t.Errorf("second vectorize transformed %d channels", n)
	}
	if Jam(progs) == 0 {
		t.Fatal("first jam did nothing")
	}
	if n := Jam(progs); n != 0 {
		t.Errorf("second jam transformed %d channels", n)
	}
	if StripMine(progs, 4) == 0 {
		t.Fatal("first strip mine did nothing")
	}
	if n := StripMine(progs, 4); n != 0 {
		t.Errorf("second strip mine transformed %d channels", n)
	}
	// The result must still be correct.
	want := reference(t, info, 16)
	res := run(t, progs, 4, 16)
	assertEqual(t, want, res.Arrays["New"], "idempotence")
}

// StripMine with a nonsensical block size must refuse rather than corrupt.
func TestStripMineRejectsBadBlock(t *testing.T) {
	info := checked(t, 4, 16)
	progs := compileCTR(t, info)
	Vectorize(progs)
	Jam(progs)
	if n := StripMine(progs, 0); n != 0 {
		t.Errorf("blk=0 transformed %d channels", n)
	}
	if n := StripMine(progs, -3); n != 0 {
		t.Errorf("blk=-3 transformed %d channels", n)
	}
}

// The passes must leave a no-communication (single-processor) program alone.
func TestPassesOnSingleProcessor(t *testing.T) {
	info := checked(t, 1, 16)
	progs := compileCTR(t, info)
	if n := Vectorize(progs); n != 0 {
		t.Errorf("vectorize on S=1 transformed %d channels", n)
	}
	if n := Jam(progs); n != 0 {
		t.Errorf("jam on S=1 transformed %d channels", n)
	}
	if n := StripMine(progs, 4); n != 0 {
		t.Errorf("strip mine on S=1 transformed %d channels", n)
	}
}

// Appendix A staircase shapes, pinned structurally: each optimization level
// introduces exactly the constructs the paper's corresponding listing shows.
func TestAppendixAShapes(t *testing.T) {
	info := checked(t, 4, 8)

	// A.2 (vectorized): the old column leaves as one buffered message.
	v := compileCTR(t, info)
	Vectorize(v)
	p1 := spmd.Format(v[1])
	for _, want := range []string{
		"oldvalues4 := vector[6]",        // calloc'd oldvalues vector
		"send(oldvalues4[1..6], to 0)",   // single column message left
		"rvalues4[1..6] := receive(from", // single column receive
	} {
		if !strings.Contains(p1, want) {
			t.Errorf("A.2 shape missing %q:\n%s", want, p1)
		}
	}
	// New values still go one at a time after the compute loop.
	if !strings.Contains(p1, "send(ct1, to 2)") {
		t.Errorf("A.2 should keep element sends of new values:\n%s", p1)
	}

	// A.3 (jammed): the new value is sent as soon as it is written.
	j := compileCTR(t, info)
	Vectorize(j)
	Jam(j)
	p1 = spmd.Format(j[1])
	iw := strings.Index(p1, "is_write(New[i#2,")
	snd := strings.Index(p1[iw:], "send(jam2, to 2)")
	if iw < 0 || snd < 0 || snd > 300 {
		t.Errorf("A.3 fused send not adjacent to the write (offset %d):\n%s", snd, p1)
	}

	// A.4 (strip-mined): snewvalues/rnewvalues blocks around the inner loop.
	sm := compileCTR(t, info)
	Vectorize(sm)
	Jam(sm)
	StripMine(sm, 2)
	p1 = spmd.Format(sm[1])
	for _, want := range []string{
		"rnewvalues2 := vector[2]",
		"snewvalues2 := vector[2]",
		".blk = 0 to 2",                     // the block loop
		"rnewvalues2[1..", "snewvalues2[1.", // block receives and sends
	} {
		if !strings.Contains(p1, want) {
			t.Errorf("A.4 shape missing %q:\n%s", want, p1)
		}
	}
}
