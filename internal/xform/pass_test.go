package xform

import (
	"strings"
	"testing"

	"procdecomp/internal/core"
	"procdecomp/internal/spmd"
)

// Every malformed pass must be rejected with an error, never a panic or a
// silent no-op: bad strip sizes, misplaced parameters, missing interchange
// variables, unknown kinds, and empty program lists.
func TestPassValidateRejections(t *testing.T) {
	cases := []struct {
		pass Pass
		want string // substring of the error
	}{
		{Pass{Kind: PassStripMine, Blk: 0}, "block size must be >= 1"},
		{Pass{Kind: PassStripMine, Blk: -4}, "block size must be >= 1"},
		{Pass{Kind: PassStripMine, Blk: 2, Var: "i"}, "no loop variable"},
		{Pass{Kind: PassInterchange}, "needs the outer loop variable"},
		{Pass{Kind: PassInterchange, Var: "i", Blk: 3}, "no block size"},
		{Pass{Kind: PassVectorize, Blk: 8}, "takes no parameters"},
		{Pass{Kind: PassJam, Var: "j"}, "takes no parameters"},
		{Pass{Kind: PassKind(99)}, "unknown pass kind"},
	}
	for _, c := range cases {
		err := c.pass.Validate()
		if err == nil {
			t.Errorf("Validate(%+v) accepted, want error containing %q", c.pass, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("Validate(%+v) = %q, want substring %q", c.pass, err, c.want)
		}
		// Apply must refuse the same inputs without touching the programs.
		if _, err := c.pass.Apply([]*spmd.Program{{Name: "p"}}); err == nil {
			t.Errorf("Apply(%+v) accepted invalid pass", c.pass)
		}
	}
	if _, err := (Pass{Kind: PassVectorize}).Apply(nil); err == nil {
		t.Error("Apply on an empty program list accepted")
	}
}

// An interchange whose outer variable matches no perfect loop nest is an
// applicability error, not a silent no-op. Interchange runs on the generic
// program before specialization (the CTR-specialized bodies are no longer
// perfect nests), so that is what the pass is validated against.
func TestInterchangeApplicability(t *testing.T) {
	generic, err := core.New(checked(t, 4, 16)).CompileRTR("gs_iteration")
	if err != nil {
		t.Fatal(err)
	}
	progs := []*spmd.Program{generic}
	if _, err := (Pass{Kind: PassInterchange, Var: "nosuchvar"}).Apply(progs); err == nil {
		t.Fatal("interchange on a missing loop variable accepted")
	}
	// The GS nest is j-outer; interchanging on j must swap it to i-outer.
	n, err := (Pass{Kind: PassInterchange, Var: "j"}).Apply(progs)
	if err != nil {
		t.Fatalf("interchange(j): %v", err)
	}
	if n != 1 {
		t.Fatalf("interchange(j) swapped %d programs, want 1", n)
	}
	// The nest is now i-outer: a second interchange on j has nothing to swap.
	if _, err := (Pass{Kind: PassInterchange, Var: "j"}).Apply(progs); err == nil {
		t.Fatal("interchange applied twice on the same outer variable")
	}
}

// The validated passes must produce exactly the same code as the bare
// functions they wrap — Pass is a contract change, not a behavior change.
func TestPassesMatchBareFunctions(t *testing.T) {
	compile := func() []*spmd.Program { return compileCTR(t, checked(t, 4, 16)) }
	format := func(progs []*spmd.Program) string {
		var b strings.Builder
		for _, p := range progs {
			b.WriteString(spmd.Format(p))
		}
		return b.String()
	}

	bare := compile()
	Vectorize(bare)
	Jam(bare)
	StripMine(bare, 4)

	viaPasses := compile()
	passes, ok := StandardPipeline("opt3", 4)
	if !ok {
		t.Fatal("opt3 is not a standard mode")
	}
	counts, err := Apply(viaPasses, passes)
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range counts {
		if n == 0 {
			t.Errorf("pass %v transformed nothing on the GS program", passes[i])
		}
	}
	if format(bare) != format(viaPasses) {
		t.Fatal("pass pipeline and bare functions produced different code")
	}
}

func TestStandardPipelineModes(t *testing.T) {
	want := map[string][]string{
		"rtr":  nil,
		"ctr":  nil,
		"opt1": {"vectorize"},
		"opt2": {"vectorize", "jam"},
		"opt3": {"vectorize", "jam", "stripmine(8)"},
	}
	for _, mode := range StandardModes() {
		passes, ok := StandardPipeline(mode, 8)
		if !ok {
			t.Fatalf("StandardPipeline rejects its own mode %q", mode)
		}
		var names []string
		for _, p := range passes {
			names = append(names, p.String())
			if err := p.Validate(); err != nil {
				t.Errorf("mode %s yields invalid pass %v: %v", mode, p, err)
			}
		}
		if len(names) != len(want[mode]) {
			t.Fatalf("mode %s: passes %v, want %v", mode, names, want[mode])
		}
		for i := range names {
			if names[i] != want[mode][i] {
				t.Fatalf("mode %s: passes %v, want %v", mode, names, want[mode])
			}
		}
	}
	if _, ok := StandardPipeline("warp", 8); ok {
		t.Error("unknown mode accepted")
	}
	// A strip size of 0 in opt3 yields an invalid pass that Apply rejects —
	// the silent StripMine(progs, 0) no-op is no longer reachable through the
	// validated path.
	passes, _ := StandardPipeline("opt3", 0)
	if _, err := Apply(compileCTR(t, checked(t, 4, 16)), passes); err == nil {
		t.Error("opt3 with block size 0 accepted")
	}
}
