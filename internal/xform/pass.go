package xform

import (
	"fmt"

	"procdecomp/internal/spmd"
)

// A PassKind names one of the Appendix-A transformations.
type PassKind int

// The transformation passes, in the order the paper's optimization levels
// stack them.
const (
	PassVectorize   PassKind = iota // A.2: merge per-element sends into vectors
	PassJam                         // A.3: jam cross-iteration send/recv pairs
	PassStripMine                   // A.4: exchange blocks of the pipelined loop
	PassInterchange                 // §4: swap a loop nest to expose the wavefront
)

func (k PassKind) String() string {
	switch k {
	case PassVectorize:
		return "vectorize"
	case PassJam:
		return "jam"
	case PassStripMine:
		return "stripmine"
	case PassInterchange:
		return "interchange"
	default:
		return fmt.Sprintf("PassKind(%d)", int(k))
	}
}

// A Pass is one validated, parameterized transformation. Unlike the bare
// Vectorize/Jam/StripMine/Interchange functions, a Pass rejects bad
// parameters with an error instead of panicking or silently doing nothing —
// the contract the auto-mapper's enumerated pipelines need.
type Pass struct {
	Kind PassKind
	Blk  int64  // strip-mine block size (PassStripMine only)
	Var  string // outer loop variable (PassInterchange only)
}

func (p Pass) String() string {
	switch p.Kind {
	case PassStripMine:
		return fmt.Sprintf("stripmine(%d)", p.Blk)
	case PassInterchange:
		return fmt.Sprintf("interchange(%s)", p.Var)
	default:
		return p.Kind.String()
	}
}

// Validate checks the pass parameters without touching any program: the
// strip-mine block size must be at least 1, interchange needs the outer loop
// variable, and parameters that do not belong to the kind must be unset.
func (p Pass) Validate() error {
	switch p.Kind {
	case PassVectorize, PassJam:
		if p.Blk != 0 || p.Var != "" {
			return fmt.Errorf("xform: %s takes no parameters (Blk=%d, Var=%q)", p.Kind, p.Blk, p.Var)
		}
	case PassStripMine:
		if p.Blk < 1 {
			return fmt.Errorf("xform: stripmine block size must be >= 1, got %d", p.Blk)
		}
		if p.Var != "" {
			return fmt.Errorf("xform: stripmine takes no loop variable, got %q", p.Var)
		}
	case PassInterchange:
		if p.Var == "" {
			return fmt.Errorf("xform: interchange needs the outer loop variable")
		}
		if p.Blk != 0 {
			return fmt.Errorf("xform: interchange takes no block size, got %d", p.Blk)
		}
	default:
		return fmt.Errorf("xform: unknown pass kind %v", p.Kind)
	}
	return nil
}

// Apply runs the pass over the compiled programs, returning how many sites it
// transformed. Invalid parameters and inapplicable interchanges are errors; a
// vectorize/jam/stripmine that finds nothing to transform returns 0 without
// error, because the opportunistic passes are allowed to be no-ops on
// programs that have no matching communication pattern.
func (p Pass) Apply(progs []*spmd.Program) (int, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	if len(progs) == 0 {
		return 0, fmt.Errorf("xform: %s applied to no programs", p)
	}
	switch p.Kind {
	case PassVectorize:
		return Vectorize(progs), nil
	case PassJam:
		return Jam(progs), nil
	case PassStripMine:
		return StripMine(progs, p.Blk), nil
	case PassInterchange:
		n := 0
		for _, prog := range progs {
			if Interchange(prog, p.Var) {
				n++
			}
		}
		if n == 0 {
			return 0, fmt.Errorf("xform: interchange(%s) not applicable: no perfect loop nest with outer variable %q", p.Var, p.Var)
		}
		return n, nil
	}
	return 0, fmt.Errorf("xform: unknown pass kind %v", p.Kind)
}

// Apply runs a pipeline of passes in order, stopping at the first error.
// It returns the per-pass transformation counts.
func Apply(progs []*spmd.Program, passes []Pass) ([]int, error) {
	counts := make([]int, len(passes))
	for i, p := range passes {
		n, err := p.Apply(progs)
		if err != nil {
			return counts, fmt.Errorf("pass %d (%s): %w", i, p, err)
		}
		counts[i] = n
	}
	return counts, nil
}

// StandardPipeline maps an optimization-mode name to the pass pipeline the
// paper's variants use. It is the single definition shared by pdrun, the
// bench registry, and the auto-mapper, so the three can never drift:
//
//	rtr, ctr  — no passes (rtr additionally selects run-time resolution)
//	opt1      — vectorize
//	opt2      — vectorize, jam
//	opt3      — vectorize, jam, stripmine(blk)
//
// The second result is false for an unknown mode.
func StandardPipeline(mode string, blk int64) ([]Pass, bool) {
	switch mode {
	case "rtr", "ctr":
		return nil, true
	case "opt1":
		return []Pass{{Kind: PassVectorize}}, true
	case "opt2":
		return []Pass{{Kind: PassVectorize}, {Kind: PassJam}}, true
	case "opt3":
		return []Pass{{Kind: PassVectorize}, {Kind: PassJam}, {Kind: PassStripMine, Blk: blk}}, true
	}
	return nil, false
}

// StandardModes lists the mode names StandardPipeline accepts, in
// optimization order.
func StandardModes() []string { return []string{"rtr", "ctr", "opt1", "opt2", "opt3"} }
