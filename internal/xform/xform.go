// Package xform implements the message-passing optimizations of the paper's
// §4 and Appendix A as automated IR-to-IR passes over the specialized
// programs produced by compile-time resolution:
//
//   - Vectorize (Optimized I, A.2): element sends of a read-only array are
//     combined into one column message ("the Old values do not change during
//     the computation"), and the matching element receives become one block
//     receive plus local buffer reads.
//
//   - Jam (Optimized II, A.3): the loop that sends a produced array's
//     elements is fused into the loop that computes them, so every new value
//     is sent as soon as it is written — pipelining computation with
//     communication and exposing the wavefront parallelism.
//
//   - StripMine (Optimized III, A.4): the pipelined per-element messages are
//     blocked: values accumulate in a buffer and are sent every blksize
//     elements, trading a little pipeline latency for far fewer messages.
//
//   - Interchange (§4): swaps a perfectly nested loop pair, used to align
//     the iteration order with the decomposition.
//
// The paper applied these transformations by hand ("We plan to automate
// these transformations in the next phase of our compiler development");
// here they are automated for the program shapes compile-time resolution
// emits. Every pass is conservative: a communication channel (identified by
// its message tag, which is global across the process programs) is
// transformed only when the applicability conditions hold at every send and
// receive site in every program, and is left untouched otherwise. The passes
// only move sends earlier relative to their receives, or re-chunk both sides
// of a channel identically, so they preserve deadlock-freedom and
// per-channel FIFO order.
package xform

import (
	"sort"

	"procdecomp/internal/expr"
	"procdecomp/internal/spmd"
)

// sendLoop is one element-send pair inside a pure communication loop:
//
//	for v = lo to hi { ...; ct := is_read(A[v, e]); send(ct, to dst); ... }
//
// with dst and e invariant in v. The loop may pack several channels (when
// ownership classes coincide, e.g. on a two-processor ring the left and
// right neighbours are the same process); each read/send pair is a separate
// site. A loop qualifies only when it performs no receives, no array writes,
// and no nested control flow — it is purely a column-emission loop.
type sendLoop struct {
	loop    *spmd.For
	array   string
	read    *spmd.ARead
	send    *spmd.Send
	pairPos int // index of the ARead in loop.Body; the Send follows it
	dim     int // which subscript varies with the loop (0 rows, 1 columns)
}

// varyingDim reports which subscript of a rank-2 index equals the loop
// variable, with the other subscript loop-invariant.
func varyingDim(idx []expr.Expr, v string) (int, bool) {
	if len(idx) != 2 {
		return 0, false
	}
	if idx[0].Equal(expr.V(v)) && !idx[1].HasVar(v) {
		return 0, true
	}
	if idx[1].Equal(expr.V(v)) && !idx[0].HasVar(v) {
		return 1, true
	}
	return 0, false
}

// matchSendPairs returns every element-send pair of a pure communication
// loop, or ok=false when the loop does not qualify (its bare sends must then
// be treated as opaque).
func matchSendPairs(f *spmd.For) ([]*sendLoop, bool) {
	if v, ok := f.Step.ConstVal(); !ok || v != 1 {
		return nil, false
	}
	var pairs []*sendLoop
	for i := 0; i < len(f.Body); i++ {
		switch st := f.Body[i].(type) {
		case *spmd.ARead:
			// Part of a pair, or a stray read (neutral).
		case *spmd.Send:
			if i == 0 {
				return nil, false
			}
			rd, ok := f.Body[i-1].(*spmd.ARead)
			if !ok {
				return nil, false
			}
			vv, ok := st.Val.(spmd.VVar)
			if !ok || vv.Name != rd.Dst {
				return nil, false
			}
			dim, ok := varyingDim(rd.Idx, f.Var)
			if !ok || st.Dst.HasVar(f.Var) {
				return nil, false
			}
			pairs = append(pairs, &sendLoop{loop: f, array: rd.Array, read: rd, send: st, pairPos: i - 1, dim: dim})
		case *spmd.BufWrite, *spmd.AssignVar:
			// Neutral packing statements.
		default:
			return nil, false // receives, writes, nested control: not a send loop
		}
	}
	return pairs, len(pairs) > 0
}

// site is one occurrence of a channel operation with the context needed to
// rewrite it in place.
type site struct {
	prog *spmd.Program
	// holder/pos locate the top statement of the site (the send loop, or
	// the Recv itself) in its containing list.
	holder *[]spmd.Stmt
	pos    int
	// cond is the condition of the enclosing IfValue piece (nil if none).
	cond spmd.VExpr
	// roundVar is the variable of the enclosing round loop ("" if none).
	roundVar string
	// loop is the innermost enclosing For for receive sites, with its own
	// location for inserting statements before it.
	loop       *spmd.For
	loopHolder *[]spmd.Stmt
	loopPos    int

	recv *spmd.Recv
	send *sendLoop
}

// suite is the channel census of a program suite.
type suite struct {
	progs   []*spmd.Program
	sends   map[spmd.Tag][]*site
	recvs   map[spmd.Tag][]*site
	opaque  map[spmd.Tag]bool // tags with sites the passes cannot rewrite
	written map[string]bool   // arrays written anywhere in any program
}

// collect builds a fresh census. Passes re-collect after rewriting each
// channel, so site positions are never stale.
func collect(progs []*spmd.Program) *suite {
	s := &suite{
		progs:   progs,
		sends:   map[spmd.Tag][]*site{},
		recvs:   map[spmd.Tag][]*site{},
		opaque:  map[spmd.Tag]bool{},
		written: map[string]bool{},
	}
	for _, p := range progs {
		s.walk(p, &p.Body, walkCtx{})
	}
	return s
}

type walkCtx struct {
	cond       spmd.VExpr
	roundVar   string
	loop       *spmd.For
	loopHolder *[]spmd.Stmt
	loopPos    int
}

func (s *suite) walk(p *spmd.Program, body *[]spmd.Stmt, ctx walkCtx) {
	for i := 0; i < len(*body); i++ {
		switch st := (*body)[i].(type) {
		case *spmd.AWrite:
			s.written[st.Array] = true
		case *spmd.AssignIVar:
			// scalar writes don't affect array channels
		case *spmd.Coerce:
			s.opaque[st.Tag] = true
		case *spmd.Send:
			// A bare send outside the send-loop pattern (e.g. scalar
			// channels): passes must not touch its tag.
			s.opaque[st.Tag] = true
		case *spmd.SendBuf:
			s.opaque[st.Tag] = true
		case *spmd.RecvBuf:
			s.opaque[st.Tag] = true
		case *spmd.Recv:
			s.recvs[st.Tag] = append(s.recvs[st.Tag], &site{
				prog: p, holder: body, pos: i, cond: ctx.cond,
				roundVar: ctx.roundVar, loop: ctx.loop,
				loopHolder: ctx.loopHolder, loopPos: ctx.loopPos, recv: st,
			})
		case *spmd.For:
			if pairs, ok := matchSendPairs(st); ok {
				for _, sl := range pairs {
					s.sends[sl.send.Tag] = append(s.sends[sl.send.Tag], &site{
						prog: p, holder: body, pos: i, cond: ctx.cond,
						roundVar: ctx.roundVar, send: sl,
					})
				}
				continue
			}
			inner := ctx
			if isRoundLoop(st) {
				inner.roundVar = st.Var
			}
			inner.loop = st
			inner.loopHolder = body
			inner.loopPos = i
			s.walk(p, &st.Body, inner)
		case *spmd.IfValue:
			thenCtx := ctx
			thenCtx.cond = st.Cond
			s.walk(p, &st.Then, thenCtx)
			s.walk(p, &st.Else, ctx)
		case *spmd.Guard:
			s.walk(p, &st.Body, ctx)
		}
	}
}

// isRoundLoop recognizes the round structure compile-time resolution emits
// when several ownership classes share one loop: every body item is a
// range-guarded piece.
func isRoundLoop(f *spmd.For) bool {
	if len(f.Body) == 0 {
		return false
	}
	for _, st := range f.Body {
		if _, ok := st.(*spmd.IfValue); !ok {
			return false
		}
	}
	return true
}

// tags returns the channel tags present in the census, sorted, restricted to
// those with at least one send-loop site and no opaque site.
func (s *suite) tags() []spmd.Tag {
	var out []spmd.Tag
	for t := range s.sends {
		if !s.opaque[t] {
			out = append(out, t)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// splice replaces (*holder)[pos] with the given statements.
func splice(holder *[]spmd.Stmt, pos int, repl ...spmd.Stmt) {
	out := make([]spmd.Stmt, 0, len(*holder)-1+len(repl))
	out = append(out, (*holder)[:pos]...)
	out = append(out, repl...)
	out = append(out, (*holder)[pos+1:]...)
	*holder = out
}

// trueCond substitutes "always true" for a nil piece condition.
func condOrTrue(c spmd.VExpr) spmd.VExpr {
	if c == nil {
		return spmd.VConst{F: 1}
	}
	return c
}
