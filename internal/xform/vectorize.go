package xform

import (
	"fmt"

	"procdecomp/internal/expr"
	"procdecomp/internal/spmd"
)

// Vectorize applies Optimized I (Appendix A.2): for every channel whose
// source array is read-only ("the Old values are not changed during the
// execution of the loop"), the element-send loop becomes a pack-and-send of
// one column message, and every matching element receive becomes one block
// receive before its loop plus buffer reads inside it.
//
// Applicability per channel: every send site matches the element-send-loop
// pattern over a read-only array; every receive site is a bare receive
// directly inside a unit-stride loop whose bounds equal the send loop's; no
// opaque sites. Channels failing any condition are left untouched. Returns
// the number of channels transformed.
func Vectorize(progs []*spmd.Program) int {
	transformed := 0
	for {
		s := collect(progs)
		tag, ok := s.nextVectorizable()
		if !ok {
			return transformed
		}
		s.vectorizeChannel(tag)
		transformed++
	}
}

// nextVectorizable finds the lowest-numbered channel the pass can transform.
func (s *suite) nextVectorizable() (spmd.Tag, bool) {
	for _, tag := range s.tags() {
		if s.vectorizable(tag) {
			return tag, true
		}
	}
	return 0, false
}

func (s *suite) vectorizable(tag spmd.Tag) bool {
	sends := s.sends[tag]
	if len(sends) == 0 {
		return false
	}
	var lo, hi expr.Expr
	for i, st := range sends {
		if s.written[st.send.array] {
			return false // only read-only data may be hoisted into one message
		}
		if i == 0 {
			lo, hi = st.send.loop.Lo, st.send.loop.Hi
			continue
		}
		if !st.send.loop.Lo.Equal(lo) || !st.send.loop.Hi.Equal(hi) {
			return false
		}
	}
	for _, rt := range s.recvs[tag] {
		f := rt.loop
		if f == nil {
			return false
		}
		if v, ok := f.Step.ConstVal(); !ok || v != 1 {
			return false
		}
		if !f.Lo.Equal(lo) || !f.Hi.Equal(hi) {
			return false
		}
		if rt.recv.Src.HasVar(f.Var) {
			return false
		}
		// The receive must sit directly in the loop body (holder is the
		// loop's body) so the block receive can precede the loop.
		if rt.holder != &f.Body {
			return false
		}
	}
	return true
}

func (s *suite) vectorizeChannel(tag spmd.Tag) {
	for _, st := range s.sends[tag] {
		sl := st.send
		buf := fmt.Sprintf("oldvalues%d", tag)
		count := expr.Add(expr.Sub(sl.loop.Hi, sl.loop.Lo), expr.C(1))
		pos := expr.Add(expr.Sub(expr.V(sl.loop.Var), sl.loop.Lo), expr.C(1))
		// The pair's send becomes a buffer write (the loop may pack other
		// channels too, so it is rewritten in place), and the single column
		// message goes out after the loop.
		sl.loop.Body[sl.pairPos+1] = &spmd.BufWrite{Buf: buf, Idx: pos, Val: spmd.VVar{Name: sl.read.Dst}}
		splice(st.holder, st.pos,
			&spmd.AllocBuf{Buf: buf, Size: count},
			sl.loop,
			&spmd.SendBuf{Dst: sl.send.Dst, Tag: tag, Buf: buf, Lo: expr.C(1), Hi: count},
		)
	}
	for _, rt := range s.recvs[tag] {
		f := rt.loop
		buf := fmt.Sprintf("rvalues%d", tag)
		count := expr.Add(expr.Sub(f.Hi, f.Lo), expr.C(1))
		pos := expr.Add(expr.Sub(expr.V(f.Var), f.Lo), expr.C(1))
		// Replace the element receive with a buffer read.
		(*rt.holder)[rt.pos] = &spmd.BufRead{Dst: rt.recv.Dst, Buf: buf, Idx: pos}
		// Hoist one block receive before the loop.
		splice(rt.loopHolder, rt.loopPos,
			&spmd.AllocBuf{Buf: buf, Size: count},
			&spmd.RecvBuf{Src: rt.recv.Src, Tag: tag, Buf: buf, Lo: expr.C(1), Hi: count},
			f,
		)
	}
}
