package xform

import (
	"fmt"

	"procdecomp/internal/expr"
	"procdecomp/internal/lang"
	"procdecomp/internal/spmd"
)

// Jam applies Optimized II (Appendix A.3): for every channel that carries a
// produced (written) array, the element-send loop is fused into the loop
// that computes the values — each new value is sent as soon as it is written,
// pipelining computation with communication.
//
// The specialized programs place the send role and the compute role of one
// column in different congruence classes of the round structure, so fusion
// must align them: if the send loop at round r transmits the column the
// compute loop produced at round r-δ (δ is found by comparing the two local
// column expressions), the fused send covers all rounds the compute loop
// runs, and the original send loop survives only as a remainder guarded by
// "this round's column was not produced by the compute loop" — for
// Gauss-Seidel, exactly the boundary column filled by init_boundary.
//
// Applicability per channel: every send site matches the element-send-loop
// pattern; the array is written; each sender program has exactly one loop
// writing the array (unit stride, same row range as the send loop, row index
// equal to the loop variable) and the shift δ ∈ {0,1,2} aligns the column
// expressions. Receive sites are untouched — moving sends earlier cannot
// starve them. Returns the number of channels transformed.
func Jam(progs []*spmd.Program) int {
	transformed := 0
	for {
		s := collect(progs)
		tag, ok := s.nextJammable()
		if !ok {
			return transformed
		}
		s.jamChannel(tag)
		transformed++
	}
}

// producer describes the loop computing the channel's array in one program.
type producer struct {
	loop     *spmd.For
	write    *spmd.AWrite
	writePos int
	cond     spmd.VExpr
	roundVar string
	dim      int // which subscript of the write varies with the loop
}

func (s *suite) nextJammable() (spmd.Tag, bool) {
	for _, tag := range s.tags() {
		if _, ok := s.jamPlan(tag); ok {
			return tag, true
		}
	}
	return 0, false
}

type jamStep struct {
	site  *site
	prod  *producer
	delta int64
}

// jamPlan checks applicability and computes the per-program fusion steps.
func (s *suite) jamPlan(tag spmd.Tag) ([]jamStep, bool) {
	sends := s.sends[tag]
	if len(sends) == 0 {
		return nil, false
	}
	var steps []jamStep
	for _, st := range sends {
		sl := st.send
		if !s.written[sl.array] {
			return nil, false // read-only channels belong to Vectorize
		}
		// Among the loops producing this array, exactly one must align with
		// the sent slice: e_send(round+δ) == e_compute(round) for a small
		// shift δ in the loop-invariant subscript. Boundary-initialization
		// loops write constant slices and never align; they are covered by
		// the remainder condition.
		eSend := sl.read.Idx[1-sl.dim]
		rv := st.roundVar
		var chosen *jamStep
		for _, prod := range findProducers(st.prog, sl.array) {
			if prod.dim != sl.dim {
				continue
			}
			if !prod.loop.Lo.Equal(sl.loop.Lo) || !prod.loop.Hi.Equal(sl.loop.Hi) {
				continue
			}
			if v, ok := prod.loop.Step.ConstVal(); !ok || v != 1 {
				continue
			}
			if prod.roundVar != rv {
				continue
			}
			eComp := prod.write.Idx[1-prod.dim]
			for d := int64(0); d <= 2; d++ {
				cand := eSend
				if rv != "" {
					cand = eSend.Subst(rv, expr.Add(expr.V(rv), expr.C(d)))
				}
				if cand.Equal(eComp) {
					if chosen != nil {
						return nil, false // ambiguous producers
					}
					prodCopy := prod
					chosen = &jamStep{site: st, prod: prodCopy, delta: d}
					break
				}
			}
		}
		if chosen == nil {
			return nil, false
		}
		steps = append(steps, *chosen)
	}
	return steps, true
}

// findProducers locates every element-producing loop of the array in a
// program: loops whose body directly contains an AWrite whose row index is
// the loop variable. The caller disambiguates by column alignment.
func findProducers(p *spmd.Program, array string) []*producer {
	var found []*producer
	var search func(body []spmd.Stmt, cond spmd.VExpr, roundVar string)
	search = func(body []spmd.Stmt, cond spmd.VExpr, roundVar string) {
		for _, st := range body {
			switch st := st.(type) {
			case *spmd.For:
				rv := roundVar
				if isRoundLoop(st) {
					rv = st.Var
				}
				for i, inner := range st.Body {
					w, ok := inner.(*spmd.AWrite)
					if !ok || w.Array != array {
						continue
					}
					dim, ok := varyingDim(w.Idx, st.Var)
					if !ok {
						continue
					}
					found = append(found, &producer{loop: st, write: w, writePos: i, cond: cond, roundVar: rv, dim: dim})
				}
				search(st.Body, cond, rv)
			case *spmd.IfValue:
				search(st.Then, st.Cond, roundVar)
				search(st.Else, cond, roundVar)
			case *spmd.Guard:
				search(st.Body, cond, roundVar)
			}
		}
	}
	search(p.Body, nil, "")
	return found
}

func (s *suite) jamChannel(tag spmd.Tag) {
	steps, _ := s.jamPlan(tag)
	for _, step := range steps {
		sl := step.site.send
		prod := step.prod
		// Insert "read the freshly written element and send it" right after
		// the producing write (Appendix A.3's fused body). The send fires
		// only when the original send loop would have: a column nobody
		// consumes (the last one of the wavefront) is computed but not sent,
		// keeping the message count identical to the hand-written program.
		ct := fmt.Sprintf("jam%d", tag)
		fusedRead := &spmd.ARead{Dst: ct, Array: sl.array,
			Idx: []expr.Expr{prod.write.Idx[0], prod.write.Idx[1]}}
		fusedSend := &spmd.Send{Dst: sl.send.Dst, Tag: tag, Val: spmd.VVar{Name: ct}}
		fused := []spmd.Stmt{fusedRead, fusedSend}
		rv := step.site.roundVar
		sendCond := condOrTrue(step.site.cond)
		if rv != "" {
			sendCond = spmd.SubstVExpr(sendCond, rv, expr.Add(expr.V(rv), expr.C(step.delta)))
		}
		if !spmd.VExprEqual(sendCond, condOrTrue(prod.cond)) {
			fused = []spmd.Stmt{&spmd.IfValue{Cond: sendCond, Then: fused}}
		}
		body := prod.loop.Body
		out := make([]spmd.Stmt, 0, len(body)+2)
		out = append(out, body[:prod.writePos+1]...)
		out = append(out, fused...)
		out = append(out, body[prod.writePos+1:]...)
		prod.loop.Body = out

		// Detach the pair from its communication loop; the remainder loop
		// (below) re-emits it for the rounds the compute loop does not cover.
		residual := make([]spmd.Stmt, 0, len(sl.loop.Body)-2)
		residual = append(residual, sl.loop.Body[:sl.pairPos]...)
		residual = append(residual, sl.loop.Body[sl.pairPos+2:]...)
		sl.loop.Body = residual
		remainderLoop := &spmd.For{Var: sl.loop.Var, Lo: sl.loop.Lo, Hi: sl.loop.Hi,
			Step: sl.loop.Step, Body: []spmd.Stmt{sl.read, sl.send}}

		// The original send survives only for rounds whose column the
		// compute loop does not produce: rounds before δ, and rounds where
		// the shifted compute condition fails.
		var remainder spmd.Stmt
		switch {
		case rv == "" && spmd.VExprEqual(condOrTrue(step.site.cond), condOrTrue(prod.cond)):
			remainder = nil // fully covered
		case rv == "":
			remainder = &spmd.IfValue{
				Cond: spmd.VUn{Op: lang.OpNot, X: condOrTrue(prod.cond)},
				Then: []spmd.Stmt{remainderLoop}}
		case step.delta == 0 && spmd.VExprEqual(condOrTrue(step.site.cond), condOrTrue(prod.cond)):
			remainder = nil // fully covered
		default:
			shifted := spmd.SubstVExpr(condOrTrue(prod.cond), rv, expr.Sub(expr.V(rv), expr.C(step.delta)))
			headRemainder := spmd.VBin{Op: lang.OpLt,
				L: spmd.VInt{X: expr.V(rv)}, R: spmd.VConst{F: float64(step.delta)}}
			notCovered := spmd.VBin{Op: lang.OpOr,
				L: headRemainder,
				R: spmd.VUn{Op: lang.OpNot, X: shifted}}
			remainder = &spmd.IfValue{Cond: notCovered, Then: []spmd.Stmt{remainderLoop}}
		}

		var repl []spmd.Stmt
		if len(sl.loop.Body) > 0 {
			repl = append(repl, sl.loop)
		}
		if remainder != nil {
			repl = append(repl, remainder)
		}
		splice(step.site.holder, step.site.pos, repl...)
	}
}
