package xform

import (
	"strings"

	"procdecomp/internal/spmd"
)

// Interchange swaps a perfectly nested loop pair whose outer loop has the
// given variable, in the (generic) program body. §4: "if the sequential
// version of Gauss-Seidel had had the i and j-loops reversed then [the]
// generated code would not have shown any parallelism, so loop interchange
// would be required."
//
// The structural preconditions checked here are that the outer loop's body
// is exactly the inner loop and that the inner loop's bounds do not mention
// the outer variable. Dependence legality is the caller's responsibility
// (the paper treats it as a planned compiler phase guided by the mapping);
// the equivalence tests in this repository validate the uses the benchmarks
// make of it. Returns true when a swap happened.
func Interchange(prog *spmd.Program, outerVar string) bool {
	return interchangeIn(&prog.Body, outerVar)
}

// matchesVar accepts the source variable name or the compiler's uniquified
// form of it ("i" matches both "i" and "i#2").
func matchesVar(irVar, srcVar string) bool {
	return irVar == srcVar || strings.HasPrefix(irVar, srcVar+"#")
}

func interchangeIn(body *[]spmd.Stmt, outerVar string) bool {
	done := false
	for i := 0; i < len(*body); i++ {
		switch st := (*body)[i].(type) {
		case *spmd.For:
			if matchesVar(st.Var, outerVar) && len(st.Body) == 1 {
				if inner, ok := st.Body[0].(*spmd.For); ok &&
					!inner.Lo.HasVar(st.Var) && !inner.Hi.HasVar(st.Var) && !inner.Step.HasVar(st.Var) &&
					!st.Lo.HasVar(inner.Var) && !st.Hi.HasVar(inner.Var) && !st.Step.HasVar(inner.Var) {
					swapped := &spmd.For{
						Var: inner.Var, Lo: inner.Lo, Hi: inner.Hi, Step: inner.Step,
						Body: []spmd.Stmt{&spmd.For{
							Var: st.Var, Lo: st.Lo, Hi: st.Hi, Step: st.Step,
							Body: inner.Body,
						}},
					}
					(*body)[i] = swapped
					done = true
					continue
				}
			}
			if interchangeIn(&st.Body, outerVar) {
				done = true
			}
		case *spmd.IfValue:
			if interchangeIn(&st.Then, outerVar) {
				done = true
			}
			if interchangeIn(&st.Else, outerVar) {
				done = true
			}
		case *spmd.Guard:
			if interchangeIn(&st.Body, outerVar) {
				done = true
			}
		}
	}
	return done
}
