package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// The parser half of the measurement plane. The CI and pdload gates do not
// trust the writer: they scrape /metrics over the wire and re-parse the text
// with this strict parser, which rejects malformed exposition (a series
// before its # TYPE, an unparsable sample line, an inconsistent histogram)
// instead of skipping it. A scrape that parses is then handed to the
// service's reconciliation identities — metrics that can drift are metrics
// that lie.

// Sample is one parsed series: a metric name (for histograms, the expanded
// _bucket/_sum/_count name), its labels, and the value.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Key renders the sample's identity — name plus sorted label pairs — the way
// the cross-run determinism comparison indexes scrapes.
func (s Sample) Key() string {
	names := make([]string, 0, len(s.Labels))
	for n := range s.Labels {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	b.WriteString(s.Name)
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", n, s.Labels[n])
	}
	b.WriteByte('}')
	return b.String()
}

// Scrape is one parsed exposition payload.
type Scrape struct {
	// Types maps family name -> "counter"/"gauge"/"histogram".
	Types map[string]string
	// Samples holds every series line in input order.
	Samples []Sample
}

// Value returns the single sample matching name and the given label subset,
// or an error if none or several match.
func (sc *Scrape) Value(name string, labels map[string]string) (float64, error) {
	var found []Sample
	for _, s := range sc.Samples {
		if s.Name != name || !matches(s.Labels, labels) {
			continue
		}
		found = append(found, s)
	}
	switch len(found) {
	case 0:
		return 0, fmt.Errorf("obs: no sample %s%v", name, labels)
	case 1:
		return found[0].Value, nil
	default:
		return 0, fmt.Errorf("obs: %d samples match %s%v", len(found), name, labels)
	}
}

// Sum adds every sample of name whose labels include the given subset.
func (sc *Scrape) Sum(name string, labels map[string]string) float64 {
	total := 0.0
	for _, s := range sc.Samples {
		if s.Name == name && matches(s.Labels, labels) {
			total += s.Value
		}
	}
	return total
}

// Series returns every sample of the named family.
func (sc *Scrape) Series(name string) []Sample {
	var out []Sample
	for _, s := range sc.Samples {
		if s.Name == name {
			out = append(out, s)
		}
	}
	return out
}

func matches(have, want map[string]string) bool {
	for k, v := range want {
		if have[k] != v {
			return false
		}
	}
	return true
}

// ParsePrometheus parses text exposition strictly. Every sample line must
// parse, follow its family's # TYPE line, and agree with the declared type;
// histogram series must be internally consistent (cumulative ascending
// buckets ending at a +Inf bucket that equals _count).
func ParsePrometheus(r io.Reader) (*Scrape, error) {
	sc := &Scrape{Types: map[string]string{}}
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 64*1024), 16*1024*1024)
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := scanner.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) == 4 && fields[1] == "TYPE" {
				typ := strings.TrimSpace(fields[3])
				switch typ {
				case "counter", "gauge", "histogram":
				default:
					return nil, fmt.Errorf("obs: line %d: unknown metric type %q", lineNo, typ)
				}
				if prev, dup := sc.Types[fields[2]]; dup && prev != typ {
					return nil, fmt.Errorf("obs: line %d: family %s re-typed %s -> %s", lineNo, fields[2], prev, typ)
				}
				sc.Types[fields[2]] = typ
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("obs: line %d: %w", lineNo, err)
		}
		fam := familyOf(s.Name, sc.Types)
		typ, ok := sc.Types[fam]
		if !ok {
			return nil, fmt.Errorf("obs: line %d: sample %s precedes its # TYPE", lineNo, s.Name)
		}
		if typ == "histogram" {
			if s.Name == fam {
				return nil, fmt.Errorf("obs: line %d: bare histogram sample %s", lineNo, s.Name)
			}
		} else if s.Name != fam {
			return nil, fmt.Errorf("obs: line %d: suffixed sample %s on %s %s", lineNo, s.Name, typ, fam)
		}
		if typ == "counter" && s.Value < 0 {
			return nil, fmt.Errorf("obs: line %d: negative counter %s", lineNo, s.Name)
		}
		sc.Samples = append(sc.Samples, s)
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("obs: scrape read: %w", err)
	}
	if err := sc.checkHistograms(); err != nil {
		return nil, err
	}
	return sc, nil
}

// familyOf strips the histogram suffixes when the base name is a declared
// histogram family.
func familyOf(name string, types map[string]string) string {
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, suffix); ok {
			if types[base] == "histogram" {
				return base
			}
		}
	}
	return name
}

// checkHistograms verifies every histogram series: buckets cumulative and
// ascending, a +Inf bucket present and equal to _count, _sum present.
func (sc *Scrape) checkHistograms() error {
	type hseries struct {
		buckets []Sample
		sum     *Sample
		count   *Sample
	}
	byKey := map[string]*hseries{}
	order := []string{}
	get := func(fam string, labels map[string]string) *hseries {
		rest := map[string]string{}
		for k, v := range labels {
			if k != "le" {
				rest[k] = v
			}
		}
		key := Sample{Name: fam, Labels: rest}.Key()
		h, ok := byKey[key]
		if !ok {
			h = &hseries{}
			byKey[key] = h
			order = append(order, key)
		}
		return h
	}
	for i, s := range sc.Samples {
		fam := familyOf(s.Name, sc.Types)
		if sc.Types[fam] != "histogram" {
			continue
		}
		h := get(fam, s.Labels)
		switch {
		case strings.HasSuffix(s.Name, "_bucket"):
			h.buckets = append(h.buckets, s)
		case strings.HasSuffix(s.Name, "_sum"):
			h.sum = &sc.Samples[i]
		case strings.HasSuffix(s.Name, "_count"):
			h.count = &sc.Samples[i]
		}
	}
	for _, key := range order {
		h := byKey[key]
		if h.sum == nil || h.count == nil {
			return fmt.Errorf("obs: histogram %s missing _sum or _count", key)
		}
		prevBound, prevCum := math.Inf(-1), -1.0
		sawInf := false
		for _, b := range h.buckets {
			le := b.Labels["le"]
			var bound float64
			if le == "+Inf" {
				sawInf, bound = true, math.Inf(1)
			} else {
				var err error
				bound, err = strconv.ParseFloat(le, 64)
				if err != nil {
					return fmt.Errorf("obs: histogram %s: bad le %q", key, le)
				}
			}
			if bound <= prevBound {
				return fmt.Errorf("obs: histogram %s: buckets out of order at le=%q", key, le)
			}
			if b.Value < prevCum {
				return fmt.Errorf("obs: histogram %s: bucket counts not cumulative at le=%q", key, le)
			}
			prevBound, prevCum = bound, b.Value
		}
		if !sawInf {
			return fmt.Errorf("obs: histogram %s: no +Inf bucket", key)
		}
		if prevCum != h.count.Value {
			return fmt.Errorf("obs: histogram %s: +Inf bucket %v != count %v", key, prevCum, h.count.Value)
		}
	}
	return nil
}

// parseSample parses one `name{label="v",...} value` line.
func parseSample(line string) (Sample, error) {
	s := Sample{Labels: map[string]string{}}
	i := strings.IndexAny(line, "{ ")
	if i <= 0 {
		return s, fmt.Errorf("unparsable sample %q", line)
	}
	s.Name = line[:i]
	if !validMetricName(s.Name) {
		return s, fmt.Errorf("bad metric name %q", s.Name)
	}
	rest := line[i:]
	if rest[0] == '{' {
		end, err := parseLabels(rest, s.Labels)
		if err != nil {
			return s, err
		}
		rest = rest[end:]
	}
	rest = strings.TrimLeft(rest, " ")
	fields := strings.Fields(rest)
	if len(fields) != 1 {
		return s, fmt.Errorf("sample %q: want exactly one value field, got %d", line, len(fields))
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return s, fmt.Errorf("sample %q: bad value: %v", line, err)
	}
	s.Value = v
	return s, nil
}

// parseLabels parses `{a="b",c="d"}` starting at s[0]=='{', filling into and
// returning the index one past the closing brace.
func parseLabels(s string, into map[string]string) (int, error) {
	i := 1
	for {
		if i >= len(s) {
			return 0, fmt.Errorf("unterminated label set")
		}
		if s[i] == '}' {
			return i + 1, nil
		}
		eq := strings.IndexByte(s[i:], '=')
		if eq < 0 {
			return 0, fmt.Errorf("label without '='")
		}
		name := s[i : i+eq]
		if !validLabelName(name) {
			return 0, fmt.Errorf("bad label name %q", name)
		}
		i += eq + 1
		if i >= len(s) || s[i] != '"' {
			return 0, fmt.Errorf("unquoted label value for %q", name)
		}
		i++
		var val strings.Builder
		for {
			if i >= len(s) {
				return 0, fmt.Errorf("unterminated label value for %q", name)
			}
			c := s[i]
			if c == '\\' {
				if i+1 >= len(s) {
					return 0, fmt.Errorf("dangling escape in label %q", name)
				}
				switch s[i+1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return 0, fmt.Errorf("bad escape \\%c in label %q", s[i+1], name)
				}
				i += 2
				continue
			}
			if c == '"' {
				i++
				break
			}
			val.WriteByte(c)
			i++
		}
		into[name] = val.String()
		if i < len(s) && s[i] == ',' {
			i++
		}
	}
}

func validMetricName(s string) bool {
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return s != ""
}

func validLabelName(s string) bool {
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return s != ""
}
