package obs

import (
	"context"
	"fmt"
	"log/slog"
	"sort"
	"strings"
	"sync"
	"time"
)

// Request-ID plumbing: an ID is generated (or adopted from the client) at
// HTTP ingress, stored in the request context, and carried through admission,
// the queue, the worker pool, retries, journal records, and job events — so
// one grep over the structured log, one filter over /jobs/<id>/events, and
// one stitched trace all answer "what happened to this request".

type ctxKey int

const requestIDKey ctxKey = 0

// WithRequestID returns a context carrying the request ID.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey, id)
}

// RequestID returns the context's request ID, or "".
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey).(string)
	return id
}

// Line is one retained log record, pre-rendered for /logz and tests.
type Line struct {
	Time  time.Time
	Level slog.Level
	Req   string // request ID, from the record's context
	Text  string // "msg key=value ..." with keys sorted
}

// Ring is a slog.Handler that retains the last N records in memory (indexed
// by request ID) and optionally tees every record to a next handler (stderr
// text or JSON in pdserve). Retention is what makes "give me every log line
// of request X" answerable from the process itself via GET /logz?req=X —
// no log shipping required. All methods are safe for concurrent use.
type Ring struct {
	next  slog.Handler // may be nil
	attrs []slog.Attr  // accumulated WithAttrs state

	mu    *sync.Mutex
	lines *[]Line // ring storage, shared across WithAttrs clones
	head  *int
	cap   int
}

// NewRing returns a ring retaining up to capacity lines (default 4096),
// teeing records to next when non-nil.
func NewRing(capacity int, next slog.Handler) *Ring {
	if capacity <= 0 {
		capacity = 4096
	}
	lines := make([]Line, 0, capacity)
	head := 0
	return &Ring{next: next, mu: &sync.Mutex{}, lines: &lines, head: &head, cap: capacity}
}

// Enabled reports whether the record would be retained or forwarded. The
// ring itself retains everything down to Debug; the tee may be stricter but
// it cannot veto retention.
func (r *Ring) Enabled(ctx context.Context, level slog.Level) bool {
	return level >= slog.LevelDebug
}

// Handle retains the record and forwards it to the tee.
func (r *Ring) Handle(ctx context.Context, rec slog.Record) error {
	req := RequestID(ctx)
	attrs := make([]slog.Attr, 0, rec.NumAttrs()+len(r.attrs)+1)
	attrs = append(attrs, r.attrs...)
	rec.Attrs(func(a slog.Attr) bool { attrs = append(attrs, a); return true })
	for _, a := range attrs {
		if a.Key == "req" && req == "" {
			req = a.Value.String()
		}
	}

	pairs := make([]string, 0, len(attrs))
	for _, a := range attrs {
		if a.Key == "req" {
			continue // carried in Line.Req, re-rendered canonically
		}
		pairs = append(pairs, fmt.Sprintf("%s=%v", a.Key, a.Value))
	}
	sort.Strings(pairs)
	text := rec.Message
	if len(pairs) > 0 {
		text += " " + strings.Join(pairs, " ")
	}
	ln := Line{Time: rec.Time, Level: rec.Level, Req: req, Text: text}

	r.mu.Lock()
	if len(*r.lines) < r.cap {
		*r.lines = append(*r.lines, ln)
	} else {
		(*r.lines)[*r.head] = ln
		*r.head = (*r.head + 1) % r.cap
	}
	r.mu.Unlock()

	if r.next != nil && r.next.Enabled(ctx, rec.Level) {
		if req != "" {
			rec = rec.Clone()
			rec.AddAttrs(slog.String("req", req))
		}
		return r.next.Handle(ctx, rec)
	}
	return nil
}

// WithAttrs returns a handler sharing this ring's storage with the extra
// attrs bound.
func (r *Ring) WithAttrs(attrs []slog.Attr) slog.Handler {
	clone := *r
	clone.attrs = append(append([]slog.Attr(nil), r.attrs...), attrs...)
	if r.next != nil {
		clone.next = r.next.WithAttrs(attrs)
	}
	return &clone
}

// WithGroup flattens the group into a key prefix (good enough for the flat
// key=value lines the service emits).
func (r *Ring) WithGroup(name string) slog.Handler {
	if name == "" {
		return r
	}
	clone := *r
	if r.next != nil {
		clone.next = r.next.WithGroup(name)
	}
	return &clone
}

// Lines returns the retained records in arrival order, filtered to the
// request ID when reqID is non-empty.
func (r *Ring) Lines(reqID string) []Line {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Line, 0, len(*r.lines))
	n := len(*r.lines)
	for i := 0; i < n; i++ {
		ln := (*r.lines)[(*r.head+i)%n]
		if reqID == "" || ln.Req == reqID {
			out = append(out, ln)
		}
	}
	return out
}
