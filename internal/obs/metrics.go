// Package obs is the service's measurement plane: a dependency-free
// metrics registry with Prometheus text exposition (and a strict parser for
// the self-check gates), structured request logging built on log/slog with a
// request ID carried in context, and wall-time span recording that stitches
// service spans together with the simulated machine's virtual-time Chrome
// trace.
//
// The package deliberately has no opinion about what is measured — the serve
// package owns its metric catalog and its reconciliation identities — but it
// guarantees the properties those identities need: counters never lose
// increments under concurrency, exposition output is deterministic (families
// and series in sorted order, numbers formatted canonically), and the parser
// round-trips everything the writer emits.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry holds metric families. The zero value is not usable; create with
// NewRegistry. All methods are safe for concurrent use.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// family is one named metric with a fixed label schema and a series per
// distinct label-value tuple.
type family struct {
	name    string
	help    string
	typ     string // "counter", "gauge", "histogram"
	labels  []string
	buckets []float64 // histogram upper bounds, ascending, +Inf implicit

	mu     sync.Mutex
	series map[string]*series
}

// series is one (family, label values) time series. Counters and gauges use
// val; histograms use counts/sum/total.
type series struct {
	labelVals []string

	val atomic.Uint64 // float64 bits

	counts []atomic.Uint64 // per finite bucket, non-cumulative
	inf    atomic.Uint64   // observations above every finite bucket
	sumB   atomic.Uint64   // float64 bits of the observation sum
}

func (s *series) add(delta float64) {
	for {
		old := s.val.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if s.val.CompareAndSwap(old, next) {
			return
		}
	}
}

func (s *series) set(v float64) { s.val.Store(math.Float64bits(v)) }

func (s *series) get() float64 { return math.Float64frombits(s.val.Load()) }

func (s *series) observe(v float64, buckets []float64) {
	i := sort.SearchFloat64s(buckets, v) // first bucket with bound >= v
	if i < len(buckets) {
		s.counts[i].Add(1)
	} else {
		s.inf.Add(1)
	}
	for {
		old := s.sumB.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if s.sumB.CompareAndSwap(old, next) {
			return
		}
	}
}

func (r *Registry) family(name, help, typ string, buckets []float64, labels []string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.typ != typ || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("obs: metric %q re-registered with a different schema", name))
		}
		return f
	}
	f := &family{name: name, help: help, typ: typ, buckets: buckets,
		labels: append([]string(nil), labels...), series: map[string]*series{}}
	r.families[name] = f
	return f
}

func (f *family) with(vals ...string) *series {
	if len(vals) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d", f.name, len(f.labels), len(vals)))
	}
	key := strings.Join(vals, "\xff")
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[key]; ok {
		return s
	}
	s := &series{labelVals: append([]string(nil), vals...)}
	if f.typ == "histogram" {
		s.counts = make([]atomic.Uint64, len(f.buckets))
	}
	f.series[key] = s
	return s
}

// Counter is a monotonically increasing value, addressed by label values.
type Counter struct{ f *family }

// NewCounter registers (or returns the existing) counter family.
func (r *Registry) NewCounter(name, help string, labels ...string) Counter {
	return Counter{r.family(name, help, "counter", nil, labels)}
}

// Inc adds 1 to the series addressed by the label values.
func (c Counter) Inc(labelVals ...string) { c.f.with(labelVals...).add(1) }

// Add adds v (which must be >= 0) to the addressed series.
func (c Counter) Add(v float64, labelVals ...string) {
	if v < 0 {
		panic(fmt.Sprintf("obs: counter %q decremented", c.f.name))
	}
	c.f.with(labelVals...).add(v)
}

// Value reads the addressed series (0 if never touched).
func (c Counter) Value(labelVals ...string) float64 { return c.f.with(labelVals...).get() }

// Gauge is a value that can move both ways.
type Gauge struct{ f *family }

// NewGauge registers (or returns the existing) gauge family.
func (r *Registry) NewGauge(name, help string, labels ...string) Gauge {
	return Gauge{r.family(name, help, "gauge", nil, labels)}
}

// Set stores v on the addressed series.
func (g Gauge) Set(v float64, labelVals ...string) { g.f.with(labelVals...).set(v) }

// Add moves the addressed series by delta.
func (g Gauge) Add(delta float64, labelVals ...string) { g.f.with(labelVals...).add(delta) }

// Value reads the addressed series.
func (g Gauge) Value(labelVals ...string) float64 { return g.f.with(labelVals...).get() }

// Histogram is a bucketed distribution (cumulative buckets on exposition).
type Histogram struct{ f *family }

// DefBuckets suits request latencies in seconds: 1ms up to ~65s, doubling.
var DefBuckets = []float64{0.001, 0.002, 0.004, 0.008, 0.016, 0.032, 0.064,
	0.128, 0.256, 0.512, 1.024, 2.048, 4.096, 8.192, 16.384, 32.768, 65.536}

// NewHistogram registers (or returns the existing) histogram family with the
// given ascending finite bucket bounds (+Inf is implicit).
func (r *Registry) NewHistogram(name, help string, buckets []float64, labels ...string) Histogram {
	if len(buckets) == 0 {
		buckets = DefBuckets
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("obs: histogram %q buckets not ascending", name))
		}
	}
	return Histogram{r.family(name, help, "histogram", buckets, labels)}
}

// Observe records one sample on the addressed series.
func (h Histogram) Observe(v float64, labelVals ...string) {
	h.f.with(labelVals...).observe(v, h.f.buckets)
}

// Count reads the addressed series' observation count.
func (h Histogram) Count(labelVals ...string) float64 {
	s := h.f.with(labelVals...)
	var n uint64
	for i := range s.counts {
		n += s.counts[i].Load()
	}
	return float64(n + s.inf.Load())
}

// formatValue renders a sample canonically: integers without an exponent,
// everything else in Go's shortest round-trip form.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatFloat(v, 'f', -1, 64)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

func labelPairs(names, vals []string, extra ...string) string {
	if len(names) == 0 && len(extra) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, n, escapeLabel(vals[i]))
	}
	for i := 0; i+1 < len(extra); i += 2 {
		if b.Len() > 1 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, extra[i], escapeLabel(extra[i+1]))
	}
	b.WriteByte('}')
	return b.String()
}

// WritePrometheus writes the registry in Prometheus text exposition format
// (version 0.0.4). Output is deterministic: families sorted by name, series
// sorted by label values, histogram buckets cumulative and ascending.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		fams = append(fams, r.families[name])
	}
	r.mu.Unlock()

	for _, f := range fams {
		f.mu.Lock()
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		sers := make([]*series, 0, len(keys))
		for _, k := range keys {
			sers = append(sers, f.series[k])
		}
		f.mu.Unlock()
		if len(sers) == 0 {
			continue
		}
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.typ); err != nil {
			return err
		}
		for _, s := range sers {
			switch f.typ {
			case "histogram":
				var cum uint64
				for i, bound := range f.buckets {
					cum += s.counts[i].Load()
					if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name,
						labelPairs(f.labels, s.labelVals, "le", formatValue(bound)), cum); err != nil {
						return err
					}
				}
				cum += s.inf.Load()
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name,
					labelPairs(f.labels, s.labelVals, "le", "+Inf"), cum); err != nil {
					return err
				}
				if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name,
					labelPairs(f.labels, s.labelVals),
					formatValue(math.Float64frombits(s.sumB.Load()))); err != nil {
					return err
				}
				if _, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name,
					labelPairs(f.labels, s.labelVals), cum); err != nil {
					return err
				}
			default:
				if _, err := fmt.Fprintf(w, "%s%s %s\n", f.name,
					labelPairs(f.labels, s.labelVals), formatValue(s.get())); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
