package obs

import (
	"encoding/json"
	"testing"
	"time"
)

func TestStitchChromeMergesBothClockDomains(t *testing.T) {
	epoch := time.Now()
	rec := NewSpanRecorder()
	rec.Add("queued", "service", epoch, epoch.Add(2*time.Millisecond), map[string]string{"route": "/run"})
	rec.Add("attempt 1", "service", epoch.Add(2*time.Millisecond), epoch.Add(9*time.Millisecond), nil)

	machine := []byte(`{"traceEvents":[` +
		`{"name":"compute","cat":"compute","ph":"X","ts":0,"dur":40,"pid":0,"tid":1},` +
		`{"name":"send","cat":"send","ph":"X","ts":40,"dur":3,"pid":0,"tid":1}` +
		`],"displayTimeUnit":"ns"}`)

	out, err := StitchChrome("r-42", epoch, rec.Spans(), machine)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			Ts   int64             `json:"ts"`
			Dur  int64             `json:"dur"`
			Pid  int               `json:"pid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
		PDObs struct {
			RequestID     string
			WallSpans     int
			MachineEvents int
		} `json:"pdobs"`
	}
	if err := json.Unmarshal(out, &doc); err != nil {
		t.Fatalf("stitched trace does not parse: %v", err)
	}
	if doc.PDObs.RequestID != "r-42" || doc.PDObs.WallSpans != 2 || doc.PDObs.MachineEvents != 2 {
		t.Errorf("summary = %+v", doc.PDObs)
	}
	var service, machineEvs, linked int
	for _, ev := range doc.TraceEvents {
		if ev.Pid == servicePid && ev.Ph == "X" {
			service++
			if ev.Args["request_id"] == "r-42" {
				linked++
			}
		}
		if ev.Pid == 0 && ev.Ph == "X" {
			machineEvs++
		}
	}
	if service != 2 || linked != 2 {
		t.Errorf("service spans %d (linked %d), want 2 linked spans", service, linked)
	}
	if machineEvs != 2 {
		t.Errorf("machine events %d, want 2 preserved verbatim", machineEvs)
	}
	// Wall span timestamps are relative microseconds, so the queued span
	// starts at 0 and the attempt at 2000µs.
	for _, ev := range doc.TraceEvents {
		if ev.Name == "queued" && ev.Ts != 0 {
			t.Errorf("queued span ts = %d, want 0", ev.Ts)
		}
		if ev.Name == "attempt 1" && ev.Ts != 2000 {
			t.Errorf("attempt span ts = %d, want 2000", ev.Ts)
		}
	}
}

func TestStitchChromeWithoutMachineTrace(t *testing.T) {
	epoch := time.Now()
	out, err := StitchChrome("r-7", epoch, []Span{
		{Name: "queued", Cat: "service", Start: epoch, End: epoch.Add(time.Millisecond)},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(out, &doc); err != nil {
		t.Fatal(err)
	}
	if _, ok := doc["traceEvents"]; !ok {
		t.Error("no traceEvents key")
	}
}

func TestStitchChromeRejectsGarbageMachineTrace(t *testing.T) {
	if _, err := StitchChrome("r", time.Now(), nil, []byte("not json")); err == nil {
		t.Error("garbage machine trace accepted")
	}
}
