package obs

import (
	"context"
	"log/slog"
	"testing"
	"time"
)

func TestRingRetainsAndFiltersByRequestID(t *testing.T) {
	ring := NewRing(16, nil)
	log := slog.New(ring)
	ctxA := WithRequestID(context.Background(), "r-a")
	ctxB := WithRequestID(context.Background(), "r-b")
	log.LogAttrs(ctxA, slog.LevelInfo, "request", slog.String("route", "/run"))
	log.LogAttrs(ctxB, slog.LevelInfo, "request", slog.String("route", "/compile"))
	log.LogAttrs(ctxA, slog.LevelDebug, "response", slog.Int("status", 200))

	all := ring.Lines("")
	if len(all) != 3 {
		t.Fatalf("retained %d lines, want 3", len(all))
	}
	a := ring.Lines("r-a")
	if len(a) != 2 {
		t.Fatalf("request r-a has %d lines, want 2: %+v", len(a), all)
	}
	if a[0].Text != "request route=/run" || a[1].Text != "response status=200" {
		t.Errorf("unexpected line text: %q, %q", a[0].Text, a[1].Text)
	}
	if b := ring.Lines("r-b"); len(b) != 1 || b[0].Req != "r-b" {
		t.Errorf("request r-b lines = %+v", b)
	}
}

func TestRingWrapsAtCapacityKeepingNewest(t *testing.T) {
	ring := NewRing(4, nil)
	log := slog.New(ring)
	ctx := context.Background()
	for i := 0; i < 10; i++ {
		log.LogAttrs(ctx, slog.LevelInfo, "m", slog.Int("i", i))
	}
	got := ring.Lines("")
	if len(got) != 4 {
		t.Fatalf("retained %d lines, want capacity 4", len(got))
	}
	want := []string{"m i=6", "m i=7", "m i=8", "m i=9"}
	for i, ln := range got {
		if ln.Text != want[i] {
			t.Errorf("line %d = %q, want %q", i, ln.Text, want[i])
		}
	}
}

func TestRingWithAttrsSharesStorage(t *testing.T) {
	ring := NewRing(8, nil)
	log := slog.New(ring).With(slog.String("component", "journal"))
	log.LogAttrs(WithRequestID(context.Background(), "r-x"), slog.LevelWarn, "append failed")
	lines := ring.Lines("r-x")
	if len(lines) != 1 {
		t.Fatalf("derived logger's line not retained in parent ring: %+v", ring.Lines(""))
	}
	if lines[0].Text != "append failed component=journal" {
		t.Errorf("line = %q", lines[0].Text)
	}
	if lines[0].Level != slog.LevelWarn {
		t.Errorf("level = %v", lines[0].Level)
	}
	if lines[0].Time.IsZero() || time.Since(lines[0].Time) > time.Minute {
		t.Errorf("implausible record time %v", lines[0].Time)
	}
}
