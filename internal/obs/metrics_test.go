package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func TestExpositionDeterministicAndParsable(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("t_requests_total", "requests by route and outcome", "route", "outcome")
	c.Inc("/run", "ok")
	c.Inc("/run", "ok")
	c.Inc("/compile", "error")
	g := r.NewGauge("t_queue_depth", "queued jobs")
	g.Set(3)
	g.Add(-1)
	h := r.NewHistogram("t_wait_seconds", "queue wait", []float64{0.01, 0.1, 1}, "route")
	h.Observe(0.005, "/run")
	h.Observe(0.05, "/run")
	h.Observe(50, "/run")

	var a, b bytes.Buffer
	if err := r.WritePrometheus(&a); err != nil {
		t.Fatal(err)
	}
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("two writes of the same registry differ:\n%s\n---\n%s", a.String(), b.String())
	}

	sc, err := ParsePrometheus(bytes.NewReader(a.Bytes()))
	if err != nil {
		t.Fatalf("own output does not re-parse: %v\n%s", err, a.String())
	}
	if v, err := sc.Value("t_requests_total", map[string]string{"route": "/run", "outcome": "ok"}); err != nil || v != 2 {
		t.Errorf("t_requests_total{/run,ok} = %v, %v; want 2", v, err)
	}
	if got := sc.Sum("t_requests_total", nil); got != 3 {
		t.Errorf("sum over t_requests_total = %v, want 3", got)
	}
	if v, err := sc.Value("t_queue_depth", nil); err != nil || v != 2 {
		t.Errorf("t_queue_depth = %v, %v; want 2", v, err)
	}
	if v, err := sc.Value("t_wait_seconds_count", map[string]string{"route": "/run"}); err != nil || v != 3 {
		t.Errorf("t_wait_seconds_count = %v, %v; want 3", v, err)
	}
	if v, err := sc.Value("t_wait_seconds_bucket", map[string]string{"route": "/run", "le": "0.1"}); err != nil || v != 2 {
		t.Errorf("le=0.1 bucket = %v, %v; want cumulative 2", v, err)
	}
	// Families appear in sorted order.
	idx := func(s string) int { return strings.Index(a.String(), "# TYPE "+s) }
	if !(idx("t_queue_depth") < idx("t_requests_total") && idx("t_requests_total") < idx("t_wait_seconds")) {
		t.Errorf("families not sorted:\n%s", a.String())
	}
}

func TestCounterConcurrencyLosesNothing(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("t_total", "concurrent increments")
	h := r.NewHistogram("t_obs_seconds", "concurrent observations", []float64{1, 2}, "k")
	const workers, per = 16, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				h.Observe(1.5, "x")
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Errorf("counter lost increments: %v of %v", got, workers*per)
	}
	if got := h.Count("x"); got != workers*per {
		t.Errorf("histogram lost observations: %v of %v", got, workers*per)
	}
}

func TestParserRejectsMalformedExposition(t *testing.T) {
	cases := map[string]string{
		"sample before TYPE":  "x_total 1\n",
		"garbage line":        "# TYPE x_total counter\nx_total one\n",
		"unknown type":        "# TYPE x summary\n",
		"negative counter":    "# TYPE x_total counter\nx_total -1\n",
		"unterminated labels": "# TYPE x_total counter\nx_total{a=\"b\" 1\n",
		"histogram no +Inf": "# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 1\nh_sum 0.5\nh_count 1\n",
		"histogram count mismatch": "# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 1\nh_sum 0.5\nh_count 2\n",
		"histogram non-cumulative": "# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 3\nh_bucket{le=\"2\"} 1\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n",
		"suffixed counter sample": "# TYPE x counter\nx_bucket{le=\"1\"} 1\n",
	}
	for name, text := range cases {
		if _, err := ParsePrometheus(strings.NewReader(text)); err == nil {
			t.Errorf("%s: parser accepted malformed exposition:\n%s", name, text)
		}
	}
}

func TestParserAcceptsEscapedLabels(t *testing.T) {
	text := "# TYPE x_total counter\n" +
		"x_total{msg=\"a \\\"quoted\\\" path\\\\name\\nnext\"} 4\n"
	sc, err := ParsePrometheus(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	want := "a \"quoted\" path\\name\nnext"
	if got := sc.Samples[0].Labels["msg"]; got != want {
		t.Errorf("unescaped label = %q, want %q", got, want)
	}
	// And the writer escapes the same way, round-tripping.
	r := NewRegistry()
	r.NewCounter("x_total", "t", "msg").Add(4, want)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	sc2, err := ParsePrometheus(&buf)
	if err != nil {
		t.Fatalf("round-trip parse: %v", err)
	}
	if got := sc2.Samples[0].Labels["msg"]; got != want {
		t.Errorf("round-tripped label = %q, want %q", got, want)
	}
}
