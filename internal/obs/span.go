package obs

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"
)

// Wall-time spans and trace stitching. The simulated machine already emits
// an exact virtual-time Chrome trace (internal/trace); the service records
// its own wall-clock spans for each request — queued, attempt 1..N, the
// terminal settle — and StitchChrome merges both into one Chrome trace file,
// linked by the request ID. The two timelines use different clock domains
// (wall microseconds vs. virtual cycles), so they render as separate process
// tracks: within each track every relative length is exact; across tracks
// the request ID in the span args is the join key.

// Span is one wall-time interval of a request's life inside the service.
type Span struct {
	Name  string // "queued", "attempt 1", "done", ...
	Cat   string // "service"
	Start time.Time
	End   time.Time
	Args  map[string]string `json:",omitempty"`
}

// SpanRecorder accumulates a request's wall-time spans. Safe for concurrent
// use; spans may be added out of order.
type SpanRecorder struct {
	mu    sync.Mutex
	t0    time.Time
	spans []Span
}

// NewSpanRecorder starts a recorder; t0 anchors the trace's microsecond zero.
func NewSpanRecorder() *SpanRecorder {
	return &SpanRecorder{t0: time.Now()}
}

// Add records one finished span.
func (r *SpanRecorder) Add(name, cat string, start, end time.Time, args map[string]string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.spans = append(r.spans, Span{Name: name, Cat: cat, Start: start, End: end, Args: args})
}

// Spans returns a copy of the recorded spans.
func (r *SpanRecorder) Spans() []Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Span(nil), r.spans...)
}

// Epoch returns the recorder's zero time.
func (r *SpanRecorder) Epoch() time.Time {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.t0
}

// servicePid groups the wall-time spans into their own Chrome "process",
// clear of the machine's processor (0...), node, and network (1<<20) tracks.
const servicePid = 1 << 21

// stitchEvent mirrors the Chrome trace-event JSON shape.
type stitchEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	Ts   int64             `json:"ts"`
	Dur  int64             `json:"dur,omitempty"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// stitchSummary is the machine-readable payload under the stitched file's
// top-level "pdobs" key (trace viewers ignore unknown keys).
type stitchSummary struct {
	RequestID     string
	WallSpans     int
	MachineEvents int
	// Note documents the two clock domains for human readers of the file.
	Note string
}

// StitchChrome builds one Chrome trace file from a request's wall-time
// service spans and (optionally) the machine's virtual-time Chrome trace
// bytes, both tagged with the request ID. Wall timestamps are microseconds
// relative to epoch; machine timestamps stay in virtual cycles on their own
// tracks. Returns a complete JSON document for chrome://tracing / Perfetto.
func StitchChrome(reqID string, epoch time.Time, spans []Span, machineChrome []byte) ([]byte, error) {
	events := make([]json.RawMessage, 0, len(spans)+2)
	add := func(ev stitchEvent) error {
		b, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		events = append(events, b)
		return nil
	}
	if err := add(stitchEvent{Name: "process_name", Ph: "M", Pid: servicePid,
		Args: map[string]string{"name": "service (wall time, µs)"}}); err != nil {
		return nil, err
	}
	if err := add(stitchEvent{Name: "thread_name", Ph: "M", Pid: servicePid, Tid: 0,
		Args: map[string]string{"name": "request " + reqID}}); err != nil {
		return nil, err
	}
	for _, sp := range spans {
		args := map[string]string{"request_id": reqID}
		for k, v := range sp.Args {
			args[k] = v
		}
		ev := stitchEvent{
			Name: sp.Name, Cat: sp.Cat, Ph: "X",
			Ts:  sp.Start.Sub(epoch).Microseconds(),
			Dur: sp.End.Sub(sp.Start).Microseconds(),
			Pid: servicePid, Tid: 0, Args: args,
		}
		if ev.Dur < 1 {
			ev.Dur = 1 // zero-width spans vanish in viewers
		}
		if err := add(ev); err != nil {
			return nil, err
		}
	}

	machineEvents := 0
	if len(machineChrome) > 0 {
		var mt struct {
			TraceEvents []json.RawMessage `json:"traceEvents"`
		}
		if err := json.Unmarshal(machineChrome, &mt); err != nil {
			return nil, fmt.Errorf("obs: machine trace does not parse: %w", err)
		}
		machineEvents = len(mt.TraceEvents)
		events = append(events, mt.TraceEvents...)
	}

	doc := struct {
		TraceEvents     []json.RawMessage `json:"traceEvents"`
		DisplayTimeUnit string            `json:"displayTimeUnit"`
		PDObs           stitchSummary     `json:"pdobs"`
	}{
		TraceEvents:     events,
		DisplayTimeUnit: "ns",
		PDObs: stitchSummary{
			RequestID: reqID, WallSpans: len(spans), MachineEvents: machineEvents,
			Note: "service track timestamps are wall microseconds since request ingress; machine tracks are virtual cycles — relative lengths are exact within each track, and the request_id args link them",
		},
	}
	return json.Marshal(doc)
}
