package lang

import "testing"

// FuzzParse asserts the front end never panics and that anything it accepts
// survives the format/re-parse round trip.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"const N = 128;",
		"dist D = cyclic_cols(NPROCS);",
		"proc f(a: matrix[4, 4] on D): matrix[4, 4] on D { return a; }",
		"proc f[D: dist](x: int on D) { call f[all](x); }",
		"proc main() { for i = 1 to 8 by 2 { A[i, j] = 1.5 * x mod 3; } }",
		"proc main() { if not (a < b and c == d) { return; } }",
		"-- comment only",
		"proc f() { let x = min(1, max(2, 3)); }",
		"proc f() { let x = --5; }",
		"proc ( } ] ;",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Parse(src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		once := Format(prog)
		prog2, err := Parse(once)
		if err != nil {
			t.Fatalf("accepted program failed to re-parse: %v\n%s", err, once)
		}
		if twice := Format(prog2); once != twice {
			t.Fatalf("format not a fixpoint:\n%s\nvs\n%s", once, twice)
		}
	})
}
