package lang

import (
	"fmt"
	"strings"
	"unicode"
)

// SyntaxError is a lexing or parsing failure with its source position.
type SyntaxError struct {
	Pos Pos
	Msg string
}

func (e *SyntaxError) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Lexer turns Idn source text into tokens. Comments run from "--" to the end
// of the line.
type Lexer struct {
	src  string
	off  int
	pos  Pos
	errs []*SyntaxError
}

// NewLexer creates a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, pos: Pos{Line: 1, Col: 1}}
}

func (l *Lexer) errorf(pos Pos, format string, args ...any) {
	l.errs = append(l.errs, &SyntaxError{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

func (l *Lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *Lexer) peek2() byte {
	if l.off+1 >= len(l.src) {
		return 0
	}
	return l.src[l.off+1]
}

func (l *Lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.pos.Line++
		l.pos.Col = 1
	} else {
		l.pos.Col++
	}
	return c
}

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentCont(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// Next returns the next token.
func (l *Lexer) Next() Token {
	for l.off < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '-' && l.peek2() == '-':
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		default:
			return l.lexToken()
		}
	}
	return Token{Kind: EOF, Pos: l.pos}
}

func (l *Lexer) lexToken() Token {
	start := l.pos
	c := l.peek()
	switch {
	case isIdentStart(c):
		var b strings.Builder
		for l.off < len(l.src) && isIdentCont(l.peek()) {
			b.WriteByte(l.advance())
		}
		text := b.String()
		if k, ok := keywords[text]; ok {
			return Token{Kind: k, Pos: start}
		}
		return Token{Kind: IDENT, Text: text, Pos: start}
	case isDigit(c):
		var b strings.Builder
		kind := INT
		for l.off < len(l.src) && isDigit(l.peek()) {
			b.WriteByte(l.advance())
		}
		if l.peek() == '.' && isDigit(l.peek2()) {
			kind = REAL
			b.WriteByte(l.advance())
			for l.off < len(l.src) && isDigit(l.peek()) {
				b.WriteByte(l.advance())
			}
		}
		return Token{Kind: kind, Text: b.String(), Pos: start}
	}

	l.advance()
	two := func(next byte, yes, no Kind) Token {
		if l.peek() == next {
			l.advance()
			return Token{Kind: yes, Pos: start}
		}
		return Token{Kind: no, Pos: start}
	}
	switch c {
	case '(':
		return Token{Kind: LParen, Pos: start}
	case ')':
		return Token{Kind: RParen, Pos: start}
	case '{':
		return Token{Kind: LBrace, Pos: start}
	case '}':
		return Token{Kind: RBrace, Pos: start}
	case '[':
		return Token{Kind: LBrack, Pos: start}
	case ']':
		return Token{Kind: RBrack, Pos: start}
	case ',':
		return Token{Kind: Comma, Pos: start}
	case ';':
		return Token{Kind: Semi, Pos: start}
	case ':':
		return Token{Kind: Colon, Pos: start}
	case '+':
		return Token{Kind: Plus, Pos: start}
	case '-':
		return Token{Kind: Minus, Pos: start}
	case '*':
		return Token{Kind: Star, Pos: start}
	case '/':
		return Token{Kind: Slash, Pos: start}
	case '=':
		return two('=', Eq, Assign)
	case '<':
		return two('=', Le, Lt)
	case '>':
		return two('=', Ge, Gt)
	case '!':
		if l.peek() == '=' {
			l.advance()
			return Token{Kind: Ne, Pos: start}
		}
	}
	l.errorf(start, "unexpected character %q", string(c))
	return l.Next()
}

// Tokenize lexes the whole input, returning tokens (ending with EOF) and any
// lexical errors.
func Tokenize(src string) ([]Token, []*SyntaxError) {
	l := NewLexer(src)
	var toks []Token
	for {
		t := l.Next()
		toks = append(toks, t)
		if t.Kind == EOF {
			return toks, l.errs
		}
	}
}
