package lang

import (
	"fmt"
	"strconv"
	"strings"
)

// Format pretty-prints a program as Idn source. The output re-parses to an
// equivalent tree (verified by the round-trip property test).
func Format(p *Program) string {
	var b strings.Builder
	for i, d := range p.Decls {
		if i > 0 {
			b.WriteString("\n")
		}
		formatDecl(&b, d)
	}
	return b.String()
}

func formatDecl(b *strings.Builder, d Decl) {
	switch d := d.(type) {
	case *ConstDecl:
		fmt.Fprintf(b, "const %s = %s;\n", d.Name, FormatExpr(d.Value))
	case *DistDecl:
		args := make([]string, len(d.Args))
		for i, a := range d.Args {
			args[i] = FormatExpr(a)
		}
		fmt.Fprintf(b, "dist %s = %s(%s);\n", d.Name, d.Builtin, strings.Join(args, ", "))
	case *ProcDecl:
		fmt.Fprintf(b, "proc %s", d.Name)
		if len(d.DistParams) > 0 {
			parts := make([]string, len(d.DistParams))
			for i, n := range d.DistParams {
				parts[i] = n + ": dist"
			}
			fmt.Fprintf(b, "[%s]", strings.Join(parts, ", "))
		}
		b.WriteString("(")
		for i, p := range d.Params {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(b, "%s: %s", p.Name, formatType(p.Type))
			if p.Map != nil {
				b.WriteString(" on " + formatMap(p.Map))
			}
		}
		b.WriteString(")")
		if d.RetType != nil {
			fmt.Fprintf(b, ": %s", formatType(*d.RetType))
			if d.RetMap != nil {
				b.WriteString(" on " + formatMap(d.RetMap))
			}
		}
		b.WriteString(" ")
		formatBlock(b, d.Body, 0)
		b.WriteString("\n")
	}
}

func formatType(t TypeExpr) string {
	switch t.Base {
	case TMatrix:
		return fmt.Sprintf("matrix[%s, %s]", FormatExpr(t.Dims[0]), FormatExpr(t.Dims[1]))
	case TVector:
		return fmt.Sprintf("vector[%s]", FormatExpr(t.Dims[0]))
	default:
		return t.Base.String()
	}
}

func formatMap(m *MapExpr) string {
	switch m.Kind {
	case MapAll:
		return "all"
	case MapProc:
		return fmt.Sprintf("proc(%s)", FormatExpr(m.Proc))
	default:
		return m.Name
	}
}

func formatBlock(b *strings.Builder, blk *Block, depth int) {
	b.WriteString("{\n")
	for _, s := range blk.Stmts {
		formatStmt(b, s, depth+1)
	}
	indent(b, depth)
	b.WriteString("}")
}

func indent(b *strings.Builder, depth int) {
	for i := 0; i < depth; i++ {
		b.WriteString("  ")
	}
}

func formatStmt(b *strings.Builder, s Stmt, depth int) {
	indent(b, depth)
	switch s := s.(type) {
	case *LetStmt:
		fmt.Fprintf(b, "let %s", s.Name)
		if s.Type != nil {
			fmt.Fprintf(b, ": %s", formatType(*s.Type))
		}
		fmt.Fprintf(b, " = %s", FormatExpr(s.Init))
		if s.Map != nil {
			b.WriteString(" on " + formatMap(s.Map))
		}
		b.WriteString(";\n")
	case *AssignStmt:
		fmt.Fprintf(b, "%s = %s;\n", s.Name, FormatExpr(s.Value))
	case *StoreStmt:
		fmt.Fprintf(b, "%s[%s] = %s;\n", s.Array, formatExprList(s.Indices), FormatExpr(s.Value))
	case *ForStmt:
		fmt.Fprintf(b, "for %s = %s to %s", s.Var, FormatExpr(s.Lo), FormatExpr(s.Hi))
		if s.Step != nil {
			fmt.Fprintf(b, " by %s", FormatExpr(s.Step))
		}
		b.WriteString(" ")
		formatBlock(b, s.Body, depth)
		b.WriteString("\n")
	case *IfStmt:
		fmt.Fprintf(b, "if %s ", FormatExpr(s.Cond))
		formatBlock(b, s.Then, depth)
		if s.Else != nil {
			b.WriteString(" else ")
			formatBlock(b, s.Else, depth)
		}
		b.WriteString("\n")
	case *CallStmt:
		fmt.Fprintf(b, "call %s%s(%s);\n", s.Name, formatDistArgs(s.DistArgs), formatExprList(s.Args))
	case *ReturnStmt:
		if s.Value != nil {
			fmt.Fprintf(b, "return %s;\n", FormatExpr(s.Value))
		} else {
			b.WriteString("return;\n")
		}
	}
}

func formatDistArgs(args []MapExpr) string {
	if len(args) == 0 {
		return ""
	}
	parts := make([]string, len(args))
	for i := range args {
		parts[i] = formatMap(&args[i])
	}
	return "[" + strings.Join(parts, ", ") + "]"
}

func formatExprList(es []Expr) string {
	parts := make([]string, len(es))
	for i, e := range es {
		parts[i] = FormatExpr(e)
	}
	return strings.Join(parts, ", ")
}

// precedence levels mirroring the parser, higher binds tighter.
func prec(op Op) int {
	switch op {
	case OpOr:
		return 1
	case OpAnd:
		return 2
	case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
		return 3
	case OpAdd, OpSub:
		return 4
	case OpMul, OpDivReal, OpDivInt, OpMod:
		return 5
	default:
		return 6
	}
}

// FormatExpr renders an expression with minimal parentheses.
func FormatExpr(e Expr) string { return formatExprPrec(e, 0) }

func formatExprPrec(e Expr, outer int) string {
	switch e := e.(type) {
	case *NumLit:
		if e.IsInt {
			return strconv.FormatInt(int64(e.Val), 10)
		}
		s := strconv.FormatFloat(e.Val, 'g', -1, 64)
		if !strings.ContainsAny(s, ".eE") {
			s += ".0"
		}
		return s
	case *BoolLit:
		if e.Val {
			return "true"
		}
		return "false"
	case *VarRef:
		return e.Name
	case *IndexExpr:
		return fmt.Sprintf("%s[%s]", e.Array, formatExprList(e.Indices))
	case *BinExpr:
		if e.Op == OpMin || e.Op == OpMax {
			return fmt.Sprintf("%s(%s, %s)", e.Op, FormatExpr(e.L), FormatExpr(e.R))
		}
		p := prec(e.Op)
		s := fmt.Sprintf("%s %s %s", formatExprPrec(e.L, p), e.Op, formatExprPrec(e.R, p+1))
		if p < outer {
			return "(" + s + ")"
		}
		return s
	case *UnExpr:
		x := formatExprPrec(e.X, 6)
		if e.Op == OpNot {
			return "not " + x
		}
		if strings.HasPrefix(x, "-") {
			// "--" would lex as a comment.
			return "-(" + x + ")"
		}
		return "-" + x
	case *CallExpr:
		return fmt.Sprintf("%s%s(%s)", e.Name, formatDistArgs(e.DistArgs), formatExprList(e.Args))
	case *AllocExpr:
		if e.Base == TMatrix {
			return fmt.Sprintf("matrix(%s, %s)", FormatExpr(e.Dims[0]), FormatExpr(e.Dims[1]))
		}
		return fmt.Sprintf("vector(%s)", FormatExpr(e.Dims[0]))
	default:
		return fmt.Sprintf("<?expr %T>", e)
	}
}
