package lang

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

// gsSource is the paper's Fig. 1 program written in Idn, including the
// italicized domain-decomposition code.
const gsSource = `
-- Gauss-Seidel relaxation in normal order (paper Fig. 1).
const N = 128;
const c = 0.25;

dist Column = cyclic_cols(NPROCS);

proc init_boundary(New: matrix[N, N] on Column) {
  for j = 1 to N {
    New[1, j] = 1.0;
    New[N, j] = 1.0;
  }
  for i = 2 to N - 1 {
    New[i, 1] = 1.0;
    New[i, N] = 1.0;
  }
}

proc gs_iteration(Old: matrix[N, N] on Column): matrix[N, N] on Column {
  let New = matrix(N, N) on Column;
  call init_boundary(New);
  for j = 2 to N - 1 {
    for i = 2 to N - 1 {
      New[i, j] = c * (New[i - 1, j] + New[i, j - 1] + Old[i + 1, j] + Old[i, j + 1]);
    }
  }
  return New;
}
`

func TestTokenizeBasics(t *testing.T) {
	toks, errs := Tokenize("for j = 2 to N-1 { A[i, j] = 3.5 mod x; } -- comment\n")
	if len(errs) > 0 {
		t.Fatalf("errors: %v", errs)
	}
	kinds := make([]Kind, len(toks))
	for i, tok := range toks {
		kinds[i] = tok.Kind
	}
	want := []Kind{KwFor, IDENT, Assign, INT, KwTo, IDENT, Minus, INT, LBrace,
		IDENT, LBrack, IDENT, Comma, IDENT, RBrack, Assign, REAL, KwMod, IDENT,
		Semi, RBrace, EOF}
	if !reflect.DeepEqual(kinds, want) {
		t.Errorf("kinds = %v\nwant %v", kinds, want)
	}
}

func TestTokenPositions(t *testing.T) {
	toks, _ := Tokenize("a\n  bb == c")
	if toks[0].Pos != (Pos{1, 1}) {
		t.Errorf("a at %v", toks[0].Pos)
	}
	if toks[1].Pos != (Pos{2, 3}) {
		t.Errorf("bb at %v", toks[1].Pos)
	}
	if toks[2].Kind != Eq || toks[2].Pos != (Pos{2, 6}) {
		t.Errorf("== at %v (%v)", toks[2].Pos, toks[2].Kind)
	}
}

func TestLexError(t *testing.T) {
	_, errs := Tokenize("a ? b")
	if len(errs) != 1 || !strings.Contains(errs[0].Error(), `"?"`) {
		t.Errorf("errs = %v", errs)
	}
}

func TestParseGaussSeidel(t *testing.T) {
	prog, err := Parse(gsSource)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Decls) != 5 {
		t.Fatalf("decls = %d, want 5", len(prog.Decls))
	}
	dd, ok := prog.Decls[2].(*DistDecl)
	if !ok || dd.Name != "Column" || dd.Builtin != "cyclic_cols" {
		t.Fatalf("dist decl wrong: %+v", prog.Decls[2])
	}
	gs, ok := prog.Decls[4].(*ProcDecl)
	if !ok || gs.Name != "gs_iteration" {
		t.Fatalf("proc decl wrong")
	}
	if gs.RetType == nil || gs.RetType.Base != TMatrix {
		t.Error("return type should be matrix")
	}
	if gs.RetMap == nil || gs.RetMap.Name != "Column" {
		t.Error("return mapping should be Column")
	}
	if len(gs.Body.Stmts) != 4 {
		t.Fatalf("gs body stmts = %d, want 4", len(gs.Body.Stmts))
	}
	let, ok := gs.Body.Stmts[0].(*LetStmt)
	if !ok || let.Map == nil || let.Map.Name != "Column" {
		t.Error("let New should carry the Column mapping")
	}
	if _, ok := let.Init.(*AllocExpr); !ok {
		t.Error("let New initializer should be an allocation")
	}
	outer, ok := gs.Body.Stmts[2].(*ForStmt)
	if !ok || outer.Var != "j" {
		t.Fatal("outer loop should iterate j")
	}
	inner, ok := outer.Body.Stmts[0].(*ForStmt)
	if !ok || inner.Var != "i" {
		t.Fatal("inner loop should iterate i")
	}
	store, ok := inner.Body.Stmts[0].(*StoreStmt)
	if !ok || store.Array != "New" || len(store.Indices) != 2 {
		t.Fatal("store statement wrong")
	}
}

func TestParseScalarExample(t *testing.T) {
	// The paper's Fig. 4a: a:P1, b:P2, c:P3.
	src := `
proc main() {
  let a: int on proc(0) = 5;
  let b: int on proc(1) = 7;
  let cc: int on proc(2) = a + b;
}
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	body := prog.Decls[0].(*ProcDecl).Body
	if len(body.Stmts) != 3 {
		t.Fatalf("stmts = %d", len(body.Stmts))
	}
	let := body.Stmts[0].(*LetStmt)
	if let.Map == nil || let.Map.Kind != MapProc {
		t.Error("mapping should be proc(0)")
	}
	if let.Type == nil || let.Type.Base != TInt {
		t.Error("type should be int")
	}
}

func TestParsePolymorphicProc(t *testing.T) {
	// §5.1: the polymorphic identity λP.λa:P.a and its instantiations.
	src := `
proc id[D: dist](a: int on D): int on D {
  return a;
}
proc main() {
  let b: int on proc(1) = 7;
  let x: int on proc(1) = id[proc(1)](b);
  call id[all](x);
}
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	id := prog.Decls[0].(*ProcDecl)
	if len(id.DistParams) != 1 || id.DistParams[0] != "D" {
		t.Fatalf("dist params = %v", id.DistParams)
	}
	if id.Params[0].Map == nil || id.Params[0].Map.Name != "D" {
		t.Error("param should be mapped on D")
	}
	main := prog.Decls[1].(*ProcDecl)
	let := main.Body.Stmts[1].(*LetStmt)
	call, ok := let.Init.(*CallExpr)
	if !ok || len(call.DistArgs) != 1 || call.DistArgs[0].Kind != MapProc {
		t.Fatalf("instantiated call wrong: %+v", let.Init)
	}
	cs := main.Body.Stmts[2].(*CallStmt)
	if len(cs.DistArgs) != 1 || cs.DistArgs[0].Kind != MapAll {
		t.Fatalf("call stmt dist args wrong: %+v", cs)
	}
}

func TestIndexVsInstantiationAmbiguity(t *testing.T) {
	src := `
proc main(A: matrix[4, 4] on all) {
  let x = A[i, j];
  let y = A[i + 1, j];
  let z = f[proc(2)](y);
}
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	body := prog.Decls[0].(*ProcDecl).Body
	if _, ok := body.Stmts[0].(*LetStmt).Init.(*IndexExpr); !ok {
		t.Error("A[i, j] should parse as an index expression")
	}
	if _, ok := body.Stmts[1].(*LetStmt).Init.(*IndexExpr); !ok {
		t.Error("A[i+1, j] should parse as an index expression")
	}
	if _, ok := body.Stmts[2].(*LetStmt).Init.(*CallExpr); !ok {
		t.Error("f[proc(2)](y) should parse as an instantiated call")
	}
}

func TestPrecedence(t *testing.T) {
	src := `proc main() { let x = 1 + 2 * 3 - 4 div 2 mod 3; let y = not (a < b and c == d); }`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	got := FormatExpr(prog.Decls[0].(*ProcDecl).Body.Stmts[0].(*LetStmt).Init)
	if got != "1 + 2 * 3 - 4 div 2 mod 3" {
		t.Errorf("formatted = %q", got)
	}
	// Structural check: (1 + (2*3)) - ((4 div 2) mod 3)
	e := prog.Decls[0].(*ProcDecl).Body.Stmts[0].(*LetStmt).Init.(*BinExpr)
	if e.Op != OpSub {
		t.Fatalf("top op = %v", e.Op)
	}
	if l := e.L.(*BinExpr); l.Op != OpAdd || l.R.(*BinExpr).Op != OpMul {
		t.Error("left subtree wrong")
	}
	if r := e.R.(*BinExpr); r.Op != OpMod || r.L.(*BinExpr).Op != OpDivInt {
		t.Error("right subtree wrong")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"const = 5;",
		"proc f( {}",
		"proc f() { let x = ; }",
		"proc f() { for i = 1 { } }",
		"proc f() { x[1 = 2; }",
		"dist D = cyclic_cols(4)", // missing semicolon
		"proc f() { return 1 }",   // missing semicolon
		"proc f(x: on all) {}",    // missing type
		"proc f() { if { } }",     // missing condition
		"junk",
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		} else if _, ok := err.(*SyntaxError); !ok {
			t.Errorf("Parse(%q) returned %T, want *SyntaxError", src, err)
		}
	}
}

// Round-trip property: Format(Parse(Format(p))) == Format(p).
func TestFormatRoundTrip(t *testing.T) {
	prog, err := Parse(gsSource)
	if err != nil {
		t.Fatal(err)
	}
	once := Format(prog)
	prog2, err := Parse(once)
	if err != nil {
		t.Fatalf("re-parse failed: %v\nsource:\n%s", err, once)
	}
	twice := Format(prog2)
	if once != twice {
		t.Errorf("format not a fixpoint:\n--- once ---\n%s\n--- twice ---\n%s", once, twice)
	}
}

// Property: randomly generated programs survive the format/parse round trip.
func TestFormatRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for iter := 0; iter < 60; iter++ {
		prog := randomProgram(rng)
		once := Format(prog)
		prog2, err := Parse(once)
		if err != nil {
			t.Fatalf("iteration %d: re-parse failed: %v\n%s", iter, err, once)
		}
		twice := Format(prog2)
		if once != twice {
			t.Fatalf("iteration %d: not a fixpoint:\n%s\nvs\n%s", iter, once, twice)
		}
	}
}

func randomProgram(rng *rand.Rand) *Program {
	p := &Program{}
	p.Decls = append(p.Decls, &ConstDecl{Name: "N", Value: &NumLit{Val: 16, IsInt: true}})
	p.Decls = append(p.Decls, &DistDecl{Name: "D", Builtin: "cyclic_cols", Args: []Expr{&VarRef{Name: "NPROCS"}}})
	body := &Block{}
	for i := 0; i < 4; i++ {
		body.Stmts = append(body.Stmts, randomStmt(rng, 2))
	}
	p.Decls = append(p.Decls, &ProcDecl{
		Name:   "main",
		Params: []Param{{Name: "A", Type: TypeExpr{Base: TMatrix, Dims: []Expr{&VarRef{Name: "N"}, &VarRef{Name: "N"}}}, Map: &MapExpr{Kind: MapNamed, Name: "D"}}},
		Body:   body,
	})
	return p
}

func randomStmt(rng *rand.Rand, depth int) Stmt {
	if depth == 0 {
		return &StoreStmt{Array: "A", Indices: []Expr{randomExpr(rng, 1), randomExpr(rng, 1)}, Value: randomExpr(rng, 2)}
	}
	switch rng.Intn(4) {
	case 0:
		b := &Block{}
		for i := 0; i < 1+rng.Intn(2); i++ {
			b.Stmts = append(b.Stmts, randomStmt(rng, depth-1))
		}
		f := &ForStmt{Var: "i", Lo: randomExpr(rng, 1), Hi: randomExpr(rng, 1), Body: b}
		if rng.Intn(2) == 0 {
			f.Step = &NumLit{Val: 2, IsInt: true}
		}
		return f
	case 1:
		s := &IfStmt{Cond: &BinExpr{Op: OpLt, L: randomExpr(rng, 1), R: randomExpr(rng, 1)},
			Then: &Block{Stmts: []Stmt{randomStmt(rng, depth-1)}}}
		if rng.Intn(2) == 0 {
			s.Else = &Block{Stmts: []Stmt{randomStmt(rng, depth-1)}}
		}
		return s
	case 2:
		return &AssignStmt{Name: "x", Value: randomExpr(rng, 2)}
	default:
		return &StoreStmt{Array: "A", Indices: []Expr{randomExpr(rng, 1), randomExpr(rng, 1)}, Value: randomExpr(rng, 2)}
	}
}

func randomExpr(rng *rand.Rand, depth int) Expr {
	if depth == 0 {
		switch rng.Intn(3) {
		case 0:
			return &NumLit{Val: float64(rng.Intn(20)), IsInt: true}
		case 1:
			return &NumLit{Val: float64(rng.Intn(10)) + 0.5}
		default:
			return &VarRef{Name: []string{"i", "j", "x", "N"}[rng.Intn(4)]}
		}
	}
	switch rng.Intn(6) {
	case 0:
		return &BinExpr{Op: []Op{OpAdd, OpSub, OpMul, OpDivInt, OpMod}[rng.Intn(5)],
			L: randomExpr(rng, depth-1), R: randomExpr(rng, depth-1)}
	case 1:
		return &UnExpr{Op: OpNeg, X: randomExpr(rng, depth-1)}
	case 2:
		return &IndexExpr{Array: "A", Indices: []Expr{randomExpr(rng, depth-1), randomExpr(rng, depth-1)}}
	case 3:
		return &BinExpr{Op: OpMin, L: randomExpr(rng, depth-1), R: randomExpr(rng, depth-1)}
	default:
		return randomExpr(rng, depth-1)
	}
}

func TestFormatRoundTripAllDecls(t *testing.T) {
	src := `
const N = 8;
dist G = block2d(2, 2);
dist V = cyclic(NPROCS);
dist B = block(NPROCS);

proc f(A: matrix[N, N] on G, v: vector[N] on V, w: vector[N] on B): vector[N] on V {
  for i = 1 to N {
    v[i] = A[i, 1] + w[i];
  }
  return v;
}
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	once := Format(prog)
	prog2, err := Parse(once)
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, once)
	}
	if twice := Format(prog2); once != twice {
		t.Errorf("not a fixpoint:\n%s\nvs\n%s", once, twice)
	}
	dd := prog.Decls[1].(*DistDecl)
	if dd.Builtin != "block2d" || len(dd.Args) != 2 {
		t.Errorf("block2d decl wrong: %+v", dd)
	}
}
