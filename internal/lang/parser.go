package lang

import (
	"fmt"
	"strconv"
)

// Parser is a recursive-descent parser for Idn with one-token lookahead and
// cheap backtracking (used only to disambiguate "f[proc(2)](x)" calls from
// "A[i,j]" index expressions).
type Parser struct {
	toks []Token
	i    int
}

// Parse parses a complete program, reporting the first syntax error.
func Parse(src string) (*Program, error) {
	toks, errs := Tokenize(src)
	if len(errs) > 0 {
		return nil, errs[0]
	}
	p := &Parser{toks: toks}
	prog := &Program{}
	defer func() {}()
	var perr error
	func() {
		defer func() {
			if r := recover(); r != nil {
				if se, ok := r.(*SyntaxError); ok {
					perr = se
					return
				}
				panic(r)
			}
		}()
		for p.peek().Kind != EOF {
			prog.Decls = append(prog.Decls, p.parseDecl())
		}
	}()
	if perr != nil {
		return nil, perr
	}
	return prog, nil
}

func (p *Parser) peek() Token    { return p.toks[p.i] }
func (p *Parser) next() Token    { t := p.toks[p.i]; p.i++; return t }
func (p *Parser) at(k Kind) bool { return p.peek().Kind == k }

func (p *Parser) accept(k Kind) (Token, bool) {
	if p.at(k) {
		return p.next(), true
	}
	return Token{}, false
}

func (p *Parser) expect(k Kind) Token {
	if !p.at(k) {
		p.fail("expected %s, found %s", k, p.peek())
	}
	return p.next()
}

func (p *Parser) fail(format string, args ...any) {
	panic(&SyntaxError{Pos: p.peek().Pos, Msg: fmt.Sprintf(format, args...)})
}

// --- declarations ---

func (p *Parser) parseDecl() Decl {
	switch p.peek().Kind {
	case KwConst:
		t := p.next()
		name := p.expect(IDENT).Text
		p.expect(Assign)
		v := p.parseExpr()
		p.expect(Semi)
		return &ConstDecl{Pos: t.Pos, Name: name, Value: v}
	case KwDist:
		t := p.next()
		name := p.expect(IDENT).Text
		p.expect(Assign)
		builtin := p.expect(IDENT).Text
		p.expect(LParen)
		var args []Expr
		if !p.at(RParen) {
			args = append(args, p.parseExpr())
			for {
				if _, ok := p.accept(Comma); !ok {
					break
				}
				args = append(args, p.parseExpr())
			}
		}
		p.expect(RParen)
		p.expect(Semi)
		return &DistDecl{Pos: t.Pos, Name: name, Builtin: builtin, Args: args}
	case KwProc:
		return p.parseProc()
	default:
		p.fail("expected declaration, found %s", p.peek())
		return nil
	}
}

func (p *Parser) parseProc() *ProcDecl {
	t := p.expect(KwProc)
	d := &ProcDecl{Pos: t.Pos, Name: p.expect(IDENT).Text}
	if _, ok := p.accept(LBrack); ok {
		for {
			name := p.expect(IDENT).Text
			p.expect(Colon)
			p.expect(KwDist)
			d.DistParams = append(d.DistParams, name)
			if _, ok := p.accept(Comma); !ok {
				break
			}
		}
		p.expect(RBrack)
	}
	p.expect(LParen)
	if !p.at(RParen) {
		for {
			d.Params = append(d.Params, p.parseParam())
			if _, ok := p.accept(Comma); !ok {
				break
			}
		}
	}
	p.expect(RParen)
	if _, ok := p.accept(Colon); ok {
		ty := p.parseType()
		d.RetType = &ty
		if p.at(KwOn) {
			d.RetMap = p.parseMap()
		}
	}
	d.Body = p.parseBlock()
	return d
}

func (p *Parser) parseParam() Param {
	t := p.expect(IDENT)
	p.expect(Colon)
	param := Param{Pos: t.Pos, Name: t.Text, Type: p.parseType()}
	if p.at(KwOn) {
		param.Map = p.parseMap()
	}
	return param
}

func (p *Parser) parseType() TypeExpr {
	t := p.peek()
	switch t.Kind {
	case KwInt:
		p.next()
		return TypeExpr{Pos: t.Pos, Base: TInt}
	case KwReal:
		p.next()
		return TypeExpr{Pos: t.Pos, Base: TReal}
	case KwBool:
		p.next()
		return TypeExpr{Pos: t.Pos, Base: TBool}
	case KwMatrix:
		p.next()
		p.expect(LBrack)
		r := p.parseExpr()
		p.expect(Comma)
		c := p.parseExpr()
		p.expect(RBrack)
		return TypeExpr{Pos: t.Pos, Base: TMatrix, Dims: []Expr{r, c}}
	case KwVector:
		p.next()
		p.expect(LBrack)
		n := p.parseExpr()
		p.expect(RBrack)
		return TypeExpr{Pos: t.Pos, Base: TVector, Dims: []Expr{n}}
	default:
		p.fail("expected type, found %s", t)
		return TypeExpr{}
	}
}

// parseMap parses "on <mapping>".
func (p *Parser) parseMap() *MapExpr {
	p.expect(KwOn)
	return p.parseMapBody()
}

func (p *Parser) parseMapBody() *MapExpr {
	t := p.peek()
	switch t.Kind {
	case KwAll:
		p.next()
		return &MapExpr{Pos: t.Pos, Kind: MapAll}
	case KwProc:
		p.next()
		p.expect(LParen)
		e := p.parseExpr()
		p.expect(RParen)
		return &MapExpr{Pos: t.Pos, Kind: MapProc, Proc: e}
	case IDENT:
		p.next()
		return &MapExpr{Pos: t.Pos, Kind: MapNamed, Name: t.Text}
	default:
		p.fail("expected mapping (a dist name, proc(e), or all), found %s", t)
		return nil
	}
}

// --- statements ---

func (p *Parser) parseBlock() *Block {
	t := p.expect(LBrace)
	b := &Block{Pos: t.Pos}
	for !p.at(RBrace) {
		b.Stmts = append(b.Stmts, p.parseStmt())
	}
	p.expect(RBrace)
	return b
}

func (p *Parser) parseStmt() Stmt {
	t := p.peek()
	switch t.Kind {
	case KwLet:
		p.next()
		name := p.expect(IDENT).Text
		s := &LetStmt{Pos: t.Pos, Name: name}
		if _, ok := p.accept(Colon); ok {
			ty := p.parseType()
			s.Type = &ty
		}
		if p.at(KwOn) {
			s.Map = p.parseMap()
		}
		p.expect(Assign)
		s.Init = p.parseExpr()
		// "let A = matrix(N,N) on Column": mapping may follow the allocator.
		if p.at(KwOn) {
			if s.Map != nil {
				p.fail("duplicate mapping on let")
			}
			s.Map = p.parseMap()
		}
		p.expect(Semi)
		return s
	case KwFor:
		p.next()
		v := p.expect(IDENT).Text
		p.expect(Assign)
		lo := p.parseExpr()
		p.expect(KwTo)
		hi := p.parseExpr()
		s := &ForStmt{Pos: t.Pos, Var: v, Lo: lo, Hi: hi}
		if _, ok := p.accept(KwBy); ok {
			s.Step = p.parseExpr()
		}
		s.Body = p.parseBlock()
		return s
	case KwIf:
		p.next()
		cond := p.parseExpr()
		s := &IfStmt{Pos: t.Pos, Cond: cond, Then: p.parseBlock()}
		if _, ok := p.accept(KwElse); ok {
			s.Else = p.parseBlock()
		}
		return s
	case KwReturn:
		p.next()
		s := &ReturnStmt{Pos: t.Pos}
		if !p.at(Semi) {
			s.Value = p.parseExpr()
		}
		p.expect(Semi)
		return s
	case KwCall:
		p.next()
		name := p.expect(IDENT).Text
		distArgs := p.parseOptDistArgs()
		p.expect(LParen)
		var args []Expr
		if !p.at(RParen) {
			args = append(args, p.parseExpr())
			for {
				if _, ok := p.accept(Comma); !ok {
					break
				}
				args = append(args, p.parseExpr())
			}
		}
		p.expect(RParen)
		p.expect(Semi)
		return &CallStmt{Pos: t.Pos, Name: name, DistArgs: distArgs, Args: args}
	case IDENT:
		p.next()
		if p.at(LBrack) {
			p.next()
			var idx []Expr
			idx = append(idx, p.parseExpr())
			for {
				if _, ok := p.accept(Comma); !ok {
					break
				}
				idx = append(idx, p.parseExpr())
			}
			p.expect(RBrack)
			p.expect(Assign)
			v := p.parseExpr()
			p.expect(Semi)
			return &StoreStmt{Pos: t.Pos, Array: t.Text, Indices: idx, Value: v}
		}
		p.expect(Assign)
		v := p.parseExpr()
		p.expect(Semi)
		return &AssignStmt{Pos: t.Pos, Name: t.Text, Value: v}
	default:
		p.fail("expected statement, found %s", t)
		return nil
	}
}

// parseOptDistArgs parses an optional "[proc(2), Column]" mapping
// instantiation list after a procedure name in call position.
func (p *Parser) parseOptDistArgs() []MapExpr {
	if !p.at(LBrack) {
		return nil
	}
	p.next()
	var out []MapExpr
	for {
		out = append(out, *p.parseMapBody())
		if _, ok := p.accept(Comma); !ok {
			break
		}
	}
	p.expect(RBrack)
	return out
}

// --- expressions (precedence climbing) ---

func (p *Parser) parseExpr() Expr { return p.parseOr() }

func (p *Parser) parseOr() Expr {
	e := p.parseAnd()
	for p.at(KwOr) {
		t := p.next()
		e = &BinExpr{Pos: t.Pos, Op: OpOr, L: e, R: p.parseAnd()}
	}
	return e
}

func (p *Parser) parseAnd() Expr {
	e := p.parseCmp()
	for p.at(KwAnd) {
		t := p.next()
		e = &BinExpr{Pos: t.Pos, Op: OpAnd, L: e, R: p.parseCmp()}
	}
	return e
}

var cmpOps = map[Kind]Op{Eq: OpEq, Ne: OpNe, Lt: OpLt, Le: OpLe, Gt: OpGt, Ge: OpGe}

func (p *Parser) parseCmp() Expr {
	e := p.parseAdd()
	if op, ok := cmpOps[p.peek().Kind]; ok {
		t := p.next()
		e = &BinExpr{Pos: t.Pos, Op: op, L: e, R: p.parseAdd()}
	}
	return e
}

func (p *Parser) parseAdd() Expr {
	e := p.parseMul()
	for p.at(Plus) || p.at(Minus) {
		t := p.next()
		op := OpAdd
		if t.Kind == Minus {
			op = OpSub
		}
		e = &BinExpr{Pos: t.Pos, Op: op, L: e, R: p.parseMul()}
	}
	return e
}

func (p *Parser) parseMul() Expr {
	e := p.parseUnary()
	for {
		var op Op
		switch p.peek().Kind {
		case Star:
			op = OpMul
		case Slash:
			op = OpDivReal
		case KwDiv:
			op = OpDivInt
		case KwMod:
			op = OpMod
		default:
			return e
		}
		t := p.next()
		e = &BinExpr{Pos: t.Pos, Op: op, L: e, R: p.parseUnary()}
	}
}

func (p *Parser) parseUnary() Expr {
	switch p.peek().Kind {
	case Minus:
		t := p.next()
		return &UnExpr{Pos: t.Pos, Op: OpNeg, X: p.parseUnary()}
	case KwNot:
		t := p.next()
		return &UnExpr{Pos: t.Pos, Op: OpNot, X: p.parseUnary()}
	}
	return p.parsePrimary()
}

func (p *Parser) parsePrimary() Expr {
	t := p.peek()
	switch t.Kind {
	case INT:
		p.next()
		v, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			p.fail("bad integer literal %q", t.Text)
		}
		return &NumLit{Pos: t.Pos, Val: float64(v), IsInt: true}
	case REAL:
		p.next()
		v, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			p.fail("bad real literal %q", t.Text)
		}
		return &NumLit{Pos: t.Pos, Val: v}
	case KwTrue:
		p.next()
		return &BoolLit{Pos: t.Pos, Val: true}
	case KwFalse:
		p.next()
		return &BoolLit{Pos: t.Pos, Val: false}
	case LParen:
		p.next()
		e := p.parseExpr()
		p.expect(RParen)
		return e
	case KwMatrix, KwVector:
		p.next()
		base := TMatrix
		if t.Kind == KwVector {
			base = TVector
		}
		p.expect(LParen)
		dims := []Expr{p.parseExpr()}
		if base == TMatrix {
			p.expect(Comma)
			dims = append(dims, p.parseExpr())
		}
		p.expect(RParen)
		return &AllocExpr{Pos: t.Pos, Base: base, Dims: dims}
	case KwMin, KwMax:
		p.next()
		op := OpMin
		if t.Kind == KwMax {
			op = OpMax
		}
		p.expect(LParen)
		a := p.parseExpr()
		p.expect(Comma)
		b := p.parseExpr()
		p.expect(RParen)
		return &BinExpr{Pos: t.Pos, Op: op, L: a, R: b}
	case IDENT:
		p.next()
		switch p.peek().Kind {
		case LParen:
			p.next()
			var args []Expr
			if !p.at(RParen) {
				args = append(args, p.parseExpr())
				for {
					if _, ok := p.accept(Comma); !ok {
						break
					}
					args = append(args, p.parseExpr())
				}
			}
			p.expect(RParen)
			return &CallExpr{Pos: t.Pos, Name: t.Text, Args: args}
		case LBrack:
			// Either an index expression A[i,j] or an instantiated call
			// f[proc(2)](x). Try the call form first with backtracking.
			save := p.i
			if call := p.tryInstantiatedCall(t); call != nil {
				return call
			}
			p.i = save
			p.next() // consume '['
			var idx []Expr
			idx = append(idx, p.parseExpr())
			for {
				if _, ok := p.accept(Comma); !ok {
					break
				}
				idx = append(idx, p.parseExpr())
			}
			p.expect(RBrack)
			return &IndexExpr{Pos: t.Pos, Array: t.Text, Indices: idx}
		default:
			return &VarRef{Pos: t.Pos, Name: t.Text}
		}
	default:
		p.fail("expected expression, found %s", t)
		return nil
	}
}

// tryInstantiatedCall attempts to parse "[mapping, ...] ( args )" after an
// identifier; it returns nil (without reporting errors) when the input is not
// of that form, letting the caller re-parse as an index expression.
func (p *Parser) tryInstantiatedCall(name Token) (result Expr) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(*SyntaxError); ok {
				result = nil
				return
			}
			panic(r)
		}
	}()
	p.expect(LBrack)
	var distArgs []MapExpr
	for {
		distArgs = append(distArgs, *p.parseMapBody())
		if _, ok := p.accept(Comma); !ok {
			break
		}
	}
	p.expect(RBrack)
	if !p.at(LParen) {
		return nil
	}
	p.next()
	var args []Expr
	if !p.at(RParen) {
		args = append(args, p.parseExpr())
		for {
			if _, ok := p.accept(Comma); !ok {
				break
			}
			args = append(args, p.parseExpr())
		}
	}
	p.expect(RParen)
	return &CallExpr{Pos: name.Pos, Name: name.Text, DistArgs: distArgs, Args: args}
}
