package lang

// Deep-copy and substitution utilities over the AST. The semantic analyzer
// uses them to monomorphize mapping-polymorphic procedures (§5.1), and the
// compile-time resolution inliner uses them to apply a participants function
// symbolically to the actual parameters of a call (§3.2).

// Subst rewrites identifiers and mapping annotations during cloning.
type Subst struct {
	// Vars maps identifier names to replacement expressions (for inlining
	// actual parameters and renaming locals).
	Vars map[string]Expr
	// Arrays renames array identifiers (array actuals must be names).
	Arrays map[string]string
	// Maps replaces named mapping annotations (for dist-parameter
	// instantiation).
	Maps map[string]*MapExpr
	// Procs renames procedure call targets.
	Procs map[string]string
}

func (s *Subst) varRepl(name string) (Expr, bool) {
	if s == nil || s.Vars == nil {
		return nil, false
	}
	e, ok := s.Vars[name]
	return e, ok
}

func (s *Subst) arrayRepl(name string) string {
	if s == nil || s.Arrays == nil {
		return name
	}
	if r, ok := s.Arrays[name]; ok {
		return r
	}
	return name
}

func (s *Subst) procRepl(name string) string {
	if s == nil || s.Procs == nil {
		return name
	}
	if r, ok := s.Procs[name]; ok {
		return r
	}
	return name
}

func (s *Subst) mapRepl(m *MapExpr) (*MapExpr, bool) {
	if s == nil || s.Maps == nil || m == nil || m.Kind != MapNamed {
		return nil, false
	}
	r, ok := s.Maps[m.Name]
	return r, ok
}

// CloneExpr deep-copies e, applying the substitution.
func CloneExpr(e Expr, s *Subst) Expr {
	switch e := e.(type) {
	case *NumLit:
		c := *e
		return &c
	case *BoolLit:
		c := *e
		return &c
	case *VarRef:
		if r, ok := s.varRepl(e.Name); ok {
			return CloneExpr(r, nil) // fresh copy of the replacement
		}
		c := *e
		return &c
	case *IndexExpr:
		c := &IndexExpr{Pos: e.Pos, Array: s.arrayRepl(e.Array)}
		for _, ix := range e.Indices {
			c.Indices = append(c.Indices, CloneExpr(ix, s))
		}
		return c
	case *BinExpr:
		return &BinExpr{Pos: e.Pos, Op: e.Op, L: CloneExpr(e.L, s), R: CloneExpr(e.R, s)}
	case *UnExpr:
		return &UnExpr{Pos: e.Pos, Op: e.Op, X: CloneExpr(e.X, s)}
	case *CallExpr:
		c := &CallExpr{Pos: e.Pos, Name: s.procRepl(e.Name)}
		for i := range e.DistArgs {
			c.DistArgs = append(c.DistArgs, *CloneMap(&e.DistArgs[i], s))
		}
		for _, a := range e.Args {
			c.Args = append(c.Args, CloneExpr(a, s))
		}
		return c
	case *AllocExpr:
		c := &AllocExpr{Pos: e.Pos, Base: e.Base}
		for _, d := range e.Dims {
			c.Dims = append(c.Dims, CloneExpr(d, s))
		}
		return c
	default:
		panic("lang: CloneExpr: unknown expression type")
	}
}

// CloneMap deep-copies a mapping annotation, applying the substitution.
// Returns nil for nil input.
func CloneMap(m *MapExpr, s *Subst) *MapExpr {
	if m == nil {
		return nil
	}
	if r, ok := s.mapRepl(m); ok {
		return CloneMap(r, nil)
	}
	c := &MapExpr{Pos: m.Pos, Kind: m.Kind, Name: m.Name}
	if m.Proc != nil {
		c.Proc = CloneExpr(m.Proc, s)
	}
	return c
}

// CloneType deep-copies a type expression, applying the substitution to its
// dimension expressions.
func CloneType(t *TypeExpr, s *Subst) *TypeExpr {
	if t == nil {
		return nil
	}
	c := &TypeExpr{Pos: t.Pos, Base: t.Base}
	for _, d := range t.Dims {
		c.Dims = append(c.Dims, CloneExpr(d, s))
	}
	return c
}

// CloneBlock deep-copies a block, applying the substitution.
func CloneBlock(b *Block, s *Subst) *Block {
	if b == nil {
		return nil
	}
	c := &Block{Pos: b.Pos}
	for _, st := range b.Stmts {
		c.Stmts = append(c.Stmts, CloneStmt(st, s))
	}
	return c
}

// CloneStmt deep-copies a statement, applying the substitution. Binding
// occurrences (let names, loop variables, assignment targets) are renamed
// when the substitution maps them to a VarRef; mapping them to any other
// expression is a misuse and panics.
func CloneStmt(st Stmt, s *Subst) Stmt {
	bindName := func(name string) string {
		if r, ok := s.varRepl(name); ok {
			if v, isVar := r.(*VarRef); isVar {
				return v.Name
			}
			panic("lang: CloneStmt: binding occurrence substituted by non-variable")
		}
		return name
	}
	switch st := st.(type) {
	case *LetStmt:
		return &LetStmt{Pos: st.Pos, Name: bindName(st.Name),
			Type: CloneType(st.Type, s), Map: CloneMap(st.Map, s), Init: CloneExpr(st.Init, s)}
	case *AssignStmt:
		return &AssignStmt{Pos: st.Pos, Name: bindName(st.Name), Value: CloneExpr(st.Value, s)}
	case *StoreStmt:
		c := &StoreStmt{Pos: st.Pos, Array: s.arrayRepl(st.Array), Value: CloneExpr(st.Value, s)}
		for _, ix := range st.Indices {
			c.Indices = append(c.Indices, CloneExpr(ix, s))
		}
		return c
	case *ForStmt:
		c := &ForStmt{Pos: st.Pos, Var: bindName(st.Var),
			Lo: CloneExpr(st.Lo, s), Hi: CloneExpr(st.Hi, s)}
		if st.Step != nil {
			c.Step = CloneExpr(st.Step, s)
		}
		c.Body = CloneBlock(st.Body, s)
		return c
	case *IfStmt:
		return &IfStmt{Pos: st.Pos, Cond: CloneExpr(st.Cond, s),
			Then: CloneBlock(st.Then, s), Else: CloneBlock(st.Else, s)}
	case *CallStmt:
		c := &CallStmt{Pos: st.Pos, Name: s.procRepl(st.Name)}
		for i := range st.DistArgs {
			c.DistArgs = append(c.DistArgs, *CloneMap(&st.DistArgs[i], s))
		}
		for _, a := range st.Args {
			c.Args = append(c.Args, CloneExpr(a, s))
		}
		return c
	case *ReturnStmt:
		c := &ReturnStmt{Pos: st.Pos}
		if st.Value != nil {
			c.Value = CloneExpr(st.Value, s)
		}
		return c
	default:
		panic("lang: CloneStmt: unknown statement type")
	}
}

// CloneProc deep-copies a procedure declaration under the substitution,
// giving the copy a new name and dropping any dist parameters that the
// substitution instantiates.
func CloneProc(p *ProcDecl, newName string, s *Subst) *ProcDecl {
	c := &ProcDecl{Pos: p.Pos, Name: newName}
	for _, dp := range p.DistParams {
		if _, ok := s.mapRepl(&MapExpr{Kind: MapNamed, Name: dp}); !ok {
			c.DistParams = append(c.DistParams, dp)
		}
	}
	for _, prm := range p.Params {
		c.Params = append(c.Params, Param{
			Pos: prm.Pos, Name: prm.Name,
			Type: *CloneType(&prm.Type, s), Map: CloneMap(prm.Map, s),
		})
	}
	c.RetType = CloneType(p.RetType, s)
	c.RetMap = CloneMap(p.RetMap, s)
	c.Body = CloneBlock(p.Body, s)
	return c
}
