package lang

// Abstract syntax tree for Idn. Compile-time resolution annotates these
// nodes with evaluators/participants information (paper §3.2: "The compiler
// uses conventional abstract syntax trees as the internal representation of
// programs"); the annotations live in internal/core to keep the front end
// independent of the analysis.

// Program is a parsed compilation unit.
type Program struct {
	Decls []Decl
}

// Decl is a top-level declaration.
type Decl interface {
	decl()
	Position() Pos
}

// ConstDecl is "const N = 128;". The initializer must be a compile-time
// constant expression (it may reference earlier constants and the built-in
// NPROCS).
type ConstDecl struct {
	Pos   Pos
	Name  string
	Value Expr
}

// DistDecl is "dist Column = cyclic_cols(NPROCS);", naming a decomposition
// family. Recognized builtins: cyclic_cols, cyclic_rows, block_cols,
// block_rows, block2d (matrices); cyclic, block (vectors).
type DistDecl struct {
	Pos     Pos
	Name    string
	Builtin string
	Args    []Expr
}

// ProcDecl is a procedure. DistParams are the mapping-polymorphism
// parameters of §5.1 ("proc f[D: dist](a: int on D): int on D").
type ProcDecl struct {
	Pos        Pos
	Name       string
	DistParams []string
	Params     []Param
	RetType    *TypeExpr // nil for no return value
	RetMap     *MapExpr  // nil when RetType is nil or mapping defaults
	Body       *Block
}

func (*ConstDecl) decl() {}
func (*DistDecl) decl()  {}
func (*ProcDecl) decl()  {}

// Position returns the declaration's source position.
func (d *ConstDecl) Position() Pos { return d.Pos }

// Position returns the declaration's source position.
func (d *DistDecl) Position() Pos { return d.Pos }

// Position returns the declaration's source position.
func (d *ProcDecl) Position() Pos { return d.Pos }

// Param is a procedure parameter with its type and optional mapping.
type Param struct {
	Pos  Pos
	Name string
	Type TypeExpr
	Map  *MapExpr // nil means replicated for scalars; arrays require a mapping
}

// BaseType enumerates Idn types.
type BaseType int

// Base types.
const (
	TInt BaseType = iota
	TReal
	TBool
	TMatrix
	TVector
)

func (b BaseType) String() string {
	switch b {
	case TInt:
		return "int"
	case TReal:
		return "real"
	case TBool:
		return "bool"
	case TMatrix:
		return "matrix"
	case TVector:
		return "vector"
	}
	return "?"
}

// TypeExpr is a syntactic type: a scalar base type or matrix[r,c]/vector[n]
// with constant dimension expressions.
type TypeExpr struct {
	Pos  Pos
	Base BaseType
	Dims []Expr // nil for scalars; len 2 for matrix, len 1 for vector
}

// MapKind classifies mapping annotations.
type MapKind int

// Mapping annotation kinds.
const (
	MapNamed MapKind = iota // "on Column" — a declared dist (or dist parameter)
	MapProc                 // "on proc(e)" — a single processor
	MapAll                  // "on all" — replicated
)

// MapExpr is the "on ..." clause attaching a decomposition to a variable.
type MapExpr struct {
	Pos  Pos
	Kind MapKind
	Name string // for MapNamed
	Proc Expr   // for MapProc
}

// Block is a brace-delimited statement sequence.
type Block struct {
	Pos   Pos
	Stmts []Stmt
}

// Stmt is a statement.
type Stmt interface {
	stmt()
	Position() Pos
}

// LetStmt declares a new variable: "let x on all = 5;" for scalars, or
// "let New = matrix(N, N) on Column;" for I-structure allocation (where the
// initializer is an AllocExpr and Map gives the decomposition).
type LetStmt struct {
	Pos  Pos
	Name string
	Type *TypeExpr // optional scalar type annotation
	Map  *MapExpr
	Init Expr
}

// AssignStmt writes a scalar I-variable: "x = e;". Loop variables may not be
// assigned; other scalars may be assigned at most once on any execution path
// (checked dynamically, as the paper specifies for I-structures).
type AssignStmt struct {
	Pos   Pos
	Name  string
	Value Expr
}

// StoreStmt is an I-structure element write: "A[i, j] = e;".
type StoreStmt struct {
	Pos     Pos
	Array   string
	Indices []Expr
	Value   Expr
}

// ForStmt is "for i = lo to hi [by step] { ... }" with an inclusive upper
// bound, following the paper's programs.
type ForStmt struct {
	Pos    Pos
	Var    string
	Lo, Hi Expr
	Step   Expr // nil means 1
	Body   *Block
}

// IfStmt is "if cond { ... } [else { ... }]".
type IfStmt struct {
	Pos  Pos
	Cond Expr
	Then *Block
	Else *Block // may be nil
}

// CallStmt invokes a procedure for effect: "call init_boundary(New);".
type CallStmt struct {
	Pos      Pos
	Name     string
	DistArgs []MapExpr // mapping-polymorphism instantiation, "f[proc(2)](b)"
	Args     []Expr
}

// ReturnStmt is "return e;" or "return;".
type ReturnStmt struct {
	Pos   Pos
	Value Expr // may be nil
}

func (*LetStmt) stmt()    {}
func (*AssignStmt) stmt() {}
func (*StoreStmt) stmt()  {}
func (*ForStmt) stmt()    {}
func (*IfStmt) stmt()     {}
func (*CallStmt) stmt()   {}
func (*ReturnStmt) stmt() {}

// Position returns the statement's source position.
func (s *LetStmt) Position() Pos { return s.Pos }

// Position returns the statement's source position.
func (s *AssignStmt) Position() Pos { return s.Pos }

// Position returns the statement's source position.
func (s *StoreStmt) Position() Pos { return s.Pos }

// Position returns the statement's source position.
func (s *ForStmt) Position() Pos { return s.Pos }

// Position returns the statement's source position.
func (s *IfStmt) Position() Pos { return s.Pos }

// Position returns the statement's source position.
func (s *CallStmt) Position() Pos { return s.Pos }

// Position returns the statement's source position.
func (s *ReturnStmt) Position() Pos { return s.Pos }

// Expr is an expression.
type Expr interface {
	expr()
	Position() Pos
}

// NumLit is an integer or real literal.
type NumLit struct {
	Pos   Pos
	Val   float64
	IsInt bool
}

// BoolLit is "true" or "false".
type BoolLit struct {
	Pos Pos
	Val bool
}

// VarRef names a variable or constant.
type VarRef struct {
	Pos  Pos
	Name string
}

// IndexExpr is an I-structure element read: "A[i, j]".
type IndexExpr struct {
	Pos     Pos
	Array   string
	Indices []Expr
}

// Op enumerates operators.
type Op int

// Operators.
const (
	OpAdd Op = iota
	OpSub
	OpMul
	OpDivReal // "/"
	OpDivInt  // "div"
	OpMod     // "mod"
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAnd
	OpOr
	OpNot
	OpNeg
	OpMin
	OpMax
)

func (o Op) String() string {
	switch o {
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDivReal:
		return "/"
	case OpDivInt:
		return "div"
	case OpMod:
		return "mod"
	case OpEq:
		return "=="
	case OpNe:
		return "!="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	case OpAnd:
		return "and"
	case OpOr:
		return "or"
	case OpNot:
		return "not"
	case OpNeg:
		return "-"
	case OpMin:
		return "min"
	case OpMax:
		return "max"
	}
	return "?"
}

// BinExpr is a binary operation.
type BinExpr struct {
	Pos  Pos
	Op   Op
	L, R Expr
}

// UnExpr is a unary operation (negation, not).
type UnExpr struct {
	Pos Pos
	Op  Op
	X   Expr
}

// CallExpr is a value-returning procedure call: "f(x)" or "f[proc(2)](x)".
type CallExpr struct {
	Pos      Pos
	Name     string
	DistArgs []MapExpr
	Args     []Expr
}

// AllocExpr is an I-structure allocation: "matrix(r, c)" or "vector(n)".
// Allocations are only legal as let initializers.
type AllocExpr struct {
	Pos  Pos
	Base BaseType // TMatrix or TVector
	Dims []Expr
}

func (*NumLit) expr()    {}
func (*BoolLit) expr()   {}
func (*VarRef) expr()    {}
func (*IndexExpr) expr() {}
func (*BinExpr) expr()   {}
func (*UnExpr) expr()    {}
func (*CallExpr) expr()  {}
func (*AllocExpr) expr() {}

// Position returns the expression's source position.
func (e *NumLit) Position() Pos { return e.Pos }

// Position returns the expression's source position.
func (e *BoolLit) Position() Pos { return e.Pos }

// Position returns the expression's source position.
func (e *VarRef) Position() Pos { return e.Pos }

// Position returns the expression's source position.
func (e *IndexExpr) Position() Pos { return e.Pos }

// Position returns the expression's source position.
func (e *BinExpr) Position() Pos { return e.Pos }

// Position returns the expression's source position.
func (e *UnExpr) Position() Pos { return e.Pos }

// Position returns the expression's source position.
func (e *CallExpr) Position() Pos { return e.Pos }

// Position returns the expression's source position.
func (e *AllocExpr) Position() Pos { return e.Pos }
