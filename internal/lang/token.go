// Package lang implements the front end for Idn, the Id Nouveau subset the
// process-decomposition compiler accepts (paper §2.1): a single-assignment
// language with I-structure matrices and vectors, loops, conditionals, and
// procedures, extended with the paper's domain-decomposition annotations —
// the italicized code of Fig. 1. A program declares named decompositions
// ("dist Column = cyclic_cols(NPROCS);") and attaches them to arrays and
// scalars with "on" clauses.
//
// The package provides the token definitions, lexer, abstract syntax tree,
// parser, and a pretty-printer whose output re-parses to the same tree.
package lang

import "fmt"

// Kind classifies a token.
type Kind int

// Token kinds.
const (
	EOF Kind = iota
	IDENT
	INT
	REAL

	// Keywords.
	KwConst
	KwDist
	KwProc
	KwLet
	KwFor
	KwTo
	KwBy
	KwIf
	KwElse
	KwReturn
	KwCall
	KwMatrix
	KwVector
	KwOn
	KwInt
	KwReal
	KwBool
	KwAnd
	KwOr
	KwNot
	KwDiv
	KwMod
	KwTrue
	KwFalse
	KwAll
	KwMin
	KwMax

	// Punctuation and operators.
	LParen
	RParen
	LBrace
	RBrace
	LBrack
	RBrack
	Comma
	Semi
	Colon
	Assign // =
	Plus
	Minus
	Star
	Slash
	Eq // ==
	Ne // !=
	Lt
	Le
	Gt
	Ge
)

var kindNames = map[Kind]string{
	EOF: "end of file", IDENT: "identifier", INT: "integer", REAL: "real",
	KwConst: "const", KwDist: "dist", KwProc: "proc", KwLet: "let",
	KwFor: "for", KwTo: "to", KwBy: "by", KwIf: "if", KwElse: "else",
	KwReturn: "return", KwCall: "call", KwMatrix: "matrix", KwVector: "vector",
	KwOn: "on", KwInt: "int", KwReal: "real", KwBool: "bool",
	KwAnd: "and", KwOr: "or", KwNot: "not", KwDiv: "div", KwMod: "mod",
	KwTrue: "true", KwFalse: "false", KwAll: "all", KwMin: "min", KwMax: "max",
	LParen: "(", RParen: ")", LBrace: "{", RBrace: "}",
	LBrack: "[", RBrack: "]", Comma: ",", Semi: ";", Colon: ":",
	Assign: "=", Plus: "+", Minus: "-", Star: "*", Slash: "/",
	Eq: "==", Ne: "!=", Lt: "<", Le: "<=", Gt: ">", Ge: ">=",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

var keywords = map[string]Kind{
	"const": KwConst, "dist": KwDist, "proc": KwProc, "let": KwLet,
	"for": KwFor, "to": KwTo, "by": KwBy, "if": KwIf, "else": KwElse,
	"return": KwReturn, "call": KwCall, "matrix": KwMatrix, "vector": KwVector,
	"on": KwOn, "int": KwInt, "real": KwReal, "bool": KwBool,
	"and": KwAnd, "or": KwOr, "not": KwNot, "div": KwDiv, "mod": KwMod,
	"true": KwTrue, "false": KwFalse, "all": KwAll, "min": KwMin, "max": KwMax,
}

// Pos is a source position, 1-based.
type Pos struct {
	Line, Col int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is one lexical token.
type Token struct {
	Kind Kind
	Text string // raw text for IDENT, INT, REAL
	Pos  Pos
}

func (t Token) String() string {
	switch t.Kind {
	case IDENT, INT, REAL:
		return fmt.Sprintf("%s %q", t.Kind, t.Text)
	default:
		return t.Kind.String()
	}
}
