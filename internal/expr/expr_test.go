package expr

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConstFolding(t *testing.T) {
	cases := []struct {
		got  Expr
		want int64
	}{
		{Add(C(2), C(3)), 5},
		{Sub(C(2), C(3)), -1},
		{Mul(C(4), C(-3)), -12},
		{Div(C(7), C(2)), 3},
		{Div(C(-7), C(2)), -4}, // floor division
		{Mod(C(7), C(3)), 1},
		{Mod(C(-7), C(3)), 2}, // Euclidean mod
		{Min(C(3), C(9)), 3},
		{Max(C(3), C(9)), 9},
		{Neg(C(5)), -5},
	}
	for i, c := range cases {
		v, ok := c.got.ConstVal()
		if !ok {
			t.Errorf("case %d: %v did not fold to a constant", i, c.got)
			continue
		}
		if v != c.want {
			t.Errorf("case %d: got %d, want %d", i, v, c.want)
		}
	}
}

func TestAffineSimplification(t *testing.T) {
	j := V("j")
	// j + 1 - 1 == j
	if got := Sub(Add(j, C(1)), C(1)); !got.Equal(j) {
		t.Errorf("j+1-1 = %v, want j", got)
	}
	// 2j + 3j == 5j
	if got := Add(Mul(C(2), j), Mul(C(3), j)); !got.Equal(Mul(C(5), j)) {
		t.Errorf("2j+3j = %v, want 5j", got)
	}
	// j - j == 0
	if got := Sub(j, j); !got.IsZero() {
		t.Errorf("j-j = %v, want 0", got)
	}
}

func TestModSimplification(t *testing.T) {
	j := V("j")
	s := C(4)
	// (j + 8) mod 4 == j mod 4
	if got, want := Mod(Add(j, C(8)), s), Mod(j, s); !got.Equal(want) {
		t.Errorf("(j+8) mod 4 = %v, want %v", got, want)
	}
	// (j + 4k) mod 4 == j mod 4
	if got, want := Mod(Add(j, Mul(C(4), V("k"))), s), Mod(j, s); !got.Equal(want) {
		t.Errorf("(j+4k) mod 4 = %v, want %v", got, want)
	}
	// ((j mod 4) mod 4) == j mod 4
	if got, want := Mod(Mod(j, s), s), Mod(j, s); !got.Equal(want) {
		t.Errorf("(j mod 4) mod 4 = %v, want %v", got, want)
	}
	// (7) mod 4 == 3
	if v, ok := Mod(C(7), s).ConstVal(); !ok || v != 3 {
		t.Errorf("7 mod 4 = %v", Mod(C(7), s))
	}
}

func TestEvalErrors(t *testing.T) {
	if _, err := V("x").Eval(Env{}); err == nil {
		t.Error("unbound variable should be an error")
	}
	if _, err := Mod(V("x"), V("m")).Eval(Env{"x": 1, "m": 0}); err == nil {
		t.Error("mod by zero should be an error")
	}
	if _, err := Mod(V("x"), V("m")).Eval(Env{"x": 1, "m": -3}); err == nil {
		t.Error("mod by negative should be an error")
	}
	if _, err := Div(V("x"), V("m")).Eval(Env{"x": 1, "m": 0}); err == nil {
		t.Error("div by zero should be an error")
	}
}

func TestSubst(t *testing.T) {
	j := V("j")
	e := Mod(Add(j, C(1)), C(4))
	got := e.Subst("j", C(7))
	if v, ok := got.ConstVal(); !ok || v != 0 {
		t.Errorf("subst j=7 into (j+1) mod 4: got %v, want 0", got)
	}
	// Substitution into nested atoms.
	e2 := Div(Mul(V("i"), V("n")), C(2))
	got2 := e2.Subst("i", C(6)).Subst("n", C(5))
	if v, ok := got2.ConstVal(); !ok || v != 15 {
		t.Errorf("got %v, want 15", got2)
	}
}

func TestSubstAllSimultaneous(t *testing.T) {
	// Swap i and j simultaneously: i+2j -> j+2i.
	e := Add(V("i"), Mul(C(2), V("j")))
	got := e.SubstAll(map[string]Expr{"i": V("j"), "j": V("i")})
	want := Add(V("j"), Mul(C(2), V("i")))
	if !got.Equal(want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestEqualTri(t *testing.T) {
	j := V("j")
	if got := EqualTri(Add(j, C(1)), Add(j, C(1))); got != Yes {
		t.Errorf("identical exprs: %v, want yes", got)
	}
	if got := EqualTri(Add(j, C(1)), Add(j, C(2))); got != No {
		t.Errorf("constant-offset exprs: %v, want no", got)
	}
	if got := EqualTri(V("i"), V("j")); got != Maybe {
		t.Errorf("distinct vars: %v, want maybe", got)
	}
	if got := EqualTri(Mod(j, C(4)), C(2)); got != Maybe {
		t.Errorf("mod vs const: %v, want maybe", got)
	}
}

func TestVars(t *testing.T) {
	e := Add(Mod(Add(V("j"), C(1)), V("S")), Mul(V("i"), V("n")))
	got := e.Vars()
	want := []string{"S", "i", "j", "n"}
	if len(got) != len(want) {
		t.Fatalf("vars = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("vars = %v, want %v", got, want)
		}
	}
	if !e.HasVar("S") || e.HasVar("k") {
		t.Error("HasVar misreports")
	}
}

func TestStringStable(t *testing.T) {
	// Commutative construction yields identical canonical strings.
	a := Add(Add(V("a"), V("b")), C(3))
	b := Add(C(3), Add(V("b"), V("a")))
	if a.String() != b.String() {
		t.Errorf("%q != %q", a.String(), b.String())
	}
	cases := map[string]Expr{
		"j + 1":           Add(V("j"), C(1)),
		"-j":              Neg(V("j")),
		"2*j - 3":         Sub(Mul(C(2), V("j")), C(3)),
		"((j + 1) mod 4)": Mod(Add(V("j"), C(1)), C(4)),
		"0":               Expr{},
	}
	for want, e := range cases {
		if e.String() != want {
			t.Errorf("String() = %q, want %q", e.String(), want)
		}
	}
}

func TestSolveModEqSimple(t *testing.T) {
	// (j+1) mod 4 == 2  =>  j ≡ 1 (mod 4)
	inner, s, ok := AsMod(Mod(Add(V("j"), C(1)), C(4)))
	if !ok || s != 4 {
		t.Fatalf("AsMod failed: %v %v", s, ok)
	}
	sol, ok := SolveModEq(inner, s, C(2), "j")
	if !ok {
		t.Fatal("SolveModEq failed")
	}
	off, err := sol.Offset.Eval(Env{})
	if err != nil || off != 1 {
		t.Fatalf("offset = %v (%v), want 1", sol.Offset, err)
	}
	if sol.Stride != 4 {
		t.Fatalf("stride = %d, want 4", sol.Stride)
	}
}

func TestSolveModEqNegativeCoef(t *testing.T) {
	// (5 - j) mod 3 == 1  =>  -j ≡ -4 ≡ 2 (mod 3)  =>  j ≡ 1 (mod 3)
	sol, ok := SolveModEq(Sub(C(5), V("j")), 3, C(1), "j")
	if !ok {
		t.Fatal("SolveModEq failed")
	}
	for j := int64(0); j < 30; j++ {
		want := EucMod(5-j, 3) == 1
		got := EucMod(j-sol.Offset.MustEval(Env{}), sol.Stride) == 0
		if want != got {
			t.Fatalf("j=%d: solver says %v, direct check says %v", j, got, want)
		}
	}
}

func TestSolveModEqUndecidable(t *testing.T) {
	// Coefficient not coprime with modulus.
	if _, ok := SolveModEq(Mul(C(2), V("j")), 4, C(1), "j"); ok {
		t.Error("2j mod 4 == 1 should be undecidable (gcd 2)")
	}
	// Variable inside an opaque atom.
	if _, ok := SolveModEq(Div(V("j"), C(2)), 4, C(1), "j"); ok {
		t.Error("j inside div should be undecidable")
	}
	// Target mentions the variable.
	if _, ok := SolveModEq(V("j"), 4, V("j"), "j"); ok {
		t.Error("target mentioning v should be rejected")
	}
	// Variable absent.
	if _, ok := SolveModEq(V("i"), 4, C(1), "j"); ok {
		t.Error("absent variable should be rejected")
	}
}

func TestFirstAtLeast(t *testing.T) {
	sol := Solution{Offset: C(3), Stride: 5}
	for lo := int64(-7); lo < 20; lo++ {
		first := sol.FirstAtLeast(C(lo)).MustEval(Env{})
		if first < lo || EucMod(first-3, 5) != 0 || first-lo >= 5 {
			t.Fatalf("FirstAtLeast(%d) = %d", lo, first)
		}
	}
}

// Property: SolveModEq's progression matches a brute-force scan of solutions.
func TestSolveModEqMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for iter := 0; iter < 500; iter++ {
		s := int64(rng.Intn(9) + 2)
		coef := int64(rng.Intn(11) - 5)
		if coef == 0 {
			coef = 1
		}
		d := int64(rng.Intn(21) - 10)
		p := int64(rng.Intn(int(s)))
		e := Add(Mul(C(coef), V("j")), C(d))
		sol, ok := SolveModEq(e, s, C(p), "j")
		g, _, _ := extGCD(EucMod(coef, s), s)
		if g != 1 {
			if ok {
				// Only acceptable if the solver refused; it must not claim ok.
				t.Fatalf("gcd(%d,%d)=%d but solver claimed success", coef, s, g)
			}
			continue
		}
		if !ok {
			t.Fatalf("solver failed on coprime case coef=%d s=%d", coef, s)
		}
		off := sol.Offset.MustEval(Env{})
		for j := int64(-25); j <= 25; j++ {
			direct := EucMod(coef*j+d, s) == p
			bySol := EucMod(j-off, sol.Stride) == 0
			if direct != bySol {
				t.Fatalf("coef=%d d=%d s=%d p=%d j=%d: direct=%v solver=%v",
					coef, d, s, p, j, direct, bySol)
			}
		}
	}
}

// Property: Eval(Add(a,b)) == Eval(a)+Eval(b) etc. on random affine exprs.
func TestArithmeticHomomorphism(t *testing.T) {
	type lin struct{ A, B, C int64 }
	env := Env{"x": 0, "y": 0}
	mk := func(l lin) Expr { return Add(Add(Mul(C(l.A), V("x")), Mul(C(l.B), V("y"))), C(l.C)) }
	f := func(p, q lin, x, y int16) bool {
		env["x"], env["y"] = int64(x), int64(y)
		a, b := mk(p), mk(q)
		av, bv := a.MustEval(env), b.MustEval(env)
		if Add(a, b).MustEval(env) != av+bv {
			return false
		}
		if Sub(a, b).MustEval(env) != av-bv {
			return false
		}
		if Mul(a, b).MustEval(env) != av*bv {
			return false
		}
		if Neg(a).MustEval(env) != -av {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: mod simplification is sound — simplified and unsimplified forms
// evaluate identically.
func TestModSimplificationSound(t *testing.T) {
	f := func(a, b, k int16, s uint8) bool {
		mod := int64(s%16) + 2
		env := Env{"j": int64(a), "k": int64(k)}
		// (j + b + mod*k) mod mod should equal (j + b) mod mod.
		e1 := Mod(Add(Add(V("j"), C(int64(b))), Mul(C(mod), V("k"))), C(mod))
		want := EucMod(int64(a)+int64(b), mod)
		return e1.MustEval(env) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: String is injective enough — equal strings imply Equal exprs for
// randomly constructed expressions.
func TestStringCanonical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var gen func(depth int) Expr
	vars := []string{"i", "j", "k"}
	gen = func(depth int) Expr {
		if depth == 0 || rng.Intn(3) == 0 {
			if rng.Intn(2) == 0 {
				return C(int64(rng.Intn(9) - 4))
			}
			return V(vars[rng.Intn(len(vars))])
		}
		a, b := gen(depth-1), gen(depth-1)
		switch rng.Intn(6) {
		case 0:
			return Add(a, b)
		case 1:
			return Sub(a, b)
		case 2:
			return Mul(a, b)
		case 3:
			return Mod(a, C(int64(rng.Intn(5)+2)))
		case 4:
			return Min(a, b)
		default:
			return Max(a, b)
		}
	}
	exprs := make([]Expr, 200)
	for i := range exprs {
		exprs[i] = gen(3)
	}
	for i := range exprs {
		for j := range exprs {
			se, sf := exprs[i].String(), exprs[j].String()
			if (se == sf) != exprs[i].Equal(exprs[j]) {
				t.Fatalf("canonical string mismatch: %q vs %q, Equal=%v",
					se, sf, exprs[i].Equal(exprs[j]))
			}
		}
	}
}

func TestFloorDivEucModAgree(t *testing.T) {
	f := func(a int32, b int16) bool {
		bb := int64(b)
		if bb == 0 {
			return true
		}
		q := FloorDiv(int64(a), bb)
		var r int64
		if bb > 0 {
			r = EucMod(int64(a), bb)
			// a = q*b + r with 0 <= r < b
			return q*bb+r == int64(a) && r >= 0 && r < bb
		}
		// floor property for negative divisor: q <= a/b < q+1 with b < 0
		// multiplies through as q*b >= a > (q+1)*b.
		return q*bb >= int64(a) && (q+1)*bb < int64(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func ExampleSolveModEq() {
	// Which iterations of "for j" does processor 2 own under wrapped columns
	// (j+1) mod 4?
	inner, s, _ := AsMod(Mod(Add(V("j"), C(1)), C(4)))
	sol, _ := SolveModEq(inner, s, C(2), "j")
	fmt.Printf("j ≡ %v (mod %d)\n", sol.Offset, sol.Stride)
	fmt.Printf("first ≥ 2: %v\n", sol.FirstAtLeast(C(2)).MustEval(Env{}))
	// Output:
	// j ≡ 1 (mod 4)
	// first ≥ 2: 5
}

func TestEqualTriModRules(t *testing.T) {
	j := V("j")
	s := C(4)
	// (j+1) mod 4 vs j mod 4: never equal.
	if got := EqualTri(Mod(Add(j, C(1)), s), Mod(j, s)); got != No {
		t.Errorf("(j+1) mod 4 == j mod 4: %v, want no", got)
	}
	// (j+4) mod 4 vs j mod 4: always equal.
	if got := EqualTri(Mod(Add(j, C(4)), s), Mod(j, s)); got != Yes {
		t.Errorf("(j+4) mod 4 == j mod 4: %v, want yes", got)
	}
	// j mod 4 vs 6: impossible (range).
	if got := EqualTri(Mod(j, s), C(6)); got != No {
		t.Errorf("j mod 4 == 6: %v, want no", got)
	}
	if got := EqualTri(C(-1), Mod(j, s)); got != No {
		t.Errorf("-1 == j mod 4: %v, want no", got)
	}
	// j mod 4 vs 2: depends on j.
	if got := EqualTri(Mod(j, s), C(2)); got != Maybe {
		t.Errorf("j mod 4 == 2: %v, want maybe", got)
	}
	// Different moduli: undecidable.
	if got := EqualTri(Mod(j, C(4)), Mod(j, C(3))); got != Maybe {
		t.Errorf("j mod 4 == j mod 3: %v, want maybe", got)
	}
}
