package expr

// The modular equation solver of compile-time resolution.
//
// Paper §3.2: "To compute the required set of iterations for a given
// processor, we set the equations in the evaluators equal to the processor
// name and solve for the loop variable." For the wrapped-column mapping the
// equation is (j+d) mod S == p, whose solution set is the arithmetic
// progression j ≡ (p-d) mod S. SolveModEq handles the general affine case
// c·v + rest ≡ target (mod S) whenever gcd(c, S) = 1.

// Solution describes the set { v : v ≡ Offset (mod Stride) } of solutions of
// a modular equation in a single variable. Offset may mention other free
// variables of the equation; it is normalized into [0, Stride) by an outer
// mod when those variables are bound.
type Solution struct {
	Offset Expr
	Stride int64
}

// FirstAtLeast returns the smallest member of the solution set that is >= lo:
// lo + ((Offset - lo) mod Stride).
func (s Solution) FirstAtLeast(lo Expr) Expr {
	return Add(lo, Mod(Sub(s.Offset, lo), C(s.Stride)))
}

// AsMod decomposes e as (inner mod s) for a positive constant s. It accepts
// only a bare mod atom with coefficient 1 and no additive constant, which is
// the shape every cyclic mapping expression takes.
func AsMod(e Expr) (inner Expr, s int64, ok bool) {
	if e.c != 0 || len(e.terms) != 1 || e.terms[0].coef != 1 {
		return Expr{}, 0, false
	}
	m, isMod := e.terms[0].atom.(modAtom)
	if !isMod {
		return Expr{}, 0, false
	}
	sv, isConst := m.m.ConstVal()
	if !isConst || sv <= 0 {
		return Expr{}, 0, false
	}
	return m.e, sv, true
}

// coefOf returns the coefficient of variable name in the affine part of e,
// and e with that term removed. ok is false when name occurs inside an opaque
// atom (mod, div, min, max, product), where linear reasoning is unsound.
func coefOf(e Expr, name string) (coef int64, rest Expr, ok bool) {
	ts := make([]term, 0, len(e.terms))
	for _, t := range e.terms {
		if v, isVar := t.atom.(varAtom); isVar && string(v) == name {
			coef += t.coef
			continue
		}
		set := map[string]bool{}
		t.atom.vars(set)
		if set[name] {
			return 0, Expr{}, false
		}
		ts = append(ts, t)
	}
	return coef, normalize(ts, e.c), true
}

// SolveModEq solves (e) mod s == target for variable v, where e must be
// affine in v with a coefficient coprime to s, and target must not mention v.
// It returns the solution progression and true, or false when the equation is
// outside the decidable fragment (the compiler then falls back to run-time
// resolution, exactly as §3.2 prescribes for the "inconclusive" outcome).
func SolveModEq(e Expr, s int64, target Expr, v string) (Solution, bool) {
	if s <= 0 || target.HasVar(v) {
		return Solution{}, false
	}
	coef, rest, ok := coefOf(e, v)
	if !ok || coef == 0 {
		return Solution{}, false
	}
	c := eucMod(coef, s)
	inv, ok := modInverse(c, s)
	if !ok {
		return Solution{}, false
	}
	// c·v ≡ target - rest (mod s)  =>  v ≡ inv·(target - rest) (mod s)
	off := Mod(Mul(C(inv), Sub(target, rest)), C(s))
	return Solution{Offset: off, Stride: s}, true
}

// modInverse returns the multiplicative inverse of a modulo m (both reduced
// into [0, m)), using the extended Euclidean algorithm. ok is false when
// gcd(a, m) != 1.
func modInverse(a, m int64) (int64, bool) {
	if m <= 0 {
		return 0, false
	}
	a = eucMod(a, m)
	g, x, _ := extGCD(a, m)
	if g != 1 {
		return 0, false
	}
	return eucMod(x, m), true
}

// extGCD returns g = gcd(a, b) along with x, y such that a·x + b·y = g.
func extGCD(a, b int64) (g, x, y int64) {
	if b == 0 {
		return a, 1, 0
	}
	g, x1, y1 := extGCD(b, a%b)
	return g, y1, x1 - (a/b)*y1
}
