// Package expr implements the symbolic integer expression algebra used by
// the process-decomposition compiler.
//
// The evaluators/participants analysis of compile-time resolution (paper
// §3.2) manipulates processor-mapping expressions such as "(j+1) mod S".
// This package provides a canonical representation for such expressions —
// affine combinations of variables and opaque atoms (mod, div, min, max,
// non-affine products) — along with simplification, evaluation, substitution,
// tri-state comparison, and the modular equation solver used to restrict loop
// bounds to the iterations a processor owns.
//
// div is floor division and mod is Euclidean (the result lies in [0, m) for
// m > 0), matching the paper's processor arithmetic where the left neighbour
// on a ring is (p-1) mod S even for p = 0.
package expr

import (
	"fmt"
	"sort"
	"strings"
)

// Expr is an immutable symbolic integer expression in canonical form: a
// constant plus a sum of coefficient·atom terms, where an atom is a variable
// or an opaque subexpression (mod, div, min, max, product). The zero value is
// the constant 0.
type Expr struct {
	terms []term // sorted by atom key; no zero coefficients; unique atoms
	c     int64
}

type term struct {
	coef int64
	atom atom
}

// atom is a non-constant building block of an expression.
type atom interface {
	key() string // canonical, unambiguous; used for ordering and equality
	eval(env Env) (int64, error)
	subst(name string, r Expr) Expr // result of substituting into this atom
	vars(set map[string]bool)
}

// Env supplies values for free variables during evaluation.
type Env map[string]int64

// Tri is a three-valued truth value: the outcome of a comparison the compiler
// may or may not be able to decide (paper §3.2: "Three outcomes are possible:
// true, false, and inconclusive").
type Tri int

// Tri values.
const (
	No Tri = iota
	Maybe
	Yes
)

func (t Tri) String() string {
	switch t {
	case No:
		return "no"
	case Yes:
		return "yes"
	default:
		return "maybe"
	}
}

// C returns the constant expression v.
func C(v int64) Expr { return Expr{c: v} }

// V returns the variable expression name.
func V(name string) Expr {
	return Expr{terms: []term{{coef: 1, atom: varAtom(name)}}}
}

// atomExpr wraps a single atom with coefficient 1.
func atomExpr(a atom) Expr {
	return Expr{terms: []term{{coef: 1, atom: a}}}
}

// normalize sorts terms and removes zero coefficients, merging duplicates.
func normalize(ts []term, c int64) Expr {
	sort.Slice(ts, func(i, j int) bool { return ts[i].atom.key() < ts[j].atom.key() })
	out := ts[:0]
	for _, t := range ts {
		if t.coef == 0 {
			continue
		}
		if n := len(out); n > 0 && out[n-1].atom.key() == t.atom.key() {
			out[n-1].coef += t.coef
			if out[n-1].coef == 0 {
				out = out[:n-1]
			}
			continue
		}
		out = append(out, t)
	}
	// Copy so callers cannot alias the input slice.
	res := make([]term, len(out))
	copy(res, out)
	return Expr{terms: res, c: c}
}

// Add returns a+b.
func Add(a, b Expr) Expr {
	ts := make([]term, 0, len(a.terms)+len(b.terms))
	ts = append(ts, a.terms...)
	ts = append(ts, b.terms...)
	return normalize(ts, a.c+b.c)
}

// Sub returns a-b.
func Sub(a, b Expr) Expr { return Add(a, Neg(b)) }

// Neg returns -a.
func Neg(a Expr) Expr { return scale(a, -1) }

func scale(a Expr, k int64) Expr {
	if k == 0 {
		return Expr{}
	}
	ts := make([]term, len(a.terms))
	for i, t := range a.terms {
		ts[i] = term{coef: t.coef * k, atom: t.atom}
	}
	return Expr{terms: ts, c: a.c * k}
}

// Mul returns a*b, distributing constants over affine forms and falling back
// to an opaque product atom when both operands are non-constant.
func Mul(a, b Expr) Expr {
	if k, ok := a.ConstVal(); ok {
		return scale(b, k)
	}
	if k, ok := b.ConstVal(); ok {
		return scale(a, k)
	}
	// Canonical order for the operands of the opaque product.
	if a.String() > b.String() {
		a, b = b, a
	}
	return atomExpr(prodAtom{a: a, b: b})
}

// Div returns floor(a/b). Constant cases fold; division by 1 is the identity.
func Div(a, b Expr) Expr {
	if k, ok := b.ConstVal(); ok {
		if k == 1 {
			return a
		}
		if av, ok2 := a.ConstVal(); ok2 && k != 0 {
			return C(floorDiv(av, k))
		}
	}
	return atomExpr(divAtom{e: a, m: b})
}

// Mod returns a mod b (Euclidean for constant positive b). When b is a
// positive constant s, terms of a whose coefficients are multiples of s are
// dropped and the constant part is reduced, since (x + k·s) mod s = x mod s.
func Mod(a, b Expr) Expr {
	if s, ok := b.ConstVal(); ok && s > 0 {
		ts := make([]term, 0, len(a.terms))
		for _, t := range a.terms {
			if t.coef%s == 0 {
				continue
			}
			ts = append(ts, t)
		}
		red := normalize(ts, eucMod(a.c, s))
		if v, ok := red.ConstVal(); ok {
			return C(eucMod(v, s))
		}
		// mod(mod(e, s), s) == mod(e, s)
		if red.c == 0 && len(red.terms) == 1 && red.terms[0].coef == 1 {
			if m, ok := red.terms[0].atom.(modAtom); ok {
				if ms, ok2 := m.m.ConstVal(); ok2 && ms == s {
					return atomExpr(m)
				}
			}
		}
		return atomExpr(modAtom{e: red, m: b})
	}
	return atomExpr(modAtom{e: a, m: b})
}

// Min returns min(a, b), folding constants and identical operands.
func Min(a, b Expr) Expr {
	if av, ok := a.ConstVal(); ok {
		if bv, ok2 := b.ConstVal(); ok2 {
			if av < bv {
				return a
			}
			return b
		}
	}
	if a.Equal(b) {
		return a
	}
	if a.String() > b.String() {
		a, b = b, a
	}
	return atomExpr(minAtom{a: a, b: b})
}

// Max returns max(a, b), folding constants and identical operands.
func Max(a, b Expr) Expr {
	if av, ok := a.ConstVal(); ok {
		if bv, ok2 := b.ConstVal(); ok2 {
			if av > bv {
				return a
			}
			return b
		}
	}
	if a.Equal(b) {
		return a
	}
	if a.String() > b.String() {
		a, b = b, a
	}
	return atomExpr(maxAtom{a: a, b: b})
}

// ConstVal reports whether e is a constant, and its value.
func (e Expr) ConstVal() (int64, bool) {
	if len(e.terms) == 0 {
		return e.c, true
	}
	return 0, false
}

// IsZero reports whether e is the constant 0.
func (e Expr) IsZero() bool { v, ok := e.ConstVal(); return ok && v == 0 }

// Equal reports structural equality of canonical forms.
func (e Expr) Equal(f Expr) bool {
	if e.c != f.c || len(e.terms) != len(f.terms) {
		return false
	}
	for i := range e.terms {
		if e.terms[i].coef != f.terms[i].coef || e.terms[i].atom.key() != f.terms[i].atom.key() {
			return false
		}
	}
	return true
}

// EqualTri decides e == f as well as the algebra allows: Yes when the
// canonical forms coincide, No when the difference is a non-zero constant,
// No when both sides are mods by the same constant whose arguments differ by
// a constant not divisible by the modulus (the "(j+1) mod S vs j mod S"
// neighbours of cyclic decompositions), No when one side is a mod and the
// other a constant outside [0, modulus), and Maybe otherwise.
func EqualTri(e, f Expr) Tri {
	d := Sub(e, f)
	if v, ok := d.ConstVal(); ok {
		if v == 0 {
			return Yes
		}
		return No
	}
	if ae, se, eok := AsMod(e); eok {
		if af, sf, fok := AsMod(f); fok && se == sf {
			if dv, ok := Sub(ae, af).ConstVal(); ok {
				if eucMod(dv, se) == 0 {
					return Yes
				}
				return No
			}
		}
		if fv, ok := f.ConstVal(); ok && (fv < 0 || fv >= se) {
			return No
		}
	}
	if _, sf, fok := AsMod(f); fok {
		if ev, ok := e.ConstVal(); ok && (ev < 0 || ev >= sf) {
			return No
		}
	}
	return Maybe
}

// Eval evaluates e under env. Unbound variables, non-positive moduli and zero
// divisors are errors.
func (e Expr) Eval(env Env) (int64, error) {
	v := e.c
	for _, t := range e.terms {
		av, err := t.atom.eval(env)
		if err != nil {
			return 0, err
		}
		v += t.coef * av
	}
	return v, nil
}

// MustEval evaluates e and panics on error; for use with known-closed
// expressions in tests and generated code.
func (e Expr) MustEval(env Env) int64 {
	v, err := e.Eval(env)
	if err != nil {
		panic(err)
	}
	return v
}

// Vars returns the free variables of e in sorted order.
func (e Expr) Vars() []string {
	set := map[string]bool{}
	for _, t := range e.terms {
		t.atom.vars(set)
	}
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// HasVar reports whether name occurs free in e.
func (e Expr) HasVar(name string) bool {
	for _, v := range e.Vars() {
		if v == name {
			return true
		}
	}
	return false
}

// Subst returns e with every free occurrence of name replaced by r.
func (e Expr) Subst(name string, r Expr) Expr {
	out := C(e.c)
	for _, t := range e.terms {
		out = Add(out, scale(t.atom.subst(name, r), t.coef))
	}
	return out
}

// SubstAll applies a set of substitutions simultaneously.
func (e Expr) SubstAll(sub map[string]Expr) Expr {
	names := make([]string, 0, len(sub))
	for n := range sub {
		names = append(names, n)
	}
	sort.Strings(names)
	// Simultaneity: first rename targets to fresh names, then substitute.
	tmp := e
	for i, n := range names {
		tmp = tmp.Subst(n, V(fmt.Sprintf("\x00subst%d", i)))
	}
	for i, n := range names {
		tmp = tmp.Subst(fmt.Sprintf("\x00subst%d", i), sub[n])
	}
	return tmp
}

// String renders e in canonical, re-parsable form.
func (e Expr) String() string {
	if len(e.terms) == 0 {
		return fmt.Sprintf("%d", e.c)
	}
	var b strings.Builder
	for i, t := range e.terms {
		s := t.atom.key()
		switch {
		case t.coef == 1:
			if i > 0 {
				b.WriteString(" + ")
			}
			b.WriteString(s)
		case t.coef == -1:
			if i > 0 {
				b.WriteString(" - ")
				b.WriteString(s)
			} else {
				b.WriteString("-" + s)
			}
		case t.coef < 0 && i > 0:
			fmt.Fprintf(&b, " - %d*%s", -t.coef, s)
		default:
			if i > 0 {
				b.WriteString(" + ")
			}
			fmt.Fprintf(&b, "%d*%s", t.coef, s)
		}
	}
	if e.c > 0 {
		fmt.Fprintf(&b, " + %d", e.c)
	} else if e.c < 0 {
		fmt.Fprintf(&b, " - %d", -e.c)
	}
	return b.String()
}

// floorDiv returns floor(a/b) for b != 0.
func floorDiv(a, b int64) int64 {
	q := a / b
	if (a%b != 0) && ((a < 0) != (b < 0)) {
		q--
	}
	return q
}

// eucMod returns a mod m in [0, m) for m > 0.
func eucMod(a, m int64) int64 {
	r := a % m
	if r < 0 {
		r += m
	}
	return r
}

// FloorDiv and EucMod expose the integer helpers used throughout the
// compiler and interpreters so all components agree on div/mod semantics.
func FloorDiv(a, b int64) int64 { return floorDiv(a, b) }

// EucMod returns a mod m in [0, m); m must be positive.
func EucMod(a, m int64) int64 { return eucMod(a, m) }

// --- atoms ---

type varAtom string

func (v varAtom) key() string { return string(v) }
func (v varAtom) eval(env Env) (int64, error) {
	val, ok := env[string(v)]
	if !ok {
		return 0, fmt.Errorf("expr: unbound variable %q", string(v))
	}
	return val, nil
}
func (v varAtom) subst(name string, r Expr) Expr {
	if string(v) == name {
		return r
	}
	return atomExpr(v)
}
func (v varAtom) vars(set map[string]bool) { set[string(v)] = true }

type modAtom struct{ e, m Expr }

func (a modAtom) key() string { return "((" + a.e.String() + ") mod " + a.m.String() + ")" }
func (a modAtom) eval(env Env) (int64, error) {
	ev, err := a.e.Eval(env)
	if err != nil {
		return 0, err
	}
	mv, err := a.m.Eval(env)
	if err != nil {
		return 0, err
	}
	if mv <= 0 {
		return 0, fmt.Errorf("expr: mod by non-positive %d", mv)
	}
	return eucMod(ev, mv), nil
}
func (a modAtom) subst(name string, r Expr) Expr {
	return Mod(a.e.Subst(name, r), a.m.Subst(name, r))
}
func (a modAtom) vars(set map[string]bool) {
	for _, v := range a.e.Vars() {
		set[v] = true
	}
	for _, v := range a.m.Vars() {
		set[v] = true
	}
}

type divAtom struct{ e, m Expr }

func (a divAtom) key() string { return "((" + a.e.String() + ") div " + a.m.String() + ")" }
func (a divAtom) eval(env Env) (int64, error) {
	ev, err := a.e.Eval(env)
	if err != nil {
		return 0, err
	}
	mv, err := a.m.Eval(env)
	if err != nil {
		return 0, err
	}
	if mv == 0 {
		return 0, fmt.Errorf("expr: division by zero")
	}
	return floorDiv(ev, mv), nil
}
func (a divAtom) subst(name string, r Expr) Expr {
	return Div(a.e.Subst(name, r), a.m.Subst(name, r))
}
func (a divAtom) vars(set map[string]bool) {
	for _, v := range a.e.Vars() {
		set[v] = true
	}
	for _, v := range a.m.Vars() {
		set[v] = true
	}
}

type minAtom struct{ a, b Expr }

func (a minAtom) key() string { return "min(" + a.a.String() + ", " + a.b.String() + ")" }
func (a minAtom) eval(env Env) (int64, error) {
	av, err := a.a.Eval(env)
	if err != nil {
		return 0, err
	}
	bv, err := a.b.Eval(env)
	if err != nil {
		return 0, err
	}
	if av < bv {
		return av, nil
	}
	return bv, nil
}
func (a minAtom) subst(name string, r Expr) Expr {
	return Min(a.a.Subst(name, r), a.b.Subst(name, r))
}
func (a minAtom) vars(set map[string]bool) {
	for _, v := range a.a.Vars() {
		set[v] = true
	}
	for _, v := range a.b.Vars() {
		set[v] = true
	}
}

type maxAtom struct{ a, b Expr }

func (a maxAtom) key() string { return "max(" + a.a.String() + ", " + a.b.String() + ")" }
func (a maxAtom) eval(env Env) (int64, error) {
	av, err := a.a.Eval(env)
	if err != nil {
		return 0, err
	}
	bv, err := a.b.Eval(env)
	if err != nil {
		return 0, err
	}
	if av > bv {
		return av, nil
	}
	return bv, nil
}
func (a maxAtom) subst(name string, r Expr) Expr {
	return Max(a.a.Subst(name, r), a.b.Subst(name, r))
}
func (a maxAtom) vars(set map[string]bool) {
	for _, v := range a.a.Vars() {
		set[v] = true
	}
	for _, v := range a.b.Vars() {
		set[v] = true
	}
}

type prodAtom struct{ a, b Expr }

func (a prodAtom) key() string { return "(" + a.a.String() + ")*(" + a.b.String() + ")" }
func (a prodAtom) eval(env Env) (int64, error) {
	av, err := a.a.Eval(env)
	if err != nil {
		return 0, err
	}
	bv, err := a.b.Eval(env)
	if err != nil {
		return 0, err
	}
	return av * bv, nil
}
func (a prodAtom) subst(name string, r Expr) Expr {
	return Mul(a.a.Subst(name, r), a.b.Subst(name, r))
}
func (a prodAtom) vars(set map[string]bool) {
	for _, v := range a.a.Vars() {
		set[v] = true
	}
	for _, v := range a.b.Vars() {
		set[v] = true
	}
}
