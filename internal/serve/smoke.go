package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"procdecomp/internal/obs"
)

// SmokeConfig drives one smoke run: a live server on a loopback listener,
// hammered with concurrent requests through injected worker panics, every
// request required to resolve.
type SmokeConfig struct {
	Requests    int // total requests (default 60)
	Concurrency int // concurrent clients (default 8)
	Server      Config
}

// SmokeReport is the benchmark artifact (BENCH_pdserve.json in CI).
type SmokeReport struct {
	Requests    int
	Concurrency int
	OK          int
	Errors      []string `json:",omitempty"`
	// Panics/Retries confirm the chaos knob actually exercised the
	// isolation path; a smoke run that injected nothing proves nothing.
	Panics  int64
	Retries int64
	// Throughput and latency over the whole run.
	ThroughputRPS float64
	P50Ms         float64
	P99Ms         float64
	CacheHits     int64
	CacheHitRate  float64
	Shed          int64
	// The observability round-trip: every counter sample scraped from
	// /metrics over the wire (verified against ground truth before the
	// report is written), the number of metric families exposed, the
	// structured log lines retained, and the stitched trace's span counts.
	Metrics            map[string]float64 `json:",omitempty"`
	MetricsFamilies    int
	LogLines           int
	TraceWallSpans     int
	TraceMachineEvents int
}

// smokeBodies is the request mix: distinct programs for misses, repeats for
// hits. Small N keeps a smoke run fast even under -race.
func smokeBodies() []struct{ endpoint, body string } {
	return []struct{ endpoint, body string }{
		{"/run", `{"GS":true,"Procs":4,"Mode":"ctr","Defines":{"N":16}}`},
		{"/run", `{"GS":true,"Procs":4,"Mode":"opt3","Blk":8,"Defines":{"N":16}}`},
		{"/compile", `{"GS":true,"Procs":4,"Mode":"opt2","Defines":{"N":16}}`},
		{"/trace", `{"GS":true,"Procs":4,"Mode":"opt3","Blk":8,"Defines":{"N":16}}`},
		{"/run", `{"GS":true,"Procs":8,"Mode":"opt1","Defines":{"N":16}}`},
	}
}

// Smoke runs the self-check: start a server (with the chaos panic knob on
// unless the caller disabled it), fire the configured load over real HTTP,
// require every request to resolve with 200, and report throughput,
// latency quantiles, and the cache hit rate.
func Smoke(cfg SmokeConfig) (*SmokeReport, error) {
	if cfg.Requests <= 0 {
		cfg.Requests = 60
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 8
	}
	if cfg.Server.PanicEvery == 0 {
		// Most of the mix is repeats answered from the cache, so only a
		// handful of jobs ever reach the pool; every other one must panic
		// for the isolation path to be exercised at all.
		cfg.Server.PanicEvery = 2
	}
	if cfg.Server.QueueDepth == 0 {
		// The smoke asserts universal success, so the queue must absorb the
		// whole client herd; the soak test covers shedding.
		cfg.Server.QueueDepth = cfg.Requests
	}
	if cfg.Server.CacheDir == "" {
		// A throwaway cache, so the hit-rate number in the report reflects a
		// real cache path rather than a disabled one.
		dir, err := os.MkdirTemp("", "pdserve-smoke-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
		cfg.Server.CacheDir = dir
	}
	s, err := New(cfg.Server)
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		s.Close()
		return nil, err
	}
	hs := &http.Server{Handler: s.Handler()}
	go hs.Serve(ln)
	base := "http://" + ln.Addr().String()

	bodies := smokeBodies()
	latencies := make([]time.Duration, cfg.Requests)
	errs := make([]string, cfg.Requests)
	var wg sync.WaitGroup
	sem := make(chan struct{}, cfg.Concurrency)
	start := time.Now()
	for i := 0; i < cfg.Requests; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			b := bodies[i%len(bodies)]
			t0 := time.Now()
			resp, err := http.Post(base+b.endpoint, "application/json", bytes.NewReader([]byte(b.body)))
			latencies[i] = time.Since(t0)
			if err != nil {
				errs[i] = fmt.Sprintf("request %d: %v", i, err)
				return
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs[i] = fmt.Sprintf("request %d (%s): status %d: %.120s", i, b.endpoint, resp.StatusCode, body)
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	// Observability round-trip, still over real HTTP: a traced request must
	// come back as a stitched two-clock-domain Chrome trace, and its request
	// ID must retrieve the structured log lines it produced.
	traceSpans, traceMachine, logLines, err := smokeTraceRoundTrip(base)
	if err != nil {
		s.Close()
		hs.Close()
		return nil, err
	}

	// Drain the server first (the identities need every job settled), then
	// scrape /metrics over the wire while the listener is still up.
	if err := s.Shutdown(context.Background()); err != nil {
		hs.Close()
		return nil, err
	}
	scrape, err := smokeScrape(base)
	hs.Close()
	if err != nil {
		return nil, err
	}
	st := s.Stats()
	if err := VerifyScrape(scrape, st); err != nil {
		return nil, err
	}

	rep := &SmokeReport{
		Requests: cfg.Requests, Concurrency: cfg.Concurrency,
		Panics: st.Panics, Retries: st.Retries,
		CacheHits: st.Cache.Hits, Shed: st.Shed,
		ThroughputRPS:   float64(cfg.Requests) / elapsed.Seconds(),
		Metrics:         counterSamples(scrape),
		MetricsFamilies: len(scrape.Types),
		LogLines:        logLines,
		TraceWallSpans:  traceSpans, TraceMachineEvents: traceMachine,
	}
	for _, e := range errs {
		if e == "" {
			rep.OK++
		} else {
			rep.Errors = append(rep.Errors, e)
		}
	}
	if total := st.Cache.Hits + st.Cache.Misses; total > 0 {
		rep.CacheHitRate = float64(st.Cache.Hits) / float64(total)
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	rep.P50Ms = quantileMs(latencies, 0.50)
	rep.P99Ms = quantileMs(latencies, 0.99)

	if rep.OK != cfg.Requests {
		return rep, fmt.Errorf("smoke: %d of %d requests failed (first: %s)",
			len(rep.Errors), cfg.Requests, rep.Errors[0])
	}
	if cfg.Server.PanicEvery > 0 && st.Panics == 0 {
		return rep, fmt.Errorf("smoke: the chaos knob injected no panics — the isolation path went unexercised")
	}
	return rep, nil
}

// smokeTraceRoundTrip drives the correlation contract end to end: one traced
// request under a known request ID must return a stitched Chrome trace whose
// summary carries that ID, wall spans, and machine events, and the same ID
// must retrieve the request's structured log lines from /logz.
func smokeTraceRoundTrip(base string) (wallSpans, machineEvents, logLines int, err error) {
	const rid = "r-smoke-trace"
	body := `{"GS":true,"Procs":4,"Mode":"opt3","Blk":8,"Defines":{"N":16}}`
	req, err := http.NewRequest("POST", base+"/run?trace=1", strings.NewReader(body))
	if err != nil {
		return 0, 0, 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-Id", rid)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0, 0, 0, fmt.Errorf("smoke: traced request: %w", err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, 0, 0, fmt.Errorf("smoke: traced request: status %d: %.200s", resp.StatusCode, raw)
	}
	if got := resp.Header.Get("X-Request-Id"); got != rid {
		return 0, 0, 0, fmt.Errorf("smoke: request ID not echoed: got %q, want %q", got, rid)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
		PDObs       struct {
			RequestID     string
			WallSpans     int
			MachineEvents int
		} `json:"pdobs"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		return 0, 0, 0, fmt.Errorf("smoke: stitched trace does not parse: %w", err)
	}
	switch {
	case doc.PDObs.RequestID != rid:
		return 0, 0, 0, fmt.Errorf("smoke: trace names request %q, want %q", doc.PDObs.RequestID, rid)
	case doc.PDObs.WallSpans == 0:
		return 0, 0, 0, fmt.Errorf("smoke: stitched trace has no wall-time service spans")
	case doc.PDObs.MachineEvents == 0:
		return 0, 0, 0, fmt.Errorf("smoke: stitched trace has no virtual-time machine events")
	}

	lresp, err := http.Get(base + "/logz?req=" + rid)
	if err != nil {
		return 0, 0, 0, fmt.Errorf("smoke: /logz: %w", err)
	}
	defer lresp.Body.Close()
	var lines []json.RawMessage
	if err := json.NewDecoder(lresp.Body).Decode(&lines); err != nil {
		return 0, 0, 0, fmt.Errorf("smoke: /logz does not parse: %w", err)
	}
	if len(lines) == 0 {
		return 0, 0, 0, fmt.Errorf("smoke: request %s left no structured log lines", rid)
	}
	return doc.PDObs.WallSpans, doc.PDObs.MachineEvents, len(lines), nil
}

// smokeScrape reads /metrics over the wire and parses it strictly.
func smokeScrape(base string) (*obs.Scrape, error) {
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return nil, fmt.Errorf("smoke: scrape: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("smoke: scrape: status %d", resp.StatusCode)
	}
	return obs.ParsePrometheus(resp.Body)
}

// counterSamples flattens a scrape's counter series for the report.
func counterSamples(sc *obs.Scrape) map[string]float64 {
	out := map[string]float64{}
	for _, s := range sc.Samples {
		if sc.Types[s.Name] == "counter" {
			out[s.Key()] = s.Value
		}
	}
	return out
}

func quantileMs(sorted []time.Duration, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return float64(sorted[i]) / float64(time.Millisecond)
}

// WriteJSON emits the report, indented and newline-terminated.
func (r *SmokeReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
