package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestChaosSoak is the service's endurance proof, one scenario per phase:
//
//  1. Queue overflow: workers held at a gate, a burst of identical requests
//     far past the queue depth — the overflow is shed with 429, everything
//     admitted completes once the gate opens, and the concurrent same-key
//     cache writes collapse to one valid entry.
//  2. Chaos load: hundreds of concurrent requests over a mixed body set,
//     with every worker panic seeded by the chaos knob, a slice of clients
//     disconnecting mid-request, and a slice carrying unmeetable deadlines.
//     Every surviving request resolves; repeats are byte-identical.
//  3. Kill and restart: the server is killed abruptly, one cache entry is
//     torn on disk, and a fresh server on the same cache directory must
//     serve byte-identical responses — quarantining the torn entry and
//     recomputing it rather than serving garbage.
//
// No request may hang at any point: every wait in the test is bounded.
func TestChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak is not short")
	}
	cacheDir := t.TempDir()

	var hold atomic.Bool
	release := make(chan struct{})
	cfg := Config{
		Workers: 4, QueueDepth: 64,
		PanicEvery: 5, Retries: 2,
		DrainTimeout: 10 * time.Second,
		CacheDir:     cacheDir,
	}
	cfg.gate = func(j *job) {
		if hold.Load() {
			<-release
		}
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()
	defer s.Close()

	// --- Phase 1: overflow burst -----------------------------------------
	hold.Store(true)
	const burst = 100
	burstBody := `{"GS":true,"Procs":2,"Mode":"ctr","Defines":{"N":8}}`
	statuses := make([]int, burst)
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(hs.URL+"/run", "application/json", strings.NewReader(burstBody))
			if err != nil {
				statuses[i] = -1
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			statuses[i] = resp.StatusCode
		}(i)
	}
	// The gate holds one job per worker and the queue holds QueueDepth, so
	// once every burst request is accounted for, the rest have been shed.
	waitFor(t, "burst admission to settle", func() bool {
		st := s.Stats()
		return st.Accepted+st.Shed >= burst
	})
	hold.Store(false)
	close(release)
	waitOn(t, &wg, "overflow burst to resolve")

	shed, ok := 0, 0
	for i, code := range statuses {
		switch code {
		case http.StatusOK:
			ok++
		case http.StatusTooManyRequests:
			shed++
		default:
			t.Fatalf("burst request %d resolved %d, want 200 or 429", i, code)
		}
	}
	// 4 workers parked at the gate + 64 queued = at most 68 admitted.
	if shed < burst-68 {
		t.Errorf("burst shed %d of %d, want at least %d", shed, burst, burst-68)
	}
	if ok == 0 {
		t.Error("no burst request completed")
	}

	// --- Phase 2: chaos load ---------------------------------------------
	bodies := make([]string, 12)
	for i := range bodies {
		mode := []string{"ctr", "opt1", "opt2", "opt3"}[i%4]
		bodies[i] = fmt.Sprintf(`{"GS":true,"Procs":%d,"Mode":%q,"Defines":{"N":16}}`, 2+i%3*2, mode)
	}
	const load = 300
	type outcome struct {
		status int // -1: transport error (disconnects land here)
		body   []byte
	}
	outcomes := make([]outcome, load)
	var lg sync.WaitGroup
	sem := make(chan struct{}, 32)
	for i := 0; i < load; i++ {
		lg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer lg.Done()
			defer func() { <-sem }()
			body, url := bodies[i%len(bodies)], hs.URL+"/run"
			ctx := context.Background()
			switch {
			case i%11 == 3:
				// A disconnecting client: cancel while the request may well
				// be in flight. The server must simply carry on.
				c, cancel := context.WithTimeout(ctx, 2*time.Millisecond)
				defer cancel()
				ctx = c
			case i%17 == 5:
				// An unmeetable deadline: resolves 504 (or 200 if it won the
				// race to a cache hit, which bypasses the queue).
				body = strings.TrimSuffix(body, "}") + `,"TimeoutMS":1}`
			}
			req, err := http.NewRequestWithContext(ctx, "POST", url, strings.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			req.Header.Set("Content-Type", "application/json")
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				outcomes[i] = outcome{status: -1}
				return
			}
			b, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			outcomes[i] = outcome{status: resp.StatusCode, body: b}
		}(i)
	}
	waitOn(t, &lg, "chaos load to resolve")

	canonical := map[string][]byte{} // request body -> response bytes
	for i, o := range outcomes {
		switch {
		case o.status == -1: // disconnected client; nothing to assert
		case i%17 == 5:
			if o.status != http.StatusOK && o.status != http.StatusGatewayTimeout {
				t.Errorf("deadline request %d resolved %d", i, o.status)
			}
		case o.status != http.StatusOK:
			t.Errorf("request %d resolved %d: %.200s", i, o.status, o.body)
		default:
			key := bodies[i%len(bodies)]
			if prev, seen := canonical[key]; seen {
				if !bytes.Equal(prev, o.body) {
					t.Errorf("request %d: identical body, different response bytes", i)
				}
			} else {
				canonical[key] = o.body
			}
		}
	}
	if len(canonical) != len(bodies) {
		t.Fatalf("only %d of %d distinct requests ever succeeded", len(canonical), len(bodies))
	}
	if st := s.Stats(); st.Panics == 0 {
		t.Error("the chaos knob injected no panics — the soak proved nothing about isolation")
	}

	// --- Phase 3: kill, tear, restart ------------------------------------
	hs.Close()
	s.Close() // abrupt: no drain, simulating a kill

	// Close still settles every admitted job (canceled jobs fail typed), so
	// the scraped catalog must reconcile with ground truth even after the
	// full chaos run: sheds, panics, retries, disconnects, and deadlines.
	if err := s.VerifyMetrics(); err != nil {
		t.Errorf("metrics reconciliation after chaos soak: %v", err)
	}

	entries, err := filepath.Glob(filepath.Join(cacheDir, "*"+cacheExt))
	if err != nil || len(entries) == 0 {
		t.Fatalf("cache holds %d entries after the load (err %v)", len(entries), err)
	}
	// Tear the entry of a body phase 3 will re-request, the way a crashed
	// non-atomic writer would have.
	torn := s.cache.path(bodyKey(t, "/run", bodies[0]))
	raw, err := os.ReadFile(torn)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(torn, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	cfg2 := Config{Workers: 4, QueueDepth: 64, CacheDir: cacheDir}
	s2, err := New(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	hs2 := httptest.NewServer(s2.Handler())
	defer hs2.Close()
	defer s2.Close()

	for body, want := range canonical {
		resp, err := http.Post(hs2.URL+"/run", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		got, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("after restart: status %d: %.200s", resp.StatusCode, got)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("after restart: response bytes differ for %s", body)
		}
	}
	if q := s2.Stats().Cache.Quarantined; q != 1 {
		t.Errorf("restart quarantined %d entries, want exactly the torn one", q)
	}

	// Every entry now on disk verifies cleanly: correct magic, checksum,
	// and a key that hashes to its own filename — no torn or misfiled
	// entries survive, and content addressing makes duplicates impossible.
	entries, err = filepath.Glob(filepath.Join(cacheDir, "*"+cacheExt))
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range entries {
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		key := entryKey(t, raw)
		if s2.cache.path(key) != path {
			t.Errorf("entry %s is misfiled for its key", filepath.Base(path))
		}
		if _, err := decodeEntry(raw, key); err != nil {
			t.Errorf("entry %s does not verify after the soak: %v", filepath.Base(path), err)
		}
	}

	// The restarted server's catalog reconciles too — including the
	// quarantine counter the torn entry just incremented.
	if err := s2.VerifyMetrics(); err != nil {
		t.Errorf("metrics reconciliation after restart: %v", err)
	}
}

// bodyKey computes the content key the server derives for a request body.
func bodyKey(t *testing.T, endpoint, body string) string {
	t.Helper()
	var req Request
	if err := json.Unmarshal([]byte(body), &req); err != nil {
		t.Fatal(err)
	}
	req, err := normalize(endpoint, req)
	if err != nil {
		t.Fatal(err)
	}
	return contentKey(endpoint, req, 0, "")
}

// waitFor polls cond with a hard bound; the soak's promise is that nothing
// ever waits forever.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// waitOn bounds a WaitGroup wait: a hung request fails the test instead of
// hanging it.
func waitOn(t *testing.T, wg *sync.WaitGroup, what string) {
	t.Helper()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(120 * time.Second):
		t.Fatalf("timed out waiting for %s — a request hung", what)
	}
}
