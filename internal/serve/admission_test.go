package serve

import (
	"testing"
	"time"
)

// The Retry-After computation is part of the service's client contract, so
// its exact values are pinned: drain time at the observed rate, plus the
// deterministic seeded jitter, clamped to [1, 60].
func TestRetryAfterSecondsPinned(t *testing.T) {
	cases := []struct {
		name      string
		queued    int
		drainRate float64
		seed, seq uint64
		want      int
	}{
		// No rate observed yet: base 1 second plus jitter.
		// admitJitter(1, 0) % 3 == 2, so 1 + 2.
		{"cold-start", 10, 0, 1, 0, 3},
		// 10 queued at 5/sec drains in 2s; jitter(1, 1) % 3 == 0.
		{"drain-2s-no-jitter", 10, 5, 1, 1, 2},
		// Same queue, jitter(1, 2) % 3 == 1.
		{"drain-2s-jitter-1", 10, 5, 1, 2, 3},
		// 7/2 rounds up: ceil(7/2) = 4; jitter(1, 3) % 3 == 2.
		{"ceil-rounding", 7, 2, 1, 3, 6},
		// 600 queued at 1/sec would be 600s: clamped to 60.
		{"clamped-high", 600, 1, 1, 7, 60},
		// Empty queue: base 1 plus jitter(1, 42) % 3 == 1.
		{"empty-queue", 0, 5, 1, 42, 2},
		// A different seed lands different jitter: jitter(9, 5) % 3 == 1.
		{"other-seed", 10, 5, 9, 5, 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := retryAfterSeconds(tc.queued, tc.drainRate, tc.seed, tc.seq); got != tc.want {
				t.Errorf("retryAfterSeconds(%d, %v, %d, %d) = %d, want %d",
					tc.queued, tc.drainRate, tc.seed, tc.seq, got, tc.want)
			}
		})
	}
	// Determinism: equal inputs, equal replies — always.
	for i := 0; i < 100; i++ {
		if retryAfterSeconds(10, 5, 1, 7) != retryAfterSeconds(10, 5, 1, 7) {
			t.Fatal("retryAfterSeconds is not deterministic")
		}
	}
}

func TestAdmissionFairShare(t *testing.T) {
	cfg := Config{QueueDepth: 8, FairShareAt: 0.5, DegradeAt: 2, DegradeKeep: 4, AdmitSeed: 1}.withDefaults()
	a := newAdmission(cfg)
	now := time.Now()

	// Below the contention threshold one tenant may fill freely.
	for i := 0; i < 4; i++ {
		if d := a.admit("/run", "hog", time.Minute, uint64(i), now); d.shed != nil {
			t.Fatalf("admit %d below contention: %v", i, d.shed)
		}
	}
	// At occupancy 4/8 = 0.5 the cap engages — but a lone tenant is still
	// entitled to the whole depth, so the hog only loses slots once a
	// second tenant shows up.
	if d := a.admit("/run", "hog", time.Minute, 10, now); d.shed != nil {
		t.Fatalf("lone hog shed with no contention: %v", d.shed)
	}
	if d := a.admit("/run", "newcomer", time.Minute, 11, now); d.shed != nil {
		t.Fatalf("newcomer shed while the hog holds the queue: %v", d.shed)
	}
	// Two active tenants split depth 8 into 4 each: the hog already holds
	// 5, so its next request sheds while the newcomer keeps admitting.
	d := a.admit("/run", "hog", time.Minute, 12, now)
	if d.shed == nil || d.shed.Kind != KindShed {
		t.Fatalf("hog over share admit = %+v, want fair-share shed", d)
	}
	if d.reason != "fair" {
		t.Errorf("shed reason = %q, want fair", d.reason)
	}
	if d := a.admit("/run", "newcomer", time.Minute, 13, now); d.shed != nil {
		t.Fatalf("newcomer within share shed: %v", d.shed)
	}
}

func TestAdmissionDoomedShed(t *testing.T) {
	cfg := Config{QueueDepth: 64}.withDefaults()
	a := newAdmission(cfg)
	now := time.Now()

	// Cold start: nothing measured, so even a 1ms deadline admits — the
	// controller never sheds on a guess.
	if d := a.admit("/run", "", time.Millisecond, 1, now); d.shed != nil {
		t.Fatalf("cold-start admit with tiny deadline shed: %v", d.shed)
	}
	a.release("")

	// Teach the controller a 2s measured queue wait.
	for i := 0; i < 8; i++ {
		a.admit("/run", "", time.Minute, uint64(i), now)
	}
	for i := 0; i < 4; i++ {
		a.dequeued("", 2*time.Second, now.Add(time.Duration(i)*50*time.Millisecond))
	}
	// 4 still queued, measured wait 2s: a 10ms deadline is doomed — shed at
	// admission as a deadline failure (504), not a 429.
	d := a.admit("/run", "", 10*time.Millisecond, 20, now)
	if d.shed == nil || d.shed.Kind != KindDeadline {
		t.Fatalf("doomed admit = %+v, want KindDeadline shed", d)
	}
	// A patient request still admits.
	if d := a.admit("/run", "", time.Minute, 21, now); d.shed != nil {
		t.Fatalf("patient admit shed: %v", d.shed)
	}
}

// The drain-rate EWMA must track a step change in service rate: a server
// that drained 100 jobs/sec and drops to 10/sec should re-estimate within a
// bounded number of samples, because Retry-After and the doomed-shed verdict
// both run on it. Times are fabricated, so the samples are exact.
func TestAdmissionDrainRateTracksStepChange(t *testing.T) {
	cfg := Config{QueueDepth: 64}.withDefaults()
	a := newAdmission(cfg)
	now := time.Now()

	// Fast regime: a dequeue every 10ms is 100 jobs/sec.
	for i := 0; i < 40; i++ {
		a.admit("/run", "", time.Minute, uint64(i), now)
		now = now.Add(10 * time.Millisecond)
		a.dequeued("", time.Millisecond, now)
	}
	if _, rate, _ := a.snapshot(); rate < 90 || rate > 110 {
		t.Fatalf("fast-regime drain rate = %v, want ~100/sec", rate)
	}

	// Step: a dequeue every 100ms is 10 jobs/sec. With the 0.8/0.2 EWMA the
	// old regime's weight is 0.8^n after n samples — under 1% of the estimate
	// by sample 21, so 40 samples must land within 10% of the new rate.
	for i := 0; i < 40; i++ {
		a.admit("/run", "", time.Minute, uint64(100+i), now)
		now = now.Add(100 * time.Millisecond)
		a.dequeued("", time.Millisecond, now)
	}
	if _, rate, _ := a.snapshot(); rate < 9 || rate > 11 {
		t.Fatalf("post-step drain rate = %v, want ~10/sec", rate)
	}
}

// The doomed-shed verdict must flip when the measured queue wait steps up:
// the same 500ms-deadline request that admits under 1ms waits is shed at
// admission once dequeues report 2s waits — and the wait EWMA's 3/4 memory
// means one slow sample already moves the estimate past the deadline.
func TestAdmissionDoomedFlipsOnQueueWaitStep(t *testing.T) {
	cfg := Config{QueueDepth: 64, FairShareAt: 2}.withDefaults()
	a := newAdmission(cfg)
	now := time.Now()

	// Fast regime: 1ms measured waits, 1ms apart. Keep one job resident so
	// the doomed check (which needs a non-empty queue) is actually exercised.
	a.admit("/run", "resident", time.Minute, 0, now)
	for i := 0; i < 16; i++ {
		a.admit("/run", "", time.Minute, uint64(1+i), now)
		now = now.Add(time.Millisecond)
		a.dequeued("", time.Millisecond, now)
	}
	d := a.admit("/run", "", 500*time.Millisecond, 50, now)
	if d.shed != nil {
		t.Fatalf("500ms deadline shed under 1ms measured waits: %v", d.shed)
	}
	a.release("")

	// Step: dequeues now report 2s waits. qwait = (3*qwait + waited)/4, so
	// two samples take the estimate from ~1ms past 1.1s >> 500ms.
	for i := 0; i < 2; i++ {
		a.admit("/run", "", time.Minute, uint64(60+i), now)
		now = now.Add(time.Second)
		a.dequeued("", 2*time.Second, now)
	}
	d = a.admit("/run", "", 500*time.Millisecond, 70, now)
	if d.shed == nil || d.shed.Kind != KindDeadline || d.reason != "doomed" {
		t.Fatalf("post-step 500ms deadline = %+v, want doomed shed", d)
	}
	// A patient request still admits: the flip is deadline-relative, not a
	// blanket refusal.
	if d := a.admit("/run", "", time.Minute, 71, now); d.shed != nil {
		t.Fatalf("patient request shed after wait step: %v", d.shed)
	}
}

func TestAdmissionDegradesSearchUnderSaturation(t *testing.T) {
	cfg := Config{QueueDepth: 4, FairShareAt: 2, DegradeAt: -1, DegradeKeep: 3}.withDefaults()
	a := newAdmission(cfg)
	now := time.Now()
	// DegradeAt < 0 forces saturation: /search degrades immediately,
	// other endpoints never do.
	if d := a.admit("/search", "", time.Minute, 1, now); d.shed != nil || d.budget != 3 {
		t.Fatalf("/search under saturation = %+v, want budget 3", d)
	}
	if d := a.admit("/run", "", time.Minute, 2, now); d.shed != nil || d.budget != 0 {
		t.Fatalf("/run under saturation = %+v, want full fidelity", d)
	}
}
