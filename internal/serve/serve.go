package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"runtime/debug"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"procdecomp/internal/adapt"
	"procdecomp/internal/machine"
	"procdecomp/internal/obs"
)

// Config tunes the server. The zero value takes the defaults below.
type Config struct {
	// QueueDepth bounds the admission queue (default 64). A request arriving
	// at a full queue is shed immediately with 429 + Retry-After rather than
	// queued without bound.
	QueueDepth int
	// Workers is the fixed evaluation pool size (default 4).
	Workers int
	// DefaultDeadline applies when a request carries no TimeoutMS (default
	// 30s); MaxDeadline clamps what a request may ask for (default 2m). The
	// deadline covers queue wait plus evaluation and propagates into the
	// simulated machine, which aborts at its next cancellation point.
	DefaultDeadline time.Duration
	MaxDeadline     time.Duration
	// DrainTimeout bounds graceful shutdown: in-flight work past it is
	// canceled (default 10s).
	DrainTimeout time.Duration
	// Retries is how many times a panicking evaluation is retried before the
	// request fails with 500 (default 2). Only panics retry — a compile or
	// run error is deterministic and retrying it would waste the pool.
	Retries int
	// RetryBase/RetryMax shape the capped exponential backoff between panic
	// retries (defaults 10ms, 250ms).
	RetryBase time.Duration
	RetryMax  time.Duration
	// CacheDir, when set, enables the persistent result cache and the
	// durable async-job journal (jobs.journal in the same directory). With
	// no CacheDir, /jobs still works but jobs do not survive a restart.
	CacheDir string
	// CacheMaxBytes caps the disk result cache's installed footprint;
	// least-recently-used entries are evicted past it (0 = unbounded).
	CacheMaxBytes int64
	// JournalCompactEvery folds the job journal (and the adapt decision
	// journal) in place after that many runtime appends, on top of the
	// always-on open-time compaction (default 4096; negative disables
	// runtime folding).
	JournalCompactEvery int
	// Adapt configures the online workload-shift controller. When enabled,
	// completed /run requests feed per-scenario workload profiles, a
	// sustained shift triggers a bounded background re-decomposition search,
	// and the winning mapping is applied to subsequent /run requests.
	Adapt adapt.Config
	// FairShareAt is the queue occupancy fraction at which per-tenant
	// fair-share caps engage (default 0.5): past it, no tenant (X-Tenant
	// header; empty means the anonymous tenant) may hold more than an equal
	// split of the queue. Set >= 1 to disable.
	FairShareAt float64
	// DegradeAt is the smoothed queue occupancy past which /search requests
	// are admitted with a reduced candidate budget instead of full fidelity
	// (default 0.75). Set >= 1 to disable; a negative value forces
	// degradation always (a test knob).
	DegradeAt float64
	// DegradeKeep is the degraded /search candidate budget (default 4): the
	// number of statically ranked candidates replayed, with a single
	// machine confirmation.
	DegradeKeep int
	// AdmitSeed seeds the deterministic Retry-After jitter (default 1).
	AdmitSeed uint64
	// PanicEvery is a chaos knob: every Nth evaluation panics on its first
	// attempt (0 = off). It exists so the smoke test and the soak can drive
	// the panic-isolation path deterministically.
	PanicEvery int
	// LogHandler, when set, receives every structured log record in addition
	// to the in-memory ring behind /logz (nil = ring only, no external
	// output — the right default for tests).
	LogHandler slog.Handler
	// LogLines caps the in-memory structured-log ring (default 4096).
	LogLines int
	// gate, when non-nil, is called by a worker after dequeuing a job and
	// before evaluating it — a test seam: the soak holds workers here to
	// fill the queue deterministically. Set before New; never mutated after.
	gate func(j *job)
}

func (c Config) withDefaults() Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = 30 * time.Second
	}
	if c.MaxDeadline <= 0 {
		c.MaxDeadline = 2 * time.Minute
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 10 * time.Second
	}
	if c.Retries < 0 {
		c.Retries = 0
	} else if c.Retries == 0 {
		c.Retries = 2
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 10 * time.Millisecond
	}
	if c.RetryMax <= 0 {
		c.RetryMax = 250 * time.Millisecond
	}
	if c.FairShareAt == 0 {
		c.FairShareAt = 0.5
	}
	if c.DegradeAt == 0 {
		c.DegradeAt = 0.75
	}
	if c.DegradeKeep <= 0 {
		c.DegradeKeep = 4
	}
	if c.AdmitSeed == 0 {
		c.AdmitSeed = 1
	}
	switch {
	case c.JournalCompactEvery == 0:
		c.JournalCompactEvery = 4096
	case c.JournalCompactEvery < 0:
		c.JournalCompactEvery = 0
	}
	if c.LogLines <= 0 {
		c.LogLines = 4096
	}
	return c
}

// ErrKind classifies a failed job; it maps one-to-one onto an HTTP status.
type ErrKind string

const (
	KindInvalid  ErrKind = "invalid"  // 400: rejected before any work
	KindShed     ErrKind = "shed"     // 429: queue full or tenant over fair share
	KindDraining ErrKind = "draining" // 503: server is shutting down
	KindDeadline ErrKind = "deadline" // 504: deadline exceeded (or doomed at admission)
	KindCanceled ErrKind = "canceled" // 503: aborted by server shutdown
	KindFailed   ErrKind = "failed"   // 422: the program itself failed
	KindPanic    ErrKind = "panic"    // 500: evaluation panicked, retries exhausted
	KindInternal ErrKind = "internal" // 500: the server could not honor its own contract
	KindNotFound ErrKind = "notfound" // 404: no such job
)

// JobError is the typed failure of one request.
type JobError struct {
	Kind    ErrKind
	Message string
	// Attempts counts evaluation attempts, >1 only after panic retries.
	Attempts int `json:",omitempty"`
	// RetryAfter, when positive, is the derived Retry-After in seconds
	// (shed and draining replies).
	RetryAfter int `json:",omitempty"`
	// cause, when set, overrides the metric cause label derived from Kind —
	// the admission controller distinguishes fair-share from queue-full
	// sheds and doomed from ran-out deadlines this way.
	cause string
}

// causeLabel is the error's cause label on pdserve_responses_total; the
// explicit override wins, otherwise the kind implies it.
func (e *JobError) causeLabel() string {
	if e.cause != "" {
		return e.cause
	}
	switch e.Kind {
	case KindInvalid:
		return "invalid"
	case KindShed:
		return "queue_full"
	case KindDraining:
		return "draining"
	case KindDeadline:
		return "deadline"
	case KindCanceled:
		return "shutdown"
	case KindFailed:
		return "program"
	case KindPanic:
		return "panic"
	case KindNotFound:
		return "notfound"
	default:
		return "internal"
	}
}

func (e *JobError) Error() string {
	return fmt.Sprintf("serve: %s: %s", e.Kind, e.Message)
}

// HTTPStatus maps the failure kind to its response code.
func (e *JobError) HTTPStatus() int {
	switch e.Kind {
	case KindInvalid:
		return http.StatusBadRequest
	case KindShed:
		return http.StatusTooManyRequests
	case KindDraining, KindCanceled:
		return http.StatusServiceUnavailable
	case KindDeadline:
		return http.StatusGatewayTimeout
	case KindFailed:
		return http.StatusUnprocessableEntity
	case KindNotFound:
		return http.StatusNotFound
	default:
		return http.StatusInternalServerError
	}
}

// job is one admitted request moving through the queue and pool.
type job struct {
	seq      uint64
	endpoint string
	req      Request
	key      string
	tenant   string
	// budget, when positive, is the degraded /search candidate budget
	// admission assigned under saturation.
	budget int
	// async links the queue job to its durable /jobs record (nil for the
	// synchronous endpoints).
	async *asyncJob
	// mapping, when set, is the adaptation controller's preferred
	// decomposition at admission time: the evaluation retargets the
	// program's dist declaration to it, and the content key is qualified by
	// it so results under different preferences never collide.
	mapping string
	// recovered marks a job re-enqueued from the journal on restart; it
	// bypasses admission accounting (it was admitted in a previous life).
	recovered  bool
	enqueuedAt time.Time
	ctx        context.Context
	cancel     context.CancelFunc
	done       chan struct{} // closed exactly once, when result/jerr are set
	result     []byte
	jerr       *JobError
	// rid is the originating request's ID, stamped on every event and log
	// line the job produces.
	rid string
	// spans, when non-nil, records the job's wall-time service spans for
	// trace stitching; wantTrace additionally captures the machine's
	// virtual-time Chrome trace into chrome during evaluation.
	spans     *obs.SpanRecorder
	wantTrace bool
	chrome    []byte
	// panicked marks that the chaos knob already fired for this job, so a
	// retried attempt succeeds instead of panicking forever.
	panicked bool
}

// JobStats counts the async-job lifecycle.
type JobStats struct {
	Accepted  int64 // jobs acknowledged via POST /jobs
	Recovered int64 // journal jobs found on restart (any state)
	Requeued  int64 // recovered jobs re-enqueued to run again
	Done      int64
	Failed    int64
}

// QueueStats snapshots the adaptive admission controller.
type QueueStats struct {
	Depth           int
	Queued          int
	DrainRatePerSec float64
	EstWaitMS       int64
}

// Stats is a point-in-time snapshot of the server's counters.
type Stats struct {
	Accepted  int64
	Shed      int64 // queue-full and fair-share sheds (429)
	FairShed  int64 // the fair-share subset of Shed
	Doomed    int64 // deadline-doomed requests shed at admission (504)
	Degraded  int64 // /search evaluations run with a reduced candidate budget
	Rejected  int64 // refused while draining
	Completed int64
	Failed    int64
	Panics    int64
	Retries   int64
	Jobs      JobStats
	Queue     QueueStats
	Cache     CacheStats
	Journal   JournalStats
	Adapt     adapt.Stats
}

// JournalStats counts compaction rewrites per journal and trigger — the
// independent ledger behind pdserve_journal_compactions_total.
type JournalStats struct {
	OpenCompactions           int64 // job journal folds at open
	ThresholdCompactions      int64 // job journal folds at the append threshold
	AdaptOpenCompactions      int64 // decision journal folds at open
	AdaptThresholdCompactions int64 // decision journal folds at the threshold
}

// Server is the fault-tolerant front of the toolchain. Create with New,
// expose Handler on an http.Server, stop with Shutdown.
type Server struct {
	cfg     Config
	cache   *DiskCache
	adm     *admission
	journal *journal

	// The adaptation plane: the shift controller, its durable decision
	// journal, and the in-memory decision list behind GET /adapt.
	adapt          *adapt.Controller
	adaptJournal   *decisionJournal
	adaptMu        sync.Mutex
	adaptDecisions []adapt.Decision
	adaptDecLines  []byte // NDJSON of this process's decisions, append-only

	// The observability plane: the metric catalog, the structured-log ring
	// behind /logz, and the logger every component writes through.
	m    *serverMetrics
	ring *obs.Ring
	log  *slog.Logger

	// ridSalt/ridSeq mint request IDs unique across restarts of one process
	// lineage (the salt is the start time).
	ridSalt     uint64
	ridSeq      atomic.Uint64
	busyWorkers atomic.Int64

	baseCtx context.Context
	abort   context.CancelFunc

	queue      chan *job
	workers    sync.WaitGroup
	admissions sync.WaitGroup // one count per job admitted and not yet finished

	mu       sync.Mutex
	draining bool
	shutdown sync.Once

	jobsMu sync.Mutex
	jobs   map[string]*asyncJob

	ready atomic.Bool // journal recovery complete; flips off while draining

	seq       atomic.Uint64
	accepted  atomic.Int64
	shed      atomic.Int64
	fairShed  atomic.Int64
	doomed    atomic.Int64
	degraded  atomic.Int64
	rejected  atomic.Int64
	completed atomic.Int64
	failed    atomic.Int64
	panics    atomic.Int64
	retries   atomic.Int64

	jobsAccepted  atomic.Int64
	jobsRecovered atomic.Int64
	jobsRequeued  atomic.Int64
	jobsDone      atomic.Int64
	jobsFailed    atomic.Int64

	compactOpen           atomic.Int64
	compactThreshold      atomic.Int64
	compactAdaptOpen      atomic.Int64
	compactAdaptThreshold atomic.Int64
}

// New starts a server: opens the cache and the job journal (if configured),
// recovers and re-enqueues journal jobs a previous process left unfinished,
// and launches the worker pool. The server reports ready (/readyz) only
// after recovery completes.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{cfg: cfg, adm: newAdmission(cfg), jobs: map[string]*asyncJob{}}
	s.m = newServerMetrics()
	s.ring = obs.NewRing(cfg.LogLines, cfg.LogHandler)
	s.log = slog.New(s.ring)
	s.ridSalt = uint64(time.Now().UnixNano())
	s.baseCtx, s.abort = context.WithCancel(context.Background())
	var recovered []*recoveredJob
	var restoredStates []adapt.State
	var restoredSeq uint64
	if cfg.CacheDir != "" {
		c, err := OpenDiskCacheLimit(cfg.CacheDir, cfg.CacheMaxBytes)
		if err != nil {
			return nil, err
		}
		// Observers attach before any traffic: the cache sees its first Get
		// during recovery below, the journal its first Append (and fsync)
		// once a handler runs, both after New returns.
		c.onOp = func(op string) { s.m.cacheOps.Inc(op) }
		s.cache = c
		j, jobs, maxSeq, err := openJournal(cfg.CacheDir, cfg.JournalCompactEvery)
		if err != nil {
			return nil, err
		}
		j.onFsync = func(d time.Duration) { s.m.journalFsync.Observe(d.Seconds()) }
		if j.compacted {
			s.compactOpen.Add(1)
			s.m.journalCompactions.Inc("open")
		}
		j.onCompact = func() {
			s.compactThreshold.Add(1)
			s.m.journalCompactions.Inc("threshold")
		}
		s.journal = j
		s.seq.Store(maxSeq)
		recovered = jobs
		if cfg.Adapt.Enabled {
			dj, states, seq, err := openDecisionJournal(cfg.CacheDir, cfg.JournalCompactEvery)
			if err != nil {
				return nil, err
			}
			if dj.compacted {
				s.compactAdaptOpen.Add(1)
				s.m.journalCompactions.Inc("adapt_open")
			}
			dj.onCompact = func() {
				s.compactAdaptThreshold.Add(1)
				s.m.journalCompactions.Inc("adapt_threshold")
			}
			s.adaptJournal = dj
			restoredStates, restoredSeq = states, seq
		}
	}
	if cfg.Adapt.Enabled {
		s.adapt = adapt.New(cfg.Adapt, restoredStates, restoredSeq,
			adapt.Hooks{Persist: s.persistDecision, Metric: s.adaptMetric})
	}
	// Size the queue for the admission depth plus every recovered re-run:
	// reserved submissions and the recovery sweep can then never block on
	// the channel, so admission decisions stay immediate.
	s.queue = make(chan *job, cfg.QueueDepth+len(recovered))
	s.recover(recovered)
	for i := 0; i < cfg.Workers; i++ {
		s.workers.Add(1)
		go s.worker()
	}
	s.ready.Store(true)
	return s, nil
}

// recover materializes journal jobs: terminal ones become served records
// (their results re-read from the cache), and accepted-but-unfinished ones
// — including "done" jobs whose cache entry did not survive — are
// re-enqueued and re-run. Acknowledged work is never silently lost.
func (s *Server) recover(jobs []*recoveredJob) {
	for _, rj := range jobs {
		s.jobsRecovered.Add(1)
		s.m.jobs.Inc("recovered")
		aj := &asyncJob{id: rj.id, rid: rj.rid, endpoint: rj.endpoint, tenant: rj.tenant,
			key: rj.key, budget: rj.budget, mapping: rj.mapping, req: rj.req, log: newEventLog()}
		s.publish(aj, Event{Type: "accepted"})
		s.jobs[aj.id] = aj
		switch {
		case rj.done:
			if _, ok := s.cacheGet(rj.key); ok {
				aj.complete(nil) // the result lives in the cache
				s.publish(aj, Event{Type: "done", Terminal: true})
				continue
			}
			// The journal says done but the result is gone (torn entry
			// quarantined, cache wiped): re-run rather than serve nothing.
		case rj.jerr != nil:
			aj.fail(rj.jerr)
			s.publish(aj, Event{Type: terminalType(rj.jerr), Terminal: true,
				Kind: rj.jerr.Kind, Message: rj.jerr.Message, Attempts: rj.jerr.Attempts})
			continue
		}
		s.jobsRequeued.Add(1)
		s.m.jobs.Inc("requeued")
		ctx, cancel := context.WithTimeout(s.baseCtx, s.cfg.DefaultDeadline)
		j := &job{
			seq: s.seq.Add(1), endpoint: rj.endpoint, req: rj.req, key: rj.key,
			tenant: rj.tenant, budget: rj.budget, mapping: rj.mapping, async: aj, recovered: true, rid: rj.rid,
			enqueuedAt: time.Now(), ctx: obs.WithRequestID(ctx, rj.rid), cancel: cancel,
			done: make(chan struct{}),
		}
		s.publish(aj, Event{Type: "requeued"})
		s.admissions.Add(1)
		s.queue <- j
	}
}

// Stats snapshots the counters.
func (s *Server) Stats() Stats {
	queued, rate, wait := s.adm.snapshot()
	return Stats{
		Accepted: s.accepted.Load(), Shed: s.shed.Load(),
		FairShed: s.fairShed.Load(), Doomed: s.doomed.Load(), Degraded: s.degraded.Load(),
		Rejected:  s.rejected.Load(),
		Completed: s.completed.Load(), Failed: s.failed.Load(),
		Panics: s.panics.Load(), Retries: s.retries.Load(),
		Jobs: JobStats{
			Accepted: s.jobsAccepted.Load(), Recovered: s.jobsRecovered.Load(),
			Requeued: s.jobsRequeued.Load(), Done: s.jobsDone.Load(), Failed: s.jobsFailed.Load(),
		},
		Queue: QueueStats{Depth: s.cfg.QueueDepth, Queued: queued,
			DrainRatePerSec: rate, EstWaitMS: wait},
		Cache: s.cache.Stats(),
		Journal: JournalStats{
			OpenCompactions:           s.compactOpen.Load(),
			ThresholdCompactions:      s.compactThreshold.Load(),
			AdaptOpenCompactions:      s.compactAdaptOpen.Load(),
			AdaptThresholdCompactions: s.compactAdaptThreshold.Load(),
		},
		Adapt: s.adaptStats(),
	}
}

// deadlineFor resolves a request's deadline budget.
func (s *Server) deadlineFor(req Request) time.Duration {
	deadline := s.cfg.DefaultDeadline
	if req.TimeoutMS > 0 {
		deadline = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if deadline > s.cfg.MaxDeadline {
		deadline = s.cfg.MaxDeadline
	}
	return deadline
}

// submitOpts carries the per-submission observability context: the request
// ID minted at ingress, whether to create the durable job record, and
// whether the caller wants a stitched trace (which forces evaluation — a
// cached answer has no machine timeline to stitch).
type submitOpts struct {
	rid   string
	async bool
	trace bool
	spans *obs.SpanRecorder
}

// submit admits one request through the adaptive controller: it refuses
// while draining; sheds on a full queue, on a tenant over its fair share
// under contention, or when the request's deadline is already doomed by the
// measured queue wait; under sustained saturation it admits /search with a
// degraded candidate budget instead of shedding. opts.async additionally
// creates the durable job record (journaled before the queue, so an
// acknowledged job survives a crash).
//
// Exactly one of the three returns is non-nil: a queued job, a cached body
// (a degraded-key cache hit needing no pool time), or the typed refusal.
func (s *Server) submit(endpoint string, req Request, tenant string, opts submitOpts) (*job, []byte, *JobError) {
	deadline := s.deadlineFor(req)

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.rejected.Add(1)
		s.m.sheds.Inc("draining")
		return nil, nil, &JobError{Kind: KindDraining, Message: "server is draining",
			RetryAfter: s.adm.retryAfter(s.seq.Add(1))}
	}
	s.admissions.Add(1)
	s.mu.Unlock()

	seq := s.seq.Add(1)
	dec := s.adm.admit(endpoint, tenant, deadline, seq, time.Now())
	if dec.shed != nil {
		s.admissions.Done()
		switch {
		case dec.shed.Kind == KindDeadline:
			s.doomed.Add(1)
			s.m.sheds.Inc("doomed")
		case dec.reason == "fair":
			s.fairShed.Add(1)
			s.shed.Add(1)
			s.m.sheds.Inc("fair_share")
			s.m.fairSheds.Inc(tenant)
		default:
			s.shed.Add(1)
			s.m.sheds.Inc("queue_full")
		}
		s.log.LogAttrs(obs.WithRequestID(context.Background(), opts.rid), slog.LevelWarn,
			"shed", slog.String("reason", dec.shed.causeLabel()), slog.String("tenant", tenant))
		return nil, nil, dec.shed
	}

	mapping := s.preferredMapping(endpoint, req)
	key := contentKey(endpoint, req, dec.budget, mapping)
	if dec.budget > 0 {
		// A saturated server may already hold the degraded answer; serving
		// it costs no pool time, so give the slot back. A traced request
		// skips the shortcut: the trace needs a live evaluation.
		if !opts.trace {
			if body, ok := s.cacheGet(key); ok {
				s.adm.release(tenant)
				s.admissions.Done()
				return nil, body, nil
			}
		}
		s.degraded.Add(1)
		s.m.degraded.Inc()
	}

	ctx, cancel := context.WithTimeout(s.baseCtx, deadline)
	j := &job{
		seq: seq, endpoint: endpoint, req: req, key: key, tenant: tenant,
		budget: dec.budget, mapping: mapping, enqueuedAt: time.Now(), rid: opts.rid, spans: opts.spans,
		wantTrace: opts.trace,
		ctx:       obs.WithRequestID(ctx, opts.rid), cancel: cancel, done: make(chan struct{}),
	}
	if opts.async {
		aj := &asyncJob{id: jobID(seq), rid: opts.rid, endpoint: endpoint, tenant: tenant,
			key: key, budget: dec.budget, mapping: mapping, req: req, spans: opts.spans, log: newEventLog()}
		if err := s.journalAppend(j.ctx, "accept", journalRec{Op: "accepted", ID: aj.id,
			RID: opts.rid, Endpoint: endpoint, Tenant: tenant, Key: key,
			Budget: dec.budget, Mapping: mapping, Req: &req}); err != nil {
			cancel()
			s.adm.release(tenant)
			s.admissions.Done()
			return nil, nil, &JobError{Kind: KindInternal,
				Message: "job journal write failed: " + err.Error()}
		}
		s.jobsMu.Lock()
		s.jobs[aj.id] = aj
		s.jobsMu.Unlock()
		s.jobsAccepted.Add(1)
		s.m.jobs.Inc("accepted")
		j.async = aj
		s.publish(aj, Event{Type: "accepted"})
	}
	s.jemit(j, Event{Type: "queued", QueuePos: dec.pos})
	if dec.budget > 0 {
		s.jemit(j, Event{Type: "degraded", Budget: dec.budget})
	}
	s.accepted.Add(1)
	s.m.admitted.Inc()
	// The reservation guarantees a slot: at most QueueDepth reservations are
	// outstanding and the channel holds QueueDepth beyond the recovery jobs.
	s.queue <- j
	return j, nil, nil
}

func (s *Server) worker() {
	defer s.workers.Done()
	for j := range s.queue {
		now := time.Now()
		if !j.recovered {
			waited := now.Sub(j.enqueuedAt)
			s.adm.dequeued(j.tenant, waited, now)
			s.m.queueWait.Observe(waited.Seconds())
		}
		if j.spans != nil {
			j.spans.Add("queued", "service", j.enqueuedAt, now, nil)
		}
		if j.async != nil {
			// A failed running marker costs nothing durable — the journal's
			// recovery re-runs unfinished jobs with or without it.
			s.journalAppend(j.ctx, "running", journalRec{Op: "running", ID: j.async.id})
		}
		s.busyWorkers.Add(1)
		s.runJob(j)
		s.busyWorkers.Add(-1)
		s.m.busySeconds.Add(time.Since(now).Seconds())
		j.cancel()
		s.admissions.Done()
	}
}

// terminalType maps a failure to its stream event type: shutdown-flavored
// failures stream as "canceled", everything else as "failed".
func terminalType(jerr *JobError) string {
	if jerr.Kind == KindCanceled || jerr.Kind == KindDraining {
		return "canceled"
	}
	return "failed"
}

// finalize settles a finished job's durable record and stream: the terminal
// journal record, the async result/error, and the guaranteed terminal
// event. It runs before j.done closes, on every exit path of runJob.
func (s *Server) finalize(j *job) {
	aj := j.async
	if aj == nil {
		return
	}
	if j.jerr == nil {
		// A dropped terminal record is re-resolved on restart by re-running
		// the job; logging it beats silently losing the signal.
		s.journalAppend(j.ctx, "finalize", journalRec{Op: "done", ID: aj.id, Key: j.key})
		aj.setChrome(j.chrome)
		aj.complete(j.result)
		s.jobsDone.Add(1)
		s.m.jobs.Inc("done")
		s.publish(aj, Event{Type: "done", Terminal: true})
		return
	}
	s.journalAppend(j.ctx, "finalize", journalRec{Op: "failed", ID: aj.id, Kind: j.jerr.Kind,
		Message: j.jerr.Message, Attempts: j.jerr.Attempts})
	aj.setChrome(j.chrome)
	aj.fail(j.jerr)
	s.jobsFailed.Add(1)
	s.m.jobs.Inc("failed")
	s.publish(aj, Event{Type: terminalType(j.jerr), Terminal: true,
		Kind: j.jerr.Kind, Message: j.jerr.Message, Attempts: j.jerr.Attempts})
}

// runJob evaluates one job with panic isolation: a panicking attempt is
// recorded, backed off, and retried up to cfg.Retries times; every exit path
// closes j.done exactly once — after finalize has journaled the outcome and
// published the terminal event — so no caller is ever left waiting, no
// queue slot is ever wedged, and no event stream is left unterminated.
func (s *Server) runJob(j *job) {
	defer close(j.done)
	defer s.finalize(j)
	if s.cfg.gate != nil {
		s.cfg.gate(j)
	}
	for attempt := 1; ; attempt++ {
		if err := j.ctx.Err(); err != nil {
			j.jerr = s.ctxError(err)
			j.jerr.Attempts = attempt - 1
			s.failed.Add(1)
			s.m.failed.Inc()
			return
		}
		s.jemit(j, Event{Type: "running", Attempt: attempt})
		t0 := time.Now()
		out, err := s.attempt(j)
		if j.spans != nil {
			name := fmt.Sprintf("attempt %d", attempt)
			args := map[string]string{"endpoint": j.endpoint}
			if err != nil {
				args["error"] = err.Error()
			}
			j.spans.Add(name, "service", t0, time.Now(), args)
		}
		if err == nil {
			j.result = out
			s.completed.Add(1)
			s.m.completed.Inc()
			if s.cache != nil {
				s.cache.Put(j.key, out)
			}
			if !j.recovered {
				// Recovered jobs were observed in a previous life; feeding
				// them again would double-count the workload profile.
				s.adaptObserve(j.endpoint, j.req, out)
			}
			return
		}
		var pe *panicError
		if errors.As(err, &pe) {
			s.panics.Add(1)
			s.m.panics.Inc()
			s.log.LogAttrs(j.ctx, slog.LevelError, "panic isolated",
				slog.String("job", fmt.Sprintf("%d", j.seq)), slog.Int("attempt", attempt))
			if attempt <= s.cfg.Retries {
				s.retries.Add(1)
				s.m.retries.Inc()
				s.backoff(j.ctx, attempt)
				continue
			}
			j.jerr = &JobError{Kind: KindPanic, Message: pe.Error(), Attempts: attempt}
			s.failed.Add(1)
			s.m.failed.Inc()
			return
		}
		j.jerr = s.classify(j, err)
		j.jerr.Attempts = attempt
		s.failed.Add(1)
		s.m.failed.Inc()
		return
	}
}

// attempt runs one evaluation under a recover, converting a panic — from the
// chaos knob or from a genuine bug in a pipeline — into a *panicError value.
func (s *Server) attempt(j *job) (out []byte, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &panicError{val: r, stack: string(debug.Stack())}
		}
	}()
	if n := s.cfg.PanicEvery; n > 0 && j.seq%uint64(n) == 0 && !j.panicked {
		j.panicked = true
		panic(fmt.Sprintf("chaos: injected panic on job %d", j.seq))
	}
	var hooks *evalHooks
	if j.async != nil || j.budget > 0 || j.wantTrace || j.mapping != "" {
		hooks = &evalHooks{budget: j.budget, mapping: j.mapping}
		if j.async != nil {
			hooks.emit = func(ev Event) { s.jemit(j, ev) }
		}
		if j.wantTrace {
			hooks.wantTrace = true
			hooks.chrome = func(b []byte) { j.chrome = b }
		}
	}
	return evaluate(j.ctx, j.endpoint, j.req, hooks)
}

type panicError struct {
	val   any
	stack string
}

func (e *panicError) Error() string { return fmt.Sprintf("evaluation panicked: %v", e.val) }

// backoff sleeps the capped exponential delay for the given attempt, waking
// early if the job's deadline fires.
func (s *Server) backoff(ctx context.Context, attempt int) {
	d := s.cfg.RetryBase << (attempt - 1)
	if d > s.cfg.RetryMax {
		d = s.cfg.RetryMax
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

// ctxError distinguishes a request that ran out its own deadline from one
// aborted by server shutdown.
func (s *Server) ctxError(err error) *JobError {
	if errors.Is(err, context.DeadlineExceeded) {
		return &JobError{Kind: KindDeadline, Message: "request deadline exceeded"}
	}
	return &JobError{Kind: KindCanceled, Message: "server shut down before the request finished"}
}

// classify types an evaluation error.
func (s *Server) classify(j *job, err error) *JobError {
	if errors.Is(err, ErrInvalid) {
		return &JobError{Kind: KindInvalid, Message: err.Error()}
	}
	// A run the machine aborted on our cancellation signal is a deadline or
	// shutdown outcome, not a program failure.
	if errors.Is(err, machine.ErrCanceled) || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		if ctxErr := j.ctx.Err(); ctxErr != nil {
			return s.ctxError(ctxErr)
		}
	}
	return &JobError{Kind: KindFailed, Message: err.Error()}
}

// Shutdown drains gracefully: new work is refused at the door, in-flight and
// queued jobs get up to the drain timeout (bounded further by ctx) to
// finish, stragglers are canceled, and the pool exits. Every async job
// reaches a terminal state — and its event stream a terminal event — before
// Shutdown returns, which is what lets the caller close the HTTP listener
// afterwards without cutting a stream short. Safe to call once; later calls
// return immediately.
func (s *Server) Shutdown(ctx context.Context) error {
	var err error
	s.shutdown.Do(func() {
		s.ready.Store(false)
		s.mu.Lock()
		s.draining = true
		s.mu.Unlock()

		drained := make(chan struct{})
		go func() {
			s.admissions.Wait()
			close(drained)
		}()
		t := time.NewTimer(s.cfg.DrainTimeout)
		defer t.Stop()
		select {
		case <-drained:
		case <-t.C:
			err = errors.New("serve: drain timeout; canceling in-flight work")
			s.abort()
			<-drained
		case <-ctx.Done():
			err = fmt.Errorf("serve: shutdown: %w", ctx.Err())
			s.abort()
			<-drained
		}
		close(s.queue)
		s.workers.Wait()
		s.abort()
		// The controller closes after the pool has drained (so every finished
		// job's observation landed) and before the decision journal: Close
		// cancels an in-flight search and settles queued triggers as
		// "canceled" decisions, which must still reach disk.
		if s.adapt != nil {
			s.adapt.Close()
		}
		s.adaptJournal.Close()
		s.journal.Close()
	})
	return err
}

// Close shuts down immediately, canceling everything in flight.
func (s *Server) Close() {
	s.abort()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s.Shutdown(ctx)
}

// crash abandons the server the way kill -9 would — the test seam behind
// the restart-recovery proof. The journal stops accepting writes without a
// flush and in-flight work is canceled; nothing is drained, recorded, or
// acknowledged past this point.
func (s *Server) crash() {
	if s.journal != nil {
		s.journal.crash()
	}
	s.adaptJournal.crash()
	s.abort()
}

// Handler routes the service's endpoints, every one wrapped in the
// instrument middleware (request IDs, structured log lines, edge metrics).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	for _, ep := range endpoints {
		ep := ep
		mux.HandleFunc("POST "+ep, s.instrument(ep,
			func(w http.ResponseWriter, r *http.Request) { s.handle(w, r, ep) }))
	}
	mux.HandleFunc("POST /jobs", s.instrument("/jobs", s.handleJobSubmit))
	mux.HandleFunc("GET /jobs/{id}", s.instrument("/jobs/{id}", s.handleJobGet))
	mux.HandleFunc("GET /jobs/{id}/events", s.instrument("/jobs/{id}/events", s.handleJobEvents))
	mux.HandleFunc("GET /jobs/{id}/trace", s.instrument("/jobs/{id}/trace", s.handleJobTrace))
	mux.HandleFunc("GET /adapt", s.instrument("/adapt", s.handleAdapt))
	mux.HandleFunc("GET /adapt/journal", s.instrument("/adapt/journal", s.handleAdaptJournal))
	mux.HandleFunc("GET /metrics", s.instrument("/metrics", s.handleMetrics))
	mux.HandleFunc("GET /logz", s.instrument("/logz", s.handleLogz))
	mux.HandleFunc("GET /healthz", s.instrument("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	}))
	mux.HandleFunc("GET /readyz", s.instrument("/readyz", func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		draining := s.draining
		s.mu.Unlock()
		switch {
		case draining:
			http.Error(w, "draining", http.StatusServiceUnavailable)
		case !s.ready.Load():
			http.Error(w, "recovering journal", http.StatusServiceUnavailable)
		default:
			fmt.Fprintln(w, "ready")
		}
	}))
	mux.HandleFunc("GET /stats", s.instrument("/stats", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(s.Stats())
	}))
	return mux
}

const maxBodyBytes = 4 << 20

// tenantOf resolves the request's fair-share account.
func tenantOf(r *http.Request) string {
	return r.Header.Get("X-Tenant")
}

func (s *Server) handle(w http.ResponseWriter, r *http.Request, endpoint string) {
	var req Request
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.writeError(w, &JobError{Kind: KindInvalid, Message: "bad request body: " + err.Error()})
		return
	}
	req, err := normalize(endpoint, req)
	if err != nil {
		s.writeError(w, &JobError{Kind: KindInvalid, Message: err.Error()})
		return
	}

	// ?trace=1 asks for the stitched wall+virtual-time Chrome trace of this
	// evaluation instead of its result body. Tracing forces a live
	// evaluation — a cache hit has no timeline — so the fast paths below
	// are skipped (the result still lands in the cache as usual).
	wantTrace := r.URL.Query().Get("trace") == "1"
	rid := obs.RequestID(r.Context())
	var spans *obs.SpanRecorder
	if wantTrace {
		spans = obs.NewSpanRecorder()
	}

	// Cache hits bypass admission entirely: they cost no pool time, so a
	// saturated queue must not shed them. Full-fidelity entries are checked
	// first — a hit beats a degraded recompute. The key carries the current
	// mapping preference, so a re-decomposition switch never re-serves the
	// old decomposition's bytes.
	mapping := s.preferredMapping(endpoint, req)
	if !wantTrace {
		if body, ok := s.cacheGet(contentKey(endpoint, req, 0, mapping)); ok {
			// A hit is still one observed request: the workload profile must
			// advance whether or not the pool ran.
			s.adaptObserve(endpoint, req, body)
			setMappingHeader(w, mapping)
			s.writeResult(w, body, "hit", 0)
			return
		}
	}

	j, cached, jerr := s.submit(endpoint, req, tenantOf(r), submitOpts{rid: rid, trace: wantTrace, spans: spans})
	if jerr != nil {
		s.writeError(w, jerr)
		return
	}
	if cached != nil {
		s.writeResult(w, cached, "hit", s.cfg.DegradeKeep)
		return
	}
	select {
	case <-j.done:
	case <-r.Context().Done():
		// The client went away. The job finishes in the background (its
		// result still lands in the cache); this handler just leaves.
		return
	}
	if j.jerr != nil {
		s.writeError(w, j.jerr)
		return
	}
	setMappingHeader(w, j.mapping)
	if wantTrace {
		doc, err := obs.StitchChrome(rid, spans.Epoch(), spans.Spans(), j.chrome)
		if err != nil {
			s.writeError(w, &JobError{Kind: KindInternal, Message: "trace stitch failed: " + err.Error()})
			return
		}
		s.writeResult(w, doc, "miss", j.budget)
		return
	}
	s.writeResult(w, j.result, "miss", j.budget)
}

func (s *Server) writeResult(w http.ResponseWriter, body []byte, cache string, budget int) {
	s.m.responses.Inc("200", "ok")
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Cache", cache)
	if budget > 0 {
		w.Header().Set("X-Degraded", strconv.Itoa(budget))
	}
	w.WriteHeader(http.StatusOK)
	w.Write(body)
}

func (s *Server) writeError(w http.ResponseWriter, jerr *JobError) {
	s.m.responses.Inc(strconv.Itoa(jerr.HTTPStatus()), jerr.causeLabel())
	w.Header().Set("Content-Type", "application/json")
	switch {
	case jerr.RetryAfter > 0:
		w.Header().Set("Retry-After", strconv.Itoa(jerr.RetryAfter))
	case jerr.Kind == KindShed:
		w.Header().Set("Retry-After", "1")
	case jerr.Kind == KindDraining, jerr.Kind == KindCanceled:
		w.Header().Set("Retry-After", "5")
	}
	w.WriteHeader(jerr.HTTPStatus())
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(jerr)
}
