package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"procdecomp/internal/machine"
)

// Config tunes the server. The zero value takes the defaults below.
type Config struct {
	// QueueDepth bounds the admission queue (default 64). A request arriving
	// at a full queue is shed immediately with 429 + Retry-After rather than
	// queued without bound.
	QueueDepth int
	// Workers is the fixed evaluation pool size (default 4).
	Workers int
	// DefaultDeadline applies when a request carries no TimeoutMS (default
	// 30s); MaxDeadline clamps what a request may ask for (default 2m). The
	// deadline covers queue wait plus evaluation and propagates into the
	// simulated machine, which aborts at its next cancellation point.
	DefaultDeadline time.Duration
	MaxDeadline     time.Duration
	// DrainTimeout bounds graceful shutdown: in-flight work past it is
	// canceled (default 10s).
	DrainTimeout time.Duration
	// Retries is how many times a panicking evaluation is retried before the
	// request fails with 500 (default 2). Only panics retry — a compile or
	// run error is deterministic and retrying it would waste the pool.
	Retries int
	// RetryBase/RetryMax shape the capped exponential backoff between panic
	// retries (defaults 10ms, 250ms).
	RetryBase time.Duration
	RetryMax  time.Duration
	// CacheDir, when set, enables the persistent result cache.
	CacheDir string
	// PanicEvery is a chaos knob: every Nth evaluation panics on its first
	// attempt (0 = off). It exists so the smoke test and the soak can drive
	// the panic-isolation path deterministically.
	PanicEvery int
	// gate, when non-nil, is called by a worker after dequeuing a job and
	// before evaluating it — a test seam: the soak holds workers here to
	// fill the queue deterministically. Set before New; never mutated after.
	gate func(j *job)
}

func (c Config) withDefaults() Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = 30 * time.Second
	}
	if c.MaxDeadline <= 0 {
		c.MaxDeadline = 2 * time.Minute
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 10 * time.Second
	}
	if c.Retries < 0 {
		c.Retries = 0
	} else if c.Retries == 0 {
		c.Retries = 2
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 10 * time.Millisecond
	}
	if c.RetryMax <= 0 {
		c.RetryMax = 250 * time.Millisecond
	}
	return c
}

// ErrKind classifies a failed job; it maps one-to-one onto an HTTP status.
type ErrKind string

const (
	KindInvalid  ErrKind = "invalid"  // 400: rejected before any work
	KindShed     ErrKind = "shed"     // 429: admission queue full
	KindDraining ErrKind = "draining" // 503: server is shutting down
	KindDeadline ErrKind = "deadline" // 504: request deadline exceeded
	KindCanceled ErrKind = "canceled" // 503: aborted by server shutdown
	KindFailed   ErrKind = "failed"   // 422: the program itself failed
	KindPanic    ErrKind = "panic"    // 500: evaluation panicked, retries exhausted
)

// JobError is the typed failure of one request.
type JobError struct {
	Kind    ErrKind
	Message string
	// Attempts counts evaluation attempts, >1 only after panic retries.
	Attempts int `json:",omitempty"`
}

func (e *JobError) Error() string {
	return fmt.Sprintf("serve: %s: %s", e.Kind, e.Message)
}

// HTTPStatus maps the failure kind to its response code.
func (e *JobError) HTTPStatus() int {
	switch e.Kind {
	case KindInvalid:
		return http.StatusBadRequest
	case KindShed:
		return http.StatusTooManyRequests
	case KindDraining, KindCanceled:
		return http.StatusServiceUnavailable
	case KindDeadline:
		return http.StatusGatewayTimeout
	case KindFailed:
		return http.StatusUnprocessableEntity
	default:
		return http.StatusInternalServerError
	}
}

// job is one admitted request moving through the queue and pool.
type job struct {
	seq      uint64
	endpoint string
	req      Request
	key      string
	ctx      context.Context
	cancel   context.CancelFunc
	done     chan struct{} // closed exactly once, when result/jerr are set
	result   []byte
	jerr     *JobError
	// panicked marks that the chaos knob already fired for this job, so a
	// retried attempt succeeds instead of panicking forever.
	panicked bool
}

// Stats is a point-in-time snapshot of the server's counters.
type Stats struct {
	Accepted  int64
	Shed      int64
	Rejected  int64 // refused while draining
	Completed int64
	Failed    int64
	Panics    int64
	Retries   int64
	Cache     CacheStats
}

// Server is the fault-tolerant front of the toolchain. Create with New,
// expose Handler on an http.Server, stop with Shutdown.
type Server struct {
	cfg   Config
	cache *DiskCache

	baseCtx context.Context
	abort   context.CancelFunc

	queue      chan *job
	workers    sync.WaitGroup
	admissions sync.WaitGroup // one count per job admitted and not yet finished

	mu       sync.Mutex
	draining bool
	shutdown sync.Once

	seq       atomic.Uint64
	accepted  atomic.Int64
	shed      atomic.Int64
	rejected  atomic.Int64
	completed atomic.Int64
	failed    atomic.Int64
	panics    atomic.Int64
	retries   atomic.Int64
}

// New starts a server: opens the cache (if configured) and launches the
// worker pool.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{cfg: cfg, queue: make(chan *job, cfg.QueueDepth)}
	s.baseCtx, s.abort = context.WithCancel(context.Background())
	if cfg.CacheDir != "" {
		c, err := OpenDiskCache(cfg.CacheDir)
		if err != nil {
			return nil, err
		}
		s.cache = c
	}
	for i := 0; i < cfg.Workers; i++ {
		s.workers.Add(1)
		go s.worker()
	}
	return s, nil
}

// Stats snapshots the counters.
func (s *Server) Stats() Stats {
	return Stats{
		Accepted: s.accepted.Load(), Shed: s.shed.Load(), Rejected: s.rejected.Load(),
		Completed: s.completed.Load(), Failed: s.failed.Load(),
		Panics: s.panics.Load(), Retries: s.retries.Load(),
		Cache: s.cache.Stats(),
	}
}

// submit admits one request: it refuses while draining, sheds on a full
// queue, and otherwise enqueues a job whose done channel the caller may wait
// on. Admission and the draining flag are checked under one lock, so no job
// can slip in after Shutdown has begun counting stragglers.
func (s *Server) submit(endpoint string, req Request, key string) (*job, *JobError) {
	deadline := s.cfg.DefaultDeadline
	if req.TimeoutMS > 0 {
		deadline = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if deadline > s.cfg.MaxDeadline {
		deadline = s.cfg.MaxDeadline
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.rejected.Add(1)
		return nil, &JobError{Kind: KindDraining, Message: "server is draining"}
	}
	s.admissions.Add(1)
	s.mu.Unlock()

	ctx, cancel := context.WithTimeout(s.baseCtx, deadline)
	j := &job{
		seq: s.seq.Add(1), endpoint: endpoint, req: req, key: key,
		ctx: ctx, cancel: cancel, done: make(chan struct{}),
	}
	select {
	case s.queue <- j:
		s.accepted.Add(1)
		return j, nil
	default:
		cancel()
		s.admissions.Done()
		s.shed.Add(1)
		return nil, &JobError{Kind: KindShed, Message: "admission queue full"}
	}
}

func (s *Server) worker() {
	defer s.workers.Done()
	for j := range s.queue {
		s.runJob(j)
		j.cancel()
		s.admissions.Done()
	}
}

// runJob evaluates one job with panic isolation: a panicking attempt is
// recorded, backed off, and retried up to cfg.Retries times; every exit path
// closes j.done exactly once, so no caller is ever left waiting and no queue
// slot is ever wedged.
func (s *Server) runJob(j *job) {
	defer close(j.done)
	if s.cfg.gate != nil {
		s.cfg.gate(j)
	}
	for attempt := 1; ; attempt++ {
		if err := j.ctx.Err(); err != nil {
			j.jerr = s.ctxError(err)
			j.jerr.Attempts = attempt - 1
			s.failed.Add(1)
			return
		}
		out, err := s.attempt(j)
		if err == nil {
			j.result = out
			s.completed.Add(1)
			if s.cache != nil {
				s.cache.Put(j.key, out)
			}
			return
		}
		var pe *panicError
		if errors.As(err, &pe) {
			s.panics.Add(1)
			if attempt <= s.cfg.Retries {
				s.retries.Add(1)
				s.backoff(j.ctx, attempt)
				continue
			}
			j.jerr = &JobError{Kind: KindPanic, Message: pe.Error(), Attempts: attempt}
			s.failed.Add(1)
			return
		}
		j.jerr = s.classify(j, err)
		j.jerr.Attempts = attempt
		s.failed.Add(1)
		return
	}
}

// attempt runs one evaluation under a recover, converting a panic — from the
// chaos knob or from a genuine bug in a pipeline — into a *panicError value.
func (s *Server) attempt(j *job) (out []byte, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &panicError{val: r, stack: string(debug.Stack())}
		}
	}()
	if n := s.cfg.PanicEvery; n > 0 && j.seq%uint64(n) == 0 && !j.panicked {
		j.panicked = true
		panic(fmt.Sprintf("chaos: injected panic on job %d", j.seq))
	}
	return evaluate(j.ctx, j.endpoint, j.req)
}

type panicError struct {
	val   any
	stack string
}

func (e *panicError) Error() string { return fmt.Sprintf("evaluation panicked: %v", e.val) }

// backoff sleeps the capped exponential delay for the given attempt, waking
// early if the job's deadline fires.
func (s *Server) backoff(ctx context.Context, attempt int) {
	d := s.cfg.RetryBase << (attempt - 1)
	if d > s.cfg.RetryMax {
		d = s.cfg.RetryMax
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

// ctxError distinguishes a request that ran out its own deadline from one
// aborted by server shutdown.
func (s *Server) ctxError(err error) *JobError {
	if errors.Is(err, context.DeadlineExceeded) {
		return &JobError{Kind: KindDeadline, Message: "request deadline exceeded"}
	}
	return &JobError{Kind: KindCanceled, Message: "server shut down before the request finished"}
}

// classify types an evaluation error.
func (s *Server) classify(j *job, err error) *JobError {
	if errors.Is(err, ErrInvalid) {
		return &JobError{Kind: KindInvalid, Message: err.Error()}
	}
	// A run the machine aborted on our cancellation signal is a deadline or
	// shutdown outcome, not a program failure.
	if errors.Is(err, machine.ErrCanceled) || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		if ctxErr := j.ctx.Err(); ctxErr != nil {
			return s.ctxError(ctxErr)
		}
	}
	return &JobError{Kind: KindFailed, Message: err.Error()}
}

// Shutdown drains gracefully: new work is refused at the door, in-flight and
// queued jobs get up to the drain timeout (bounded further by ctx) to
// finish, stragglers are canceled, and the pool exits. Safe to call once;
// later calls return immediately.
func (s *Server) Shutdown(ctx context.Context) error {
	var err error
	s.shutdown.Do(func() {
		s.mu.Lock()
		s.draining = true
		s.mu.Unlock()

		drained := make(chan struct{})
		go func() {
			s.admissions.Wait()
			close(drained)
		}()
		t := time.NewTimer(s.cfg.DrainTimeout)
		defer t.Stop()
		select {
		case <-drained:
		case <-t.C:
			err = errors.New("serve: drain timeout; canceling in-flight work")
			s.abort()
			<-drained
		case <-ctx.Done():
			err = fmt.Errorf("serve: shutdown: %w", ctx.Err())
			s.abort()
			<-drained
		}
		close(s.queue)
		s.workers.Wait()
		s.abort()
	})
	return err
}

// Close shuts down immediately, canceling everything in flight.
func (s *Server) Close() {
	s.abort()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s.Shutdown(ctx)
}

// Handler routes the service's endpoints.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	for _, ep := range endpoints {
		ep := ep
		mux.HandleFunc("POST "+ep, func(w http.ResponseWriter, r *http.Request) { s.handle(w, r, ep) })
	}
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(s.Stats())
	})
	return mux
}

const maxBodyBytes = 4 << 20

func (s *Server) handle(w http.ResponseWriter, r *http.Request, endpoint string) {
	var req Request
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.writeError(w, &JobError{Kind: KindInvalid, Message: "bad request body: " + err.Error()})
		return
	}
	req, err := normalize(endpoint, req)
	if err != nil {
		s.writeError(w, &JobError{Kind: KindInvalid, Message: err.Error()})
		return
	}
	key := contentKey(endpoint, req)

	// Cache hits bypass admission entirely: they cost no pool time, so a
	// saturated queue must not shed them.
	if body, ok := s.cache.Get(key); ok {
		s.writeResult(w, body, "hit")
		return
	}

	j, jerr := s.submit(endpoint, req, key)
	if jerr != nil {
		s.writeError(w, jerr)
		return
	}
	select {
	case <-j.done:
	case <-r.Context().Done():
		// The client went away. The job finishes in the background (its
		// result still lands in the cache); this handler just leaves.
		return
	}
	if j.jerr != nil {
		s.writeError(w, j.jerr)
		return
	}
	s.writeResult(w, j.result, "miss")
}

func (s *Server) writeResult(w http.ResponseWriter, body []byte, cache string) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Cache", cache)
	w.WriteHeader(http.StatusOK)
	w.Write(body)
}

func (s *Server) writeError(w http.ResponseWriter, jerr *JobError) {
	w.Header().Set("Content-Type", "application/json")
	switch jerr.Kind {
	case KindShed:
		w.Header().Set("Retry-After", "1")
	case KindDraining, KindCanceled:
		w.Header().Set("Retry-After", "5")
	}
	w.WriteHeader(jerr.HTTPStatus())
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(jerr)
}
