package serve

import "sync"

// Event is one NDJSON record on a job's progress stream (GET
// /jobs/<id>/events). Every stream carries, in order: the admission events
// ("accepted", then "queued" with the queue position), "running" when a
// worker picks the job up (repeated with a higher Attempt after a panic
// retry), zero or more progress events while it evaluates — "heartbeat"
// with the simulated machine's virtual clock, "search" with the autotune
// tier transitions and partial rankings, "degraded" when admission reduced
// the candidate budget — and exactly one terminal event ("done",
// "failed", or "canceled") on every path: completion, request deadline,
// panic-retry exhaustion, client-visible error, and server drain alike.
type Event struct {
	Job  string // job ID
	Seq  int    // position in the job's stream, dense from 0
	Type string
	// Req is the request ID of the submission that created the job, the join
	// key into the structured logs and the stitched trace.
	Req string `json:",omitempty"`
	// WallMS is the wall-clock publish time in Unix milliseconds. The
	// machine's Clock field stays virtual; this is the other clock domain.
	WallMS int64 `json:",omitempty"`
	// Terminal marks the stream's final event; nothing follows it.
	Terminal bool `json:",omitempty"`

	QueuePos  int      `json:",omitempty"` // "queued": position at admission
	Attempt   int      `json:",omitempty"` // "running": 1-based attempt number
	Stage     string   `json:",omitempty"` // "search": autotune tier
	Candidate string   `json:",omitempty"` // "search": measured candidate key
	Done      int      `json:",omitempty"` // "search": tier progress
	Total     int      `json:",omitempty"`
	Clock     uint64   `json:",omitempty"` // "heartbeat": virtual time
	Makespan  uint64   `json:",omitempty"` // "search": measured makespan
	Top       []string `json:",omitempty"` // "search": partial ranking
	Budget    int      `json:",omitempty"` // "degraded": candidate budget
	Kind      ErrKind  `json:",omitempty"` // "failed"/"canceled": error kind
	Message   string   `json:",omitempty"`
	Attempts  int      `json:",omitempty"` // terminal: evaluation attempts
}

// maxJobEvents bounds one job's event history. A run long enough to emit
// more heartbeats than this has its non-terminal events dropped past the
// cap; the terminal event is always recorded, so no stream can fail to
// terminate because its job was chatty.
const maxJobEvents = 10000

// eventLog is one job's append-only event history plus a broadcast edge for
// streamers: publish appends under the lock and wakes every waiter; since
// hands a subscriber the events it has not yet seen and a channel that
// closes on the next publish. Subscribers replay from the start, so a
// client that connects after the job finished still sees the whole stream.
type eventLog struct {
	mu       sync.Mutex
	events   []Event
	terminal bool
	notify   chan struct{}
}

func newEventLog() *eventLog { return &eventLog{notify: make(chan struct{})} }

// publishResult reports what became of one publish attempt, so the metrics
// can distinguish a healthy drop (overflow past the cap) from a protocol
// violation (an event after the terminal one).
type publishResult int

const (
	published publishResult = iota
	droppedTerminal
	droppedOverflow
)

// publish appends the event (stamping its Seq) and wakes subscribers. After
// a terminal event the log is sealed: later publishes are dropped, so
// "exactly one terminal event" holds by construction.
func (l *eventLog) publish(ev Event) publishResult {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.terminal {
		return droppedTerminal
	}
	if len(l.events) >= maxJobEvents && !ev.Terminal {
		return droppedOverflow
	}
	ev.Seq = len(l.events)
	l.events = append(l.events, ev)
	if ev.Terminal {
		l.terminal = true
	}
	close(l.notify)
	l.notify = make(chan struct{})
	return published
}

// since returns a copy of the events from index i on, whether the log is
// sealed, and a channel that closes on the next publish. A subscriber loops:
// write what since returned, advance i, and if not yet terminal wait on the
// channel (or its client's context).
func (l *eventLog) since(i int) ([]Event, bool, <-chan struct{}) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if i > len(l.events) {
		i = len(l.events)
	}
	evs := append([]Event(nil), l.events[i:]...)
	return evs, l.terminal, l.notify
}

// snapshot returns the number of events and whether the log is sealed.
func (l *eventLog) snapshot() (n int, terminal bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.events), l.terminal
}
