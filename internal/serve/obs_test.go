package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"procdecomp/internal/obs"
)

// drainAndVerify shuts the server down and runs the full reconciliation.
func drainAndVerify(t *testing.T, s *Server) {
	t.Helper()
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := s.VerifyMetrics(); err != nil {
		t.Errorf("metrics reconciliation: %v", err)
	}
}

// scrapeURL fetches and strictly parses /metrics over the wire.
func scrapeURL(t *testing.T, base string) *obs.Scrape {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	sc, err := obs.ParsePrometheus(resp.Body)
	if err != nil {
		t.Fatalf("scrape does not parse: %v", err)
	}
	return sc
}

// TestMetricsReconcileAfterMixedWorkload drives every kind of traffic the
// catalog counts — cache misses and hits, a typed failure, an async job, a
// panic retry — then requires the wire scrape to reconcile exactly with the
// server's ground-truth Stats.
func TestMetricsReconcileAfterMixedWorkload(t *testing.T) {
	s, hs := newTestServer(t, Config{Workers: 2, PanicEvery: 3, CacheDir: t.TempDir()})

	post(t, hs.URL+"/run", gsRun)                      // miss -> evaluate -> write
	post(t, hs.URL+"/run", gsRun)                      // hit
	post(t, hs.URL+"/compile", gsRun)                  // miss
	post(t, hs.URL+"/run", `{"bad json`)               // 400 invalid
	post(t, hs.URL+"/run", `{"GS":true,"Source":"x"}`) // 400 invalid

	// One typed program failure (422).
	resp, _ := post(t, hs.URL+"/run", `{"Source":"procedure p() { q(); }","Entry":"p"}`)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("bad program resolved %d, want 422", resp.StatusCode)
	}

	// One async job through the full lifecycle.
	resp, body := post(t, hs.URL+"/jobs", `{"Endpoint":"/compile","Request":{"GS":true,"Procs":2,"Mode":"opt1","Defines":{"N":8}}}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("job submit resolved %d: %s", resp.StatusCode, body)
	}
	var acc JobAccepted
	if err := json.Unmarshal(body, &acc); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "async job to settle", func() bool {
		terminal, _, _ := s.lookupJob(acc.ID).state()
		return terminal
	})

	sc := scrapeURL(t, hs.URL)
	if v := sc.Sum("pdserve_cache_ops_total", map[string]string{"op": "hit"}); v < 1 {
		t.Errorf("scrape shows %v cache hits, want >= 1", v)
	}
	if v := sc.Sum("pdserve_responses_total", map[string]string{"code": "400"}); v != 2 {
		t.Errorf("scrape shows %v 400s, want 2", v)
	}
	if v := sc.Sum("pdserve_responses_total", map[string]string{"code": "422", "cause": "program"}); v != 1 {
		t.Errorf("scrape shows %v program failures, want 1", v)
	}
	if v := sc.Sum("pdserve_jobs_total", map[string]string{"state": "accepted"}); v != 1 {
		t.Errorf("scrape shows %v accepted jobs, want 1", v)
	}

	drainAndVerify(t, s)
}

// TestVerifyScrapeDetectsDrift is the negative control: a counter nudged off
// its ground truth must fail reconciliation, else the identities prove
// nothing.
func TestVerifyScrapeDetectsDrift(t *testing.T) {
	s, hs := newTestServer(t, Config{Workers: 2, CacheDir: t.TempDir()})
	post(t, hs.URL+"/run", gsRun)
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := s.VerifyMetrics(); err != nil {
		t.Fatalf("clean run must reconcile: %v", err)
	}
	s.m.admitted.Inc() // simulated drift: a path that bumped one ledger only
	err := s.VerifyMetrics()
	if err == nil {
		t.Fatal("drifted counter passed reconciliation")
	}
	if !strings.Contains(err.Error(), "pdserve_admitted_total") {
		t.Errorf("drift error does not name the counter: %v", err)
	}
}

// TestNoEventAfterTerminal pins the stream protocol: a publish after the
// terminal event must not reach the stream, must be counted, and must fail
// reconciliation — the regression the publish helper exists to catch.
func TestNoEventAfterTerminal(t *testing.T) {
	s, hs := newTestServer(t, Config{Workers: 2, CacheDir: t.TempDir()})
	resp, body := post(t, hs.URL+"/jobs", `{"Endpoint":"/run","Request":{"GS":true,"Procs":2,"Mode":"ctr","Defines":{"N":8}}}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("job submit resolved %d: %s", resp.StatusCode, body)
	}
	var acc JobAccepted
	if err := json.Unmarshal(body, &acc); err != nil {
		t.Fatal(err)
	}
	aj := s.lookupJob(acc.ID)
	waitFor(t, "job to settle", func() bool { terminal, _, _ := aj.state(); return terminal })

	before, sealed := aj.log.snapshot()
	if !sealed {
		t.Fatal("terminal job's event log is not sealed")
	}
	s.publish(aj, Event{Type: "heartbeat", Clock: 99}) // protocol violation
	after, _ := aj.log.snapshot()
	if after != before {
		t.Fatalf("event published after terminal grew the stream %d -> %d", before, after)
	}
	if v := s.m.events.Value("dropped_after_terminal"); v != 1 {
		t.Fatalf("dropped_after_terminal = %v, want 1", v)
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	err := s.VerifyMetrics()
	if err == nil || !strings.Contains(err.Error(), "after their stream's terminal event") {
		t.Errorf("reconciliation did not flag the after-terminal publish: %v", err)
	}
}

// TestRequestIDPropagation follows one ID from the ingress header through
// the response header, the job's event stream (with wall-clock stamps), the
// journal record, and the /logz retrieval.
func TestRequestIDPropagation(t *testing.T) {
	s, hs := newTestServer(t, Config{Workers: 2, CacheDir: t.TempDir()})
	const rid = "r-test-propagation"

	req, err := http.NewRequest("POST", hs.URL+"/jobs",
		strings.NewReader(`{"Endpoint":"/run","Request":{"GS":true,"Procs":2,"Mode":"ctr","Defines":{"N":8}}}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-Id", rid)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var acc JobAccepted
	if err := json.NewDecoder(resp.Body).Decode(&acc); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got != rid {
		t.Errorf("response echoes request ID %q, want %q", got, rid)
	}

	aj := s.lookupJob(acc.ID)
	waitFor(t, "job to settle", func() bool { terminal, _, _ := aj.state(); return terminal })
	evs, _, _ := aj.log.since(0)
	if len(evs) == 0 {
		t.Fatal("no events on the job stream")
	}
	wallLo := time.Now().Add(-time.Minute).UnixMilli()
	for _, ev := range evs {
		if ev.Req != rid {
			t.Errorf("event %d (%s) carries request ID %q, want %q", ev.Seq, ev.Type, ev.Req, rid)
		}
		if ev.WallMS < wallLo {
			t.Errorf("event %d (%s) wall time %d is implausible", ev.Seq, ev.Type, ev.WallMS)
		}
	}

	// The journal's accepted record carries the ID, so a restarted server
	// keeps the correlation.
	jobs, _, _, _, err := parseJournal(s.journal.path)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, rj := range jobs {
		if rj.id == acc.ID {
			found = true
			if rj.rid != rid {
				t.Errorf("journal records request ID %q, want %q", rj.rid, rid)
			}
		}
	}
	if !found {
		t.Fatalf("job %s not in the journal", acc.ID)
	}

	lresp, err := http.Get(hs.URL + "/logz?req=" + rid)
	if err != nil {
		t.Fatal(err)
	}
	defer lresp.Body.Close()
	var lines []obs.Line
	if err := json.NewDecoder(lresp.Body).Decode(&lines); err != nil {
		t.Fatal(err)
	}
	if len(lines) == 0 {
		t.Error("/logz returned no lines for the request ID")
	}
	for _, ln := range lines {
		if ln.Req != rid {
			t.Errorf("/logz line %q tagged %q, want %q", ln.Text, ln.Req, rid)
		}
	}
}

// TestJobTraceStitchesBothClockDomains submits a traced job and requires
// /jobs/{id}/trace to return one Chrome document holding wall-time service
// spans and virtual-time machine events, both tagged with the request ID.
func TestJobTraceStitchesBothClockDomains(t *testing.T) {
	s, hs := newTestServer(t, Config{Workers: 2, CacheDir: t.TempDir()})
	const rid = "r-test-trace"

	req, err := http.NewRequest("POST", hs.URL+"/jobs?trace=1",
		strings.NewReader(`{"Endpoint":"/run","Request":{"GS":true,"Procs":2,"Mode":"ctr","Defines":{"N":8}}}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-Id", rid)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var acc JobAccepted
	if err := json.NewDecoder(resp.Body).Decode(&acc); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	aj := s.lookupJob(acc.ID)
	waitFor(t, "traced job to settle", func() bool { terminal, _, _ := aj.state(); return terminal })

	tresp, err := http.Get(hs.URL + "/jobs/" + acc.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer tresp.Body.Close()
	if tresp.StatusCode != http.StatusOK {
		t.Fatalf("/trace status %d", tresp.StatusCode)
	}
	var doc struct {
		TraceEvents []struct {
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		PDObs struct {
			RequestID     string
			WallSpans     int
			MachineEvents int
		} `json:"pdobs"`
	}
	if err := json.NewDecoder(tresp.Body).Decode(&doc); err != nil {
		t.Fatalf("stitched trace does not parse: %v", err)
	}
	if doc.PDObs.RequestID != rid {
		t.Errorf("trace names request %q, want %q", doc.PDObs.RequestID, rid)
	}
	if doc.PDObs.WallSpans < 2 || doc.PDObs.MachineEvents == 0 {
		t.Errorf("trace has %d wall spans and %d machine events, want >=2 and >0",
			doc.PDObs.WallSpans, doc.PDObs.MachineEvents)
	}
	wallLinked, machine := 0, 0
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		if ev.Pid == 1<<21 {
			if ev.Args["request_id"] == rid {
				wallLinked++
			}
		} else {
			machine++
		}
	}
	if wallLinked != doc.PDObs.WallSpans {
		t.Errorf("%d of %d wall spans carry the request ID", wallLinked, doc.PDObs.WallSpans)
	}
	if machine == 0 {
		t.Error("no machine events on the non-service tracks")
	}
}

// TestSyncTraceQuery pins the synchronous flavor: POST /run?trace=1 answers
// with the stitched trace document instead of the result body, and the
// result still lands in the cache for the next untraced request.
func TestSyncTraceQuery(t *testing.T) {
	s, hs := newTestServer(t, Config{Workers: 2, CacheDir: t.TempDir()})
	resp, body := post(t, hs.URL+"/run?trace=1", gsRun)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("traced run resolved %d: %.200s", resp.StatusCode, body)
	}
	var doc struct {
		PDObs struct{ MachineEvents int } `json:"pdobs"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("traced response is not a stitched trace: %v", err)
	}
	if doc.PDObs.MachineEvents == 0 {
		t.Error("traced run stitched no machine events")
	}
	resp, _ = post(t, hs.URL+"/run", gsRun)
	if got := resp.Header.Get("X-Cache"); got != "hit" {
		t.Errorf("untraced repeat after traced run: X-Cache %q, want hit (the traced evaluation must still populate the cache)", got)
	}
	drainAndVerify(t, s)
}

// TestCauseLabelsStayInContract pins every ErrKind's derived cause label to
// the allowedCauses contract VerifyScrape enforces.
func TestCauseLabelsStayInContract(t *testing.T) {
	kinds := []ErrKind{KindInvalid, KindShed, KindDraining, KindDeadline,
		KindCanceled, KindFailed, KindPanic, KindInternal, KindNotFound}
	for _, k := range kinds {
		e := &JobError{Kind: k}
		code := fmt.Sprintf("%d", e.HTTPStatus())
		if !allowedCauses[code][e.causeLabel()] {
			t.Errorf("kind %s derives cause %q, not allowed for code %s", k, e.causeLabel(), code)
		}
	}
	for _, explicit := range []struct {
		kind  ErrKind
		cause string
	}{
		{KindShed, "fair_share"}, {KindDeadline, "doomed"},
	} {
		e := &JobError{Kind: explicit.kind, cause: explicit.cause}
		code := fmt.Sprintf("%d", e.HTTPStatus())
		if !allowedCauses[code][e.causeLabel()] {
			t.Errorf("explicit cause %q not allowed for code %s", explicit.cause, code)
		}
	}
}

// TestMetricsExpositionIsDeterministic pins the exposition format: two
// writes of the same registry are byte-identical, and a fresh server
// pre-touches its fixed label spaces so equal workloads expose equal
// sample sets.
func TestMetricsExpositionIsDeterministic(t *testing.T) {
	s, err := New(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var a, b bytes.Buffer
	if err := s.WriteMetrics(&a); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteMetrics(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("two writes of an idle registry differ")
	}
	sc, err := obs.ParsePrometheus(&a)
	if err != nil {
		t.Fatalf("fresh exposition does not parse: %v", err)
	}
	for _, fam := range []string{
		"pdserve_admitted_total", "pdserve_sheds_total", "pdserve_jobs_total",
		"pdserve_events_total", "pdserve_cache_ops_total", "pdserve_journal_appends_total",
		"pdserve_queue_depth", "pdserve_workers_busy",
	} {
		if len(sc.Series(fam)) == 0 {
			t.Errorf("fresh server does not expose %s", fam)
		}
	}
}
