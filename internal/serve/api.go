// Package serve is the long-running face of the toolchain: an HTTP service
// fronting the pdc/pdrun/pdmap/pdtrace pipelines with the robustness a
// shared service needs and the one-shot commands do not — bounded admission,
// per-request deadlines, load shedding, panic isolation with retries, and a
// crash-safe content-keyed result cache.
//
// The endpoints mirror the commands:
//
//	POST /compile  -> generated per-process C (pdc)
//	POST /run      -> a simulated execution's stats and outputs (pdrun)
//	POST /search   -> the decomposition search report (pdmap)
//	POST /trace    -> the critical-path analysis of a traced run (pdtrace)
//
// Every response body is a deterministic function of the request body, which
// is what makes the cache exact: equal requests are answered with identical
// bytes, before or after a restart.
package serve

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"sort"

	"procdecomp/internal/analysis"
	"procdecomp/internal/autotune"
	"procdecomp/internal/bench"
	"procdecomp/internal/core"
	"procdecomp/internal/exec"
	"procdecomp/internal/istruct"
	"procdecomp/internal/lang"
	"procdecomp/internal/machine"
	"procdecomp/internal/sem"
	"procdecomp/internal/spmd"
	"procdecomp/internal/trace"
	"procdecomp/internal/xform"
)

// Request is the body every endpoint accepts. Unset fields take defaults in
// normalize; TimeoutMS shapes scheduling only and is excluded from the
// content key, so two requests differing only in deadline share a cache
// entry.
type Request struct {
	// GS selects the built-in Gauss-Seidel program (paper Fig. 1); Source
	// supplies Idn text. Exactly one of the two.
	GS     bool   `json:",omitempty"`
	Source string `json:",omitempty"`
	// Entry is the procedure compiled and measured (default with GS:
	// gs_iteration).
	Entry string `json:",omitempty"`
	Procs int    `json:",omitempty"` // default 4
	// Mode/Blk select the transformation pipeline for /compile, /run and
	// /trace (default opt3, blk 8). /search enumerates its own.
	Mode    string           `json:",omitempty"`
	Blk     int64            `json:",omitempty"`
	Defines map[string]int64 `json:",omitempty"`
	// Dist names the declaration /search retargets (default: the program's
	// only one).
	Dist string `json:",omitempty"`
	// Keep/TopK tune the /search tiers (0 = library defaults).
	Keep int `json:",omitempty"`
	TopK int `json:",omitempty"`
	// TimeoutMS is the per-request deadline in milliseconds (0 = the
	// server's default; values above the server's maximum are clamped).
	TimeoutMS int64 `json:",omitempty"`
}

// ErrInvalid marks a request rejected before any work starts (HTTP 400).
var ErrInvalid = errors.New("serve: invalid request")

func invalidf(format string, args ...any) error {
	return fmt.Errorf("%w: "+format, append([]any{ErrInvalid}, args...)...)
}

// endpoints the service understands, in routing order.
var endpoints = []string{"/compile", "/run", "/search", "/trace"}

const maxProcs = 512

// normalize validates the request and fills defaults, returning the
// canonical form that the content key hashes.
func normalize(endpoint string, req Request) (Request, error) {
	switch {
	case req.GS && req.Source != "":
		return req, invalidf("GS and Source are mutually exclusive")
	case req.GS:
		req.Source = ""
		if req.Entry == "" {
			req.Entry = "gs_iteration"
		}
	case req.Source == "":
		return req, invalidf("one of Source or GS is required")
	}
	if req.Entry == "" {
		return req, invalidf("Entry is required")
	}
	if req.Procs == 0 {
		req.Procs = 4
	}
	if req.Procs < 1 || req.Procs > maxProcs {
		return req, invalidf("Procs %d outside [1, %d]", req.Procs, maxProcs)
	}
	if req.Mode == "" {
		req.Mode = "opt3"
	}
	if req.Blk == 0 {
		req.Blk = 8
	}
	if endpoint != "/search" {
		if _, ok := xform.StandardPipeline(req.Mode, req.Blk); !ok && req.Mode != "rtr" {
			return req, invalidf("unknown mode %q", req.Mode)
		}
	}
	if req.TimeoutMS < 0 {
		return req, invalidf("negative TimeoutMS")
	}
	return req, nil
}

// contentKey is the cache key of one request: the endpoint plus the
// canonical JSON of the normalized request with its deadline zeroed.
// encoding/json emits struct fields in declaration order and map keys
// sorted, so equal requests hash equal. A degraded /search result (budget
// > 0) hashes under a budget-qualified prefix: a reduced-fidelity answer
// must never be served later as the full one, or vice versa. A /run
// evaluated under an adaptive mapping preference hashes under a
// mapping-qualified prefix for the same reason: the response bytes depend
// on the decomposition actually compiled, so entries from before and after
// a re-decomposition switch must never alias.
func contentKey(endpoint string, req Request, budget int, mapping string) string {
	req.TimeoutMS = 0
	b, err := json.Marshal(req)
	if err != nil {
		// A Request is plain data; its marshal cannot fail.
		panic(fmt.Sprintf("serve: marshal request: %v", err))
	}
	prefix := endpoint
	if budget > 0 {
		prefix = fmt.Sprintf("%s@budget%d", prefix, budget)
	}
	if mapping != "" {
		prefix = fmt.Sprintf("%s@map:%s", prefix, mapping)
	}
	sum := sha256.Sum256(append([]byte(prefix+"\n"), b...))
	return hex.EncodeToString(sum[:])
}

// evalHooks carries the per-job observation channels into an evaluation:
// emit streams progress events (heartbeats, search tiers) to the job's
// event log; budget, when positive, caps the /search candidate set — the
// degraded admission mode; wantTrace asks the machine run to record its
// virtual-time trace and hand the Chrome bytes to chrome. A nil hooks runs
// full fidelity, silently.
type evalHooks struct {
	budget    int
	emit      func(Event)
	wantTrace bool
	chrome    func([]byte)
	// mapping, when set, retargets the program's dist declaration to the
	// adaptation controller's preferred decomposition before compiling.
	mapping string
}

func (h *evalHooks) publish(ev Event) {
	if h != nil && h.emit != nil {
		h.emit(ev)
	}
}

func (h *evalHooks) mappingKey() string {
	if h == nil {
		return ""
	}
	return h.mapping
}

// evaluate dispatches one admitted job to its endpoint's evaluator and
// marshals the response deterministically.
func evaluate(ctx context.Context, endpoint string, req Request, hooks *evalHooks) ([]byte, error) {
	var (
		out any
		err error
	)
	switch endpoint {
	case "/compile":
		out, err = doCompile(req)
	case "/run":
		out, err = doRun(ctx, req, hooks)
	case "/search":
		out, err = doSearch(ctx, req, hooks)
	case "/trace":
		out, err = doTrace(ctx, req, hooks)
	default:
		return nil, invalidf("no endpoint %s", endpoint)
	}
	if err != nil {
		return nil, err
	}
	b, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("serve: marshal response: %w", err)
	}
	return append(b, '\n'), nil
}

func source(req Request) string {
	if req.GS {
		return bench.GSSource
	}
	return req.Source
}

// compile builds the per-process programs the way pdrun does: parse,
// semantic-check at the machine size, compile (run-time or compile-time
// resolution), and apply the mode's pass pipeline. A non-empty mapping —
// the adaptation controller's preference — retargets the program's dist
// declaration between parse and semantic check, exactly the way the
// autotune search compiles its candidates.
func compile(req Request, mapping string) ([]*spmd.Program, *sem.Info, error) {
	prog, err := lang.Parse(source(req))
	if err != nil {
		return nil, nil, err
	}
	if mapping != "" {
		m, err := autotune.ParseMapping(mapping)
		if err != nil {
			return nil, nil, fmt.Errorf("serve: adapt mapping %q: %w", mapping, err)
		}
		dn, err := pickDistProg(prog, req.Dist)
		if err != nil {
			return nil, nil, fmt.Errorf("serve: adapt retarget: %w", err)
		}
		if err := autotune.Retarget(prog, dn, m); err != nil {
			return nil, nil, err
		}
	}
	info, errs := sem.Check(prog, sem.Config{Procs: int64(req.Procs), Defines: req.Defines})
	if len(errs) > 0 {
		return nil, nil, errs[0]
	}
	comp := core.New(info)
	if req.Mode == "rtr" {
		generic, err := comp.CompileRTR(req.Entry)
		if err != nil {
			return nil, nil, err
		}
		return []*spmd.Program{generic}, info, nil
	}
	passes, _ := xform.StandardPipeline(req.Mode, req.Blk)
	progs, err := comp.CompileCTR(req.Entry, true)
	if err != nil {
		return nil, nil, err
	}
	if _, err := xform.Apply(progs, passes); err != nil {
		return nil, nil, err
	}
	return progs, info, nil
}

// testInputs fills the entry's matrix parameters with the deterministic
// pattern pdrun uses, so a served result is reproducible by hand.
func testInputs(info *sem.Info, entry string) (map[string]*istruct.Matrix, error) {
	p, ok := info.Procs[entry]
	if !ok {
		return nil, fmt.Errorf("no procedure %s", entry)
	}
	ins := map[string]*istruct.Matrix{}
	for _, prm := range p.Params {
		if prm.Type.Base != lang.TMatrix {
			return nil, fmt.Errorf("entry parameter %s is not a matrix", prm.Name)
		}
		m, err := istruct.NewMatrix(prm.Name, prm.Type.Dims[0], prm.Type.Dims[1])
		if err != nil {
			return nil, err
		}
		for i := int64(1); i <= prm.Type.Dims[0]; i++ {
			for j := int64(1); j <= prm.Type.Dims[1]; j++ {
				if err := m.Write(i, j, float64((i*31+j*17)%29)+0.5); err != nil {
					return nil, err
				}
			}
		}
		ins[prm.Name] = m
	}
	return ins, nil
}

// CompileResponse is /compile's body: the generated C per process program.
type CompileResponse struct {
	Entry    string
	Procs    int
	Mode     string
	Blk      int64 `json:",omitempty"`
	Programs []string
}

func doCompile(req Request) (*CompileResponse, error) {
	progs, _, err := compile(req, "")
	if err != nil {
		return nil, err
	}
	resp := &CompileResponse{Entry: req.Entry, Procs: req.Procs, Mode: req.Mode}
	if req.Mode == "opt3" {
		resp.Blk = req.Blk
	}
	for _, p := range progs {
		resp.Programs = append(resp.Programs, spmd.FormatC(p))
	}
	return resp, nil
}

// ArrayResult summarizes one output array; ScalarResult one scalar. Both are
// emitted in sorted name order so the response bytes are deterministic.
type ArrayResult struct {
	Name       string
	Rows, Cols int64
	Defined    int64
}

type ScalarResult struct {
	Name  string
	Value float64
}

// RunResponse is /run's body.
type RunResponse struct {
	Entry    string
	Procs    int
	Mode     string
	Blk      int64 `json:",omitempty"`
	Makespan uint64
	Messages int64
	Values   int64
	Bytes    int64
	// Mapping reports the adaptive decomposition the run was compiled with,
	// when the controller had a preference ("" = the program as declared).
	Mapping string         `json:",omitempty"`
	Arrays  []ArrayResult  `json:",omitempty"`
	Scalars []ScalarResult `json:",omitempty"`
}

func doRun(ctx context.Context, req Request, hooks *evalHooks) (*RunResponse, error) {
	out, _, err := runOnce(ctx, req, nil, hooks)
	if err != nil {
		return nil, err
	}
	resp := &RunResponse{
		Entry: req.Entry, Procs: req.Procs, Mode: req.Mode,
		Makespan: uint64(out.Stats.Makespan),
		Messages: out.Stats.Messages, Values: out.Stats.Values, Bytes: out.Stats.Bytes,
		Mapping: hooks.mappingKey(),
	}
	if req.Mode == "opt3" {
		resp.Blk = req.Blk
	}
	names := make([]string, 0, len(out.Arrays))
	for name := range out.Arrays {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		m := out.Arrays[name]
		var defined int64
		for i := int64(1); i <= m.Rows(); i++ {
			for j := int64(1); j <= m.Cols(); j++ {
				if m.Defined(i, j) {
					defined++
				}
			}
		}
		resp.Arrays = append(resp.Arrays, ArrayResult{Name: name, Rows: m.Rows(), Cols: m.Cols(), Defined: defined})
	}
	names = names[:0]
	for name := range out.Scalars {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		resp.Scalars = append(resp.Scalars, ScalarResult{Name: name, Value: out.Scalars[name]})
	}
	return resp, nil
}

// heartbeatEvery is the event-dispatch stride between streamed virtual-time
// heartbeats. Observation only: the machine's schedule is identical with
// the hook on or off.
const heartbeatEvery = 256

// runOnce compiles and executes the request's program, optionally traced.
// With hooks, the simulated machine streams virtual-time heartbeats to the
// job's event log as it runs.
func runOnce(ctx context.Context, req Request, tr *trace.Log, hooks *evalHooks) (*exec.SPMDOutcome, machine.Config, error) {
	progs, info, err := compile(req, hooks.mappingKey())
	if err != nil {
		return nil, machine.Config{}, err
	}
	ins, err := testInputs(info, req.Entry)
	if err != nil {
		return nil, machine.Config{}, err
	}
	cfg := machine.DefaultConfig(req.Procs)
	cfg.Tracer = tr
	if hooks != nil && hooks.wantTrace && tr == nil {
		// The caller wants the machine's Chrome trace but the evaluation does
		// not otherwise record one: attach a log just for the stitch.
		tr = trace.New()
		cfg.Tracer = tr
	}
	if hooks != nil && hooks.emit != nil {
		cfg.HeartbeatEvery = heartbeatEvery
		cfg.Heartbeat = func(clock machine.Cost) {
			hooks.publish(Event{Type: "heartbeat", Clock: uint64(clock)})
		}
	}
	out, err := exec.RunSPMDCtx(ctx, progs, cfg, ins)
	if err == nil && hooks != nil && hooks.wantTrace && hooks.chrome != nil && tr != nil {
		var buf bytes.Buffer
		if werr := tr.WriteChromeTrace(&buf); werr == nil {
			hooks.chrome(buf.Bytes())
		}
	}
	return out, cfg, err
}

func doTrace(ctx context.Context, req Request, hooks *evalHooks) (*analysis.Report, error) {
	tr := trace.New()
	_, cfg, err := runOnce(ctx, req, tr, hooks)
	if err != nil {
		return nil, err
	}
	return analysis.Analyze(analysis.NewDump(cfg, tr), analysis.Options{TopLinks: 8, TopTags: 8})
}

// SearchResponse is /search's body: the autotune report, plus the candidate
// budget when admission degraded the search under saturation. A full-
// fidelity response (budget 0) marshals byte-identically to the bare
// report, so existing clients and cache entries see no difference.
type SearchResponse struct {
	*autotune.Report
	DegradedBudget int `json:",omitempty"`
}

func doSearch(ctx context.Context, req Request, hooks *evalHooks) (*SearchResponse, error) {
	dn, err := pickDist(source(req), req.Dist)
	if err != nil {
		return nil, invalidf("%v", err)
	}
	name := "request"
	if req.GS {
		name = "gauss-seidel"
	}
	w := &autotune.Workload{Name: name, Source: source(req), Entry: req.Entry, Dist: dn, Defines: req.Defines}
	opts := autotune.Options{Keep: req.Keep, TopK: req.TopK}
	budget := 0
	if hooks != nil && hooks.budget > 0 {
		// Degraded admission: replay only `budget` statically ranked
		// candidates and confirm a single winner on the machine. Same
		// tiers, bounded work.
		budget = hooks.budget
		opts.Keep = budget
		opts.TopK = 1
	}
	if hooks != nil && hooks.emit != nil {
		opts.Progress = func(p autotune.Progress) {
			hooks.publish(Event{Type: "search", Stage: p.Stage, Candidate: p.Candidate,
				Done: p.Done, Total: p.Total, Makespan: p.Makespan, Top: p.Top})
		}
	}
	rep, err := autotune.SearchCtx(ctx, w, machine.DefaultConfig(req.Procs), opts)
	if err != nil {
		return nil, err
	}
	return &SearchResponse{Report: rep, DegradedBudget: budget}, nil
}

// pickDist resolves the declaration /search varies: the named one, or the
// program's only one — the same rule pdmap applies.
func pickDist(src, name string) (string, error) {
	prog, err := lang.Parse(src)
	if err != nil {
		return "", err
	}
	return pickDistProg(prog, name)
}

// pickDistProg is pickDist on an already-parsed program — the adapt
// retarget path reuses the parse it is about to rewrite.
func pickDistProg(prog *lang.Program, name string) (string, error) {
	var found []string
	for _, d := range prog.Decls {
		if dd, ok := d.(*lang.DistDecl); ok {
			found = append(found, dd.Name)
			if dd.Name == name {
				return name, nil
			}
		}
	}
	if name != "" {
		return "", fmt.Errorf("no dist declaration %s", name)
	}
	if len(found) != 1 {
		return "", fmt.Errorf("the program has %d dist declarations; set Dist", len(found))
	}
	return found[0], nil
}
