package serve

import (
	"fmt"
	"math"
	"sync"
	"time"
)

// admission is the adaptive front door. The PR-6 server shed on one signal
// only — a full fixed-depth queue. This controller keeps that hard bound
// but sheds and degrades on observed conditions instead of failing rigidly:
//
//   - Deadline-doomed shed (CoDel-flavored): workers report each job's
//     measured queue wait at dequeue and the controller keeps an EWMA of
//     it alongside an EWMA of the drain rate. A request whose remaining
//     deadline is already below the estimated queue wait is shed at
//     admission — it would only have aged in the queue and timed out, so
//     shedding it early costs the client nothing and saves a slot.
//   - Per-tenant fair share: once the queue is contended (occupancy past
//     FairShareAt), no tenant may hold more than its equal share of the
//     depth, so one hot client saturating the service cannot starve the
//     rest; its overflow is shed while other tenants still admit.
//   - Graceful /search degradation: under sustained saturation (an EWMA of
//     occupancy past DegradeAt) /search requests are admitted with a
//     bounded candidate budget — reported in the reply — instead of being
//     shed outright. Degraded replies are cached under a budget-qualified
//     key, so they never masquerade as full-fidelity results.
//   - Derived Retry-After: 429/503 replies quote the time to drain the
//     current queue at the observed rate, plus a deterministic seeded
//     jitter so synchronized clients do not re-arrive in lockstep.
type admission struct {
	depth       int
	fairShareAt float64
	degradeAt   float64
	budget      int
	seed        uint64

	mu        sync.Mutex
	queued    int            // jobs reserved or sitting in the queue channel
	tenants   map[string]int // queued jobs per tenant
	drainRate float64        // EWMA, jobs/sec, from inter-dequeue gaps
	lastDeq   time.Time
	qwait     time.Duration // EWMA of measured queue wait at dequeue
	sat       float64       // EWMA of queue occupancy at admission attempts
}

func newAdmission(cfg Config) *admission {
	return &admission{
		depth:       cfg.QueueDepth,
		fairShareAt: cfg.FairShareAt,
		degradeAt:   cfg.DegradeAt,
		budget:      cfg.DegradeKeep,
		seed:        cfg.AdmitSeed,
		tenants:     map[string]int{},
	}
}

// decision is one admission verdict. Exactly one of shed/admitted: a nil
// shed means a slot was reserved (the caller must enqueue, or call release
// on any later failure).
type decision struct {
	shed   *JobError
	reason string // shed cause for the counters: "full", "fair", "doomed"
	budget int    // >0: admitted with a degraded /search candidate budget
	pos    int    // queue position at admission (1-based), for the stream
}

// admit decides one request under the controller's lock. remaining is the
// request's whole deadline budget (queue wait plus evaluation); seq feeds
// the deterministic Retry-After jitter.
func (a *admission) admit(endpoint, tenant string, remaining time.Duration, seq uint64, now time.Time) decision {
	a.mu.Lock()
	defer a.mu.Unlock()
	occ := float64(a.queued) / float64(a.depth)
	a.sat = 0.9*a.sat + 0.1*occ

	if a.queued >= a.depth {
		return decision{reason: "full", shed: &JobError{
			Kind:       KindShed,
			Message:    fmt.Sprintf("admission queue full (%d deep)", a.depth),
			RetryAfter: retryAfterSeconds(a.queued, a.drainRate, a.seed, seq),
		}}
	}
	if occ >= a.fairShareAt {
		active := len(a.tenants)
		if a.tenants[tenant] == 0 {
			active++
		}
		if share := maxTenantShare(a.depth, active); a.tenants[tenant]+1 > share {
			return decision{reason: "fair", shed: &JobError{
				Kind:       KindShed,
				Message:    fmt.Sprintf("tenant %q over fair share (%d of %d slots under contention)", tenant, share, a.depth),
				RetryAfter: retryAfterSeconds(a.queued, a.drainRate, a.seed, seq),
				cause:      "fair_share",
			}}
		}
	}
	if a.queued > 0 && remaining > 0 {
		if wait := a.estWaitLocked(); wait > remaining {
			return decision{reason: "doomed", shed: &JobError{
				Kind: KindDeadline,
				Message: fmt.Sprintf("deadline-doomed at admission: estimated queue wait %v exceeds remaining deadline %v",
					wait.Round(time.Millisecond), remaining.Round(time.Millisecond)),
				RetryAfter: retryAfterSeconds(a.queued, a.drainRate, a.seed, seq),
				cause:      "doomed",
			}}
		}
	}
	d := decision{}
	if endpoint == "/search" && a.sat >= a.degradeAt {
		d.budget = a.budget
	}
	a.queued++
	a.tenants[tenant]++
	d.pos = a.queued
	return d
}

// release undoes a reservation whose job never reached the queue (a journal
// write failed, or a degraded-key cache hit made the work unnecessary).
func (a *admission) release(tenant string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.queued--
	if a.tenants[tenant] <= 1 {
		delete(a.tenants, tenant)
	} else {
		a.tenants[tenant]--
	}
}

// dequeued is the worker-side feedback: the job waited `waited` in the
// queue and its slot is now free. It updates the drain-rate and queue-wait
// estimates the shedding decisions run on.
func (a *admission) dequeued(tenant string, waited time.Duration, now time.Time) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.queued--
	if a.tenants[tenant] <= 1 {
		delete(a.tenants, tenant)
	} else {
		a.tenants[tenant]--
	}
	a.qwait = (3*a.qwait + waited) / 4
	if !a.lastDeq.IsZero() {
		if dt := now.Sub(a.lastDeq); dt > 0 {
			a.drainRate = 0.8*a.drainRate + 0.2*(1.0/dt.Seconds())
		}
	}
	a.lastDeq = now
	a.sat = 0.9*a.sat + 0.1*float64(a.queued)/float64(a.depth)
}

// estWaitLocked estimates the queue wait a newly admitted job would see:
// the larger of the measured-wait EWMA and the time to drain the current
// queue at the observed rate. Before any drain has been observed it is
// optimistic (zero), so a cold server never sheds on a guess.
func (a *admission) estWaitLocked() time.Duration {
	wait := a.qwait
	if a.drainRate > 0 {
		if byRate := time.Duration(float64(a.queued) / a.drainRate * float64(time.Second)); byRate > wait {
			wait = byRate
		}
	}
	return wait
}

// retryAfter derives the Retry-After for a drain-time reply (503) from the
// live queue state.
func (a *admission) retryAfter(seq uint64) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return retryAfterSeconds(a.queued, a.drainRate, a.seed, seq)
}

// snapshot exposes the live estimates for /stats.
func (a *admission) snapshot() (queued int, drainRate float64, estWaitMS int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.queued, a.drainRate, a.estWaitLocked().Milliseconds()
}

// maxTenantShare is a tenant's queue-slot cap under contention: an equal
// split of the depth over the active tenants, never below one slot.
func maxTenantShare(depth, activeTenants int) int {
	if activeTenants < 1 {
		activeTenants = 1
	}
	share := depth / activeTenants
	if share < 1 {
		share = 1
	}
	return share
}

// retryAfterSeconds derives a Retry-After from the observed queue drain
// rate: the seconds needed to drain `queued` jobs at `drainRate` jobs/sec
// (1 when no rate has been observed yet), plus a deterministic jitter in
// [0, 3) seconds seeded by (seed, seq) — equal inputs produce equal
// replies, but a herd of shed clients receives staggered values instead of
// a constant. Clamped to [1, 60].
func retryAfterSeconds(queued int, drainRate float64, seed, seq uint64) int {
	sec := 1
	if drainRate > 0 && queued > 0 {
		sec = int(math.Ceil(float64(queued) / drainRate))
	}
	sec += int(admitJitter(seed, seq) % 3)
	if sec < 1 {
		sec = 1
	}
	if sec > 60 {
		sec = 60
	}
	return sec
}

// admitJitter is a deterministic 64-bit mix of (seed, seq) — splitmix64's
// finalizer over their combination.
func admitJitter(seed, seq uint64) uint64 {
	x := seed ^ (seq+1)*0x9e3779b97f4a7c15
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}
