package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"time"

	"procdecomp/internal/obs"
)

// The serve-side measurement plane: the pdserve_* metric catalog, the HTTP
// instrumentation that stamps every request with an ID, and the
// reconciliation identities that make the numbers trustworthy. The catalog is
// double-entry bookkeeping on purpose — most counters have an independent
// counterpart (the Stats atomics, the DiskCache's own counters, the journal's
// op stream), and VerifyMetrics fails loudly when the two ledgers disagree.

// serverMetrics is the server's metric catalog on one obs.Registry.
type serverMetrics struct {
	reg *obs.Registry

	// HTTP edge, from the instrument middleware: every response, every route.
	httpRequests obs.Counter   // route, code
	httpLatency  obs.Histogram // route, code

	// Typed responses, from writeResult/writeError/writeAccepted: every 4xx
	// and 5xx carries the cause admission or evaluation assigned it.
	responses obs.Counter // code, cause

	// Admission and the worker pool.
	admitted  obs.Counter
	sheds     obs.Counter // cause: queue_full, fair_share, doomed, draining
	fairSheds obs.Counter // tenant: the fair_share subset, per offender
	degraded  obs.Counter
	completed obs.Counter
	failed    obs.Counter
	panics    obs.Counter
	retries   obs.Counter

	queueDepth   obs.Gauge
	queueEstWait obs.Gauge // seconds, the admission controller's estimate
	queueWait    obs.Histogram
	workersBusy  obs.Gauge
	busySeconds  obs.Counter

	// Result cache: lookups are counted at the serve call sites, hits and
	// misses inside the DiskCache — two independent paths that must add up.
	cacheLookups obs.Counter
	cacheOps     obs.Counter // op: hit, miss, write, quarantined, evict
	cacheBytes   obs.Gauge   // installed result bytes on disk

	// Job and decision journals.
	journalAppends     obs.Counter // op: accepted, running, done, failed
	journalErrors      obs.Counter // site: accept, running, finalize, born_done
	journalFsync       obs.Histogram
	journalCompactions obs.Counter // cause: open, threshold, adapt_open, adapt_threshold

	// Async-job lifecycle and event streams.
	jobs   obs.Counter // state: accepted, recovered, requeued, done, failed
	events obs.Counter // outcome: published, dropped_after_terminal, dropped_overflow

	// The adaptation controller, mirrored against Stats.Adapt by VerifyScrape.
	adaptObs      obs.Counter // completed /run observations fed to the profiles
	adaptTriggers obs.Counter // cause: shift
	adaptSearches obs.Counter // outcome: switched, held, failed, panicked, canceled
	adaptSwitches obs.Counter // preference hot-swaps (== searches{switched})
}

func newServerMetrics() *serverMetrics {
	r := obs.NewRegistry()
	m := &serverMetrics{
		reg: r,
		httpRequests: r.NewCounter("pdserve_http_requests_total",
			"HTTP responses by route and status code", "route", "code"),
		httpLatency: r.NewHistogram("pdserve_http_request_seconds",
			"wall-clock request latency by route and status code", nil, "route", "code"),
		responses: r.NewCounter("pdserve_responses_total",
			"typed responses by status code and cause", "code", "cause"),
		admitted: r.NewCounter("pdserve_admitted_total",
			"requests admitted to the queue"),
		sheds: r.NewCounter("pdserve_sheds_total",
			"requests refused at admission, by cause", "cause"),
		fairSheds: r.NewCounter("pdserve_fair_sheds_total",
			"fair-share sheds by offending tenant", "tenant"),
		degraded: r.NewCounter("pdserve_degraded_total",
			"/search evaluations admitted with a reduced candidate budget"),
		completed: r.NewCounter("pdserve_completed_total",
			"jobs that finished with a result"),
		failed: r.NewCounter("pdserve_failed_total",
			"jobs that finished with a typed error"),
		panics: r.NewCounter("pdserve_panics_total",
			"evaluation panics caught by worker isolation"),
		retries: r.NewCounter("pdserve_retries_total",
			"panic-retry attempts"),
		queueDepth: r.NewGauge("pdserve_queue_depth",
			"jobs reserved or queued right now"),
		queueEstWait: r.NewGauge("pdserve_queue_est_wait_seconds",
			"admission's live queue-wait estimate"),
		queueWait: r.NewHistogram("pdserve_queue_wait_seconds",
			"measured queue wait at dequeue", nil),
		workersBusy: r.NewGauge("pdserve_workers_busy",
			"workers evaluating a job right now"),
		busySeconds: r.NewCounter("pdserve_worker_busy_seconds_total",
			"cumulative worker-seconds spent evaluating"),
		cacheLookups: r.NewCounter("pdserve_cache_lookups_total",
			"result-cache lookups issued by the server"),
		cacheOps: r.NewCounter("pdserve_cache_ops_total",
			"result-cache operations, by kind", "op"),
		cacheBytes: r.NewGauge("pdserve_cache_bytes",
			"installed result-cache bytes on disk"),
		journalAppends: r.NewCounter("pdserve_journal_appends_total",
			"journal records appended durably, by op", "op"),
		journalErrors: r.NewCounter("pdserve_journal_errors_total",
			"journal appends that failed, by call site", "site"),
		journalFsync: r.NewHistogram("pdserve_journal_fsync_seconds",
			"journal group-commit fsync latency", nil),
		journalCompactions: r.NewCounter("pdserve_journal_compactions_total",
			"journal compaction rewrites, by journal and trigger", "cause"),
		jobs: r.NewCounter("pdserve_jobs_total",
			"async-job lifecycle transitions, by state", "state"),
		events: r.NewCounter("pdserve_events_total",
			"job-stream event publishes, by outcome", "outcome"),
		adaptObs: r.NewCounter("pdserve_adapt_observations_total",
			"completed /run requests observed by the adaptation controller"),
		adaptTriggers: r.NewCounter("pdserve_adapt_triggers_total",
			"re-decomposition searches triggered, by cause", "cause"),
		adaptSearches: r.NewCounter("pdserve_adapt_searches_total",
			"re-decomposition searches settled, by outcome", "outcome"),
		adaptSwitches: r.NewCounter("pdserve_adapt_switches_total",
			"mapping-preference hot-swaps applied"),
	}
	// Pre-touch the fixed label spaces so every scrape exposes the whole
	// catalog (an absent family parses as 0 but hides the schema) and so
	// equal workloads produce identical sample sets.
	for _, c := range []obs.Counter{m.admitted, m.degraded, m.completed,
		m.failed, m.panics, m.retries, m.busySeconds, m.cacheLookups,
		m.adaptObs, m.adaptSwitches} {
		c.Add(0)
	}
	for _, cause := range []string{"queue_full", "fair_share", "doomed", "draining"} {
		m.sheds.Add(0, cause)
	}
	for _, op := range []string{"hit", "miss", "write", "quarantined", "evict"} {
		m.cacheOps.Add(0, op)
	}
	for _, cause := range []string{"open", "threshold", "adapt_open", "adapt_threshold"} {
		m.journalCompactions.Add(0, cause)
	}
	m.adaptTriggers.Add(0, "shift")
	for _, outcome := range []string{"switched", "held", "failed", "panicked", "canceled"} {
		m.adaptSearches.Add(0, outcome)
	}
	for _, op := range []string{"accepted", "running", "done", "failed"} {
		m.journalAppends.Add(0, op)
	}
	for _, state := range []string{"accepted", "recovered", "requeued", "done", "failed"} {
		m.jobs.Add(0, state)
	}
	for _, outcome := range []string{"published", "dropped_after_terminal", "dropped_overflow"} {
		m.events.Add(0, outcome)
	}
	m.queueDepth.Set(0)
	m.queueEstWait.Set(0)
	m.workersBusy.Set(0)
	m.cacheBytes.Set(0)
	return m
}

// newRequestID mints a process-unique request ID (the salt keeps IDs from
// colliding across restarts in one log stream).
func (s *Server) newRequestID() string {
	return fmt.Sprintf("r%016x", admitJitter(s.ridSalt, s.ridSeq.Add(1)))
}

// statusWriter captures the response status for the middleware. It forwards
// Flush so the NDJSON event stream keeps its live-tail behavior.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (w *statusWriter) code() int {
	if w.status == 0 {
		return http.StatusOK
	}
	return w.status
}

// instrument wraps one route: it adopts the client's X-Request-Id (or mints
// one), carries it in the request context and response header, logs the
// request and response lines, and feeds the edge metrics.
func (s *Server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		rid := r.Header.Get("X-Request-Id")
		if rid == "" {
			rid = s.newRequestID()
		}
		ctx := obs.WithRequestID(r.Context(), rid)
		r = r.WithContext(ctx)
		w.Header().Set("X-Request-Id", rid)
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		s.log.LogAttrs(ctx, slog.LevelInfo, "request",
			slog.String("route", route), slog.String("tenant", tenantOf(r)))
		h(sw, r)
		elapsed := time.Since(start)
		code := strconv.Itoa(sw.code())
		s.m.httpRequests.Inc(route, code)
		s.m.httpLatency.Observe(elapsed.Seconds(), route, code)
		s.log.LogAttrs(ctx, slog.LevelInfo, "response",
			slog.String("route", route), slog.String("code", code),
			slog.Int64("ms", elapsed.Milliseconds()))
	}
}

// publish is the one way events reach a job's stream: it stamps the job ID,
// the originating request ID, and the wall-clock time, then counts what the
// log did with the event. An event published after its stream's terminal
// event is a protocol violation — counted and logged, and the reconciliation
// check fails the run on it.
func (s *Server) publish(aj *asyncJob, ev Event) {
	ev.Job = aj.id
	ev.Req = aj.rid
	ev.WallMS = time.Now().UnixMilli()
	switch aj.log.publish(ev) {
	case published:
		s.m.events.Inc("published")
	case droppedTerminal:
		s.m.events.Inc("dropped_after_terminal")
		s.log.LogAttrs(obs.WithRequestID(context.Background(), aj.rid), slog.LevelWarn,
			"event after terminal", slog.String("job", aj.id), slog.String("type", ev.Type))
	case droppedOverflow:
		s.m.events.Inc("dropped_overflow")
	}
}

// jemit publishes a progress event on the job's stream, if it has one.
func (s *Server) jemit(j *job, ev Event) {
	if j.async != nil {
		s.publish(j.async, ev)
	}
}

// journalAppend wraps journal.Append with the bookkeeping every call site
// owes: the per-op append counter on success, and on failure the per-site
// error counter plus a structured log line. The error is returned so sites
// whose durability contract requires the record (the accepted record before
// a 202) can refuse; best-effort sites log and move on.
func (s *Server) journalAppend(ctx context.Context, site string, rec journalRec) error {
	err := s.journal.Append(rec)
	if err != nil {
		s.m.journalErrors.Inc(site)
		s.log.LogAttrs(ctx, slog.LevelWarn, "journal append failed",
			slog.String("site", site), slog.String("op", rec.Op),
			slog.String("job", rec.ID), slog.String("error", err.Error()))
		return err
	}
	if s.journal != nil {
		s.m.journalAppends.Inc(rec.Op)
	}
	return nil
}

// cacheGet counts one server-issued cache lookup and performs it. Every Get
// must come through here: the lookup counter pairs with the hit/miss
// counters the DiskCache reports itself, and the reconciliation identity
// lookups == hits + misses is what detects a path counting only one side.
func (s *Server) cacheGet(key string) ([]byte, bool) {
	if s.cache == nil {
		return nil, false
	}
	s.m.cacheLookups.Inc()
	return s.cache.Get(key)
}

// WriteMetrics refreshes the live gauges from the admission controller and
// worker pool and writes the registry in Prometheus text exposition format.
func (s *Server) WriteMetrics(w io.Writer) error {
	queued, _, waitMS := s.adm.snapshot()
	s.m.queueDepth.Set(float64(queued))
	s.m.queueEstWait.Set(float64(waitMS) / 1000)
	s.m.workersBusy.Set(float64(s.busyWorkers.Load()))
	s.m.cacheBytes.Set(float64(s.cache.Stats().Bytes))
	return s.m.reg.WritePrometheus(w)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.WriteMetrics(w)
}

// handleLogz serves the in-memory structured log ring: every retained line,
// or just one request's lines with ?req=<id>.
func (s *Server) handleLogz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.ring.Lines(r.URL.Query().Get("req")))
}

// VerifyMetrics scrapes the server's own registry and checks every
// reconciliation identity against the live Stats. Meaningful after Shutdown:
// the conservation identities only hold once every admitted job has settled.
func (s *Server) VerifyMetrics() error {
	var buf bytes.Buffer
	if err := s.WriteMetrics(&buf); err != nil {
		return err
	}
	sc, err := obs.ParsePrometheus(&buf)
	if err != nil {
		return err
	}
	return VerifyScrape(sc, s.Stats())
}

// allowedCauses is the response-cause contract: every typed response's cause
// label must come from its status code's set — a 429 is always queue_full or
// fair_share, a 504 always deadline or doomed, and so on.
var allowedCauses = map[string]map[string]bool{
	"200": {"ok": true},
	"202": {"accepted": true},
	"400": {"invalid": true},
	"404": {"notfound": true},
	"422": {"program": true},
	"429": {"queue_full": true, "fair_share": true},
	"500": {"panic": true, "internal": true},
	"503": {"draining": true, "shutdown": true},
	"504": {"deadline": true, "doomed": true},
}

// VerifyScrape checks a parsed /metrics scrape against the server's own
// Stats snapshot and the catalog's conservation identities. The scrape and
// the Stats are independent ledgers of the same history; a mismatch means a
// code path updated one and not the other — a metric that lies. Valid after
// drain (the gauges must be at rest and every admitted job settled).
func VerifyScrape(sc *obs.Scrape, st Stats) error {
	var bad []string
	flunk := func(format string, args ...any) {
		bad = append(bad, fmt.Sprintf(format, args...))
	}
	want := func(name string, labels map[string]string, want float64) {
		if got := sc.Sum(name, labels); got != want {
			flunk("%s%v = %v, want %v", name, labels, got, want)
		}
	}
	cause := func(c string) map[string]string { return map[string]string{"cause": c} }

	// Scrape vs Stats: every admission, pool, job, and cache counter.
	want("pdserve_admitted_total", nil, float64(st.Accepted))
	want("pdserve_sheds_total", cause("queue_full"), float64(st.Shed-st.FairShed))
	want("pdserve_sheds_total", cause("fair_share"), float64(st.FairShed))
	want("pdserve_sheds_total", cause("doomed"), float64(st.Doomed))
	want("pdserve_sheds_total", cause("draining"), float64(st.Rejected))
	want("pdserve_fair_sheds_total", nil, float64(st.FairShed))
	want("pdserve_degraded_total", nil, float64(st.Degraded))
	want("pdserve_completed_total", nil, float64(st.Completed))
	want("pdserve_failed_total", nil, float64(st.Failed))
	want("pdserve_panics_total", nil, float64(st.Panics))
	want("pdserve_retries_total", nil, float64(st.Retries))
	state := func(s string) map[string]string { return map[string]string{"state": s} }
	want("pdserve_jobs_total", state("accepted"), float64(st.Jobs.Accepted))
	want("pdserve_jobs_total", state("recovered"), float64(st.Jobs.Recovered))
	want("pdserve_jobs_total", state("requeued"), float64(st.Jobs.Requeued))
	want("pdserve_jobs_total", state("done"), float64(st.Jobs.Done))
	want("pdserve_jobs_total", state("failed"), float64(st.Jobs.Failed))
	op := func(o string) map[string]string { return map[string]string{"op": o} }
	want("pdserve_cache_ops_total", op("hit"), float64(st.Cache.Hits))
	want("pdserve_cache_ops_total", op("miss"), float64(st.Cache.Misses))
	want("pdserve_cache_ops_total", op("write"), float64(st.Cache.Writes))
	want("pdserve_cache_ops_total", op("quarantined"), float64(st.Cache.Quarantined))
	want("pdserve_cache_ops_total", op("evict"), float64(st.Cache.Evictions))
	want("pdserve_cache_bytes", nil, float64(st.Cache.Bytes))
	want("pdserve_journal_compactions_total", cause("open"), float64(st.Journal.OpenCompactions))
	want("pdserve_journal_compactions_total", cause("threshold"), float64(st.Journal.ThresholdCompactions))
	want("pdserve_journal_compactions_total", cause("adapt_open"), float64(st.Journal.AdaptOpenCompactions))
	want("pdserve_journal_compactions_total", cause("adapt_threshold"), float64(st.Journal.AdaptThresholdCompactions))

	// The adaptation plane: scrape vs the controller's own counters, plus the
	// internal identities — every trigger settles as exactly one search
	// outcome, and every switch is a switched search.
	outcome := func(o string) map[string]string { return map[string]string{"outcome": o} }
	want("pdserve_adapt_observations_total", nil, float64(st.Adapt.Observations))
	want("pdserve_adapt_triggers_total", nil, float64(st.Adapt.Triggers))
	want("pdserve_adapt_searches_total", outcome("switched"), float64(st.Adapt.Switched))
	want("pdserve_adapt_searches_total", outcome("held"), float64(st.Adapt.Held))
	want("pdserve_adapt_searches_total", outcome("failed"), float64(st.Adapt.Failed))
	want("pdserve_adapt_searches_total", outcome("panicked"), float64(st.Adapt.Panicked))
	want("pdserve_adapt_searches_total", outcome("canceled"), float64(st.Adapt.Canceled))
	if trig, settledSearches := sc.Sum("pdserve_adapt_triggers_total", nil), sc.Sum("pdserve_adapt_searches_total", nil); trig != settledSearches {
		flunk("adapt triggers %v != settled searches %v", trig, settledSearches)
	}
	if sw, won := sc.Sum("pdserve_adapt_switches_total", nil), sc.Sum("pdserve_adapt_searches_total", outcome("switched")); sw != won {
		flunk("adapt switches %v != searches{switched} %v", sw, won)
	}

	// Conservation: every admitted or requeued job settled exactly once.
	admitted := sc.Sum("pdserve_admitted_total", nil)
	requeued := sc.Sum("pdserve_jobs_total", state("requeued"))
	settled := sc.Sum("pdserve_completed_total", nil) + sc.Sum("pdserve_failed_total", nil)
	if admitted+requeued != settled {
		flunk("admitted %v + requeued %v != completed+failed %v", admitted, requeued, settled)
	}
	// Every acknowledged job reached exactly one terminal state.
	jAccepted := sc.Sum("pdserve_jobs_total", state("accepted"))
	jSettled := sc.Sum("pdserve_jobs_total", state("done")) + sc.Sum("pdserve_jobs_total", state("failed"))
	if jAccepted+requeued != jSettled {
		flunk("jobs accepted %v + requeued %v != done+failed %v", jAccepted, requeued, jSettled)
	}
	// Every cache lookup the server issued was a hit or a miss — the two
	// sides are counted in different components.
	lookups := sc.Sum("pdserve_cache_lookups_total", nil)
	if hm := sc.Sum("pdserve_cache_ops_total", op("hit")) + sc.Sum("pdserve_cache_ops_total", op("miss")); lookups != hm {
		flunk("cache lookups %v != hits+misses %v", lookups, hm)
	}
	// Every typed response's cause belongs to its status code.
	for _, smp := range sc.Series("pdserve_responses_total") {
		code, c := smp.Labels["code"], smp.Labels["cause"]
		if !allowedCauses[code][c] {
			flunk("response code %s with cause %q (count %v)", code, c, smp.Value)
		}
	}
	// The HTTP edge and the typed-response ledger agree on the codes only
	// writeError can produce.
	for _, code := range []string{"429", "504"} {
		edge := sc.Sum("pdserve_http_requests_total", map[string]string{"code": code})
		typed := sc.Sum("pdserve_responses_total", map[string]string{"code": code})
		if edge != typed {
			flunk("http edge saw %v %s responses, typed ledger %v", edge, code, typed)
		}
	}
	// No event ever followed its stream's terminal event.
	if n := sc.Sum("pdserve_events_total", map[string]string{"outcome": "dropped_after_terminal"}); n != 0 {
		flunk("%v events published after their stream's terminal event", n)
	}
	// At rest: nothing queued, nobody busy.
	if d := sc.Sum("pdserve_queue_depth", nil); d != 0 {
		flunk("queue_depth %v after drain", d)
	}
	if b := sc.Sum("pdserve_workers_busy", nil); b != 0 {
		flunk("workers_busy %v after drain", b)
	}

	if len(bad) > 0 {
		return fmt.Errorf("serve: metrics reconciliation failed:\n  %s", joinLines(bad))
	}
	return nil
}

func joinLines(lines []string) string {
	out := lines[0]
	for _, l := range lines[1:] {
		out += "\n  " + l
	}
	return out
}
