package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

const gsRun = `{"GS":true,"Procs":4,"Mode":"ctr","Defines":{"N":16}}`

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		hs.Close()
		s.Close()
	})
	return s, hs
}

func post(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

func TestServeRunEndpoint(t *testing.T) {
	_, hs := newTestServer(t, Config{CacheDir: t.TempDir()})
	resp, body := post(t, hs.URL+"/run", gsRun)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Cache"); got != "miss" {
		t.Errorf("first request X-Cache = %q, want miss", got)
	}
	var rr RunResponse
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatal(err)
	}
	if rr.Makespan == 0 || rr.Messages == 0 {
		t.Errorf("empty run result: %+v", rr)
	}

	// The identical request is a cache hit with byte-identical body.
	resp2, body2 := post(t, hs.URL+"/run", gsRun)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp2.StatusCode)
	}
	if got := resp2.Header.Get("X-Cache"); got != "hit" {
		t.Errorf("second request X-Cache = %q, want hit", got)
	}
	if !bytes.Equal(body, body2) {
		t.Error("cached response differs from the computed one")
	}

	// A request differing only in deadline shares the entry.
	resp3, body3 := post(t, hs.URL+"/run", `{"GS":true,"Procs":4,"Mode":"ctr","Defines":{"N":16},"TimeoutMS":5000}`)
	if resp3.Header.Get("X-Cache") != "hit" || !bytes.Equal(body, body3) {
		t.Error("a deadline-only difference missed the cache")
	}
}

func TestServeCompileEndpoint(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	resp, body := post(t, hs.URL+"/compile", `{"GS":true,"Procs":4,"Mode":"opt3","Blk":8,"Defines":{"N":16}}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var cr CompileResponse
	if err := json.Unmarshal(body, &cr); err != nil {
		t.Fatal(err)
	}
	if len(cr.Programs) == 0 || !strings.Contains(cr.Programs[0], "send") {
		t.Errorf("generated C looks empty: %d programs", len(cr.Programs))
	}
}

func TestServeTraceEndpoint(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	resp, body := post(t, hs.URL+"/trace", `{"GS":true,"Procs":4,"Mode":"opt3","Blk":8,"Defines":{"N":16}}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if !bytes.Contains(body, []byte("Attribution")) {
		t.Error("trace response carries no attribution")
	}
}

func TestServeSearchEndpoint(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	resp, body := post(t, hs.URL+"/search", `{"GS":true,"Procs":4,"Defines":{"N":16},"TopK":2,"Keep":4}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %.300s", resp.StatusCode, body)
	}
	if !bytes.Contains(body, []byte("Winner")) {
		t.Error("search response names no winner")
	}
}

func TestServeRejectsBadRequests(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	cases := []struct{ name, endpoint, body string }{
		{"not-json", "/run", "{"},
		{"unknown-field", "/run", `{"GS":true,"Bogus":1}`},
		{"no-program", "/run", `{"Procs":4}`},
		{"both-programs", "/run", `{"GS":true,"Source":"x"}`},
		{"bad-procs", "/run", `{"GS":true,"Procs":-2}`},
		{"bad-mode", "/run", `{"GS":true,"Mode":"opt9"}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := post(t, hs.URL+tc.endpoint, tc.body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d: %s", resp.StatusCode, body)
			}
		})
	}
}

// A syntactically valid request whose program fails to compile is the
// program's fault, not the protocol's: 422 with the compile error.
func TestServeUnprocessableProgram(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	resp, body := post(t, hs.URL+"/run", `{"Source":"this is not Idn","Entry":"main"}`)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var je JobError
	if err := json.Unmarshal(body, &je); err != nil {
		t.Fatal(err)
	}
	if je.Kind != KindFailed || je.Message == "" {
		t.Errorf("error body %+v", je)
	}
}

// A request whose deadline expires while it waits in the queue comes back
// 504, and the worker never wastes pool time evaluating it.
func TestServeDeadlineExceeded(t *testing.T) {
	cfg := Config{Workers: 1}
	cfg.gate = func(j *job) { <-j.ctx.Done() } // hold the worker past every deadline
	_, hs := newTestServer(t, cfg)
	resp, body := post(t, hs.URL+"/run", `{"GS":true,"Defines":{"N":16},"TimeoutMS":50}`)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var je JobError
	if err := json.Unmarshal(body, &je); err != nil {
		t.Fatal(err)
	}
	if je.Kind != KindDeadline {
		t.Errorf("kind %q, want %q", je.Kind, KindDeadline)
	}
}

// With one worker held and a one-slot queue, the third concurrent request
// must be shed immediately: 429 plus Retry-After, not an unbounded queue.
func TestServeShedsOnFullQueue(t *testing.T) {
	release := make(chan struct{})
	cfg := Config{Workers: 1, QueueDepth: 1}
	cfg.gate = func(j *job) { <-release }
	s, hs := newTestServer(t, cfg)
	defer close(release)

	// Occupy the worker, then the queue slot. Distinct bodies, so no cache
	// interplay; poll stats until both are admitted. The two occupiers race
	// each other for the single slot, so the loser retries its shed until
	// it lands. These goroutines may outlive the test body, so they must
	// not touch t.
	occupy := func(body string) {
		for {
			resp, err := http.Post(hs.URL+"/run", "application/json", strings.NewReader(body))
			if err != nil {
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusTooManyRequests {
				return
			}
			time.Sleep(time.Millisecond)
		}
	}
	go occupy(`{"GS":true,"Defines":{"N":16},"Procs":2}`)
	go occupy(`{"GS":true,"Defines":{"N":16},"Procs":3}`)
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().Accepted < 2 {
		if time.Now().After(deadline) {
			t.Fatal("the first two requests were never admitted")
		}
		time.Sleep(time.Millisecond)
	}

	resp, body := post(t, hs.URL+"/run", `{"GS":true,"Defines":{"N":16},"Procs":4}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("shed response has no Retry-After")
	}
	if s.Stats().Shed == 0 {
		t.Error("shed not counted")
	}
}

// Panic isolation: with the chaos knob set to panic on every job and retries
// enabled, every request still succeeds; with retries disabled, the request
// fails 500 with the panic recorded — the process survives either way.
func TestServePanicIsolation(t *testing.T) {
	t.Run("retried", func(t *testing.T) {
		s, hs := newTestServer(t, Config{PanicEvery: 1, Retries: 2})
		resp, body := post(t, hs.URL+"/run", gsRun)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, body)
		}
		st := s.Stats()
		if st.Panics == 0 || st.Retries == 0 {
			t.Errorf("stats %+v recorded no panic/retry", st)
		}
	})
	t.Run("exhausted", func(t *testing.T) {
		// Retries: -1 means zero retries (the zero value defaults to 2).
		_, hs := newTestServer(t, Config{PanicEvery: 1, Retries: -1})
		resp, body := post(t, hs.URL+"/run", gsRun)
		if resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("status %d: %s", resp.StatusCode, body)
		}
		var je JobError
		if err := json.Unmarshal(body, &je); err != nil {
			t.Fatal(err)
		}
		if je.Kind != KindPanic || !strings.Contains(je.Message, "chaos") {
			t.Errorf("error body %+v", je)
		}
	})
}

// Graceful shutdown: a request in flight when Shutdown begins completes; a
// request arriving after it begins is refused 503 + Retry-After.
func TestServeGracefulDrain(t *testing.T) {
	started := make(chan struct{}, 8)
	release := make(chan struct{})
	cfg := Config{Workers: 1, DrainTimeout: 5 * time.Second}
	cfg.gate = func(j *job) { started <- struct{}{}; <-release }
	s, hs := newTestServer(t, cfg)

	type outcome struct {
		status int
		body   []byte
	}
	inflight := make(chan outcome, 1)
	go func() {
		resp, body := post(t, hs.URL+"/run", gsRun)
		inflight <- outcome{resp.StatusCode, body}
	}()
	<-started // the job is on a worker

	shutdownDone := make(chan error, 1)
	go func() { shutdownDone <- s.Shutdown(context.Background()) }()
	// Draining begins promptly; a new request is turned away at the door.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, _ := post(t, hs.URL+"/run", `{"GS":true,"Defines":{"N":16},"Procs":2}`)
		if resp.StatusCode == http.StatusServiceUnavailable {
			if resp.Header.Get("Retry-After") == "" {
				t.Error("draining response has no Retry-After")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("server never started refusing new work")
		}
		time.Sleep(time.Millisecond)
	}

	close(release) // let the in-flight job finish
	if got := <-inflight; got.status != http.StatusOK {
		t.Fatalf("in-flight request got %d during drain: %s", got.status, got.body)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("drain reported %v", err)
	}
}

// A hard drain deadline cancels stragglers instead of hanging shutdown.
func TestServeDrainTimeoutCancels(t *testing.T) {
	cfg := Config{Workers: 1, DrainTimeout: 50 * time.Millisecond}
	cfg.gate = func(j *job) { <-j.ctx.Done() } // the job never finishes on its own
	s, hs := newTestServer(t, cfg)

	done := make(chan outcomePair, 1)
	go func() {
		resp, body := post(t, hs.URL+"/run", gsRun)
		done <- outcomePair{resp.StatusCode, body}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().Accepted == 0 {
		if time.Now().After(deadline) {
			t.Fatal("request never admitted")
		}
		time.Sleep(time.Millisecond)
	}

	if err := s.Shutdown(context.Background()); err == nil {
		t.Error("a timed-out drain should report that it canceled work")
	}
	select {
	case o := <-done:
		if o.status != http.StatusServiceUnavailable {
			t.Errorf("canceled straggler got %d: %s", o.status, o.body)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("the straggler's handler hung after shutdown")
	}
}

type outcomePair struct {
	status int
	body   []byte
}
