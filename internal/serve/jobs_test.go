package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func contextWithTimeout(t *testing.T, d time.Duration) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), d)
	t.Cleanup(cancel)
	return ctx
}

func postJSON(t *testing.T, url string, payload any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(payload)
	if err != nil {
		t.Fatal(err)
	}
	return post(t, url, string(b))
}

// pollJob GETs the job until it leaves 202, bounded.
func pollJob(t *testing.T, base, id string) (*http.Response, []byte) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(base + "/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		body := readAll(t, resp)
		if resp.StatusCode != http.StatusAccepted {
			return resp, body
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never left pending", id)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func readAll(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// readEvents consumes the job's NDJSON stream to EOF and returns the events.
func readEvents(t *testing.T, base, id string) []Event {
	t.Helper()
	resp, err := http.Get(base + "/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events status %d", resp.StatusCode)
	}
	var evs []Event
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		evs = append(evs, ev)
	}
	return evs
}

// checkStream asserts the stream invariants: dense Seq from 0, "accepted"
// first, exactly one terminal event, and it is last.
func checkStream(t *testing.T, evs []Event) Event {
	t.Helper()
	if len(evs) == 0 {
		t.Fatal("empty event stream")
	}
	terminals := 0
	for i, ev := range evs {
		if ev.Seq != i {
			t.Errorf("event %d has Seq %d; the stream is not dense", i, ev.Seq)
		}
		if ev.Terminal {
			terminals++
		}
	}
	if evs[0].Type != "accepted" {
		t.Errorf("first event %q, want accepted", evs[0].Type)
	}
	if terminals != 1 || !evs[len(evs)-1].Terminal {
		t.Fatalf("%d terminal events (last terminal: %v), want exactly one, last", terminals, evs[len(evs)-1].Terminal)
	}
	return evs[len(evs)-1]
}

func TestAsyncJobMatchesSyncBytes(t *testing.T) {
	_, hs := newTestServer(t, Config{CacheDir: t.TempDir()})
	body := Request{GS: true, Procs: 4, Mode: "ctr", Defines: map[string]int64{"N": 16}}

	resp, ack := postJSON(t, hs.URL+"/jobs", JobSubmit{Endpoint: "/run", Request: body})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /jobs = %d: %s", resp.StatusCode, ack)
	}
	var acc JobAccepted
	if err := json.Unmarshal(ack, &acc); err != nil {
		t.Fatal(err)
	}
	if acc.ID == "" || resp.Header.Get("Location") != "/jobs/"+acc.ID {
		t.Fatalf("ack = %+v, Location = %q", acc, resp.Header.Get("Location"))
	}

	jresp, jbody := pollJob(t, hs.URL, acc.ID)
	if jresp.StatusCode != http.StatusOK {
		t.Fatalf("job result status %d: %s", jresp.StatusCode, jbody)
	}
	sresp, sbody := post(t, hs.URL+"/run", gsRun)
	if sresp.StatusCode != http.StatusOK {
		t.Fatalf("sync status %d", sresp.StatusCode)
	}
	if !bytes.Equal(jbody, sbody) {
		t.Error("async job bytes differ from the synchronous endpoint's")
	}
	// Terminal results re-read identically, any number of times.
	if _, again := pollJob(t, hs.URL, acc.ID); !bytes.Equal(again, jbody) {
		t.Error("re-reading the job returned different bytes")
	}

	last := checkStream(t, readEvents(t, hs.URL, acc.ID))
	if last.Type != "done" {
		t.Errorf("terminal event %q, want done", last.Type)
	}
}

func TestAsyncJobNotFound(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	resp, err := http.Get(hs.URL + "/jobs/j00000000000000ff")
	if err != nil {
		t.Fatal(err)
	}
	readAll(t, resp)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job status %d, want 404", resp.StatusCode)
	}
}

func TestAsyncJobFailureIsTerminal(t *testing.T) {
	_, hs := newTestServer(t, Config{CacheDir: t.TempDir()})
	resp, ack := postJSON(t, hs.URL+"/jobs", JobSubmit{Endpoint: "/run",
		Request: Request{Source: "proc main() { x := nope(); }", Entry: "main"}})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /jobs = %d: %s", resp.StatusCode, ack)
	}
	var acc JobAccepted
	if err := json.Unmarshal(ack, &acc); err != nil {
		t.Fatal(err)
	}
	jresp, jbody := pollJob(t, hs.URL, acc.ID)
	if jresp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("failed job status %d (%s), want 422", jresp.StatusCode, jbody)
	}
	var jerr JobError
	if err := json.Unmarshal(jbody, &jerr); err != nil || jerr.Kind != KindFailed {
		t.Fatalf("failed job error = %+v (%v), want KindFailed", jerr, err)
	}
	last := checkStream(t, readEvents(t, hs.URL, acc.ID))
	if last.Type != "failed" || last.Kind != KindFailed {
		t.Errorf("terminal event = %+v, want failed/KindFailed", last)
	}
}

func TestSearchJobStreamsTierProgress(t *testing.T) {
	_, hs := newTestServer(t, Config{CacheDir: t.TempDir()})
	resp, ack := postJSON(t, hs.URL+"/jobs", JobSubmit{Endpoint: "/search",
		Request: Request{GS: true, Procs: 2, Keep: 4, TopK: 2}})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /jobs = %d: %s", resp.StatusCode, ack)
	}
	var acc JobAccepted
	if err := json.Unmarshal(ack, &acc); err != nil {
		t.Fatal(err)
	}
	if r, b := pollJob(t, hs.URL, acc.ID); r.StatusCode != http.StatusOK {
		t.Fatalf("search job status %d: %s", r.StatusCode, b)
	}
	evs := readEvents(t, hs.URL, acc.ID)
	checkStream(t, evs)
	stages := map[string]bool{}
	for _, ev := range evs {
		if ev.Type == "search" {
			stages[ev.Stage] = true
		}
	}
	for _, want := range []string{"baseline", "enumerated", "static", "predicted", "measured", "winner"} {
		if !stages[want] {
			t.Errorf("stream missing search stage %q (saw %v)", want, stages)
		}
	}
}

// The drain-flush regression test: SIGTERM-style shutdown must push a
// terminal NDJSON event to every open stream before the listener would
// close — i.e. Server.Shutdown does not return until streams terminate.
func TestShutdownFlushesTerminalEventToOpenStreams(t *testing.T) {
	var hold atomic.Bool
	release := make(chan struct{})
	entered := make(chan struct{}, 4)
	cfg := Config{CacheDir: t.TempDir(), Workers: 1, DrainTimeout: 100 * time.Millisecond}
	cfg.gate = func(j *job) {
		if hold.Load() {
			entered <- struct{}{}
			select {
			case <-release:
			case <-j.ctx.Done():
			}
		}
	}
	s, hs := newTestServer(t, cfg)
	defer close(release)

	hold.Store(true)
	resp, ack := postJSON(t, hs.URL+"/jobs", JobSubmit{Endpoint: "/run",
		Request: Request{GS: true, Procs: 2, Mode: "ctr", Defines: map[string]int64{"N": 16}}})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /jobs = %d: %s", resp.StatusCode, ack)
	}
	var acc JobAccepted
	if err := json.Unmarshal(ack, &acc); err != nil {
		t.Fatal(err)
	}

	<-entered // the job is in the worker, wedged at the gate

	// Open the stream while the job is wedged.
	type streamResult struct {
		evs []Event
	}
	got := make(chan streamResult, 1)
	go func() {
		got <- streamResult{evs: readEvents(t, hs.URL, acc.ID)}
	}()
	waitFor(t, "the stream to replay the admission events", func() bool {
		n, _ := s.lookupJob(acc.ID).log.snapshot()
		return n >= 2 // accepted, queued
	})

	// Drain: the held job cannot finish, so the drain timeout cancels it.
	// By the time Shutdown returns, the stream must have terminated.
	shutdownDone := make(chan error, 1)
	go func() { shutdownDone <- s.Shutdown(contextWithTimeout(t, 5*time.Second)) }()
	select {
	case err := <-shutdownDone:
		if err == nil {
			t.Error("drain of a wedged job reported clean shutdown")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Shutdown hung")
	}
	select {
	case sr := <-got:
		last := checkStream(t, sr.evs)
		if last.Type != "canceled" || last.Kind != KindCanceled {
			t.Errorf("terminal event after drain = %+v, want canceled", last)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("stream did not terminate after Shutdown returned")
	}
}

// Kill -9 mid-load, restart on the same directory: every acknowledged job
// is re-run (or already terminal) and re-served byte-identically.
func TestCrashRestartRecoversAcknowledgedJobs(t *testing.T) {
	dir := t.TempDir()
	var hold atomic.Bool
	release := make(chan struct{})
	entered := make(chan string, 16)
	cfg := Config{CacheDir: dir, Workers: 1, QueueDepth: 16}
	cfg.gate = func(j *job) {
		if hold.Load() {
			entered <- j.key
			select {
			case <-release:
			case <-j.ctx.Done():
			}
		}
	}
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hsA := httptest.NewServer(a.Handler())

	runReq := Request{GS: true, Procs: 2, Mode: "ctr", Defines: map[string]int64{"N": 16}}
	traceReq := Request{GS: true, Procs: 2, Mode: "opt3", Blk: 8, Defines: map[string]int64{"N": 16}}

	// Job 1 completes before the crash: its done record and cache entry are
	// durable, so the restarted server re-serves it without re-running.
	resp, ack := postJSON(t, hsA.URL+"/jobs", JobSubmit{Endpoint: "/run", Request: runReq})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("job 1 ack = %d: %s", resp.StatusCode, ack)
	}
	var acc1 JobAccepted
	if err := json.Unmarshal(ack, &acc1); err != nil {
		t.Fatal(err)
	}
	r1, body1 := pollJob(t, hsA.URL, acc1.ID)
	if r1.StatusCode != http.StatusOK {
		t.Fatalf("job 1 status %d", r1.StatusCode)
	}

	// Jobs 2 and 3 are acknowledged but unfinished at the crash: 2 wedged
	// mid-run in the gate, 3 still queued behind it.
	hold.Store(true)
	_, ack2 := postJSON(t, hsA.URL+"/jobs", JobSubmit{Endpoint: "/trace", Request: traceReq})
	var acc2 JobAccepted
	if err := json.Unmarshal(ack2, &acc2); err != nil {
		t.Fatal(err)
	}
	<-entered // job 2 is in the worker, wedged
	_, ack3 := postJSON(t, hsA.URL+"/jobs", JobSubmit{Endpoint: "/run",
		Request: Request{GS: true, Procs: 4, Mode: "opt2", Defines: map[string]int64{"N": 16}}})
	var acc3 JobAccepted
	if err := json.Unmarshal(ack3, &acc3); err != nil {
		t.Fatal(err)
	}

	// kill -9: the journal stops cold (no terminal records for 2 and 3),
	// in-flight work is canceled, nothing is drained.
	a.crash()
	close(release)
	hsA.Close()
	a.Close()

	// Restart on the same directory.
	hold.Store(false)
	b, err := New(Config{CacheDir: dir, Workers: 2, QueueDepth: 16})
	if err != nil {
		t.Fatal(err)
	}
	hsB := httptest.NewServer(b.Handler())
	defer func() {
		hsB.Close()
		b.Close()
	}()
	st := b.Stats()
	if st.Jobs.Recovered != 3 {
		t.Errorf("recovered %d jobs, want 3", st.Jobs.Recovered)
	}
	if st.Jobs.Requeued != 2 {
		t.Errorf("requeued %d jobs, want 2 (the unfinished ones)", st.Jobs.Requeued)
	}

	// Job 1: served from the journal + cache, byte-identical, no re-run.
	rb1, bodyB1 := pollJob(t, hsB.URL, acc1.ID)
	if rb1.StatusCode != http.StatusOK || !bytes.Equal(bodyB1, body1) {
		t.Errorf("job 1 after restart: status %d, bytes identical: %v", rb1.StatusCode, bytes.Equal(bodyB1, body1))
	}

	// Jobs 2 and 3: re-run to completion; bytes must match a fresh
	// synchronous evaluation of the same request (which hits the cache the
	// re-run populated).
	for _, tc := range []struct {
		id       string
		endpoint string
		req      Request
	}{
		{acc2.ID, "/trace", traceReq},
		{acc3.ID, "/run", Request{GS: true, Procs: 4, Mode: "opt2", Defines: map[string]int64{"N": 16}}},
	} {
		rb, body := pollJob(t, hsB.URL, tc.id)
		if rb.StatusCode != http.StatusOK {
			t.Fatalf("job %s after restart: status %d: %s", tc.id, rb.StatusCode, body)
		}
		sreq, _ := json.Marshal(tc.req)
		sresp, sbody := post(t, hsB.URL+tc.endpoint, string(sreq))
		if sresp.StatusCode != http.StatusOK || !bytes.Equal(body, sbody) {
			t.Errorf("job %s bytes differ from the synchronous result after restart", tc.id)
		}
		if sresp.Header.Get("X-Cache") != "hit" {
			t.Errorf("re-run of job %s did not repopulate the cache", tc.id)
		}
		last := checkStream(t, readEvents(t, hsB.URL, tc.id))
		if last.Type != "done" {
			t.Errorf("job %s terminal event %q, want done", tc.id, last.Type)
		}
	}

	// Restarting again with everything terminal re-runs nothing.
	hsB.Close()
	b.Close()
	c, err := New(Config{CacheDir: dir, QueueDepth: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if st := c.Stats(); st.Jobs.Recovered != 3 || st.Jobs.Requeued != 0 {
		t.Errorf("third boot recovered %d / requeued %d, want 3 / 0", st.Jobs.Recovered, st.Jobs.Requeued)
	}
}

func TestHealthAndReadiness(t *testing.T) {
	s, hs := newTestServer(t, Config{})
	for _, ep := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(hs.URL + ep)
		if err != nil {
			t.Fatal(err)
		}
		readAll(t, resp)
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s = %d, want 200 while serving", ep, resp.StatusCode)
		}
	}
	if err := s.Shutdown(contextWithTimeout(t, 5*time.Second)); err != nil {
		t.Fatal(err)
	}
	// Liveness holds through drain; readiness drops, so a balancer stops
	// routing before the listener goes away.
	resp, err := http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/healthz during drain = %d, want 200", resp.StatusCode)
	}
	resp, err = http.Get(hs.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(string(body), "draining") {
		t.Errorf("/readyz during drain = %d %q, want 503 draining", resp.StatusCode, body)
	}
}

func TestDegradedSearchReportsBudget(t *testing.T) {
	// DegradeAt < 0 forces the degraded path on every /search admission.
	_, hs := newTestServer(t, Config{CacheDir: t.TempDir(), DegradeAt: -1, DegradeKeep: 3})
	req := `{"GS":true,"Procs":2}`
	resp, body := post(t, hs.URL+"/search", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded search = %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Degraded"); got != "3" {
		t.Errorf("X-Degraded = %q, want 3", got)
	}
	var sr struct {
		DegradedBudget int
	}
	if err := json.Unmarshal(body, &sr); err != nil || sr.DegradedBudget != 3 {
		t.Errorf("DegradedBudget = %d (%v), want 3 in the reply body", sr.DegradedBudget, err)
	}
	// The degraded entry is cached under its own key: a second degraded
	// request hits it, and it never shadows the full-fidelity answer.
	resp2, body2 := post(t, hs.URL+"/search", req)
	if resp2.Header.Get("X-Cache") != "hit" || !bytes.Equal(body, body2) {
		t.Errorf("second degraded search: X-Cache %q, identical %v", resp2.Header.Get("X-Cache"), bytes.Equal(body, body2))
	}

	// A full-fidelity server on the same cache dir must not serve the
	// degraded bytes for the plain request.
	full := Request{GS: true, Procs: 2}
	norm, err := normalize("/search", full)
	if err != nil {
		t.Fatal(err)
	}
	if key := contentKey("/search", norm, 0, ""); key == contentKey("/search", norm, 3, "") {
		t.Error("degraded and full content keys collide")
	}
}
