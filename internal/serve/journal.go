package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// The job journal is the durability half of the async-job contract: a
// request POSTed to /jobs is acknowledged only after its "accepted" record
// (carrying the full normalized request) is fsynced to an append-only
// NDJSON file, and every job later appends exactly one terminal record —
// "done" with its content key, or "failed" with its typed error. A server
// killed at any instant can therefore reconstruct every acknowledged job on
// restart: terminal jobs are served from the journal plus the result cache,
// and accepted-but-unfinished jobs are re-enqueued and re-run.
//
// Crash safety follows the same discipline as the disk cache:
//
//   - records are appended with a group-commit writer (one fsync covers a
//     batch of concurrent appends) and a record is only acknowledged after
//     its batch is durable;
//   - on open, a torn tail — the partial last line a kill mid-append leaves
//     — is quarantined to the cache's quarantine directory and the journal
//     is compacted to its valid prefix via a temp-file+rename rewrite, so
//     recovery never re-parses (or trusts) torn bytes.

const (
	journalName     = "jobs.journal"
	journalTornName = "jobs.journal.torn"
)

// journalRec is one NDJSON journal line.
type journalRec struct {
	Op       string   // "accepted", "running", "done", "failed"
	ID       string   // job ID
	RID      string   `json:",omitempty"` // accepted: originating request ID
	Endpoint string   `json:",omitempty"` // accepted: target pipeline
	Tenant   string   `json:",omitempty"` // accepted: fair-share account
	Key      string   `json:",omitempty"` // accepted/done: content key
	Budget   int      `json:",omitempty"` // accepted: degraded /search budget
	Mapping  string   `json:",omitempty"` // accepted: adaptive mapping preference
	Req      *Request `json:",omitempty"` // accepted: normalized request
	Kind     ErrKind  `json:",omitempty"` // failed: error kind
	Message  string   `json:",omitempty"` // failed: error message
	Attempts int      `json:",omitempty"` // failed: evaluation attempts
}

type journalAppend struct {
	line []byte
	done chan error
}

// journal is the append side: a single writer goroutine drains a channel of
// pending records, writes them in one syscall, fsyncs once, and then
// acknowledges the whole batch — group commit, so thousands of concurrent
// accepts do not serialize on per-record fsyncs.
type journal struct {
	path string
	dir  string
	// compacted records whether open found anything to rewrite (a torn tail
	// or droppable records) — surfaced as a metric by the server.
	compacted bool
	// compactEvery folds the journal in place after that many runtime
	// appends (0 = only at open); appended counts records since the last
	// fold. Both are touched only on the writer goroutine.
	compactEvery int
	appended     int
	// onCompact, when set, observes each runtime threshold compaction. Set
	// before the first Append; never mutated after.
	onCompact func()
	// onFsync, when set, observes each group-commit fsync's latency. Set
	// before the first Append; never mutated after.
	onFsync func(time.Duration)

	mu     sync.Mutex
	f      *os.File
	dead   bool // crashed or closed: appends fail, nothing more is written
	wg     sync.WaitGroup
	writes chan journalAppend
}

// Append journals one record durably: it returns once the record (and any
// batchmates) has been fsynced, or an error if the journal is closed.
func (j *journal) Append(rec journalRec) error {
	if j == nil {
		return nil
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("serve: journal marshal: %w", err)
	}
	a := journalAppend{line: append(line, '\n'), done: make(chan error, 1)}
	j.mu.Lock()
	if j.dead {
		j.mu.Unlock()
		return fmt.Errorf("serve: journal closed")
	}
	j.writes <- a
	j.mu.Unlock()
	return <-a.done
}

// run is the group-commit writer.
func (j *journal) run() {
	defer j.wg.Done()
	for a := range j.writes {
		batch := []journalAppend{a}
	drain:
		for len(batch) < 512 {
			select {
			case b, ok := <-j.writes:
				if !ok {
					break drain
				}
				batch = append(batch, b)
			default:
				break drain
			}
		}
		var buf bytes.Buffer
		for _, b := range batch {
			buf.Write(b.line)
		}
		_, err := j.f.Write(buf.Bytes())
		if err == nil {
			t0 := time.Now()
			err = j.f.Sync()
			if j.onFsync != nil {
				j.onFsync(time.Since(t0))
			}
		}
		for _, b := range batch {
			b.done <- err
		}
		j.appended += len(batch)
		if err == nil {
			j.maybeCompact()
		}
	}
}

// maybeCompact folds the journal in place once compactEvery records have been
// appended since the last fold. It runs on the writer goroutine between
// batches — no append is in flight — and the swap is crash-safe: the
// compacted image goes to a temp file that stays open, so the rename either
// installs it (and appends continue on that same fd) or fails and leaves the
// journal untouched. Any error just skips the fold: compaction is an
// optimization, never a reason to fail an acknowledged append.
func (j *journal) maybeCompact() {
	if j.compactEvery <= 0 || j.appended < j.compactEvery {
		return
	}
	j.appended = 0
	jobs, _, valid, torn, err := parseJournal(j.path)
	if err != nil || len(torn) > 0 {
		return // unreadable or foreign bytes: leave folding to the next open
	}
	buf, err := foldJobs(jobs)
	if err != nil || buf.Len() >= len(valid) {
		return // nothing to fold away
	}
	tmp, err := os.CreateTemp(j.dir, journalName+".*"+cacheTmpSuffix)
	if err != nil {
		return
	}
	if _, err := tmp.Write(buf.Bytes()); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), j.path); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return
	}
	// tmp's fd now addresses the live journal, positioned at its end; swap
	// it in under the same lock crash and Close take.
	j.mu.Lock()
	if j.dead {
		j.mu.Unlock()
		tmp.Close()
		return
	}
	old := j.f
	j.f = tmp
	j.mu.Unlock()
	old.Close()
	if j.onCompact != nil {
		j.onCompact()
	}
}

// Close flushes pending appends and closes the file. Further appends fail.
func (j *journal) Close() {
	if j == nil {
		return
	}
	j.mu.Lock()
	if j.dead {
		j.mu.Unlock()
		return
	}
	j.dead = true
	close(j.writes)
	j.mu.Unlock()
	j.wg.Wait()
	j.f.Close()
}

// crash abandons the journal without flushing — the test seam that models
// kill -9: pending and future appends error out and nothing more reaches
// disk through this handle.
func (j *journal) crash() {
	if j == nil {
		return
	}
	j.mu.Lock()
	if j.dead {
		j.mu.Unlock()
		return
	}
	j.dead = true
	close(j.writes)
	j.f.Close() // in-flight batch writes fail on the closed fd
	j.mu.Unlock()
	j.wg.Wait()
}

// recoveredJob is one job reconstructed from the journal on open.
type recoveredJob struct {
	id       string
	rid      string // originating request ID, carried for log correlation
	endpoint string
	tenant   string
	key      string
	budget   int
	mapping  string
	req      Request
	// terminal state, if the job reached one before the crash:
	done bool
	jerr *JobError // non-nil iff the job failed
	// unfinished == !done && jerr == nil: re-run it.
}

func (r *recoveredJob) unfinished() bool { return !r.done && r.jerr == nil }

// openJournal opens (creating if needed) the journal under dir, recovering
// prior state first: it parses the valid prefix, quarantines a torn tail,
// rewrites the compacted journal atomically, and returns every known job in
// acceptance order plus the highest job sequence number seen. compactEvery
// additionally folds the journal in place after that many runtime appends
// (0 disables runtime folding; open always compacts).
func openJournal(dir string, compactEvery int) (*journal, []*recoveredJob, uint64, error) {
	path := filepath.Join(dir, journalName)
	jobs, maxSeq, valid, torn, err := parseJournal(path)
	if err != nil {
		return nil, nil, 0, err
	}
	if len(torn) > 0 {
		tornPath := filepath.Join(dir, quarantineDir, journalTornName)
		if err := os.WriteFile(tornPath, torn, 0o644); err != nil {
			return nil, nil, 0, fmt.Errorf("serve: quarantine journal tail: %w", err)
		}
	}
	// Compact: keep, per job, the accepted record and (if any) the terminal
	// record; drop "running" markers and the torn tail. Temp-file+rename, so
	// a kill mid-compaction leaves either the old journal or the new one.
	buf, err := foldJobs(jobs)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("serve: journal compact: %w", err)
	}
	compacted := len(jobs) > 0 || len(valid) != buf.Len() || len(torn) > 0
	if compacted {
		if err := atomicRewrite(dir, path, buf.Bytes()); err != nil {
			return nil, nil, 0, fmt.Errorf("serve: journal compact: %w", err)
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("serve: open journal: %w", err)
	}
	j := &journal{path: path, dir: dir, compacted: compacted, compactEvery: compactEvery,
		f: f, writes: make(chan journalAppend, 1024)}
	j.wg.Add(1)
	go j.run()
	return j, jobs, maxSeq, nil
}

// foldJobs renders the compacted journal image: per job, its accepted record
// and (if it reached one) a single terminal record — "running" markers,
// duplicate terminals, and torn bytes fold away.
func foldJobs(jobs []*recoveredJob) (*bytes.Buffer, error) {
	var buf bytes.Buffer
	for _, rj := range jobs {
		acc := journalRec{Op: "accepted", ID: rj.id, RID: rj.rid, Endpoint: rj.endpoint,
			Tenant: rj.tenant, Key: rj.key, Budget: rj.budget, Mapping: rj.mapping, Req: &rj.req}
		b, err := json.Marshal(acc)
		if err != nil {
			return nil, err
		}
		buf.Write(append(b, '\n'))
		var term *journalRec
		if rj.done {
			term = &journalRec{Op: "done", ID: rj.id, Key: rj.key}
		} else if rj.jerr != nil {
			term = &journalRec{Op: "failed", ID: rj.id, Kind: rj.jerr.Kind,
				Message: rj.jerr.Message, Attempts: rj.jerr.Attempts}
		}
		if term != nil {
			b, err := json.Marshal(*term)
			if err != nil {
				return nil, err
			}
			buf.Write(append(b, '\n'))
		}
	}
	return &buf, nil
}

// atomicRewrite replaces path with data via temp-file+rename inside dir — a
// kill at any instant leaves the old bytes or the new bytes, never a mix.
// The job journal's open-time compaction and the adapt decision journal both
// funnel their rewrites through here.
func atomicRewrite(dir, path string, data []byte) error {
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".*"+cacheTmpSuffix)
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// parseJournal reads the journal and folds its records into per-job state.
// It returns the jobs in acceptance order, the highest job sequence parsed
// from the IDs, the valid byte prefix, and any torn tail bytes.
func parseJournal(path string) (jobs []*recoveredJob, maxSeq uint64, valid, torn []byte, err error) {
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, 0, nil, nil, nil
	}
	if err != nil {
		return nil, 0, nil, nil, fmt.Errorf("serve: read journal: %w", err)
	}
	byID := map[string]*recoveredJob{}
	off := 0
loop:
	for off < len(raw) {
		nl := bytes.IndexByte(raw[off:], '\n')
		if nl < 0 {
			break // no trailing newline: torn tail
		}
		line := raw[off : off+nl]
		var rec journalRec
		if err := json.Unmarshal(line, &rec); err != nil || rec.ID == "" {
			break // garbage from here on: torn tail
		}
		switch rec.Op {
		case "accepted":
			if rec.Req == nil {
				break loop // a request-less accept is corrupt: torn tail
			}
			rj := &recoveredJob{id: rec.ID, rid: rec.RID, endpoint: rec.Endpoint,
				tenant: rec.Tenant, key: rec.Key, budget: rec.Budget, mapping: rec.Mapping, req: *rec.Req}
			if _, dup := byID[rec.ID]; !dup {
				byID[rec.ID] = rj
				jobs = append(jobs, rj)
			}
			if seq, ok := parseJobID(rec.ID); ok && seq > maxSeq {
				maxSeq = seq
			}
		case "done":
			if rj := byID[rec.ID]; rj != nil {
				rj.done, rj.jerr = true, nil
			}
		case "failed":
			if rj := byID[rec.ID]; rj != nil && !rj.done {
				rj.jerr = &JobError{Kind: rec.Kind, Message: rec.Message, Attempts: rec.Attempts}
			}
		case "running":
			// informational only; an unfinished job re-runs either way
		}
		off += nl + 1
	}
	return jobs, maxSeq, raw[:off], raw[off:], nil
}

// jobID formats and parseJobID parses the journal's job identifiers: a
// monotonic sequence number, resumed past the journal's maximum on restart
// so IDs never collide across crashes.
func jobID(seq uint64) string { return fmt.Sprintf("j%016x", seq) }

func parseJobID(id string) (uint64, bool) {
	var seq uint64
	if _, err := fmt.Sscanf(id, "j%016x", &seq); err != nil {
		return 0, false
	}
	return seq, true
}
