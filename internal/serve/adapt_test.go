package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"testing"
	"time"

	"procdecomp/internal/adapt"
)

// The end-to-end adaptation proof: a server watching real /run traffic
// detects a problem-size shift, runs a real autotune search in the
// background, hot-swaps the winning mapping for subsequent requests, and —
// after a restart on the same cache directory — resumes the preference from
// its decision journal. procs=2 with N stepping 8→12 is the smallest
// workload where the search finds a decisive winner, so the test stays fast.

const (
	adaptBaseRun  = `{"GS":true,"Procs":2,"Mode":"ctr","Defines":{"N":8}}`
	adaptShiftRun = `{"GS":true,"Procs":2,"Mode":"ctr","Defines":{"N":12}}`
)

// adaptTestConfig is tuned so a handful of requests cross every threshold:
// four observations warm the scenario up, two dwells confirm the shift, and
// the long cooldown guarantees at most one search in the test's lifetime.
func adaptTestConfig(dir string) Config {
	return Config{
		CacheDir: dir,
		Workers:  1,
		Adapt: adapt.Config{
			Enabled: true, Alpha: 0.5, ShiftAt: 0.6, MinObs: 4, Dwell: 2,
			Cooldown: 1000, MinGain: 0.01, SearchKeep: 6, SearchTopK: 2,
		},
	}
}

func getAdapt(t *testing.T, base string) AdaptResponse {
	t.Helper()
	resp, err := http.Get(base + "/adapt")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	var ar AdaptResponse
	if err := json.Unmarshal(body, &ar); err != nil {
		t.Fatalf("bad /adapt body: %v\n%s", err, body)
	}
	return ar
}

// waitAdaptSettled polls GET /adapt until no search is queued or in flight
// and at least wantDecisions have settled.
func waitAdaptSettled(t *testing.T, base string, wantDecisions int) AdaptResponse {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		ar := getAdapt(t, base)
		if !ar.Status.Busy && len(ar.Decisions) >= wantDecisions {
			return ar
		}
		if time.Now().After(deadline) {
			t.Fatalf("adaptation did not settle: %+v", ar)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestServeAdaptsToWorkloadShift(t *testing.T) {
	dir := t.TempDir()
	s, hs := newTestServer(t, adaptTestConfig(dir))

	// Phase 1: N=8 traffic anchors the scenario's tuning. No preference yet,
	// so neither the body nor the header names a mapping.
	for i := 0; i < 4; i++ {
		resp, body := post(t, hs.URL+"/run", adaptBaseRun)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("base run %d: status %d: %s", i, resp.StatusCode, body)
		}
		if got := resp.Header.Get("X-Adapt-Mapping"); got != "" {
			t.Fatalf("base run %d carries mapping %q before any decision", i, got)
		}
	}

	// Phase 2: sustained N=12 traffic. With Alpha 0.5 the new shape crosses
	// ShiftAt on its second observation and Dwell confirms on the third, so
	// six requests are ample — and the cooldown forbids a second trigger.
	var preMakespan uint64
	for i := 0; i < 6; i++ {
		resp, body := post(t, hs.URL+"/run", adaptShiftRun)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("shift run %d: status %d: %s", i, resp.StatusCode, body)
		}
		var rr RunResponse
		if err := json.Unmarshal(body, &rr); err != nil {
			t.Fatal(err)
		}
		if rr.Mapping == "" {
			preMakespan = rr.Makespan
		}
	}
	if preMakespan == 0 {
		t.Fatal("no pre-switch N=12 run observed")
	}

	ar := waitAdaptSettled(t, hs.URL, 1)
	if len(ar.Decisions) != 1 {
		t.Fatalf("decisions = %d, want exactly 1: %+v", len(ar.Decisions), ar.Decisions)
	}
	d := ar.Decisions[0]
	if d.Seq != 1 || d.Cause != "shift" {
		t.Errorf("decision seq/cause = %d/%q, want 1/shift", d.Seq, d.Cause)
	}
	if d.Outcome != "switched" || d.Mapping == "" {
		t.Fatalf("decision = %+v, want a switched outcome with a mapping", d)
	}
	if d.MeasuredGain < 0.01 {
		t.Errorf("measured gain %v below the switch threshold", d.MeasuredGain)
	}

	// Phase 3: the next N=12 request runs under the winner — visible in the
	// body, the header, and the makespan.
	resp, body := post(t, hs.URL+"/run", adaptShiftRun)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-switch run: status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Adapt-Mapping"); got != d.Mapping {
		t.Errorf("X-Adapt-Mapping = %q, want %q", got, d.Mapping)
	}
	var rr RunResponse
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatal(err)
	}
	if rr.Mapping != d.Mapping {
		t.Errorf("response Mapping = %q, want %q", rr.Mapping, d.Mapping)
	}
	if rr.Makespan >= preMakespan {
		t.Errorf("post-switch makespan %d not better than pre-switch %d", rr.Makespan, preMakespan)
	}
	postMakespan := rr.Makespan

	// The mapped result caches under its own key: the same request hits, and
	// the switch never re-serves the old decomposition's bytes.
	resp2, body2 := post(t, hs.URL+"/run", adaptShiftRun)
	if resp2.Header.Get("X-Cache") != "hit" || !bytes.Equal(body, body2) {
		t.Error("post-switch request did not hit its mapping-qualified cache entry")
	}

	// Drain, then reconcile every ledger.
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := s.VerifyMetrics(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Adapt.Triggers != 1 || st.Adapt.Switched != 1 {
		t.Errorf("adapt stats = %+v, want exactly one switched trigger", st.Adapt)
	}

	// Restart on the same directory: the decision journal folds to state on
	// open, the preference resumes without re-learning, and the mapped cache
	// entry still answers.
	s2, hs2 := newTestServer(t, adaptTestConfig(dir))
	if got := s2.Stats().Journal.AdaptOpenCompactions; got != 1 {
		t.Errorf("restart adapt open compactions = %d, want 1", got)
	}
	ar2 := getAdapt(t, hs2.URL)
	if len(ar2.Decisions) != 0 {
		t.Errorf("restarted server replays %d decisions as its own", len(ar2.Decisions))
	}
	var found bool
	for _, sc := range ar2.Status.Scenarios {
		if sc.Preferred == d.Mapping {
			found = true
		}
	}
	if !found {
		t.Fatalf("restored scenarios %+v carry no preference %q", ar2.Status.Scenarios, d.Mapping)
	}
	resp3, body3 := post(t, hs2.URL+"/run", adaptShiftRun)
	if got := resp3.Header.Get("X-Adapt-Mapping"); got != d.Mapping {
		t.Errorf("restarted X-Adapt-Mapping = %q, want %q", got, d.Mapping)
	}
	if resp3.Header.Get("X-Cache") != "hit" {
		t.Errorf("restarted mapped request X-Cache = %q, want hit", resp3.Header.Get("X-Cache"))
	}
	var rr3 RunResponse
	if err := json.Unmarshal(body3, &rr3); err != nil {
		t.Fatal(err)
	}
	if rr3.Makespan != postMakespan {
		t.Errorf("restarted makespan %d != pre-restart %d", rr3.Makespan, postMakespan)
	}
	// Reconciliation holds on the restarted server too, once drained.
	s2.Close()
	if err := s2.VerifyMetrics(); err != nil {
		t.Fatal(err)
	}
}
