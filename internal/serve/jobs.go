package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"

	"procdecomp/internal/obs"
)

// asyncJob is the durable record behind one POST /jobs acceptance: identity,
// the normalized request (so a restarted server can re-run it), the event
// log its streamers follow, and — once terminal — the outcome. The record
// lives in Server.jobs for the life of the process and in the journal across
// processes.
type asyncJob struct {
	id       string
	rid      string // originating request ID, the log/trace join key
	endpoint string
	tenant   string
	key      string
	budget   int
	mapping  string
	req      Request
	log      *eventLog
	// spans records the job's wall-time service spans for GET
	// /jobs/{id}/trace (nil for recovered jobs: their wall history is gone).
	spans *obs.SpanRecorder

	mu       sync.Mutex
	terminal bool
	result   []byte // nil for a recovered done job: the cache holds the bytes
	jerr     *JobError
	chrome   []byte // the machine's virtual-time Chrome trace, if evaluated here
}

// complete/fail settle the job exactly once; later calls are ignored (a
// drain and a deadline can race to settle the same job).
func (a *asyncJob) complete(result []byte) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.terminal {
		return
	}
	a.terminal = true
	a.result = result
}

func (a *asyncJob) fail(jerr *JobError) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.terminal {
		return
	}
	a.terminal = true
	a.jerr = jerr
}

func (a *asyncJob) state() (terminal bool, result []byte, jerr *JobError) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.terminal, a.result, a.jerr
}

// setChrome stores the machine trace bytes a traced evaluation produced.
// Called before complete/fail, so a terminal read observes it.
func (a *asyncJob) setChrome(b []byte) {
	if b == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if !a.terminal {
		a.chrome = b
	}
}

func (a *asyncJob) chromeBytes() []byte {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.chrome
}

// JobSubmit is POST /jobs' body: which pipeline to run, and its request.
type JobSubmit struct {
	Endpoint string
	Request  Request
}

// JobAccepted is the 202 acknowledgment. By the time a client reads it, the
// job's accepted record is durable: a crash after the 202 cannot lose it.
type JobAccepted struct {
	ID     string
	Status string
	// Degraded reports the reduced /search candidate budget admission
	// assigned under saturation (0 = full fidelity).
	Degraded int `json:",omitempty"`
}

// JobPending is GET /jobs/<id>'s 202 body while the job is still moving.
type JobPending struct {
	ID     string
	Status string
	Events int
}

func (s *Server) lookupJob(id string) *asyncJob {
	s.jobsMu.Lock()
	defer s.jobsMu.Unlock()
	return s.jobs[id]
}

// handleJobSubmit admits one durable async job: same admission control as
// the synchronous endpoints, but the reply is an immediate 202 with the job
// ID and the work proceeds in the background, journaled at every state
// change. If the full-fidelity result is already cached the job is born
// terminal — still journaled, still replayable, no pool time.
func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	var sub JobSubmit
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sub); err != nil {
		s.writeError(w, &JobError{Kind: KindInvalid, Message: "bad request body: " + err.Error()})
		return
	}
	valid := false
	for _, ep := range endpoints {
		if sub.Endpoint == ep {
			valid = true
			break
		}
	}
	if !valid {
		s.writeError(w, &JobError{Kind: KindInvalid, Message: fmt.Sprintf("no endpoint %q", sub.Endpoint)})
		return
	}
	req, err := normalize(sub.Endpoint, sub.Request)
	if err != nil {
		s.writeError(w, &JobError{Kind: KindInvalid, Message: err.Error()})
		return
	}

	rid := obs.RequestID(r.Context())
	mapping := s.preferredMapping(sub.Endpoint, req)
	if body, ok := s.cacheGet(contentKey(sub.Endpoint, req, 0, mapping)); ok {
		if aj, jerr := s.bornDone(sub.Endpoint, req, tenantOf(r), rid, mapping, body); jerr != nil {
			s.writeError(w, jerr)
		} else {
			s.writeAccepted(w, JobAccepted{ID: aj.id, Status: "done"})
		}
		return
	}

	// Every async job records its wall-time spans, so GET /jobs/{id}/trace
	// always has a service timeline. The machine's virtual-time trace is
	// opt-in (?trace=1): it forces a live evaluation and holds the trace
	// bytes for the job's lifetime, too heavy to pay on every submission.
	j, cached, jerr := s.submit(sub.Endpoint, req, tenantOf(r),
		submitOpts{rid: rid, async: true, trace: r.URL.Query().Get("trace") == "1",
			spans: obs.NewSpanRecorder()})
	if jerr != nil {
		s.writeError(w, jerr)
		return
	}
	if cached != nil {
		// Degraded-key hit: the saturated answer is already on disk.
		if aj, jerr := s.bornDone(sub.Endpoint, req, tenantOf(r), rid, mapping, cached); jerr != nil {
			s.writeError(w, jerr)
		} else {
			s.writeAccepted(w, JobAccepted{ID: aj.id, Status: "done", Degraded: s.cfg.DegradeKeep})
		}
		return
	}
	s.writeAccepted(w, JobAccepted{ID: j.async.id, Status: "accepted", Degraded: j.budget})
}

// bornDone registers a job that is terminal on arrival (its result was
// cached): journaled accepted+done so a restart re-serves it identically.
func (s *Server) bornDone(endpoint string, req Request, tenant, rid, mapping string, body []byte) (*asyncJob, *JobError) {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.rejected.Add(1)
		s.m.sheds.Inc("draining")
		return nil, &JobError{Kind: KindDraining, Message: "server is draining",
			RetryAfter: s.adm.retryAfter(s.seq.Add(1))}
	}
	s.mu.Unlock()
	key := contentKey(endpoint, req, 0, mapping)
	aj := &asyncJob{id: jobID(s.seq.Add(1)), rid: rid, endpoint: endpoint, tenant: tenant,
		key: key, mapping: mapping, req: req, log: newEventLog()}
	ctx := obs.WithRequestID(context.Background(), rid)
	if err := s.journalAppend(ctx, "born_done", journalRec{Op: "accepted", ID: aj.id,
		RID: rid, Endpoint: endpoint, Tenant: tenant, Key: key, Mapping: mapping, Req: &req}); err != nil {
		return nil, &JobError{Kind: KindInternal, Message: "job journal write failed: " + err.Error()}
	}
	// Best-effort: without the done record a restart re-runs the job, which
	// re-derives the same cached result.
	s.journalAppend(ctx, "born_done", journalRec{Op: "done", ID: aj.id, Key: key})
	// A cache-hit-born job is still one observed request.
	s.adaptObserve(endpoint, req, body)
	aj.complete(body)
	s.jobsMu.Lock()
	s.jobs[aj.id] = aj
	s.jobsMu.Unlock()
	s.jobsAccepted.Add(1)
	s.m.jobs.Inc("accepted")
	s.jobsDone.Add(1)
	s.m.jobs.Inc("done")
	s.publish(aj, Event{Type: "accepted"})
	s.publish(aj, Event{Type: "done", Terminal: true})
	return aj, nil
}

func (s *Server) writeAccepted(w http.ResponseWriter, acc JobAccepted) {
	s.m.responses.Inc("202", "accepted")
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Location", "/jobs/"+acc.ID)
	w.WriteHeader(http.StatusAccepted)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(acc)
}

// handleJobGet serves a job's terminal result — the same bytes the
// synchronous endpoint would have returned, re-readable any number of times
// and across restarts — or a 202 progress envelope while it runs.
func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	aj := s.lookupJob(r.PathValue("id"))
	if aj == nil {
		s.writeError(w, &JobError{Kind: KindNotFound, Message: "no such job"})
		return
	}
	terminal, result, jerr := aj.state()
	if !terminal {
		// The event log seals (snapshot's second return) only after the
		// job's state turns terminal, so re-check rather than racing a
		// finalize that landed between the two reads: a sealed log with a
		// pending reply would tell the client the stream ended on a job
		// still "running".
		n, sealed := aj.log.snapshot()
		if sealed {
			terminal, result, jerr = aj.state()
		}
		if !terminal {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusAccepted)
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(JobPending{ID: aj.id, Status: "pending", Events: n})
			return
		}
	}
	if jerr != nil {
		s.writeError(w, jerr)
		return
	}
	if result == nil {
		// Recovered done job: the journal has the key, the cache the bytes.
		body, ok := s.cacheGet(aj.key)
		if !ok {
			s.writeError(w, &JobError{Kind: KindInternal,
				Message: "job result missing from cache"})
			return
		}
		result = body
	}
	s.writeResult(w, result, "job", aj.budget)
}

// handleJobTrace serves the job's stitched Chrome trace: its wall-time
// service spans (queued, attempts, settle) plus, when the job was submitted
// with ?trace=1, the machine's virtual-time trace — both tagged with the
// originating request ID. 202 while the job still runs; 404 for recovered
// jobs, whose wall-time history did not survive the restart.
func (s *Server) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	aj := s.lookupJob(r.PathValue("id"))
	if aj == nil {
		s.writeError(w, &JobError{Kind: KindNotFound, Message: "no such job"})
		return
	}
	terminal, _, _ := aj.state()
	if !terminal {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		n, _ := aj.log.snapshot()
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(JobPending{ID: aj.id, Status: "pending", Events: n})
		return
	}
	if aj.spans == nil {
		s.writeError(w, &JobError{Kind: KindNotFound,
			Message: "no trace recorded for this job (served from cache, or recovered from the journal)"})
		return
	}
	doc, err := obs.StitchChrome(aj.rid, aj.spans.Epoch(), aj.spans.Spans(), aj.chromeBytes())
	if err != nil {
		s.writeError(w, &JobError{Kind: KindInternal, Message: "trace stitch failed: " + err.Error()})
		return
	}
	s.writeResult(w, doc, "job", aj.budget)
}

// handleJobEvents streams the job's event log as NDJSON: full replay from
// event 0, then live tail. The stream always ends with the job's terminal
// event — on completion, failure, cancellation, and server drain alike —
// or with the client's own disconnect.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	aj := s.lookupJob(r.PathValue("id"))
	if aj == nil {
		s.writeError(w, &JobError{Kind: KindNotFound, Message: "no such job"})
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	fl, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	i := 0
	for {
		evs, terminal, next := aj.log.since(i)
		for _, ev := range evs {
			if err := enc.Encode(ev); err != nil {
				return // client gone
			}
		}
		i += len(evs)
		if len(evs) > 0 && fl != nil {
			fl.Flush()
		}
		if terminal {
			return
		}
		select {
		case <-next:
		case <-r.Context().Done():
			return
		}
	}
}
