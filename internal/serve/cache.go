package serve

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
)

// DiskCache is the service's persistent result store: content key -> exact
// response bytes. It is crash-safe by construction —
//
//   - writes go to a temp file in the cache directory and are renamed into
//     place, so a kill at any instant leaves either the old entry, the new
//     entry, or a .tmp leftover (swept on the next open), never a torn file;
//   - every entry carries a checksum of its payload and echoes its key, both
//     verified on read; an entry that fails either check is moved to a
//     quarantine subdirectory and reported as a miss, never served.
//
// Keys are hex content hashes (contentKey); the entry's filename is a hash
// of the key, so hostile or oversized keys cannot escape the directory.
type DiskCache struct {
	dir        string
	mu         sync.Mutex // serializes writers per cache, not readers
	hits       atomic.Int64
	misses     atomic.Int64
	writes     atomic.Int64
	quarantine atomic.Int64
	// onOp, when set, observes every counted operation ("hit", "miss",
	// "write", "quarantined") — the server's metrics mirror. Set before the
	// cache sees traffic; never mutated after.
	onOp func(op string)
}

const (
	cacheMagic     = "pdserve-cache v1"
	quarantineDir  = "quarantined"
	cacheExt       = ".entry"
	cacheTmpSuffix = ".tmp"
)

// OpenDiskCache opens (creating if needed) a cache rooted at dir and sweeps
// temp files a previous crash may have stranded.
func OpenDiskCache(dir string) (*DiskCache, error) {
	if err := os.MkdirAll(filepath.Join(dir, quarantineDir), 0o755); err != nil {
		return nil, fmt.Errorf("serve: open cache: %w", err)
	}
	names, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("serve: open cache: %w", err)
	}
	for _, e := range names {
		if strings.HasSuffix(e.Name(), cacheTmpSuffix) {
			os.Remove(filepath.Join(dir, e.Name()))
		}
	}
	return &DiskCache{dir: dir}, nil
}

// observe reports one counted operation to the metrics mirror, if attached.
func (c *DiskCache) observe(op string) {
	if c.onOp != nil {
		c.onOp(op)
	}
}

func (c *DiskCache) path(key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(c.dir, hex.EncodeToString(sum[:])+cacheExt)
}

// Get returns the entry's payload, or false on a miss. A corrupt entry —
// bad magic, checksum mismatch, or a key collision — is quarantined and
// reported as a miss.
func (c *DiskCache) Get(key string) ([]byte, bool) {
	if c == nil {
		return nil, false
	}
	path := c.path(key)
	raw, err := os.ReadFile(path)
	if err != nil {
		c.misses.Add(1)
		c.observe("miss")
		return nil, false
	}
	payload, err := decodeEntry(raw, key)
	if err != nil {
		c.quarantineEntry(path)
		c.misses.Add(1)
		c.observe("miss")
		return nil, false
	}
	c.hits.Add(1)
	c.observe("hit")
	return payload, true
}

// Put stores the payload under key with an atomic write-rename. A concurrent
// Put of the same key is harmless: both writers produce identical bytes
// (responses are deterministic in the key), so whichever rename lands last
// installs the same entry.
func (c *DiskCache) Put(key string, payload []byte) error {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	path := c.path(key)
	tmp, err := os.CreateTemp(c.dir, filepath.Base(path)+".*"+cacheTmpSuffix)
	if err != nil {
		return fmt.Errorf("serve: cache write: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(encodeEntry(key, payload)); err != nil {
		tmp.Close()
		return fmt.Errorf("serve: cache write: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("serve: cache write: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("serve: cache write: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("serve: cache write: %w", err)
	}
	c.writes.Add(1)
	c.observe("write")
	return nil
}

// quarantineEntry moves a corrupt entry aside so it is never read again but
// remains available for inspection. Collisions in the quarantine directory
// overwrite: the bytes there are corrupt anyway.
func (c *DiskCache) quarantineEntry(path string) {
	dst := filepath.Join(c.dir, quarantineDir, filepath.Base(path))
	if err := os.Rename(path, dst); err != nil {
		os.Remove(path) // last resort: a corrupt entry must not be re-served
	}
	c.quarantine.Add(1)
	c.observe("quarantined")
}

// CacheStats is a point-in-time counter snapshot.
type CacheStats struct {
	Hits, Misses, Writes, Quarantined int64
}

func (c *DiskCache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	return CacheStats{
		Hits: c.hits.Load(), Misses: c.misses.Load(),
		Writes: c.writes.Load(), Quarantined: c.quarantine.Load(),
	}
}

// encodeEntry frames a payload for disk:
//
//	pdserve-cache v1\n
//	<sha256 hex of payload>\n
//	<key>\n
//	<payload bytes>
func encodeEntry(key string, payload []byte) []byte {
	sum := sha256.Sum256(payload)
	var b bytes.Buffer
	b.Grow(len(cacheMagic) + len(key) + len(payload) + 80)
	fmt.Fprintf(&b, "%s\n%s\n%s\n", cacheMagic, hex.EncodeToString(sum[:]), key)
	b.Write(payload)
	return b.Bytes()
}

func decodeEntry(raw []byte, key string) ([]byte, error) {
	rest, ok := bytes.CutPrefix(raw, []byte(cacheMagic+"\n"))
	if !ok {
		return nil, fmt.Errorf("bad magic")
	}
	sumLine, rest, ok := bytes.Cut(rest, []byte("\n"))
	if !ok {
		return nil, fmt.Errorf("truncated header")
	}
	keyLine, payload, ok := bytes.Cut(rest, []byte("\n"))
	if !ok {
		return nil, fmt.Errorf("truncated header")
	}
	if string(keyLine) != key {
		return nil, fmt.Errorf("entry keyed %q, want %q", keyLine, key)
	}
	sum := sha256.Sum256(payload)
	if string(sumLine) != hex.EncodeToString(sum[:]) {
		return nil, fmt.Errorf("checksum mismatch")
	}
	return payload, nil
}
