package serve

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
)

// DiskCache is the service's persistent result store: content key -> exact
// response bytes. It is crash-safe by construction —
//
//   - writes go to a temp file in the cache directory and are renamed into
//     place, so a kill at any instant leaves either the old entry, the new
//     entry, or a .tmp leftover (swept on the next open), never a torn file;
//   - every entry carries a checksum of its payload and echoes its key, both
//     verified on read; an entry that fails either check is moved to a
//     quarantine subdirectory and reported as a miss, never served.
//
// Keys are hex content hashes (contentKey); the entry's filename is a hash
// of the key, so hostile or oversized keys cannot escape the directory.
//
// The cache can be bounded (OpenDiskCacheLimit): a byte ledger tracks every
// installed entry, and each Put sweeps least-recently-used entries until the
// footprint fits the budget. Recency is a logical access clock, not the
// filesystem's atime — mount options must not change eviction order.
type DiskCache struct {
	dir        string
	maxBytes   int64      // 0 = unbounded
	mu         sync.Mutex // serializes writers per cache, not readers
	hits       atomic.Int64
	misses     atomic.Int64
	writes     atomic.Int64
	quarantine atomic.Int64
	evictions  atomic.Int64
	// lmu guards the byte ledger and the logical-clock recency index the
	// eviction sweep orders victims by.
	lmu   sync.Mutex
	bytes int64
	clock uint64
	meta  map[string]*entryMeta // by entry file base name
	// onOp, when set, observes every counted operation ("hit", "miss",
	// "write", "quarantined", "evict") — the server's metrics mirror. Set
	// before the cache sees traffic; never mutated after.
	onOp func(op string)
}

// entryMeta is one installed entry's ledger line.
type entryMeta struct {
	size  int64
	atime uint64 // logical access clock; unique per touch, so no victim ties
}

const (
	cacheMagic     = "pdserve-cache v1"
	quarantineDir  = "quarantined"
	cacheExt       = ".entry"
	cacheTmpSuffix = ".tmp"
)

// OpenDiskCache opens (creating if needed) an unbounded cache rooted at dir
// and sweeps temp files a previous crash may have stranded.
func OpenDiskCache(dir string) (*DiskCache, error) {
	return OpenDiskCacheLimit(dir, 0)
}

// OpenDiskCacheLimit opens a cache whose installed entries may occupy at most
// maxBytes on disk (0 = unbounded). Existing entries are charged to the
// ledger in file-name order — a deterministic recency seed — and an
// over-budget directory is swept immediately, coldest first.
func OpenDiskCacheLimit(dir string, maxBytes int64) (*DiskCache, error) {
	if err := os.MkdirAll(filepath.Join(dir, quarantineDir), 0o755); err != nil {
		return nil, fmt.Errorf("serve: open cache: %w", err)
	}
	names, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("serve: open cache: %w", err)
	}
	c := &DiskCache{dir: dir, maxBytes: maxBytes, meta: map[string]*entryMeta{}}
	for _, e := range names { // ReadDir sorts by name
		switch {
		case strings.HasSuffix(e.Name(), cacheTmpSuffix):
			os.Remove(filepath.Join(dir, e.Name()))
		case strings.HasSuffix(e.Name(), cacheExt):
			info, err := e.Info()
			if err != nil {
				continue
			}
			c.clock++
			c.meta[e.Name()] = &entryMeta{size: info.Size(), atime: c.clock}
			c.bytes += info.Size()
		}
	}
	c.sweep("")
	return c, nil
}

// observe reports one counted operation to the metrics mirror, if attached.
func (c *DiskCache) observe(op string) {
	if c.onOp != nil {
		c.onOp(op)
	}
}

func (c *DiskCache) path(key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(c.dir, hex.EncodeToString(sum[:])+cacheExt)
}

// Get returns the entry's payload, or false on a miss. A corrupt entry —
// bad magic, checksum mismatch, or a key collision — is quarantined and
// reported as a miss.
func (c *DiskCache) Get(key string) ([]byte, bool) {
	if c == nil {
		return nil, false
	}
	path := c.path(key)
	raw, err := os.ReadFile(path)
	if err != nil {
		c.misses.Add(1)
		c.observe("miss")
		return nil, false
	}
	payload, err := decodeEntry(raw, key)
	if err != nil {
		c.quarantineEntry(path)
		c.misses.Add(1)
		c.observe("miss")
		return nil, false
	}
	c.touch(filepath.Base(path))
	c.hits.Add(1)
	c.observe("hit")
	return payload, true
}

// touch refreshes an entry's recency; a no-op for entries already evicted or
// quarantined between the read and the bump.
func (c *DiskCache) touch(name string) {
	c.lmu.Lock()
	if m, ok := c.meta[name]; ok {
		c.clock++
		m.atime = c.clock
	}
	c.lmu.Unlock()
}

// forget drops an entry from the byte ledger (quarantined or externally
// removed).
func (c *DiskCache) forget(name string) {
	c.lmu.Lock()
	if m, ok := c.meta[name]; ok {
		c.bytes -= m.size
		delete(c.meta, name)
	}
	c.lmu.Unlock()
}

// Put stores the payload under key with an atomic write-rename. A concurrent
// Put of the same key is harmless: both writers produce identical bytes
// (responses are deterministic in the key), so whichever rename lands last
// installs the same entry.
func (c *DiskCache) Put(key string, payload []byte) error {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	path := c.path(key)
	tmp, err := os.CreateTemp(c.dir, filepath.Base(path)+".*"+cacheTmpSuffix)
	if err != nil {
		return fmt.Errorf("serve: cache write: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	enc := encodeEntry(key, payload)
	if _, err := tmp.Write(enc); err != nil {
		tmp.Close()
		return fmt.Errorf("serve: cache write: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("serve: cache write: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("serve: cache write: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("serve: cache write: %w", err)
	}
	name := filepath.Base(path)
	c.lmu.Lock()
	if old, ok := c.meta[name]; ok {
		c.bytes -= old.size
	}
	c.clock++
	c.meta[name] = &entryMeta{size: int64(len(enc)), atime: c.clock}
	c.bytes += int64(len(enc))
	c.lmu.Unlock()
	c.writes.Add(1)
	c.observe("write")
	c.sweep(name)
	return nil
}

// sweep evicts least-recently-used entries until the ledger fits maxBytes.
// The caller holds c.mu (or, at open, has exclusive access), so no writer
// races the removals. protect names the entry a just-finished Put installed,
// which is never a victim: an in-flight write cannot be evicted by its own
// sweep — an entry larger than the whole budget survives until the next Put.
func (c *DiskCache) sweep(protect string) {
	if c.maxBytes <= 0 {
		return
	}
	for {
		c.lmu.Lock()
		if c.bytes <= c.maxBytes {
			c.lmu.Unlock()
			return
		}
		victim := ""
		var vm *entryMeta
		for name, m := range c.meta {
			if name == protect {
				continue
			}
			if vm == nil || m.atime < vm.atime {
				victim, vm = name, m
			}
		}
		if vm == nil {
			c.lmu.Unlock()
			return
		}
		c.bytes -= vm.size
		delete(c.meta, victim)
		c.lmu.Unlock()
		os.Remove(filepath.Join(c.dir, victim))
		c.evictions.Add(1)
		c.observe("evict")
	}
}

// quarantineEntry moves a corrupt entry aside so it is never read again but
// remains available for inspection. Collisions in the quarantine directory
// overwrite: the bytes there are corrupt anyway.
func (c *DiskCache) quarantineEntry(path string) {
	dst := filepath.Join(c.dir, quarantineDir, filepath.Base(path))
	if err := os.Rename(path, dst); err != nil {
		os.Remove(path) // last resort: a corrupt entry must not be re-served
	}
	c.forget(filepath.Base(path))
	c.quarantine.Add(1)
	c.observe("quarantined")
}

// CacheStats is a point-in-time counter snapshot.
type CacheStats struct {
	Hits, Misses, Writes, Quarantined, Evictions int64
	// Bytes is the installed entries' current on-disk footprint — what the
	// eviction budget is charged against.
	Bytes int64
}

func (c *DiskCache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	c.lmu.Lock()
	bytes := c.bytes
	c.lmu.Unlock()
	return CacheStats{
		Hits: c.hits.Load(), Misses: c.misses.Load(),
		Writes: c.writes.Load(), Quarantined: c.quarantine.Load(),
		Evictions: c.evictions.Load(), Bytes: bytes,
	}
}

// encodeEntry frames a payload for disk:
//
//	pdserve-cache v1\n
//	<sha256 hex of payload>\n
//	<key>\n
//	<payload bytes>
func encodeEntry(key string, payload []byte) []byte {
	sum := sha256.Sum256(payload)
	var b bytes.Buffer
	b.Grow(len(cacheMagic) + len(key) + len(payload) + 80)
	fmt.Fprintf(&b, "%s\n%s\n%s\n", cacheMagic, hex.EncodeToString(sum[:]), key)
	b.Write(payload)
	return b.Bytes()
}

func decodeEntry(raw []byte, key string) ([]byte, error) {
	rest, ok := bytes.CutPrefix(raw, []byte(cacheMagic+"\n"))
	if !ok {
		return nil, fmt.Errorf("bad magic")
	}
	sumLine, rest, ok := bytes.Cut(rest, []byte("\n"))
	if !ok {
		return nil, fmt.Errorf("truncated header")
	}
	keyLine, payload, ok := bytes.Cut(rest, []byte("\n"))
	if !ok {
		return nil, fmt.Errorf("truncated header")
	}
	if string(keyLine) != key {
		return nil, fmt.Errorf("entry keyed %q, want %q", keyLine, key)
	}
	sum := sha256.Sum256(payload)
	if string(sumLine) != hex.EncodeToString(sum[:]) {
		return nil, fmt.Errorf("checksum mismatch")
	}
	return payload, nil
}
