package serve

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeJournal lays down a journal file from raw lines.
func writeJournal(t *testing.T, dir string, lines ...string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Join(dir, quarantineDir), 0o755); err != nil {
		t.Fatal(err)
	}
	raw := strings.Join(lines, "")
	if err := os.WriteFile(filepath.Join(dir, journalName), []byte(raw), 0o644); err != nil {
		t.Fatal(err)
	}
}

func rec(t *testing.T, r journalRec) string {
	t.Helper()
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(b) + "\n"
}

// A kill mid-append leaves a partial last line. Opening the journal must
// quarantine the torn tail, keep every intact record, and re-run the jobs
// with no terminal record.
func TestJournalQuarantinesTornTail(t *testing.T) {
	dir := t.TempDir()
	req := Request{GS: true, Procs: 2, Mode: "ctr", Entry: "gs_iteration"}
	finished := rec(t, journalRec{Op: "accepted", ID: jobID(1), Endpoint: "/run", Key: "k1", Req: &req})
	finishedDone := rec(t, journalRec{Op: "done", ID: jobID(1), Key: "k1"})
	unfinished := rec(t, journalRec{Op: "accepted", ID: jobID(2), Endpoint: "/run", Key: "k2", Req: &req})
	running := rec(t, journalRec{Op: "running", ID: jobID(2)})
	torn := `{"Op":"accepted","ID":"j000000000000dead","Endpoint":"/run","Req":{"GS":tr` // cut mid-token
	writeJournal(t, dir, finished, finishedDone, unfinished, running, torn)

	j, jobs, maxSeq, err := openJournal(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if len(jobs) != 2 {
		t.Fatalf("recovered %d jobs, want 2", len(jobs))
	}
	if !jobs[0].done || jobs[0].id != jobID(1) {
		t.Errorf("job 1 = %+v, want done", jobs[0])
	}
	if !jobs[1].unfinished() || jobs[1].id != jobID(2) {
		t.Errorf("job 2 = %+v, want unfinished (re-run)", jobs[1])
	}
	if maxSeq != 2 {
		t.Errorf("maxSeq = %d, want 2", maxSeq)
	}
	// The torn bytes are preserved for inspection, not re-parsed.
	got, err := os.ReadFile(filepath.Join(dir, quarantineDir, journalTornName))
	if err != nil || string(got) != torn {
		t.Errorf("quarantined tail = %q (err %v), want the torn bytes", got, err)
	}
	// The compacted journal holds only intact records; reopening parses the
	// same state with nothing left to quarantine.
	raw, err := os.ReadFile(filepath.Join(dir, journalName))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(raw, []byte("dead")) {
		t.Error("compacted journal still contains torn bytes")
	}
	if !bytes.HasSuffix(raw, []byte("\n")) {
		t.Error("compacted journal does not end on a record boundary")
	}
	j.Close()
	j2, jobs2, _, err := openJournal(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(jobs2) != 2 || !jobs2[0].done || !jobs2[1].unfinished() {
		t.Errorf("reopen recovered %d jobs (%+v), want the same 2", len(jobs2), jobs2)
	}
}

// A torn tail can also be a syntactically valid accept record whose Req was
// never written — corrupt by schema, quarantined the same way.
func TestJournalTreatsRequestlessAcceptAsTorn(t *testing.T) {
	dir := t.TempDir()
	req := Request{GS: true, Procs: 2, Mode: "ctr", Entry: "gs_iteration"}
	good := rec(t, journalRec{Op: "accepted", ID: jobID(1), Endpoint: "/run", Key: "k1", Req: &req})
	bad := rec(t, journalRec{Op: "accepted", ID: jobID(9), Endpoint: "/run", Key: "k9"})
	writeJournal(t, dir, good, bad)

	j, jobs, _, err := openJournal(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if len(jobs) != 1 || jobs[0].id != jobID(1) {
		t.Fatalf("recovered %+v, want only the intact job", jobs)
	}
	if _, err := os.Stat(filepath.Join(dir, quarantineDir, journalTornName)); err != nil {
		t.Errorf("request-less accept not quarantined: %v", err)
	}
}

// Appends made through the journal survive a close/reopen cycle verbatim.
func TestJournalAppendRoundTrip(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(filepath.Join(dir, quarantineDir), 0o755); err != nil {
		t.Fatal(err)
	}
	j, jobs, _, err := openJournal(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 0 {
		t.Fatalf("fresh journal recovered %d jobs", len(jobs))
	}
	req := Request{GS: true, Procs: 4, Mode: "opt3", Blk: 8, Entry: "gs_iteration"}
	if err := j.Append(journalRec{Op: "accepted", ID: jobID(3), Endpoint: "/search", Tenant: "t1", Key: "kk", Budget: 4, Req: &req}); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(journalRec{Op: "failed", ID: jobID(3), Kind: KindPanic, Message: "boom", Attempts: 3}); err != nil {
		t.Fatal(err)
	}
	j.Close()
	if err := j.Append(journalRec{Op: "done", ID: jobID(3)}); err == nil {
		t.Error("append after Close succeeded")
	}

	j2, jobs2, maxSeq, err := openJournal(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(jobs2) != 1 || maxSeq != 3 {
		t.Fatalf("recovered %d jobs, maxSeq %d; want 1 and 3", len(jobs2), maxSeq)
	}
	rj := jobs2[0]
	if rj.endpoint != "/search" || rj.tenant != "t1" || rj.budget != 4 || rj.req.Blk != 8 {
		t.Errorf("recovered job = %+v, want the appended fields", rj)
	}
	if rj.jerr == nil || rj.jerr.Kind != KindPanic || rj.jerr.Attempts != 3 {
		t.Errorf("recovered error = %+v, want the panic failure", rj.jerr)
	}
}

// Runtime threshold compaction: once compactEvery records have been appended,
// the writer folds the journal in place — "running" markers drop, terminal
// state survives, appends continue seamlessly, and recovery still sees every
// job.
func TestJournalCompactsAtThreshold(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(filepath.Join(dir, quarantineDir), 0o755); err != nil {
		t.Fatal(err)
	}
	j, jobs, _, err := openJournal(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 0 {
		t.Fatalf("fresh journal recovered %d jobs", len(jobs))
	}
	compactions := 0
	j.onCompact = func() { compactions++ } // writer goroutine only; reads below happen after Close

	req := Request{GS: true, Procs: 2, Mode: "ctr", Entry: "gs_iteration"}
	// Sequential appends: accepted + two running markers + done crosses the
	// threshold of 4 and folds to two lines; the next accept lands after.
	for _, r := range []journalRec{
		{Op: "accepted", ID: jobID(1), Endpoint: "/run", Key: "k1", Req: &req},
		{Op: "running", ID: jobID(1)},
		{Op: "running", ID: jobID(1)},
		{Op: "done", ID: jobID(1), Key: "k1"},
		{Op: "accepted", ID: jobID(2), Endpoint: "/run", Key: "k2", Req: &req},
	} {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	if compactions != 1 {
		t.Errorf("%d threshold compactions, want 1", compactions)
	}
	raw, err := os.ReadFile(filepath.Join(dir, journalName))
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Count(raw, []byte("\n"))
	if lines != 3 { // job 1 accepted+done, job 2 accepted
		t.Errorf("journal holds %d lines after fold, want 3:\n%s", lines, raw)
	}
	if bytes.Contains(raw, []byte(`"running"`)) {
		t.Error("running markers survived the fold")
	}
	// Recovery reads the folded file like any other journal.
	j2, jobs2, maxSeq, err := openJournal(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(jobs2) != 2 || !jobs2[0].done || !jobs2[1].unfinished() || maxSeq != 2 {
		t.Fatalf("recovered %d jobs (maxSeq %d) after fold, want done j1 + unfinished j2", len(jobs2), maxSeq)
	}
}
