package serve

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"procdecomp/internal/adapt"
)

// The serve side of the adaptation loop: how requests map onto the
// controller's scenarios and shapes, where completed /run requests are
// observed, how a preference reaches the evaluation pipeline, and the
// durable decision journal that lets a restarted server resume its learned
// preferences.

// scenarioKey names the adaptive unit: one program × entry × machine size.
// The built-in Gauss-Seidel program keys as "gs"; an inline source keys by a
// short content hash, so textually identical programs share a profile.
func scenarioKey(req Request) string {
	prog := "gs"
	if !req.GS {
		sum := sha256.Sum256([]byte(req.Source))
		prog = hex.EncodeToString(sum[:4])
	}
	return fmt.Sprintf("%s/%s/p%d", prog, req.Entry, req.Procs)
}

// shapeKey names the request shape inside a scenario: the pipeline it
// compiles under plus the size parameters it binds. A workload shift is, by
// definition, the dominant shape changing — in practice the Defines (problem
// size) moving.
func shapeKey(req Request) string {
	key := fmt.Sprintf("%s/b%d", req.Mode, req.Blk)
	if len(req.Defines) == 0 {
		return key
	}
	names := make([]string, 0, len(req.Defines))
	for k := range req.Defines {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		key += fmt.Sprintf(",%s=%d", k, req.Defines[k])
	}
	return key
}

// setMappingHeader exposes the adaptive decomposition a /run response was
// compiled with, so clients (and the load harness) can see a switch without
// parsing the body.
func setMappingHeader(w http.ResponseWriter, mapping string) {
	if mapping != "" {
		w.Header().Set("X-Adapt-Mapping", mapping)
	}
}

// preferredMapping is the controller's current preference for this request,
// resolved at admission (and at the cache fast path) so one request sees one
// consistent mapping. Only /run adapts: /search explores every mapping
// itself, and /compile and /trace must show the program as declared.
func (s *Server) preferredMapping(endpoint string, req Request) string {
	if s.adapt == nil || endpoint != "/run" {
		return ""
	}
	return s.adapt.Preferred(scenarioKey(req))
}

// adaptObserve feeds one completed /run into the workload profile — exactly
// one call per served request, whether the bytes came from the pool or the
// cache. The makespan is read back from the response body (the cache path
// has nothing else), so both paths observe identically.
func (s *Server) adaptObserve(endpoint string, req Request, body []byte) {
	if s.adapt == nil || endpoint != "/run" {
		return
	}
	var resp struct{ Makespan uint64 }
	if err := json.Unmarshal(body, &resp); err != nil {
		return
	}
	// A program with no resolvable dist declaration still profiles; a search
	// triggered for it settles "failed", deterministically.
	dist, _ := pickDist(source(req), req.Dist)
	s.adapt.Observe(adapt.Observation{
		Scenario: scenarioKey(req),
		Shape:    shapeKey(req),
		Makespan: resp.Makespan,
		Spec: adapt.SearchSpec{
			Source: source(req), Entry: req.Entry, Dist: dist,
			Procs: req.Procs, Mode: req.Mode, Blk: req.Blk, Defines: req.Defines,
		},
	})
}

func (s *Server) adaptStats() adapt.Stats {
	if s.adapt == nil {
		return adapt.Stats{}
	}
	return s.adapt.Stats()
}

// adaptMetric mirrors the controller's counters into the metric catalog —
// the Hooks.Metric side of the double-entry bookkeeping VerifyScrape checks.
func (s *Server) adaptMetric(kind, label string) {
	switch kind {
	case "observation":
		s.m.adaptObs.Inc()
	case "trigger":
		s.m.adaptTriggers.Inc(label)
	case "search":
		s.m.adaptSearches.Inc(label)
	case "switch":
		s.m.adaptSwitches.Inc()
	}
}

// persistDecision is Hooks.Persist: every settled decision lands in the
// in-memory list behind GET /adapt, the NDJSON stream behind
// GET /adapt/journal, and (when the server has a cache directory) the
// durable decision journal. Called from the controller's worker goroutine,
// in decision order — the order is part of the byte-determinism contract.
func (s *Server) persistDecision(d adapt.Decision) {
	line, err := json.Marshal(d)
	if err != nil {
		return
	}
	line = append(line, '\n')
	s.adaptMu.Lock()
	s.adaptDecisions = append(s.adaptDecisions, d)
	s.adaptDecLines = append(s.adaptDecLines, line...)
	s.adaptMu.Unlock()
	s.adaptJournal.append(d, line)
	s.log.LogAttrs(context.Background(), slog.LevelInfo, "adapt decision",
		slog.String("scenario", d.Scenario), slog.String("shape", d.Shape),
		slog.String("outcome", d.Outcome), slog.String("mapping", d.Mapping))
}

// AdaptResponse is GET /adapt's body: the controller's live view plus every
// decision this process has settled.
type AdaptResponse struct {
	Enabled   bool
	Status    adapt.Status
	Decisions []adapt.Decision `json:",omitempty"`
}

func (s *Server) handleAdapt(w http.ResponseWriter, r *http.Request) {
	var resp AdaptResponse
	if s.adapt != nil {
		resp.Enabled = true
		resp.Status = s.adapt.Snapshot()
		s.adaptMu.Lock()
		resp.Decisions = append([]adapt.Decision(nil), s.adaptDecisions...)
		s.adaptMu.Unlock()
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(resp)
}

// handleAdaptJournal serves this process's decisions as raw NDJSON — the
// byte stream two seeded runs are compared on. Only decisions settled by
// this process appear: restored state from a previous life shapes behavior
// but is not replayed as bytes.
func (s *Server) handleAdaptJournal(w http.ResponseWriter, r *http.Request) {
	s.adaptMu.Lock()
	body := append([]byte(nil), s.adaptDecLines...)
	s.adaptMu.Unlock()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Write(body)
}

// The decision journal: an append-only NDJSON file in the cache directory
// holding every settled decision, compacted — at open and at the runtime
// append threshold — to one folded "state" line per scenario. Decisions are
// rare (one per detected shift), so each append is written and fsynced
// immediately rather than group-committed.

const (
	adaptJournalName     = "adapt.journal"
	adaptJournalTornName = "adapt.journal.torn"
)

// adaptStateRec is the folded form of a scenario's decision history — what
// a restarted controller actually needs. Seq carries the journal-wide
// maximum decision sequence so numbering resumes without gaps reversing.
type adaptStateRec struct {
	Op        string
	Scenario  string
	Preferred string `json:",omitempty"`
	TunedFor  string `json:",omitempty"`
	Decisions int64
	Seq       uint64 `json:",omitempty"`
}

type decisionJournal struct {
	path string
	dir  string
	// compacted records whether open found anything to rewrite.
	compacted    bool
	compactEvery int
	// onCompact observes each runtime threshold fold. Set before traffic.
	onCompact func()

	mu       sync.Mutex
	f        *os.File
	dead     bool
	appended int
	// The folded view, maintained incrementally so a threshold compaction
	// never re-reads the file.
	states map[string]*adapt.State
	order  []string
	maxSeq uint64
}

// applyDecision folds one decision into a scenario's durable state: the
// mapping in force is always the decision's, and the tuning anchor moves on
// the outcomes that settle a shift ("switched" and "held" alike).
func applyDecision(st *adapt.State, d adapt.Decision) {
	st.Preferred = d.Mapping
	if d.Outcome == "switched" || d.Outcome == "held" {
		st.TunedFor = d.Shape
	}
	st.Decisions++
}

// parseDecisionJournal reads the journal's valid prefix into per-scenario
// state, returning scenarios in first-seen order, the highest decision
// sequence, the valid byte prefix, and any torn tail.
func parseDecisionJournal(path string) (states map[string]*adapt.State, order []string, maxSeq uint64, valid, torn []byte, err error) {
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return map[string]*adapt.State{}, nil, 0, nil, nil, nil
	}
	if err != nil {
		return nil, nil, 0, nil, nil, fmt.Errorf("serve: read decision journal: %w", err)
	}
	states = map[string]*adapt.State{}
	ensure := func(key string) *adapt.State {
		st := states[key]
		if st == nil {
			st = &adapt.State{Scenario: key}
			states[key] = st
			order = append(order, key)
		}
		return st
	}
	off := 0
	for off < len(raw) {
		nl := bytes.IndexByte(raw[off:], '\n')
		if nl < 0 {
			break // no trailing newline: torn tail
		}
		line := raw[off : off+nl]
		var probe struct{ Op, Scenario string }
		if err := json.Unmarshal(line, &probe); err != nil || probe.Scenario == "" {
			break // garbage from here on: torn tail
		}
		if probe.Op == "state" {
			var rec adaptStateRec
			if err := json.Unmarshal(line, &rec); err != nil {
				break
			}
			st := ensure(rec.Scenario)
			st.Preferred, st.TunedFor, st.Decisions = rec.Preferred, rec.TunedFor, rec.Decisions
			if rec.Seq > maxSeq {
				maxSeq = rec.Seq
			}
		} else {
			var d adapt.Decision
			if err := json.Unmarshal(line, &d); err != nil || d.Outcome == "" {
				break
			}
			applyDecision(ensure(d.Scenario), d)
			if d.Seq > maxSeq {
				maxSeq = d.Seq
			}
		}
		off += nl + 1
	}
	return states, order, maxSeq, raw[:off], raw[off:], nil
}

// foldDecisions renders the compacted image: one state line per scenario, in
// first-seen order.
func foldDecisions(states map[string]*adapt.State, order []string, maxSeq uint64) (*bytes.Buffer, error) {
	var buf bytes.Buffer
	for _, key := range order {
		st := states[key]
		rec := adaptStateRec{Op: "state", Scenario: key, Preferred: st.Preferred,
			TunedFor: st.TunedFor, Decisions: st.Decisions, Seq: maxSeq}
		b, err := json.Marshal(rec)
		if err != nil {
			return nil, err
		}
		buf.Write(append(b, '\n'))
	}
	return &buf, nil
}

// openDecisionJournal opens (creating if needed) the decision journal under
// dir, recovering prior state first: parse the valid prefix, quarantine a
// torn tail, rewrite the folded journal atomically, and return the restored
// per-scenario states in first-seen order plus the highest decision
// sequence. The same crash-safety discipline as the job journal.
func openDecisionJournal(dir string, compactEvery int) (*decisionJournal, []adapt.State, uint64, error) {
	path := filepath.Join(dir, adaptJournalName)
	states, order, maxSeq, valid, torn, err := parseDecisionJournal(path)
	if err != nil {
		return nil, nil, 0, err
	}
	if len(torn) > 0 {
		tornPath := filepath.Join(dir, quarantineDir, adaptJournalTornName)
		if err := os.WriteFile(tornPath, torn, 0o644); err != nil {
			return nil, nil, 0, fmt.Errorf("serve: quarantine decision journal tail: %w", err)
		}
	}
	buf, err := foldDecisions(states, order, maxSeq)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("serve: decision journal compact: %w", err)
	}
	compacted := len(valid) != buf.Len() || len(torn) > 0
	if compacted {
		if err := atomicRewrite(dir, path, buf.Bytes()); err != nil {
			return nil, nil, 0, fmt.Errorf("serve: decision journal compact: %w", err)
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("serve: open decision journal: %w", err)
	}
	j := &decisionJournal{path: path, dir: dir, compacted: compacted,
		compactEvery: compactEvery, f: f, states: states, order: order, maxSeq: maxSeq}
	restored := make([]adapt.State, 0, len(order))
	for _, key := range order {
		restored = append(restored, *states[key])
	}
	return j, restored, maxSeq, nil
}

// append durably records one settled decision (write + fsync — decisions are
// rare) and folds it into the in-memory state, compacting at the threshold.
func (j *decisionJournal) append(d adapt.Decision, line []byte) {
	if j == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.dead {
		return
	}
	if _, err := j.f.Write(line); err != nil {
		return
	}
	j.f.Sync()
	st := j.states[d.Scenario]
	if st == nil {
		st = &adapt.State{Scenario: d.Scenario}
		j.states[d.Scenario] = st
		j.order = append(j.order, d.Scenario)
	}
	applyDecision(st, d)
	if d.Seq > j.maxSeq {
		j.maxSeq = d.Seq
	}
	j.appended++
	j.maybeCompactLocked()
}

// maybeCompactLocked folds the journal in place once compactEvery decisions
// have been appended since the last fold. Crash-safe the same way the job
// journal's fold is: the image goes to a temp file that stays open, the
// rename either installs it (and appends continue on that fd) or fails and
// leaves the journal untouched. Errors skip the fold — compaction is an
// optimization, never a reason to drop a decision.
func (j *decisionJournal) maybeCompactLocked() {
	if j.compactEvery <= 0 || j.appended < j.compactEvery {
		return
	}
	j.appended = 0
	buf, err := foldDecisions(j.states, j.order, j.maxSeq)
	if err != nil {
		return
	}
	fi, err := os.Stat(j.path)
	if err != nil || int64(buf.Len()) >= fi.Size() {
		return // nothing to fold away
	}
	tmp, err := os.CreateTemp(j.dir, adaptJournalName+".*"+cacheTmpSuffix)
	if err != nil {
		return
	}
	if _, err := tmp.Write(buf.Bytes()); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), j.path); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return
	}
	old := j.f
	j.f = tmp // tmp's fd now addresses the live journal, at its end
	old.Close()
	if j.onCompact != nil {
		j.onCompact()
	}
}

// Close stops the journal; further appends are silently dropped (the
// in-memory stream behind /adapt/journal already has them).
func (j *decisionJournal) Close() {
	if j == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.dead {
		return
	}
	j.dead = true
	j.f.Close()
}

// crash abandons the journal without flushing — the kill -9 test seam.
func (j *decisionJournal) crash() {
	if j == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.dead {
		return
	}
	j.dead = true
	j.f.Close()
}
