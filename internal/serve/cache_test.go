package serve

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestDiskCacheRoundTrip(t *testing.T) {
	c, err := OpenDiskCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get("k1"); ok {
		t.Fatal("hit on an empty cache")
	}
	payload := []byte(`{"x": 1}` + "\n")
	if err := c.Put("k1", payload); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get("k1")
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("Get = %q, %v; want the stored payload", got, ok)
	}
	// Overwrite is atomic and last-writer-wins.
	if err := c.Put("k1", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if got, _ := c.Get("k1"); string(got) != "v2" {
		t.Fatalf("after overwrite Get = %q", got)
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 || st.Writes != 2 {
		t.Errorf("stats = %+v, want 2 hits, 1 miss, 2 writes", st)
	}
}

// corrupt* verify that no damaged entry is ever served: it is moved to the
// quarantine directory and the lookup reports a miss.
func TestDiskCacheQuarantinesCorruption(t *testing.T) {
	damage := map[string]func([]byte) []byte{
		"truncated":    func(b []byte) []byte { return b[:len(b)-3] },
		"flipped-byte": func(b []byte) []byte { b[len(b)-1] ^= 0x40; return b },
		"bad-magic":    func(b []byte) []byte { b[0] ^= 0x40; return b },
	}
	for name, f := range damage {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			c, err := OpenDiskCache(dir)
			if err != nil {
				t.Fatal(err)
			}
			if err := c.Put("key", []byte("payload bytes")); err != nil {
				t.Fatal(err)
			}
			path := c.path("key")
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, f(raw), 0o644); err != nil {
				t.Fatal(err)
			}
			if got, ok := c.Get("key"); ok {
				t.Fatalf("served a corrupt entry: %q", got)
			}
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Error("corrupt entry still in place")
			}
			q, err := os.ReadDir(filepath.Join(dir, quarantineDir))
			if err != nil || len(q) != 1 {
				t.Fatalf("quarantine holds %d entries (err %v), want 1", len(q), err)
			}
			if c.Stats().Quarantined != 1 {
				t.Error("quarantine not counted")
			}
			// The slot is reusable: a fresh Put serves again.
			if err := c.Put("key", []byte("recomputed")); err != nil {
				t.Fatal(err)
			}
			if got, ok := c.Get("key"); !ok || string(got) != "recomputed" {
				t.Fatalf("after re-Put Get = %q, %v", got, ok)
			}
		})
	}
}

// A key collision on disk (an entry renamed over another key's filename)
// must not serve the wrong payload.
func TestDiskCacheRejectsWrongKey(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put("a", []byte("payload-a")); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(c.path("a"), c.path("b")); err != nil {
		t.Fatal(err)
	}
	if got, ok := c.Get("b"); ok {
		t.Fatalf("served another key's entry: %q", got)
	}
}

// A crash between temp-write and rename strands a .tmp file; reopening the
// cache sweeps it and never serves it.
func TestDiskCacheSweepsTempFiles(t *testing.T) {
	dir := t.TempDir()
	stranded := filepath.Join(dir, "deadbeef.entry.123.tmp")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(stranded, []byte("half-written"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDiskCache(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stranded); !os.IsNotExist(err) {
		t.Error("stranded temp file survived reopen")
	}
}

// Entries must verify cleanly when walked directly — the soak's no-torn-
// entries check depends on decodeEntry rejecting anything inconsistent.
func TestDiskCacheEntriesSelfDescribe(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	keys := []string{"k1", "k2", "k3"}
	for _, k := range keys {
		if err := c.Put(k, []byte("payload for "+k)); err != nil {
			t.Fatal(err)
		}
	}
	files, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	entries := 0
	for _, f := range files {
		if !strings.HasSuffix(f.Name(), cacheExt) {
			continue
		}
		entries++
		raw, err := os.ReadFile(filepath.Join(dir, f.Name()))
		if err != nil {
			t.Fatal(err)
		}
		key := entryKey(t, raw)
		if c.path(key) != filepath.Join(dir, f.Name()) {
			t.Errorf("entry %s claims key %q, which hashes elsewhere", f.Name(), key)
		}
		if _, err := decodeEntry(raw, key); err != nil {
			t.Errorf("entry %s does not verify: %v", f.Name(), err)
		}
	}
	if entries != len(keys) {
		t.Errorf("%d entries on disk, want %d", entries, len(keys))
	}
}

// entryKey extracts the key line from a raw entry.
func entryKey(t *testing.T, raw []byte) string {
	t.Helper()
	lines := bytes.SplitN(raw, []byte("\n"), 4)
	if len(lines) < 4 {
		t.Fatal("entry too short to carry a key line")
	}
	return string(lines[2])
}
