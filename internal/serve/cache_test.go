package serve

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func TestDiskCacheRoundTrip(t *testing.T) {
	c, err := OpenDiskCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get("k1"); ok {
		t.Fatal("hit on an empty cache")
	}
	payload := []byte(`{"x": 1}` + "\n")
	if err := c.Put("k1", payload); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get("k1")
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("Get = %q, %v; want the stored payload", got, ok)
	}
	// Overwrite is atomic and last-writer-wins.
	if err := c.Put("k1", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if got, _ := c.Get("k1"); string(got) != "v2" {
		t.Fatalf("after overwrite Get = %q", got)
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 || st.Writes != 2 {
		t.Errorf("stats = %+v, want 2 hits, 1 miss, 2 writes", st)
	}
}

// corrupt* verify that no damaged entry is ever served: it is moved to the
// quarantine directory and the lookup reports a miss.
func TestDiskCacheQuarantinesCorruption(t *testing.T) {
	damage := map[string]func([]byte) []byte{
		"truncated":    func(b []byte) []byte { return b[:len(b)-3] },
		"flipped-byte": func(b []byte) []byte { b[len(b)-1] ^= 0x40; return b },
		"bad-magic":    func(b []byte) []byte { b[0] ^= 0x40; return b },
	}
	for name, f := range damage {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			c, err := OpenDiskCache(dir)
			if err != nil {
				t.Fatal(err)
			}
			if err := c.Put("key", []byte("payload bytes")); err != nil {
				t.Fatal(err)
			}
			path := c.path("key")
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, f(raw), 0o644); err != nil {
				t.Fatal(err)
			}
			if got, ok := c.Get("key"); ok {
				t.Fatalf("served a corrupt entry: %q", got)
			}
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Error("corrupt entry still in place")
			}
			q, err := os.ReadDir(filepath.Join(dir, quarantineDir))
			if err != nil || len(q) != 1 {
				t.Fatalf("quarantine holds %d entries (err %v), want 1", len(q), err)
			}
			if c.Stats().Quarantined != 1 {
				t.Error("quarantine not counted")
			}
			// The slot is reusable: a fresh Put serves again.
			if err := c.Put("key", []byte("recomputed")); err != nil {
				t.Fatal(err)
			}
			if got, ok := c.Get("key"); !ok || string(got) != "recomputed" {
				t.Fatalf("after re-Put Get = %q, %v", got, ok)
			}
		})
	}
}

// A key collision on disk (an entry renamed over another key's filename)
// must not serve the wrong payload.
func TestDiskCacheRejectsWrongKey(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put("a", []byte("payload-a")); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(c.path("a"), c.path("b")); err != nil {
		t.Fatal(err)
	}
	if got, ok := c.Get("b"); ok {
		t.Fatalf("served another key's entry: %q", got)
	}
}

// A crash between temp-write and rename strands a .tmp file; reopening the
// cache sweeps it and never serves it.
func TestDiskCacheSweepsTempFiles(t *testing.T) {
	dir := t.TempDir()
	stranded := filepath.Join(dir, "deadbeef.entry.123.tmp")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(stranded, []byte("half-written"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDiskCache(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stranded); !os.IsNotExist(err) {
		t.Error("stranded temp file survived reopen")
	}
}

// Entries must verify cleanly when walked directly — the soak's no-torn-
// entries check depends on decodeEntry rejecting anything inconsistent.
func TestDiskCacheEntriesSelfDescribe(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	keys := []string{"k1", "k2", "k3"}
	for _, k := range keys {
		if err := c.Put(k, []byte("payload for "+k)); err != nil {
			t.Fatal(err)
		}
	}
	files, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	entries := 0
	for _, f := range files {
		if !strings.HasSuffix(f.Name(), cacheExt) {
			continue
		}
		entries++
		raw, err := os.ReadFile(filepath.Join(dir, f.Name()))
		if err != nil {
			t.Fatal(err)
		}
		key := entryKey(t, raw)
		if c.path(key) != filepath.Join(dir, f.Name()) {
			t.Errorf("entry %s claims key %q, which hashes elsewhere", f.Name(), key)
		}
		if _, err := decodeEntry(raw, key); err != nil {
			t.Errorf("entry %s does not verify: %v", f.Name(), err)
		}
	}
	if entries != len(keys) {
		t.Errorf("%d entries on disk, want %d", entries, len(keys))
	}
}

// Concurrent writers to the same key must never corrupt the entry: the
// temp-file+rename discipline means readers racing the writers see either a
// miss, the old payload, or the new payload — always intact, never torn.
func TestDiskCacheConcurrentSameKeyWriters(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Responses are deterministic in the key, so real writers always carry
	// the same payload; the cache's contract is last-rename-wins with no
	// torn state either way.
	payload := bytes.Repeat([]byte("deterministic-bytes."), 512)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if err := c.Put("shared-key", payload); err != nil {
					t.Errorf("concurrent Put: %v", err)
					return
				}
			}
		}()
	}
	// Readers race the writers the whole time.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if got, ok := c.Get("shared-key"); ok && !bytes.Equal(got, payload) {
					t.Errorf("racing Get returned torn bytes (%d of %d)", len(got), len(payload))
					return
				}
			}
		}()
	}
	wg.Wait()
	if got, ok := c.Get("shared-key"); !ok || !bytes.Equal(got, payload) {
		t.Fatalf("final Get = %v, intact %v", ok, bytes.Equal(got, payload))
	}
	if c.Stats().Quarantined != 0 {
		t.Errorf("concurrent same-key writes quarantined %d entries", c.Stats().Quarantined)
	}
}

// The tmp-sweep vs in-flight-write race: a second process opening the cache
// sweeps *.tmp files while the first is mid-Put. The sweep may steal the
// temp file out from under an in-flight write (a visible Put error), but it
// must never corrupt an installed entry or make a reader see torn bytes.
func TestDiskCacheSweepRaceWithInflightWrites(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("sweep-race-payload."), 256)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			// A concurrent open: sweeps every .tmp it can see.
			if _, err := OpenDiskCache(dir); err != nil {
				t.Errorf("concurrent open: %v", err)
				return
			}
		}
	}()
	var failed, installed int
	for i := 0; i < 300; i++ {
		key := fmt.Sprintf("key-%d", i%7)
		if err := c.Put(key, payload); err != nil {
			failed++ // the sweeper stole the tmp mid-write: reported, not silent
			continue
		}
		installed++
		if got, ok := c.Get(key); ok && !bytes.Equal(got, payload) {
			t.Fatalf("iteration %d: Get returned torn bytes after racing sweep", i)
		}
	}
	close(stop)
	wg.Wait()
	if installed == 0 {
		t.Fatal("no Put survived the sweep race; the cache made no progress")
	}
	t.Logf("sweep race: %d installed, %d stolen mid-write", installed, failed)
	// Every surviving entry still verifies.
	for i := 0; i < 7; i++ {
		if got, ok := c.Get(fmt.Sprintf("key-%d", i)); ok && !bytes.Equal(got, payload) {
			t.Errorf("entry key-%d corrupt after the race", i)
		}
	}
	if c.Stats().Quarantined != 0 {
		t.Errorf("sweep race quarantined %d entries — something served torn bytes", c.Stats().Quarantined)
	}
}

// A bounded cache evicts the coldest entries by logical access time — never
// the entry a Put just installed — and its byte ledger stays equal to the
// surviving files' footprint.
func TestDiskCacheEviction(t *testing.T) {
	dir := t.TempDir()
	payload := bytes.Repeat([]byte("x"), 100)
	entrySize := int64(len(encodeEntry("k0", payload))) // equal-length keys → equal sizes
	c, err := OpenDiskCacheLimit(dir, 3*entrySize)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"k0", "k1", "k2"} {
		if err := c.Put(k, payload); err != nil {
			t.Fatal(err)
		}
	}
	if st := c.Stats(); st.Evictions != 0 || st.Bytes != 3*entrySize {
		t.Fatalf("within budget: %+v", st)
	}
	// Touch k0 so k1 becomes the coldest, then overflow with k3.
	if _, ok := c.Get("k0"); !ok {
		t.Fatal("k0 missing before overflow")
	}
	if err := c.Put("k3", payload); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get("k1"); ok {
		t.Error("coldest entry k1 survived the sweep")
	}
	for _, k := range []string{"k0", "k2", "k3"} {
		if _, ok := c.Get(k); !ok {
			t.Errorf("%s evicted, want only k1", k)
		}
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Bytes != 3*entrySize {
		t.Errorf("after overflow: %+v, want 1 eviction, %d bytes", st, 3*entrySize)
	}
	// The ledger matches the directory.
	var disk int64
	files, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range files {
		if strings.HasSuffix(f.Name(), cacheExt) {
			info, _ := f.Info()
			disk += info.Size()
		}
	}
	if disk != st.Bytes {
		t.Errorf("ledger %d bytes, directory holds %d", st.Bytes, disk)
	}
}

// An entry larger than the whole budget is never evicted by its own Put —
// in-flight writes are not victims — but the next Put sweeps it.
func TestDiskCacheOversizeEntrySurvivesOwnSweep(t *testing.T) {
	dir := t.TempDir()
	big := bytes.Repeat([]byte("y"), 4096)
	c, err := OpenDiskCacheLimit(dir, 256)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put("big", big); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get("big"); !ok {
		t.Fatal("a Put evicted its own entry")
	}
	if err := c.Put("next", bytes.Repeat([]byte("z"), 64)); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get("big"); ok {
		t.Error("over-budget entry survived the next sweep")
	}
	if _, ok := c.Get("next"); !ok {
		t.Error("the sweeping Put lost its own entry")
	}
}

// Reopening an over-budget directory with a limit sweeps it deterministically
// (recency seeded in file-name order) before serving anything.
func TestDiskCacheOpenSweepsOverBudgetDir(t *testing.T) {
	dir := t.TempDir()
	unbounded, err := OpenDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("w"), 200)
	keys := []string{"a", "b", "c", "d"}
	for _, k := range keys {
		if err := unbounded.Put(k, payload); err != nil {
			t.Fatal(err)
		}
	}
	entrySize := int64(len(encodeEntry("a", payload)))
	c, err := OpenDiskCacheLimit(dir, 2*entrySize)
	if err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Evictions != 2 || st.Bytes != 2*entrySize {
		t.Fatalf("open sweep: %+v, want 2 evictions, %d bytes", st, 2*entrySize)
	}
	survivors := 0
	for _, k := range keys {
		if _, ok := c.Get(k); ok {
			survivors++
		}
	}
	if survivors != 2 {
		t.Errorf("%d survivors, want 2", survivors)
	}
	// A second open of the same bytes picks the same survivors.
	c2, err := OpenDiskCacheLimit(dir, 2*entrySize)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		_, was := c.Get(k)
		_, is := c2.Get(k)
		if was != is {
			t.Errorf("survivor set differs across reopens at %s", k)
		}
	}
}

// entryKey extracts the key line from a raw entry.
func entryKey(t *testing.T, raw []byte) string {
	t.Helper()
	lines := bytes.SplitN(raw, []byte("\n"), 4)
	if len(lines) < 4 {
		t.Fatal("entry too short to carry a key line")
	}
	return string(lines[2])
}
