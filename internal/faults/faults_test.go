package faults

import (
	"math"
	"testing"
)

// TestFaultsAttemptPure: the whole point of the package — a decision depends
// only on the schedule and the coordinates, never on call order.
func TestFaultsAttemptPure(t *testing.T) {
	s := Chaos(42, 0.3)
	first := s.Attempt(2, 5, 17, 3, 1000)
	s.Attempt(5, 2, 17, 3, 1000) // interleave other decisions
	s.Attempt(2, 5, 18, 1, 2000)
	if again := s.Attempt(2, 5, 17, 3, 1000); again != first {
		t.Errorf("same coordinates, different outcome: %+v vs %+v", first, again)
	}
	other := Chaos(43, 0.3).Attempt(2, 5, 17, 3, 1000)
	same := Chaos(42, 0.3).Attempt(2, 5, 17, 3, 1000)
	if same != first {
		t.Errorf("same seed, different outcome: %+v vs %+v", first, same)
	}
	_ = other // a different seed may legally coincide on one decision
}

// TestFaultsDropRate: the hashed variates are roughly uniform — a 30% drop
// probability drops about 30% of attempts.
func TestFaultsDropRate(t *testing.T) {
	s := &Schedule{Seed: 7, Drop: 0.3}
	drops := 0
	const n = 20000
	for seq := uint64(0); seq < n; seq++ {
		if s.Attempt(0, 1, seq, 1, 0).Drop {
			drops++
		}
	}
	if got := float64(drops) / n; math.Abs(got-0.3) > 0.02 {
		t.Errorf("empirical drop rate %.3f, want 0.30 ± 0.02", got)
	}
}

// TestFaultsJitterBounds: jitter is in [1, MaxJitter] when applied, 0 when
// Delay is off.
func TestFaultsJitterBounds(t *testing.T) {
	s := &Schedule{Seed: 3, Delay: 1, MaxJitter: 50}
	for seq := uint64(0); seq < 1000; seq++ {
		j := s.Attempt(0, 1, seq, 1, 0).Jitter
		if j < 1 || j > 50 {
			t.Fatalf("jitter %d outside [1, 50]", j)
		}
	}
	none := &Schedule{Seed: 3, MaxJitter: 50}
	if j := none.Attempt(0, 1, 0, 1, 0).Jitter; j != 0 {
		t.Errorf("jitter %d with Delay 0, want 0", j)
	}
}

// TestFaultsLinkDown: window matching, including Any wildcards and the
// half-open interval.
func TestFaultsLinkDown(t *testing.T) {
	s := &Schedule{Down: []Window{
		{Src: 0, Dst: 1, From: 100, To: 200},
		{Src: Any, Dst: 3, From: 500, To: 600},
	}}
	cases := []struct {
		src, dst int
		at       uint64
		want     bool
	}{
		{0, 1, 100, true},
		{0, 1, 199, true},
		{0, 1, 200, false}, // half-open
		{0, 1, 99, false},
		{1, 0, 150, false}, // directional
		{2, 3, 550, true},  // Any source
		{7, 3, 550, true},
		{3, 2, 550, false},
	}
	for _, c := range cases {
		if got := s.LinkDown(c.src, c.dst, c.at); got != c.want {
			t.Errorf("LinkDown(%d,%d,%d) = %v, want %v", c.src, c.dst, c.at, got, c.want)
		}
	}
	if !(&Schedule{Down: []Window{{Src: 0, Dst: 1, From: 0, To: 100}}}).Attempt(0, 1, 0, 1, 50).Drop {
		t.Error("attempt departing inside a down window was not dropped")
	}
}

// TestFaultsDefaults: zero values mean no faults, and Retry applies the
// documented defaults.
func TestFaultsDefaults(t *testing.T) {
	var s Schedule
	for seq := uint64(0); seq < 100; seq++ {
		if o := s.Attempt(0, 1, seq, 1, 0); o != (Outcome{}) {
			t.Fatalf("zero schedule injected a fault: %+v", o)
		}
	}
	if rto, max := s.Retry(50); rto != 216 || max != 16 {
		t.Errorf("Retry(50) = (%d, %d), want (216, 16)", rto, max)
	}
	s.RTO, s.MaxAttempts = 99, 3
	if rto, max := s.Retry(50); rto != 99 || max != 3 {
		t.Errorf("explicit Retry = (%d, %d), want (99, 3)", rto, max)
	}
	if c := s.ScaleCompute(0, 40); c != 40 {
		t.Errorf("ScaleCompute with no Slow entry = %d, want 40", c)
	}
	s.Slow = map[int]float64{0: 2.5}
	if c := s.ScaleCompute(0, 40); c != 100 {
		t.Errorf("ScaleCompute x2.5 = %d, want 100", c)
	}
}
