// Package faults defines deterministic, seed-driven fault schedules for the
// simulated multicomputer. The paper's machine model (§2.2) assumes a
// perfectly reliable in-order network; attaching a Schedule to
// machine.Config.Faults replaces that ideal fabric with one that can drop,
// duplicate, or delay/jitter individual transmission attempts, take links
// down for virtual-time windows, and slow down or crash-stop individual
// processes. The machine's reliable transport retries over the faulty fabric
// until delivery succeeds, so programs still compute the same values — only
// virtual time (and the event trace) shows the storm.
//
// Determinism is the design constraint: the simulated machine runs its
// processes as real goroutines, so any fault decision that depended on
// wall-clock interleaving would make runs irreproducible. A Schedule
// therefore carries no mutable PRNG state. Every decision is a pure hash of
// (Seed, link, sequence number, attempt number, decision stream): the fate of
// the k-th transmission attempt of the n-th message on link src→dst is fixed
// the moment the Schedule is created, whatever order the goroutines reach it
// in. Two runs with the same seed see byte-for-byte the same faults.
package faults

// Any is a wildcard endpoint in a Window: it matches every process.
const Any = -1

// Window takes the link Src→Dst down for the virtual-time interval [From,
// To): every transmission attempt departing inside the window is dropped.
// Src or Dst may be Any to down all links from/to a process, or the whole
// fabric. With the reliable transport retrying under exponential backoff, a
// finite window manifests as delay; an unbounded one (To = MaxUint64) as a
// lost-forever message and a receive-watchdog error.
type Window struct {
	Src, Dst int
	From, To uint64
}

// Schedule is one deterministic fault scenario. The zero value injects
// nothing; probabilities are in [0, 1] and evaluated independently per
// transmission attempt.
type Schedule struct {
	// Seed selects the scenario: same seed, same faults, always.
	Seed uint64

	// Drop is the probability that a data transmission attempt is dropped.
	Drop float64
	// Dup is the probability that a delivered attempt is duplicated by the
	// network (the extra copy is suppressed by the receiver's transport and
	// surfaces only in the wire trace and the Stats.Duplicates counter).
	Dup float64
	// AckDrop is the probability that the acknowledgement of a delivered
	// attempt is dropped on the reverse link, forcing a retransmission of
	// data the receiver already has — the classic duplicate-generation path.
	AckDrop float64
	// Delay is the probability that a delivered attempt is jittered.
	Delay float64
	// MaxJitter is the largest extra wire latency, in cycles, a jittered
	// attempt can incur (uniform in [1, MaxJitter]). Jitter reorders
	// arrivals; the transport's in-order release restores delivery order.
	MaxJitter uint64

	// Down lists link outage windows in virtual time.
	Down []Window

	// Slow multiplies the compute cost of the listed processes (a factor of
	// 2 makes every Compute charge twice the cycles — a straggler).
	Slow map[int]float64

	// Crash stops the listed processes at the given virtual times: the first
	// machine action a process begins at or after its crash point does not
	// happen, and the process silently stops, like a node failing mid-run.
	// Peers blocked on it surface receive-watchdog errors, not hangs.
	Crash map[int]uint64

	// RTO is the transport's initial retransmission timeout in cycles
	// (doubled per retry). 0 means the machine picks a default from its
	// wire latency.
	RTO uint64
	// MaxAttempts bounds the transport's retries; after this many failed
	// attempts the message is lost forever and the link is declared dead.
	// 0 means the default (16 — with 10% drop, loss odds are ~1e-16, so
	// chaos runs still terminate).
	MaxAttempts int
}

// Chaos is a convenience scenario: rate controls message drops, with
// duplication and ack loss at half the rate and jitter at the full rate.
// This is what the CLIs' -faults flag constructs.
func Chaos(seed uint64, rate float64) *Schedule {
	return &Schedule{
		Seed:      seed,
		Drop:      rate,
		Dup:       rate / 2,
		AckDrop:   rate / 2,
		Delay:     rate,
		MaxJitter: 200,
	}
}

// Outcome is the fate of one data transmission attempt.
type Outcome struct {
	// Drop: the attempt never arrives; the sender's retry timer will fire.
	Drop bool
	// Jitter is extra wire latency on top of the machine's Latency.
	Jitter uint64
	// Dup: the network delivers a second copy of the attempt.
	Dup bool
	// AckDrop: the data arrived but its acknowledgement was lost; the
	// sender retransmits and the receiver sees a duplicate.
	AckDrop bool
}

// Decision streams keep the independent probabilities independent: each
// (stream, link, seq, attempt) tuple hashes to its own uniform variate.
const (
	streamDrop uint64 = iota + 1
	streamDup
	streamAckDrop
	streamDelay
	streamJitter
)

// splitmix64's finalizer: a full-avalanche 64-bit mixer.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// roll returns a uniform variate in [0, 1) that is a pure function of the
// schedule seed and the decision coordinates.
func (s *Schedule) roll(stream uint64, src, dst int, seq uint64, attempt int) float64 {
	h := s.Seed
	h = mix(h ^ stream)
	h = mix(h ^ uint64(uint32(src)) ^ uint64(uint32(dst))<<32)
	h = mix(h ^ seq)
	h = mix(h ^ uint64(attempt))
	return float64(h>>11) / float64(uint64(1)<<53)
}

// Attempt decides the fate of transmission attempt number attempt (1-based)
// of message seq on link src→dst, departing at virtual time depart. The
// result is deterministic: it depends only on the schedule and the
// arguments, never on call order.
func (s *Schedule) Attempt(src, dst int, seq uint64, attempt int, depart uint64) Outcome {
	var o Outcome
	if s.LinkDown(src, dst, depart) || s.roll(streamDrop, src, dst, seq, attempt) < s.Drop {
		o.Drop = true
		return o
	}
	if s.Delay > 0 && s.MaxJitter > 0 && s.roll(streamDelay, src, dst, seq, attempt) < s.Delay {
		o.Jitter = 1 + uint64(s.roll(streamJitter, src, dst, seq, attempt)*float64(s.MaxJitter))
	}
	if s.roll(streamDup, src, dst, seq, attempt) < s.Dup {
		o.Dup = true
	}
	// The ack travels the reverse link after the data lands.
	arrive := depart + o.Jitter
	if s.LinkDown(dst, src, arrive) || s.roll(streamAckDrop, src, dst, seq, attempt) < s.AckDrop {
		o.AckDrop = true
	}
	return o
}

// LinkDown reports whether the link src→dst is inside an outage window at
// virtual time t.
func (s *Schedule) LinkDown(src, dst int, t uint64) bool {
	for _, w := range s.Down {
		if w.Src != Any && w.Src != src {
			continue
		}
		if w.Dst != Any && w.Dst != dst {
			continue
		}
		if t >= w.From && t < w.To {
			return true
		}
	}
	return false
}

// ScaleCompute applies process p's slowdown factor to a compute charge.
func (s *Schedule) ScaleCompute(p int, c uint64) uint64 {
	f, ok := s.Slow[p]
	if !ok || f <= 0 || f == 1 {
		return c
	}
	return uint64(float64(c) * f)
}

// CrashPoint returns process p's crash-stop virtual time, if it has one.
func (s *Schedule) CrashPoint(p int) (uint64, bool) {
	t, ok := s.Crash[p]
	return t, ok
}

// Retry returns the transport's retransmission parameters with defaults
// applied: rto is the initial timeout given the machine's wire latency, and
// max is the attempt cap after which a message is lost forever.
func (s *Schedule) Retry(latency uint64) (rto uint64, max int) {
	rto = s.RTO
	if rto == 0 {
		// Past one round trip plus slack, so a fault-free ack beats the timer.
		rto = 4*latency + 16
	}
	max = s.MaxAttempts
	if max <= 0 {
		max = 16
	}
	return rto, max
}
