package analysis

import (
	"sort"

	"procdecomp/internal/trace"
)

// Hotspot rankings: which links and tags carry the traffic, and — the part
// volume alone cannot tell — which of them the critical path actually ran
// through. A link can move thousands of messages off the critical path and
// cost nothing; a single-message link the makespan waits on is a hotspot.

// LinkHotspot aggregates one (src, dst) link.
type LinkHotspot struct {
	Src, Dst int
	// Messages/Values are the link's total traffic (from the message matrix).
	Messages int64
	Values   int64
	// CritCycles is wire + fault-delay cycles the critical path spent waiting
	// on this link; CritMsgs counts the waits.
	CritCycles uint64
	CritMsgs   int
}

// TagHotspot aggregates one message tag across all links.
type TagHotspot struct {
	Tag int64
	// Messages/Values are the tag's total traffic (from the tag histogram).
	Messages int64
	Values   int64
	// CritCycles is critical-path cycles on message segments carrying this
	// tag (send and recv overhead plus wire waits); CritMsgs counts them.
	CritCycles uint64
	CritMsgs   int
}

// Hotspots ranks links and tags. Links are ordered by critical-path wait
// cycles, then total messages, then (src, dst); tags by critical-path cycles,
// then total messages, then tag — fully deterministic.
func (d *Dump) Hotspots(cp *CriticalPath) ([]LinkHotspot, []TagHotspot) {
	links := map[[2]int]*LinkHotspot{}
	tags := map[int64]*TagHotspot{}
	for p := range d.Events {
		for _, e := range d.Events[p] {
			if e.Kind != trace.KindSend {
				continue
			}
			lk := [2]int{p, e.Peer}
			l := links[lk]
			if l == nil {
				l = &LinkHotspot{Src: p, Dst: e.Peer}
				links[lk] = l
			}
			l.Messages++
			l.Values += int64(e.Values)
			tg := tags[e.Tag]
			if tg == nil {
				tg = &TagHotspot{Tag: e.Tag}
				tags[e.Tag] = tg
			}
			tg.Messages++
			tg.Values += int64(e.Values)
		}
	}
	for _, s := range cp.Segments {
		switch s.Kind {
		case "wait":
			// The wait sits on the receiver (s.Proc); the link is peer→proc.
			if l := links[[2]int{s.Peer, s.Proc}]; l != nil {
				l.CritCycles += s.Dur()
				l.CritMsgs++
			}
			if tg := tags[s.Tag]; tg != nil {
				tg.CritCycles += s.Dur()
				tg.CritMsgs++
			}
		case "send", "recv":
			if tg := tags[s.Tag]; tg != nil {
				tg.CritCycles += s.Dur()
				tg.CritMsgs++
			}
		}
	}

	ls := make([]LinkHotspot, 0, len(links))
	for _, l := range links {
		ls = append(ls, *l)
	}
	sort.Slice(ls, func(i, j int) bool {
		if ls[i].CritCycles != ls[j].CritCycles {
			return ls[i].CritCycles > ls[j].CritCycles
		}
		if ls[i].Messages != ls[j].Messages {
			return ls[i].Messages > ls[j].Messages
		}
		if ls[i].Src != ls[j].Src {
			return ls[i].Src < ls[j].Src
		}
		return ls[i].Dst < ls[j].Dst
	})
	ts := make([]TagHotspot, 0, len(tags))
	for _, tg := range tags {
		ts = append(ts, *tg)
	}
	sort.Slice(ts, func(i, j int) bool {
		if ts[i].CritCycles != ts[j].CritCycles {
			return ts[i].CritCycles > ts[j].CritCycles
		}
		if ts[i].Messages != ts[j].Messages {
			return ts[i].Messages > ts[j].Messages
		}
		return ts[i].Tag < ts[j].Tag
	})
	return ls, ts
}
