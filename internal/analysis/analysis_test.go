package analysis

import (
	"bytes"
	"strings"
	"testing"

	"procdecomp/internal/trace"
)

// testCosts is a small calibration that keeps hand-computed expectations
// readable.
func testCosts() Costs {
	return Costs{OpCost: 1, SendStartup: 10, RecvStartup: 5, PerValue: 1, Latency: 7, ValueBytes: 4}
}

// pingDump is a two-process run built by hand: proc 0 computes 100 cycles,
// sends 3 values to proc 1 (departing at 113, arriving at 120); proc 1
// computes 50 cycles, waits, and receives. Every stamp below is derived from
// testCosts by hand, so the assertions are independent of the analyzer.
func pingDump() *Dump {
	return &Dump{
		Version: Version,
		Procs:   2,
		Costs:   testCosts(),
		Events: [][]trace.Event{
			{
				{Proc: 0, Kind: trace.KindCompute, Start: 0, End: 100, Peer: -1},
				{Proc: 0, Kind: trace.KindSend, Start: 100, End: 113, Peer: 1, Tag: 9, Values: 3, Seq: 1},
			},
			{
				{Proc: 1, Kind: trace.KindCompute, Start: 0, End: 50, Peer: -1},
				{Proc: 1, Kind: trace.KindIdle, Start: 50, End: 120, Peer: 0, Tag: 9, Seq: 1, Arrive: 120},
				{Proc: 1, Kind: trace.KindRecv, Start: 120, End: 128, Peer: 0, Tag: 9, Values: 3, Seq: 1, Arrive: 120},
			},
		},
	}
}

func TestCriticalPathPing(t *testing.T) {
	d := pingDump()
	cp, err := d.CriticalPath()
	if err != nil {
		t.Fatal(err)
	}
	if cp.Makespan != 128 {
		t.Fatalf("makespan = %d, want 128", cp.Makespan)
	}
	if cp.EndProc != 1 {
		t.Fatalf("end proc = %d, want 1", cp.EndProc)
	}
	if got := cp.Len(); got != 128 {
		t.Fatalf("path length = %d, want 128", got)
	}
	// The binding chain: proc 0 compute [0,100), send [100,113), wire
	// [113,120) on proc 1, recv [120,128).
	want := Attribution{Compute: 100, SendStartup: 10, RecvStartup: 5, PerValue: 6, Wire: 7}
	if cp.Attr != want {
		t.Fatalf("attribution = %+v, want %+v", cp.Attr, want)
	}
	kinds := make([]string, len(cp.Segments))
	for i, s := range cp.Segments {
		kinds[i] = s.Kind
	}
	if got := strings.Join(kinds, ","); got != "compute,send,wait,recv" {
		t.Fatalf("segment kinds = %s", got)
	}
}

// A message that arrives later than depart+Latency (transport retries) must
// show the surplus as fault delay, not wire time.
func TestCriticalPathFaultDelay(t *testing.T) {
	d := pingDump()
	// Delay the arrival by 30 cycles beyond the nominal 120.
	d.Events[1][1].End = 150
	d.Events[1][1].Arrive = 150
	d.Events[1][2] = trace.Event{Proc: 1, Kind: trace.KindRecv, Start: 150, End: 158, Peer: 0, Tag: 9, Values: 3, Seq: 1, Arrive: 150}
	cp, err := d.CriticalPath()
	if err != nil {
		t.Fatal(err)
	}
	if cp.Attr.Wire != 7 || cp.Attr.Fault != 30 {
		t.Fatalf("wire/fault = %d/%d, want 7/30", cp.Attr.Wire, cp.Attr.Fault)
	}
	if cp.Len() != cp.Makespan {
		t.Fatalf("length %d != makespan %d", cp.Len(), cp.Makespan)
	}
}

// A message that departed before the receiver started waiting pins the whole
// wait on the wire, and the walk stays on the receiver.
func TestCriticalPathEarlyDeparture(t *testing.T) {
	d := pingDump()
	// Receiver computes 110 cycles, so the send (departing at 113) overlaps
	// almost fully; only [110,120) is an exposed wait.
	d.Events[1][0].End = 110
	d.Events[1][1].Start = 110
	cp, err := d.CriticalPath()
	if err != nil {
		t.Fatal(err)
	}
	// Chain: proc1 compute [0,110), wait [113,120)... no — depart=113 is
	// inside the wait, so the walk jumps to the sender at 113 after the
	// [113,120) wire tail; the exposed wire is 7 cycles either way. What
	// matters: it still tiles exactly.
	if cp.Len() != cp.Makespan || cp.Attr.Total() != cp.Makespan {
		t.Fatalf("path does not tile: len %d, attr %d, makespan %d", cp.Len(), cp.Attr.Total(), cp.Makespan)
	}
	if cp.Attr.Fault != 0 {
		t.Fatalf("fault = %d, want 0", cp.Attr.Fault)
	}
}

// Corrupting the tiling must produce an error, never a silently wrong report.
func TestCriticalPathDetectsBrokenTiling(t *testing.T) {
	d := pingDump()
	d.Events[0][0].End = 99 // gap [99,100) before the send span, on the path
	if _, err := d.CriticalPath(); err == nil {
		t.Fatal("expected an error on a non-tiling trace")
	}
	d = pingDump()
	d.Events[1][1].Seq = 7 // dangling message edge
	if _, err := d.CriticalPath(); err == nil {
		t.Fatal("expected an error on a dangling message edge")
	}
}

func TestPredictIdentityAndScenarios(t *testing.T) {
	d := pingDump()
	got, err := d.Predict(Scenario{})
	if err != nil {
		t.Fatal(err)
	}
	if got != 128 {
		t.Fatalf("identity replay = %d, want 128", got)
	}
	// Latency=0: message released at 113; proc 1 finishes at 113+5+3 = 121.
	got, err = d.Predict(Scenario{Latency: Zero()})
	if err != nil {
		t.Fatal(err)
	}
	if got != 121 {
		t.Fatalf("latency=0 replay = %d, want 121", got)
	}
	// SendStartup=0: send span is 3 cycles, release 103+7=110; proc 1
	// finishes at 110+8 = 118.
	got, err = d.Predict(Scenario{SendStartup: Zero()})
	if err != nil {
		t.Fatal(err)
	}
	if got != 118 {
		t.Fatalf("sendstartup=0 replay = %d, want 118", got)
	}
	// Free communication: proc 1's recv still waits for the release at 100
	// (send is instant, latency 0); it finishes at max(50,100) = 100.
	got, err = d.Predict(Scenario{SendStartup: Zero(), RecvStartup: Zero(), PerValue: Zero(), Latency: Zero()})
	if err != nil {
		t.Fatal(err)
	}
	if got != 100 {
		t.Fatalf("free-comm replay = %d, want 100", got)
	}
}

// Transport surplus (arrival beyond depart+Latency) must replay as a
// per-message excess so the identity holds on fault-injected runs.
func TestPredictKeepsTransportExcess(t *testing.T) {
	d := pingDump()
	d.Events[1][1].End = 150
	d.Events[1][1].Arrive = 150
	d.Events[1][2] = trace.Event{Proc: 1, Kind: trace.KindRecv, Start: 150, End: 158, Peer: 0, Tag: 9, Values: 3, Seq: 1, Arrive: 150}
	got, err := d.Predict(Scenario{})
	if err != nil {
		t.Fatal(err)
	}
	if got != 158 {
		t.Fatalf("identity replay with excess = %d, want 158", got)
	}
}

func TestDumpRoundTrip(t *testing.T) {
	d := pingDump()
	var buf bytes.Buffer
	if err := d.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDump(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Procs != d.Procs || got.Costs != d.Costs || len(got.Events) != len(d.Events) {
		t.Fatalf("round trip mangled the dump: %+v", got)
	}
	for p := range d.Events {
		if len(got.Events[p]) != len(d.Events[p]) {
			t.Fatalf("proc %d: %d events, want %d", p, len(got.Events[p]), len(d.Events[p]))
		}
		for i := range d.Events[p] {
			if got.Events[p][i] != d.Events[p][i] {
				t.Fatalf("proc %d event %d: %+v != %+v", p, i, got.Events[p][i], d.Events[p][i])
			}
		}
	}
	// The same file must still be a valid Chrome trace (events array intact).
	if !bytes.Contains(buf.Bytes(), []byte(`"traceEvents"`)) {
		t.Fatal("dump is not embedded in a Chrome trace file")
	}
}

func TestReadDumpRejectsForeignFiles(t *testing.T) {
	if _, err := ReadDump(strings.NewReader(`{"traceEvents":[]}`)); err == nil {
		t.Fatal("expected an error for a trace without a pdtrace payload")
	}
	if _, err := ReadDump(strings.NewReader(`not json`)); err == nil {
		t.Fatal("expected an error for a non-JSON file")
	}
	if _, err := ReadDump(strings.NewReader(`{"pdtrace":{"Version":99,"Procs":0,"Events":[]}}`)); err == nil {
		t.Fatal("expected a version error")
	}
}

func TestAnalyzeReportPing(t *testing.T) {
	d := pingDump()
	r, err := Analyze(d, Options{IncludePath: true})
	if err != nil {
		t.Fatal(err)
	}
	if r.Makespan != 128 || r.Messages != 1 || r.Values != 3 {
		t.Fatalf("report headline = %d/%d/%d", r.Makespan, r.Messages, r.Values)
	}
	if len(r.WhatIf) != len(DefaultScenarios()) {
		t.Fatalf("%d what-if rows", len(r.WhatIf))
	}
	if r.WhatIf[0].Predicted != 128 || r.WhatIf[0].Speedup != 1.0 {
		t.Fatalf("identity row = %+v", r.WhatIf[0])
	}
	if len(r.Links) != 1 || r.Links[0].Src != 0 || r.Links[0].Dst != 1 {
		t.Fatalf("links = %+v", r.Links)
	}
	text := r.Format()
	for _, want := range []string{"makespan 128 cycles", "send startup", "what-if", "critical path (time order)"} {
		if !strings.Contains(text, want) {
			t.Errorf("text report lacks %q", want)
		}
	}
	var html bytes.Buffer
	if err := r.WriteHTML(&html); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"<!DOCTYPE html>", "Makespan attribution", "What-if"} {
		if !strings.Contains(html.String(), want) {
			t.Errorf("html report lacks %q", want)
		}
	}
}

// An empty run must analyze without errors (and without divisions by zero).
func TestAnalyzeEmptyRun(t *testing.T) {
	d := &Dump{Version: Version, Procs: 1, Costs: testCosts(), Events: [][]trace.Event{{}}}
	r, err := Analyze(d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Makespan != 0 || r.Segments != 0 {
		t.Fatalf("empty run report = %+v", r)
	}
}
