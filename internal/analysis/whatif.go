package analysis

import (
	"fmt"

	"procdecomp/internal/trace"
)

// What-if cost modeling: replay the recorded communication DAG under altered
// machine cost parameters to predict how the makespan would move, without
// rerunning the program.
//
// The recorded trace fixes the *structure* of the run — which process
// computed how much between which messages, and which message satisfied
// which receive. Replay keeps that structure and recomputes the clocks:
// compute spans keep their recorded durations, message overheads are
// recomputed from the scenario's costs, and every receive waits for its
// recorded message's new arrival stamp (send completion + scenario latency +
// the recorded transport excess). With unchanged costs the replay reproduces
// the measured makespan exactly — the identity that anchors trust in the
// altered-cost predictions.
//
// Model assumptions, stated honestly:
//   - The program's message structure would not change under the new costs
//     (no re-blocking, no re-decomposition) — predictions are ceilings for
//     *this* program, not for a recompiled one.
//   - Blocked spans (CPU contention under Placement, backpressure under
//     MailboxCap) replay as their recorded durations: the contention pattern
//     is assumed unchanged. Exact for unchanged costs; an approximation
//     otherwise.
//   - Transport excess beyond the nominal latency (retries, jitter, in-order
//     holds) replays as the recorded per-message surplus.

// Scenario overrides a subset of the cost parameters; nil fields keep the
// recorded calibration.
type Scenario struct {
	Name        string
	SendStartup *uint64
	RecvStartup *uint64
	PerValue    *uint64
	Latency     *uint64
}

// apply resolves the scenario against the recorded costs.
func (s Scenario) apply(c Costs) Costs {
	if s.SendStartup != nil {
		c.SendStartup = *s.SendStartup
	}
	if s.RecvStartup != nil {
		c.RecvStartup = *s.RecvStartup
	}
	if s.PerValue != nil {
		c.PerValue = *s.PerValue
	}
	if s.Latency != nil {
		c.Latency = *s.Latency
	}
	return c
}

// Zero is a convenience pointer for scenario literals.
func Zero() *uint64 { z := uint64(0); return &z }

// CostPtr boxes a cost value for a Scenario field.
func CostPtr(v uint64) *uint64 { return &v }

// DefaultScenarios are the standard speedup-ceiling probes: the recorded
// calibration (the identity check), free message startup, free per-value
// copying (infinite bandwidth), free wire, and free communication.
func DefaultScenarios() []Scenario {
	return []Scenario{
		{Name: "as recorded"},
		{Name: "send startup = 0", SendStartup: Zero()},
		{Name: "startup = 0 (send+recv)", SendStartup: Zero(), RecvStartup: Zero()},
		{Name: "per-value = 0 (infinite bandwidth)", PerValue: Zero()},
		{Name: "latency = 0", Latency: Zero()},
		{Name: "free communication", SendStartup: Zero(), RecvStartup: Zero(), PerValue: Zero(), Latency: Zero()},
	}
}

// replayAction is one step of a process's recorded program, in order.
type replayAction struct {
	kind   trace.Kind // KindCompute (also for blocked), KindSend, KindRecv
	dur    uint64     // compute/blocked: recorded duration
	peer   int        // send: destination; recv: source
	seq    uint64     // message edge ID (sender's counter)
	values int
	excess uint64 // send: recorded arrival minus (departure + latency)
}

type msgKey struct {
	src int
	seq uint64
}

// Predict replays the dump under the scenario and returns the predicted
// makespan.
func (d *Dump) Predict(sc Scenario) (uint64, error) {
	costs := sc.apply(d.Costs)

	// Recorded release stamps, for per-message transport excess.
	arrive := map[msgKey]uint64{}
	for p := range d.Events {
		for _, e := range d.Events[p] {
			if e.Kind == trace.KindRecv {
				arrive[msgKey{src: e.Peer, seq: e.Seq}] = e.Arrive
			}
		}
	}

	// Rebuild each process's action list. Idle spans are dropped (waits are
	// recomputed); blocked spans become fixed delays.
	acts := make([][]replayAction, d.Procs)
	for p := range d.Events {
		for _, e := range d.Events[p] {
			switch e.Kind {
			case trace.KindCompute, trace.KindBlocked:
				acts[p] = append(acts[p], replayAction{kind: trace.KindCompute, dur: e.Dur()})
			case trace.KindSend:
				a := replayAction{kind: trace.KindSend, peer: e.Peer, seq: e.Seq, values: e.Values}
				if rel, ok := arrive[msgKey{src: p, seq: e.Seq}]; ok {
					nominal := e.End + d.Costs.Latency
					if rel > nominal {
						a.excess = rel - nominal
					}
				}
				acts[p] = append(acts[p], a)
			case trace.KindRecv:
				acts[p] = append(acts[p], replayAction{kind: trace.KindRecv, peer: e.Peer, seq: e.Seq, values: e.Values})
			case trace.KindIdle:
				// recomputed from the matching send
			default:
				return 0, fmt.Errorf("analysis: proc %d has an event of unknown kind %v", p, e.Kind)
			}
		}
	}

	// Event-driven replay: advance each process until it blocks on a message
	// whose send has not executed yet; repeat until quiescent. The recorded
	// run completed, so the dependence structure is acyclic and every round
	// makes progress until all processes finish.
	clocks := make([]uint64, d.Procs)
	idx := make([]int, d.Procs)
	released := map[msgKey]uint64{}
	for {
		progressed, done := false, true
		for p := range acts {
			for idx[p] < len(acts[p]) {
				a := acts[p][idx[p]]
				if a.kind == trace.KindRecv {
					rel, ok := released[msgKey{src: a.peer, seq: a.seq}]
					if !ok {
						break // sender has not reached this message yet
					}
					if rel > clocks[p] {
						clocks[p] = rel
					}
					clocks[p] += costs.RecvStartup + uint64(a.values)*costs.PerValue
				} else if a.kind == trace.KindSend {
					clocks[p] += costs.SendStartup + uint64(a.values)*costs.PerValue
					released[msgKey{src: p, seq: a.seq}] = clocks[p] + costs.Latency + a.excess
				} else {
					clocks[p] += a.dur
				}
				idx[p]++
				progressed = true
			}
			if idx[p] < len(acts[p]) {
				done = false
			}
		}
		if done {
			break
		}
		if !progressed {
			return 0, fmt.Errorf("analysis: what-if replay deadlocked (a receive's message has no recorded send)")
		}
	}
	var makespan uint64
	for _, c := range clocks {
		if c > makespan {
			makespan = c
		}
	}
	return makespan, nil
}
