package analysis

import (
	"fmt"
	"html/template"
	"io"
)

// WriteHTML renders the report as a single self-contained HTML file — inline
// CSS, no scripts, no external fetches — so it can be attached to a CI run or
// mailed around. Tables only, deliberately: the numbers are exact and small,
// and a table keeps them greppable.
func (r *Report) WriteHTML(w io.Writer) error {
	return htmlTmpl.Execute(w, htmlData{R: r})
}

type htmlData struct {
	R *Report
}

// Pct formats v as a percentage of the makespan.
func (d htmlData) Pct(v uint64) string {
	if d.R.Makespan == 0 {
		return "0.0%"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(v)/float64(d.R.Makespan))
}

var htmlTmpl = template.Must(template.New("report").Parse(`<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>pdtrace report</title>
<style>
body { font: 14px/1.5 system-ui, sans-serif; margin: 2rem auto; max-width: 60rem; color: #1a1a1a; }
h1 { font-size: 1.4rem; } h2 { font-size: 1.1rem; margin-top: 2rem; }
table { border-collapse: collapse; margin: 0.5rem 0; }
th, td { border: 1px solid #ccc; padding: 0.25rem 0.75rem; text-align: right; }
th:first-child, td:first-child { text-align: left; }
th { background: #f0f0f0; }
tr.total td { font-weight: bold; border-top: 2px solid #888; }
p.note { color: #555; font-size: 0.9em; }
</style>
</head>
<body>
<h1>pdtrace report</h1>
<p>{{.R.Procs}} procs{{if .R.Multiplexed}}, multiplexed{{end}}{{if .R.Faulty}}, fault-injected{{end}} &mdash;
makespan <b>{{.R.Makespan}}</b> cycles, {{.R.Messages}} messages ({{.R.Values}} values).
Critical path: {{.R.Segments}} segments ending on proc {{.R.EndProc}}; length equals the makespan (verified).</p>

<h2>Makespan attribution</h2>
<table>
<tr><th>cause</th><th>cycles</th><th>share</th></tr>
<tr><td>compute</td><td>{{.R.Attribution.Compute}}</td><td>{{.Pct .R.Attribution.Compute}}</td></tr>
<tr><td>send startup</td><td>{{.R.Attribution.SendStartup}}</td><td>{{.Pct .R.Attribution.SendStartup}}</td></tr>
<tr><td>recv startup</td><td>{{.R.Attribution.RecvStartup}}</td><td>{{.Pct .R.Attribution.RecvStartup}}</td></tr>
<tr><td>per-value copy</td><td>{{.R.Attribution.PerValue}}</td><td>{{.Pct .R.Attribution.PerValue}}</td></tr>
<tr><td>wire latency</td><td>{{.R.Attribution.Wire}}</td><td>{{.Pct .R.Attribution.Wire}}</td></tr>
<tr><td>fault delay</td><td>{{.R.Attribution.Fault}}</td><td>{{.Pct .R.Attribution.Fault}}</td></tr>
<tr><td>blocked (cpu/backpressure)</td><td>{{.R.Attribution.Blocked}}</td><td>{{.Pct .R.Attribution.Blocked}}</td></tr>
<tr class="total"><td>total</td><td>{{.R.Attribution.Total}}</td><td>{{.Pct .R.Attribution.Total}}</td></tr>
</table>

{{if .R.Links}}
<h2>Hotspot links</h2>
<p class="note">Ranked by cycles the critical path spent waiting on the link; total traffic for context.</p>
<table>
<tr><th>link</th><th>messages</th><th>values</th><th>crit cycles</th><th>crit msgs</th></tr>
{{range .R.Links}}<tr><td>{{.Src}} &rarr; {{.Dst}}</td><td>{{.Messages}}</td><td>{{.Values}}</td><td>{{.CritCycles}}</td><td>{{.CritMsgs}}</td></tr>
{{end}}</table>
{{end}}

{{if .R.Tags}}
<h2>Hotspot tags</h2>
<table>
<tr><th>tag</th><th>messages</th><th>values</th><th>crit cycles</th><th>crit msgs</th></tr>
{{range .R.Tags}}<tr><td>{{.Tag}}</td><td>{{.Messages}}</td><td>{{.Values}}</td><td>{{.CritCycles}}</td><td>{{.CritMsgs}}</td></tr>
{{end}}</table>
{{end}}

{{if .R.WhatIf}}
<h2>What-if cost modeling</h2>
<p class="note">The recorded communication DAG replayed under altered cost parameters; the program's
message structure is held fixed, so each prediction bounds what that optimization alone could buy.</p>
<table>
<tr><th>scenario</th><th>predicted makespan</th><th>speedup</th></tr>
{{range .R.WhatIf}}<tr><td>{{.Name}}</td><td>{{.Predicted}}</td><td>{{printf "%.2f" .Speedup}}&times;</td></tr>
{{end}}</table>
{{end}}

<h2>Cost calibration</h2>
<table>
<tr><th>parameter</th><th>cycles</th></tr>
<tr><td>OpCost</td><td>{{.R.Costs.OpCost}}</td></tr>
<tr><td>MemCost</td><td>{{.R.Costs.MemCost}}</td></tr>
<tr><td>LoopCost</td><td>{{.R.Costs.LoopCost}}</td></tr>
<tr><td>SendStartup</td><td>{{.R.Costs.SendStartup}}</td></tr>
<tr><td>RecvStartup</td><td>{{.R.Costs.RecvStartup}}</td></tr>
<tr><td>PerValue</td><td>{{.R.Costs.PerValue}}</td></tr>
<tr><td>Latency</td><td>{{.R.Costs.Latency}}</td></tr>
</table>
</body>
</html>
`))
