package analysis

import (
	"fmt"
	"strings"

	"procdecomp/internal/trace"
)

// WireCount is one transport event kind's total.
type WireCount struct {
	Kind  string
	Count int64
}

// wireCounts renders the dump's transport stream as a deterministic list,
// in WireKind declaration order.
func wireCounts(d *Dump) []WireCount {
	counts := map[trace.WireKind]int64{}
	for _, e := range d.Wire {
		counts[e.Kind]++
	}
	var out []WireCount
	for k := trace.WireXmit; k <= trace.WireLost; k++ {
		if c := counts[k]; c > 0 {
			out = append(out, WireCount{Kind: k.String(), Count: c})
		}
	}
	return out
}

// WhatIf is one replay scenario's prediction.
type WhatIf struct {
	Name string
	// Predicted is the replayed makespan under the scenario's costs.
	Predicted uint64
	// Speedup is measured/predicted (1.00 for the identity scenario).
	Speedup float64
}

// Report is the full analysis of one dump, serializable to deterministic
// JSON (slices only, ordered at construction — two identical runs produce
// byte-identical reports).
type Report struct {
	Procs       int
	Multiplexed bool `json:",omitempty"`
	Faulty      bool `json:",omitempty"`
	Makespan    uint64
	Messages    int64
	Values      int64
	Costs       Costs
	// EndProc is where the critical path ends; Segments its segment count.
	EndProc  int
	Segments int
	// Attribution partitions the makespan by cause; it sums to Makespan
	// exactly (verified before the report is built).
	Attribution Attribution
	Links       []LinkHotspot
	Tags        []TagHotspot
	// Wire summarizes the transport stream by event kind, in a fixed kind
	// order (a sorted rendering of trace.Log.WireCounts); empty for runs on
	// the ideal network.
	Wire   []WireCount `json:",omitempty"`
	WhatIf []WhatIf
	// Path is the full critical path, populated only on request
	// (pdtrace -path); it can run to thousands of segments.
	Path []Segment `json:",omitempty"`
}

// Options tunes Analyze.
type Options struct {
	// Scenarios to replay; nil means DefaultScenarios.
	Scenarios []Scenario
	// TopLinks/TopTags cap the hotspot rankings (0 = keep all).
	TopLinks, TopTags int
	// IncludePath embeds the full segment list in the report.
	IncludePath bool
}

// Analyze runs the full pipeline — critical path, attribution, hotspots,
// what-if replays — verifying the exactness invariants as it goes. An
// analysis whose numbers do not reconcile returns an error, never a report.
func Analyze(d *Dump, opt Options) (*Report, error) {
	cp, err := d.CriticalPath()
	if err != nil {
		return nil, err
	}
	r := &Report{
		Procs:       d.Procs,
		Multiplexed: d.Placement != nil,
		Faulty:      d.Faulty,
		Makespan:    cp.Makespan,
		Messages:    d.Messages(),
		Values:      d.Values(),
		Costs:       d.Costs,
		EndProc:     cp.EndProc,
		Segments:    len(cp.Segments),
		Attribution: cp.Attr,
	}
	r.Links, r.Tags = d.Hotspots(cp)
	r.Wire = wireCounts(d)
	if opt.TopLinks > 0 && len(r.Links) > opt.TopLinks {
		r.Links = r.Links[:opt.TopLinks]
	}
	if opt.TopTags > 0 && len(r.Tags) > opt.TopTags {
		r.Tags = r.Tags[:opt.TopTags]
	}
	scenarios := opt.Scenarios
	if scenarios == nil {
		scenarios = DefaultScenarios()
	}
	for _, sc := range scenarios {
		pred, err := d.Predict(sc)
		if err != nil {
			return nil, fmt.Errorf("what-if %q: %w", sc.Name, err)
		}
		if isIdentity(sc) && pred != cp.Makespan {
			return nil, fmt.Errorf("analysis: identity replay predicts %d, run measured %d — the recorded DAG does not reproduce the run", pred, cp.Makespan)
		}
		w := WhatIf{Name: sc.Name, Predicted: pred}
		if pred > 0 {
			w.Speedup = float64(cp.Makespan) / float64(pred)
		}
		r.WhatIf = append(r.WhatIf, w)
	}
	if opt.IncludePath {
		r.Path = cp.Segments
	}
	return r, nil
}

func isIdentity(sc Scenario) bool {
	return sc.SendStartup == nil && sc.RecvStartup == nil && sc.PerValue == nil && sc.Latency == nil
}

// Format renders the report as the pdtrace text output.
func (r *Report) Format() string {
	var b strings.Builder
	mux := ""
	if r.Multiplexed {
		mux = ", multiplexed"
	}
	faulty := ""
	if r.Faulty {
		faulty = ", fault-injected"
	}
	fmt.Fprintf(&b, "run: %d procs%s%s, makespan %d cycles, %d messages (%d values)\n",
		r.Procs, mux, faulty, r.Makespan, r.Messages, r.Values)
	fmt.Fprintf(&b, "critical path: %d segments, ends on proc %d; length == makespan (verified)\n",
		r.Segments, r.EndProc)

	b.WriteString("\nmakespan attribution (cycles on the critical path)\n")
	a := r.Attribution
	row := func(name string, v uint64) {
		pct := 0.0
		if r.Makespan > 0 {
			pct = 100 * float64(v) / float64(r.Makespan)
		}
		fmt.Fprintf(&b, "  %-28s %12d  %5.1f%%\n", name, v, pct)
	}
	row("compute", a.Compute)
	row("send startup", a.SendStartup)
	row("recv startup", a.RecvStartup)
	row("per-value copy", a.PerValue)
	row("wire latency", a.Wire)
	row("fault delay", a.Fault)
	row("blocked (cpu/backpressure)", a.Blocked)
	row("total", a.Total())

	if len(r.Links) > 0 {
		b.WriteString("\nhotspot links (by critical-path wait cycles)\n")
		fmt.Fprintf(&b, "  %-10s %10s %10s %12s %10s\n", "link", "messages", "values", "crit cycles", "crit msgs")
		for _, l := range r.Links {
			fmt.Fprintf(&b, "  %-10s %10d %10d %12d %10d\n",
				fmt.Sprintf("%d->%d", l.Src, l.Dst), l.Messages, l.Values, l.CritCycles, l.CritMsgs)
		}
	}
	if len(r.Tags) > 0 {
		b.WriteString("\nhotspot tags (by critical-path cycles)\n")
		fmt.Fprintf(&b, "  %-10s %10s %10s %12s %10s\n", "tag", "messages", "values", "crit cycles", "crit msgs")
		for _, tg := range r.Tags {
			fmt.Fprintf(&b, "  %-10d %10d %10d %12d %10d\n",
				tg.Tag, tg.Messages, tg.Values, tg.CritCycles, tg.CritMsgs)
		}
	}

	if len(r.Wire) > 0 {
		b.WriteString("\ntransport events\n")
		for _, wc := range r.Wire {
			fmt.Fprintf(&b, "  %-10s %10d\n", wc.Kind, wc.Count)
		}
	}

	if len(r.WhatIf) > 0 {
		b.WriteString("\nwhat-if (recorded DAG replayed under altered costs)\n")
		fmt.Fprintf(&b, "  %-36s %12s %8s\n", "scenario", "predicted", "speedup")
		for _, w := range r.WhatIf {
			fmt.Fprintf(&b, "  %-36s %12d %7.2fx\n", w.Name, w.Predicted, w.Speedup)
		}
	}

	if len(r.Path) > 0 {
		b.WriteString("\ncritical path (time order)\n")
		for _, s := range r.Path {
			switch s.Kind {
			case "compute", "blocked":
				fmt.Fprintf(&b, "  [%d..%d) proc %d %s (%d cycles)\n", s.Start, s.End, s.Proc, s.Kind, s.Dur())
			case "wait":
				fmt.Fprintf(&b, "  [%d..%d) proc %d wait for msg %d<-%d tag %d (%d cycles: %d wire + %d fault)\n",
					s.Start, s.End, s.Proc, s.Seq, s.Peer, s.Tag, s.Dur(), s.Attr.Wire, s.Attr.Fault)
			default:
				fmt.Fprintf(&b, "  [%d..%d) proc %d %s msg %d peer %d tag %d (%d cycles)\n",
					s.Start, s.End, s.Proc, s.Kind, s.Seq, s.Peer, s.Tag, s.Dur())
			}
		}
	}
	return b.String()
}
