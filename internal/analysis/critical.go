package analysis

import (
	"fmt"
	"sort"

	"procdecomp/internal/trace"
)

// Critical-path extraction.
//
// Every process's events tile its clock, so the run's makespan is the end of
// some process's last event. Walking backward from that instant, exactly one
// constraint was binding at every moment:
//
//   - a compute/send/recv span: the process itself was busy — the span is on
//     the path, and the walk continues at its start;
//   - a blocked span: the node CPU (or a full channel) was held — the span is
//     on the path as blocked time;
//   - an idle span: the process waited for a message. The message departed
//     when its send span ended (the trace's (sender, Seq) edge ID finds it),
//     so the tail of the wait — from the departure to the release stamp — was
//     bound by the wire (nominal latency, plus any fault-retry delay beyond
//     it), and before the departure the binding constraint was the *sender's*
//     activity: the walk jumps to the sender's timeline. If the message
//     departed before the wait began, the wait is pure wire time and the walk
//     stays on the receiver.
//
// Because each step covers a contiguous interval ending where the previous
// one began, the collected segments tile [0, makespan) exactly: their lengths
// — and the per-cause attribution that splits them — sum to the makespan with
// no unexplained cycles. CriticalPath verifies that invariant before
// returning; a violation is a bug report, not a result.

// Attribution partitions critical-path cycles by cause. Every field is
// cycles; the fields sum to the critical path's length (== the makespan).
type Attribution struct {
	// Compute is local work on the path.
	Compute uint64
	// SendStartup / RecvStartup are the fixed message-initiation and
	// -completion overheads (the paper's dominant term at small messages).
	SendStartup uint64
	RecvStartup uint64
	// PerValue is packing/unpacking proportional to message size.
	PerValue uint64
	// Wire is nominal time of flight (Config.Latency) the receiver could not
	// overlap.
	Wire uint64
	// Fault is wait time beyond the nominal latency: retransmissions, jitter,
	// and in-order holds of the reliable transport under fault injection.
	Fault uint64
	// Blocked is time a runnable process waited for its node CPU (Placement)
	// or for channel capacity (MailboxCap).
	Blocked uint64
}

// Total sums every category.
func (a Attribution) Total() uint64 {
	return a.Compute + a.SendStartup + a.RecvStartup + a.PerValue + a.Wire + a.Fault + a.Blocked
}

func (a *Attribution) accumulate(b Attribution) {
	a.Compute += b.Compute
	a.SendStartup += b.SendStartup
	a.RecvStartup += b.RecvStartup
	a.PerValue += b.PerValue
	a.Wire += b.Wire
	a.Fault += b.Fault
	a.Blocked += b.Blocked
}

// Segment is one contiguous interval of the critical path on one process's
// timeline (or, for Kind "wait", the wire interval the receiver's progress
// was pinned under).
type Segment struct {
	Proc  int
	Start uint64
	End   uint64
	// Kind is "compute", "send", "recv", "wait" (wire/fault time inside an
	// idle span), or "blocked".
	Kind string
	// Peer/Tag/Seq identify the message for send/recv/wait segments
	// (Peer: the other endpoint; Seq: the sender's message counter);
	// Peer is -1 on compute and CPU-blocked segments.
	Peer int    `json:",omitempty"`
	Tag  int64  `json:",omitempty"`
	Seq  uint64 `json:",omitempty"`
	// Attr splits this segment's cycles by cause; Attr.Total() == End-Start.
	Attr Attribution
}

// Dur is the segment length in cycles.
func (s Segment) Dur() uint64 { return s.End - s.Start }

// CriticalPath is the extracted chain, in increasing time order, plus its
// attribution. Len() == Makespan is verified at construction.
type CriticalPath struct {
	Makespan uint64
	// EndProc is the process whose final clock is the makespan (lowest id on
	// ties) — where the backward walk starts.
	EndProc  int
	Segments []Segment
	Attr     Attribution
}

// Len sums the segment lengths.
func (cp *CriticalPath) Len() uint64 {
	var n uint64
	for _, s := range cp.Segments {
		n += s.Dur()
	}
	return n
}

// CriticalPath extracts and verifies the run's critical path.
func (d *Dump) CriticalPath() (*CriticalPath, error) {
	makespan := d.Makespan()
	cp := &CriticalPath{Makespan: makespan}
	if makespan == 0 {
		return cp, nil
	}
	for p, evs := range d.Events {
		if n := len(evs); n > 0 && evs[n-1].End == makespan {
			cp.EndProc = p
			break
		}
	}

	// Index send spans by their (sender, Seq) edge ID. Seq is the sender's
	// 1-based message counter, so a slice per sender suffices.
	sends := make([][]*trace.Event, d.Procs)
	for p := range d.Events {
		for i, e := range d.Events[p] {
			if e.Kind == trace.KindSend {
				sends[p] = append(sends[p], &d.Events[p][i])
			}
		}
	}
	findSend := func(src int, seq uint64) (*trace.Event, error) {
		if src < 0 || src >= d.Procs || seq == 0 || seq > uint64(len(sends[src])) {
			return nil, fmt.Errorf("analysis: no send span for message (proc %d, seq %d); the trace lacks message causality", src, seq)
		}
		e := sends[src][seq-1]
		if e.Seq != seq {
			return nil, fmt.Errorf("analysis: send spans of proc %d are not numbered consecutively (index %d holds seq %d)", src, seq-1, e.Seq)
		}
		return e, nil
	}

	proc, t := cp.EndProc, makespan
	// Each iteration either consumes ≥1 cycle or jumps along a message edge;
	// jumps at a constant instant cannot revisit a (proc, instant) pair, so
	// this bound is generous. It guards degenerate zero-cost traces.
	maxSteps := 2*totalEvents(d.Events) + d.Procs + 16
	for steps := 0; t > 0; steps++ {
		if steps > maxSteps {
			return nil, fmt.Errorf("analysis: critical-path walk did not terminate (stuck near proc %d, cycle %d)", proc, t)
		}
		e, err := eventBefore(d.Events[proc], proc, t)
		if err != nil {
			return nil, err
		}
		switch e.Kind {
		case trace.KindCompute:
			cp.push(Segment{Proc: proc, Start: e.Start, End: e.End, Kind: "compute", Peer: -1,
				Attr: Attribution{Compute: e.Dur()}})
			t = e.Start
		case trace.KindSend:
			startup := min64(e.Dur(), d.Costs.SendStartup)
			cp.push(Segment{Proc: proc, Start: e.Start, End: e.End, Kind: "send",
				Peer: e.Peer, Tag: e.Tag, Seq: e.Seq,
				Attr: Attribution{SendStartup: startup, PerValue: e.Dur() - startup}})
			t = e.Start
		case trace.KindRecv:
			startup := min64(e.Dur(), d.Costs.RecvStartup)
			cp.push(Segment{Proc: proc, Start: e.Start, End: e.End, Kind: "recv",
				Peer: e.Peer, Tag: e.Tag, Seq: e.Seq,
				Attr: Attribution{RecvStartup: startup, PerValue: e.Dur() - startup}})
			t = e.Start
		case trace.KindBlocked:
			cp.push(Segment{Proc: proc, Start: e.Start, End: e.End, Kind: "blocked", Peer: e.Peer,
				Attr: Attribution{Blocked: e.Dur()}})
			t = e.Start
		case trace.KindIdle:
			// The wait [e.Start, e.End) ended when the message from e.Peer
			// was released at e.End. Find its departure (send-span end).
			snd, err := findSend(e.Peer, e.Seq)
			if err != nil {
				return nil, err
			}
			depart := snd.End
			from := e.Start
			if depart > from {
				from = depart // the sender was the constraint before departure
			}
			if from < e.End {
				// Tail beyond depart+Latency is transport-induced delay.
				faultFrom := depart + d.Costs.Latency
				if faultFrom < from {
					faultFrom = from
				}
				if faultFrom > e.End {
					faultFrom = e.End
				}
				cp.push(Segment{Proc: proc, Start: from, End: e.End, Kind: "wait",
					Peer: e.Peer, Tag: e.Tag, Seq: e.Seq,
					Attr: Attribution{Wire: faultFrom - from, Fault: e.End - faultFrom}})
			}
			if depart > e.Start {
				proc, t = e.Peer, depart // follow the message to its sender
			} else {
				t = e.Start // the wait was pure wire time; stay local
			}
		default:
			return nil, fmt.Errorf("analysis: proc %d has an event of unknown kind %v", proc, e.Kind)
		}
	}

	// Reverse into time order and verify exactness: the segments must tile
	// [0, makespan) and the attribution must tile the segments.
	for i, j := 0, len(cp.Segments)-1; i < j; i, j = i+1, j-1 {
		cp.Segments[i], cp.Segments[j] = cp.Segments[j], cp.Segments[i]
	}
	var sum uint64
	for _, s := range cp.Segments {
		if s.Attr.Total() != s.Dur() {
			return nil, fmt.Errorf("analysis: segment attribution does not tile: proc %d [%d,%d) %s has %d attributed cycles for %d",
				s.Proc, s.Start, s.End, s.Kind, s.Attr.Total(), s.Dur())
		}
		sum += s.Dur()
		cp.Attr.accumulate(s.Attr)
	}
	if sum != makespan {
		return nil, fmt.Errorf("analysis: critical-path length %d != makespan %d (unexplained cycles)", sum, makespan)
	}
	if cp.Attr.Total() != makespan {
		return nil, fmt.Errorf("analysis: attribution total %d != makespan %d", cp.Attr.Total(), makespan)
	}
	return cp, nil
}

func (cp *CriticalPath) push(s Segment) { cp.Segments = append(cp.Segments, s) }

// eventBefore finds the unique nonzero-length event of proc containing the
// instant just before t. Because events tile the clock, the first event whose
// end reaches t starts strictly before it.
func eventBefore(evs []trace.Event, proc int, t uint64) (*trace.Event, error) {
	i := sort.Search(len(evs), func(i int) bool { return evs[i].End >= t })
	if i == len(evs) || evs[i].Start >= t {
		return nil, fmt.Errorf("analysis: proc %d has no event covering cycle %d (trace does not tile the clock)", proc, t)
	}
	return &evs[i], nil
}

func totalEvents(events [][]trace.Event) int {
	n := 0
	for _, evs := range events {
		n += len(evs)
	}
	return n
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
