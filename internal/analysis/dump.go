// Package analysis is the post-run performance analyzer of the reproduction:
// it consumes the event log a traced machine run produced (internal/trace)
// and explains where the makespan went. Three instruments build on one
// replayable dump of the run:
//
//   - CriticalPath extracts the dependency chain of compute spans and message
//     edges whose lengths sum exactly to the makespan, and attributes every
//     cycle of it to a cause (compute, send/recv startup, per-value copying,
//     wire latency, fault-retry delay, CPU/backpressure blocking). The same
//     exactness discipline machine.VerifyTrace applies to the Breakdown is
//     applied here: an attribution that does not tile the makespan is an
//     error, never a report.
//   - Predict replays the recorded communication DAG under altered cost
//     parameters (SendStartup→0, Latency→0, PerValue→0, ...) to bound what a
//     given optimization could buy without rerunning the program — the
//     cost-model-driven discipline of the PGAS-compiler literature.
//   - Hotspots ranks links and tags by their critical-path occupancy, on top
//     of the log's MessageMatrix/TagHistogram.
//
// The Dump is what pdrun/pdbench write with -trace: a Chrome trace-event
// file whose top-level "pdtrace" key carries the events plus the machine
// calibration, so one file serves both Perfetto and the pdtrace CLI.
package analysis

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"procdecomp/internal/machine"
	"procdecomp/internal/trace"
)

// Version of the dump schema embedded in trace files.
const Version = 1

// Costs is the serializable slice of machine.Config the analyzer needs: the
// cost calibration that shaped the recorded spans, used to decompose message
// overhead into startup vs. per-value parts and to replay what-if scenarios.
type Costs struct {
	OpCost      uint64
	MemCost     uint64
	LoopCost    uint64
	SendStartup uint64
	RecvStartup uint64
	PerValue    uint64
	Latency     uint64
	ValueBytes  int
	MailboxCap  int `json:",omitempty"`
}

// CostsOf extracts the calibration from a machine configuration.
func CostsOf(cfg machine.Config) Costs {
	return Costs{
		OpCost:      cfg.OpCost,
		MemCost:     cfg.MemCost,
		LoopCost:    cfg.LoopCost,
		SendStartup: cfg.SendStartup,
		RecvStartup: cfg.RecvStartup,
		PerValue:    cfg.PerValue,
		Latency:     cfg.Latency,
		ValueBytes:  cfg.ValueBytes,
		MailboxCap:  cfg.MailboxCap,
	}
}

// Dump is a complete, replayable record of one traced run: the machine
// calibration, the placement, every process span, and the transport's wire
// events. It is everything the analyzer needs — no re-execution required.
type Dump struct {
	Version   int
	Procs     int
	Placement []int `json:",omitempty"`
	Faulty    bool  `json:",omitempty"` // the run injected faults
	Costs     Costs
	Events    [][]trace.Event
	Wire      []trace.WireEvent `json:",omitempty"`
}

// NewDump captures a finished traced run. Call only after machine.Run has
// returned (the log is not readable before that). The wire stream is copied
// and sorted into a canonical order — concurrent senders append to it in
// scheduler order, which would otherwise make two identical runs serialize
// differently.
func NewDump(cfg machine.Config, log *trace.Log) *Dump {
	wire := append([]trace.WireEvent(nil), log.WireEvents()...)
	sort.SliceStable(wire, func(i, j int) bool {
		a, b := wire[i], wire[j]
		if a.Time != b.Time {
			return a.Time < b.Time
		}
		if a.Src != b.Src {
			return a.Src < b.Src
		}
		if a.Dst != b.Dst {
			return a.Dst < b.Dst
		}
		if a.MsgSeq != b.MsgSeq {
			return a.MsgSeq < b.MsgSeq
		}
		if a.Attempt != b.Attempt {
			return a.Attempt < b.Attempt
		}
		return a.Kind < b.Kind
	})
	d := &Dump{
		Version: Version,
		Procs:   log.Procs(),
		Faulty:  cfg.Faults != nil,
		Costs:   CostsOf(cfg),
		Events:  make([][]trace.Event, log.Procs()),
		Wire:    wire,
	}
	if cfg.Placement != nil {
		d.Placement = append([]int(nil), cfg.Placement...)
	}
	for p := range d.Events {
		d.Events[p] = log.Events(p)
	}
	return d
}

// Log revives the dump as a trace.Log, giving access to the log's pattern
// analyses (MessageMatrix, TagHistogram) and the Chrome exporter.
func (d *Dump) Log() *trace.Log {
	return trace.Rebuild(d.Placement, d.Events, d.Wire)
}

// Makespan is the maximum final clock over all processes — every process's
// events tile [0, clock), so it is the last event's end stamp.
func (d *Dump) Makespan() uint64 {
	var max uint64
	for _, evs := range d.Events {
		if n := len(evs); n > 0 && evs[n-1].End > max {
			max = evs[n-1].End
		}
	}
	return max
}

// Messages counts the application-level messages in the dump.
func (d *Dump) Messages() int64 {
	var n int64
	for _, evs := range d.Events {
		for _, e := range evs {
			if e.Kind == trace.KindSend {
				n++
			}
		}
	}
	return n
}

// Values counts the values transferred.
func (d *Dump) Values() int64 {
	var n int64
	for _, evs := range d.Events {
		for _, e := range evs {
			if e.Kind == trace.KindSend {
				n += int64(e.Values)
			}
		}
	}
	return n
}

// WriteTrace writes the run as a Chrome trace-event file with the dump
// embedded under the top-level "pdtrace" key: chrome://tracing and Perfetto
// render the timeline, pdtrace reads the same file back with ReadDump.
func (d *Dump) WriteTrace(w io.Writer) error {
	return d.Log().WriteChromeTraceWith(w, d)
}

// ReadDump parses a trace file written by WriteTrace, recovering the
// embedded dump.
func ReadDump(r io.Reader) (*Dump, error) {
	var file struct {
		PDTrace *Dump `json:"pdtrace"`
	}
	dec := json.NewDecoder(r)
	if err := dec.Decode(&file); err != nil {
		return nil, fmt.Errorf("analysis: not a pdtrace file: %w", err)
	}
	d := file.PDTrace
	if d == nil {
		return nil, fmt.Errorf("analysis: trace file has no \"pdtrace\" payload (written by an older -trace? re-record with this version)")
	}
	if d.Version != Version {
		return nil, fmt.Errorf("analysis: dump version %d, this analyzer reads version %d", d.Version, Version)
	}
	if len(d.Events) != d.Procs {
		return nil, fmt.Errorf("analysis: dump has %d event streams for %d processes", len(d.Events), d.Procs)
	}
	return d, nil
}
