package sem

import (
	"fmt"
	"sort"

	"procdecomp/internal/dist"
	"procdecomp/internal/lang"
)

type checker struct {
	info      *Info
	errs      []error
	distDecls map[string]*lang.DistDecl
	templates map[string]*lang.ProcDecl // mapping-polymorphic procedures

	// per-procedure state
	scopes  []map[string]*Symbol
	curProc *Proc
}

func (c *checker) errorf(pos lang.Pos, format string, args ...any) {
	c.errs = append(c.errs, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

// collect gathers top-level declarations: constants (in order, with
// overrides), dist declarations, and procedure headers.
func (c *checker) collect() {
	c.info.Consts["NPROCS"] = &Symbol{
		Name: "NPROCS", Kind: SymConst, Type: Type{Base: lang.TInt},
		Const: float64(c.info.Cfg.Procs), ConstIsInt: true,
		Dist: dist.NewReplicated(c.info.Cfg.Procs),
	}
	for _, d := range c.info.Prog.Decls {
		switch d := d.(type) {
		case *lang.ConstDecl:
			if c.lookupTop(d.Name) != nil {
				c.errorf(d.Pos, "duplicate declaration of %s", d.Name)
				continue
			}
			var v float64
			var isInt bool
			if over, ok := c.info.Cfg.Defines[d.Name]; ok {
				v, isInt = float64(over), true
			} else {
				var err error
				v, isInt, err = c.constEval(d.Value)
				if err != nil {
					c.errorf(d.Pos, "constant %s: %v", d.Name, err)
					continue
				}
			}
			base := lang.TReal
			if isInt {
				base = lang.TInt
			}
			c.info.Consts[d.Name] = &Symbol{
				Name: d.Name, Kind: SymConst, Type: Type{Base: base},
				Const: v, ConstIsInt: isInt,
				Dist: dist.NewReplicated(c.info.Cfg.Procs),
			}
		case *lang.DistDecl:
			if c.lookupTop(d.Name) != nil {
				c.errorf(d.Pos, "duplicate declaration of %s", d.Name)
				continue
			}
			c.distDecls[d.Name] = d
		case *lang.ProcDecl:
			if c.lookupTop(d.Name) != nil {
				c.errorf(d.Pos, "duplicate declaration of %s", d.Name)
				continue
			}
			if len(d.DistParams) > 0 {
				c.templates[d.Name] = d
			} else {
				c.info.Procs[d.Name] = &Proc{Name: d.Name, Decl: d}
			}
		}
	}
}

// lookupTop finds a top-level name of any kind.
func (c *checker) lookupTop(name string) any {
	if s, ok := c.info.Consts[name]; ok {
		return s
	}
	if d, ok := c.distDecls[name]; ok {
		return d
	}
	if p, ok := c.info.Procs[name]; ok {
		return p
	}
	if t, ok := c.templates[name]; ok {
		return t
	}
	return nil
}

// constEvalInt evaluates an expression that must be a compile-time integer.
func (c *checker) constEvalInt(e lang.Expr) (int64, error) {
	v, isInt, err := c.constEval(e)
	if err != nil {
		return 0, err
	}
	if !isInt {
		return 0, fmt.Errorf("expected an integer constant, got %g", v)
	}
	return int64(v), nil
}

// constEval evaluates a compile-time constant expression over declared
// constants and NPROCS.
func (c *checker) constEval(e lang.Expr) (float64, bool, error) {
	switch e := e.(type) {
	case *lang.NumLit:
		return e.Val, e.IsInt, nil
	case *lang.VarRef:
		s, ok := c.info.Consts[e.Name]
		if !ok {
			return 0, false, fmt.Errorf("%s is not a constant", e.Name)
		}
		return s.Const, s.ConstIsInt, nil
	case *lang.UnExpr:
		v, isInt, err := c.constEval(e.X)
		if err != nil {
			return 0, false, err
		}
		if e.Op != lang.OpNeg {
			return 0, false, fmt.Errorf("operator %s not allowed in constants", e.Op)
		}
		return -v, isInt, nil
	case *lang.BinExpr:
		l, li, err := c.constEval(e.L)
		if err != nil {
			return 0, false, err
		}
		r, ri, err := c.constEval(e.R)
		if err != nil {
			return 0, false, err
		}
		bothInt := li && ri
		switch e.Op {
		case lang.OpAdd:
			return l + r, bothInt, nil
		case lang.OpSub:
			return l - r, bothInt, nil
		case lang.OpMul:
			return l * r, bothInt, nil
		case lang.OpDivReal:
			if r == 0 {
				return 0, false, fmt.Errorf("division by zero in constant")
			}
			return l / r, false, nil
		case lang.OpDivInt, lang.OpMod:
			if !bothInt {
				return 0, false, fmt.Errorf("%s requires integer operands", e.Op)
			}
			if r == 0 {
				return 0, false, fmt.Errorf("division by zero in constant")
			}
			if e.Op == lang.OpDivInt {
				return float64(floorDiv(int64(l), int64(r))), true, nil
			}
			return float64(eucMod(int64(l), int64(r))), true, nil
		case lang.OpMin:
			if l < r {
				return l, bothInt, nil
			}
			return r, bothInt, nil
		case lang.OpMax:
			if l > r {
				return l, bothInt, nil
			}
			return r, bothInt, nil
		default:
			return 0, false, fmt.Errorf("operator %s not allowed in constants", e.Op)
		}
	default:
		return 0, false, fmt.Errorf("expression is not a compile-time constant")
	}
}

func floorDiv(a, b int64) int64 {
	q := a / b
	if (a%b != 0) && ((a < 0) != (b < 0)) {
		q--
	}
	return q
}

func eucMod(a, m int64) int64 {
	if m < 0 {
		m = -m
	}
	r := a % m
	if r < 0 {
		r += m
	}
	return r
}

// bindDist resolves a mapping annotation into a bound decomposition for data
// of the given shape. A nil annotation defaults to replicated.
func (c *checker) bindDist(m *lang.MapExpr, shape []int64, pos lang.Pos) dist.Dist {
	procs := c.info.Cfg.Procs
	if m == nil {
		return dist.NewReplicated(procs, shape...)
	}
	switch m.Kind {
	case lang.MapAll:
		return dist.NewReplicated(procs, shape...)
	case lang.MapProc:
		p, err := c.constEvalInt(m.Proc)
		if err != nil {
			c.errorf(m.Pos, "proc(...) mapping: %v", err)
			return dist.NewReplicated(procs, shape...)
		}
		if p < 0 || p >= procs {
			c.errorf(m.Pos, "proc(%d) out of range [0, %d)", p, procs)
			return dist.NewReplicated(procs, shape...)
		}
		return dist.NewSingle(procs, p, shape...)
	case lang.MapNamed:
		dd, ok := c.distDecls[m.Name]
		if !ok {
			c.errorf(m.Pos, "undefined decomposition %s", m.Name)
			return dist.NewReplicated(procs, shape...)
		}
		wantRank := 2
		if dd.Builtin == "cyclic" || dd.Builtin == "block" {
			wantRank = 1
		}
		if len(shape) != wantRank {
			if wantRank == 2 {
				c.errorf(m.Pos, "decomposition %s applies to matrices, not %d-dimensional data", m.Name, len(shape))
			} else {
				c.errorf(m.Pos, "decomposition %s applies to vectors, not %d-dimensional data", m.Name, len(shape))
			}
			return dist.NewReplicated(procs, shape...)
		}
		args := make([]int64, len(dd.Args))
		for i, a := range dd.Args {
			v, err := c.constEvalInt(a)
			if err != nil {
				c.errorf(dd.Pos, "decomposition %s argument %d: %v", dd.Name, i+1, err)
				return dist.NewReplicated(procs, shape...)
			}
			args[i] = v
		}
		need := 1
		if dd.Builtin == "block2d" {
			need = 2
		}
		if len(args) != need {
			c.errorf(dd.Pos, "decomposition %s expects %d argument(s), got %d", dd.Builtin, need, len(args))
			return dist.NewReplicated(procs, shape...)
		}
		for _, a := range args {
			if a <= 0 {
				c.errorf(dd.Pos, "decomposition %s: arguments must be positive", dd.Builtin)
				return dist.NewReplicated(procs, shape...)
			}
		}
		switch dd.Builtin {
		case "cyclic_cols", "cyclic_rows", "block_cols", "block_rows", "cyclic", "block":
			if args[0] > procs {
				c.errorf(dd.Pos, "decomposition %s(%d) exceeds machine size %d", dd.Builtin, args[0], procs)
				return dist.NewReplicated(procs, shape...)
			}
		case "block2d":
			if args[0]*args[1] > procs {
				c.errorf(dd.Pos, "decomposition block2d(%d, %d) exceeds machine size %d", args[0], args[1], procs)
				return dist.NewReplicated(procs, shape...)
			}
		}
		switch dd.Builtin {
		case "cyclic_cols":
			return dist.NewCyclicCols(args[0], shape[0], shape[1])
		case "cyclic_rows":
			return dist.NewCyclicRows(args[0], shape[0], shape[1])
		case "block_cols":
			return dist.NewBlockCols(args[0], shape[0], shape[1])
		case "block_rows":
			return dist.NewBlockRows(args[0], shape[0], shape[1])
		case "block2d":
			return dist.NewBlock2D(args[0], args[1], shape[0], shape[1])
		case "cyclic":
			return dist.NewCyclicVec(args[0], shape[0])
		case "block":
			return dist.NewBlockVec(args[0], shape[0])
		default:
			c.errorf(dd.Pos, "unknown decomposition builtin %s", dd.Builtin)
			return dist.NewReplicated(procs, shape...)
		}
	}
	c.errorf(pos, "unsupported mapping")
	return dist.NewReplicated(procs, shape...)
}

// resolveType turns a syntactic type into a resolved one (dimensions
// const-evaluated).
func (c *checker) resolveType(t *lang.TypeExpr) (Type, bool) {
	rt := Type{Base: t.Base}
	for _, d := range t.Dims {
		v, err := c.constEvalInt(d)
		if err != nil {
			c.errorf(t.Pos, "array dimension: %v", err)
			return rt, false
		}
		if v <= 0 {
			c.errorf(t.Pos, "array dimension must be positive, got %d", v)
			return rt, false
		}
		rt.Dims = append(rt.Dims, v)
	}
	return rt, true
}

// --- recursion check ---

func (c *checker) checkRecursion() {
	// Build the call graph over monomorphic procedures.
	graph := map[string][]string{}
	for name, p := range c.info.Procs {
		var callees []string
		collectCalls(p.Decl.Body, &callees)
		graph[name] = callees
	}
	// Iterative DFS cycle detection, visiting procedures in sorted order for
	// deterministic error messages.
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[string]int{}
	var visit func(name string) bool
	visit = func(name string) bool {
		color[name] = gray
		for _, callee := range graph[name] {
			if _, ok := c.info.Procs[callee]; !ok {
				continue // undefined callee reported during body checking
			}
			switch color[callee] {
			case gray:
				c.errorf(c.info.Procs[name].Decl.Pos,
					"recursion between %s and %s: compile-time resolution requires a non-recursive call graph", name, callee)
				return false
			case white:
				if !visit(callee) {
					return false
				}
			}
		}
		color[name] = black
		return true
	}
	names := make([]string, 0, len(graph))
	for n := range graph {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if color[n] == white && !visit(n) {
			return
		}
	}
}

func collectCalls(b *lang.Block, out *[]string) {
	if b == nil {
		return
	}
	for _, st := range b.Stmts {
		switch st := st.(type) {
		case *lang.CallStmt:
			*out = append(*out, st.Name)
		case *lang.LetStmt:
			collectCallsExpr(st.Init, out)
		case *lang.AssignStmt:
			collectCallsExpr(st.Value, out)
		case *lang.StoreStmt:
			collectCallsExpr(st.Value, out)
			for _, ix := range st.Indices {
				collectCallsExpr(ix, out)
			}
		case *lang.ForStmt:
			collectCallsExpr(st.Lo, out)
			collectCallsExpr(st.Hi, out)
			if st.Step != nil {
				collectCallsExpr(st.Step, out)
			}
			collectCalls(st.Body, out)
		case *lang.IfStmt:
			collectCallsExpr(st.Cond, out)
			collectCalls(st.Then, out)
			collectCalls(st.Else, out)
		case *lang.ReturnStmt:
			if st.Value != nil {
				collectCallsExpr(st.Value, out)
			}
		}
	}
}

func collectCallsExpr(e lang.Expr, out *[]string) {
	switch e := e.(type) {
	case *lang.CallExpr:
		*out = append(*out, e.Name)
		for _, a := range e.Args {
			collectCallsExpr(a, out)
		}
	case *lang.BinExpr:
		collectCallsExpr(e.L, out)
		collectCallsExpr(e.R, out)
	case *lang.UnExpr:
		collectCallsExpr(e.X, out)
	case *lang.IndexExpr:
		for _, ix := range e.Indices {
			collectCallsExpr(ix, out)
		}
	case *lang.AllocExpr:
		for _, d := range e.Dims {
			collectCallsExpr(d, out)
		}
	}
}

// --- procedure bodies ---

func (c *checker) checkProcs() {
	// Resolve signatures first so calls can be checked in any order.
	names := make([]string, 0, len(c.info.Procs))
	for n := range c.info.Procs {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		c.resolveSignature(c.info.Procs[n])
	}
	if len(c.errs) > 0 {
		return
	}
	for _, n := range names {
		c.checkBody(c.info.Procs[n])
	}
}

func (c *checker) resolveSignature(p *Proc) {
	d := p.Decl
	for i := range d.Params {
		prm := &d.Params[i]
		t, ok := c.resolveType(&prm.Type)
		if !ok {
			continue
		}
		kind := SymScalar
		if t.IsArray() {
			kind = SymArray
		}
		sym := &Symbol{Name: prm.Name, Kind: kind, Type: t,
			Dist: c.bindDist(prm.Map, t.Dims, prm.Pos)}
		p.Params = append(p.Params, sym)
	}
	if d.RetType != nil {
		t, ok := c.resolveType(d.RetType)
		if !ok {
			return
		}
		p.RetType = &t
		if t.IsArray() && d.RetMap == nil {
			c.errorf(d.Pos, "procedure %s returns an array and must declare its return mapping", d.Name)
			return
		}
		p.RetDist = c.bindDist(d.RetMap, t.Dims, d.Pos)
	}
}

func (c *checker) checkBody(p *Proc) {
	c.curProc = p
	c.scopes = []map[string]*Symbol{{}}
	for _, sym := range p.Params {
		c.declare(p.Decl.Pos, sym)
	}
	c.checkBlock(p.Decl.Body)
	c.scopes = nil
	c.curProc = nil
}

func (c *checker) pushScope() { c.scopes = append(c.scopes, map[string]*Symbol{}) }
func (c *checker) popScope()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *checker) declare(pos lang.Pos, sym *Symbol) {
	if c.lookup(sym.Name) != nil || c.lookupTop(sym.Name) != nil {
		c.errorf(pos, "%s is already declared; shadowing is not allowed", sym.Name)
		return
	}
	c.scopes[len(c.scopes)-1][sym.Name] = sym
}

func (c *checker) lookup(name string) *Symbol {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if s, ok := c.scopes[i][name]; ok {
			return s
		}
	}
	return nil
}

// lookupVar resolves a name to a local symbol or a constant.
func (c *checker) lookupVar(name string) *Symbol {
	if s := c.lookup(name); s != nil {
		return s
	}
	if s, ok := c.info.Consts[name]; ok {
		return s
	}
	return nil
}

func (c *checker) checkBlock(b *lang.Block) {
	c.pushScope()
	defer c.popScope()
	for _, st := range b.Stmts {
		c.checkStmt(st)
	}
}

func (c *checker) checkStmt(st lang.Stmt) {
	switch st := st.(type) {
	case *lang.LetStmt:
		c.checkLet(st)
	case *lang.AssignStmt:
		sym := c.lookupVar(st.Name)
		if sym == nil {
			c.errorf(st.Pos, "undefined variable %s", st.Name)
			return
		}
		switch sym.Kind {
		case SymLoopVar:
			c.errorf(st.Pos, "cannot assign to loop variable %s", st.Name)
			return
		case SymConst:
			c.errorf(st.Pos, "cannot assign to constant %s", st.Name)
			return
		case SymArray:
			c.errorf(st.Pos, "cannot assign whole array %s; write elements instead", st.Name)
			return
		}
		vt, ok := c.checkExpr(st.Value)
		if !ok {
			return
		}
		if !assignable(sym.Type, vt) {
			c.errorf(st.Pos, "cannot assign %s to %s %s", vt, sym.Type, st.Name)
			return
		}
		c.info.Refs[st] = sym
	case *lang.StoreStmt:
		sym := c.lookupVar(st.Array)
		if sym == nil {
			c.errorf(st.Pos, "undefined array %s", st.Array)
			return
		}
		if sym.Kind != SymArray {
			c.errorf(st.Pos, "%s is a %s, not an array", st.Array, sym.Kind)
			return
		}
		if len(st.Indices) != len(sym.Type.Dims) {
			c.errorf(st.Pos, "%s has rank %d but is indexed with %d subscripts",
				st.Array, len(sym.Type.Dims), len(st.Indices))
			return
		}
		for _, ix := range st.Indices {
			if t, ok := c.checkExpr(ix); ok && t.Base != lang.TInt {
				c.errorf(ix.Position(), "array subscript must be int, got %s", t)
			}
		}
		if vt, ok := c.checkExpr(st.Value); ok && !vt.IsNumeric() {
			c.errorf(st.Pos, "array element must be numeric, got %s", vt)
		}
		c.info.Refs[st] = sym
	case *lang.ForStmt:
		for _, e := range []lang.Expr{st.Lo, st.Hi} {
			if t, ok := c.checkExpr(e); ok && t.Base != lang.TInt {
				c.errorf(e.Position(), "loop bound must be int, got %s", t)
			}
		}
		if st.Step != nil {
			if t, ok := c.checkExpr(st.Step); ok && t.Base != lang.TInt {
				c.errorf(st.Step.Position(), "loop step must be int, got %s", t)
			}
			if v, err := c.constEvalInt(st.Step); err == nil && v <= 0 {
				c.errorf(st.Step.Position(), "loop step must be positive, got %d", v)
			}
		}
		sym := &Symbol{Name: st.Var, Kind: SymLoopVar, Type: Type{Base: lang.TInt},
			Dist: dist.NewReplicated(c.info.Cfg.Procs)}
		c.pushScope()
		c.declare(st.Pos, sym)
		c.info.Refs[st] = sym
		c.checkBlock(st.Body)
		c.popScope()
	case *lang.IfStmt:
		if t, ok := c.checkExpr(st.Cond); ok && t.Base != lang.TBool {
			c.errorf(st.Cond.Position(), "if condition must be bool, got %s", t)
		}
		c.checkBlock(st.Then)
		if st.Else != nil {
			c.checkBlock(st.Else)
		}
	case *lang.CallStmt:
		c.checkCall(st.Pos, st.Name, st.DistArgs, st.Args)
	case *lang.ReturnStmt:
		p := c.curProc
		if p.RetType == nil {
			if st.Value != nil {
				c.errorf(st.Pos, "procedure %s returns no value", p.Name)
			}
			return
		}
		if st.Value == nil {
			c.errorf(st.Pos, "procedure %s must return a %s", p.Name, *p.RetType)
			return
		}
		vt, ok := c.checkExpr(st.Value)
		if !ok {
			return
		}
		if p.RetType.IsArray() {
			vr, isVar := st.Value.(*lang.VarRef)
			if !isVar {
				c.errorf(st.Pos, "array return value must be a variable")
				return
			}
			sym := c.info.SymbolOf(vr)
			if !sym.Type.Equal(*p.RetType) {
				c.errorf(st.Pos, "return type mismatch: %s vs declared %s", sym.Type, *p.RetType)
				return
			}
			if sym.Dist.String() != p.RetDist.String() {
				c.errorf(st.Pos, "returned array %s has mapping %s but the procedure declares %s; redistribution on return is not supported",
					sym.Name, sym.Dist, p.RetDist)
			}
			return
		}
		if !assignable(*p.RetType, vt) {
			c.errorf(st.Pos, "cannot return %s from procedure returning %s", vt, *p.RetType)
		}
	default:
		c.errorf(st.Position(), "unsupported statement")
	}
}

func (c *checker) checkLet(st *lang.LetStmt) {
	if alloc, ok := st.Init.(*lang.AllocExpr); ok {
		dims := make([]int64, len(alloc.Dims))
		for i, d := range alloc.Dims {
			v, err := c.constEvalInt(d)
			if err != nil {
				c.errorf(d.Position(), "allocation dimension: %v", err)
				return
			}
			if v <= 0 {
				c.errorf(d.Position(), "allocation dimension must be positive, got %d", v)
				return
			}
			dims[i] = v
		}
		t := Type{Base: alloc.Base, Dims: dims}
		if st.Type != nil {
			declared, ok := c.resolveType(st.Type)
			if ok && !declared.Equal(t) {
				c.errorf(st.Pos, "declared type %s does not match allocation %s", declared, t)
			}
		}
		c.info.Types[alloc] = t
		sym := &Symbol{Name: st.Name, Kind: SymArray, Type: t,
			Dist: c.bindDist(st.Map, dims, st.Pos)}
		c.declare(st.Pos, sym)
		c.info.Refs[st] = sym
		return
	}
	vt, ok := c.checkExpr(st.Init)
	if !ok {
		return
	}
	if vt.IsArray() {
		// Array-valued call results bind like allocations.
		sym := &Symbol{Name: st.Name, Kind: SymArray, Type: vt,
			Dist: c.bindDist(st.Map, vt.Dims, st.Pos)}
		if call, isCall := st.Init.(*lang.CallExpr); isCall {
			callee := c.info.Procs[call.Name]
			if st.Map == nil {
				sym.Dist = callee.RetDist
			} else if sym.Dist.String() != callee.RetDist.String() {
				c.errorf(st.Pos, "let %s declares mapping %s but %s returns %s",
					st.Name, sym.Dist, call.Name, callee.RetDist)
			}
		} else {
			c.errorf(st.Pos, "arrays can only be bound to allocations or calls")
			return
		}
		c.declare(st.Pos, sym)
		c.info.Refs[st] = sym
		return
	}
	t := vt
	if st.Type != nil {
		declared, ok := c.resolveType(st.Type)
		if !ok {
			return
		}
		if !assignable(declared, vt) {
			c.errorf(st.Pos, "cannot initialize %s %s with %s", declared, st.Name, vt)
			return
		}
		t = declared
	}
	sym := &Symbol{Name: st.Name, Kind: SymScalar, Type: t,
		Dist: c.bindDist(st.Map, nil, st.Pos)}
	c.declare(st.Pos, sym)
	c.info.Refs[st] = sym
}

// checkCall validates a call and returns the callee.
func (c *checker) checkCall(pos lang.Pos, name string, distArgs []lang.MapExpr, args []lang.Expr) *Proc {
	callee, ok := c.info.Procs[name]
	if !ok {
		if _, isTemplate := c.templates[name]; isTemplate {
			c.errorf(pos, "call to mapping-polymorphic %s requires instantiation, e.g. %s[proc(0)](...)", name, name)
		} else {
			c.errorf(pos, "undefined procedure %s", name)
		}
		return nil
	}
	if len(distArgs) > 0 {
		// Instantiations are resolved during monomorphization; any left over
		// mean the callee was not polymorphic.
		c.errorf(pos, "%s is not mapping-polymorphic", name)
		return nil
	}
	if len(args) != len(callee.Params) {
		c.errorf(pos, "%s expects %d argument(s), got %d", name, len(callee.Params), len(args))
		return nil
	}
	for i, a := range args {
		prm := callee.Params[i]
		at, ok := c.checkExpr(a)
		if !ok {
			continue
		}
		if prm.Type.IsArray() {
			vr, isVar := a.(*lang.VarRef)
			if !isVar {
				c.errorf(a.Position(), "argument %d of %s must be an array variable", i+1, name)
				continue
			}
			sym := c.info.SymbolOf(vr)
			if sym.Kind != SymArray || !sym.Type.Equal(prm.Type) {
				c.errorf(a.Position(), "argument %d of %s: have %s, want %s", i+1, name, at, prm.Type)
				continue
			}
			// §5.2 restriction, adapted: array arguments must agree in
			// mapping; scalars are coerced (Fig. 4/Fig. 8 behaviour).
			if sym.Dist.String() != prm.Dist.String() {
				c.errorf(a.Position(), "argument %d of %s: array mapping %s does not match parameter mapping %s (redistribution at calls is not supported)",
					i+1, name, sym.Dist, prm.Dist)
			}
			continue
		}
		if !assignable(prm.Type, at) {
			c.errorf(a.Position(), "argument %d of %s: have %s, want %s", i+1, name, at, prm.Type)
		}
	}
	return callee
}

// assignable reports whether a value of type src may initialize dst
// (ints promote to reals).
func assignable(dst, src Type) bool {
	if dst.Equal(src) {
		return true
	}
	return dst.Base == lang.TReal && src.Base == lang.TInt
}

func (c *checker) checkExpr(e lang.Expr) (Type, bool) {
	t, ok := c.checkExprInner(e)
	if ok {
		c.info.Types[e] = t
	}
	return t, ok
}

func (c *checker) checkExprInner(e lang.Expr) (Type, bool) {
	switch e := e.(type) {
	case *lang.NumLit:
		if e.IsInt {
			return Type{Base: lang.TInt}, true
		}
		return Type{Base: lang.TReal}, true
	case *lang.BoolLit:
		return Type{Base: lang.TBool}, true
	case *lang.VarRef:
		sym := c.lookupVar(e.Name)
		if sym == nil {
			c.errorf(e.Pos, "undefined variable %s", e.Name)
			return Type{}, false
		}
		c.info.Refs[e] = sym
		return sym.Type, true
	case *lang.IndexExpr:
		sym := c.lookupVar(e.Array)
		if sym == nil {
			c.errorf(e.Pos, "undefined array %s", e.Array)
			return Type{}, false
		}
		if sym.Kind != SymArray {
			c.errorf(e.Pos, "%s is a %s, not an array", e.Array, sym.Kind)
			return Type{}, false
		}
		if len(e.Indices) != len(sym.Type.Dims) {
			c.errorf(e.Pos, "%s has rank %d but is indexed with %d subscripts",
				e.Array, len(sym.Type.Dims), len(e.Indices))
			return Type{}, false
		}
		for _, ix := range e.Indices {
			if t, ok := c.checkExpr(ix); ok && t.Base != lang.TInt {
				c.errorf(ix.Position(), "array subscript must be int, got %s", t)
			}
		}
		c.info.Refs[e] = sym
		return Type{Base: lang.TReal}, true
	case *lang.UnExpr:
		xt, ok := c.checkExpr(e.X)
		if !ok {
			return Type{}, false
		}
		switch e.Op {
		case lang.OpNeg:
			if !xt.IsNumeric() {
				c.errorf(e.Pos, "operator - requires a numeric operand, got %s", xt)
				return Type{}, false
			}
			return xt, true
		case lang.OpNot:
			if xt.Base != lang.TBool {
				c.errorf(e.Pos, "operator not requires a bool operand, got %s", xt)
				return Type{}, false
			}
			return xt, true
		}
		c.errorf(e.Pos, "unsupported unary operator")
		return Type{}, false
	case *lang.BinExpr:
		lt, lok := c.checkExpr(e.L)
		rt, rok := c.checkExpr(e.R)
		if !lok || !rok {
			return Type{}, false
		}
		switch e.Op {
		case lang.OpAdd, lang.OpSub, lang.OpMul, lang.OpMin, lang.OpMax:
			if !lt.IsNumeric() || !rt.IsNumeric() {
				c.errorf(e.Pos, "operator %s requires numeric operands, got %s and %s", e.Op, lt, rt)
				return Type{}, false
			}
			if lt.Base == lang.TReal || rt.Base == lang.TReal {
				return Type{Base: lang.TReal}, true
			}
			return Type{Base: lang.TInt}, true
		case lang.OpDivReal:
			if !lt.IsNumeric() || !rt.IsNumeric() {
				c.errorf(e.Pos, "operator / requires numeric operands, got %s and %s", lt, rt)
				return Type{}, false
			}
			return Type{Base: lang.TReal}, true
		case lang.OpDivInt, lang.OpMod:
			if lt.Base != lang.TInt || rt.Base != lang.TInt {
				c.errorf(e.Pos, "operator %s requires int operands, got %s and %s", e.Op, lt, rt)
				return Type{}, false
			}
			return Type{Base: lang.TInt}, true
		case lang.OpEq, lang.OpNe, lang.OpLt, lang.OpLe, lang.OpGt, lang.OpGe:
			if !lt.IsNumeric() || !rt.IsNumeric() {
				c.errorf(e.Pos, "comparison requires numeric operands, got %s and %s", lt, rt)
				return Type{}, false
			}
			return Type{Base: lang.TBool}, true
		case lang.OpAnd, lang.OpOr:
			if lt.Base != lang.TBool || rt.Base != lang.TBool {
				c.errorf(e.Pos, "operator %s requires bool operands, got %s and %s", e.Op, lt, rt)
				return Type{}, false
			}
			return Type{Base: lang.TBool}, true
		}
		c.errorf(e.Pos, "unsupported binary operator")
		return Type{}, false
	case *lang.CallExpr:
		callee := c.checkCall(e.Pos, e.Name, e.DistArgs, e.Args)
		if callee == nil {
			return Type{}, false
		}
		if callee.RetType == nil {
			c.errorf(e.Pos, "procedure %s returns no value and cannot be used in an expression", e.Name)
			return Type{}, false
		}
		return *callee.RetType, true
	case *lang.AllocExpr:
		c.errorf(e.Pos, "allocations are only allowed as let initializers")
		return Type{}, false
	default:
		c.errorf(e.Position(), "unsupported expression")
		return Type{}, false
	}
}
