package sem

import (
	"strings"
	"testing"

	"procdecomp/internal/dist"
	"procdecomp/internal/lang"
)

const gsSource = `
const N = 16;
const c = 0.25;

dist Column = cyclic_cols(NPROCS);

proc init_boundary(New: matrix[N, N] on Column) {
  for j = 1 to N {
    New[1, j] = 1.0;
    New[N, j] = 1.0;
  }
  for i = 2 to N - 1 {
    New[i, 1] = 1.0;
    New[i, N] = 1.0;
  }
}

proc gs_iteration(Old: matrix[N, N] on Column): matrix[N, N] on Column {
  let New = matrix(N, N) on Column;
  call init_boundary(New);
  for j = 2 to N - 1 {
    for i = 2 to N - 1 {
      New[i, j] = c * (New[i - 1, j] + New[i, j - 1] + Old[i + 1, j] + Old[i, j + 1]);
    }
  }
  return New;
}
`

func check(t *testing.T, src string, cfg Config) *Info {
	t.Helper()
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, errs := Check(prog, cfg)
	if len(errs) > 0 {
		t.Fatalf("check: %v", errs)
	}
	return info
}

func checkErr(t *testing.T, src string, wantSubstr string) {
	t.Helper()
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	_, errs := Check(prog, Config{Procs: 4})
	if len(errs) == 0 {
		t.Fatalf("expected error containing %q, got none", wantSubstr)
	}
	for _, e := range errs {
		if strings.Contains(e.Error(), wantSubstr) {
			return
		}
	}
	t.Fatalf("no error contains %q; got %v", wantSubstr, errs)
}

func TestCheckGaussSeidel(t *testing.T) {
	info := check(t, gsSource, Config{Procs: 4})
	gs := info.Procs["gs_iteration"]
	if gs == nil {
		t.Fatal("gs_iteration missing")
	}
	old := gs.Params[0]
	if old.Kind != SymArray || old.Dist.Kind() != dist.KindCyclicCols {
		t.Errorf("Old: kind=%v dist=%v", old.Kind, old.Dist)
	}
	if old.Type.Dims[0] != 16 || old.Type.Dims[1] != 16 {
		t.Errorf("Old dims = %v", old.Type.Dims)
	}
	if gs.RetType == nil || gs.RetDist.Kind() != dist.KindCyclicCols {
		t.Error("return type/dist wrong")
	}
	// The let New symbol must carry the Column decomposition.
	let := gs.Decl.Body.Stmts[0].(*lang.LetStmt)
	sym := info.SymbolOf(let)
	if sym.Dist.Kind() != dist.KindCyclicCols || sym.Dist.Procs() != 4 {
		t.Errorf("New dist = %v", sym.Dist)
	}
}

func TestDefinesOverride(t *testing.T) {
	info := check(t, gsSource, Config{Procs: 2, Defines: map[string]int64{"N": 8}})
	gs := info.Procs["gs_iteration"]
	if gs.Params[0].Type.Dims[0] != 8 {
		t.Errorf("N override not applied: dims = %v", gs.Params[0].Type.Dims)
	}
	if info.Consts["NPROCS"].Const != 2 {
		t.Errorf("NPROCS = %v", info.Consts["NPROCS"].Const)
	}
}

func TestScalarMappings(t *testing.T) {
	src := `
proc main() {
  let a: int on proc(0) = 5;
  let b: int on proc(1) = 7;
  let cc: int on proc(2) = a + b;
  let r = 1.5;
}
`
	info := check(t, src, Config{Procs: 4})
	body := info.Procs["main"].Decl.Body
	a := info.SymbolOf(body.Stmts[0].(*lang.LetStmt))
	if p, ok := dist.ProcOf(a.Dist); !ok || p != 0 {
		t.Errorf("a mapped to %v", a.Dist)
	}
	r := info.SymbolOf(body.Stmts[3].(*lang.LetStmt))
	if r.Dist.Kind() != dist.KindReplicated {
		t.Errorf("unmapped scalar should default to replicated, got %v", r.Dist)
	}
	if r.Type.Base != lang.TReal {
		t.Errorf("r should infer real, got %v", r.Type)
	}
}

func TestMonomorphization(t *testing.T) {
	src := `
proc id[D: dist](a: int on D): int on D {
  return a;
}
proc main() {
  let b: int on proc(1) = 7;
  let cc: int on proc(2) = 9;
  let x: int on proc(1) = id[proc(1)](b);
  let y: int on proc(2) = id[proc(2)](cc);
  let z: int on proc(1) = id[proc(1)](x);
}
`
	info := check(t, src, Config{Procs: 4})
	// Two distinct instantiations; the third call shares the first.
	var instances []string
	for name := range info.Procs {
		if strings.Contains(name, "__inst") {
			instances = append(instances, name)
		}
	}
	if len(instances) != 2 {
		t.Fatalf("instances = %v, want 2", instances)
	}
	// The template must be gone from the program.
	for _, d := range info.Prog.Decls {
		if pd, ok := d.(*lang.ProcDecl); ok && len(pd.DistParams) > 0 {
			t.Error("template survived monomorphization")
		}
	}
	// Instantiated parameter mappings must be concrete.
	for _, name := range instances {
		p := info.Procs[name]
		if _, ok := dist.ProcOf(p.Params[0].Dist); !ok {
			t.Errorf("%s param dist = %v, want single-processor", name, p.Params[0].Dist)
		}
	}
}

func TestPolymorphicChain(t *testing.T) {
	// A polymorphic procedure calling another polymorphic procedure with its
	// own parameter must instantiate transitively.
	src := `
proc g[D: dist](a: int on D): int on D {
  return a;
}
proc f[D: dist](a: int on D): int on D {
  let t: int on D = g[D](a);
  return t;
}
proc main() {
  let b: int on proc(3) = 1;
  let x: int on proc(3) = f[proc(3)](b);
}
`
	info := check(t, src, Config{Procs: 4})
	count := 0
	for name := range info.Procs {
		if strings.Contains(name, "__inst") {
			count++
		}
	}
	if count != 2 { // f[proc(3)] and g[proc(3)]
		t.Errorf("instances = %d, want 2", count)
	}
}

func TestErrors(t *testing.T) {
	cases := []struct{ src, want string }{
		{`proc main() { let x = y; }`, "undefined variable y"},
		{`proc main() { x = 1; }`, "undefined variable x"},
		{`proc main() { let x = 1; let x = 2; }`, "shadowing"},
		{`proc main() { for i = 1 to 3 { i = 2; } }`, "loop variable"},
		{`const N = 4; proc main() { N = 2; }`, "constant"},
		{`proc main(A: matrix[4, 4] on all) { A = 1; }`, "whole array"},
		{`proc main(A: matrix[4, 4] on all) { A[1] = 1.0; }`, "rank 2"},
		{`proc main(A: vector[4] on all) { let x = A[1, 2]; }`, "rank 1"},
		{`proc main(A: matrix[4, 4] on all) { A[1.5, 2] = 1.0; }`, "subscript must be int"},
		{`proc main() { for i = 1.5 to 3 { } }`, "loop bound must be int"},
		{`proc main() { for i = 1 to 8 by 0 { } }`, "step must be positive"},
		{`proc main() { if 3 { } }`, "condition must be bool"},
		{`proc main() { let x = 1 mod 2.5; }`, "requires int operands"},
		{`proc main() { let x = true + 1; }`, "numeric"},
		{`proc f(): int { return; }`, "must return"},
		{`proc f() { return 3; }`, "returns no value"},
		{`proc main() { call nosuch(); }`, "undefined procedure"},
		{`proc f(x: int) {} proc main() { call f(); }`, "expects 1 argument"},
		{`proc f() {} proc main() { let x = f(); }`, "returns no value"},
		{`proc f() { call g(); } proc g() { call f(); }`, "recursion"},
		{`proc f() { call f(); }`, "recursion"},
		{`proc main() { let A = matrix(0, 4) on all; }`, "must be positive"},
		{`proc main() { let n = 4; let A = matrix(n, 4) on all; }`, "not a constant"},
		{`proc main(a: int on proc(9)) {}`, "out of range"},
		{`dist D = cyclic_cols(99); proc main(A: matrix[4, 4] on D) {}`, "exceeds machine size"},
		{`dist D = nosuch(2); proc main(A: matrix[4, 4] on D) {}`, "unknown decomposition"},
		{`dist D = cyclic_cols(2, 3); proc main(A: matrix[4, 4] on D) {}`, "expects 1 argument"},
		{`dist D = cyclic_cols(2); proc main(a: int on D) {}`, "applies to matrices"},
		{`proc main(A: matrix[4, 4] on all) { let x = undef_dist_call[all](A); }`, "undefined procedure"},
		{`proc f(x: int) {} proc main() { call f[all](1); }`, "not mapping-polymorphic"},
		{`proc f[D: dist](x: int on D) {} proc main() { call f(1); }`, "requires instantiation"},
		{`proc f[D: dist](x: int on D) {} proc main() { call f[all, all](1); }`, "expects 1 mapping argument"},
		{`const N = 4; const N = 5; proc main() {}`, "duplicate"},
		{`dist Rows = cyclic_rows(2);
		  dist Cols = cyclic_cols(2);
		  proc f(A: matrix[4, 4] on Rows) {}
		  proc main(B: matrix[4, 4] on Cols) { call f(B); }`, "mapping"},
		{`proc f(): matrix[4, 4] {
		    let A = matrix(4, 4) on all;
		    return A;
		  }`, "must declare its return mapping"},
	}
	for _, tc := range cases {
		checkErr(t, tc.src, tc.want)
	}
}

func TestReturnMappingMismatch(t *testing.T) {
	src := `
dist Rows = cyclic_rows(2);
dist Cols = cyclic_cols(2);
proc f(): matrix[4, 4] on Cols {
  let A = matrix(4, 4) on Rows;
  return A;
}
`
	checkErr(t, src, "redistribution on return")
}

func TestArrayValuedCall(t *testing.T) {
	src := `
const N = 8;
dist Column = cyclic_cols(NPROCS);
proc make(): matrix[N, N] on Column {
  let A = matrix(N, N) on Column;
  A[1, 1] = 0.0;
  return A;
}
proc main() {
  let B = make();
  B[2, 2] = 1.0;
}
`
	info := check(t, src, Config{Procs: 2})
	let := info.Procs["main"].Decl.Body.Stmts[0].(*lang.LetStmt)
	sym := info.SymbolOf(let)
	if sym.Kind != SymArray || sym.Dist.Kind() != dist.KindCyclicCols {
		t.Errorf("B: kind=%v dist=%v", sym.Kind, sym.Dist)
	}
}

func TestTypesRecorded(t *testing.T) {
	src := `proc main() { let x = 1 + 2; let y = 1.0 + 2; let b = 1 < 2; }`
	info := check(t, src, Config{Procs: 2})
	body := info.Procs["main"].Decl.Body
	if tt := info.TypeOf(body.Stmts[0].(*lang.LetStmt).Init); tt.Base != lang.TInt {
		t.Errorf("1+2: %v", tt)
	}
	if tt := info.TypeOf(body.Stmts[1].(*lang.LetStmt).Init); tt.Base != lang.TReal {
		t.Errorf("1.0+2: %v", tt)
	}
	if tt := info.TypeOf(body.Stmts[2].(*lang.LetStmt).Init); tt.Base != lang.TBool {
		t.Errorf("1<2: %v", tt)
	}
}

func TestConstExpressions(t *testing.T) {
	src := `
const A = 3 + 4 * 2;
const B = A div 3;
const C = A mod 3;
const D = -B;
const E = min(A, 100);
proc main() { let x = A + B + C + D + E; }
`
	info := check(t, src, Config{Procs: 2})
	want := map[string]float64{"A": 11, "B": 3, "C": 2, "D": -3, "E": 11}
	for name, v := range want {
		if got := info.Consts[name].Const; got != v {
			t.Errorf("%s = %v, want %v", name, got, v)
		}
	}
}

func TestBlock2DDist(t *testing.T) {
	src := `
dist Grid = block2d(2, 2);
proc main(A: matrix[8, 8] on Grid) {}
`
	info := check(t, src, Config{Procs: 4})
	sym := info.Procs["main"].Params[0]
	if sym.Dist.Kind() != dist.KindBlock2D {
		t.Errorf("dist = %v", sym.Dist)
	}
}

// Mapping polymorphism over array parameters: the instantiated copies bind
// the actual decomposition.
func TestPolymorphicArrayParam(t *testing.T) {
	src := `
const N = 8;
dist Rows = cyclic_rows(NPROCS);
dist Cols = cyclic_cols(NPROCS);
proc touch[D: dist](A: matrix[N, N] on D) {
  A[1, 1] = 1.0;
}
proc main(R: matrix[N, N] on Rows, C: matrix[N, N] on Cols) {
  call touch[Rows](R);
  call touch[Cols](C);
}
`
	info := check(t, src, Config{Procs: 2})
	var kinds []dist.Kind
	for name, p := range info.Procs {
		if strings.Contains(name, "__inst") {
			kinds = append(kinds, p.Params[0].Dist.Kind())
		}
	}
	if len(kinds) != 2 {
		t.Fatalf("instances = %d, want 2", len(kinds))
	}
	if kinds[0] == kinds[1] {
		t.Error("instances should bind different decompositions")
	}
}

// Instantiating with a mismatched decomposition is still a mapping error.
func TestPolymorphicArrayMismatch(t *testing.T) {
	src := `
const N = 8;
dist Rows = cyclic_rows(NPROCS);
dist Cols = cyclic_cols(NPROCS);
proc touch[D: dist](A: matrix[N, N] on D) {
  A[1, 1] = 1.0;
}
proc main(R: matrix[N, N] on Rows) {
  call touch[Cols](R);
}
`
	checkErr(t, src, "mapping")
}
