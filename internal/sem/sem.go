// Package sem implements semantic analysis for Idn programs: name
// resolution, type checking, constant evaluation, binding of domain
// decompositions to arrays and scalars, monomorphization of
// mapping-polymorphic procedures (paper §5.1), and the structural
// restrictions the compiler needs (no recursion, no shadowing, loop
// variables immutable).
//
// The result of Check is an Info: the (possibly rewritten) program together
// with resolution tables mapping AST nodes to symbols and expressions to
// types. Both the interpreters (internal/exec) and the process-decomposition
// compiler (internal/core) consume Info rather than re-deriving bindings.
package sem

import (
	"fmt"

	"procdecomp/internal/dist"
	"procdecomp/internal/lang"
)

// Config parameterizes checking for a particular machine and workload.
type Config struct {
	// Procs is the machine size; it binds the built-in constant NPROCS.
	Procs int64
	// Defines overrides program constants by name (e.g. N for grid-size
	// sweeps) without editing the source.
	Defines map[string]int64
}

// Error is a semantic error with its source position.
type Error struct {
	Pos lang.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Type is a resolved Idn type; array dimensions are compile-time constants.
type Type struct {
	Base lang.BaseType
	Dims []int64 // nil for scalars
}

// IsArray reports whether the type is a matrix or vector.
func (t Type) IsArray() bool { return t.Base == lang.TMatrix || t.Base == lang.TVector }

// IsNumeric reports whether the type is int or real.
func (t Type) IsNumeric() bool { return t.Base == lang.TInt || t.Base == lang.TReal }

func (t Type) String() string {
	switch t.Base {
	case lang.TMatrix:
		return fmt.Sprintf("matrix[%d, %d]", t.Dims[0], t.Dims[1])
	case lang.TVector:
		return fmt.Sprintf("vector[%d]", t.Dims[0])
	default:
		return t.Base.String()
	}
}

// Equal reports type identity.
func (t Type) Equal(o Type) bool {
	if t.Base != o.Base || len(t.Dims) != len(o.Dims) {
		return false
	}
	for i := range t.Dims {
		if t.Dims[i] != o.Dims[i] {
			return false
		}
	}
	return true
}

// SymKind classifies symbols.
type SymKind int

// Symbol kinds.
const (
	SymConst SymKind = iota
	SymScalar
	SymArray
	SymLoopVar
)

func (k SymKind) String() string {
	switch k {
	case SymConst:
		return "constant"
	case SymScalar:
		return "scalar"
	case SymArray:
		return "array"
	case SymLoopVar:
		return "loop variable"
	}
	return "?"
}

// Symbol is a resolved program entity.
type Symbol struct {
	Name string
	Kind SymKind
	Type Type
	// Dist is the bound decomposition: for arrays, the full <map, local,
	// alloc> triple; for scalars, a single-processor or replicated mapping.
	// Loop variables are implicitly replicated (every process runs its own
	// control); constants are replicated.
	Dist dist.Dist
	// Const holds the value for SymConst.
	Const      float64
	ConstIsInt bool
}

// Proc is a checked, monomorphic procedure.
type Proc struct {
	Name    string
	Decl    *lang.ProcDecl
	Params  []*Symbol
	RetType *Type     // nil for void
	RetDist dist.Dist // nil for void
}

// Info is the result of semantic analysis.
type Info struct {
	Cfg  Config
	Prog *lang.Program // after monomorphization; templates removed
	// Consts maps constant names (including NPROCS) to their symbols.
	Consts map[string]*Symbol
	// Procs maps (monomorphic) procedure names to their checked signatures.
	Procs map[string]*Proc
	// Refs resolves identifier-bearing AST nodes to symbols: *lang.VarRef,
	// *lang.IndexExpr, *lang.StoreStmt (the array), *lang.AssignStmt (the
	// target), *lang.LetStmt (the defined symbol), and *lang.ForStmt (the
	// loop variable).
	Refs map[any]*Symbol
	// Types records the resolved type of every expression.
	Types map[lang.Expr]Type
}

// SymbolOf returns the symbol a node resolves to, panicking if the node was
// not checked — an internal-consistency bug, not a user error.
func (in *Info) SymbolOf(node any) *Symbol {
	s, ok := in.Refs[node]
	if !ok {
		panic(fmt.Sprintf("sem: node %T has no resolved symbol", node))
	}
	return s
}

// TypeOf returns the resolved type of a checked expression.
func (in *Info) TypeOf(e lang.Expr) Type {
	t, ok := in.Types[e]
	if !ok {
		panic(fmt.Sprintf("sem: expression %T has no resolved type", e))
	}
	return t
}

// Check analyzes a program for a machine configuration. On failure it
// returns the list of semantic errors found (at least one).
func Check(prog *lang.Program, cfg Config) (*Info, []error) {
	if cfg.Procs <= 0 {
		return nil, []error{fmt.Errorf("sem: config must have a positive processor count")}
	}
	c := &checker{
		info: &Info{
			Cfg:    cfg,
			Prog:   prog,
			Consts: map[string]*Symbol{},
			Procs:  map[string]*Proc{},
			Refs:   map[any]*Symbol{},
			Types:  map[lang.Expr]Type{},
		},
		distDecls: map[string]*lang.DistDecl{},
		templates: map[string]*lang.ProcDecl{},
	}
	c.collect()
	if len(c.errs) == 0 {
		c.monomorphize()
	}
	if len(c.errs) == 0 {
		c.checkRecursion()
	}
	if len(c.errs) == 0 {
		c.checkProcs()
	}
	if len(c.errs) > 0 {
		return nil, c.errs
	}
	return c.info, nil
}
