package sem

import (
	"fmt"
	"sort"
	"strings"

	"procdecomp/internal/lang"
)

// Monomorphization of mapping-polymorphic procedures (paper §5.1).
//
// A polymorphic procedure abstracts over mappings the way a polymorphic type
// system abstracts over types: "proc id[D: dist](a: int on D): int on D".
// Each instantiation found at a call site — id[proc(2)](b) — produces a
// specialized copy of the procedure with D replaced by the actual mapping,
// exactly the per-processor specialization the paper's Fig. 9 shows.
// Instantiations are shared: two calls with the same actual mappings reuse
// one copy.

func (c *checker) monomorphize() {
	var work []*lang.ProcDecl
	names := make([]string, 0, len(c.info.Procs))
	for n := range c.info.Procs {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		work = append(work, c.info.Procs[n].Decl)
	}
	inst := map[string]string{} // canonical instantiation key -> clone name
	for len(work) > 0 {
		d := work[0]
		work = work[1:]
		c.monoBlock(d.Body, &work, inst)
	}
	// Drop templates from the program so downstream passes see only
	// monomorphic procedures.
	var decls []lang.Decl
	for _, d := range c.info.Prog.Decls {
		if pd, ok := d.(*lang.ProcDecl); ok && len(pd.DistParams) > 0 {
			continue
		}
		decls = append(decls, d)
	}
	c.info.Prog.Decls = decls
}

func (c *checker) monoBlock(b *lang.Block, work *[]*lang.ProcDecl, inst map[string]string) {
	if b == nil {
		return
	}
	for _, st := range b.Stmts {
		switch st := st.(type) {
		case *lang.CallStmt:
			st.Name, st.DistArgs = c.monoCall(st.Pos, st.Name, st.DistArgs, work, inst)
			for _, a := range st.Args {
				c.monoExpr(a, work, inst)
			}
		case *lang.LetStmt:
			c.monoExpr(st.Init, work, inst)
		case *lang.AssignStmt:
			c.monoExpr(st.Value, work, inst)
		case *lang.StoreStmt:
			c.monoExpr(st.Value, work, inst)
			for _, ix := range st.Indices {
				c.monoExpr(ix, work, inst)
			}
		case *lang.ForStmt:
			c.monoExpr(st.Lo, work, inst)
			c.monoExpr(st.Hi, work, inst)
			if st.Step != nil {
				c.monoExpr(st.Step, work, inst)
			}
			c.monoBlock(st.Body, work, inst)
		case *lang.IfStmt:
			c.monoExpr(st.Cond, work, inst)
			c.monoBlock(st.Then, work, inst)
			c.monoBlock(st.Else, work, inst)
		case *lang.ReturnStmt:
			if st.Value != nil {
				c.monoExpr(st.Value, work, inst)
			}
		}
	}
}

func (c *checker) monoExpr(e lang.Expr, work *[]*lang.ProcDecl, inst map[string]string) {
	switch e := e.(type) {
	case *lang.CallExpr:
		e.Name, e.DistArgs = c.monoCall(e.Pos, e.Name, e.DistArgs, work, inst)
		for _, a := range e.Args {
			c.monoExpr(a, work, inst)
		}
	case *lang.BinExpr:
		c.monoExpr(e.L, work, inst)
		c.monoExpr(e.R, work, inst)
	case *lang.UnExpr:
		c.monoExpr(e.X, work, inst)
	case *lang.IndexExpr:
		for _, ix := range e.Indices {
			c.monoExpr(ix, work, inst)
		}
	case *lang.AllocExpr:
		for _, d := range e.Dims {
			c.monoExpr(d, work, inst)
		}
	}
}

// monoCall resolves one call site: instantiating a template if needed, it
// returns the (possibly rewritten) callee name and the remaining dist args
// (always nil on success).
func (c *checker) monoCall(pos lang.Pos, name string, distArgs []lang.MapExpr,
	work *[]*lang.ProcDecl, inst map[string]string) (string, []lang.MapExpr) {
	tmpl, isTemplate := c.templates[name]
	if !isTemplate {
		return name, distArgs // checkCall reports leftover dist args later
	}
	if len(distArgs) == 0 {
		c.errorf(pos, "call to mapping-polymorphic %s requires instantiation, e.g. %s[proc(0)](...)", name, name)
		return name, nil
	}
	if len(distArgs) != len(tmpl.DistParams) {
		c.errorf(pos, "%s expects %d mapping argument(s), got %d",
			name, len(tmpl.DistParams), len(distArgs))
		return name, nil
	}
	keyParts := make([]string, len(distArgs))
	for i := range distArgs {
		k, ok := c.mapKey(&distArgs[i])
		if !ok {
			return name, nil
		}
		keyParts[i] = k
	}
	key := name + "[" + strings.Join(keyParts, ",") + "]"
	cloneName, ok := inst[key]
	if !ok {
		cloneName = fmt.Sprintf("%s__inst%d", name, len(inst))
		inst[key] = cloneName
		maps := map[string]*lang.MapExpr{}
		for i, dp := range tmpl.DistParams {
			maps[dp] = &distArgs[i]
		}
		clone := lang.CloneProc(tmpl, cloneName, &lang.Subst{Maps: maps})
		c.info.Prog.Decls = append(c.info.Prog.Decls, clone)
		c.info.Procs[cloneName] = &Proc{Name: cloneName, Decl: clone}
		*work = append(*work, clone)
	}
	return cloneName, nil
}

// mapKey canonicalizes a concrete mapping annotation for instantiation
// sharing.
func (c *checker) mapKey(m *lang.MapExpr) (string, bool) {
	switch m.Kind {
	case lang.MapAll:
		return "all", true
	case lang.MapProc:
		p, err := c.constEvalInt(m.Proc)
		if err != nil {
			c.errorf(m.Pos, "mapping argument: %v", err)
			return "", false
		}
		return fmt.Sprintf("proc(%d)", p), true
	case lang.MapNamed:
		if _, ok := c.distDecls[m.Name]; !ok {
			c.errorf(m.Pos, "mapping argument %s is not a declared decomposition", m.Name)
			return "", false
		}
		return "dist:" + m.Name, true
	}
	return "", false
}
