package bench

import (
	"fmt"

	"procdecomp/internal/analysis"
	"procdecomp/internal/machine"
)

// Bridges from the benchmark harness to the post-run analyzer: every traced
// benchmark run can be captured as an analysis.Dump, and the Fig. 6 sweep can
// be emitted with per-row critical-path attribution (text table or JSON).

// DumpGS runs one traced Gauss-Seidel variant and captures it as an
// analyzer dump alongside the machine statistics.
func DumpGS(cfg machine.Config, v Variant, n, blk int64) (*machine.Stats, *analysis.Dump, error) {
	stats, tr, err := TraceGSWith(cfg, v, n, blk)
	if err != nil {
		return nil, nil, err
	}
	return stats, analysis.NewDump(cfg, tr), nil
}

// Fig6Record is one (variant, procs) cell of the machine-readable Fig. 6
// sweep: the paper's headline numbers plus the analyzer's makespan
// attribution for the same run.
type Fig6Record struct {
	Variant     string
	Procs       int
	N           int64
	BlkSize     int64
	Makespan    uint64
	Messages    int64
	Values      int64
	Utilization float64
	// Attribution partitions the makespan by cause (critical-path analysis);
	// its fields sum to Makespan exactly.
	Attribution analysis.Attribution
	// PredictedFreeComm is the what-if makespan with all communication costs
	// zeroed — the parallelism ceiling of this decomposition.
	PredictedFreeComm uint64
}

// Figure6JSON runs the Fig. 6 sweep with tracing and analysis enabled and
// returns one record per (variant, procs) cell, in sweep order — the payload
// of pdbench -json.
func Figure6JSON(n int64, procs []int, blk int64) ([]Fig6Record, error) {
	var recs []Fig6Record
	for _, v := range []Variant{RunTime, CompileTime, OptimizedI, OptimizedIII, Handwritten} {
		for _, p := range procs {
			rec, err := fig6Cell(v, p, n, blk)
			if err != nil {
				return nil, err
			}
			recs = append(recs, *rec)
		}
	}
	return recs, nil
}

func fig6Cell(v Variant, procs int, n, blk int64) (*Fig6Record, error) {
	stats, d, err := DumpGS(machine.DefaultConfig(procs), v, n, blk)
	if err != nil {
		return nil, err
	}
	cp, err := d.CriticalPath()
	if err != nil {
		return nil, fmt.Errorf("%v S=%d: %w", v, procs, err)
	}
	if cp.Makespan != stats.Makespan {
		return nil, fmt.Errorf("%v S=%d: trace makespan %d != machine makespan %d", v, procs, cp.Makespan, stats.Makespan)
	}
	free, err := d.Predict(analysis.Scenario{
		SendStartup: analysis.Zero(), RecvStartup: analysis.Zero(),
		PerValue: analysis.Zero(), Latency: analysis.Zero(),
	})
	if err != nil {
		return nil, fmt.Errorf("%v S=%d: %w", v, procs, err)
	}
	return &Fig6Record{
		Variant:           v.String(),
		Procs:             procs,
		N:                 n,
		BlkSize:           blk,
		Makespan:          stats.Makespan,
		Messages:          stats.Messages,
		Values:            stats.Values,
		Utilization:       stats.MeanUtilization(),
		Attribution:       cp.Attr,
		PredictedFreeComm: free,
	}, nil
}

// AttributionTable is the Fig. 6 sweep seen through the analyzer: for each
// variant at one machine size, where the makespan's cycles went (critical-path
// attribution) and what zeroing the send startup alone would buy. It is the
// quantitative form of the paper's Section 7 argument that message startup,
// not bandwidth, separates the naive decompositions from the optimized ones.
func AttributionTable(n int64, procs int, blk int64) (*Series, error) {
	s := &Series{
		Title: fmt.Sprintf("Makespan attribution (%dx%d grid, S=%d, blksize %d)", n, n, procs, blk),
		Columns: []string{"variant", "makespan", "compute", "startup", "per-value",
			"wire", "blocked", "startup%", "pred s0"},
	}
	for _, v := range []Variant{RunTime, CompileTime, OptimizedI, OptimizedIII, Handwritten} {
		_, d, err := DumpGS(machine.DefaultConfig(procs), v, n, blk)
		if err != nil {
			return nil, err
		}
		cp, err := d.CriticalPath()
		if err != nil {
			return nil, fmt.Errorf("%v: %w", v, err)
		}
		s0, err := d.Predict(analysis.Scenario{SendStartup: analysis.Zero()})
		if err != nil {
			return nil, fmt.Errorf("%v: %w", v, err)
		}
		a := cp.Attr
		startup := a.SendStartup + a.RecvStartup
		pct := 0.0
		if cp.Makespan > 0 {
			pct = 100 * float64(startup) / float64(cp.Makespan)
		}
		s.Rows = append(s.Rows, []string{v.String(),
			fmt.Sprintf("%d", cp.Makespan),
			fmt.Sprintf("%d", a.Compute),
			fmt.Sprintf("%d", startup),
			fmt.Sprintf("%d", a.PerValue),
			fmt.Sprintf("%d", a.Wire),
			fmt.Sprintf("%d", a.Blocked),
			fmt.Sprintf("%4.1f%%", pct),
			fmt.Sprintf("%d", s0),
		})
	}
	s.Notes = append(s.Notes,
		"Columns partition the critical path (== makespan) by cause: compute, message",
		"startup (send+recv), per-value copying, wire latency, and blocked time.",
		"'pred s0' is the what-if makespan with SendStartup=0 — the recorded message",
		"DAG replayed with free message initiation. Where startup% is large, the",
		"optimizations that batch messages (vectorize, jam, strip-mine) pay off.")
	return s, nil
}
