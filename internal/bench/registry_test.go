package bench

import (
	"strings"
	"testing"

	"procdecomp/internal/machine"
	"procdecomp/internal/spmd"
)

// The registry must cover every variant exactly once, under a unique name,
// with the legend matching the enum's String — the invariants that let
// pdbench and pdmap share it without drifting.
func TestRegistryCoversAllVariants(t *testing.T) {
	specs := Variants()
	if len(specs) != len(AllVariants) {
		t.Fatalf("registry has %d entries for %d variants", len(specs), len(AllVariants))
	}
	names := map[string]bool{}
	for i, spec := range specs {
		if spec.Variant != AllVariants[i] {
			t.Errorf("entry %d is %v, want %v", i, spec.Variant, AllVariants[i])
		}
		if spec.Name == "" || names[spec.Name] {
			t.Errorf("entry %v has empty or duplicate name %q", spec.Variant, spec.Name)
		}
		names[spec.Name] = true
		if spec.Legend != spec.Variant.String() {
			t.Errorf("entry %v legend %q != String %q", spec.Variant, spec.Legend, spec.Variant.String())
		}
		if spec.Compile == nil || spec.Run == nil {
			t.Fatalf("entry %v missing hooks", spec.Variant)
		}
		if spec.Handwritten != (spec.Variant == Handwritten) {
			t.Errorf("entry %v Handwritten flag wrong", spec.Variant)
		}
		byName, ok := LookupVariant(spec.Name)
		if !ok || byName.Variant != spec.Variant {
			t.Errorf("LookupVariant(%q) = %v, %v", spec.Name, byName.Variant, ok)
		}
		byLegend, ok := LookupVariant(spec.Legend)
		if !ok || byLegend.Variant != spec.Variant {
			t.Errorf("LookupVariant(%q) = %v, %v", spec.Legend, byLegend.Variant, ok)
		}
	}
	if _, ok := LookupVariant("opt9"); ok {
		t.Error("LookupVariant accepted an unknown name")
	}
}

// The registry's compile hooks are the same code path CompileGS uses — the
// generated programs must be identical, and the pipelines must match the
// standard modes.
func TestRegistryCompileMatchesCompileGS(t *testing.T) {
	format := func(progs []*spmd.Program) string {
		var b strings.Builder
		for _, p := range progs {
			b.WriteString(spmd.Format(p))
		}
		return b.String()
	}
	for _, spec := range Variants() {
		direct, err := CompileGS(spec.Variant, 4, 16, 4)
		if err != nil {
			t.Fatalf("%v: CompileGS: %v", spec.Variant, err)
		}
		viaSpec, err := spec.Compile(4, 16, 4)
		if err != nil {
			t.Fatalf("%v: registry compile: %v", spec.Variant, err)
		}
		if spec.Handwritten {
			if direct != nil || viaSpec != nil {
				t.Errorf("%v: handwritten variant compiled to programs", spec.Variant)
			}
			continue
		}
		if format(direct) != format(viaSpec) {
			t.Errorf("%v: registry and CompileGS produced different code", spec.Variant)
		}
	}
}

// The registry run hook measures exactly what RunGSWith measures.
func TestRegistryRunMatchesRunGS(t *testing.T) {
	spec, ok := LookupVariant("opt3")
	if !ok {
		t.Fatal("opt3 missing")
	}
	cfg := machine.DefaultConfig(4)
	got, err := spec.Run(cfg, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	want, err := RunGSWith(cfg, OptimizedIII, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	if *got != *want {
		t.Fatalf("registry run %+v != RunGSWith %+v", got, want)
	}
}

// The validated pipeline now rejects a non-positive strip size instead of
// silently skipping the pass.
func TestCompileGSRejectsBadBlock(t *testing.T) {
	if _, err := CompileGS(OptimizedIII, 4, 16, 0); err == nil {
		t.Error("OptimizedIII with block size 0 accepted")
	}
	// Variants below OptimizedIII ignore the block size entirely.
	if _, err := CompileGS(OptimizedII, 4, 16, 0); err != nil {
		t.Errorf("OptimizedII with block size 0: %v", err)
	}
}
