package bench

import (
	"testing"

	"procdecomp/internal/analysis"
	"procdecomp/internal/faults"
	"procdecomp/internal/machine"
)

// The analyzer's headline invariant, checked across the whole Fig. 6 matrix:
// the extracted critical path must sum exactly to the measured makespan — on
// one processor, on many, and under an unreliable network — and the per-cause
// attribution must tile the path. (The chaos runs keep "Faults" out of the
// test name so the CI chaos job does not re-run this heavyweight sweep.)
func TestCriticalPathExactFig6(t *testing.T) {
	const n, blk = 32, 4
	for _, v := range []Variant{RunTime, CompileTime, OptimizedI, OptimizedIII, Handwritten} {
		for _, procs := range []int{1, 4, 32} {
			for _, chaos := range []bool{false, true} {
				label := v.String()
				cfg := machine.DefaultConfig(procs)
				if chaos {
					cfg.Faults = faults.Chaos(1, 0.05)
					label += "+chaos"
				}
				stats, d, err := DumpGS(cfg, v, n, blk)
				if err != nil {
					t.Fatalf("%s S=%d: %v", label, procs, err)
				}
				if d.Faulty != chaos {
					t.Errorf("%s S=%d: dump Faulty=%v", label, procs, d.Faulty)
				}
				cp, err := d.CriticalPath()
				if err != nil {
					t.Fatalf("%s S=%d: %v", label, procs, err)
				}
				if cp.Makespan != stats.Makespan {
					t.Errorf("%s S=%d: trace makespan %d != machine %d", label, procs, cp.Makespan, stats.Makespan)
				}
				if got := cp.Len(); got != cp.Makespan {
					t.Errorf("%s S=%d: critical path %d != makespan %d", label, procs, got, cp.Makespan)
				}
				if got := cp.Attr.Total(); got != cp.Makespan {
					t.Errorf("%s S=%d: attribution %d != makespan %d", label, procs, got, cp.Makespan)
				}
				if chaos && procs > 1 && cp.Attr.Fault == 0 && stats.Retries > 0 {
					// Retries happened somewhere; they need not sit on the
					// critical path, but the common case is that some do.
					t.Logf("%s S=%d: %d retries, none on the critical path", label, procs, stats.Retries)
				}
				if !chaos && cp.Attr.Fault != 0 {
					t.Errorf("%s S=%d: fault cycles %d on a reliable network", label, procs, cp.Attr.Fault)
				}
			}
		}
	}
}

// The identity replay must reproduce the measured makespan exactly even on
// the hardest path: multiplexed placement plus an unreliable network.
func TestWhatIfIdentityMuxChaos(t *testing.T) {
	cfg := machine.DefaultConfig(8)
	cfg.Placement = []int{0, 1, 2, 3, 0, 1, 2, 3}
	cfg.Faults = faults.Chaos(3, 0.05)
	stats, d, err := DumpGS(cfg, OptimizedIII, 24, 4)
	if err != nil {
		t.Fatal(err)
	}
	got, err := d.Predict(analysis.Scenario{})
	if err != nil {
		t.Fatal(err)
	}
	if got != stats.Makespan {
		t.Fatalf("identity replay %d != measured %d", got, stats.Makespan)
	}
}

// What-if sanity on the paper's startup-dominated variant. Zeroing the send
// startup must shorten the recorded critical path by exactly its send-startup
// share — but the *makespan* can drop by less, because once sends are free a
// different (recv-heavy) chain becomes binding. So the test asserts the
// strongest true properties instead of a chain-shift-blind inequality:
// the prediction must equal an actual machine rerun at SendStartup=0
// (the replay is exact, not an estimate), startup must dominate Optimized I's
// attribution, and the predicted speedup must be material.
func TestWhatIfSendStartupOptimizedI(t *testing.T) {
	const n, blk, procs = 32, 4, 4
	stats, d, err := DumpGS(machine.DefaultConfig(procs), OptimizedI, n, blk)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := d.CriticalPath()
	if err != nil {
		t.Fatal(err)
	}
	startup := cp.Attr.SendStartup + cp.Attr.RecvStartup
	if 2*startup < cp.Makespan {
		t.Errorf("Optimized I startup share %d is under half the makespan %d; expected startup-dominated", startup, cp.Makespan)
	}
	pred, err := d.Predict(analysis.Scenario{SendStartup: analysis.Zero()})
	if err != nil {
		t.Fatal(err)
	}
	if pred >= stats.Makespan {
		t.Errorf("SendStartup=0 predicts %d, no better than measured %d", pred, stats.Makespan)
	}
	if 2*pred > stats.Makespan {
		t.Errorf("SendStartup=0 predicts %d; want at least a 2x drop from %d for the startup-bound variant", pred, stats.Makespan)
	}
	// Ground truth: rerun the machine with the altered calibration. The
	// workload's message structure is cost-independent, so the replay must
	// agree exactly.
	cfg := machine.DefaultConfig(procs)
	cfg.SendStartup = 0
	pt, err := RunGSWith(cfg, OptimizedI, n, blk)
	if err != nil {
		t.Fatal(err)
	}
	if pred != pt.Makespan {
		t.Errorf("replay predicts %d, actual rerun at SendStartup=0 measures %d", pred, pt.Makespan)
	}
}

// Figure6JSON emits one record per (variant, procs) cell with an attribution
// that tiles the makespan, plus a free-communication ceiling no worse than
// the measured time.
func TestFigure6JSONRecords(t *testing.T) {
	recs, err := Figure6JSON(24, []int{1, 4}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 10 {
		t.Fatalf("%d records, want 10 (5 variants x 2 sizes)", len(recs))
	}
	for _, r := range recs {
		if r.Attribution.Total() != r.Makespan {
			t.Errorf("%s S=%d: attribution %d != makespan %d", r.Variant, r.Procs, r.Attribution.Total(), r.Makespan)
		}
		if r.PredictedFreeComm > r.Makespan {
			t.Errorf("%s S=%d: free-comm prediction %d exceeds measured %d", r.Variant, r.Procs, r.PredictedFreeComm, r.Makespan)
		}
		if r.Utilization <= 0 || r.Utilization > 1 {
			t.Errorf("%s S=%d: utilization %v", r.Variant, r.Procs, r.Utilization)
		}
	}
}

// The attribution table renders one row per variant.
func TestAttributionTable(t *testing.T) {
	s, err := AttributionTable(24, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Rows) != 5 {
		t.Fatalf("%d rows, want 5", len(s.Rows))
	}
}
